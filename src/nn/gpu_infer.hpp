#pragma once

#include <optional>
#include <vector>

#include "emu/device.hpp"
#include "nn/network.hpp"
#include "syndrome/syndrome.hpp"

namespace gpufi::nn {

/// A t-MxM corruption to apply during inference: the RTL-characterized
/// spatial pattern + relative errors hit one 8x8 tile of one layer's output
/// matrix (Sec. IV-B: "picks a random tile during the execution of a random
/// CNN layer and modifies its output elements according to the syndrome").
struct TileFault {
  unsigned layer = 0;                 ///< GEMM index (convs then fcs)
  unsigned tile_row = 0, tile_col = 0;  ///< tile coords in the padded matrix
  syndrome::TileCorruption corruption;
  std::uint64_t sign_seed = 1;        ///< per-element corruption signs
};

/// Options for one inference run.
struct InferOptions {
  emu::InstrumentHook* hook = nullptr;      ///< software fault injector
  const TileFault* tile_fault = nullptr;    ///< t-MxM corruption
  std::uint64_t launch_budget = 40'000'000;  ///< per-launch watchdog
};

/// Emulator-backed CNN inference: every convolution and fully connected
/// layer lowers to im2col + the tiled 8x8 GEMM kernel executed on the SIMT
/// emulator (so NVBitFI-style injection reaches the real instruction
/// stream); im2col packing, bias/ReLU/pooling run on the host.
class GpuInference {
 public:
  explicit GpuInference(const Network& net);

  /// GEMM layer count (convs + fcs).
  unsigned gemm_layers() const;
  /// Unpadded output-matrix dimensions (M, N) of GEMM layer `i`.
  std::pair<unsigned, unsigned> layer_dims(unsigned i) const;
  /// Padded tile-grid dimensions (tiles_m, tiles_n) of GEMM layer `i`.
  std::pair<unsigned, unsigned> layer_tiles(unsigned i) const;

  /// Device words needed for the largest layer's A/B/C buffers.
  std::size_t device_words() const { return device_words_; }

  /// Runs inference on `dev`; returns the raw network output, or nullopt
  /// if a kernel trapped or hung (DUE).
  std::optional<std::vector<float>> run(emu::Device& dev,
                                        const Tensor& input,
                                        const InferOptions& opts) const;

 private:
  struct Gemm {
    unsigned m = 0, n = 0, k = 0;   ///< logical dims
    unsigned mp = 0, np = 0, kp = 0;  ///< padded to multiples of 8
    std::vector<float> a;  ///< padded weight matrix (mp x kp)
    const ConvLayer* conv = nullptr;  ///< non-null for conv layers
    const FcLayer* fc = nullptr;      ///< non-null for fc layers
  };

  const Network* net_;
  std::vector<Gemm> gemms_;
  std::size_t device_words_ = 0;
};

/// Fault model selector for CNN campaigns (the three columns of the
/// paper's CNN analysis: bit-flip, RTL relative error, t-MxM tile).
enum class CnnFaultModel : std::uint8_t {
  SingleBitFlip,
  RelativeError,
  TiledMxM,
};

std::string_view cnn_fault_model_name(CnnFaultModel m);

/// Outcome of a CNN fault-injection campaign, including the paper's
/// tolerable-vs-critical SDC split (critical = the network's top-level
/// decision changed: misclassification or misdetection).
struct CnnCampaignResult {
  std::size_t injections = 0;
  std::size_t masked = 0;
  std::size_t sdc = 0;           ///< any output mismatch
  std::size_t critical = 0;      ///< decision changed
  std::size_t due = 0;

  double pvf() const {
    return injections == 0 ? 0.0
                           : static_cast<double>(sdc) / injections;
  }
  double critical_rate() const {
    return injections == 0 ? 0.0
                           : static_cast<double>(critical) / injections;
  }
};

/// Task of the network under test (decides the criticality criterion).
enum class CnnTask : std::uint8_t { Classification, Detection };

/// Runs a CNN fault-injection campaign on a fixed deterministic input:
/// one corrupted inference per injection, classified against the golden
/// run (SDC = raw output mismatch; critical = decision change).
CnnCampaignResult run_cnn_campaign(const Network& net, CnnTask task,
                                   CnnFaultModel model,
                                   const syndrome::Database* db,
                                   std::size_t n_injections,
                                   std::uint64_t seed);

}  // namespace gpufi::nn
