#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace gpufi::nn {

/// A convolution layer description (stride 1, valid padding) shared by the
/// host trainer and the emulator-backed inference path.
struct ConvLayer {
  unsigned in_c, in_h, in_w;
  unsigned out_c, k;  ///< square k x k kernels
  bool relu = true;
  bool pool = false;  ///< 2x2 max pooling after activation
  std::vector<float> weights;  ///< [out_c][in_c][k][k]
  std::vector<float> bias;     ///< [out_c]

  unsigned conv_h() const { return in_h - k + 1; }
  unsigned conv_w() const { return in_w - k + 1; }
  unsigned out_h() const { return pool ? conv_h() / 2 : conv_h(); }
  unsigned out_w() const { return pool ? conv_w() / 2 : conv_w(); }
  /// GEMM dimensions of the im2col formulation (Fig. layer = M x N matrix).
  unsigned gemm_m() const { return out_c; }
  unsigned gemm_k() const { return in_c * k * k; }
  unsigned gemm_n() const { return conv_h() * conv_w(); }
  std::size_t params() const { return weights.size() + bias.size(); }
};

/// A fully connected layer (treated as a 1x1 GEMM downstream).
struct FcLayer {
  unsigned in_n, out_n;
  bool relu = true;
  std::vector<float> weights;  ///< [out_n][in_n]
  std::vector<float> bias;
  std::size_t params() const { return weights.size() + bias.size(); }
};

/// A small sequential CNN: conv stack followed by an FC stack. This is all
/// the structure LeNet-5 and the scaled-down detector need.
struct Network {
  std::string name;
  unsigned in_c = 1, in_h = 28, in_w = 28;
  std::vector<ConvLayer> convs;
  std::vector<FcLayer> fcs;

  std::size_t total_params() const;
  /// Mean parameter count per layer (the paper contrasts LeNet's ~12k with
  /// YOLO's ~100k average).
  double mean_params_per_layer() const;

  void save_file(const std::string& path) const;
  static Network load_file(const std::string& path);
};

/// Host-side forward pass (the reference semantics; the emulator-backed
/// path in gpu_infer.hpp matches it within float accumulation noise).
std::vector<float> host_forward(const Network& net, const Tensor& input);

// ---------------------------------------------------------------------------
// Architectures
// ---------------------------------------------------------------------------

/// LeNet-5 for 28x28 single-channel digits (10 classes).
Network make_lenet(Rng& rng);

/// "YoloLite": a scaled-down single-shot detector for 32x32 scenes.
/// Output: a 6x6 grid of cells, each predicting [objectness, class0..2,
/// dx, dy, dw, dh] (8 channels). Its layer output matrices are much larger
/// than LeNet's, so a corrupted 8x8 GEMM tile is a small fraction of a
/// layer — the structural property behind the paper's LeNet-vs-YOLO t-MxM
/// contrast.
Network make_yololite(Rng& rng);

/// Grid geometry of the detector head.
constexpr unsigned kDetGrid = 6;
constexpr unsigned kDetClasses = 3;
constexpr unsigned kDetChannels = 4 + kDetClasses + 1;  // obj + cls + box

// ---------------------------------------------------------------------------
// Synthetic datasets (substitutes for MNIST / VOC2012; see DESIGN.md)
// ---------------------------------------------------------------------------

/// A labelled digit image.
struct DigitSample {
  Tensor image;  ///< 1x28x28, values in [0,1]
  unsigned label = 0;
};

/// Deterministic synthetic seven-segment-style digit with jitter and noise.
DigitSample make_digit(Rng& rng);

/// An axis-aligned ground-truth object.
struct DetObject {
  unsigned cls = 0;
  float cx = 0, cy = 0, bw = 0, bh = 0;  ///< normalized to [0,1]
};

/// A detection scene with 1-2 shapes (square/disc/cross = 3 classes).
struct SceneSample {
  Tensor image;  ///< 1x32x32
  std::vector<DetObject> objects;
};

SceneSample make_scene(Rng& rng);

// ---------------------------------------------------------------------------
// Training (host backprop; SGD with momentum)
// ---------------------------------------------------------------------------

/// Finite-difference gradient check of the trainer's backward pass on a
/// tiny conv+fc network with a softmax cross-entropy head. Returns the
/// maximum relative error across sampled parameters (should be < 1e-2).
double gradient_check(Rng& rng);

/// Trains LeNet on synthetic digits; returns holdout accuracy.
double train_lenet(Network& net, Rng& rng, unsigned steps = 6000);

/// Trains the detector on synthetic scenes (objectness BCE + class CE +
/// box L2 on positive cells); returns holdout detection F1.
double train_yololite(Network& net, Rng& rng, unsigned steps = 4000);

// ---------------------------------------------------------------------------
// Task-level decoding and criticality
// ---------------------------------------------------------------------------

/// Argmax class of a classifier output.
unsigned classify(const std::vector<float>& logits);

/// One decoded detection.
struct Detection {
  unsigned cls;
  float cx, cy, bw, bh;
  float score;
};

/// Decodes detector output (cells with objectness above `threshold`).
std::vector<Detection> decode_detections(const std::vector<float>& raw,
                                         float threshold = 0.5f);

/// True if two detection sets agree (same cardinality, matched classes,
/// IoU >= 0.5) — the paper's criterion for a *tolerable* SDC; disagreement
/// is a critical SDC (misdetection).
bool detections_match(const std::vector<Detection>& a,
                      const std::vector<Detection>& b);

/// Intersection-over-union of two boxes given as (cx, cy, w, h).
float iou(const Detection& a, const Detection& b);

}  // namespace gpufi::nn
