#include "nn/network.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace gpufi::nn {

namespace {

// Leaky rectifier (slope 0.1), as in Darknet/YOLO: avoids dead units in
// the small single-sample-SGD training regime.
constexpr float kLeak = 0.1f;
float relu(float x) { return x > 0 ? x : kLeak * x; }
float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

void he_init(std::vector<float>& w, std::size_t fan_in, Rng& rng) {
  const float scale = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (auto& v : w)
    v = scale * static_cast<float>(rng.uniform(-1.0, 1.0)) * 1.73205f;
}

}  // namespace

std::size_t Network::total_params() const {
  std::size_t n = 0;
  for (const auto& c : convs) n += c.params();
  for (const auto& f : fcs) n += f.params();
  return n;
}

double Network::mean_params_per_layer() const {
  const std::size_t layers = convs.size() + fcs.size();
  return layers == 0 ? 0.0
                     : static_cast<double>(total_params()) /
                           static_cast<double>(layers);
}

// --------------------------------------------------------------- forward

namespace {

/// Convolution + bias (valid padding, stride 1).
Tensor conv_forward(const ConvLayer& l, const Tensor& in) {
  Tensor out(l.out_c, l.conv_h(), l.conv_w());
  for (unsigned oc = 0; oc < l.out_c; ++oc) {
    const float b = l.bias[oc];
    for (unsigned y = 0; y < out.h; ++y) {
      for (unsigned x = 0; x < out.w; ++x) {
        float acc = b;
        for (unsigned ic = 0; ic < l.in_c; ++ic)
          for (unsigned ky = 0; ky < l.k; ++ky)
            for (unsigned kx = 0; kx < l.k; ++kx)
              acc += l.weights[((oc * l.in_c + ic) * l.k + ky) * l.k + kx] *
                     in.at(ic, y + ky, x + kx);
        out.at(oc, y, x) = acc;
      }
    }
  }
  return out;
}

Tensor apply_relu(const Tensor& t) {
  Tensor out = t;
  for (auto& v : out.data) v = relu(v);
  return out;
}

Tensor pool2x2(const Tensor& t, std::vector<unsigned>* argmax = nullptr) {
  Tensor out(t.c, t.h / 2, t.w / 2);
  if (argmax) argmax->assign(out.size(), 0);
  std::size_t o = 0;
  for (unsigned c = 0; c < t.c; ++c)
    for (unsigned y = 0; y < out.h; ++y)
      for (unsigned x = 0; x < out.w; ++x, ++o) {
        float best = -1e30f;
        unsigned best_i = 0;
        for (unsigned dy = 0; dy < 2; ++dy)
          for (unsigned dx = 0; dx < 2; ++dx) {
            const unsigned yy = 2 * y + dy, xx = 2 * x + dx;
            const float v = t.at(c, yy, xx);
            if (v > best) {
              best = v;
              best_i = (c * t.h + yy) * t.w + xx;
            }
          }
        out.data[o] = best;
        if (argmax) (*argmax)[o] = best_i;
      }
  return out;
}

std::vector<float> fc_forward(const FcLayer& l, const std::vector<float>& in) {
  std::vector<float> out(l.out_n);
  for (unsigned o = 0; o < l.out_n; ++o) {
    float acc = l.bias[o];
    for (unsigned i = 0; i < l.in_n; ++i)
      acc += l.weights[o * l.in_n + i] * in[i];
    out[o] = l.relu ? relu(acc) : acc;
  }
  return out;
}

}  // namespace

std::vector<float> host_forward(const Network& net, const Tensor& input) {
  Tensor t = input;
  for (const auto& c : net.convs) {
    t = conv_forward(c, t);
    if (c.relu) t = apply_relu(t);
    if (c.pool) t = pool2x2(t);
  }
  std::vector<float> v = std::move(t.data);
  for (const auto& f : net.fcs) v = fc_forward(f, v);
  return v;
}

// --------------------------------------------------------- architectures

Network make_lenet(Rng& rng) {
  Network net;
  net.name = "LeNet";
  net.in_c = 1;
  net.in_h = net.in_w = 28;
  auto conv = [&](unsigned in_c, unsigned in_h, unsigned in_w, unsigned out_c,
                  unsigned k, bool pool) {
    ConvLayer l;
    l.in_c = in_c;
    l.in_h = in_h;
    l.in_w = in_w;
    l.out_c = out_c;
    l.k = k;
    l.pool = pool;
    l.weights.resize(static_cast<std::size_t>(out_c) * in_c * k * k);
    l.bias.assign(out_c, 0.0f);
    he_init(l.weights, static_cast<std::size_t>(in_c) * k * k, rng);
    return l;
  };
  auto fc = [&](unsigned in_n, unsigned out_n, bool relu_on) {
    FcLayer l;
    l.in_n = in_n;
    l.out_n = out_n;
    l.relu = relu_on;
    l.weights.resize(static_cast<std::size_t>(out_n) * in_n);
    l.bias.assign(out_n, 0.0f);
    he_init(l.weights, in_n, rng);
    return l;
  };
  net.convs.push_back(conv(1, 28, 28, 6, 5, true));    // -> 6x12x12
  net.convs.push_back(conv(6, 12, 12, 16, 5, true));   // -> 16x4x4
  net.fcs.push_back(fc(16 * 4 * 4, 120, true));
  net.fcs.push_back(fc(120, 84, true));
  net.fcs.push_back(fc(84, 10, false));
  return net;
}

Network make_yololite(Rng& rng) {
  Network net;
  net.name = "YoloLite";
  net.in_c = 1;
  net.in_h = net.in_w = 32;
  auto conv = [&](unsigned in_c, unsigned in_h, unsigned in_w, unsigned out_c,
                  unsigned k, bool pool, bool relu_on) {
    ConvLayer l;
    l.in_c = in_c;
    l.in_h = in_h;
    l.in_w = in_w;
    l.out_c = out_c;
    l.k = k;
    l.pool = pool;
    l.relu = relu_on;
    l.weights.resize(static_cast<std::size_t>(out_c) * in_c * k * k);
    l.bias.assign(out_c, 0.0f);
    he_init(l.weights, static_cast<std::size_t>(in_c) * k * k, rng);
    return l;
  };
  // 32 -> conv5 -> 28 -> pool -> 14; 14 -> conv3 -> 12 -> pool -> 6;
  // 6x6 detection head via 1x1 conv.
  net.convs.push_back(conv(1, 32, 32, 12, 5, true, true));   // -> 12x14x14
  net.convs.push_back(conv(12, 14, 14, 24, 3, true, true));  // -> 24x6x6
  net.convs.push_back(conv(24, 6, 6, kDetChannels, 1, false, false));
  // Objectness prior: start from "no object" (focal-loss-style bias init)
  // so training does not begin in a false-positive storm.
  net.convs.back().bias[0] = -2.0f;
  return net;
}

// -------------------------------------------------------------- datasets

namespace {

// Seven-segment layout: segments A..G as (x0,y0,x1,y1) line ends on a
// 10x16 glyph box.
struct Seg {
  float x0, y0, x1, y1;
};
constexpr Seg kSegs[7] = {
    {1, 1, 9, 1},    // A  top
    {9, 1, 9, 8},    // B  top-right
    {9, 8, 9, 15},   // C  bottom-right
    {1, 15, 9, 15},  // D  bottom
    {1, 8, 1, 15},   // E  bottom-left
    {1, 1, 1, 8},    // F  top-left
    {1, 8, 9, 8},    // G  middle
};
constexpr std::uint8_t kDigitSegs[10] = {
    0b0111111,  // 0: ABCDEF
    0b0000110,  // 1: BC
    0b1011011,  // 2: ABDEG
    0b1001111,  // 3: ABCDG
    0b1100110,  // 4: BCFG
    0b1101101,  // 5: ACDFG
    0b1111101,  // 6: ACDEFG
    0b0000111,  // 7: ABC
    0b1111111,  // 8
    0b1101111,  // 9
};

void draw_line(Tensor& img, float x0, float y0, float x1, float y1,
               float intensity) {
  const int steps = 24;
  for (int s = 0; s <= steps; ++s) {
    const float t = static_cast<float>(s) / steps;
    const float x = x0 + (x1 - x0) * t;
    const float y = y0 + (y1 - y0) * t;
    for (int dy = 0; dy <= 1; ++dy)
      for (int dx = 0; dx <= 1; ++dx) {
        const int xi = static_cast<int>(x) + dx;
        const int yi = static_cast<int>(y) + dy;
        if (xi >= 0 && yi >= 0 && xi < static_cast<int>(img.w) &&
            yi < static_cast<int>(img.h))
          img.at(0, yi, xi) = std::min(1.0f, img.at(0, yi, xi) + intensity);
      }
  }
}

}  // namespace

DigitSample make_digit(Rng& rng) {
  DigitSample s;
  s.label = static_cast<unsigned>(rng.below(10));
  s.image = Tensor(1, 28, 28);
  const float ox = 6.0f + static_cast<float>(rng.range(-3, 5));
  const float oy = 4.0f + static_cast<float>(rng.range(-2, 4));
  const float intensity = 0.6f + 0.4f * static_cast<float>(rng.uniform());
  const std::uint8_t segs = kDigitSegs[s.label];
  for (int i = 0; i < 7; ++i) {
    if (!(segs >> i & 1)) continue;
    const Seg& g = kSegs[i];
    draw_line(s.image, g.x0 + ox, g.y0 + oy, g.x1 + ox, g.y1 + oy,
              intensity);
  }
  for (auto& v : s.image.data)
    v = std::clamp(v + 0.05f * static_cast<float>(rng.uniform(-1.0, 1.0)),
                   0.0f, 1.0f);
  return s;
}

SceneSample make_scene(Rng& rng) {
  SceneSample s;
  s.image = Tensor(1, 32, 32);
  const unsigned n_obj = 1 + (rng.chance(0.4) ? 1 : 0);
  for (unsigned o = 0; o < n_obj; ++o) {
    DetObject obj;
    obj.cls = static_cast<unsigned>(rng.below(kDetClasses));
    const float size = 6.0f + 6.0f * static_cast<float>(rng.uniform());
    const float cx = size / 2 + (31.0f - size) * static_cast<float>(rng.uniform());
    const float cy = size / 2 + (31.0f - size) * static_cast<float>(rng.uniform());
    // Keep object centers in distinct grid cells.
    if (o == 1) {
      const auto cell = [&](const DetObject& d) {
        return static_cast<unsigned>(d.cy / 32.0f * kDetGrid) * kDetGrid +
               static_cast<unsigned>(d.cx / 32.0f * kDetGrid);
      };
      DetObject tmp = obj;
      tmp.cx = cx / 32.0f;
      tmp.cy = cy / 32.0f;
      if (cell(tmp) == cell(s.objects[0])) continue;
    }
    const float half = size / 2;
    const float intensity = 0.7f + 0.3f * static_cast<float>(rng.uniform());
    for (int y = 0; y < 32; ++y) {
      for (int x = 0; x < 32; ++x) {
        const float dx = static_cast<float>(x) - cx;
        const float dy = static_cast<float>(y) - cy;
        bool in = false;
        switch (obj.cls) {
          case 0:  // filled square
            in = std::fabs(dx) <= half && std::fabs(dy) <= half;
            break;
          case 1:  // disc
            in = dx * dx + dy * dy <= half * half;
            break;
          case 2:  // cross
            in = (std::fabs(dx) <= half && std::fabs(dy) <= 1.5f) ||
                 (std::fabs(dy) <= half && std::fabs(dx) <= 1.5f);
            break;
        }
        if (in)
          s.image.at(0, y, x) = std::min(1.0f, s.image.at(0, y, x) + intensity);
      }
    }
    obj.cx = cx / 32.0f;
    obj.cy = cy / 32.0f;
    obj.bw = size / 32.0f;
    obj.bh = size / 32.0f;
    s.objects.push_back(obj);
  }
  for (auto& v : s.image.data)
    v = std::clamp(v + 0.04f * static_cast<float>(rng.uniform(-1.0, 1.0)),
                   0.0f, 1.0f);
  return s;
}

// -------------------------------------------------------------- training

namespace {

/// Per-layer caches and gradients for SGD-with-momentum training.
struct ConvGrad {
  std::vector<float> dw, db, vw, vb;
};
struct FcGrad {
  std::vector<float> dw, db, vw, vb;
};

struct Trainer {
  Network& net;
  std::vector<ConvGrad> cg;
  std::vector<FcGrad> fg;
  float lr = 0.01f, momentum = 0.9f;

  explicit Trainer(Network& n) : net(n) {
    for (auto& c : n.convs) {
      ConvGrad g;
      g.dw.assign(c.weights.size(), 0);
      g.db.assign(c.bias.size(), 0);
      g.vw.assign(c.weights.size(), 0);
      g.vb.assign(c.bias.size(), 0);
      cg.push_back(std::move(g));
    }
    for (auto& f : n.fcs) {
      FcGrad g;
      g.dw.assign(f.weights.size(), 0);
      g.db.assign(f.bias.size(), 0);
      g.vw.assign(f.weights.size(), 0);
      g.vb.assign(f.bias.size(), 0);
      fg.push_back(std::move(g));
    }
  }

  // Forward with caches; returns final raw output.
  struct Cache {
    std::vector<Tensor> conv_in;       // input of each conv
    std::vector<Tensor> conv_pre;      // conv+bias output (pre-activation)
    std::vector<std::vector<unsigned>> pool_idx;
    std::vector<std::vector<float>> fc_in;   // input of each fc
    std::vector<std::vector<float>> fc_pre;  // pre-activation of each fc
  };

  std::vector<float> forward(const Tensor& input, Cache& cache) {
    Tensor t = input;
    for (std::size_t i = 0; i < net.convs.size(); ++i) {
      const auto& c = net.convs[i];
      cache.conv_in.push_back(t);
      Tensor pre = conv_forward(c, t);
      cache.conv_pre.push_back(pre);
      Tensor act = c.relu ? apply_relu(pre) : pre;
      if (c.pool) {
        cache.pool_idx.emplace_back();
        t = pool2x2(act, &cache.pool_idx.back());
      } else {
        cache.pool_idx.emplace_back();
        t = act;
      }
    }
    std::vector<float> v = std::move(t.data);
    for (std::size_t i = 0; i < net.fcs.size(); ++i) {
      const auto& f = net.fcs[i];
      cache.fc_in.push_back(v);
      std::vector<float> pre(f.out_n);
      for (unsigned o = 0; o < f.out_n; ++o) {
        float acc = f.bias[o];
        for (unsigned k = 0; k < f.in_n; ++k)
          acc += f.weights[o * f.in_n + k] * v[k];
        pre[o] = acc;
      }
      cache.fc_pre.push_back(pre);
      v.resize(f.out_n);
      for (unsigned o = 0; o < f.out_n; ++o)
        v[o] = f.relu ? relu(pre[o]) : pre[o];
    }
    return v;
  }

  // Backward from d(final raw output); applies the SGD update.
  void backward(const Cache& cache, std::vector<float> dout) {
    for (std::size_t ii = net.fcs.size(); ii-- > 0;) {
      auto& f = net.fcs[ii];
      auto& g = fg[ii];
      std::fill(g.dw.begin(), g.dw.end(), 0.0f);
      std::fill(g.db.begin(), g.db.end(), 0.0f);
      std::vector<float> din(f.in_n, 0.0f);
      for (unsigned o = 0; o < f.out_n; ++o) {
        float d = dout[o];
        if (f.relu && cache.fc_pre[ii][o] <= 0) d *= kLeak;
        g.db[o] += d;
        for (unsigned k = 0; k < f.in_n; ++k) {
          g.dw[o * f.in_n + k] += d * cache.fc_in[ii][k];
          din[k] += d * f.weights[o * f.in_n + k];
        }
      }
      step(f.weights, g.dw, g.vw);
      step(net.fcs[ii].bias, g.db, g.vb);
      dout = std::move(din);
    }
    // Into the conv stack: dout is the gradient of the last conv output.
    for (std::size_t ii = net.convs.size(); ii-- > 0;) {
      const auto& c = net.convs[ii];
      auto& g = cg[ii];
      const Tensor& pre = cache.conv_pre[ii];
      // Un-pool: scatter gradients to the argmax positions.
      std::vector<float> dpre(pre.size(), 0.0f);
      if (c.pool) {
        const auto& idx = cache.pool_idx[ii];
        for (std::size_t o = 0; o < idx.size(); ++o) dpre[idx[o]] = dout[o];
      } else {
        std::copy(dout.begin(), dout.end(), dpre.begin());
      }
      if (c.relu)
        for (std::size_t i = 0; i < dpre.size(); ++i)
          if (pre.data[i] <= 0) dpre[i] *= kLeak;
      // Weight/bias/input gradients.
      std::fill(g.dw.begin(), g.dw.end(), 0.0f);
      std::fill(g.db.begin(), g.db.end(), 0.0f);
      const Tensor& in = cache.conv_in[ii];
      Tensor din(in.c, in.h, in.w);
      const unsigned oh = c.conv_h(), ow = c.conv_w();
      for (unsigned oc = 0; oc < c.out_c; ++oc) {
        for (unsigned y = 0; y < oh; ++y) {
          for (unsigned x = 0; x < ow; ++x) {
            const float d = dpre[(oc * oh + y) * ow + x];
            if (d == 0.0f) continue;
            g.db[oc] += d;
            for (unsigned ic = 0; ic < c.in_c; ++ic)
              for (unsigned ky = 0; ky < c.k; ++ky)
                for (unsigned kx = 0; kx < c.k; ++kx) {
                  const std::size_t wi =
                      ((oc * c.in_c + ic) * c.k + ky) * c.k + kx;
                  g.dw[wi] += d * in.at(ic, y + ky, x + kx);
                  din.at(ic, y + ky, x + kx) += d * c.weights[wi];
                }
          }
        }
      }
      step(net.convs[ii].weights, g.dw, g.vw);
      step(net.convs[ii].bias, g.db, g.vb);
      dout = std::move(din.data);
    }
  }

  void step(std::vector<float>& w, const std::vector<float>& dw,
            std::vector<float>& v) {
    // Direction-preserving gradient clipping (per-layer norm cap) keeps
    // single-sample SGD stable without biasing skewed gradients.
    double norm2 = 0;
    for (float g : dw) norm2 += static_cast<double>(g) * g;
    const double norm = std::sqrt(norm2);
    const float scale =
        norm > 4.0 ? static_cast<float>(4.0 / norm) : 1.0f;
    for (std::size_t i = 0; i < w.size(); ++i) {
      v[i] = momentum * v[i] - lr * scale * dw[i];
      w[i] += v[i];
    }
  }
};

std::vector<float> softmax(const std::vector<float>& z, unsigned lo,
                           unsigned n, unsigned stride = 1) {
  std::vector<float> p(n);
  float mx = -1e30f;
  for (unsigned i = 0; i < n; ++i) mx = std::max(mx, z[lo + i * stride]);
  float sum = 0;
  for (unsigned i = 0; i < n; ++i) {
    p[i] = std::exp(z[lo + i * stride] - mx);
    sum += p[i];
  }
  for (auto& x : p) x /= sum;
  return p;
}

}  // namespace

double gradient_check(Rng& rng) {
  // Tiny network: conv 2@3x3 + pool on an 8x8 input, fc to 3 classes.
  Network net;
  net.in_c = 1;
  net.in_h = net.in_w = 8;
  ConvLayer c;
  c.in_c = 1;
  c.in_h = c.in_w = 8;
  c.out_c = 2;
  c.k = 3;
  c.pool = true;
  c.weights.resize(2 * 9);
  c.bias.assign(2, 0.1f);
  he_init(c.weights, 9, rng);
  net.convs.push_back(c);
  FcLayer f;
  f.in_n = 2 * 3 * 3;
  f.out_n = 3;
  f.relu = false;
  f.weights.resize(f.out_n * f.in_n);
  f.bias.assign(3, 0.0f);
  he_init(f.weights, f.in_n, rng);
  net.fcs.push_back(f);

  Tensor input(1, 8, 8);
  for (auto& v : input.data) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const unsigned label = 1;

  auto loss_of = [&]() {
    const auto logits = host_forward(net, input);
    const auto p = softmax(logits, 0, 3);
    return -std::log(std::max(p[label], 1e-12f));
  };

  // Analytic gradients via one trainer step with lr 0 (no update), then a
  // manual read of the accumulated dw. Trainer applies updates, so use a
  // dedicated Trainer with lr=0 and inspect the velocity-free gradients.
  Trainer tr(net);
  tr.lr = 0.0f;
  tr.momentum = 0.0f;
  Trainer::Cache cache;
  const auto logits = tr.forward(input, cache);
  const auto p = softmax(logits, 0, 3);
  std::vector<float> dout(3);
  for (unsigned i = 0; i < 3; ++i)
    dout[i] = p[i] - (i == label ? 1.0f : 0.0f);
  tr.backward(cache, std::move(dout));

  double max_rel = 0.0;
  const double eps = 1e-3;
  auto check = [&](std::vector<float>& w, const std::vector<float>& dw,
                   std::size_t idx) {
    const float orig = w[idx];
    w[idx] = orig + static_cast<float>(eps);
    const double lp = loss_of();
    w[idx] = orig - static_cast<float>(eps);
    const double lm = loss_of();
    w[idx] = orig;
    const double fd = (lp - lm) / (2 * eps);
    const double an = dw[idx];
    const double denom = std::max({std::fabs(fd), std::fabs(an), 1e-4});
    max_rel = std::max(max_rel, std::fabs(fd - an) / denom);
  };
  for (int i = 0; i < 12; ++i)
    check(net.convs[0].weights, tr.cg[0].dw,
          rng.below(net.convs[0].weights.size()));
  check(net.convs[0].bias, tr.cg[0].db, 0);
  for (int i = 0; i < 12; ++i)
    check(net.fcs[0].weights, tr.fg[0].dw,
          rng.below(net.fcs[0].weights.size()));
  check(net.fcs[0].bias, tr.fg[0].db, 2);
  return max_rel;
}

double train_lenet(Network& net, Rng& rng, unsigned steps) {
  Trainer tr(net);
  tr.lr = 0.004f;
  for (unsigned s = 0; s < steps; ++s) {
    if (s == steps / 2 || s == steps * 3 / 4) tr.lr *= 0.3f;
    const DigitSample sample = make_digit(rng);
    Trainer::Cache cache;
    const auto logits = tr.forward(sample.image, cache);
    const auto p = softmax(logits, 0, 10);
    std::vector<float> dout(10);
    for (unsigned i = 0; i < 10; ++i)
      dout[i] = p[i] - (i == sample.label ? 1.0f : 0.0f);
    tr.backward(cache, std::move(dout));
  }
  // Holdout accuracy.
  unsigned correct = 0, total = 500;
  for (unsigned i = 0; i < total; ++i) {
    const DigitSample sample = make_digit(rng);
    if (classify(host_forward(net, sample.image)) == sample.label) ++correct;
  }
  return static_cast<double>(correct) / total;
}

namespace {

/// Builds the detector training target and loss gradient for one scene.
/// Raw layout: [channel][gy][gx] with kDetChannels channels.
std::vector<float> det_grad(const std::vector<float>& raw,
                            const SceneSample& scene) {
  constexpr unsigned G = kDetGrid;
  std::vector<float> dout(raw.size(), 0.0f);
  auto at = [&](unsigned ch, unsigned gy, unsigned gx) {
    return (ch * G + gy) * G + gx;
  };
  // Cell -> object assignment: every cell whose centre lies inside an
  // object's box is positive (so neighbouring cells that fire carry
  // trained box offsets too).
  std::vector<int> owner(G * G, -1);
  for (unsigned gy = 0; gy < G; ++gy) {
    for (unsigned gx = 0; gx < G; ++gx) {
      const float cx = (gx + 0.5f) / G, cy = (gy + 0.5f) / G;
      for (std::size_t o = 0; o < scene.objects.size(); ++o) {
        const auto& obj = scene.objects[o];
        if (std::fabs(cx - obj.cx) <= obj.bw / 2 &&
            std::fabs(cy - obj.cy) <= obj.bh / 2)
          owner[gy * G + gx] = static_cast<int>(o);
      }
    }
  }
  // The centre cell is always positive even for tiny objects.
  for (std::size_t o = 0; o < scene.objects.size(); ++o) {
    const auto& obj = scene.objects[o];
    const auto gx = std::min(G - 1, static_cast<unsigned>(obj.cx * G));
    const auto gy = std::min(G - 1, static_cast<unsigned>(obj.cy * G));
    owner[gy * G + gx] = static_cast<int>(o);
  }
  for (unsigned gy = 0; gy < G; ++gy) {
    for (unsigned gx = 0; gx < G; ++gx) {
      const int o = owner[gy * G + gx];
      // Objectness BCE with YOLO-style imbalance weighting (few positive
      // cells among many negatives).
      const float obj_target = o >= 0 ? 1.0f : 0.0f;
      const float obj_p = sigmoid(raw[at(0, gy, gx)]);
      const float obj_w = o >= 0 ? 4.0f : 0.5f;
      dout[at(0, gy, gx)] = obj_w * (obj_p - obj_target);
      if (o < 0) continue;
      const auto& ob = scene.objects[static_cast<std::size_t>(o)];
      // Class cross-entropy (softmax over channels 1..3).
      const auto p = softmax(raw, at(1, gy, gx), kDetClasses, G * G);
      for (unsigned c = 0; c < kDetClasses; ++c)
        dout[at(1 + c, gy, gx)] =
            2.0f * (p[c] - (c == ob.cls ? 1.0f : 0.0f));
      // Box regression: plain linear outputs with L2 loss (a squashing
      // nonlinearity here saturates early in training and never recovers).
      const float tx = ob.cx * G - gx, ty = ob.cy * G - gy;
      const float targets[4] = {tx, ty, ob.bw, ob.bh};
      for (unsigned b = 0; b < 4; ++b) {
        const unsigned ch = 1 + kDetClasses + b;
        const float v = raw[at(ch, gy, gx)];
        dout[at(ch, gy, gx)] = 1.0f * (v - targets[b]);
      }
    }
  }
  return dout;
}

}  // namespace

double train_yololite(Network& net, Rng& rng, unsigned steps) {
  Trainer tr(net);
  tr.lr = 0.002f;
  for (unsigned s = 0; s < steps; ++s) {
    if (s == steps / 2 || s == steps * 3 / 4) tr.lr *= 0.3f;
    const SceneSample scene = make_scene(rng);
    Trainer::Cache cache;
    const auto raw = tr.forward(scene.image, cache);
    tr.backward(cache, det_grad(raw, scene));
  }
  // Holdout F1.
  unsigned tp = 0, fp = 0, fn = 0;
  for (unsigned i = 0; i < 300; ++i) {
    const SceneSample scene = make_scene(rng);
    const auto dets = decode_detections(host_forward(net, scene.image));
    std::vector<bool> used(scene.objects.size(), false);
    for (const auto& d : dets) {
      bool matched = false;
      for (std::size_t o = 0; o < scene.objects.size(); ++o) {
        if (used[o] || scene.objects[o].cls != d.cls) continue;
        Detection g{scene.objects[o].cls, scene.objects[o].cx,
                    scene.objects[o].cy, scene.objects[o].bw,
                    scene.objects[o].bh, 1.0f};
        if (iou(d, g) >= 0.4f) {
          used[o] = true;
          matched = true;
          break;
        }
      }
      matched ? ++tp : ++fp;
    }
    for (bool u : used)
      if (!u) ++fn;
  }
  const double denom = 2.0 * tp + fp + fn;
  return denom == 0 ? 0.0 : 2.0 * tp / denom;
}

// ----------------------------------------------------- decoding / metrics

unsigned classify(const std::vector<float>& logits) {
  return static_cast<unsigned>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

std::vector<Detection> decode_detections(const std::vector<float>& raw,
                                         float threshold) {
  constexpr unsigned G = kDetGrid;
  std::vector<Detection> dets;
  auto at = [&](unsigned ch, unsigned gy, unsigned gx) {
    return (ch * G + gy) * G + gx;
  };
  for (unsigned gy = 0; gy < G; ++gy) {
    for (unsigned gx = 0; gx < G; ++gx) {
      const float score = sigmoid(raw[at(0, gy, gx)]);
      if (score < threshold) continue;
      Detection d;
      d.score = score;
      const auto p = softmax(raw, at(1, gy, gx), kDetClasses, G * G);
      d.cls = static_cast<unsigned>(
          std::max_element(p.begin(), p.end()) - p.begin());
      const auto box = [&](unsigned b, float lo, float hi) {
        return std::clamp(raw[at(1 + kDetClasses + b, gy, gx)], lo, hi);
      };
      d.cx = (gx + box(0, 0.0f, 1.0f)) / G;
      d.cy = (gy + box(1, 0.0f, 1.0f)) / G;
      d.bw = box(2, 0.02f, 1.0f);
      d.bh = box(3, 0.02f, 1.0f);
      dets.push_back(d);
    }
  }
  // Non-maximum suppression (as in YOLOv3): an object spanning several grid
  // cells fires neighbours; keep only the highest-scored box per cluster.
  std::sort(dets.begin(), dets.end(),
            [](const Detection& a, const Detection& b) {
              return a.score > b.score;
            });
  std::vector<Detection> kept;
  for (const auto& d : dets) {
    bool suppressed = false;
    for (const auto& k : kept)
      if (iou(d, k) > 0.45f) {
        suppressed = true;
        break;
      }
    if (!suppressed) kept.push_back(d);
  }
  return kept;
}

float iou(const Detection& a, const Detection& b) {
  const float ax0 = a.cx - a.bw / 2, ax1 = a.cx + a.bw / 2;
  const float ay0 = a.cy - a.bh / 2, ay1 = a.cy + a.bh / 2;
  const float bx0 = b.cx - b.bw / 2, bx1 = b.cx + b.bw / 2;
  const float by0 = b.cy - b.bh / 2, by1 = b.cy + b.bh / 2;
  const float ix = std::max(0.0f, std::min(ax1, bx1) - std::max(ax0, bx0));
  const float iy = std::max(0.0f, std::min(ay1, by1) - std::max(ay0, by0));
  const float inter = ix * iy;
  const float uni = (ax1 - ax0) * (ay1 - ay0) + (bx1 - bx0) * (by1 - by0) -
                    inter;
  return uni <= 0 ? 0.0f : inter / uni;
}

bool detections_match(const std::vector<Detection>& a,
                      const std::vector<Detection>& b) {
  if (a.size() != b.size()) return false;
  std::vector<bool> used(b.size(), false);
  for (const auto& da : a) {
    bool matched = false;
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (used[i] || b[i].cls != da.cls) continue;
      if (iou(da, b[i]) >= 0.5f) {
        used[i] = true;
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

// ---------------------------------------------------------- serialization

void Network::save_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot write " + path);
  auto put_u32 = [&](std::uint32_t v) {
    os.write(reinterpret_cast<const char*>(&v), 4);
  };
  auto put_vec = [&](const std::vector<float>& v) {
    put_u32(static_cast<std::uint32_t>(v.size()));
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * 4));
  };
  os.write("GFNN", 4);
  put_u32(static_cast<std::uint32_t>(name.size()));
  os.write(name.data(), static_cast<std::streamsize>(name.size()));
  put_u32(in_c);
  put_u32(in_h);
  put_u32(in_w);
  put_u32(static_cast<std::uint32_t>(convs.size()));
  for (const auto& c : convs) {
    for (std::uint32_t v : {c.in_c, c.in_h, c.in_w, c.out_c, c.k,
                            static_cast<unsigned>(c.relu),
                            static_cast<unsigned>(c.pool)})
      put_u32(v);
    put_vec(c.weights);
    put_vec(c.bias);
  }
  put_u32(static_cast<std::uint32_t>(fcs.size()));
  for (const auto& f : fcs) {
    for (std::uint32_t v :
         {f.in_n, f.out_n, static_cast<unsigned>(f.relu)})
      put_u32(v);
    put_vec(f.weights);
    put_vec(f.bias);
  }
}

Network Network::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot read " + path);
  auto get_u32 = [&]() {
    std::uint32_t v = 0;
    is.read(reinterpret_cast<char*>(&v), 4);
    return v;
  };
  auto get_vec = [&]() {
    std::vector<float> v(get_u32());
    is.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(v.size() * 4));
    return v;
  };
  char magic[4];
  is.read(magic, 4);
  if (std::string(magic, 4) != "GFNN")
    throw std::runtime_error("bad network file " + path);
  Network net;
  net.name.resize(get_u32());
  is.read(net.name.data(), static_cast<std::streamsize>(net.name.size()));
  net.in_c = get_u32();
  net.in_h = get_u32();
  net.in_w = get_u32();
  const auto n_convs = get_u32();
  for (std::uint32_t i = 0; i < n_convs; ++i) {
    ConvLayer c;
    c.in_c = get_u32();
    c.in_h = get_u32();
    c.in_w = get_u32();
    c.out_c = get_u32();
    c.k = get_u32();
    c.relu = get_u32() != 0;
    c.pool = get_u32() != 0;
    c.weights = get_vec();
    c.bias = get_vec();
    net.convs.push_back(std::move(c));
  }
  const auto n_fcs = get_u32();
  for (std::uint32_t i = 0; i < n_fcs; ++i) {
    FcLayer f;
    f.in_n = get_u32();
    f.out_n = get_u32();
    f.relu = get_u32() != 0;
    f.weights = get_vec();
    f.bias = get_vec();
    net.fcs.push_back(std::move(f));
  }
  return net;
}

}  // namespace gpufi::nn
