#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace gpufi::nn {

/// Minimal dense CHW tensor of floats.
struct Tensor {
  unsigned c = 1, h = 1, w = 1;
  std::vector<float> data;

  Tensor() = default;
  Tensor(unsigned c_, unsigned h_, unsigned w_)
      : c(c_), h(h_), w(w_), data(static_cast<std::size_t>(c_) * h_ * w_) {}

  std::size_t size() const { return data.size(); }
  float& at(unsigned ci, unsigned y, unsigned x) {
    return data[(static_cast<std::size_t>(ci) * h + y) * w + x];
  }
  float at(unsigned ci, unsigned y, unsigned x) const {
    return data[(static_cast<std::size_t>(ci) * h + y) * w + x];
  }
  void zero() { std::fill(data.begin(), data.end(), 0.0f); }
};

}  // namespace gpufi::nn
