#include "nn/gpu_infer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "isa/isa.hpp"
#include "swfi/swfi.hpp"

namespace gpufi::nn {

using namespace gpufi::isa;

namespace {

unsigned pad8(unsigned v) { return (v + 7) & ~7u; }

/// Rectangular tiled GEMM kernel: C[mp x np] = A[mp x kp] * B[kp x np].
/// One 8x8 tile of C per CTA; K consumed in 8-wide tiles via shared memory.
/// params: A, B, C, np, kp, kp/8.
Program gemm_kernel() {
  KernelBuilder kb("nn_gemm");
  kb.shared(128);
  kb.mov(0, S(SReg::TID_X));
  kb.mov(1, S(SReg::TID_Y));
  kb.mov(2, S(SReg::CTAID_X));
  kb.mov(3, S(SReg::CTAID_Y));
  kb.imad(4, R(3), I(8), R(1));   // row
  kb.imad(5, R(2), I(8), R(0));   // col
  kb.movf(6, 0.0f);               // acc
  kb.movi(7, 0);                  // ktile
  kb.imad(12, R(1), I(8), R(0));  // shared idx
  kb.imul(13, R(1), I(8));        // ty*8
  kb.loop_begin();
  kb.isetp(0, CmpOp::LT, R(7), S(SReg::PARAM5));
  kb.loop_while(0);
  kb.imad(8, R(7), I(8), R(0));                    // t*8+tx
  kb.imad(8, R(4), S(SReg::PARAM4), R(8));         // row*kp + ...
  kb.iadd(8, R(8), S(SReg::PARAM0));
  kb.gld(9, R(8));
  kb.sts(R(12), R(9));                             // sA
  kb.imad(8, R(7), I(8), R(1));                    // t*8+ty
  kb.imad(8, R(8), S(SReg::PARAM3), R(5));         // (t*8+ty)*np + col
  kb.iadd(8, R(8), S(SReg::PARAM1));
  kb.gld(9, R(8));
  kb.sts(R(12), R(9), 64);                         // sB
  kb.bar();
  kb.movi(10, 0);
  kb.loop_begin();
  kb.isetp(1, CmpOp::LT, R(10), I(8));
  kb.loop_while(1);
  kb.iadd(11, R(13), R(10));
  kb.lds(14, R(11));
  kb.imad(11, R(10), I(8), R(0));
  kb.lds(15, R(11), 64);
  kb.ffma(6, R(14), R(15), R(6));
  kb.iadd(10, R(10), I(1));
  kb.loop_end();
  kb.bar();
  kb.iadd(7, R(7), I(1));
  kb.loop_end();
  kb.imad(8, R(4), S(SReg::PARAM3), R(5));
  kb.iadd(8, R(8), S(SReg::PARAM2));
  kb.gst(R(8), R(6));
  return kb.build();
}

}  // namespace

GpuInference::GpuInference(const Network& net) : net_(&net) {
  std::size_t max_a = 0, max_b = 0, max_c = 0;
  auto add_gemm = [&](Gemm g) {
    g.mp = pad8(g.m);
    g.np = pad8(g.n);
    g.kp = pad8(g.k);
    max_a = std::max(max_a, static_cast<std::size_t>(g.mp) * g.kp);
    max_b = std::max(max_b, static_cast<std::size_t>(g.kp) * g.np);
    max_c = std::max(max_c, static_cast<std::size_t>(g.mp) * g.np);
    gemms_.push_back(std::move(g));
  };
  for (const auto& c : net.convs) {
    Gemm g;
    g.m = c.gemm_m();
    g.n = c.gemm_n();
    g.k = c.gemm_k();
    g.conv = &c;
    add_gemm(std::move(g));
  }
  for (const auto& f : net.fcs) {
    Gemm g;
    g.m = f.out_n;
    g.n = 1;
    g.k = f.in_n;
    g.fc = &f;
    add_gemm(std::move(g));
  }
  // Pre-pad the weight matrices.
  for (auto& g : gemms_) {
    g.a.assign(static_cast<std::size_t>(g.mp) * g.kp, 0.0f);
    const std::vector<float>& w = g.conv ? g.conv->weights : g.fc->weights;
    for (unsigned r = 0; r < g.m; ++r)
      for (unsigned c = 0; c < g.k; ++c)
        g.a[r * g.kp + c] = w[static_cast<std::size_t>(r) * g.k + c];
  }
  device_words_ = max_a + max_b + max_c + 64;
}

unsigned GpuInference::gemm_layers() const {
  return static_cast<unsigned>(gemms_.size());
}

std::pair<unsigned, unsigned> GpuInference::layer_dims(unsigned i) const {
  return {gemms_.at(i).m, gemms_.at(i).n};
}

std::pair<unsigned, unsigned> GpuInference::layer_tiles(unsigned i) const {
  return {gemms_.at(i).mp / 8, gemms_.at(i).np / 8};
}

std::optional<std::vector<float>> GpuInference::run(
    emu::Device& dev, const Tensor& input, const InferOptions& opts) const {
  if (dev.global_words() < device_words_)
    throw std::invalid_argument("GpuInference: device too small");
  const Program kernel = gemm_kernel();

  Tensor t = input;
  std::vector<float> vec;  // flat activations once the fc stack starts

  for (std::size_t li = 0; li < gemms_.size(); ++li) {
    const Gemm& g = gemms_[li];
    // Build the padded B matrix (im2col for convs, column vector for fcs).
    std::vector<float> b(static_cast<std::size_t>(g.kp) * g.np, 0.0f);
    if (g.conv) {
      const ConvLayer& c = *g.conv;
      const unsigned ch = c.conv_h(), cw = c.conv_w();
      for (unsigned ic = 0; ic < c.in_c; ++ic)
        for (unsigned ky = 0; ky < c.k; ++ky)
          for (unsigned kx = 0; kx < c.k; ++kx) {
            const unsigned krow = (ic * c.k + ky) * c.k + kx;
            for (unsigned y = 0; y < ch; ++y)
              for (unsigned x = 0; x < cw; ++x)
                b[static_cast<std::size_t>(krow) * g.np + y * cw + x] =
                    t.at(ic, y + ky, x + kx);
          }
    } else {
      for (unsigned i = 0; i < g.k; ++i)
        b[static_cast<std::size_t>(i) * g.np] = vec[i];
    }

    // Device GEMM.
    const std::uint32_t a_base = 0;
    const auto b_base = static_cast<std::uint32_t>(g.a.size());
    const auto c_base = static_cast<std::uint32_t>(g.a.size() + b.size());
    dev.copy_in_f(a_base, g.a.data(), g.a.size());
    dev.copy_in_f(b_base, b.data(), b.size());
    Program p = kernel;
    p.params = {a_base, b_base, c_base, g.np, g.kp, g.kp / 8, 0, 0};
    emu::LaunchConfig cfg;
    cfg.hook = opts.hook;
    cfg.oob_wraps = true;
    cfg.max_retired = opts.launch_budget;
    const auto r =
        dev.launch(p, emu::LaunchDims{g.np / 8, g.mp / 8, 8, 8}, cfg);
    if (r.status != emu::LaunchStatus::Ok) return std::nullopt;
    std::vector<float> cmat(static_cast<std::size_t>(g.mp) * g.np);
    dev.copy_out_f(c_base, cmat.data(), cmat.size());

    // t-MxM tile corruption on this layer's output matrix.
    if (opts.tile_fault && opts.tile_fault->layer == li) {
      const TileFault& tf = *opts.tile_fault;
      Rng sign_rng(tf.sign_seed);
      for (const auto& e : tf.corruption.elements) {
        const unsigned row = tf.tile_row * 8 + e.row;
        const unsigned col = tf.tile_col * 8 + e.col;
        if (row >= g.mp || col >= g.np) continue;
        float& v = cmat[static_cast<std::size_t>(row) * g.np + col];
        const double sign = sign_rng.chance(0.5) ? 1.0 : -1.0;
        v = static_cast<float>(v * (1.0 + sign * e.rel_error));
      }
    }

    // Bias + activation (+ pooling) on the host.
    if (g.conv) {
      const ConvLayer& c = *g.conv;
      Tensor pre(c.out_c, c.conv_h(), c.conv_w());
      for (unsigned oc = 0; oc < c.out_c; ++oc)
        for (unsigned i = 0; i < pre.h * pre.w; ++i) {
          float v = cmat[static_cast<std::size_t>(oc) * g.np + i] +
                    c.bias[oc];
          if (c.relu && v < 0) v *= 0.1f;  // leaky rectifier (Darknet)
          pre.data[static_cast<std::size_t>(oc) * pre.h * pre.w + i] = v;
        }
      if (c.pool) {
        Tensor pooled(pre.c, pre.h / 2, pre.w / 2);
        std::size_t o = 0;
        for (unsigned ch2 = 0; ch2 < pre.c; ++ch2)
          for (unsigned y = 0; y < pooled.h; ++y)
            for (unsigned x = 0; x < pooled.w; ++x, ++o)
              pooled.data[o] = std::max(
                  std::max(pre.at(ch2, 2 * y, 2 * x),
                           pre.at(ch2, 2 * y, 2 * x + 1)),
                  std::max(pre.at(ch2, 2 * y + 1, 2 * x),
                           pre.at(ch2, 2 * y + 1, 2 * x + 1)));
        t = std::move(pooled);
      } else {
        t = std::move(pre);
      }
      if (li + 1 < gemms_.size() && gemms_[li + 1].fc) vec = t.data;
    } else {
      const FcLayer& f = *g.fc;
      vec.assign(f.out_n, 0.0f);
      for (unsigned o = 0; o < f.out_n; ++o) {
        float v = cmat[static_cast<std::size_t>(o) * g.np] + f.bias[o];
        if (f.relu && v < 0) v *= 0.1f;  // leaky rectifier
        vec[o] = v;
      }
    }
  }
  return net_->fcs.empty() ? t.data : vec;
}

std::string_view cnn_fault_model_name(CnnFaultModel m) {
  switch (m) {
    case CnnFaultModel::SingleBitFlip: return "single bit-flip";
    case CnnFaultModel::RelativeError: return "relative error";
    case CnnFaultModel::TiledMxM: return "t-MxM tile";
  }
  return "?";
}

CnnCampaignResult run_cnn_campaign(const Network& net, CnnTask task,
                                   CnnFaultModel model,
                                   const syndrome::Database* db,
                                   std::size_t n_injections,
                                   std::uint64_t seed) {
  CnnCampaignResult result;
  GpuInference infer(net);

  // Fixed deterministic input (one inference per injection, as NVBitFI
  // evaluates one application execution per fault).
  Rng input_rng(0xCAFE);
  Tensor input;
  if (task == CnnTask::Classification) {
    input = make_digit(input_rng).image;
  } else {
    input = make_scene(input_rng).image;
  }

  // Golden run: profile (for injection targeting) + reference output.
  swfi::ProfileHook profile;
  emu::Device golden_dev(infer.device_words());
  InferOptions gopts;
  gopts.hook = &profile;
  const auto golden = infer.run(golden_dev, input, gopts);
  if (!golden) throw std::runtime_error("golden CNN inference failed");
  const unsigned golden_class =
      task == CnnTask::Classification ? classify(*golden) : 0;
  const auto golden_dets = task == CnnTask::Detection
                               ? decode_detections(*golden)
                               : std::vector<Detection>{};

  Rng rng(seed);
  for (std::size_t i = 0; i < n_injections; ++i) {
    emu::Device dev(infer.device_words());
    InferOptions opts;
    std::optional<swfi::InjectHook> hook;
    TileFault tf;
    if (model == CnnFaultModel::TiledMxM) {
      // Random layer, random tile, RTL-characterized pattern + errors.
      tf.layer = static_cast<unsigned>(rng.below(infer.gemm_layers()));
      const auto [tm, tn] = infer.layer_tiles(tf.layer);
      tf.tile_row = static_cast<unsigned>(rng.below(tm));
      tf.tile_col = static_cast<unsigned>(rng.below(tn));
      tf.sign_seed = rng();
      tf.corruption = db ? db->sample_tile_corruption(8, 8, rng)
                         : syndrome::TileCorruption{};
      opts.tile_fault = &tf;
    } else {
      const auto target = rng.below(profile.candidates());
      hook.emplace(model == CnnFaultModel::SingleBitFlip
                       ? swfi::FaultModel::SingleBitFlip
                       : swfi::FaultModel::RelativeError,
                   target, rng(), db, true);
      opts.hook = &*hook;
    }
    const auto out = infer.run(dev, input, opts);
    ++result.injections;
    if (!out) {
      ++result.due;
      continue;
    }
    if (*out == *golden) {
      ++result.masked;
      continue;
    }
    ++result.sdc;
    if (task == CnnTask::Classification) {
      if (classify(*out) != golden_class) ++result.critical;
    } else {
      if (!detections_match(decode_detections(*out), golden_dets))
        ++result.critical;
    }
  }
  return result;
}

}  // namespace gpufi::nn
