#include "apps/apps.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "fparith/fp32.hpp"
#include "fparith/sfu.hpp"
#include "isa/isa.hpp"

namespace gpufi::apps {

using namespace gpufi::isa;
using emu::Device;
using emu::InstrumentHook;
using emu::LaunchConfig;
using emu::LaunchDims;
using emu::LaunchStatus;

namespace {

bool launch_ok(Device& dev, const Program& p, const LaunchDims& dims,
               InstrumentHook* hook, std::uint64_t budget) {
  LaunchConfig cfg;
  cfg.hook = hook;
  // Application launches model a real GPU with a large mapped address
  // space: corrupted addresses fetch wrong data instead of faulting.
  cfg.oob_wraps = true;
  // Per-launch watchdog: an injected fault that corrupts a loop counter
  // hangs the kernel; the budget (a few times the golden instruction
  // count) converts that into a timely DUE.
  cfg.max_retired = budget;
  return dev.launch(p, dims, cfg).status == LaunchStatus::Ok;
}

bool close(float a, float b, float tol) {
  const float d = std::fabs(a - b);
  return d <= tol * std::max({1.0f, std::fabs(a), std::fabs(b)});
}

std::vector<std::uint32_t> read_region(const Device& dev, std::uint32_t base,
                                       std::size_t words) {
  std::vector<std::uint32_t> v(words);
  dev.copy_out(base, v.data(), words);
  return v;
}

}  // namespace

// ===========================================================================
// MxM
// ===========================================================================

namespace {

/// Tiled C = A x B; one 8x8 tile of C per CTA, sA/sB staged per K-tile.
Program mxm_kernel() {
  KernelBuilder kb("mxm");
  kb.shared(128);
  kb.mov(0, S(SReg::TID_X));
  kb.mov(1, S(SReg::TID_Y));
  kb.mov(2, S(SReg::CTAID_X));
  kb.mov(3, S(SReg::CTAID_Y));
  kb.imad(4, R(3), I(8), R(1));   // row
  kb.imad(5, R(2), I(8), R(0));   // col
  kb.movf(6, 0.0f);               // acc
  kb.movi(7, 0);                  // tile index t
  kb.imad(12, R(1), I(8), R(0));  // shared idx = ty*8+tx
  kb.imul(13, R(1), I(8));        // ty*8
  kb.loop_begin();
  kb.isetp(0, CmpOp::LT, R(7), S(SReg::PARAM4));  // t < n/8
  kb.loop_while(0);
  // sA[idx] = A[row*n + t*8+tx]
  kb.imad(8, R(7), I(8), R(0));
  kb.imad(8, R(4), S(SReg::PARAM3), R(8));
  kb.iadd(8, R(8), S(SReg::PARAM0));
  kb.gld(9, R(8));
  kb.sts(R(12), R(9));
  // sB[idx] = B[(t*8+ty)*n + col]
  kb.imad(8, R(7), I(8), R(1));
  kb.imad(8, R(8), S(SReg::PARAM3), R(5));
  kb.iadd(8, R(8), S(SReg::PARAM1));
  kb.gld(9, R(8));
  kb.sts(R(12), R(9), 64);
  kb.bar();
  kb.movi(10, 0);  // k
  kb.loop_begin();
  kb.isetp(1, CmpOp::LT, R(10), I(8));
  kb.loop_while(1);
  kb.iadd(11, R(13), R(10));
  kb.lds(14, R(11));
  kb.imad(11, R(10), I(8), R(0));
  kb.lds(15, R(11), 64);
  kb.ffma(6, R(14), R(15), R(6));
  kb.iadd(10, R(10), I(1));
  kb.loop_end();
  kb.bar();
  kb.iadd(7, R(7), I(1));
  kb.loop_end();
  kb.imad(8, R(4), S(SReg::PARAM3), R(5));
  kb.iadd(8, R(8), S(SReg::PARAM2));
  kb.gst(R(8), R(6));
  return kb.build();
}

std::vector<float> mxm_inputs(unsigned n, std::uint64_t salt) {
  Rng rng(0xA11CE + salt);
  std::vector<float> v(static_cast<std::size_t>(n) * n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

}  // namespace

HpcApp make_mxm(unsigned n) {
  const unsigned words = n * n;
  const std::uint32_t a_base = 0, b_base = words, c_base = 2 * words;
  HpcApp h;
  h.app.name = "MxM";
  h.app.device_words = 3 * words + 64;
  h.app.memory_is_float = true;
  h.app.run = [=](Device& dev, InstrumentHook* hook) {
    const auto a = mxm_inputs(n, 1), b = mxm_inputs(n, 2);
    dev.copy_in_f(a_base, a.data(), words);
    dev.copy_in_f(b_base, b.data(), words);
    Program p = mxm_kernel();
    p.params = {a_base, b_base, c_base, n, n / 8, 0, 0, 0};
    // The golden run retires ~11*n^3 thread-instructions, so this watchdog
    // is ~11x golden at every problem size (a flat budget is dozens of
    // times golden for small n, and a fault-induced hang then costs dozens
    // of times a healthy trial before it converts into a DUE).
    const auto budget = 120ull * n * n * n;
    return launch_ok(dev, p, LaunchDims{n / 8, n / 8, 8, 8}, hook, budget);
  };
  h.app.read_output = [=](const Device& dev) {
    return read_region(dev, c_base, words);
  };
  h.validate = [=](const Device& dev) {
    const auto a = mxm_inputs(n, 1), b = mxm_inputs(n, 2);
    for (unsigned r = 0; r < n; ++r) {
      for (unsigned c = 0; c < n; ++c) {
        float acc = 0.0f;
        // Same accumulation order as the kernel (k-major within tiles).
        for (unsigned k = 0; k < n; ++k)
          acc = std::fmaf(a[r * n + k], b[k * n + c], acc);
        if (!close(dev.read_float(c_base + r * n + c), acc, 1e-4f))
          return false;
      }
    }
    return true;
  };
  return h;
}

// ===========================================================================
// Gaussian elimination (augmented matrix n x (n+1))
// ===========================================================================

namespace {

/// Fan1: multipliers m[i] = A[i*w+k] / A[k*w+k] for i > k.
Program gaussian_fan1() {
  KernelBuilder kb("gaussian_fan1");
  kb.mov(0, S(SReg::TID_X));  // i
  kb.isetp(0, CmpOp::GT, R(0), S(SReg::PARAM4));  // i > k
  kb.if_begin(0);
  kb.imad(1, R(0), S(SReg::PARAM3), S(SReg::PARAM4));  // i*w + k
  kb.iadd(1, R(1), S(SReg::PARAM0));
  kb.gld(2, R(1));                                     // A[i][k]
  kb.imad(3, S(SReg::PARAM4), S(SReg::PARAM3), S(SReg::PARAM4));
  kb.iadd(3, R(3), S(SReg::PARAM0));
  kb.gld(4, R(3));                                     // A[k][k]
  kb.frcp(4, R(4));
  kb.fmul(5, R(2), R(4));
  kb.iadd(6, R(0), S(SReg::PARAM1));                   // M + i
  kb.gst(R(6), R(5));
  kb.if_end();
  return kb.build();
}

std::vector<float> gaussian_inputs(unsigned n, unsigned w) {
  Rng rng(0xBEEF);
  std::vector<float> a(static_cast<std::size_t>(n) * w);
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = 0; j < w; ++j) {
      float v = static_cast<float>(rng.uniform(-1.0, 1.0));
      if (i == j) v += 8.0f;  // diagonal dominance: no pivoting needed
      a[i * w + j] = v;
    }
  }
  return a;
}

}  // namespace

HpcApp make_gaussian(unsigned n) {
  const unsigned w = n + 1;  // augmented with the b column
  const std::uint32_t a_base = 0, m_base = n * w;
  HpcApp h;
  h.app.name = "Gaussian";
  h.app.device_words = n * w + n + 64;
  h.app.run = [=](Device& dev, InstrumentHook* hook) {
    const auto a = gaussian_inputs(n, w);
    dev.copy_in_f(a_base, a.data(), a.size());
    Program fan1 = gaussian_fan1();
    // Fan2: A[i][j] = A[i][j] - m*A[k][j], via FFMA with negated m.
    KernelBuilder kb("gaussian_fan2");
    kb.mov(0, S(SReg::TID_X));
    kb.mov(1, S(SReg::CTAID_X));
    kb.isetp(0, CmpOp::GT, R(1), S(SReg::PARAM4));
    kb.if_begin(0);
    kb.iadd(2, R(1), S(SReg::PARAM1));
    kb.gld(3, R(2));
    kb.fmul(3, R(3), F(-1.0f));                          // -m
    kb.imad(4, S(SReg::PARAM4), S(SReg::PARAM3), R(0));
    kb.iadd(4, R(4), S(SReg::PARAM0));
    kb.gld(5, R(4));
    kb.imad(6, R(1), S(SReg::PARAM3), R(0));
    kb.iadd(6, R(6), S(SReg::PARAM0));
    kb.gld(7, R(6));
    kb.ffma(8, R(3), R(5), R(7));                        // A[i][j] - m*A[k][j]
    kb.gst(R(6), R(8));
    kb.if_end();
    Program fan2 = kb.build();
    for (unsigned k = 0; k + 1 < n; ++k) {
      fan1.params = {a_base, m_base, 0, w, k, 0, 0, 0};
      if (!launch_ok(dev, fan1, LaunchDims{1, 1, n, 1}, hook, 400'000))
        return false;
      fan2.params = {a_base, m_base, 0, w, k, 0, 0, 0};
      if (!launch_ok(dev, fan2, LaunchDims{n, 1, w, 1}, hook, 400'000))
        return false;
    }
    return true;
  };
  h.app.read_output = [=](const Device& dev) {
    return read_region(dev, a_base, n * w);
  };
  h.validate = [=](const Device& dev) {
    auto a = gaussian_inputs(n, w);
    for (unsigned k = 0; k + 1 < n; ++k) {
      const float rcp = 1.0f / a[k * w + k];
      for (unsigned i = k + 1; i < n; ++i) {
        const float m = a[i * w + k] * rcp;
        for (unsigned j = 0; j < w; ++j)
          a[i * w + j] = std::fmaf(-m, a[k * w + j], a[i * w + j]);
      }
    }
    for (unsigned i = 0; i < n; ++i)
      for (unsigned j = 0; j < w; ++j)
        if (!close(dev.read_float(a_base + i * w + j), a[i * w + j], 2e-3f))
          return false;
    return true;
  };
  return h;
}

// ===========================================================================
// LUD (in-place Doolittle, diagonally dominant input)
// ===========================================================================

HpcApp make_lud(unsigned n) {
  const std::uint32_t a_base = 0;
  HpcApp h;
  h.app.name = "LUD";
  h.app.device_words = n * n + 64;
  auto inputs = [n]() {
    Rng rng(0x10D);
    std::vector<float> a(static_cast<std::size_t>(n) * n);
    for (unsigned i = 0; i < n; ++i)
      for (unsigned j = 0; j < n; ++j) {
        float v = static_cast<float>(rng.uniform(-1.0, 1.0));
        if (i == j) v += 8.0f;
        a[i * n + j] = v;
      }
    return a;
  };
  h.app.run = [=](Device& dev, InstrumentHook* hook) {
    const auto a = inputs();
    dev.copy_in_f(a_base, a.data(), a.size());
    // Column kernel: A[i][k] /= A[k][k] for i > k.
    KernelBuilder c("lud_col");
    c.mov(0, S(SReg::TID_X));  // i
    c.isetp(0, CmpOp::GT, R(0), S(SReg::PARAM4));
    c.if_begin(0);
    c.imad(1, R(0), S(SReg::PARAM3), S(SReg::PARAM4));
    c.iadd(1, R(1), S(SReg::PARAM0));
    c.gld(2, R(1));
    c.imad(3, S(SReg::PARAM4), S(SReg::PARAM3), S(SReg::PARAM4));
    c.iadd(3, R(3), S(SReg::PARAM0));
    c.gld(4, R(3));
    c.frcp(4, R(4));
    c.fmul(2, R(2), R(4));
    c.gst(R(1), R(2));
    c.if_end();
    Program col = c.build();
    // Trailing update: A[i][j] -= A[i][k]*A[k][j] for i,j > k.
    KernelBuilder u("lud_update");
    u.mov(0, S(SReg::TID_X));    // j
    u.mov(1, S(SReg::CTAID_X));  // i
    u.isetp(0, CmpOp::GT, R(1), S(SReg::PARAM4));
    u.isetp(1, CmpOp::GT, R(0), S(SReg::PARAM4));
    u.if_begin(0);
    u.if_begin(1);
    u.imad(2, R(1), S(SReg::PARAM3), S(SReg::PARAM4));  // i*n+k
    u.iadd(2, R(2), S(SReg::PARAM0));
    u.gld(3, R(2));
    u.fmul(3, R(3), F(-1.0f));
    u.imad(4, S(SReg::PARAM4), S(SReg::PARAM3), R(0));  // k*n+j
    u.iadd(4, R(4), S(SReg::PARAM0));
    u.gld(5, R(4));
    u.imad(6, R(1), S(SReg::PARAM3), R(0));             // i*n+j
    u.iadd(6, R(6), S(SReg::PARAM0));
    u.gld(7, R(6));
    u.ffma(8, R(3), R(5), R(7));
    u.gst(R(6), R(8));
    u.if_end();
    u.if_end();
    Program upd = u.build();
    for (unsigned k = 0; k + 1 < n; ++k) {
      col.params = {a_base, 0, 0, n, k, 0, 0, 0};
      if (!launch_ok(dev, col, LaunchDims{1, 1, n, 1}, hook, 400'000))
        return false;
      upd.params = {a_base, 0, 0, n, k, 0, 0, 0};
      if (!launch_ok(dev, upd, LaunchDims{n, 1, n, 1}, hook, 400'000))
        return false;
    }
    return true;
  };
  h.app.read_output = [=](const Device& dev) {
    return read_region(dev, a_base, n * n);
  };
  h.validate = [=](const Device& dev) {
    auto a = inputs();
    for (unsigned k = 0; k + 1 < n; ++k) {
      const float rcp = 1.0f / a[k * n + k];
      for (unsigned i = k + 1; i < n; ++i) a[i * n + k] *= rcp;
      for (unsigned i = k + 1; i < n; ++i)
        for (unsigned j = k + 1; j < n; ++j)
          a[i * n + j] =
              std::fmaf(-a[i * n + k], a[k * n + j], a[i * n + j]);
    }
    for (unsigned i = 0; i < n * n; ++i)
      if (!close(dev.read_float(a_base + i), a[i], 2e-3f)) return false;
    return true;
  };
  return h;
}

// ===========================================================================
// Hotspot (block stencil with discarded halo computation)
// ===========================================================================

namespace {

constexpr float kHotspotC = 0.125f;

/// Two time steps per launch (Rodinia's pyramid): CTAs of 8x8 threads step
/// the grid by 4; every thread computes both steps, but only the 4x4
/// interior -- the cells whose two-step stencil support fits in the block --
/// writes a result. The discarded halo computation is the architectural
/// masking that gives Hotspot the lowest HPC PVF in the paper.
///
/// The temperature grid is padded with a two-cell frozen border (fixed
/// boundary temperature), so no index clamping is needed: a CTA at output
/// tile bx covers columns bx*4 + tx of the padded array exactly.
Program hotspot_kernel() {
  KernelBuilder kb("hotspot");
  kb.shared(128);  // two 8x8 time-step buffers
  kb.mov(0, S(SReg::TID_X));
  kb.mov(1, S(SReg::TID_Y));
  kb.mov(2, S(SReg::CTAID_X));
  kb.mov(3, S(SReg::CTAID_Y));
  // Padded-array coords of this thread's cell.
  kb.imad(4, R(2), I(4), R(0));              // gx = bx*4 + tx
  kb.imad(5, R(3), I(4), R(1));              // gy = by*4 + ty
  kb.imad(6, R(5), S(SReg::PARAM3), R(4));   // gy*W + gx
  kb.iadd(7, R(6), S(SReg::PARAM0));
  kb.gld(8, R(7));                           // t = temp[cell]
  kb.imad(9, R(1), I(8), R(0));              // shared idx
  kb.sts(R(9), R(8));
  kb.iadd(19, R(6), S(SReg::PARAM1));
  kb.gld(20, R(19));                         // power[cell]
  kb.bar();
  // One stencil step from shared buffer `buf` (0 or 64) into R21. Block
  // edges read their in-block neighbour only; their step result is part of
  // the discarded halo.
  auto step = [&](int buf) {
    auto lds_at = [&](std::uint8_t d, int dx, int dy) {
      kb.iadd(16, R(0), I(dx));
      kb.imax(16, R(16), I(0));
      kb.imin(16, R(16), I(7));
      kb.iadd(17, R(1), I(dy));
      kb.imax(17, R(17), I(0));
      kb.imin(17, R(17), I(7));
      kb.imad(18, R(17), I(8), R(16));
      kb.lds(d, R(18), buf);
    };
    kb.lds(8, R(9), buf);  // own cell
    lds_at(10, -1, 0);
    lds_at(11, 1, 0);
    lds_at(12, 0, -1);
    lds_at(13, 0, 1);
    kb.fadd(14, R(10), R(11));
    kb.fadd(14, R(14), R(12));
    kb.fadd(14, R(14), R(13));
    kb.fmul(15, R(8), F(-4.0f));
    kb.fadd(14, R(14), R(15));               // laplacian
    kb.fadd(14, R(14), R(20));               // + power
    kb.ffma(21, R(14), F(kHotspotC), R(8));  // t' = t + c*(lap + p)
  };
  step(0);
  // Frozen border: cells outside [2, grid+1] keep their original value in
  // the step-1 buffer. In-range iff ((gx-2) | (grid-1-(gx-2)) | ...) >= 0
  // (all four slack terms non-negative <=> no sign bit set).
  kb.iadd(22, R(4), I(-2));
  kb.imad(23, R(22), I(-1), S(SReg::PARAM4));  // (grid-1) - (gx-2)
  kb.iadd(24, R(5), I(-2));
  kb.imad(25, R(24), I(-1), S(SReg::PARAM4));
  kb.or_(22, R(22), R(23));
  kb.or_(22, R(22), R(24));
  kb.or_(22, R(22), R(25));
  kb.isetp(0, CmpOp::GE, R(22), I(0));
  kb.sel(23, R(21), R(8), 0);                // interior: t', border: t
  kb.sts(R(9), R(23), 64);                   // step-1 buffer
  kb.bar();
  step(64);
  // Only the 4x4 interior (two-step valid region) writes the output.
  kb.isetp(0, CmpOp::GE, R(0), I(2));
  kb.if_begin(0);
  kb.isetp(1, CmpOp::LE, R(0), I(5));
  kb.if_begin(1);
  kb.isetp(2, CmpOp::GE, R(1), I(2));
  kb.if_begin(2);
  kb.isetp(3, CmpOp::LE, R(1), I(5));
  kb.if_begin(3);
  kb.iadd(6, R(6), S(SReg::PARAM2));
  kb.gst(R(6), R(21));
  kb.if_end();
  kb.if_end();
  kb.if_end();
  kb.if_end();
  return kb.build();
}

std::vector<float> hotspot_init(unsigned w, std::uint64_t salt) {
  Rng rng(0x807 + salt);
  std::vector<float> v(static_cast<std::size_t>(w) * w);
  for (auto& x : v) x = static_cast<float>(rng.uniform(0.0, salt ? 0.1 : 1.0));
  return v;
}

}  // namespace

HpcApp make_hotspot(unsigned grid, unsigned iters) {
  // Padded array: a two-cell frozen border around the grid (fixed boundary
  // temperature), so the two-step pyramid never needs index clamping.
  const unsigned w = grid + 4;
  const unsigned words = w * w;
  const std::uint32_t t0 = 0, power = words, t1 = 2 * words;
  const unsigned launches = (iters + 1) / 2;  // two time steps per launch
  HpcApp h;
  h.app.name = "Hotspot";
  h.app.device_words = 3 * words + 64;
  h.app.run = [=](Device& dev, InstrumentHook* hook) {
    const auto temp = hotspot_init(w, 0), pw = hotspot_init(w, 1);
    dev.copy_in_f(t0, temp.data(), words);
    dev.copy_in_f(power, pw.data(), words);
    // The destination buffer starts as a copy so the frozen border (which
    // the kernel never writes) carries over.
    dev.copy_in_f(t1, temp.data(), words);
    Program p = hotspot_kernel();
    const unsigned ctas = grid / 4;
    std::uint32_t src = t0, dst = t1;
    for (unsigned it = 0; it < launches; ++it) {
      p.params = {src, power, dst, w, grid - 1, 0, 0, 0};
      if (!launch_ok(dev, p, LaunchDims{ctas, ctas, 8, 8}, hook, 3'000'000))
        return false;
      std::swap(src, dst);
    }
    return true;
  };
  const std::uint32_t out = (launches % 2 == 0) ? t0 : t1;
  h.app.read_output = [=](const Device& dev) {
    return read_region(dev, out, words);
  };
  h.validate = [=](const Device& dev) {
    auto t = hotspot_init(w, 0);
    const auto pw = hotspot_init(w, 1);
    auto nxt = t;  // border cells stay frozen
    for (unsigned step = 0; step < 2 * launches; ++step) {
      for (unsigned y = 2; y < grid + 2; ++y)
        for (unsigned x = 2; x < grid + 2; ++x) {
          const float lap = t[y * w + x - 1] + t[y * w + x + 1] +
                            t[(y - 1) * w + x] + t[(y + 1) * w + x] -
                            4.0f * t[y * w + x];
          nxt[y * w + x] =
              std::fmaf(lap + pw[y * w + x], kHotspotC, t[y * w + x]);
        }
      t = nxt;
    }
    for (unsigned i = 0; i < words; ++i)
      if (!close(dev.read_float(out + i), t[i], 2e-3f)) return false;
    return true;
  };
  return h;
}

// ===========================================================================
// Lava (LavaMD-style particle interactions with FEXP and cutoff)
// ===========================================================================

HpcApp make_lava(unsigned boxes, unsigned particles_per_box) {
  const unsigned n = boxes * particles_per_box;
  // Layout: x[n], y[n], z[n], q[n], fx[n], fy[n], fz[n]
  const std::uint32_t xb = 0, yb = n, zb = 2 * n, qb = 3 * n;
  const std::uint32_t fx = 4 * n, fy = 5 * n, fz = 6 * n;
  constexpr float kCutoff2 = 1.5f;
  HpcApp h;
  h.app.name = "Lava";
  h.app.device_words = 7 * n + 64;
  auto inputs = [n]() {
    Rng rng(0x1ABA);
    std::vector<float> v(4 * n);
    for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    return v;  // x, y, z, q concatenated
  };
  h.app.run = [=](Device& dev, InstrumentHook* hook) {
    const auto in = inputs();
    dev.copy_in_f(xb, in.data(), 4 * n);
    KernelBuilder kb("lava");
    kb.mov(0, S(SReg::TID_X));
    kb.mov(1, S(SReg::CTAID_X));
    kb.imad(2, R(1), S(SReg::NTID_X), R(0));  // particle i
    kb.iadd(3, R(2), S(SReg::PARAM0));
    kb.gld(4, R(3));                           // xi
    kb.iadd(3, R(2), S(SReg::PARAM1));
    kb.gld(5, R(3));                           // yi
    kb.iadd(3, R(2), S(SReg::PARAM2));
    kb.gld(6, R(3));                           // zi
    kb.movf(7, 0.0f);                          // fxi
    kb.movf(8, 0.0f);                          // fyi
    kb.movf(9, 0.0f);                          // fzi
    kb.movi(10, 0);                            // j
    kb.loop_begin();
    kb.isetp(0, CmpOp::LT, R(10), S(SReg::PARAM4));  // j < n
    kb.loop_while(0);
    kb.iadd(3, R(10), S(SReg::PARAM0));
    kb.gld(11, R(3));                          // xj
    kb.iadd(3, R(10), S(SReg::PARAM1));
    kb.gld(12, R(3));                          // yj
    kb.iadd(3, R(10), S(SReg::PARAM2));
    kb.gld(13, R(3));                          // zj
    kb.iadd(3, R(10), S(SReg::PARAM3));
    kb.gld(14, R(3));                          // qj
    kb.fmul(15, R(11), F(-1.0f));
    kb.fadd(15, R(4), R(15));                  // dx
    kb.fmul(16, R(12), F(-1.0f));
    kb.fadd(16, R(5), R(16));                  // dy
    kb.fmul(17, R(13), F(-1.0f));
    kb.fadd(17, R(6), R(17));                  // dz
    kb.fmul(18, R(15), R(15));
    kb.ffma(18, R(16), R(16), R(18));
    kb.ffma(18, R(17), R(17), R(18));          // d2
    kb.fsetp(1, CmpOp::LT, R(18), F(kCutoff2));
    kb.if_begin(1);
    kb.fmul(19, R(18), F(-1.0f));
    kb.fexp(19, R(19));                        // w = exp(-d2)
    kb.fmul(19, R(19), R(14));                 // w *= qj
    kb.ffma(7, R(19), R(15), R(7));
    kb.ffma(8, R(19), R(16), R(8));
    kb.ffma(9, R(19), R(17), R(9));
    kb.if_end();
    kb.iadd(10, R(10), I(1));
    kb.loop_end();
    kb.iadd(3, R(2), S(SReg::PARAM5));
    kb.gst(R(3), R(7));
    kb.iadd(3, R(2), S(SReg::PARAM6));
    kb.gst(R(3), R(8));
    kb.iadd(3, R(2), S(SReg::PARAM7));
    kb.gst(R(3), R(9));
    Program p = kb.build();
    p.params = {xb, yb, zb, qb, n, fx, fy, fz};
    return launch_ok(dev, p, LaunchDims{boxes, 1, particles_per_box, 1},
                     hook, 800'000);
  };
  h.app.read_output = [=](const Device& dev) {
    return read_region(dev, fx, 3 * n);
  };
  h.validate = [=](const Device& dev) {
    const auto in = inputs();
    const float* x = in.data();
    const float* y = x + n;
    const float* z = y + n;
    const float* q = z + n;
    for (unsigned i = 0; i < n; ++i) {
      float sx = 0, sy = 0, sz = 0;
      for (unsigned j = 0; j < n; ++j) {
        const float dx = x[i] - x[j], dy = y[i] - y[j], dz = z[i] - z[j];
        const float d2 = std::fmaf(dz, dz, std::fmaf(dy, dy, dx * dx));
        if (d2 < kCutoff2) {
          const float w = fparith::sfu_exp(-d2) * q[j];
          sx = std::fmaf(w, dx, sx);
          sy = std::fmaf(w, dy, sy);
          sz = std::fmaf(w, dz, sz);
        }
      }
      if (!close(dev.read_float(fx + i), sx, 2e-3f) ||
          !close(dev.read_float(fy + i), sy, 2e-3f) ||
          !close(dev.read_float(fz + i), sz, 2e-3f))
        return false;
    }
    return true;
  };
  return h;
}

// ===========================================================================
// Quicksort (host-driven segment stack, partition kernels on device)
// ===========================================================================

namespace {

/// Partitions data[lo..hi] around data[hi] (single-thread Lomuto scheme,
/// all compares and swaps on the device); stores the pivot index to out.
Program quicksort_partition() {
  KernelBuilder kb("qs_partition");
  kb.mov(0, S(SReg::PARAM1));                // lo
  kb.mov(1, S(SReg::PARAM2));                // hi
  kb.iadd(2, R(1), S(SReg::PARAM0));
  kb.gld(3, R(2));                           // pivot = data[hi]
  kb.iadd(4, R(0), I(-1));                   // i = lo-1
  kb.mov(5, R(0));                           // j = lo
  kb.loop_begin();
  kb.isetp(0, CmpOp::LT, R(5), R(1));        // j < hi
  kb.loop_while(0);
  kb.iadd(6, R(5), S(SReg::PARAM0));
  kb.gld(7, R(6));                           // data[j]
  kb.isetp(1, CmpOp::LE, R(7), R(3));
  kb.if_begin(1);
  kb.iadd(4, R(4), I(1));                    // ++i
  kb.iadd(8, R(4), S(SReg::PARAM0));
  kb.gld(9, R(8));                           // data[i]
  kb.gst(R(8), R(7));
  kb.gst(R(6), R(9));                        // swap
  kb.if_end();
  kb.iadd(5, R(5), I(1));
  kb.loop_end();
  kb.iadd(4, R(4), I(1));                    // p = i+1
  kb.iadd(8, R(4), S(SReg::PARAM0));
  kb.gld(9, R(8));
  kb.gst(R(2), R(9));
  kb.iadd(6, R(4), S(SReg::PARAM0));
  kb.gst(R(6), R(3));                        // swap data[p] <-> data[hi]
  kb.mov(10, S(SReg::PARAM3));
  kb.gst(R(10), R(4));                       // out pivot index
  return kb.build();
}

/// Insertion sort of data[lo..hi] (single thread).
Program quicksort_insertion() {
  KernelBuilder kb("qs_insertion");
  kb.mov(0, S(SReg::PARAM1));                // lo
  kb.mov(1, S(SReg::PARAM2));                // hi
  kb.iadd(2, R(0), I(1));                    // i = lo+1
  kb.loop_begin();
  kb.isetp(0, CmpOp::LE, R(2), R(1));
  kb.loop_while(0);
  kb.iadd(3, R(2), S(SReg::PARAM0));
  kb.gld(4, R(3));                           // key
  kb.mov(5, R(2));                           // j = i
  kb.loop_begin();
  kb.isetp(1, CmpOp::GT, R(5), R(0));        // j > lo
  kb.if_begin(1);
  kb.iadd(6, R(5), S(SReg::PARAM0));
  kb.gld(7, R(6), -1);                       // data[j-1]
  kb.isetp(1, CmpOp::GT, R(7), R(4));        // data[j-1] > key
  kb.else_begin();
  kb.isetp(1, CmpOp::NE, R(0), R(0));        // false
  kb.if_end();
  kb.loop_while(1);
  kb.iadd(6, R(5), S(SReg::PARAM0));
  kb.gld(7, R(6), -1);
  kb.gst(R(6), R(7));                        // data[j] = data[j-1]
  kb.iadd(5, R(5), I(-1));
  kb.loop_end();
  kb.iadd(6, R(5), S(SReg::PARAM0));
  kb.gst(R(6), R(4));                        // data[j] = key
  kb.iadd(2, R(2), I(1));
  kb.loop_end();
  return kb.build();
}

std::vector<std::int32_t> quicksort_inputs(unsigned n) {
  Rng rng(0x5047);
  std::vector<std::int32_t> v(n);
  for (auto& x : v) x = static_cast<std::int32_t>(rng.range(-100000, 100000));
  return v;
}

}  // namespace

HpcApp make_quicksort(unsigned n) {
  const std::uint32_t data_base = 0, piv_base = n;
  constexpr unsigned kSmall = 16;
  HpcApp h;
  h.app.name = "Quicksort";
  h.app.device_words = n + 64;
  h.app.memory_is_float = false;
  h.app.run = [=](Device& dev, InstrumentHook* hook) {
    const auto in = quicksort_inputs(n);
    dev.copy_in(data_base, reinterpret_cast<const std::uint32_t*>(in.data()),
                n);
    Program part = quicksort_partition();
    Program ins = quicksort_insertion();
    std::vector<std::pair<std::uint32_t, std::uint32_t>> stack{{0, n - 1}};
    // Bounded segment count guards against injected faults corrupting the
    // pivot index and exploding the host-side recursion.
    unsigned launches = 0;
    while (!stack.empty() && launches < 16 * n) {
      auto [lo, hi] = stack.back();
      stack.pop_back();
      if (lo >= hi || hi >= n) continue;
      ++launches;
      if (hi - lo < kSmall) {
        ins.params = {data_base, lo, hi, 0, 0, 0, 0, 0};
        if (!launch_ok(dev, ins, LaunchDims{1, 1, 1, 1}, hook, 300'000))
          return false;
        continue;
      }
      part.params = {data_base, lo, hi, piv_base, 0, 0, 0, 0};
      if (!launch_ok(dev, part, LaunchDims{1, 1, 1, 1}, hook, 300'000))
        return false;
      const std::uint32_t p = dev.read_word(piv_base);
      if (p > hi || p < lo) continue;  // corrupted pivot: abandon segment
      if (p > lo) stack.push_back({lo, p - 1});
      if (p < hi) stack.push_back({p + 1, hi});
    }
    return true;
  };
  h.app.read_output = [=](const Device& dev) {
    return read_region(dev, data_base, n);
  };
  h.validate = [=](const Device& dev) {
    auto want = quicksort_inputs(n);
    std::sort(want.begin(), want.end());
    for (unsigned i = 0; i < n; ++i)
      if (static_cast<std::int32_t>(dev.read_word(data_base + i)) != want[i])
        return false;
    return true;
  };
  return h;
}

std::vector<HpcApp> all_hpc_apps() {
  std::vector<HpcApp> v;
  v.push_back(make_mxm());
  v.push_back(make_lava());
  v.push_back(make_quicksort());
  v.push_back(make_hotspot());
  v.push_back(make_gaussian());
  v.push_back(make_lud());
  return v;
}

}  // namespace gpufi::apps
