#pragma once

#include <functional>
#include <vector>

#include "swfi/swfi.hpp"

namespace gpufi::apps {

/// One HPC benchmark: the injectable application plus a host-reference
/// validator (used by tests to prove the kernels compute the right thing).
struct HpcApp {
  swfi::App app;
  /// Checks the device output against a host recomputation (with float
  /// tolerance where accumulation order differs). Call after app.run.
  std::function<bool(const emu::Device&)> validate;
};

/// Dense matrix multiplication C = A x B with shared-memory 8x8 tiling
/// (the paper's 512x512 workload, scaled to n x n).
HpcApp make_mxm(unsigned n = 48);

/// Gaussian elimination without pivoting (Rodinia "gaussian"): per-step
/// multiplier kernel (Fan1) + trailing-submatrix update kernel (Fan2).
HpcApp make_gaussian(unsigned n = 48);

/// LU decomposition in place (Rodinia "lud" computational pattern).
HpcApp make_lud(unsigned n = 48);

/// Hotspot thermal simulation (Rodinia): iterative 5-point stencil where
/// each CTA computes a block with a halo whose results are discarded — the
/// architectural masking that gives Hotspot the lowest HPC PVF.
HpcApp make_hotspot(unsigned grid = 32, unsigned iters = 8);

/// LavaMD-style particle interaction: particles in 3D boxes accumulate
/// exp-weighted forces from neighbours within a cutoff radius (exercises
/// FEXP and predicated accumulation).
HpcApp make_lava(unsigned boxes = 2, unsigned particles_per_box = 32);

/// Iterative GPU quicksort: the host keeps a segment stack; a kernel
/// partitions each segment around a pivot (data-dependent control flow),
/// small segments finish with in-kernel insertion sort.
HpcApp make_quicksort(unsigned n = 1024);

/// All six paper applications at their default (scaled) sizes, in the
/// paper's Table III order.
std::vector<HpcApp> all_hpc_apps();

}  // namespace gpufi::apps
