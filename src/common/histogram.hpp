#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace gpufi {

/// Logarithmically bucketed histogram over positive values.
///
/// This is the shape of Figures 5, 6 and 9 of the paper: relative-error
/// magnitudes spanning 10^-8 .. 10^2 bucketed by decade (or finer). Also
/// usable as an empirical sampler (inverse-transform over the bucket CDF)
/// when a power-law fit is rejected.
class LogHistogram {
 public:
  /// Buckets span [10^lo_exp, 10^hi_exp) with `per_decade` buckets per decade.
  /// Two extra buckets catch underflow (< 10^lo_exp, including 0) and
  /// overflow (>= 10^hi_exp).
  LogHistogram(int lo_exp = -8, int hi_exp = 3, int per_decade = 1);

  /// Records one (non-negative) observation.
  void add(double x);

  /// Total number of observations.
  std::size_t count() const { return total_; }

  /// Number of interior buckets (excluding under/overflow).
  std::size_t buckets() const { return counts_.size() - 2; }

  /// Count in interior bucket i.
  std::size_t bucket_count(std::size_t i) const { return counts_[i + 1]; }
  std::size_t underflow() const { return counts_.front(); }
  std::size_t overflow() const { return counts_.back(); }

  /// Geometric center of interior bucket i.
  double bucket_center(std::size_t i) const;
  /// Lower edge of interior bucket i.
  double bucket_lo(std::size_t i) const;
  /// Upper edge of interior bucket i.
  double bucket_hi(std::size_t i) const;

  /// Fraction of observations in interior bucket i (0 if empty histogram).
  double bucket_fraction(std::size_t i) const;

  /// Draws from the empirical distribution: picks a bucket by its observed
  /// frequency then a log-uniform point inside it. Returns 0 if empty.
  double sample(Rng& rng) const;

  /// Index of the most populated interior bucket (the distribution "peak").
  std::size_t peak_bucket() const;

  /// Multi-line ASCII bar rendering, one row per non-empty bucket.
  std::string to_ascii(std::size_t width = 50) const;

 private:
  int lo_exp_;
  int hi_exp_;
  int per_decade_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;  // [under, interior..., over]
};

}  // namespace gpufi
