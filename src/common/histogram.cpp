#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gpufi {

LogHistogram::LogHistogram(int lo_exp, int hi_exp, int per_decade)
    : lo_exp_(lo_exp),
      hi_exp_(hi_exp),
      per_decade_(per_decade),
      counts_(static_cast<std::size_t>((hi_exp - lo_exp) * per_decade) + 2,
              0) {}

void LogHistogram::add(double x) {
  ++total_;
  if (!(x > 0.0) || !std::isfinite(x)) {
    ++counts_.front();
    return;
  }
  const double pos = (std::log10(x) - lo_exp_) * per_decade_;
  if (pos < 0.0) {
    ++counts_.front();
  } else if (pos >= static_cast<double>(buckets())) {
    ++counts_.back();
  } else {
    ++counts_[static_cast<std::size_t>(pos) + 1];
  }
}

double LogHistogram::bucket_lo(std::size_t i) const {
  return std::pow(10.0, lo_exp_ + static_cast<double>(i) / per_decade_);
}

double LogHistogram::bucket_hi(std::size_t i) const {
  return std::pow(10.0, lo_exp_ + static_cast<double>(i + 1) / per_decade_);
}

double LogHistogram::bucket_center(std::size_t i) const {
  return std::sqrt(bucket_lo(i) * bucket_hi(i));
}

double LogHistogram::bucket_fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i + 1]) / static_cast<double>(total_);
}

double LogHistogram::sample(Rng& rng) const {
  if (total_ == 0) return 0.0;
  std::size_t target = rng.below(total_);
  std::size_t acc = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    acc += counts_[b];
    if (target < acc) {
      if (b == 0) return bucket_lo(0) * rng.uniform();  // underflow bucket
      if (b == counts_.size() - 1) return bucket_hi(buckets() - 1);
      const std::size_t i = b - 1;
      // log-uniform inside the bucket
      const double llo = std::log(bucket_lo(i));
      const double lhi = std::log(bucket_hi(i));
      return std::exp(rng.uniform(llo, lhi));
    }
  }
  return bucket_center(buckets() - 1);
}

std::size_t LogHistogram::peak_bucket() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < buckets(); ++i)
    if (counts_[i + 1] > counts_[best + 1]) best = i;
  return best;
}

std::string LogHistogram::to_ascii(std::size_t width) const {
  std::string out;
  std::size_t max_count = 1;
  for (std::size_t i = 0; i < buckets(); ++i)
    max_count = std::max(max_count, counts_[i + 1]);
  char line[160];
  if (counts_.front() > 0) {
    std::snprintf(line, sizeof line, "  <1e%+03d  %6zu\n", lo_exp_,
                  counts_.front());
    out += line;
  }
  for (std::size_t i = 0; i < buckets(); ++i) {
    if (counts_[i + 1] == 0) continue;
    const std::size_t bar = counts_[i + 1] * width / max_count;
    std::snprintf(line, sizeof line, "  1e%+06.1f %6zu %5.1f%% |",
                  std::log10(bucket_center(i)), counts_[i + 1],
                  100.0 * bucket_fraction(i));
    out += line;
    out.append(bar, '#');
    out.push_back('\n');
  }
  if (counts_.back() > 0) {
    std::snprintf(line, sizeof line, "  >=1e%+03d %6zu\n", hi_exp_,
                  counts_.back());
    out += line;
  }
  return out;
}

}  // namespace gpufi
