#pragma once

#include <cstdint>
#include <limits>

namespace gpufi {

/// One splitmix64 mixing step: bijective, avalanching finalizer over 64 bits
/// (the xoshiro authors' recommended seeding primitive).
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Derives the seed of a statistically independent stream from a base seed
/// and one or more stream indices. Replaces ad-hoc `seed * constant + offset`
/// arithmetic: every call site names its stream explicitly, and streams that
/// differ in any index (or in index order) are decorrelated by a full
/// splitmix64 finalizer per word.
///
///   Rng per_trial(rng_derive(campaign_seed, trial_index));
///   Rng inputs(rng_derive(value_seed, kStreamInputs));
template <class... Stream>
constexpr std::uint64_t rng_derive(std::uint64_t seed, Stream... stream) {
  std::uint64_t x = splitmix64(seed);
  ((x = splitmix64(x ^ static_cast<std::uint64_t>(stream))), ...);
  return x;
}

/// Deterministic, fast pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library (fault-list generation, syndrome
/// sampling, workload generation) draws from an explicitly seeded Rng so that
/// campaigns are reproducible run-to-run. Satisfies the C++
/// UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from a single seed via splitmix64, the
  /// initialization recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& lane : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      lane = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 random bits (xoshiro256** scrambler).
  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation (rejection-free for the
    // common path); bias is negligible for our n << 2^64 but we reject anyway.
    while (true) {
      std::uint64_t x = (*this)();
      __uint128_t m = static_cast<__uint128_t>(x) * n;
      auto lo = static_cast<std::uint64_t>(m);
      if (lo >= n || lo >= (-n) % n) return static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Forks an independent generator (for per-worker streams).
  Rng fork() { return Rng((*this)() ^ 0xd1b54a32d192ed03ull); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace gpufi
