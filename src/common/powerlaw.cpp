#include "common/powerlaw.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/statistics.hpp"

namespace gpufi {

double PowerLaw::sample(Rng& rng) const {
  const double r = rng.uniform();
  return x_min * std::pow(1.0 - r, -1.0 / (alpha - 1.0));
}

double PowerLaw::cdf(double x) const {
  if (x < x_min) return 0.0;
  return 1.0 - std::pow(x / x_min, 1.0 - alpha);
}

double power_law_alpha(std::span<const double> sorted_samples, double x_min) {
  double sum_log = 0.0;
  std::size_t n = 0;
  for (auto it = std::lower_bound(sorted_samples.begin(), sorted_samples.end(),
                                  x_min);
       it != sorted_samples.end(); ++it) {
    sum_log += std::log(*it / x_min);
    ++n;
  }
  if (n == 0 || sum_log <= 0.0) return 2.0;
  return 1.0 + static_cast<double>(n) / sum_log;
}

PowerLaw fit_power_law(std::span<const double> samples,
                       std::size_t n_xmin_candidates, std::size_t min_tail) {
  std::vector<double> xs;
  xs.reserve(samples.size());
  for (double x : samples)
    if (x > 0.0 && std::isfinite(x)) xs.push_back(x);
  if (xs.size() < min_tail)
    throw std::invalid_argument(
        "fit_power_law: not enough positive finite samples");
  std::sort(xs.begin(), xs.end());

  // Candidate x_min values: distinct sample values, subsampled to the cap,
  // and constrained so the tail keeps at least `min_tail` points.
  std::vector<double> candidates;
  const std::size_t max_start = xs.size() - min_tail;
  std::size_t stride =
      std::max<std::size_t>(1, (max_start + 1) / n_xmin_candidates);
  double last = -1.0;
  for (std::size_t i = 0; i <= max_start; i += stride) {
    if (xs[i] != last) {
      candidates.push_back(xs[i]);
      last = xs[i];
    }
  }

  PowerLaw best;
  best.ks = 2.0;
  for (double xmin : candidates) {
    const double alpha = power_law_alpha(xs, xmin);
    if (!(alpha > 1.0) || !std::isfinite(alpha)) continue;
    const auto first =
        std::lower_bound(xs.begin(), xs.end(), xmin) - xs.begin();
    std::span<const double> tail(xs.data() + first, xs.size() - first);
    PowerLaw m{alpha, xmin, 0.0, tail.size()};
    m.ks = stats::ks_distance(tail, [&](double x) { return m.cdf(x); });
    if (m.ks < best.ks) best = m;
  }
  if (best.ks > 1.5)
    throw std::runtime_error("fit_power_law: no valid fit found");
  return best;
}

}  // namespace gpufi
