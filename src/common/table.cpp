#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace gpufi {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("TextTable: row width mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string TextTable::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, 100.0 * v);
  return buf;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      w[c] = std::max(w[c], r[c].size());

  auto emit_row = [&](const std::vector<std::string>& r, std::string& out) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      out += "| ";
      out += r[c];
      out.append(w[c] - r[c].size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string out;
  emit_row(header_, out);
  for (std::size_t c = 0; c < w.size(); ++c) {
    out += "|";
    out.append(w[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& r : rows_) emit_row(r, out);
  return out;
}

}  // namespace gpufi
