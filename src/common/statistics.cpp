#include "common/statistics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace gpufi::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(n - 1));
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0)
    throw std::invalid_argument("normal_quantile: p must be in (0,1)");
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double proportion_margin_of_error(double p_hat, std::size_t n,
                                  double confidence) {
  if (n == 0) return 1.0;
  const double z = normal_quantile(0.5 + confidence / 2.0);
  return z * std::sqrt(p_hat * (1.0 - p_hat) / static_cast<double>(n));
}

std::size_t required_samples(double margin, double confidence) {
  const double z = normal_quantile(0.5 + confidence / 2.0);
  const double n = z * z * 0.25 / (margin * margin);
  return static_cast<std::size_t>(std::ceil(n));
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t n,
                         double confidence) {
  if (n == 0) return {0.0, 1.0};
  const double z = normal_quantile(0.5 + confidence / 2.0);
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(successes) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = (p + z2 / (2.0 * nn)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

ShapiroWilk shapiro_wilk(std::span<const double> xs) {
  // Royston (1995) AS R94 approximation.
  const std::size_t n = xs.size();
  if (n < 3) return {1.0, 1.0};
  std::vector<double> x(xs.begin(), xs.end());
  std::sort(x.begin(), x.end());
  if (x.front() == x.back()) return {1.0, 1.0};  // zero variance

  const std::size_t half = n / 2;
  std::vector<double> m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = normal_quantile((static_cast<double>(i + 1) - 0.375) /
                           (static_cast<double>(n) + 0.25));
  }
  double msum = 0.0;
  for (double v : m) msum += v * v;
  const double rsn = 1.0 / std::sqrt(static_cast<double>(n));

  std::vector<double> a(n, 0.0);
  if (n <= 5) {
    const double an = m[n - 1] / std::sqrt(msum);
    a[n - 1] = -2.706056 * std::pow(rsn, 5) + 4.434685 * std::pow(rsn, 4) -
               2.071190 * std::pow(rsn, 3) - 0.147981 * rsn * rsn +
               0.221157 * rsn + an;
    a[0] = -a[n - 1];
    const double phi =
        (msum - 2.0 * m[n - 1] * m[n - 1]) /
        (1.0 - 2.0 * a[n - 1] * a[n - 1]);
    for (std::size_t i = 1; i + 1 < n; ++i) a[i] = m[i] / std::sqrt(phi);
  } else {
    const double an =
        -2.706056 * std::pow(rsn, 5) + 4.434685 * std::pow(rsn, 4) -
        2.071190 * std::pow(rsn, 3) - 0.147981 * rsn * rsn + 0.221157 * rsn +
        m[n - 1] / std::sqrt(msum);
    const double an1 =
        -3.582633 * std::pow(rsn, 5) + 5.682633 * std::pow(rsn, 4) -
        1.752461 * std::pow(rsn, 3) - 0.293762 * rsn * rsn + 0.042981 * rsn +
        m[n - 2] / std::sqrt(msum);
    a[n - 1] = an;
    a[n - 2] = an1;
    a[0] = -an;
    a[1] = -an1;
    const double phi =
        (msum - 2.0 * m[n - 1] * m[n - 1] - 2.0 * m[n - 2] * m[n - 2]) /
        (1.0 - 2.0 * an * an - 2.0 * an1 * an1);
    for (std::size_t i = 2; i + 2 < n; ++i) a[i] = m[i] / std::sqrt(phi);
  }

  // W statistic.
  const double xm = mean(x);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < half; ++i)
    num += a[n - 1 - i] * (x[n - 1 - i] - x[i]);
  num *= num;
  for (double v : x) den += (v - xm) * (v - xm);
  double w = num / den;
  w = std::min(w, 1.0);

  // p-value via Royston's normalizing transforms.
  double p;
  const double nd = static_cast<double>(n);
  if (n == 3) {
    p = 6.0 / 3.14159265358979 *
        (std::asin(std::sqrt(w)) - std::asin(std::sqrt(0.75)));
    p = std::clamp(p, 0.0, 1.0);
  } else if (n <= 11) {
    const double g = -2.273 + 0.459 * nd;
    const double mu = 0.5440 - 0.39978 * nd + 0.025054 * nd * nd -
                      0.0006714 * nd * nd * nd;
    const double sigma = std::exp(1.3822 - 0.77857 * nd + 0.062767 * nd * nd -
                                  0.0020322 * nd * nd * nd);
    const double y = -std::log(g - std::log1p(-w));
    p = 1.0 - normal_cdf((y - mu) / sigma);
  } else {
    const double ln = std::log(nd);
    const double mu = -1.5861 - 0.31082 * ln - 0.083751 * ln * ln +
                      0.0038915 * ln * ln * ln;
    const double sigma =
        std::exp(-0.4803 - 0.082676 * ln + 0.0030302 * ln * ln);
    const double y = std::log1p(-w);
    p = 1.0 - normal_cdf((y - mu) / sigma);
  }
  return {w, std::clamp(p, 0.0, 1.0)};
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace gpufi::stats
