#pragma once

#include <cstddef>
#include <functional>

namespace gpufi {

/// Fixed-size worker pool executing index-addressed task batches.
///
/// Deliberately work-stealing-free: a batch of `n` tasks is claimed by
/// atomically incrementing a shared cursor, so each task index runs exactly
/// once on exactly one worker. Which worker runs which index is
/// non-deterministic, which is why callers that need reproducible results
/// must make every task self-contained (own RNG stream, own result shard)
/// and combine shards by task index — see exec::run_trials.
class ThreadPool {
 public:
  /// Starts `jobs` workers (including the calling thread at run() time);
  /// jobs == 0 resolves to default_jobs(). jobs == 1 runs everything inline.
  explicit ThreadPool(unsigned jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of concurrent workers (>= 1).
  unsigned size() const;

  /// Runs task(i) for every i in [0, n) across the pool and blocks until all
  /// have finished. The calling thread participates. Exceptions thrown by
  /// tasks are captured; the first one is rethrown here after the batch
  /// drains. Not reentrant: run() must not be called from inside a task.
  void run(std::size_t n, const std::function<void(std::size_t)>& task);

  /// The `--jobs` default: GPUFI_JOBS when set to a positive integer, the
  /// hardware concurrency otherwise (1 when even that is unknown).
  static unsigned default_jobs();

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace gpufi
