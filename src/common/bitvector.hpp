#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gpufi {

/// Dynamically sized vector of bits backed by 64-bit words.
///
/// This is the storage type for every faultable flip-flop bank in the RTL
/// model: fault injection is `flip(i)` on a BitVector. Narrow fields (an
/// 8-bit exponent, a 48-bit product, a 32-bit active mask) are packed as
/// contiguous bit runs and accessed through get_field/set_field so that a
/// single registry of (offset, width) describes a module's entire state.
class BitVector {
 public:
  BitVector() = default;
  /// Constructs `bits` zero bits.
  explicit BitVector(std::size_t bits);

  /// Number of bits.
  std::size_t size() const { return size_; }

  /// Resets every bit to zero without changing the size.
  void clear();

  /// Value of bit `i` (0-based).
  bool get(std::size_t i) const;
  /// Sets bit `i` to `v`.
  void set(std::size_t i, bool v);
  /// Inverts bit `i` (the fault-injection primitive).
  void flip(std::size_t i);

  /// Reads `width` (<= 64) bits starting at `offset`, LSB-first.
  std::uint64_t get_field(std::size_t offset, std::size_t width) const;
  /// Writes the low `width` (<= 64) bits of `value` starting at `offset`.
  void set_field(std::size_t offset, std::size_t width, std::uint64_t value);

  /// Number of set bits.
  std::size_t popcount() const;

  /// Bitwise equality (sizes must match for equality to hold).
  bool operator==(const BitVector& other) const;

  /// "01011..." rendering, bit 0 first. Intended for debugging and reports.
  std::string to_string() const;

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace gpufi
