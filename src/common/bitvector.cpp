#include "common/bitvector.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace gpufi {

BitVector::BitVector(std::size_t bits)
    : size_(bits), words_((bits + 63) / 64, 0) {}

void BitVector::clear() {
  for (auto& w : words_) w = 0;
}

bool BitVector::get(std::size_t i) const {
  assert(i < size_);
  return (words_[i >> 6] >> (i & 63)) & 1u;
}

void BitVector::set(std::size_t i, bool v) {
  assert(i < size_);
  const std::uint64_t mask = std::uint64_t{1} << (i & 63);
  if (v)
    words_[i >> 6] |= mask;
  else
    words_[i >> 6] &= ~mask;
}

void BitVector::flip(std::size_t i) {
  assert(i < size_);
  words_[i >> 6] ^= std::uint64_t{1} << (i & 63);
}

std::uint64_t BitVector::get_field(std::size_t offset,
                                   std::size_t width) const {
  assert(width >= 1 && width <= 64);
  assert(offset + width <= size_);
  const std::size_t w = offset >> 6;
  const std::size_t b = offset & 63;
  std::uint64_t lo = words_[w] >> b;
  if (b + width > 64) lo |= words_[w + 1] << (64 - b);
  if (width == 64) return lo;
  return lo & ((std::uint64_t{1} << width) - 1);
}

void BitVector::set_field(std::size_t offset, std::size_t width,
                          std::uint64_t value) {
  assert(width >= 1 && width <= 64);
  assert(offset + width <= size_);
  const std::uint64_t mask =
      width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  value &= mask;
  const std::size_t w = offset >> 6;
  const std::size_t b = offset & 63;
  words_[w] = (words_[w] & ~(mask << b)) | (value << b);
  if (b + width > 64) {
    const std::size_t hi_bits = b + width - 64;
    const std::uint64_t hi_mask = (std::uint64_t{1} << hi_bits) - 1;
    words_[w + 1] = (words_[w + 1] & ~hi_mask) | (value >> (64 - b));
  }
}

std::size_t BitVector::popcount() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t w = words_[i];
    // Mask tail bits of the last word (they are always zero by invariant,
    // but be defensive).
    if (i + 1 == words_.size() && (size_ & 63) != 0)
      w &= (std::uint64_t{1} << (size_ & 63)) - 1;
    n += static_cast<std::size_t>(std::popcount(w));
  }
  return n;
}

bool BitVector::operator==(const BitVector& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

std::string BitVector::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back(get(i) ? '1' : '0');
  return s;
}

}  // namespace gpufi
