#pragma once

#include <string>
#include <vector>

namespace gpufi {

/// Minimal ASCII table formatter used by the bench binaries to print
/// paper-style tables (Table I/II/III rows, Fig. 4/7/10 series).
class TextTable {
 public:
  /// Sets the header row.
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; its length must match the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  /// Formats a ratio as a percentage string ("12.34%").
  static std::string pct(double v, int precision = 2);

  /// Renders the table with column alignment and a separator rule.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gpufi
