#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"

namespace gpufi {

/// A fitted continuous power-law model p(x) ~ x^-alpha for x >= x_min.
///
/// This is the statistical form the paper finds for fault syndromes
/// (Sec. V-C): "few events are predominant". Fitting follows Clauset,
/// Shalizi & Newman, SIAM Review 51(4), 2009: alpha by maximum likelihood,
/// x_min by minimizing the Kolmogorov–Smirnov distance between data tail and
/// model.
struct PowerLaw {
  double alpha = 2.0;    ///< scaling exponent (> 1 for a proper distribution)
  double x_min = 1e-12;  ///< lower cutoff of the power-law regime
  double ks = 1.0;       ///< KS distance of the fit on the tail
  std::size_t n_tail = 0;  ///< number of samples >= x_min used in the fit

  /// Draws one sample via the inverse CDF — Eq. (1) of the paper:
  ///   x = x_min * (1 - r)^(-1/(alpha-1)),  r ~ U[0,1).
  double sample(Rng& rng) const;

  /// Model CDF P(X <= x) for x >= x_min (0 below x_min).
  double cdf(double x) const;
};

/// Fits a continuous power law to strictly positive samples.
///
/// `n_xmin_candidates` caps how many distinct candidate x_min values are
/// scanned (all distinct values if the data is small). Throws
/// std::invalid_argument if fewer than `min_tail` positive samples exist.
PowerLaw fit_power_law(std::span<const double> samples,
                       std::size_t n_xmin_candidates = 64,
                       std::size_t min_tail = 8);

/// MLE for alpha with a fixed x_min (continuous case):
///   alpha = 1 + n / sum(ln(x_i / x_min)) over x_i >= x_min.
double power_law_alpha(std::span<const double> sorted_samples, double x_min);

}  // namespace gpufi
