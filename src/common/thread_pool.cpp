#include "common/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace gpufi {

struct ThreadPool::Impl {
  // Batch state, published under `mutex` and executed lock-free: workers
  // claim task indices from `next` until it passes `batch_n`.
  std::mutex mutex;
  std::condition_variable start_cv;
  std::condition_variable done_cv;
  const std::function<void(std::size_t)>* task = nullptr;
  std::size_t batch_n = 0;
  std::uint64_t generation = 0;  // bumped per batch to wake parked workers
  std::atomic<std::size_t> next{0};
  std::size_t in_flight = 0;  // workers still draining the current batch
  std::exception_ptr first_error;
  bool shutting_down = false;

  std::vector<std::thread> workers;

  void drain() {
    // Claim-and-run loop shared by pool workers and the calling thread.
    const auto* t = task;
    const std::size_t n = batch_n;
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        (*t)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  }

  void worker_loop() {
    // `in_flight` is pre-charged with the full worker count when a batch is
    // published, so the batch only completes once every worker has woken,
    // drained, and checked out — a late waker can never observe the pool
    // between batches with a dangling `task`.
    std::uint64_t seen = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        start_cv.wait(lock,
                      [&] { return shutting_down || generation != seen; });
        if (shutting_down) return;
        seen = generation;
      }
      drain();
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (--in_flight == 0) done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(unsigned jobs) : impl_(new Impl) {
  if (jobs == 0) jobs = default_jobs();
  impl_->workers.reserve(jobs - 1);
  for (unsigned i = 1; i < jobs; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutting_down = true;
  }
  impl_->start_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

unsigned ThreadPool::size() const {
  return static_cast<unsigned>(impl_->workers.size()) + 1;
}

void ThreadPool::run(std::size_t n,
                     const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  if (impl_->workers.empty()) {
    // Single-job pool: no synchronization, plain loop on the caller.
    for (std::size_t i = 0; i < n; ++i) task(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->task = &task;
    impl_->batch_n = n;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->first_error = nullptr;
    impl_->in_flight = impl_->workers.size();
    ++impl_->generation;
  }
  impl_->start_cv.notify_all();
  impl_->drain();  // the calling thread is a worker too
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->done_cv.wait(lock, [&] { return impl_->in_flight == 0; });
  impl_->task = nullptr;
  if (impl_->first_error) std::rethrow_exception(impl_->first_error);
}

unsigned ThreadPool::default_jobs() {
  if (const char* env = std::getenv("GPUFI_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace gpufi
