#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gpufi::stats {

/// Sample mean. Returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased sample standard deviation (n-1 denominator). Returns 0 for n < 2.
double stddev(std::span<const double> xs);

/// Median (of a copy; input untouched). Returns 0 for an empty span.
double median(std::span<const double> xs);

/// Quantile in [0,1] with linear interpolation. Returns 0 for an empty span.
double quantile(std::span<const double> xs, double q);

/// Half-width of the normal-approximation confidence interval for a
/// proportion `p_hat` estimated from `n` Bernoulli trials, at confidence
/// `confidence` (e.g. 0.95). This is the "margin of error" the paper quotes
/// (<3% for 12k faults, <5% for 6k software injections).
double proportion_margin_of_error(double p_hat, std::size_t n,
                                  double confidence = 0.95);

/// Number of Bernoulli trials needed for a worst-case (p=0.5) margin of error
/// `e` at confidence `confidence`. E.g. margin 0.01 at 95% -> ~9604.
std::size_t required_samples(double margin, double confidence = 0.95);

/// A two-sided confidence interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Wilson score interval for a binomial proportion: `successes` out of `n`
/// trials at confidence `confidence`. Unlike the normal approximation it
/// stays inside [0,1] and behaves sensibly for the small per-site hit
/// counts attribution produces. Returns [0,1] for n == 0.
Interval wilson_interval(std::uint64_t successes, std::uint64_t n,
                         double confidence = 0.95);

/// Standard normal CDF.
double normal_cdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation, |err|<1e-9).
double normal_quantile(double p);

/// Result of a Shapiro–Wilk normality test.
struct ShapiroWilk {
  double w = 0.0;        ///< W statistic in (0, 1]; 1 means perfectly normal.
  double p_value = 0.0;  ///< approximate p-value (Royston 1995).
};

/// Shapiro–Wilk test for normality (Royston's AS R94 approximation, valid for
/// 3 <= n <= 5000). The paper uses it to reject Gaussianity of the syndrome
/// distributions (all p < 0.05). Inputs with zero variance return w=1, p=1.
ShapiroWilk shapiro_wilk(std::span<const double> xs);

/// One-sample Kolmogorov–Smirnov distance between the empirical CDF of `xs`
/// and a callable model CDF.
template <typename Cdf>
double ks_distance(std::span<const double> sorted_xs, Cdf&& cdf) {
  const std::size_t n = sorted_xs.size();
  double d = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double f = cdf(sorted_xs[i]);
    const double lo = static_cast<double>(i) / static_cast<double>(n);
    const double hi = static_cast<double>(i + 1) / static_cast<double>(n);
    d = std::max({d, f - lo, hi - f});
  }
  return d;
}

/// Pearson correlation coefficient. Returns 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace gpufi::stats
