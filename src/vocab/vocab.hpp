#pragma once

// The one spec vocabulary shared by every user-facing layer (CLI flags,
// serve-protocol specs): name<->enum maps for opcodes, modules, input
// ranges, tile kinds, acceleration levels, fault models (RTL and software),
// CNN fault models, and the HPC application factory. Hoisted here so the
// CLI and the wire protocol cannot drift — both parse and print exactly
// these tokens.

#include <optional>
#include <string>
#include <string_view>

#include "apps/apps.hpp"
#include "isa/isa.hpp"
#include "nn/gpu_infer.hpp"
#include "rtl/sm.hpp"
#include "rtl/state.hpp"
#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"
#include "swfi/planner.hpp"
#include "swfi/swfi.hpp"

namespace gpufi::vocab {

/// Characterized instruction mnemonic ("FFMA", "BRA", ...).
std::optional<isa::Opcode> parse_opcode(std::string_view s);

/// Module token: fp32|int|sfu|sfuctl|sched|pipe.
std::optional<rtl::Module> parse_module(std::string_view s);
std::string_view module_token(rtl::Module m);

/// Input-range token: S|M|L.
std::optional<rtlfi::InputRange> parse_range(std::string_view s);

/// t-MxM tile token: max|zero|random.
std::optional<rtlfi::TileKind> parse_tile(std::string_view s);

/// Acceleration-level token: none|checkpoint|full.
std::optional<rtlfi::Acceleration> parse_acceleration(std::string_view s);

/// RTL fault-model token: transient|stuck0|stuck1|burst.
std::optional<rtl::FaultModel> parse_fault_model(std::string_view s);
std::string_view fault_model_token(rtl::FaultModel m);

/// Software fault-model token: bitflip|doublebit|syndrome|warp|sticky.
std::optional<swfi::FaultModel> parse_sw_model(std::string_view s);

/// CNN fault-model token: bitflip|syndrome|tmxm.
std::optional<nn::CnnFaultModel> parse_cnn_model(std::string_view s);

/// Progress-interval token: a positive decimal trial count ("1", "250").
/// Rejects zero, signs, non-digits, leading '+', and overflow — shared by
/// the CLI `--progress-interval` flag and the serve-spec codec so both
/// layers accept exactly the same strings.
std::optional<std::size_t> parse_progress_interval(std::string_view s);

/// Adaptive-plan token: "target_err=X[,min_trials=N][,max_trials=N]".
/// target_err is required and must be in (0, 0.5]; min/max_trials are
/// positive and max_trials >= min_trials when both are given. Strict:
/// unknown or duplicate keys reject. On failure returns nullopt and, when
/// `error` is non-null, stores a one-line reason. Shared by the CLI
/// `--plan` flag and the serve-spec codec so both layers accept exactly the
/// same strings.
std::optional<swfi::Plan> parse_plan(std::string_view s,
                                     std::string* error = nullptr);

/// True when `s` names one of the HPC applications of `gpufi sw`.
bool is_known_app(std::string_view s);

/// Instantiates an HPC application by its vocabulary name; throws
/// std::invalid_argument for an unknown name (call is_known_app first on
/// untrusted input).
apps::HpcApp make_app(const std::string& name);

}  // namespace gpufi::vocab
