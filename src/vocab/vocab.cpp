#include "vocab/vocab.hpp"

#include <charconv>
#include <stdexcept>

namespace gpufi::vocab {

namespace {

bool fail(std::string* error, std::string_view why) {
  if (error) *error = std::string(why);
  return false;
}

bool parse_double_token(std::string_view s, double& out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

}  // namespace

std::optional<swfi::Plan> parse_plan(std::string_view s, std::string* error) {
  swfi::Plan plan;
  bool saw_target = false, saw_min = false, saw_max = false;
  std::string_view rest = s;
  if (rest.empty()) {
    fail(error, "plan: empty spec (need target_err=X)");
    return std::nullopt;
  }
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const auto eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 == item.size()) {
      fail(error, "plan: expected key=value, got '" + std::string(item) + "'");
      return std::nullopt;
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "target_err") {
      if (saw_target) {
        fail(error, "plan: duplicate target_err");
        return std::nullopt;
      }
      saw_target = true;
      if (!parse_double_token(value, plan.target_err) ||
          plan.target_err <= 0.0 || plan.target_err > 0.5) {
        fail(error, "plan: target_err must be a number in (0, 0.5]");
        return std::nullopt;
      }
    } else if (key == "min_trials" || key == "max_trials") {
      bool& seen = key == "min_trials" ? saw_min : saw_max;
      if (seen) {
        fail(error, "plan: duplicate " + std::string(key));
        return std::nullopt;
      }
      seen = true;
      const auto n = parse_progress_interval(value);
      if (!n) {
        fail(error,
             "plan: " + std::string(key) + " must be a positive integer");
        return std::nullopt;
      }
      (key == "min_trials" ? plan.min_trials : plan.max_trials) = *n;
    } else {
      fail(error, "plan: unknown key '" + std::string(key) + "'");
      return std::nullopt;
    }
  }
  if (!saw_target) {
    fail(error, "plan: target_err is required");
    return std::nullopt;
  }
  if (plan.max_trials != 0 && plan.max_trials < plan.min_trials) {
    fail(error, "plan: max_trials must be >= min_trials");
    return std::nullopt;
  }
  return plan;
}

std::optional<isa::Opcode> parse_opcode(std::string_view s) {
  for (unsigned i = 0; i < isa::kNumOpcodes; ++i) {
    const auto op = static_cast<isa::Opcode>(i);
    if (s == isa::mnemonic(op) && isa::is_characterized(op)) return op;
  }
  return std::nullopt;
}

std::optional<rtl::Module> parse_module(std::string_view s) {
  if (s == "fp32") return rtl::Module::Fp32Fu;
  if (s == "int") return rtl::Module::IntFu;
  if (s == "sfu") return rtl::Module::Sfu;
  if (s == "sfuctl") return rtl::Module::SfuCtl;
  if (s == "sched") return rtl::Module::Scheduler;
  if (s == "pipe") return rtl::Module::PipelineRegs;
  return std::nullopt;
}

std::string_view module_token(rtl::Module m) {
  switch (m) {
    case rtl::Module::Fp32Fu: return "fp32";
    case rtl::Module::IntFu: return "int";
    case rtl::Module::Sfu: return "sfu";
    case rtl::Module::SfuCtl: return "sfuctl";
    case rtl::Module::Scheduler: return "sched";
    case rtl::Module::PipelineRegs: return "pipe";
  }
  return "?";
}

std::optional<rtlfi::InputRange> parse_range(std::string_view s) {
  if (s == "S") return rtlfi::InputRange::Small;
  if (s == "M") return rtlfi::InputRange::Medium;
  if (s == "L") return rtlfi::InputRange::Large;
  return std::nullopt;
}

std::optional<rtlfi::TileKind> parse_tile(std::string_view s) {
  if (s == "max") return rtlfi::TileKind::Max;
  if (s == "zero") return rtlfi::TileKind::Zero;
  if (s == "random") return rtlfi::TileKind::Random;
  return std::nullopt;
}

std::optional<rtlfi::Acceleration> parse_acceleration(std::string_view s) {
  if (s == "none") return rtlfi::Acceleration::None;
  if (s == "checkpoint") return rtlfi::Acceleration::Checkpoint;
  if (s == "full") return rtlfi::Acceleration::CheckpointEarlyExit;
  return std::nullopt;
}

std::optional<rtl::FaultModel> parse_fault_model(std::string_view s) {
  if (s == "transient") return rtl::FaultModel::Transient;
  if (s == "stuck0") return rtl::FaultModel::StuckAt0;
  if (s == "stuck1") return rtl::FaultModel::StuckAt1;
  if (s == "burst") return rtl::FaultModel::IntermittentBurst;
  return std::nullopt;
}

std::string_view fault_model_token(rtl::FaultModel m) {
  switch (m) {
    case rtl::FaultModel::Transient: return "transient";
    case rtl::FaultModel::StuckAt0: return "stuck0";
    case rtl::FaultModel::StuckAt1: return "stuck1";
    case rtl::FaultModel::IntermittentBurst: return "burst";
  }
  return "?";
}

std::optional<swfi::FaultModel> parse_sw_model(std::string_view s) {
  if (s == "bitflip") return swfi::FaultModel::SingleBitFlip;
  if (s == "doublebit") return swfi::FaultModel::DoubleBitFlip;
  if (s == "syndrome") return swfi::FaultModel::RelativeError;
  if (s == "warp") return swfi::FaultModel::WarpRelativeError;
  if (s == "sticky") return swfi::FaultModel::StickyRelativeError;
  return std::nullopt;
}

std::optional<nn::CnnFaultModel> parse_cnn_model(std::string_view s) {
  if (s == "bitflip") return nn::CnnFaultModel::SingleBitFlip;
  if (s == "syndrome") return nn::CnnFaultModel::RelativeError;
  if (s == "tmxm") return nn::CnnFaultModel::TiledMxM;
  return std::nullopt;
}

std::optional<std::size_t> parse_progress_interval(std::string_view s) {
  if (s.empty() || s.size() > 18) return std::nullopt;  // 18 digits < 2^63
  std::size_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::size_t>(c - '0');
  }
  if (v == 0) return std::nullopt;
  return v;
}

bool is_known_app(std::string_view s) {
  return s == "mxm" || s == "gaussian" || s == "lud" || s == "hotspot" ||
         s == "lava" || s == "quicksort";
}

apps::HpcApp make_app(const std::string& name) {
  if (name == "mxm") return apps::make_mxm();
  if (name == "gaussian") return apps::make_gaussian();
  if (name == "lud") return apps::make_lud();
  if (name == "hotspot") return apps::make_hotspot();
  if (name == "lava") return apps::make_lava();
  if (name == "quicksort") return apps::make_quicksort();
  throw std::invalid_argument("unknown app: " + name);
}

}  // namespace gpufi::vocab
