#pragma once

// The one outcome vocabulary shared by every layer that names a trial's
// fate. rtlfi::outcome_name, the software campaign's metric labels and the
// serve/obs label strings all used to hand-roll "Masked"/"SDC"/"DUE";
// this header is now the single source of those tokens, plus the DueReason
// enum that replaces ad-hoc trap-reason string matching in reports.
//
// Deliberately header-only with no project includes: swfi and rtlfi sit
// below the gpufi_vocab library in the link graph (vocab.hpp includes their
// headers), so the shared tokens must not require linking gpufi_vocab.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gpufi::vocab {

/// Canonical outcome tokens (Avizienis taxonomy as used by the paper).
inline constexpr std::string_view kOutcomeMasked = "Masked";
inline constexpr std::string_view kOutcomeSdc = "SDC";
inline constexpr std::string_view kOutcomeDue = "DUE";

/// Why a trial classified as DUE. Mirrors the trap reasons the RTL model
/// can raise (rtl/sm.cpp TrapExc sites) plus the watchdog; `OtherTrap`
/// future-proofs against new trap strings without breaking report grouping.
enum class DueReason : std::uint8_t {
  None = 0,  ///< the trial was not a DUE
  IllegalOpcode,
  InvalidPc,
  CorruptSimtStack,
  CorruptCtaLatch,
  OutOfBoundsAccess,
  SimtStackOverflow,
  BraWithoutTarget,
  DivergentBraNoReconvergence,
  NonControlInScheduler,
  TooManyWarps,
  InvalidWarpState,
  InvalidWarpAtWriteback,
  WatchdogExpired,
  ProgramTooLarge,
  OtherTrap,
};

/// Number of DueReason values (array-table size).
inline constexpr std::size_t kNumDueReasons =
    static_cast<std::size_t>(DueReason::OtherTrap) + 1;

/// Stable machine token for a DueReason (report keys, JSON fields).
inline constexpr std::string_view due_reason_token(DueReason r) {
  switch (r) {
    case DueReason::None: return "none";
    case DueReason::IllegalOpcode: return "illegal-opcode";
    case DueReason::InvalidPc: return "invalid-pc";
    case DueReason::CorruptSimtStack: return "corrupt-simt-stack";
    case DueReason::CorruptCtaLatch: return "corrupt-cta-latch";
    case DueReason::OutOfBoundsAccess: return "oob-access";
    case DueReason::SimtStackOverflow: return "simt-stack-overflow";
    case DueReason::BraWithoutTarget: return "bra-without-target";
    case DueReason::DivergentBraNoReconvergence: return "divergent-bra";
    case DueReason::NonControlInScheduler: return "non-control-in-sched";
    case DueReason::TooManyWarps: return "too-many-warps";
    case DueReason::InvalidWarpState: return "invalid-warp-state";
    case DueReason::InvalidWarpAtWriteback: return "invalid-warp-writeback";
    case DueReason::WatchdogExpired: return "watchdog";
    case DueReason::ProgramTooLarge: return "program-too-large";
    case DueReason::OtherTrap: return "other-trap";
  }
  return "?";
}

/// Coarse cause the report groups DUEs by: an architectural trap, an
/// expired watchdog (hang), or corrupted scheduler/issue state that wedged
/// the machine into an illegal configuration.
enum class DueGroup : std::uint8_t { None, Trap, Watchdog, WedgedScheduler };

inline constexpr std::string_view due_group_token(DueGroup g) {
  switch (g) {
    case DueGroup::None: return "none";
    case DueGroup::Trap: return "trap";
    case DueGroup::Watchdog: return "watchdog";
    case DueGroup::WedgedScheduler: return "wedged-scheduler";
  }
  return "?";
}

inline constexpr DueGroup due_group(DueReason r) {
  switch (r) {
    case DueReason::None:
      return DueGroup::None;
    case DueReason::WatchdogExpired:
      return DueGroup::Watchdog;
    case DueReason::CorruptSimtStack:
    case DueReason::CorruptCtaLatch:
    case DueReason::SimtStackOverflow:
    case DueReason::NonControlInScheduler:
    case DueReason::TooManyWarps:
    case DueReason::InvalidWarpState:
      return DueGroup::WedgedScheduler;
    default:
      return DueGroup::Trap;
  }
}

/// Maps an RTL trap-reason string (RunResult::trap_reason) to the enum.
/// The strings are the exact TrapExc literals of rtl/sm.cpp; anything
/// unrecognized lands in OtherTrap so a new trap kind cannot crash a report.
inline DueReason classify_due_reason(std::string_view trap_reason) {
  struct Entry {
    std::string_view text;
    DueReason reason;
  };
  static constexpr std::array<Entry, 14> kTable{{
      {"illegal opcode", DueReason::IllegalOpcode},
      {"invalid PC", DueReason::InvalidPc},
      {"corrupt SIMT stack", DueReason::CorruptSimtStack},
      {"corrupt CTA dimension latch", DueReason::CorruptCtaLatch},
      {"out-of-bounds memory access", DueReason::OutOfBoundsAccess},
      {"SIMT stack overflow", DueReason::SimtStackOverflow},
      {"BRA without target", DueReason::BraWithoutTarget},
      {"divergent BRA without reconvergence",
       DueReason::DivergentBraNoReconvergence},
      {"non-control opcode in scheduler", DueReason::NonControlInScheduler},
      {"too many warps per CTA", DueReason::TooManyWarps},
      {"invalid warp state", DueReason::InvalidWarpState},
      {"invalid warp id at writeback", DueReason::InvalidWarpAtWriteback},
      {"watchdog expired", DueReason::WatchdogExpired},
      {"program too large for 13-bit PC", DueReason::ProgramTooLarge},
  }};
  if (trap_reason.empty()) return DueReason::None;
  for (const auto& e : kTable)
    if (e.text == trap_reason) return e.reason;
  return DueReason::OtherTrap;
}

}  // namespace gpufi::vocab
