// gpufi — command-line driver for the two-level fault-injection framework.
//
//   gpufi modules                         list RTL fault targets (Table I)
//   gpufi rtl <op> <module> [options]     one RTL campaign on a micro-benchmark
//   gpufi tmxm <site> [options]           t-MxM characterization campaign
//   gpufi build-db <path> [options]       full RTL characterization -> database
//   gpufi sw <app> <model> [options]      software campaign on an HPC app
//   gpufi cnn <net> <model> [options]     CNN campaign with criticality split
//
// Common options: --faults N / --injections N, --seed S, --db PATH,
// --jobs N (0 = GPUFI_JOBS env or all hardware threads; results are
// byte-identical whatever the value).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "apps/apps.hpp"
#include "core/gpufi.hpp"
#include "nn/gpu_infer.hpp"
#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"
#include "swfi/swfi.hpp"

using namespace gpufi;

namespace {

int usage() {
  std::puts(
      "usage:\n"
      "  gpufi modules\n"
      "  gpufi rtl <FADD|FMUL|FFMA|IADD|IMUL|IMAD|FSIN|FEXP|GLD|GST|BRA|"
      "ISETP> <fp32|int|sfu|sfuctl|sched|pipe> [--range S|M|L] [--faults N] "
      "[--seed S]\n"
      "  gpufi tmxm <sched|pipe> [--tile max|zero|random] [--faults N]\n"
      "  gpufi build-db <path> [--faults N]\n"
      "  gpufi sw <mxm|gaussian|lud|hotspot|lava|quicksort> "
      "<bitflip|doublebit|syndrome> [--injections N] [--db PATH]\n"
      "  gpufi cnn <lenet|yolo> <bitflip|syndrome|tmxm> [--injections N] "
      "[--db PATH] [--models DIR]\n"
      "\n"
      "every command accepts --jobs N: worker threads for the campaign loop\n"
      "(default: GPUFI_JOBS env, else all hardware threads). Results are\n"
      "byte-identical for every --jobs value.\n"
      "\n"
      "RTL commands accept --accel none|checkpoint|full: the checkpoint\n"
      "fast-forward / golden-convergence early-exit level (default full;\n"
      "results are byte-identical at every level).\n");
  return 2;
}

std::optional<isa::Opcode> parse_op(const std::string& s) {
  for (unsigned i = 0; i < isa::kNumOpcodes; ++i) {
    const auto op = static_cast<isa::Opcode>(i);
    if (s == isa::mnemonic(op) && isa::is_characterized(op)) return op;
  }
  return std::nullopt;
}

std::optional<rtl::Module> parse_module(const std::string& s) {
  if (s == "fp32") return rtl::Module::Fp32Fu;
  if (s == "int") return rtl::Module::IntFu;
  if (s == "sfu") return rtl::Module::Sfu;
  if (s == "sfuctl") return rtl::Module::SfuCtl;
  if (s == "sched") return rtl::Module::Scheduler;
  if (s == "pipe") return rtl::Module::PipelineRegs;
  return std::nullopt;
}

/// Pulls "--name value" pairs out of argv.
struct Options {
  std::size_t faults = 2000;
  std::size_t injections = 300;
  std::uint64_t seed = 1;
  std::string db_path = "gpufi_data/syndromes.db";
  std::string models_dir = "gpufi_data";
  std::string range = "M";
  std::string tile = "random";
  unsigned jobs = 0;  ///< 0 = GPUFI_JOBS env or hardware concurrency
  rtlfi::Acceleration accel = rtlfi::Acceleration::CheckpointEarlyExit;

  static Options parse(int argc, char** argv, int first) {
    Options o;
    for (int i = first; i + 1 < argc; i += 2) {
      const std::string key = argv[i];
      const std::string val = argv[i + 1];
      if (key == "--faults") o.faults = std::strtoull(val.c_str(), nullptr, 10);
      else if (key == "--injections")
        o.injections = std::strtoull(val.c_str(), nullptr, 10);
      else if (key == "--seed") o.seed = std::strtoull(val.c_str(), nullptr, 10);
      else if (key == "--db") o.db_path = val;
      else if (key == "--models") o.models_dir = val;
      else if (key == "--range") o.range = val;
      else if (key == "--tile") o.tile = val;
      else if (key == "--jobs")
        o.jobs = static_cast<unsigned>(std::strtoul(val.c_str(), nullptr, 10));
      else if (key == "--accel") {
        if (val == "none") o.accel = rtlfi::Acceleration::None;
        else if (val == "checkpoint")
          o.accel = rtlfi::Acceleration::Checkpoint;
        else if (val == "full")
          o.accel = rtlfi::Acceleration::CheckpointEarlyExit;
        else
          std::fprintf(stderr, "warning: unknown --accel level %s\n",
                       val.c_str());
      }
      else std::fprintf(stderr, "warning: unknown option %s\n", key.c_str());
    }
    return o;
  }
};

/// Telemetry printer for long campaigns: carriage-return progress on stderr
/// so piped stdout stays machine-readable.
exec::ProgressFn stderr_progress(const char* unit) {
  return [unit](const exec::Progress& p) {
    std::fprintf(stderr, "\r  %zu/%zu %s (%.1f/s, ETA %.0fs)   ", p.done,
                 p.total, unit, p.per_second, p.eta_seconds);
    if (p.done == p.total) std::fputc('\n', stderr);
    std::fflush(stderr);
  };
}

void print_campaign(const rtlfi::CampaignResult& r) {
  std::printf("injected       %zu (golden run: %llu cycles)\n", r.injected,
              static_cast<unsigned long long>(r.golden_cycles));
  std::printf("masked         %zu (%.2f%%)\n", r.masked,
              100.0 * r.masked / r.injected);
  std::printf("SDC single-thr %zu\n", r.sdc_single);
  std::printf("SDC multi-thr  %zu (mean %.1f threads)\n", r.sdc_multi,
              r.mean_corrupted_threads());
  std::printf("DUE            %zu\n", r.due);
  std::printf("AVF            %.3f%% +- %.3f%% (95%%)\n", 100 * r.avf(),
              100 * r.margin_of_error());
}

int cmd_modules() {
  std::printf("%-22s %10s %10s %10s\n", "module", "flip-flops", "data",
              "control");
  for (unsigned i = 0; i < rtl::kNumModules; ++i) {
    const auto m = static_cast<rtl::Module>(i);
    const auto& l = rtl::layouts().of(m);
    std::printf("%-22s %10zu %10zu %10zu\n",
                std::string(rtl::module_name(m)).c_str(), l.bits(),
                l.data_bits(), l.control_bits());
  }
  return 0;
}

int cmd_rtl(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto op = parse_op(argv[2]);
  const auto module = parse_module(argv[3]);
  if (!op || !module) return usage();
  const Options o = Options::parse(argc, argv, 4);
  const auto range = o.range == "S"   ? rtlfi::InputRange::Small
                     : o.range == "L" ? rtlfi::InputRange::Large
                                      : rtlfi::InputRange::Medium;
  const auto w = rtlfi::make_microbenchmark(*op, range, o.seed);
  rtlfi::CampaignConfig cfg;
  cfg.module = *module;
  cfg.n_faults = o.faults;
  cfg.seed = o.seed;
  cfg.jobs = o.jobs;
  cfg.acceleration = o.accel;
  cfg.progress = stderr_progress("injections");
  std::printf("== RTL campaign: %s on %s (%s inputs), %zu faults\n",
              std::string(isa::mnemonic(*op)).c_str(),
              std::string(rtl::module_name(*module)).c_str(),
              std::string(rtlfi::range_name(range)).c_str(), o.faults);
  print_campaign(rtlfi::run_campaign(w, cfg));
  return 0;
}

int cmd_tmxm(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto site = parse_module(argv[2]);
  if (!site) return usage();
  const Options o = Options::parse(argc, argv, 3);
  const auto kind = o.tile == "max"    ? rtlfi::TileKind::Max
                    : o.tile == "zero" ? rtlfi::TileKind::Zero
                                       : rtlfi::TileKind::Random;
  rtlfi::CampaignConfig cfg;
  cfg.module = *site;
  cfg.n_faults = o.faults;
  cfg.seed = o.seed;
  cfg.jobs = o.jobs;
  cfg.acceleration = o.accel;
  cfg.progress = stderr_progress("injections");
  std::printf("== t-MxM campaign: %s site, %s tile, %zu faults\n",
              std::string(rtl::module_name(*site)).c_str(),
              std::string(rtlfi::tile_name(kind)).c_str(), o.faults);
  const auto r = rtlfi::run_campaign(rtlfi::make_tmxm(kind, o.seed), cfg);
  print_campaign(r);
  syndrome::Database db;
  db.add_tmxm_campaign(*site, 8, 8, r);
  const auto& stats = db.tmxm(*site);
  std::printf("patterns:");
  for (std::size_t p = 0; p < syndrome::kNumPatterns; ++p)
    std::printf(" %s=%zu",
                std::string(syndrome::pattern_name(
                                static_cast<syndrome::Pattern>(p)))
                    .c_str(),
                stats.counts[p]);
  std::printf("\n");
  return 0;
}

int cmd_build_db(int argc, char** argv) {
  if (argc < 3) return usage();
  const Options o = Options::parse(argc, argv, 3);
  core::RtlCharacterizationConfig cfg;
  cfg.faults_per_campaign = o.faults;
  cfg.jobs = o.jobs;
  cfg.acceleration = o.accel;
  cfg.progress = stderr_progress("campaigns");
  std::printf("building syndrome database (%zu faults/campaign)...\n",
              cfg.faults_per_campaign);
  const auto db = core::build_syndrome_database(cfg);
  db.save_file(argv[2]);
  std::printf("wrote %s (%zu distributions)\n", argv[2], db.keys().size());
  return 0;
}

int cmd_sw(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string app_name = argv[2];
  const std::string model_name = argv[3];
  const Options o = Options::parse(argc, argv, 4);
  std::optional<apps::HpcApp> app;
  if (app_name == "mxm") app = apps::make_mxm();
  else if (app_name == "gaussian") app = apps::make_gaussian();
  else if (app_name == "lud") app = apps::make_lud();
  else if (app_name == "hotspot") app = apps::make_hotspot();
  else if (app_name == "lava") app = apps::make_lava();
  else if (app_name == "quicksort") app = apps::make_quicksort();
  if (!app) return usage();
  swfi::Config cfg;
  cfg.n_injections = o.injections;
  cfg.seed = o.seed;
  cfg.jobs = o.jobs;
  cfg.progress = stderr_progress("injections");
  std::optional<syndrome::Database> db;
  if (model_name == "bitflip") cfg.model = swfi::FaultModel::SingleBitFlip;
  else if (model_name == "doublebit")
    cfg.model = swfi::FaultModel::DoubleBitFlip;
  else if (model_name == "syndrome") {
    cfg.model = swfi::FaultModel::RelativeError;
    core::RtlCharacterizationConfig dbcfg;
    dbcfg.jobs = o.jobs;
    dbcfg.progress = stderr_progress("campaigns");
    db = core::ensure_syndrome_database(o.db_path, dbcfg);
    cfg.db = &*db;
  } else {
    return usage();
  }
  std::printf("== software campaign: %s under %s, %zu injections\n",
              app->app.name.c_str(),
              std::string(fault_model_name(cfg.model)).c_str(),
              o.injections);
  const auto r = swfi::run_sw_campaign(app->app, cfg);
  std::printf("candidates %llu\nPVF        %.3f +- %.3f\nSDC %zu / masked "
              "%zu / DUE %zu\n",
              static_cast<unsigned long long>(r.candidate_instructions),
              r.pvf(), r.margin_of_error(), r.sdc, r.masked, r.due);
  return 0;
}

int cmd_cnn(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string net_name = argv[2];
  const std::string model_name = argv[3];
  const Options o = Options::parse(argc, argv, 4);
  core::RtlCharacterizationConfig dbcfg;
  dbcfg.jobs = o.jobs;
  dbcfg.progress = stderr_progress("campaigns");
  const auto db = core::ensure_syndrome_database(o.db_path, dbcfg);
  const auto models = core::ensure_models(o.models_dir);
  const bool lenet = net_name == "lenet";
  if (!lenet && net_name != "yolo") return usage();
  nn::CnnFaultModel model;
  if (model_name == "bitflip") model = nn::CnnFaultModel::SingleBitFlip;
  else if (model_name == "syndrome")
    model = nn::CnnFaultModel::RelativeError;
  else if (model_name == "tmxm") model = nn::CnnFaultModel::TiledMxM;
  else return usage();
  const auto r = nn::run_cnn_campaign(
      lenet ? models.lenet : models.yololite,
      lenet ? nn::CnnTask::Classification : nn::CnnTask::Detection, model,
      &db, o.injections, o.seed);
  std::printf("== %s under %s: %zu injections\n",
              lenet ? "LeNet" : "YoloLite",
              std::string(cnn_fault_model_name(model)).c_str(),
              r.injections);
  std::printf("PVF (SDC)  %.3f\ncritical   %.3f (%zu of %zu SDCs change "
              "the decision)\nmasked %zu / DUE %zu\n",
              r.pvf(), r.critical_rate(), r.critical, r.sdc, r.masked,
              r.due);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "modules") return cmd_modules();
    if (cmd == "rtl") return cmd_rtl(argc, argv);
    if (cmd == "tmxm") return cmd_tmxm(argc, argv);
    if (cmd == "build-db") return cmd_build_db(argc, argv);
    if (cmd == "sw") return cmd_sw(argc, argv);
    if (cmd == "cnn") return cmd_cnn(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
