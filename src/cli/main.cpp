// gpufi — command-line driver for the two-level fault-injection framework.
//
//   gpufi modules                         list RTL fault targets (Table I)
//   gpufi rtl <op> <module> [options]     one RTL campaign on a micro-benchmark
//   gpufi tmxm <site> [options]           t-MxM characterization campaign
//   gpufi build-db <path> [options]       full RTL characterization -> database
//   gpufi sw <app> <model> [options]      software campaign on an HPC app
//   gpufi cnn <net> <model> [options]     CNN campaign with criticality split
//   gpufi report <op> [module|all] ...    cross-layer attribution report
//   gpufi serve [options]                 campaign daemon on a Unix socket
//   gpufi worker --connect ADDR           fabric shard executor process
//   gpufi submit <rtl|tmxm|sw|cnn> ...    run a campaign through the daemon
//   gpufi status [--socket PATH]          daemon queue/cache counters
//   gpufi stats --metrics                 daemon Prometheus metrics scrape
//
// Common options: --faults N / --injections N, --seed S, --db PATH,
// --jobs N (0 = GPUFI_JOBS env or all hardware threads; results are
// byte-identical whatever the value), --progress-interval N (progress
// callback every N trials), --trace-out FILE (JSONL span/event trace).
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error.
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/gpufi.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/transport.hpp"
#include "fabric/worker.hpp"
#include "nn/gpu_infer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "swfi/planner.hpp"
#include "swfi/swfi.hpp"
#include "syndrome/syndrome.hpp"
#include "vocab/vocab.hpp"

using namespace gpufi;

namespace {

int usage() {
  std::puts(
      "usage:\n"
      "  gpufi modules\n"
      "  gpufi rtl <FADD|FMUL|FFMA|IADD|IMUL|IMAD|FSIN|FEXP|GLD|GST|BRA|"
      "ISETP> <fp32|int|sfu|sfuctl|sched|pipe> [--range S|M|L] [--faults N] "
      "[--seed S]\n"
      "  gpufi tmxm <sched|pipe> [--tile max|zero|random] [--faults N]\n"
      "  gpufi build-db <path> [--faults N] "
      "[--fault-model transient[,stuck0,...]]\n"
      "  gpufi sw <mxm|gaussian|lud|hotspot|lava|quicksort> "
      "<bitflip|doublebit|syndrome|warp|sticky> [--injections N] "
      "[--db PATH] [--plan target_err=X[,min_trials=N][,max_trials=N]]\n"
      "  gpufi cnn <lenet|yolo> <bitflip|syndrome|tmxm> [--injections N] "
      "[--db PATH] [--models DIR]\n"
      "  gpufi report <op> [<module>|all] [--range S|M|L] [--faults N] "
      "[--seed S] [--json] [--out FILE] [--socket PATH]\n"
      "  gpufi serve [--socket PATH] [--workers N] [--queue N] "
      "[--deadline MS] [--fabric ADDR]\n"
      "  gpufi worker --connect ADDR [--name NAME] [--heartbeat MS]\n"
      "  gpufi submit <rtl|tmxm|sw|cnn> <args as above> [--socket PATH] "
      "[--priority P] [--deadline MS] [--workers N]\n"
      "  gpufi status [--socket PATH] [--metrics]\n"
      "  gpufi stats --metrics [--socket PATH]   (alias of status)\n"
      "\n"
      "every campaign accepts --jobs N: worker threads for the trial loop\n"
      "(default: GPUFI_JOBS env, else all hardware threads; submit defaults\n"
      "to 1 — the daemon's workers are the wide axis). Results are\n"
      "byte-identical for every --jobs value.\n"
      "\n"
      "software campaigns (sw, submit sw) accept --plan: a ZOFI-style\n"
      "adaptive sampler that stratifies injections over (opcode x input\n"
      "range), stops each stratum once the Wilson interval on its SDC rate\n"
      "is narrower than target_err, and reports the stratified PVF with its\n"
      "half-width plus the trials saved. --injections stays the total trial\n"
      "budget; results are byte-identical for every --jobs value.\n"
      "\n"
      "RTL commands accept --accel none|checkpoint|full: the checkpoint\n"
      "fast-forward / golden-convergence early-exit level (default full;\n"
      "results are byte-identical at every level).\n"
      "\n"
      "RTL commands also accept --fault-model transient|stuck0|stuck1|burst\n"
      "(build-db takes a comma list), --fault-duration N (fault window in\n"
      "cycles; 0 = permanent for non-transient models) and --burst-period N\n"
      "(re-flip period of the burst model).\n"
      "\n"
      "gpufi report joins every injection outcome to the instruction live\n"
      "at the fault site (golden-run liveness timeline) and prints\n"
      "per-(module x static instruction) and per-opcode vulnerability\n"
      "tables with 95% Wilson intervals. `all` (the default) bombards all\n"
      "six modules; --json emits the machine-readable form; --out FILE\n"
      "writes atomically (tmp + rename); --socket PATH asks a running\n"
      "daemon instead (single module only; the payload is always JSON and\n"
      "byte-identical to the offline --json output).\n"
      "\n"
      "scaling out: `gpufi serve --fabric ADDR` opens a coordinator socket\n"
      "(unix:PATH for one machine, tcp:HOST:PORT across machines); each\n"
      "`gpufi worker --connect ADDR` process registers as a shard executor.\n"
      "`gpufi submit ... --workers N` then fans the campaign out over up to\n"
      "N workers; the merged result is byte-identical to the offline run\n"
      "for any worker count, including after worker failures (lost shards\n"
      "are retried on surviving workers).\n"
      "\n"
      "observability: --progress-interval N fires the progress callback\n"
      "every N trials (N >= 1; deterministic whatever --jobs), --trace-out\n"
      "FILE writes a JSONL span/event trace, `gpufi status --metrics`\n"
      "scrapes the daemon's Prometheus text exposition.\n"
      "\n"
      "exit codes: 0 success, 1 runtime failure, 2 usage error (including\n"
      "a syndrome database with an incompatible schema version).\n");
  return 2;
}

/// Hard usage error: diagnose on stderr, then exit 2 via usage().
int usage_error(const std::string& what) {
  std::fprintf(stderr, "error: %s\n\n", what.c_str());
  return usage();
}

bool parse_u64_strict(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  out = v;
  return true;
}

/// Pre-flight check for output paths (--trace-out, report --out): the
/// parent directory must exist and be writable, caught at option-parse time
/// so a doomed long campaign fails before its first trial.
bool writable_parent(const std::string& path) {
  auto dir = std::filesystem::path(path).parent_path();
  if (dir.empty()) dir = ".";
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return false;
  return ::access(dir.c_str(), W_OK) == 0;
}

/// Writes `content` to `path` atomically (tmp + rename) so readers never
/// observe a torn report. Throws std::runtime_error on I/O failure.
void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc | std::ios::binary);
    if (!f) throw std::runtime_error("cannot open " + tmp);
    f.write(content.data(), static_cast<std::streamsize>(content.size()));
    if (!f) throw std::runtime_error("failed writing " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

bool parse_int_strict(const std::string& s, int& out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  out = static_cast<int>(v);
  return true;
}

/// Pulls "--name value" pairs out of argv. Strict: an unknown flag, a flag
/// missing its value, a malformed number, or an invalid enum value is a hard
/// usage error (nullopt; the caller exits 2), never a warning.
struct Options {
  std::size_t faults = 2000;
  std::size_t injections = 300;
  std::uint64_t seed = 1;
  std::string db_path = "gpufi_data/syndromes.db";
  std::string models_dir = "gpufi_data";
  std::string range = "M";
  std::string tile = "random";
  unsigned jobs = 0;  ///< 0 = GPUFI_JOBS env or hardware concurrency
  std::string accel = "full";
  /// --fault-model raw value; single token for campaigns, comma list for
  /// build-db. `fault_models` holds the validated parse.
  std::string fault_model = "transient";
  std::vector<rtl::FaultModel> fault_models = {rtl::FaultModel::Transient};
  std::uint64_t fault_duration = 0;  ///< 0 = permanent (non-transient)
  std::uint64_t burst_period = 8;
  // serve/submit/status options
  std::string socket = serve::kDefaultSocketPath;
  bool socket_set = false;  ///< --socket given (report: route via daemon)
  unsigned workers = 2;
  bool workers_set = false;  ///< --workers given (submit: fabric fan-out)
  std::size_t queue = 64;
  int priority = 0;
  std::uint64_t deadline_ms = 0;
  // fabric options
  std::string fabric;   ///< serve: coordinator listen address ("" = off)
  std::string connect;  ///< worker: coordinator address to dial
  std::string name;     ///< worker: registration name ("" = worker-<pid>)
  std::uint64_t heartbeat_ms = 500;  ///< worker: liveness ping period
  // observability options
  std::size_t progress_interval = 0;  ///< 0 = adaptive (~2% steps)
  std::string trace_out;              ///< JSONL span/event sink ("" = off)
  bool metrics = false;               ///< status: scrape Prometheus text
  // report options
  bool json = false;      ///< report: machine-readable rendering
  std::string out_path;   ///< report: write here (atomic) instead of stdout
  // sw planner options
  std::string plan;       ///< --plan raw vocabulary ("" = fixed campaign)

  static std::optional<Options> parse(int argc, char** argv, int first) {
    Options o;
    int i = first;
    while (i < argc) {
      const std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        usage_error("unexpected argument: " + key);
        return std::nullopt;
      }
      // Boolean flags take no value and advance by one.
      if (key == "--metrics") {
        o.metrics = true;
        ++i;
        continue;
      }
      if (key == "--json") {
        o.json = true;
        ++i;
        continue;
      }
      if (i + 1 >= argc) {
        usage_error("option " + key + " requires a value");
        return std::nullopt;
      }
      const std::string val = argv[i + 1];
      i += 2;
      std::uint64_t n = 0;
      const auto number = [&]() -> bool {
        if (parse_u64_strict(val, n)) return true;
        usage_error("option " + key + " expects a number, got '" + val + "'");
        return false;
      };
      if (key == "--faults") {
        if (!number()) return std::nullopt;
        o.faults = n;
      } else if (key == "--injections") {
        if (!number()) return std::nullopt;
        o.injections = n;
      } else if (key == "--seed") {
        if (!number()) return std::nullopt;
        o.seed = n;
      } else if (key == "--jobs") {
        if (!number()) return std::nullopt;
        o.jobs = static_cast<unsigned>(n);
      } else if (key == "--workers") {
        if (!number()) return std::nullopt;
        o.workers = static_cast<unsigned>(n);
        o.workers_set = true;
      } else if (key == "--fabric") {
        if (!fabric::parse_endpoint(val)) {
          usage_error("bad --fabric address '" + val +
                      "' (expected unix:PATH or tcp:HOST:PORT)");
          return std::nullopt;
        }
        o.fabric = val;
      } else if (key == "--connect") {
        if (!fabric::parse_endpoint(val)) {
          usage_error("bad --connect address '" + val +
                      "' (expected unix:PATH or tcp:HOST:PORT)");
          return std::nullopt;
        }
        o.connect = val;
      } else if (key == "--name") {
        o.name = val;
      } else if (key == "--heartbeat") {
        if (!number()) return std::nullopt;
        if (n == 0) {
          usage_error("option --heartbeat expects a positive millisecond "
                      "count");
          return std::nullopt;
        }
        o.heartbeat_ms = n;
      } else if (key == "--queue") {
        if (!number()) return std::nullopt;
        o.queue = n;
      } else if (key == "--deadline") {
        if (!number()) return std::nullopt;
        o.deadline_ms = n;
      } else if (key == "--priority") {
        if (!parse_int_strict(val, o.priority)) {
          usage_error("option --priority expects an integer, got '" + val +
                      "'");
          return std::nullopt;
        }
      } else if (key == "--db") {
        o.db_path = val;
      } else if (key == "--models") {
        o.models_dir = val;
      } else if (key == "--socket") {
        o.socket = val;
        o.socket_set = true;
      } else if (key == "--out") {
        if (!writable_parent(val)) {
          usage_error("--out parent directory is missing or not writable: " +
                      val);
          return std::nullopt;
        }
        o.out_path = val;
      } else if (key == "--range") {
        if (!serve::parse_range(val)) {
          usage_error("unknown --range '" + val + "' (expected S|M|L)");
          return std::nullopt;
        }
        o.range = val;
      } else if (key == "--tile") {
        if (!serve::parse_tile(val)) {
          usage_error("unknown --tile '" + val +
                      "' (expected max|zero|random)");
          return std::nullopt;
        }
        o.tile = val;
      } else if (key == "--accel") {
        if (!serve::parse_acceleration(val)) {
          usage_error("unknown --accel level '" + val +
                      "' (expected none|checkpoint|full)");
          return std::nullopt;
        }
        o.accel = val;
      } else if (key == "--fault-model") {
        o.fault_models.clear();
        std::size_t pos = 0;
        while (pos <= val.size()) {
          std::size_t comma = val.find(',', pos);
          if (comma == std::string::npos) comma = val.size();
          const std::string tok = val.substr(pos, comma - pos);
          const auto m = vocab::parse_fault_model(tok);
          if (!m) {
            usage_error("unknown --fault-model '" + tok +
                        "' (expected transient|stuck0|stuck1|burst)");
            return std::nullopt;
          }
          o.fault_models.push_back(*m);
          pos = comma + 1;
        }
        o.fault_model = val;
      } else if (key == "--fault-duration") {
        if (!number()) return std::nullopt;
        o.fault_duration = n;
      } else if (key == "--burst-period") {
        if (!number()) return std::nullopt;
        o.burst_period = n;
      } else if (key == "--plan") {
        std::string err;
        if (!vocab::parse_plan(val, &err)) {
          usage_error(err);
          return std::nullopt;
        }
        o.plan = val;
      } else if (key == "--progress-interval") {
        const auto iv = vocab::parse_progress_interval(val);
        if (!iv) {
          usage_error("option --progress-interval expects a positive trial "
                      "count, got '" + val + "'");
          return std::nullopt;
        }
        o.progress_interval = *iv;
      } else if (key == "--trace-out") {
        if (!writable_parent(val)) {
          usage_error(
              "--trace-out parent directory is missing or not writable: " +
              val);
          return std::nullopt;
        }
        o.trace_out = val;
      } else {
        usage_error("unknown option " + key);
        return std::nullopt;
      }
    }
    return o;
  }

  rtlfi::Acceleration acceleration() const {
    return *serve::parse_acceleration(accel);
  }
};

/// Installs the process-wide JSONL trace sink when --trace-out was given.
/// TraceSink::open throws on an unwritable path; main() maps that to exit 1.
void install_trace_sink(const Options& o) {
  if (!o.trace_out.empty())
    obs::set_trace_sink(obs::TraceSink::open(o.trace_out));
}

/// Telemetry printer for long campaigns: carriage-return progress on stderr
/// so piped stdout stays machine-readable.
exec::ProgressFn stderr_progress(const char* unit) {
  return [unit](const exec::Progress& p) {
    std::fprintf(stderr, "\r  %zu/%zu %s (%.1f/s, ETA %.0fs)   ", p.done,
                 p.total, unit, p.per_second, p.eta_seconds);
    if (p.done == p.total) std::fputc('\n', stderr);
    std::fflush(stderr);
  };
}

void print_campaign(const rtlfi::CampaignResult& r) {
  std::printf("injected       %zu (golden run: %llu cycles)\n", r.injected,
              static_cast<unsigned long long>(r.golden_cycles));
  std::printf("masked         %zu (%.2f%%)\n", r.masked,
              100.0 * r.masked / r.injected);
  std::printf("SDC single-thr %zu\n", r.sdc_single);
  std::printf("SDC multi-thr  %zu (mean %.1f threads)\n", r.sdc_multi,
              r.mean_corrupted_threads());
  std::printf("DUE            %zu\n", r.due);
  std::printf("AVF            %.3f%% +- %.3f%% (95%%)\n", 100 * r.avf(),
              100 * r.margin_of_error());
}

int cmd_modules() {
  std::printf("%-22s %10s %10s %10s\n", "module", "flip-flops", "data",
              "control");
  for (unsigned i = 0; i < rtl::kNumModules; ++i) {
    const auto m = static_cast<rtl::Module>(i);
    const auto& l = rtl::layouts().of(m);
    std::printf("%-22s %10zu %10zu %10zu\n",
                std::string(rtl::module_name(m)).c_str(), l.bits(),
                l.data_bits(), l.control_bits());
  }
  return 0;
}

int cmd_rtl(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto op = serve::parse_opcode(argv[2]);
  if (!op) return usage_error(std::string("unknown instruction '") + argv[2] +
                              "'");
  const auto module = serve::parse_module(argv[3]);
  if (!module)
    return usage_error(std::string("unknown module '") + argv[3] + "'");
  const auto o = Options::parse(argc, argv, 4);
  if (!o) return 2;
  if (o->fault_models.size() != 1)
    return usage_error("gpufi rtl expects a single --fault-model");
  install_trace_sink(*o);
  const auto range = *serve::parse_range(o->range);
  const auto w = rtlfi::make_microbenchmark(*op, range, o->seed);
  rtlfi::CampaignConfig cfg;
  cfg.module = *module;
  cfg.n_faults = o->faults;
  cfg.seed = o->seed;
  cfg.jobs = o->jobs;
  cfg.acceleration = o->acceleration();
  cfg.fault_model = o->fault_models[0];
  cfg.fault_duration = o->fault_duration;
  cfg.burst_period = o->burst_period;
  cfg.progress = stderr_progress("injections");
  cfg.progress_interval = o->progress_interval;
  std::printf("== RTL campaign: %s on %s (%s inputs, %s faults), %zu faults\n",
              std::string(isa::mnemonic(*op)).c_str(),
              std::string(rtl::module_name(*module)).c_str(),
              std::string(rtlfi::range_name(range)).c_str(),
              std::string(rtl::fault_model_name(cfg.fault_model)).c_str(),
              o->faults);
  print_campaign(rtlfi::run_campaign(w, cfg));
  return 0;
}

int cmd_tmxm(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto site = serve::parse_module(argv[2]);
  if (!site)
    return usage_error(std::string("unknown site '") + argv[2] + "'");
  const auto o = Options::parse(argc, argv, 3);
  if (!o) return 2;
  if (o->fault_models.size() != 1)
    return usage_error("gpufi tmxm expects a single --fault-model");
  install_trace_sink(*o);
  const auto kind = *serve::parse_tile(o->tile);
  rtlfi::CampaignConfig cfg;
  cfg.module = *site;
  cfg.n_faults = o->faults;
  cfg.seed = o->seed;
  cfg.jobs = o->jobs;
  cfg.acceleration = o->acceleration();
  cfg.fault_model = o->fault_models[0];
  cfg.fault_duration = o->fault_duration;
  cfg.burst_period = o->burst_period;
  cfg.progress = stderr_progress("injections");
  cfg.progress_interval = o->progress_interval;
  std::printf("== t-MxM campaign: %s site, %s tile, %zu faults\n",
              std::string(rtl::module_name(*site)).c_str(),
              std::string(rtlfi::tile_name(kind)).c_str(), o->faults);
  const auto r = rtlfi::run_campaign(rtlfi::make_tmxm(kind, o->seed), cfg);
  print_campaign(r);
  syndrome::Database db;
  db.add_tmxm_campaign(*site, 8, 8, r);
  const auto& stats = db.tmxm(*site);
  std::printf("patterns:");
  for (std::size_t p = 0; p < syndrome::kNumPatterns; ++p)
    std::printf(" %s=%zu",
                std::string(syndrome::pattern_name(
                                static_cast<syndrome::Pattern>(p)))
                    .c_str(),
                stats.counts[p]);
  std::printf("\n");
  return 0;
}

int cmd_build_db(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto o = Options::parse(argc, argv, 3);
  if (!o) return 2;
  install_trace_sink(*o);
  core::RtlCharacterizationConfig cfg;
  cfg.faults_per_campaign = o->faults;
  cfg.jobs = o->jobs;
  cfg.acceleration = o->acceleration();
  cfg.fault_models = o->fault_models;
  cfg.progress = stderr_progress("campaigns");
  cfg.progress_interval = o->progress_interval;
  std::printf("building syndrome database (%zu faults/campaign, models: %s)"
              "...\n",
              cfg.faults_per_campaign, o->fault_model.c_str());
  const auto db = core::build_syndrome_database(cfg);
  db.save_file(argv[2]);
  std::printf("wrote %s (%zu distributions)\n", argv[2], db.keys().size());
  return 0;
}

int cmd_sw(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string app_name = argv[2];
  const std::string model_name = argv[3];
  const auto o = Options::parse(argc, argv, 4);
  if (!o) return 2;
  if (!vocab::is_known_app(app_name))
    return usage_error("unknown app '" + app_name + "'");
  const auto model = vocab::parse_sw_model(model_name);
  if (!model) return usage_error("unknown fault model '" + model_name + "'");
  install_trace_sink(*o);
  const auto app = vocab::make_app(app_name);
  swfi::Config cfg;
  cfg.model = *model;
  cfg.n_injections = o->injections;
  cfg.seed = o->seed;
  cfg.jobs = o->jobs;
  cfg.progress = stderr_progress("injections");
  cfg.progress_interval = o->progress_interval;
  std::optional<syndrome::Database> db;
  const bool needs_db = cfg.model == swfi::FaultModel::RelativeError ||
                        cfg.model == swfi::FaultModel::WarpRelativeError ||
                        cfg.model == swfi::FaultModel::StickyRelativeError;
  if (needs_db) {
    core::RtlCharacterizationConfig dbcfg;
    dbcfg.jobs = o->jobs;
    dbcfg.progress = stderr_progress("campaigns");
    db = core::ensure_syndrome_database(o->db_path, dbcfg);
    cfg.db = &*db;
    // Sticky replay images a permanently stuck datapath FF: sample the
    // stuck-at-1 syndrome class (transient fallback inside the database).
    if (cfg.model == swfi::FaultModel::StickyRelativeError)
      cfg.syndrome_model = rtl::FaultModel::StuckAt1;
  }
  if (!o->plan.empty()) {
    const auto plan = *vocab::parse_plan(o->plan);  // validated at parse time
    std::printf("== planned software campaign: %s under %s, budget %zu "
                "(target_err %.3g)\n",
                app.app.name.c_str(),
                std::string(fault_model_name(cfg.model)).c_str(),
                o->injections, plan.target_err);
    const auto pr = swfi::run_planned_campaign(app.app, cfg, plan);
    std::printf("candidates %llu\n",
                static_cast<unsigned long long>(
                    pr.result.candidate_instructions));
    for (const auto& s : pr.strata)
      std::printf("  %-5s %s  cand %-8llu trials %zu/%zu  sdc %llu  (%s, "
                  "hw %.3f)\n",
                  std::string(isa::mnemonic(s.op)).c_str(),
                  std::string(rtlfi::range_name(s.range)).c_str(),
                  static_cast<unsigned long long>(s.candidates), s.trials,
                  s.budget, static_cast<unsigned long long>(s.sdc),
                  std::string(swfi::stratum_stop_name(s.stop)).c_str(),
                  s.sdc_half_width);
    std::printf("PVF        %.3f +- %.3f (stratified)\nSDC %zu / masked %zu "
                "/ DUE %zu\ntrials     %zu of %zu planned (%zu saved)\n",
                pr.pvf, pr.pvf_half_width, pr.result.sdc, pr.result.masked,
                pr.result.due, pr.result.injections, pr.planned_trials,
                pr.trials_saved);
    return 0;
  }
  std::printf("== software campaign: %s under %s, %zu injections\n",
              app.app.name.c_str(),
              std::string(fault_model_name(cfg.model)).c_str(),
              o->injections);
  const auto r = swfi::run_sw_campaign(app.app, cfg);
  std::printf("candidates %llu\nPVF        %.3f +- %.3f\nSDC %zu / masked "
              "%zu / DUE %zu\n",
              static_cast<unsigned long long>(r.candidate_instructions),
              r.pvf(), r.margin_of_error(), r.sdc, r.masked, r.due);
  return 0;
}

int cmd_cnn(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string net_name = argv[2];
  const std::string model_name = argv[3];
  const auto o = Options::parse(argc, argv, 4);
  if (!o) return 2;
  const bool lenet = net_name == "lenet";
  if (!lenet && net_name != "yolo")
    return usage_error("unknown network '" + net_name + "'");
  const auto model = serve::parse_cnn_model(model_name);
  if (!model) return usage_error("unknown fault model '" + model_name + "'");
  install_trace_sink(*o);
  core::RtlCharacterizationConfig dbcfg;
  dbcfg.jobs = o->jobs;
  dbcfg.progress = stderr_progress("campaigns");
  dbcfg.progress_interval = o->progress_interval;
  const auto db = core::ensure_syndrome_database(o->db_path, dbcfg);
  const auto models = core::ensure_models(o->models_dir);
  const auto r = nn::run_cnn_campaign(
      lenet ? models.lenet : models.yololite,
      lenet ? nn::CnnTask::Classification : nn::CnnTask::Detection, *model,
      &db, o->injections, o->seed);
  std::printf("== %s under %s: %zu injections\n",
              lenet ? "LeNet" : "YoloLite",
              std::string(cnn_fault_model_name(*model)).c_str(),
              r.injections);
  std::printf("PVF (SDC)  %.3f\ncritical   %.3f (%zu of %zu SDCs change "
              "the decision)\nmasked %zu / DUE %zu\n",
              r.pvf(), r.critical_rate(), r.critical, r.sdc, r.masked,
              r.due);
  return 0;
}

int cmd_report(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto op = serve::parse_opcode(argv[2]);
  if (!op)
    return usage_error(std::string("unknown instruction '") + argv[2] + "'");
  // Optional positional module; "all" (the default) bombards all six.
  std::string module_arg = "all";
  int first = 3;
  if (argc > 3 && argv[3][0] != '-') {
    module_arg = argv[3];
    first = 4;
  }
  std::optional<rtl::Module> module;
  if (module_arg != "all") {
    const auto m = serve::parse_module(module_arg);
    if (!m)
      return usage_error("unknown module '" + module_arg +
                         "' (expected fp32|int|sfu|sfuctl|sched|pipe|all)");
    module = *m;
  }
  const auto o = Options::parse(argc, argv, first);
  if (!o) return 2;
  if (o->fault_models.size() != 1)
    return usage_error("gpufi report expects a single --fault-model");
  install_trace_sink(*o);

  std::string payload;
  if (o->socket_set) {
    // Served path: one module per request (the spec carries exactly one);
    // the daemon always answers with the JSON rendering.
    if (!module)
      return usage_error(
          "a served report needs a single module, not 'all' (run one "
          "request per module, or drop --socket for the offline path)");
    serve::CampaignSpec spec;
    spec.kind = serve::CampaignKind::Rtl;
    spec.op = argv[2];
    spec.module = module_arg;
    spec.range = o->range;
    spec.fault_model = o->fault_model;
    spec.fault_duration = o->fault_duration;
    spec.burst_period = o->burst_period;
    spec.faults = o->faults;
    spec.seed = o->seed;
    spec.jobs = o->jobs == 0 ? 1 : o->jobs;  // served default: one core
    spec.accel = o->accel;
    spec.priority = o->priority;
    spec.deadline_ms = o->deadline_ms;
    spec.progress_interval = o->progress_interval;
    if (const auto err = serve::validate_spec(spec)) return usage_error(*err);
    std::string error;
    const auto r = serve::query_report(
        o->socket, spec,
        [](const exec::Progress& p) {
          std::fprintf(stderr, "\r  %zu/%zu trials (%.1f/s, ETA %.0fs)   ",
                       p.done, p.total, p.per_second, p.eta_seconds);
          if (p.done == p.total) std::fputc('\n', stderr);
          std::fflush(stderr);
        },
        &error);
    if (!r) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    payload = *r;
  } else {
    core::ReportConfig rc;
    rc.op = *op;
    rc.module = module;
    rc.range = *serve::parse_range(o->range);
    rc.n_faults = o->faults;
    rc.seed = o->seed;
    rc.jobs = o->jobs;
    rc.acceleration = o->acceleration();
    rc.fault_model = o->fault_models[0];
    rc.fault_duration = o->fault_duration;
    rc.burst_period = o->burst_period;
    rc.progress = stderr_progress("injections");
    rc.progress_interval = o->progress_interval;
    const attr::Report report = core::run_report(rc);
    payload = o->json ? attr::render_json(report) : attr::render_text(report);
  }

  if (!o->out_path.empty()) {
    // Atomic publish: a crashed write never leaves a torn report file.
    write_file_atomic(o->out_path, payload);
    std::fprintf(stderr, "wrote %s\n", o->out_path.c_str());
  } else {
    std::fwrite(payload.data(), 1, payload.size(), stdout);
    if (payload.empty() || payload.back() != '\n') std::fputc('\n', stdout);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Service commands.
// ---------------------------------------------------------------------------

volatile std::sig_atomic_t g_signal = 0;
void on_signal(int) { g_signal = 1; }

int cmd_serve(int argc, char** argv) {
  const auto o = Options::parse(argc, argv, 2);
  if (!o) return 2;
  install_trace_sink(*o);
  serve::ServerConfig cfg;
  cfg.socket_path = o->socket;
  cfg.workers = o->workers;
  cfg.queue_capacity = o->queue;
  cfg.default_deadline_ms = o->deadline_ms;
  cfg.quiet = false;
  cfg.fabric_listen = o->fabric;
  serve::Server server(cfg);
  // A worker writing to a hung-up client must get EPIPE, not die.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  server.start();
  while (g_signal == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Graceful drain: finish every admitted campaign, then tear down.
  server.shutdown(/*drain=*/true);
  return 0;
}

int cmd_worker(int argc, char** argv) {
  const auto o = Options::parse(argc, argv, 2);
  if (!o) return 2;
  if (o->connect.empty())
    return usage_error("gpufi worker requires --connect ADDR");
  install_trace_sink(*o);
  fabric::WorkerConfig cfg;
  cfg.coordinator = *fabric::parse_endpoint(o->connect);
  cfg.name = o->name;
  cfg.heartbeat_ms = o->heartbeat_ms;
  cfg.quiet = false;
  fabric::Worker worker(cfg);
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  // A version-mismatch rejection or an unreachable coordinator throws here;
  // main() prints the coordinator's error and exits 1.
  worker.start();
  // Serve shards until signalled or the coordinator hangs up. A coordinator
  // shutdown is a normal drain, not a failure: exit 0 so process supervisors
  // do not restart-loop a worker whose daemon was retired.
  while (g_signal == 0 && worker.connected())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  worker.stop();
  std::fprintf(stderr, "worker done: %zu shards executed\n",
               worker.shards_done());
  return 0;
}

int cmd_submit(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string kind = argv[2];
  serve::CampaignSpec spec;
  int first = 0;
  if (kind == "rtl") {
    if (argc < 5) return usage();
    spec.kind = serve::CampaignKind::Rtl;
    spec.op = argv[3];
    spec.module = argv[4];
    first = 5;
  } else if (kind == "tmxm") {
    if (argc < 4) return usage();
    spec.kind = serve::CampaignKind::Tmxm;
    spec.module = argv[3];
    first = 4;
  } else if (kind == "sw") {
    if (argc < 5) return usage();
    spec.kind = serve::CampaignKind::Sw;
    spec.app = argv[3];
    spec.model = argv[4];
    first = 5;
  } else if (kind == "cnn") {
    if (argc < 5) return usage();
    spec.kind = serve::CampaignKind::Cnn;
    spec.net = argv[3];
    spec.model = argv[4];
    first = 5;
  } else {
    return usage_error("unknown campaign kind '" + kind + "'");
  }
  const auto o = Options::parse(argc, argv, first);
  if (!o) return 2;
  if (o->fault_models.size() != 1)
    return usage_error("gpufi submit expects a single --fault-model");
  spec.range = o->range;
  spec.tile = o->tile;
  spec.fault_model = o->fault_model;
  spec.fault_duration = o->fault_duration;
  spec.burst_period = o->burst_period;
  spec.faults = o->faults;
  spec.injections = o->injections;
  spec.seed = o->seed;
  spec.jobs = o->jobs == 0 ? 1 : o->jobs;  // served default: one core each
  spec.accel = o->accel;
  spec.db_path = o->db_path;
  spec.models_dir = o->models_dir;
  spec.priority = o->priority;
  spec.deadline_ms = o->deadline_ms;
  spec.progress_interval = o->progress_interval;
  spec.plan = o->plan;
  // --workers on submit is the fabric fan-out width (0 = in-process); the
  // daemon-side executor pool keeps its own `serve --workers` knob.
  spec.workers = o->workers_set ? o->workers : 0;
  if (const auto err = serve::validate_spec(spec)) return usage_error(*err);

  const auto outcome = serve::submit_campaign(
      o->socket, spec, [](const exec::Progress& p) {
        std::fprintf(stderr, "\r  %zu/%zu trials (%.1f/s, ETA %.0fs)   ",
                     p.done, p.total, p.per_second, p.eta_seconds);
        if (p.done == p.total) std::fputc('\n', stderr);
        std::fflush(stderr);
      });
  if (!outcome.ok) {
    std::fprintf(stderr, "error: %s\n", outcome.error.c_str());
    return 1;
  }
  std::fwrite(outcome.result.data(), 1, outcome.result.size(), stdout);
  return 0;
}

int cmd_status(int argc, char** argv) {
  const auto o = Options::parse(argc, argv, 2);
  if (!o) return 2;
  std::string error;
  if (o->metrics) {
    const auto text = serve::query_metrics(o->socket, &error);
    if (!text) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    // Raw Prometheus text exposition — scrapers consume it verbatim.
    std::fwrite(text->data(), 1, text->size(), stdout);
    return 0;
  }
  const auto s = serve::query_stats(o->socket, &error);
  if (!s) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("accepted   %zu\ncompleted  %zu\nfailed     %zu\n"
              "cancelled  %zu\nrejected   %zu\nactive     %zu\n"
              "queued     %zu/%zu\nworkers    %zu\n",
              s->accepted, s->completed, s->failed, s->cancelled,
              s->rejected, s->active, s->queued, s->queue_capacity,
              s->workers);
  std::printf("planner early stops %zu\n", s->planner_early_stops);
  std::printf("db cache     %zu hits / %zu misses\n", s->db_cache.hits,
              s->db_cache.misses);
  std::printf("golden cache %zu hits / %zu misses\n", s->golden_cache.hits,
              s->golden_cache.misses);
  std::printf("fabric workers  %zu alive / %zu registered\n",
              s->fabric_workers_alive, s->fabric_workers_registered);
  std::printf("fabric shards   %zu done, %zu in flight, %zu retried\n",
              s->fabric_shards_completed, s->fabric_shards_inflight,
              s->fabric_shards_retried);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "modules") return cmd_modules();
    if (cmd == "rtl") return cmd_rtl(argc, argv);
    if (cmd == "tmxm") return cmd_tmxm(argc, argv);
    if (cmd == "build-db") return cmd_build_db(argc, argv);
    if (cmd == "sw") return cmd_sw(argc, argv);
    if (cmd == "cnn") return cmd_cnn(argc, argv);
    if (cmd == "report") return cmd_report(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "worker") return cmd_worker(argc, argv);
    if (cmd == "submit") return cmd_submit(argc, argv);
    if (cmd == "status" || cmd == "stats") return cmd_status(argc, argv);
  } catch (const syndrome::SchemaMismatch& e) {
    // A stale database file is a configuration error, not a runtime crash:
    // the fix is user action (regenerate), so it exits like a usage error.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage_error("unknown command '" + cmd + "'");
}
