#pragma once

#include <cstdint>

#include "isa/isa.hpp"

namespace gpufi::isa {

/// Pure functional result of a data-processing instruction.
///
/// `a`, `b`, `c` are the resolved operand bit patterns; `c_pred` is the
/// value of the predicate consumed by SEL. Memory and control instructions
/// are executed by the engines themselves. Both the emulator and the RTL
/// model use these semantics (the RTL model computes FP32/INT/SFU results
/// through its staged datapaths, which are bit-identical by construction and
/// verified so by tests).
std::uint32_t alu_result(Opcode op, std::uint32_t a, std::uint32_t b,
                         std::uint32_t c, bool c_pred);

/// Integer comparison (signed) for ISETP.
bool cmp_eval_i(CmpOp cmp, std::uint32_t a, std::uint32_t b);

/// Floating-point comparison for FSETP. Any NaN operand compares false
/// except for NE, which compares true (IEEE unordered semantics).
bool cmp_eval_f(CmpOp cmp, std::uint32_t a, std::uint32_t b);

}  // namespace gpufi::isa
