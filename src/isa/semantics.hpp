#pragma once

#include <cstdint>

#include "isa/isa.hpp"

namespace gpufi::isa {

/// Pure functional result of a data-processing instruction.
///
/// `a`, `b`, `c` are the resolved operand bit patterns; `c_pred` is the
/// value of the predicate consumed by SEL. Memory and control instructions
/// are executed by the engines themselves. Both the emulator and the RTL
/// model use these semantics (the RTL model computes FP32/INT/SFU results
/// through its staged datapaths, which are bit-identical by construction and
/// verified so by tests).
std::uint32_t alu_result(Opcode op, std::uint32_t a, std::uint32_t b,
                         std::uint32_t c, bool c_pred);

/// Integer comparison (signed) for ISETP.
bool cmp_eval_i(CmpOp cmp, std::uint32_t a, std::uint32_t b);

/// Floating-point comparison for FSETP. Any NaN operand compares false
/// except for NE, which compares true (IEEE unordered semantics).
bool cmp_eval_f(CmpOp cmp, std::uint32_t a, std::uint32_t b);

// ---------------------------------------------------------------------------
// Warp-batched lane kernels.
//
// The SoA interpreter decodes an instruction once per warp and then computes
// all kWarpSize lanes in one tight loop: the opcode switch runs once per
// warp-instruction instead of once per lane. Every ALU semantic is a pure
// total function over bit patterns, so inactive lanes are computed on
// whatever bits their register slab holds and discarded by the caller's
// execution mask — out[lane] for an active lane is bit-identical to
// alu_result()/cmp_eval_*() on the same operands.
// ---------------------------------------------------------------------------

/// alu_result for all kWarpSize lanes. `a`, `b`, `c` point at kWarpSize
/// operand values; `c_pred` (used by SEL only) points at kWarpSize predicate
/// bytes and may be null for every other opcode.
void alu_lanes(Opcode op, const std::uint32_t* a, const std::uint32_t* b,
               const std::uint32_t* c, const std::uint8_t* c_pred,
               std::uint32_t* out);

/// cmp_eval_i for all kWarpSize lanes (out[lane] in {0, 1}).
void cmp_lanes_i(CmpOp cmp, const std::uint32_t* a, const std::uint32_t* b,
                 std::uint8_t* out);

/// cmp_eval_f for all kWarpSize lanes (out[lane] in {0, 1}).
void cmp_lanes_f(CmpOp cmp, const std::uint32_t* a, const std::uint32_t* b,
                 std::uint8_t* out);

}  // namespace gpufi::isa
