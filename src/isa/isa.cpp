#include "isa/isa.hpp"

#include <bit>
#include <cstdio>
#include <stdexcept>

namespace gpufi::isa {

Operand Operand::imm_f(float v) {
  return {OperandKind::Imm, std::bit_cast<std::uint32_t>(v)};
}

bool is_characterized(Opcode op) {
  return static_cast<std::uint8_t>(op) <=
         static_cast<std::uint8_t>(Opcode::ISETP);
}

bool is_injection_candidate(Opcode op) {
  return is_characterized(op) && op != Opcode::BRA && op != Opcode::GST;
}

OpClass op_class(Opcode op) {
  switch (op) {
    case Opcode::FADD:
    case Opcode::FMUL:
    case Opcode::FFMA:
      return OpClass::Fp32;
    case Opcode::IADD:
    case Opcode::IMUL:
    case Opcode::IMAD:
      return OpClass::Int32;
    case Opcode::FSIN:
    case Opcode::FEXP:
      return OpClass::Special;
    case Opcode::GLD:
    case Opcode::GST:
    case Opcode::LDS:
    case Opcode::STS:
      return OpClass::Memory;
    case Opcode::BRA:
    case Opcode::ISETP:
    case Opcode::FSETP:
    case Opcode::BAR:
    case Opcode::EXIT:
      return OpClass::Control;
    default:
      return OpClass::Other;
  }
}

std::string_view mnemonic(Opcode op) {
  switch (op) {
    case Opcode::FADD: return "FADD";
    case Opcode::FMUL: return "FMUL";
    case Opcode::FFMA: return "FFMA";
    case Opcode::IADD: return "IADD";
    case Opcode::IMUL: return "IMUL";
    case Opcode::IMAD: return "IMAD";
    case Opcode::FSIN: return "FSIN";
    case Opcode::FEXP: return "FEXP";
    case Opcode::GLD: return "GLD";
    case Opcode::GST: return "GST";
    case Opcode::BRA: return "BRA";
    case Opcode::ISETP: return "ISETP";
    case Opcode::MOV: return "MOV";
    case Opcode::FSETP: return "FSETP";
    case Opcode::SHL: return "SHL";
    case Opcode::SHR: return "SHR";
    case Opcode::AND: return "AND";
    case Opcode::OR: return "OR";
    case Opcode::XOR: return "XOR";
    case Opcode::IMIN: return "IMIN";
    case Opcode::IMAX: return "IMAX";
    case Opcode::I2F: return "I2F";
    case Opcode::F2I: return "F2I";
    case Opcode::FMNMX: return "FMNMX";
    case Opcode::FRCP: return "FRCP";
    case Opcode::SEL: return "SEL";
    case Opcode::LDS: return "LDS";
    case Opcode::STS: return "STS";
    case Opcode::BAR: return "BAR";
    case Opcode::EXIT: return "EXIT";
    case Opcode::NOP: return "NOP";
  }
  return "???";
}

std::string_view cmp_name(CmpOp c) {
  switch (c) {
    case CmpOp::EQ: return "eq";
    case CmpOp::NE: return "ne";
    case CmpOp::LT: return "lt";
    case CmpOp::LE: return "le";
    case CmpOp::GT: return "gt";
    case CmpOp::GE: return "ge";
  }
  return "??";
}

std::string_view sreg_name(SReg s) {
  switch (s) {
    case SReg::TID_X: return "%tid.x";
    case SReg::TID_Y: return "%tid.y";
    case SReg::NTID_X: return "%ntid.x";
    case SReg::NTID_Y: return "%ntid.y";
    case SReg::CTAID_X: return "%ctaid.x";
    case SReg::CTAID_Y: return "%ctaid.y";
    case SReg::NCTAID_X: return "%nctaid.x";
    case SReg::NCTAID_Y: return "%nctaid.y";
    case SReg::LANEID: return "%laneid";
    case SReg::PARAM0: return "param[0]";
    case SReg::PARAM1: return "param[1]";
    case SReg::PARAM2: return "param[2]";
    case SReg::PARAM3: return "param[3]";
    case SReg::PARAM4: return "param[4]";
    case SReg::PARAM5: return "param[5]";
    case SReg::PARAM6: return "param[6]";
    case SReg::PARAM7: return "param[7]";
  }
  return "%?";
}

bool Instr::writes_gpr() const {
  switch (op) {
    case Opcode::GST:
    case Opcode::STS:
    case Opcode::BRA:
    case Opcode::ISETP:
    case Opcode::FSETP:
    case Opcode::BAR:
    case Opcode::EXIT:
    case Opcode::NOP:
      return false;
    default:
      return true;
  }
}

bool Instr::writes_pred() const {
  return op == Opcode::ISETP || op == Opcode::FSETP;
}

namespace {

std::string operand_str(const Operand& o) {
  char buf[48];
  switch (o.kind) {
    case OperandKind::None:
      return "";
    case OperandKind::Reg:
      std::snprintf(buf, sizeof buf, "R%u", o.value);
      return buf;
    case OperandKind::Imm: {
      const float f = std::bit_cast<float>(o.value);
      // Heuristic rendering: plausible floats as floats, else as ints.
      const std::uint32_t exp = (o.value >> 23) & 0xff;
      if (o.value != 0 && exp > 64 && exp < 192) {
        std::snprintf(buf, sizeof buf, "%g", static_cast<double>(f));
      } else {
        std::snprintf(buf, sizeof buf, "%d",
                      static_cast<std::int32_t>(o.value));
      }
      return buf;
    }
    case OperandKind::Special:
      return std::string(sreg_name(static_cast<SReg>(o.value)));
  }
  return "?";
}

}  // namespace

std::string Instr::to_string() const {
  std::string s;
  char buf[64];
  if (pred >= 0) {
    std::snprintf(buf, sizeof buf, "@%sP%d ", pred_neg ? "!" : "", pred);
    s += buf;
  }
  s += mnemonic(op);
  if (op == Opcode::ISETP || op == Opcode::FSETP) {
    s += '.';
    s += cmp_name(cmp);
    std::snprintf(buf, sizeof buf, " P%u, ", dst);
    s += buf;
    s += operand_str(a) + ", " + operand_str(b);
    return s;
  }
  if (op == Opcode::BRA) {
    std::snprintf(buf, sizeof buf, " %d (reconv %d)", target, reconv);
    s += buf;
    return s;
  }
  if (op == Opcode::GLD || op == Opcode::LDS) {
    std::snprintf(buf, sizeof buf, " R%u, [%s%+d]", dst,
                  operand_str(a).c_str(), imm);
    s += buf;
    return s;
  }
  if (op == Opcode::GST || op == Opcode::STS) {
    std::snprintf(buf, sizeof buf, " [%s%+d], %s", operand_str(a).c_str(),
                  imm, operand_str(b).c_str());
    s += buf;
    return s;
  }
  if (op == Opcode::BAR || op == Opcode::EXIT || op == Opcode::NOP) return s;
  std::snprintf(buf, sizeof buf, " R%u", dst);
  s += buf;
  for (const Operand* o : {&a, &b, &c}) {
    if (o->kind == OperandKind::None) break;
    s += ", " + operand_str(*o);
  }
  if (op == Opcode::SEL) {
    std::snprintf(buf, sizeof buf, ", P%u", c.value);
    // SEL carries its predicate in c as a pred index; printed above via loop
  }
  return s;
}

std::string Program::to_string() const {
  std::string out = name + ":\n";
  char buf[32];
  for (std::size_t i = 0; i < code.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%4zu: ", i);
    out += buf;
    out += code[i].to_string();
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// KernelBuilder
// ---------------------------------------------------------------------------

Instr KernelBuilder::with_guard(Instr i) {
  i.pred = pending_pred_;
  i.pred_neg = pending_pred_neg_;
  pending_pred_ = -1;
  pending_pred_neg_ = false;
  return i;
}

KernelBuilder& KernelBuilder::emit(Instr i) {
  prog_.code.push_back(with_guard(i));
  return *this;
}

KernelBuilder& KernelBuilder::pred(std::uint8_t p, bool negate) {
  pending_pred_ = static_cast<std::int8_t>(p);
  pending_pred_neg_ = negate;
  return *this;
}

namespace {
Instr make3(Opcode op, std::uint8_t d, Operand a, Operand b,
            Operand c = Operand::none()) {
  Instr i;
  i.op = op;
  i.dst = d;
  i.a = a;
  i.b = b;
  i.c = c;
  return i;
}
}  // namespace

KernelBuilder& KernelBuilder::fadd(std::uint8_t d, Operand a, Operand b) {
  return emit(make3(Opcode::FADD, d, a, b));
}
KernelBuilder& KernelBuilder::fmul(std::uint8_t d, Operand a, Operand b) {
  return emit(make3(Opcode::FMUL, d, a, b));
}
KernelBuilder& KernelBuilder::ffma(std::uint8_t d, Operand a, Operand b,
                                   Operand c) {
  return emit(make3(Opcode::FFMA, d, a, b, c));
}
KernelBuilder& KernelBuilder::iadd(std::uint8_t d, Operand a, Operand b) {
  return emit(make3(Opcode::IADD, d, a, b));
}
KernelBuilder& KernelBuilder::imul(std::uint8_t d, Operand a, Operand b) {
  return emit(make3(Opcode::IMUL, d, a, b));
}
KernelBuilder& KernelBuilder::imad(std::uint8_t d, Operand a, Operand b,
                                   Operand c) {
  return emit(make3(Opcode::IMAD, d, a, b, c));
}
KernelBuilder& KernelBuilder::fsin(std::uint8_t d, Operand a) {
  return emit(make3(Opcode::FSIN, d, a, Operand::none()));
}
KernelBuilder& KernelBuilder::fexp(std::uint8_t d, Operand a) {
  return emit(make3(Opcode::FEXP, d, a, Operand::none()));
}
KernelBuilder& KernelBuilder::gld(std::uint8_t d, Operand addr,
                                  std::int32_t offset) {
  Instr i = make3(Opcode::GLD, d, addr, Operand::none());
  i.imm = offset;
  return emit(i);
}
KernelBuilder& KernelBuilder::gst(Operand addr, Operand value,
                                  std::int32_t offset) {
  Instr i = make3(Opcode::GST, 0, addr, value);
  i.imm = offset;
  return emit(i);
}
KernelBuilder& KernelBuilder::lds(std::uint8_t d, Operand addr,
                                  std::int32_t offset) {
  Instr i = make3(Opcode::LDS, d, addr, Operand::none());
  i.imm = offset;
  return emit(i);
}
KernelBuilder& KernelBuilder::sts(Operand addr, Operand value,
                                  std::int32_t offset) {
  Instr i = make3(Opcode::STS, 0, addr, value);
  i.imm = offset;
  return emit(i);
}
KernelBuilder& KernelBuilder::mov(std::uint8_t d, Operand a) {
  return emit(make3(Opcode::MOV, d, a, Operand::none()));
}
KernelBuilder& KernelBuilder::movi(std::uint8_t d, std::int32_t v) {
  return mov(d, Operand::imm_i(v));
}
KernelBuilder& KernelBuilder::movf(std::uint8_t d, float v) {
  return mov(d, Operand::imm_f(v));
}
KernelBuilder& KernelBuilder::isetp(std::uint8_t p, CmpOp c, Operand a,
                                    Operand b) {
  Instr i = make3(Opcode::ISETP, p, a, b);
  i.cmp = c;
  return emit(i);
}
KernelBuilder& KernelBuilder::fsetp(std::uint8_t p, CmpOp c, Operand a,
                                    Operand b) {
  Instr i = make3(Opcode::FSETP, p, a, b);
  i.cmp = c;
  return emit(i);
}
KernelBuilder& KernelBuilder::shl(std::uint8_t d, Operand a, Operand b) {
  return emit(make3(Opcode::SHL, d, a, b));
}
KernelBuilder& KernelBuilder::shr(std::uint8_t d, Operand a, Operand b) {
  return emit(make3(Opcode::SHR, d, a, b));
}
KernelBuilder& KernelBuilder::and_(std::uint8_t d, Operand a, Operand b) {
  return emit(make3(Opcode::AND, d, a, b));
}
KernelBuilder& KernelBuilder::or_(std::uint8_t d, Operand a, Operand b) {
  return emit(make3(Opcode::OR, d, a, b));
}
KernelBuilder& KernelBuilder::xor_(std::uint8_t d, Operand a, Operand b) {
  return emit(make3(Opcode::XOR, d, a, b));
}
KernelBuilder& KernelBuilder::imin(std::uint8_t d, Operand a, Operand b) {
  return emit(make3(Opcode::IMIN, d, a, b));
}
KernelBuilder& KernelBuilder::imax(std::uint8_t d, Operand a, Operand b) {
  return emit(make3(Opcode::IMAX, d, a, b));
}
KernelBuilder& KernelBuilder::i2f(std::uint8_t d, Operand a) {
  return emit(make3(Opcode::I2F, d, a, Operand::none()));
}
KernelBuilder& KernelBuilder::f2i(std::uint8_t d, Operand a) {
  return emit(make3(Opcode::F2I, d, a, Operand::none()));
}
KernelBuilder& KernelBuilder::fmnmx(std::uint8_t d, Operand a, Operand b) {
  return emit(make3(Opcode::FMNMX, d, a, b));
}
KernelBuilder& KernelBuilder::frcp(std::uint8_t d, Operand a) {
  return emit(make3(Opcode::FRCP, d, a, Operand::none()));
}
KernelBuilder& KernelBuilder::sel(std::uint8_t d, Operand a, Operand b,
                                  std::uint8_t p) {
  Instr i = make3(Opcode::SEL, d, a, b);
  i.c = Operand{OperandKind::None, p};  // predicate index carried in c.value
  return emit(i);
}
KernelBuilder& KernelBuilder::bar() { return emit(Instr{.op = Opcode::BAR}); }
KernelBuilder& KernelBuilder::exit() {
  return emit(Instr{.op = Opcode::EXIT});
}
KernelBuilder& KernelBuilder::nop() { return emit(Instr{.op = Opcode::NOP}); }

KernelBuilder& KernelBuilder::if_begin(std::uint8_t p, bool negate) {
  // @<!>P BRA <after-then>: threads where the guard does NOT hold skip.
  Instr bra{.op = Opcode::BRA};
  bra.pred = static_cast<std::int8_t>(p);
  bra.pred_neg = !negate;  // branch away when condition is false
  ifs_.push_back(IfFrame{prog_.code.size()});
  prog_.code.push_back(bra);
  return *this;
}

KernelBuilder& KernelBuilder::else_begin() {
  if (ifs_.empty()) throw std::logic_error("else_begin without if_begin");
  IfFrame& f = ifs_.back();
  if (f.has_else) throw std::logic_error("duplicate else_begin");
  // Unconditional-for-then-threads jump over the else branch.
  Instr bra{.op = Opcode::BRA};
  f.else_bra = prog_.code.size();
  prog_.code.push_back(bra);
  // Patch the if-BRA to land at the start of the else branch.
  prog_.code[f.bra_index].target =
      static_cast<std::int32_t>(prog_.code.size());
  f.has_else = true;
  return *this;
}

KernelBuilder& KernelBuilder::if_end() {
  if (ifs_.empty()) throw std::logic_error("if_end without if_begin");
  IfFrame f = ifs_.back();
  ifs_.pop_back();
  const auto end_pc = static_cast<std::int32_t>(prog_.code.size());
  if (f.has_else) {
    prog_.code[f.else_bra].target = end_pc;
    prog_.code[f.else_bra].reconv = end_pc;
  } else {
    prog_.code[f.bra_index].target = end_pc;
  }
  prog_.code[f.bra_index].reconv = end_pc;
  return *this;
}

KernelBuilder& KernelBuilder::loop_begin() {
  loops_.push_back(LoopFrame{here()});
  return *this;
}

KernelBuilder& KernelBuilder::loop_while(std::uint8_t p, bool negate) {
  if (loops_.empty()) throw std::logic_error("loop_while without loop_begin");
  Instr bra{.op = Opcode::BRA};
  bra.pred = static_cast<std::int8_t>(p);
  bra.pred_neg = !negate;  // exit the loop when the condition is false
  loops_.back().exit_bra = prog_.code.size();
  prog_.code.push_back(bra);
  return *this;
}

KernelBuilder& KernelBuilder::loop_end() {
  if (loops_.empty()) throw std::logic_error("loop_end without loop_begin");
  LoopFrame f = loops_.back();
  loops_.pop_back();
  // Backward branch to the condition evaluation.
  Instr back{.op = Opcode::BRA};
  back.target = f.top;
  back.reconv = -1;  // uniform within the still-active subset
  prog_.code.push_back(back);
  const auto end_pc = static_cast<std::int32_t>(prog_.code.size());
  if (f.exit_bra != SIZE_MAX) {
    prog_.code[f.exit_bra].target = end_pc;
    prog_.code[f.exit_bra].reconv = end_pc;
  }
  return *this;
}

Program KernelBuilder::build() {
  if (built_) throw std::logic_error("KernelBuilder::build called twice");
  if (!ifs_.empty() || !loops_.empty())
    throw std::logic_error("KernelBuilder::build with open control flow");
  if (prog_.code.empty() || prog_.code.back().op != Opcode::EXIT)
    prog_.code.push_back(Instr{.op = Opcode::EXIT});
  built_ = true;
  return std::move(prog_);
}

}  // namespace gpufi::isa
