#include "isa/semantics.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "fparith/fp32.hpp"
#include "fparith/sfu.hpp"

namespace gpufi::isa {

namespace {
std::int32_t as_i(std::uint32_t v) { return static_cast<std::int32_t>(v); }
float as_f(std::uint32_t v) { return std::bit_cast<float>(v); }
}  // namespace

std::uint32_t alu_result(Opcode op, std::uint32_t a, std::uint32_t b,
                         std::uint32_t c, bool c_pred) {
  using fparith::FpOp;
  switch (op) {
    case Opcode::FADD:
      return fparith::fma_bits(a, b, 0, FpOp::Add);
    case Opcode::FMUL:
      return fparith::fma_bits(a, b, 0, FpOp::Mul);
    case Opcode::FFMA:
      return fparith::fma_bits(a, b, c, FpOp::Fma);
    case Opcode::IADD:
      return a + b;
    case Opcode::IMUL:
      return fparith::imad_bits(a, b, 0);
    case Opcode::IMAD:
      return fparith::imad_bits(a, b, c);
    case Opcode::FSIN:
      return fparith::sfu_sin_bits(a);
    case Opcode::FEXP:
      return fparith::sfu_exp_bits(a);
    case Opcode::MOV:
      return a;
    case Opcode::SHL:
      return a << (b & 31u);
    case Opcode::SHR:
      return a >> (b & 31u);
    case Opcode::AND:
      return a & b;
    case Opcode::OR:
      return a | b;
    case Opcode::XOR:
      return a ^ b;
    case Opcode::IMIN:
      return as_i(a) < as_i(b) ? a : b;
    case Opcode::IMAX:
      return as_i(a) > as_i(b) ? a : b;
    case Opcode::I2F:
      return fparith::i2f_bits(a);
    case Opcode::F2I:
      return fparith::f2i_bits(a);
    case Opcode::FRCP:
      return std::bit_cast<std::uint32_t>(1.0f / as_f(a));
    case Opcode::FMNMX: {
      const float fa = as_f(a), fb = as_f(b);
      if (std::isnan(fa)) return b;
      if (std::isnan(fb)) return a;
      return fa <= fb ? a : b;
    }
    case Opcode::SEL:
      return c_pred ? a : b;
    default:
      throw std::logic_error("alu_result: not a data-processing opcode");
  }
}

namespace {

/// One opcode dispatch, then a tight lane loop: `f(lane)` must be the pure
/// per-lane semantic of the dispatched opcode.
template <class F>
inline void map_lanes(std::uint32_t* out, F&& f) {
  for (unsigned l = 0; l < kWarpSize; ++l) out[l] = f(l);
}

}  // namespace

void alu_lanes(Opcode op, const std::uint32_t* a, const std::uint32_t* b,
               const std::uint32_t* c, const std::uint8_t* c_pred,
               std::uint32_t* out) {
  using fparith::FpOp;
  switch (op) {
    case Opcode::FADD:
      return map_lanes(out, [&](unsigned l) {
        return fparith::fma_bits(a[l], b[l], 0, FpOp::Add);
      });
    case Opcode::FMUL:
      return map_lanes(out, [&](unsigned l) {
        return fparith::fma_bits(a[l], b[l], 0, FpOp::Mul);
      });
    case Opcode::FFMA:
      return map_lanes(out, [&](unsigned l) {
        return fparith::fma_bits(a[l], b[l], c[l], FpOp::Fma);
      });
    case Opcode::IADD:
      return map_lanes(out, [&](unsigned l) { return a[l] + b[l]; });
    case Opcode::IMUL:
      return map_lanes(out, [&](unsigned l) {
        return fparith::imad_bits(a[l], b[l], 0);
      });
    case Opcode::IMAD:
      return map_lanes(out, [&](unsigned l) {
        return fparith::imad_bits(a[l], b[l], c[l]);
      });
    case Opcode::FSIN:
      return map_lanes(out,
                       [&](unsigned l) { return fparith::sfu_sin_bits(a[l]); });
    case Opcode::FEXP:
      return map_lanes(out,
                       [&](unsigned l) { return fparith::sfu_exp_bits(a[l]); });
    case Opcode::MOV:
      return map_lanes(out, [&](unsigned l) { return a[l]; });
    case Opcode::SHL:
      return map_lanes(out, [&](unsigned l) { return a[l] << (b[l] & 31u); });
    case Opcode::SHR:
      return map_lanes(out, [&](unsigned l) { return a[l] >> (b[l] & 31u); });
    case Opcode::AND:
      return map_lanes(out, [&](unsigned l) { return a[l] & b[l]; });
    case Opcode::OR:
      return map_lanes(out, [&](unsigned l) { return a[l] | b[l]; });
    case Opcode::XOR:
      return map_lanes(out, [&](unsigned l) { return a[l] ^ b[l]; });
    case Opcode::IMIN:
      return map_lanes(out, [&](unsigned l) {
        return as_i(a[l]) < as_i(b[l]) ? a[l] : b[l];
      });
    case Opcode::IMAX:
      return map_lanes(out, [&](unsigned l) {
        return as_i(a[l]) > as_i(b[l]) ? a[l] : b[l];
      });
    case Opcode::I2F:
      return map_lanes(out,
                       [&](unsigned l) { return fparith::i2f_bits(a[l]); });
    case Opcode::F2I:
      return map_lanes(out,
                       [&](unsigned l) { return fparith::f2i_bits(a[l]); });
    case Opcode::FRCP:
      return map_lanes(out, [&](unsigned l) {
        return std::bit_cast<std::uint32_t>(1.0f / as_f(a[l]));
      });
    case Opcode::FMNMX:
      return map_lanes(out, [&](unsigned l) {
        const float fa = as_f(a[l]), fb = as_f(b[l]);
        if (std::isnan(fa)) return b[l];
        if (std::isnan(fb)) return a[l];
        return fa <= fb ? a[l] : b[l];
      });
    case Opcode::SEL:
      return map_lanes(out,
                       [&](unsigned l) { return c_pred[l] ? a[l] : b[l]; });
    default:
      throw std::logic_error("alu_lanes: not a data-processing opcode");
  }
}

void cmp_lanes_i(CmpOp cmp, const std::uint32_t* a, const std::uint32_t* b,
                 std::uint8_t* out) {
  const auto lanes = [&](auto&& f) {
    for (unsigned l = 0; l < kWarpSize; ++l)
      out[l] = f(as_i(a[l]), as_i(b[l])) ? 1 : 0;
  };
  switch (cmp) {
    case CmpOp::EQ: return lanes([](auto x, auto y) { return x == y; });
    case CmpOp::NE: return lanes([](auto x, auto y) { return x != y; });
    case CmpOp::LT: return lanes([](auto x, auto y) { return x < y; });
    case CmpOp::LE: return lanes([](auto x, auto y) { return x <= y; });
    case CmpOp::GT: return lanes([](auto x, auto y) { return x > y; });
    case CmpOp::GE: return lanes([](auto x, auto y) { return x >= y; });
  }
}

void cmp_lanes_f(CmpOp cmp, const std::uint32_t* a, const std::uint32_t* b,
                 std::uint8_t* out) {
  // NaN handling varies per lane, so defer to the scalar semantic; the cmp
  // switch still runs only once per lane here (cmp_eval_f inlines poorly but
  // FSETP is rare relative to the ALU stream).
  for (unsigned l = 0; l < kWarpSize; ++l)
    out[l] = cmp_eval_f(cmp, a[l], b[l]) ? 1 : 0;
}

bool cmp_eval_i(CmpOp cmp, std::uint32_t a, std::uint32_t b) {
  const std::int32_t x = as_i(a), y = as_i(b);
  switch (cmp) {
    case CmpOp::EQ: return x == y;
    case CmpOp::NE: return x != y;
    case CmpOp::LT: return x < y;
    case CmpOp::LE: return x <= y;
    case CmpOp::GT: return x > y;
    case CmpOp::GE: return x >= y;
  }
  return false;
}

bool cmp_eval_f(CmpOp cmp, std::uint32_t a, std::uint32_t b) {
  const float x = as_f(a), y = as_f(b);
  if (std::isnan(x) || std::isnan(y)) return cmp == CmpOp::NE;
  switch (cmp) {
    case CmpOp::EQ: return x == y;
    case CmpOp::NE: return x != y;
    case CmpOp::LT: return x < y;
    case CmpOp::LE: return x <= y;
    case CmpOp::GT: return x > y;
    case CmpOp::GE: return x >= y;
  }
  return false;
}

}  // namespace gpufi::isa
