#include "isa/semantics.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "fparith/fp32.hpp"
#include "fparith/sfu.hpp"

namespace gpufi::isa {

namespace {
std::int32_t as_i(std::uint32_t v) { return static_cast<std::int32_t>(v); }
float as_f(std::uint32_t v) { return std::bit_cast<float>(v); }
}  // namespace

std::uint32_t alu_result(Opcode op, std::uint32_t a, std::uint32_t b,
                         std::uint32_t c, bool c_pred) {
  using fparith::FpOp;
  switch (op) {
    case Opcode::FADD:
      return fparith::fma_bits(a, b, 0, FpOp::Add);
    case Opcode::FMUL:
      return fparith::fma_bits(a, b, 0, FpOp::Mul);
    case Opcode::FFMA:
      return fparith::fma_bits(a, b, c, FpOp::Fma);
    case Opcode::IADD:
      return a + b;
    case Opcode::IMUL:
      return fparith::imad_bits(a, b, 0);
    case Opcode::IMAD:
      return fparith::imad_bits(a, b, c);
    case Opcode::FSIN:
      return fparith::sfu_sin_bits(a);
    case Opcode::FEXP:
      return fparith::sfu_exp_bits(a);
    case Opcode::MOV:
      return a;
    case Opcode::SHL:
      return a << (b & 31u);
    case Opcode::SHR:
      return a >> (b & 31u);
    case Opcode::AND:
      return a & b;
    case Opcode::OR:
      return a | b;
    case Opcode::XOR:
      return a ^ b;
    case Opcode::IMIN:
      return as_i(a) < as_i(b) ? a : b;
    case Opcode::IMAX:
      return as_i(a) > as_i(b) ? a : b;
    case Opcode::I2F:
      return fparith::i2f_bits(a);
    case Opcode::F2I:
      return fparith::f2i_bits(a);
    case Opcode::FRCP:
      return std::bit_cast<std::uint32_t>(1.0f / as_f(a));
    case Opcode::FMNMX: {
      const float fa = as_f(a), fb = as_f(b);
      if (std::isnan(fa)) return b;
      if (std::isnan(fb)) return a;
      return fa <= fb ? a : b;
    }
    case Opcode::SEL:
      return c_pred ? a : b;
    default:
      throw std::logic_error("alu_result: not a data-processing opcode");
  }
}

bool cmp_eval_i(CmpOp cmp, std::uint32_t a, std::uint32_t b) {
  const std::int32_t x = as_i(a), y = as_i(b);
  switch (cmp) {
    case CmpOp::EQ: return x == y;
    case CmpOp::NE: return x != y;
    case CmpOp::LT: return x < y;
    case CmpOp::LE: return x <= y;
    case CmpOp::GT: return x > y;
    case CmpOp::GE: return x >= y;
  }
  return false;
}

bool cmp_eval_f(CmpOp cmp, std::uint32_t a, std::uint32_t b) {
  const float x = as_f(a), y = as_f(b);
  if (std::isnan(x) || std::isnan(y)) return cmp == CmpOp::NE;
  switch (cmp) {
    case CmpOp::EQ: return x == y;
    case CmpOp::NE: return x != y;
    case CmpOp::LT: return x < y;
    case CmpOp::LE: return x <= y;
    case CmpOp::GT: return x > y;
    case CmpOp::GE: return x >= y;
  }
  return false;
}

}  // namespace gpufi::isa
