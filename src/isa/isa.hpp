#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace gpufi::isa {

/// SASS-like machine opcodes.
///
/// The first twelve are the instructions characterized at RTL in the paper
/// (Sec. III): floating point (FADD, FMUL, FFMA), integer (IADD, IMUL, IMAD),
/// transcendental (FSIN, FEXP), memory (GLD, GST) and control (BRA, ISETP).
/// The remainder are the support operations needed to express realistic
/// kernels; they fall in the paper's "Others" profile bucket.
enum class Opcode : std::uint8_t {
  // --- characterized instructions -------------------------------------
  FADD,   ///< d = a + b            (FP32)
  FMUL,   ///< d = a * b            (FP32)
  FFMA,   ///< d = a * b + c        (FP32 fused multiply-add)
  IADD,   ///< d = a + b            (INT32, wraparound)
  IMUL,   ///< d = a * b            (INT32, low 32 bits)
  IMAD,   ///< d = a * b + c        (INT32, low 32 bits)
  FSIN,   ///< d = sin(a)           (SFU)
  FEXP,   ///< d = exp(a)           (SFU; natural exponential)
  GLD,    ///< d = global[a + imm]  (word addressed)
  GST,    ///< global[a + imm] = b
  BRA,    ///< branch to `target` (divergent if guarded and threads disagree)
  ISETP,  ///< pred[dst] = cmp(a, b) (integer compare)

  // --- support instructions -------------------------------------------
  MOV,    ///< d = a (register/immediate/special-register move)
  FSETP,  ///< pred[dst] = cmp(a, b) on FP32 values
  SHL,    ///< d = a << (b & 31)
  SHR,    ///< d = a >> (b & 31)    (logical)
  AND,    ///< d = a & b
  OR,     ///< d = a | b
  XOR,    ///< d = a ^ b
  IMIN,   ///< d = min(a, b)        (signed)
  IMAX,   ///< d = max(a, b)        (signed)
  I2F,    ///< d = float(int(a))
  F2I,    ///< d = int(trunc(float(a)))
  FMNMX,  ///< d = pred ? min(a,b) : max(a,b) -- here: plain fmin (b>=a? a:b)
  FRCP,   ///< d = 1.0f / a (reciprocal; "Others" bucket, not characterized)
  SEL,    ///< d = guard-pred-true ? a : b    (per-thread select on pred c)
  LDS,    ///< d = shared[a + imm]  (word addressed)
  STS,    ///< shared[a + imm] = b
  BAR,    ///< CTA-wide barrier
  EXIT,   ///< thread terminates
  NOP,    ///< no operation
};

/// Total number of opcodes.
constexpr std::size_t kNumOpcodes = static_cast<std::size_t>(Opcode::NOP) + 1;

/// True for the 12 instructions with an RTL-characterized syndrome.
bool is_characterized(Opcode op);

/// True for the opcodes eligible for software fault injection: the
/// RTL-characterized instructions that produce a register or predicate
/// value. BRA and GST have no destination to corrupt. This is the one
/// shared eligibility predicate — the swfi profile pass and the emulator
/// profiler must count the same candidate set, so both call this.
bool is_injection_candidate(Opcode op);

/// Coarse instruction classes used by the profile figure (Fig. 3) and by the
/// syndrome database grouping.
enum class OpClass : std::uint8_t {
  Fp32,     ///< FADD, FMUL, FFMA
  Int32,    ///< IADD, IMUL, IMAD
  Special,  ///< FSIN, FEXP
  Memory,   ///< GLD, GST (and LDS/STS for profiling purposes)
  Control,  ///< BRA, ISETP, FSETP, BAR, EXIT
  Other,    ///< everything else
};

/// Class of an opcode.
OpClass op_class(Opcode op);

/// Mnemonic ("FFMA", "ISETP", ...).
std::string_view mnemonic(Opcode op);

/// Comparison condition for ISETP/FSETP.
enum class CmpOp : std::uint8_t { EQ, NE, LT, LE, GT, GE };

/// Mnemonic suffix (".eq", ".lt", ...).
std::string_view cmp_name(CmpOp c);

/// Special (read-only) hardware registers readable via MOV.
///
/// PARAM0..7 are kernel parameters (typically buffer base addresses),
/// loaded at launch. On the RTL model they live in the warp scheduler's
/// parameter bank — faultable state, matching the paper's observation that
/// the scheduler controller stores memory addresses.
enum class SReg : std::uint8_t {
  TID_X,     ///< thread index within CTA, x
  TID_Y,     ///< thread index within CTA, y
  NTID_X,    ///< CTA dimension, x
  NTID_Y,    ///< CTA dimension, y
  CTAID_X,   ///< CTA index within grid, x
  CTAID_Y,   ///< CTA index within grid, y
  NCTAID_X,  ///< grid dimension, x
  NCTAID_Y,  ///< grid dimension, y
  LANEID,    ///< lane within warp (0..31)
  PARAM0,    ///< kernel parameter 0
  PARAM1,
  PARAM2,
  PARAM3,
  PARAM4,
  PARAM5,
  PARAM6,
  PARAM7,
};

/// Number of kernel parameter slots.
constexpr unsigned kNumParams = 8;

/// Name of a special register ("%tid.x", ...).
std::string_view sreg_name(SReg s);

/// Kind of a source operand.
enum class OperandKind : std::uint8_t { None, Reg, Imm, Special };

/// A source operand: a general-purpose register, a 32-bit immediate (raw
/// bits; may encode an int or a float), or a special register.
struct Operand {
  OperandKind kind = OperandKind::None;
  std::uint32_t value = 0;  ///< reg index, raw immediate bits, or SReg

  static Operand none() { return {}; }
  static Operand reg(std::uint8_t r) { return {OperandKind::Reg, r}; }
  static Operand imm_bits(std::uint32_t bits) {
    return {OperandKind::Imm, bits};
  }
  static Operand imm_i(std::int32_t v) {
    return {OperandKind::Imm, static_cast<std::uint32_t>(v)};
  }
  static Operand imm_f(float v);
  static Operand special(SReg s) {
    return {OperandKind::Special, static_cast<std::uint32_t>(s)};
  }

  bool operator==(const Operand&) const = default;
};

/// Number of 32-bit general-purpose registers per thread.
constexpr unsigned kNumRegs = 32;
/// Number of 1-bit predicate registers per thread.
constexpr unsigned kNumPreds = 4;
/// Threads per warp.
constexpr unsigned kWarpSize = 32;

/// One decoded machine instruction.
///
/// Instructions are held decoded (no binary encoding layer): both the RTL
/// model and the emulator consume this struct directly, mirroring how NVBit
/// exposes decoded SASS to instrumentation tools.
struct Instr {
  Opcode op = Opcode::NOP;
  std::uint8_t dst = 0;       ///< destination GPR, or predicate for *SETP
  Operand a, b, c;            ///< source operands
  std::int32_t imm = 0;       ///< address offset for GLD/GST/LDS/STS
  std::int32_t target = -1;   ///< branch target (instruction index)
  std::int32_t reconv = -1;   ///< reconvergence point for divergent BRA
  CmpOp cmp = CmpOp::EQ;      ///< condition for ISETP/FSETP
  std::int8_t pred = -1;      ///< guard predicate index, -1 = unguarded
  bool pred_neg = false;      ///< guard is @!P rather than @P

  /// True if this instruction writes a general-purpose register.
  bool writes_gpr() const;
  /// True if this instruction writes a predicate register.
  bool writes_pred() const;

  /// SASS-flavoured disassembly, e.g. "@!P0 FFMA R4, R1, R2, R4".
  std::string to_string() const;
};

/// A kernel: a straight vector of instructions plus launch metadata.
struct Program {
  std::string name = "kernel";
  std::vector<Instr> code;
  unsigned shared_words = 0;  ///< shared-memory words per CTA
  /// Kernel parameter values (read through SReg::PARAMi); typically buffer
  /// base addresses, set by the host before launch.
  std::array<std::uint32_t, kNumParams> params{};

  /// Multi-line disassembly with instruction indices.
  std::string to_string() const;
};

/// Structured-control-flow assembler for Program construction.
///
/// The builder emits BRA instructions with explicit reconvergence points so
/// both execution engines can implement a G80-style SIMT stack without
/// post-dominator analysis. Control flow must be structured (if/else and
/// while built through this API); that is the same constraint real CUDA
/// compilers honour when emitting SSY.
class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name) { prog_.name = std::move(name); }

  /// Reserves `words` words of shared memory per CTA.
  KernelBuilder& shared(unsigned words) {
    prog_.shared_words = words;
    return *this;
  }

  // -- plain instruction emitters (return *this for chaining) ----------

  /// Emits an arbitrary pre-built instruction.
  KernelBuilder& emit(Instr i);

  KernelBuilder& fadd(std::uint8_t d, Operand a, Operand b);
  KernelBuilder& fmul(std::uint8_t d, Operand a, Operand b);
  KernelBuilder& ffma(std::uint8_t d, Operand a, Operand b, Operand c);
  KernelBuilder& iadd(std::uint8_t d, Operand a, Operand b);
  KernelBuilder& imul(std::uint8_t d, Operand a, Operand b);
  KernelBuilder& imad(std::uint8_t d, Operand a, Operand b, Operand c);
  KernelBuilder& fsin(std::uint8_t d, Operand a);
  KernelBuilder& fexp(std::uint8_t d, Operand a);
  KernelBuilder& gld(std::uint8_t d, Operand addr, std::int32_t offset = 0);
  KernelBuilder& gst(Operand addr, Operand value, std::int32_t offset = 0);
  KernelBuilder& lds(std::uint8_t d, Operand addr, std::int32_t offset = 0);
  KernelBuilder& sts(Operand addr, Operand value, std::int32_t offset = 0);
  KernelBuilder& mov(std::uint8_t d, Operand a);
  KernelBuilder& movi(std::uint8_t d, std::int32_t v);
  KernelBuilder& movf(std::uint8_t d, float v);
  KernelBuilder& isetp(std::uint8_t p, CmpOp c, Operand a, Operand b);
  KernelBuilder& fsetp(std::uint8_t p, CmpOp c, Operand a, Operand b);
  KernelBuilder& shl(std::uint8_t d, Operand a, Operand b);
  KernelBuilder& shr(std::uint8_t d, Operand a, Operand b);
  KernelBuilder& and_(std::uint8_t d, Operand a, Operand b);
  KernelBuilder& or_(std::uint8_t d, Operand a, Operand b);
  KernelBuilder& xor_(std::uint8_t d, Operand a, Operand b);
  KernelBuilder& imin(std::uint8_t d, Operand a, Operand b);
  KernelBuilder& imax(std::uint8_t d, Operand a, Operand b);
  KernelBuilder& i2f(std::uint8_t d, Operand a);
  KernelBuilder& f2i(std::uint8_t d, Operand a);
  KernelBuilder& fmnmx(std::uint8_t d, Operand a, Operand b);
  KernelBuilder& frcp(std::uint8_t d, Operand a);
  /// d = P[p] ? a : b  (per-thread select)
  KernelBuilder& sel(std::uint8_t d, Operand a, Operand b, std::uint8_t p);
  KernelBuilder& bar();
  KernelBuilder& exit();
  KernelBuilder& nop();

  /// Applies a guard predicate to the *next* emitted instruction.
  KernelBuilder& pred(std::uint8_t p, bool negate = false);

  // -- structured control flow ------------------------------------------

  /// Opens an `if (P[p]) { ... }` region (executes body where P holds).
  KernelBuilder& if_begin(std::uint8_t p, bool negate = false);
  /// Switches to the else branch of the innermost open if.
  KernelBuilder& else_begin();
  /// Closes the innermost if/else.
  KernelBuilder& if_end();

  /// Opens a while loop; `emit_cond` must set predicate p (checked at top).
  /// Usage: loop_begin(); <cond instrs setting P>; loop_while(p); <body>;
  ///        loop_end();
  KernelBuilder& loop_begin();
  /// Tests predicate p: threads where !P exit the loop.
  KernelBuilder& loop_while(std::uint8_t p, bool negate = false);
  /// Closes the innermost loop (branches back to loop_begin).
  KernelBuilder& loop_end();

  /// Current instruction index (for manual label math in tests).
  std::int32_t here() const { return static_cast<std::int32_t>(prog_.code.size()); }

  /// Finalizes and returns the program. Appends a trailing EXIT if the last
  /// instruction cannot terminate the kernel. Throws if control-flow regions
  /// are still open.
  Program build();

 private:
  struct IfFrame {
    std::size_t bra_index;        ///< forward BRA to patch
    std::size_t else_bra = SIZE_MAX;  ///< BRA at end of then-branch
    bool has_else = false;
  };
  struct LoopFrame {
    std::int32_t top;              ///< pc of loop condition start
    std::size_t exit_bra = SIZE_MAX;  ///< forward BRA out of the loop
  };

  Instr with_guard(Instr i);

  Program prog_;
  std::vector<IfFrame> ifs_;
  std::vector<LoopFrame> loops_;
  std::int8_t pending_pred_ = -1;
  bool pending_pred_neg_ = false;
  bool built_ = false;
};

/// Short alias used pervasively in kernel code: R(3) == Operand::reg(3).
inline Operand R(std::uint8_t r) { return Operand::reg(r); }
/// Integer immediate operand.
inline Operand I(std::int32_t v) { return Operand::imm_i(v); }
/// Float immediate operand.
inline Operand F(float v) { return Operand::imm_f(v); }
/// Special-register operand.
inline Operand S(SReg s) { return Operand::special(s); }

}  // namespace gpufi::isa
