#pragma once

#include <cstdint>

namespace gpufi::fparith {

/// Function selector for the Special Function Unit.
enum class SfuFunc : std::uint8_t { Sin = 0, Exp = 1 };

/// Stage 2 state: range-reduced argument.
///
/// Range reduction itself (x -> quadrant + normalized fraction for sin,
/// x -> 2^k * 2^f decomposition for exp) is performed with deterministic
/// double-precision arithmetic in the issue path; the reduced argument is
/// latched in SFU flip-flops, which is where faults strike.
struct SfuS2 {
  std::uint64_t u_fx = 0;  ///< fraction in [0,1] as Q0.32 (33 bits: 2^32 == 1)
  std::uint8_t quadrant = 0;  ///< sin: quadrant 0..3 of the reduced angle
  bool neg = false;           ///< sin: result sign
  std::int32_t k_exp = 0;     ///< exp: power-of-two scale (result *= 2^k)
  SfuFunc func = SfuFunc::Sin;
  bool special = false;        ///< result already decided (NaN/Inf/overflow)
  std::uint32_t special_bits = 0;
};

/// Stage 3 state: table lookup (quadratic coefficients for the segment).
struct SfuS3 {
  std::uint8_t idx = 0;     ///< segment index (7 bits, 128 segments)
  std::uint32_t dx = 0;     ///< intra-segment offset, Q0.25
  std::uint64_t c0 = 0;     ///< f(s) in Q1.40 (<= 2^41)
  std::int64_t c1 = 0;      ///< first-order coefficient, Q.40 (36-bit signed)
  std::int64_t c2 = 0;      ///< second-order coefficient, Q.40 (28-bit signed)
  // carried metadata
  std::uint8_t quadrant = 0;
  bool neg = false;
  std::int32_t k_exp = 0;
  SfuFunc func = SfuFunc::Sin;
  bool special = false;
  std::uint32_t special_bits = 0;
};

/// Stage 4 state: carry-save partial products of the interpolation.
///
/// Products are held as redundant sum/carry vector pairs (t*_s + t*_c equals
/// the product), mirroring the carry-save accumulation trees of a real SFU;
/// a fault in either vector perturbs the product in a position-dependent,
/// non-obvious way.
struct SfuS4 {
  std::uint64_t t1_s = 0, t1_c = 0;  ///< c1 * dx (61-bit pair)
  std::uint64_t t2_s = 0, t2_c = 0;  ///< c2 * dx (53-bit pair)
  std::uint32_t dx = 0;              ///< kept for the second-order multiply
  std::uint64_t c0 = 0;
  bool c1_neg = false, c2_neg = false;
  std::uint8_t quadrant = 0;
  bool neg = false;
  std::int32_t k_exp = 0;
  SfuFunc func = SfuFunc::Sin;
  bool special = false;
  std::uint32_t special_bits = 0;
};

/// Stage 5 state: accumulated fixed-point result.
struct SfuS5 {
  std::int64_t acc = 0;  ///< result in Q.40 (c0 + c1 dx + c2 dx^2)
  std::uint8_t quadrant = 0;
  bool neg = false;
  std::int32_t k_exp = 0;
  SfuFunc func = SfuFunc::Sin;
  bool special = false;
  std::uint32_t special_bits = 0;
};

/// Range reduction (issue path): raw operand bits -> reduced argument.
SfuS2 sfu_stage2(std::uint32_t x_bits, SfuFunc func);
/// Table lookup: segment coefficients.
SfuS3 sfu_stage3(const SfuS2& s);
/// Interpolation multiplies (carry-save form).
SfuS4 sfu_stage4(const SfuS3& s);
/// Accumulation.
SfuS5 sfu_stage5(const SfuS4& s);
/// Sign/scale application, normalization and packing to binary32.
std::uint32_t sfu_stage6(const SfuS5& s);

/// One-shot canonical evaluations (run the staged pipeline to completion).
std::uint32_t sfu_sin_bits(std::uint32_t x_bits);
std::uint32_t sfu_exp_bits(std::uint32_t x_bits);

/// Canonical GPU sine (absolute error <~ 2e-7 on [-2pi, 2pi]).
float sfu_sin(float x);
/// Canonical GPU natural exponential (relative error <~ 3e-7).
float sfu_exp(float x);

}  // namespace gpufi::fparith
