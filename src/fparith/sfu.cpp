#include "fparith/sfu.hpp"

#include <array>
#include <bit>
#include <cmath>

#include "fparith/fp32.hpp"

namespace gpufi::fparith {

namespace {

constexpr int kSegments = 128;
constexpr int kDxBits = 25;  // intra-segment offset precision (Q0.25)
constexpr int kQ = 40;       // fixed-point scale of the accumulator

/// Quadratic segment coefficients in Q.40 fixed point.
struct Segment {
  std::uint64_t c0;
  std::int64_t c1;
  std::int64_t c2;
};

/// Builds the 128-segment quadratic-interpolation table for f on [0,1].
template <typename F>
std::array<Segment, kSegments> build_table(F f) {
  std::array<Segment, kSegments> t{};
  const double scale = static_cast<double>(std::uint64_t{1} << kQ);
  for (int i = 0; i < kSegments; ++i) {
    const double s0 = static_cast<double>(i) / kSegments;
    const double h = 1.0 / kSegments;
    const double f0 = f(s0);
    const double fm = f(s0 + 0.5 * h);
    const double f1 = f(s0 + h);
    // c0 + c1 t + c2 t^2 matching f at t = 0, 1/2, 1.
    const double c1 = 4.0 * fm - 3.0 * f0 - f1;
    const double c2 = 2.0 * f1 + 2.0 * f0 - 4.0 * fm;
    t[i].c0 = static_cast<std::uint64_t>(std::llround(f0 * scale));
    t[i].c1 = std::llround(c1 * scale);
    t[i].c2 = std::llround(c2 * scale);
  }
  return t;
}

const std::array<Segment, kSegments>& sin_table() {
  static const auto table =
      build_table([](double u) { return std::sin(u * 1.5707963267948966); });
  return table;
}

const std::array<Segment, kSegments>& exp2_table() {
  static const auto table =
      build_table([](double u) { return std::exp2(u); });
  return table;
}

constexpr std::uint64_t kEven = 0x5555555555555555ull;
constexpr std::uint32_t kQNaN = 0x7fc00000u;

}  // namespace

SfuS2 sfu_stage2(std::uint32_t x_bits, SfuFunc func) {
  SfuS2 s;
  s.func = func;
  const Unpacked u = fp32_unpack(x_bits);
  if (u.cls == FpClass::NaN) {
    s.special = true;
    s.special_bits = kQNaN;
    return s;
  }
  const double x = static_cast<double>(std::bit_cast<float>(x_bits));
  if (func == SfuFunc::Sin) {
    if (u.cls == FpClass::Inf) {
      s.special = true;
      s.special_bits = kQNaN;
      return s;
    }
    double a = x;
    bool neg = false;
    if (a < 0) {
      a = -a;
      neg = true;
    }
    // Reduced angle in quarter-turns.
    const double t = a / 1.5707963267948966;
    const double fl = std::floor(t);
    const int q = static_cast<int>(std::fmod(fl, 4.0));
    double frac = t - fl;
    if (q == 1 || q == 3) frac = 1.0 - frac;  // fold the table argument
    if (q >= 2) neg = !neg;
    s.quadrant = static_cast<std::uint8_t>(q);
    s.neg = neg;
    s.u_fx = static_cast<std::uint64_t>(
        std::llround(frac * static_cast<double>(std::uint64_t{1} << 32)));
    if (s.u_fx > (std::uint64_t{1} << 32)) s.u_fx = std::uint64_t{1} << 32;
    return s;
  }
  // exp: e^x = 2^(x * log2 e) = 2^k * 2^f.
  if (u.cls == FpClass::Inf) {
    s.special = true;
    s.special_bits = u.sign ? 0u : 0x7f800000u;  // exp(-inf)=0, exp(inf)=inf
    return s;
  }
  const double y = x * 1.4426950408889634;  // log2(e)
  const double fl = std::floor(y);
  if (fl > 129.0) {
    s.special = true;
    s.special_bits = 0x7f800000u;  // overflow to +inf
    return s;
  }
  if (fl < -151.0) {
    s.special = true;
    s.special_bits = 0u;  // underflow to +0
    return s;
  }
  s.k_exp = static_cast<std::int32_t>(fl);
  double frac = y - fl;
  s.u_fx = static_cast<std::uint64_t>(
      std::llround(frac * static_cast<double>(std::uint64_t{1} << 32)));
  if (s.u_fx > (std::uint64_t{1} << 32)) s.u_fx = std::uint64_t{1} << 32;
  return s;
}

SfuS3 sfu_stage3(const SfuS2& s) {
  SfuS3 o;
  o.quadrant = s.quadrant;
  o.neg = s.neg;
  o.k_exp = s.k_exp;
  o.func = s.func;
  o.special = s.special;
  o.special_bits = s.special_bits;
  if (s.special) return o;
  std::uint64_t u = s.u_fx;
  if (u >= (std::uint64_t{1} << 32)) {
    o.idx = kSegments - 1;
    o.dx = std::uint32_t{1} << kDxBits;  // t == 1 exactly
  } else {
    o.idx = static_cast<std::uint8_t>(u >> (32 - 7));  // 7 index bits
    o.dx = static_cast<std::uint32_t>((u >> (32 - 7 - kDxBits)) &
                                      ((std::uint32_t{1} << kDxBits) - 1));
  }
  const Segment& seg = (s.func == SfuFunc::Sin ? sin_table()
                                               : exp2_table())[o.idx];
  o.c0 = seg.c0;
  o.c1 = seg.c1;
  o.c2 = seg.c2;
  return o;
}

SfuS4 sfu_stage4(const SfuS3& s) {
  SfuS4 o;
  o.dx = s.dx;
  o.c0 = s.c0;
  o.quadrant = s.quadrant;
  o.neg = s.neg;
  o.k_exp = s.k_exp;
  o.func = s.func;
  o.special = s.special;
  o.special_bits = s.special_bits;
  if (s.special) return o;
  o.c1_neg = s.c1 < 0;
  o.c2_neg = s.c2 < 0;
  const std::uint64_t p1 =
      static_cast<std::uint64_t>(o.c1_neg ? -s.c1 : s.c1) * s.dx;
  const std::uint64_t p2 =
      static_cast<std::uint64_t>(o.c2_neg ? -s.c2 : s.c2) * s.dx;
  // Redundant carry-save representation: the pair sums to the product.
  o.t1_s = p1 & kEven;
  o.t1_c = p1 & ~kEven;
  o.t2_s = p2 & kEven;
  o.t2_c = p2 & ~kEven;
  return o;
}

SfuS5 sfu_stage5(const SfuS4& s) {
  SfuS5 o;
  o.quadrant = s.quadrant;
  o.neg = s.neg;
  o.k_exp = s.k_exp;
  o.func = s.func;
  o.special = s.special;
  o.special_bits = s.special_bits;
  if (s.special) return o;
  const std::int64_t t1 =
      static_cast<std::int64_t>((s.t1_s + s.t1_c) >> kDxBits);
  // Second-order term: (c2*dx)*dx needs one more multiply by dx.
  const std::uint64_t p2 = ((s.t2_s + s.t2_c) >> kDxBits) * s.dx;
  const std::int64_t t2 = static_cast<std::int64_t>(p2 >> kDxBits);
  o.acc = static_cast<std::int64_t>(s.c0) + (s.c1_neg ? -t1 : t1) +
          (s.c2_neg ? -t2 : t2);
  return o;
}

std::uint32_t sfu_stage6(const SfuS5& s) {
  if (s.special) return s.special_bits;
  std::int64_t acc = s.acc;
  bool neg = s.neg;
  if (acc < 0) {
    // Interpolation rounding can dip just below zero near a root.
    acc = -acc;
    neg = !neg;
  }
  if (s.func == SfuFunc::Sin) {
    return fp32_round_pack(neg, -kQ, static_cast<std::uint64_t>(acc), false);
  }
  return fp32_round_pack(false, static_cast<std::int64_t>(s.k_exp) - kQ,
                         static_cast<std::uint64_t>(acc), false);
}

std::uint32_t sfu_sin_bits(std::uint32_t x_bits) {
  return sfu_stage6(
      sfu_stage5(sfu_stage4(sfu_stage3(sfu_stage2(x_bits, SfuFunc::Sin)))));
}

std::uint32_t sfu_exp_bits(std::uint32_t x_bits) {
  return sfu_stage6(
      sfu_stage5(sfu_stage4(sfu_stage3(sfu_stage2(x_bits, SfuFunc::Exp)))));
}

float sfu_sin(float x) {
  return std::bit_cast<float>(sfu_sin_bits(std::bit_cast<std::uint32_t>(x)));
}

float sfu_exp(float x) {
  return std::bit_cast<float>(sfu_exp_bits(std::bit_cast<std::uint32_t>(x)));
}

}  // namespace gpufi::fparith
