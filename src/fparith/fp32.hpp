#pragma once

#include <cstdint>

namespace gpufi::fparith {

/// Classification of an unpacked binary32 value.
enum class FpClass : std::uint8_t { Zero = 0, Norm = 1, Inf = 2, NaN = 3 };

/// Operation selector for the unified FMA datapath.
///
/// The FP32 functional unit is modelled as a single fused multiply-add
/// datapath (as in the G80 streaming processor, whose core is a MAD unit):
/// FADD executes as a*1+b and FMUL as a*b+0, with zero-sign fixups applied
/// at the rounding stage so results are bit-identical to the dedicated IEEE
/// operations.
enum class FpOp : std::uint8_t { Add = 0, Mul = 1, Fma = 2 };

/// An unpacked binary32: value = (-1)^sign * man * 2^(exp - 23).
/// For normals man is in [2^23, 2^24); for subnormals man < 2^23 and
/// exp == -126. Zero/Inf/NaN are flagged in cls (man/exp then irrelevant,
/// except NaN keeps its payload bits for propagation).
struct Unpacked {
  bool sign = false;
  std::int32_t exp = 0;
  std::uint32_t man = 0;
  FpClass cls = FpClass::Zero;
  std::uint32_t payload = 0;  ///< original bits (NaN propagation)
};

/// Decomposes raw binary32 bits.
Unpacked fp32_unpack(std::uint32_t bits);

/// Rounds (-1)^sign * man * 2^(scale_exp) to nearest-even binary32 and packs.
/// `sticky` means "plus a nonzero amount strictly below the LSB of man".
/// Handles subnormal results and overflow to infinity.
std::uint32_t fp32_round_pack(bool sign, std::int64_t scale_exp,
                              std::uint64_t man, bool sticky);

// ---------------------------------------------------------------------------
// Staged FMA datapath. Stage structs mirror the pipeline registers of the
// RTL FP32 unit: the RTL model stores them bit-packed in a faultable
// BitVector and calls the transition functions below each cycle; a bit flip
// between stages therefore corrupts exactly one intermediate field, which is
// how the "not-obvious syndrome" of the paper arises.
// ---------------------------------------------------------------------------

/// Stage 1 output: unpacked operands. Produced from the raw operand latches.
struct FmaS1 {
  Unpacked a, b, c;
  FpOp op = FpOp::Fma;
};

/// Stage 2 output: exact 48-bit product plus the pass-through addend.
struct FmaS2 {
  std::uint64_t prod = 0;    ///< man_a * man_b, < 2^48
  std::int32_t exp_p = 0;    ///< value(prod) = prod * 2^(exp_p - 46)
  bool sign_p = false;
  FpClass cls_p = FpClass::Zero;
  Unpacked c;                ///< addend, unchanged
  FpOp op = FpOp::Fma;
  bool special = false;          ///< result already decided (NaN/Inf cases)
  std::uint32_t special_bits = 0;
};

/// Stage 3 output: wide aligned sum.
struct FmaS3 {
  /// value = sum * 2^(exp_r - 70); sum fits in 74 bits.
  unsigned __int128 sum = 0;
  std::int32_t exp_r = 0;
  bool sign_r = false;
  bool sticky = false;
  FpOp op = FpOp::Fma;
  bool special = false;
  std::uint32_t special_bits = 0;
  /// Signs used only for the all-zero sign rule at rounding.
  bool zero_case = false;   ///< both product and addend were zero
  bool sign_p = false, sign_c = false;
  bool cancel = false;      ///< exact cancellation (x + -x)
};

/// Unpacks the three operand words (FADD maps to a*1+b, FMUL to a*b+0).
FmaS1 fma_stage1(std::uint32_t a, std::uint32_t b, std::uint32_t c, FpOp op);
/// Multiplies mantissas; resolves NaN/Inf special cases.
FmaS2 fma_stage2(const FmaS1& s);
/// Aligns the addend against the product and adds/subtracts.
FmaS3 fma_stage3(const FmaS2& s);
/// Normalizes, rounds to nearest-even, packs. Returns result bits.
std::uint32_t fma_stage4(const FmaS3& s);

/// One-shot unified datapath (the canonical arithmetic of the library).
std::uint32_t fma_bits(std::uint32_t a, std::uint32_t b, std::uint32_t c,
                       FpOp op);

/// IEEE-754 binary32 fused multiply-add: a*b + c, one rounding.
float ffma(float a, float b, float c);
/// IEEE-754 binary32 addition.
float fadd(float a, float b);
/// IEEE-754 binary32 multiplication.
float fmul(float a, float b);

// ---------------------------------------------------------------------------
// Integer unified MAD datapath: d = lo32(a * b) + c (wraparound), as used by
// the INT functional unit. IADD maps to a*1+b, IMUL to a*b+0.
// ---------------------------------------------------------------------------

/// Stage 1 output of the integer datapath: the full 64-bit product.
struct IntS1 {
  std::uint64_t prod = 0;  ///< full 32x32 product (of the raw bit patterns)
  std::uint32_t c = 0;     ///< pass-through addend
};

/// Multiply step.
IntS1 imad_stage1(std::uint32_t a, std::uint32_t b, std::uint32_t c);
/// Add step: lo32(prod) + c.
std::uint32_t imad_stage2(const IntS1& s);

/// One-shot integer multiply-add (wraparound, low 32 bits).
std::uint32_t imad_bits(std::uint32_t a, std::uint32_t b, std::uint32_t c);

// ---------------------------------------------------------------------------
// Conversions (functional; used by both execution levels).
// ---------------------------------------------------------------------------

/// int32 -> binary32, round to nearest even.
std::uint32_t i2f_bits(std::uint32_t int_bits);
/// binary32 -> int32, truncation toward zero, saturating; NaN -> 0.
std::uint32_t f2i_bits(std::uint32_t float_bits);

}  // namespace gpufi::fparith
