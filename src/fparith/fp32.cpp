#include "fparith/fp32.hpp"

#include <bit>
#include <cassert>

namespace gpufi::fparith {

namespace {

constexpr std::uint32_t kSignMask = 0x80000000u;
constexpr std::uint32_t kQNaN = 0x7fc00000u;

std::uint32_t pack_raw(bool sign, std::uint32_t exp_field,
                       std::uint32_t frac) {
  return (sign ? kSignMask : 0u) | (exp_field << 23) | (frac & 0x7fffffu);
}

}  // namespace

Unpacked fp32_unpack(std::uint32_t bits) {
  Unpacked u;
  u.sign = (bits & kSignMask) != 0;
  u.payload = bits;
  const std::uint32_t e = (bits >> 23) & 0xffu;
  const std::uint32_t f = bits & 0x7fffffu;
  if (e == 0xffu) {
    u.cls = f == 0 ? FpClass::Inf : FpClass::NaN;
    return u;
  }
  if (e == 0) {
    if (f == 0) {
      u.cls = FpClass::Zero;
      return u;
    }
    u.cls = FpClass::Norm;  // subnormal: no hidden bit
    u.man = f;
    u.exp = -126;
    return u;
  }
  u.cls = FpClass::Norm;
  u.man = f | 0x800000u;
  u.exp = static_cast<std::int32_t>(e) - 127;
  return u;
}

std::uint32_t fp32_round_pack(bool sign, std::int64_t scale_exp,
                              std::uint64_t man, bool sticky) {
  if (man == 0) {
    // Anything left only in sticky is below every representable increment we
    // could produce here; round-to-nearest gives (signed) zero.
    return sign ? kSignMask : 0u;
  }
  // Normalize so that man has its MSB at bit 26 (24 mantissa bits + guard,
  // round, extra), i.e. value = man * 2^(scale_exp') with man in [2^26,2^27).
  int msb = 63 - std::countl_zero(man);
  if (msb > 26) {
    const int sh = msb - 26;
    sticky = sticky || (man & ((std::uint64_t{1} << sh) - 1)) != 0;
    man >>= sh;
    scale_exp += sh;
  } else if (msb < 26) {
    const int sh = 26 - msb;
    man <<= sh;
    scale_exp -= sh;
  }
  // Now value = man * 2^scale_exp, man in [2^26, 2^27). The represented
  // number will be (man >> 3) * 2^(scale_exp + 3); a normal result needs
  // (scale_exp + 3) == e - 23 with man>>3 in [2^23, 2^24), i.e.
  // e = scale_exp + 26. Subnormal results need e == -126 with a smaller
  // mantissa: shift right until scale_exp + 26 == -126.
  std::int64_t e = scale_exp + 26;
  if (e < -126) {
    const std::int64_t sh = -126 - e;
    if (sh >= 63) {
      sticky = sticky || man != 0;
      man = 0;
    } else {
      sticky = sticky || (man & ((std::uint64_t{1} << sh) - 1)) != 0;
      man >>= sh;
    }
    e = -126;
  }
  // Round to nearest even on the low 3 bits + sticky.
  const std::uint64_t lsb = (man >> 3) & 1;
  const std::uint64_t round_bits = man & 7;
  man >>= 3;
  const bool round_up =
      round_bits > 4 || (round_bits == 4 && (sticky || lsb != 0));
  if (round_up) {
    ++man;
    if (man == (std::uint64_t{1} << 24)) {  // mantissa overflow
      man >>= 1;
      ++e;
    }
  }
  if (man == 0) return sign ? kSignMask : 0u;
  if (man < (std::uint64_t{1} << 23)) {
    // Subnormal (e must be -126 here).
    return pack_raw(sign, 0, static_cast<std::uint32_t>(man));
  }
  if (e > 127) {  // overflow -> infinity (round-to-nearest)
    return pack_raw(sign, 0xff, 0);
  }
  return pack_raw(sign, static_cast<std::uint32_t>(e + 127),
                  static_cast<std::uint32_t>(man));
}

FmaS1 fma_stage1(std::uint32_t a, std::uint32_t b, std::uint32_t c,
                 FpOp op) {
  FmaS1 s;
  s.op = op;
  switch (op) {
    case FpOp::Add:
      // a + b == a*1 + b
      s.a = fp32_unpack(a);
      s.b = fp32_unpack(0x3f800000u);  // 1.0f
      s.c = fp32_unpack(b);
      break;
    case FpOp::Mul:
      s.a = fp32_unpack(a);
      s.b = fp32_unpack(b);
      s.c = fp32_unpack(0x00000000u);  // +0
      break;
    case FpOp::Fma:
      s.a = fp32_unpack(a);
      s.b = fp32_unpack(b);
      s.c = fp32_unpack(c);
      break;
  }
  return s;
}

FmaS2 fma_stage2(const FmaS1& s) {
  FmaS2 o;
  o.op = s.op;
  o.c = s.c;
  o.sign_p = s.a.sign != s.b.sign;

  // NaN propagation and invalid operations.
  if (s.a.cls == FpClass::NaN || s.b.cls == FpClass::NaN ||
      s.c.cls == FpClass::NaN) {
    o.special = true;
    o.special_bits = kQNaN;
    return o;
  }
  const bool p_inf = s.a.cls == FpClass::Inf || s.b.cls == FpClass::Inf;
  const bool p_zero = s.a.cls == FpClass::Zero || s.b.cls == FpClass::Zero;
  if (p_inf && p_zero) {  // inf * 0
    o.special = true;
    o.special_bits = kQNaN;
    return o;
  }
  if (p_inf) {
    if (s.c.cls == FpClass::Inf && s.c.sign != o.sign_p) {
      o.special = true;  // inf - inf
      o.special_bits = kQNaN;
      return o;
    }
    o.special = true;
    o.special_bits = pack_raw(o.sign_p, 0xff, 0);
    return o;
  }
  if (s.c.cls == FpClass::Inf) {
    o.special = true;
    o.special_bits = pack_raw(s.c.sign, 0xff, 0);
    return o;
  }
  if (p_zero) {
    o.cls_p = FpClass::Zero;
    o.prod = 0;
    o.exp_p = 0;
    return o;
  }
  o.cls_p = FpClass::Norm;
  o.prod = static_cast<std::uint64_t>(s.a.man) * s.b.man;  // < 2^48
  o.exp_p = s.a.exp + s.b.exp;  // value = prod * 2^(exp_p - 46)
  return o;
}

FmaS3 fma_stage3(const FmaS2& s) {
  FmaS3 o;
  o.op = s.op;
  o.special = s.special;
  o.special_bits = s.special_bits;
  o.sign_p = s.sign_p;
  o.sign_c = s.c.sign;
  if (s.special) return o;

  const bool p_zero = s.cls_p == FpClass::Zero || s.prod == 0;
  const bool c_zero = s.c.cls == FpClass::Zero || s.c.man == 0;

  if (p_zero && c_zero) {
    o.zero_case = true;
    return o;
  }
  if (p_zero) {
    // Result is exactly the addend.
    o.sum = static_cast<unsigned __int128>(s.c.man) << 47;
    o.exp_r = s.c.exp;  // value = man_c * 2^(exp_c-23) = sum * 2^(exp_c-70)
    o.sign_r = s.c.sign;
    return o;
  }
  // Product as a 72-bit quantity with 24 guard bits below:
  // value = P * 2^(exp_p - 70).
  unsigned __int128 p = static_cast<unsigned __int128>(s.prod) << 24;
  std::int64_t ep = s.exp_p;
  if (c_zero) {
    o.sum = p;
    o.exp_r = static_cast<std::int32_t>(ep);
    o.sign_r = s.sign_p;
    return o;
  }
  // Addend at the same guard position: value = C * 2^(exp_c - 70).
  unsigned __int128 cq = static_cast<unsigned __int128>(s.c.man) << 47;
  std::int64_t ec = s.c.exp;

  bool sticky = false;
  auto shift_right = [&sticky](unsigned __int128 v, std::int64_t n) {
    if (n <= 0) return v;
    if (n >= 127) {
      sticky = sticky || v != 0;
      return static_cast<unsigned __int128>(0);
    }
    sticky = sticky ||
             (v & ((static_cast<unsigned __int128>(1) << n) - 1)) != 0;
    return v >> n;
  };

  std::int64_t e = ep > ec ? ep : ec;
  const bool shifted_is_p = ep < ec;  // only the smaller exponent is shifted
  p = shift_right(p, e - ep);
  cq = shift_right(cq, e - ec);

  if (s.sign_p == s.c.sign) {
    // True sum = images + delta where delta is the (positive) truncated
    // remainder: the sticky flag carries it into rounding unchanged.
    o.sum = p + cq;
    o.sign_r = s.sign_p;
  } else if (p != cq) {
    const bool p_bigger = p > cq;
    o.sum = p_bigger ? p - cq : cq - p;
    o.sign_r = p_bigger ? s.sign_p : s.c.sign;
    // If the truncated operand is the subtrahend (the smaller image), the
    // true difference is smaller than the image difference: borrow one unit
    // from the sticky region (sticky then represents the 1-delta remainder).
    if (sticky && shifted_is_p != p_bigger) o.sum -= 1;
  } else {
    // Images are equal. With no truncation this is exact cancellation; with
    // truncation the true result is the tiny remainder of the shifted
    // operand (which is therefore the larger true magnitude). That remainder
    // is far below every representable increment at this scale, so it only
    // matters through the sticky flag.
    if (sticky) {
      o.sum = 0;
      o.sign_r = shifted_is_p ? s.sign_p : s.c.sign;
    } else {
      o.cancel = true;
      return o;
    }
  }
  o.exp_r = static_cast<std::int32_t>(e);
  o.sticky = sticky;
  return o;
}

std::uint32_t fma_stage4(const FmaS3& s) {
  if (s.special) return s.special_bits;
  if (s.cancel) return 0u;  // exact x + (-x) -> +0 under round-to-nearest
  if (s.zero_case) {
    // Both product and addend are zero: IEEE sign rules. For FMUL the +0
    // addend is an artifact of the unified datapath, so the product sign
    // stands alone.
    bool sign;
    if (s.op == FpOp::Mul)
      sign = s.sign_p;
    else if (s.sign_p == s.sign_c)
      sign = s.sign_p;  // same-signed zeros keep the sign
    else
      sign = false;  // opposite zeros -> +0 (round-to-nearest)
    return sign ? kSignMask : 0u;
  }
  // value = sum * 2^(exp_r - 70). Reduce the 128-bit sum to 64 bits first.
  unsigned __int128 sum = s.sum;
  bool sticky = s.sticky;
  std::int64_t scale = static_cast<std::int64_t>(s.exp_r) - 70;
  while (sum >> 64) {
    sticky = sticky || (sum & 1) != 0;
    sum >>= 1;
    ++scale;
  }
  return fp32_round_pack(s.sign_r, scale, static_cast<std::uint64_t>(sum),
                         sticky);
}

std::uint32_t fma_bits(std::uint32_t a, std::uint32_t b, std::uint32_t c,
                       FpOp op) {
  return fma_stage4(fma_stage3(fma_stage2(fma_stage1(a, b, c, op))));
}

float ffma(float a, float b, float c) {
  return std::bit_cast<float>(fma_bits(std::bit_cast<std::uint32_t>(a),
                                       std::bit_cast<std::uint32_t>(b),
                                       std::bit_cast<std::uint32_t>(c),
                                       FpOp::Fma));
}

float fadd(float a, float b) {
  return std::bit_cast<float>(fma_bits(std::bit_cast<std::uint32_t>(a),
                                       std::bit_cast<std::uint32_t>(b), 0,
                                       FpOp::Add));
}

float fmul(float a, float b) {
  return std::bit_cast<float>(fma_bits(std::bit_cast<std::uint32_t>(a),
                                       std::bit_cast<std::uint32_t>(b), 0,
                                       FpOp::Mul));
}

IntS1 imad_stage1(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  return IntS1{static_cast<std::uint64_t>(a) * b, c};
}

std::uint32_t imad_stage2(const IntS1& s) {
  return static_cast<std::uint32_t>(s.prod) + s.c;
}

std::uint32_t imad_bits(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  return imad_stage2(imad_stage1(a, b, c));
}

std::uint32_t i2f_bits(std::uint32_t int_bits) {
  const auto v = static_cast<std::int32_t>(int_bits);
  if (v == 0) return 0;
  const bool sign = v < 0;
  const auto mag = static_cast<std::uint64_t>(
      sign ? -static_cast<std::int64_t>(v) : static_cast<std::int64_t>(v));
  return fp32_round_pack(sign, 0, mag, false);
}

std::uint32_t f2i_bits(std::uint32_t float_bits) {
  const Unpacked u = fp32_unpack(float_bits);
  switch (u.cls) {
    case FpClass::Zero:
      return 0;
    case FpClass::NaN:
      return 0;
    case FpClass::Inf:
      return u.sign ? 0x80000000u : 0x7fffffffu;
    case FpClass::Norm:
      break;
  }
  // value = man * 2^(exp - 23), truncate toward zero.
  std::int64_t mag;
  const int shift = u.exp - 23;
  if (shift >= 0) {
    if (shift > 38) mag = INT64_MAX;  // certainly saturates
    else mag = static_cast<std::int64_t>(u.man) << shift;
  } else {
    // man < 2^24, so any right shift of 24+ clears it (shifting a 32-bit
    // value by >= 32 would be undefined).
    mag = shift <= -24 ? 0 : static_cast<std::int64_t>(u.man >> -shift);
  }
  if (u.sign) {
    if (mag > 0x80000000ll) return 0x80000000u;
    return static_cast<std::uint32_t>(-mag);
  }
  if (mag > 0x7fffffffll) return 0x7fffffffu;
  return static_cast<std::uint32_t>(mag);
}

}  // namespace gpufi::fparith
