#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "emu/device.hpp"
#include "isa/isa.hpp"

namespace gpufi::emu {

/// Dynamic-instruction profiler (the NVBitFI "profile pass").
///
/// Counts retired thread-instructions per opcode; `class_fraction` yields
/// the shares plotted in Fig. 3 of the paper (FP32 / INT32 / SFU / control /
/// others), and `total` is the denominator the software injector uses to
/// pick a uniformly random dynamic instruction.
class Profiler : public InstrumentHook {
 public:
  void on_count(const RetireInfo& info) override {
    ++counts_[static_cast<std::size_t>(info.instr->op)];
    const auto pc = static_cast<std::size_t>(info.pc);
    if (pc_counts_.size() <= pc) pc_counts_.resize(pc + 1);
    ++pc_counts_[pc];
  }

  /// Retired count for one opcode.
  std::uint64_t count(isa::Opcode op) const {
    return counts_[static_cast<std::size_t>(op)];
  }

  /// Total retired thread-instructions.
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto c : counts_) t += c;
    return t;
  }

  /// Total retired instructions among the 12 RTL-characterized opcodes.
  std::uint64_t characterized_total() const {
    std::uint64_t t = 0;
    for (std::size_t i = 0; i < isa::kNumOpcodes; ++i)
      if (isa::is_characterized(static_cast<isa::Opcode>(i))) t += counts_[i];
    return t;
  }

  /// Total retired instructions eligible for software injection — counted
  /// through isa::is_injection_candidate, the same predicate the swfi
  /// profile pass uses, so the two layers cannot drift on the candidate
  /// denominator.
  std::uint64_t candidate_total() const {
    std::uint64_t t = 0;
    for (std::size_t i = 0; i < isa::kNumOpcodes; ++i)
      if (isa::is_injection_candidate(static_cast<isa::Opcode>(i)))
        t += counts_[i];
    return t;
  }

  /// Fraction of retired instructions in a coarse class (Fig. 3 series).
  /// Memory-class counts fold LDS/STS into the GLD/GST bucket as the paper
  /// profile does; "Other" collects everything not characterized.
  double class_fraction(isa::OpClass cls) const;

  /// Fraction of dynamic instructions that are RTL-characterized (the paper
  /// reports > 70% for its benchmarks).
  double characterized_fraction() const {
    const auto t = total();
    return t == 0 ? 0.0
                  : static_cast<double>(characterized_total()) /
                        static_cast<double>(t);
  }

  /// Retired thread-instructions at one static instruction (residency
  /// numerator for software-injection attribution). 0 past the program end.
  std::uint64_t count_at_pc(std::size_t pc) const {
    return pc < pc_counts_.size() ? pc_counts_[pc] : 0;
  }

  /// Per-static-instruction execution counts (indexed by pc).
  const std::vector<std::uint64_t>& pc_counts() const { return pc_counts_; }

  void reset() {
    counts_.fill(0);
    pc_counts_.clear();
  }

 private:
  std::array<std::uint64_t, isa::kNumOpcodes> counts_{};
  std::vector<std::uint64_t> pc_counts_;
};

}  // namespace gpufi::emu
