#include "emu/device.hpp"

#include <algorithm>
#include <bit>
#include <new>
#include <stdexcept>

#include "isa/semantics.hpp"

namespace gpufi::emu {

using isa::Instr;
using isa::Opcode;
using isa::Operand;
using isa::OperandKind;

Device::Device(std::size_t global_words) : global_(global_words, 0) {}

std::uint32_t Device::alloc(std::size_t words) {
  if (alloc_watermark_ + words > global_.size()) throw std::bad_alloc();
  const auto base = static_cast<std::uint32_t>(alloc_watermark_);
  alloc_watermark_ += words;
  return base;
}

void Device::reset() {
  std::fill(global_.begin(),
            global_.begin() + static_cast<std::ptrdiff_t>(touched_high_), 0u);
  touched_high_ = 0;
  alloc_watermark_ = 0;
}

std::uint32_t Device::read_word(std::uint32_t addr) const {
  return global_.at(addr);
}
void Device::write_word(std::uint32_t addr, std::uint32_t value) {
  global_.at(addr) = value;
  touch(static_cast<std::size_t>(addr) + 1);
}
float Device::read_float(std::uint32_t addr) const {
  return std::bit_cast<float>(global_.at(addr));
}
void Device::write_float(std::uint32_t addr, float value) {
  write_word(addr, std::bit_cast<std::uint32_t>(value));
}

void Device::copy_in(std::uint32_t addr, const std::uint32_t* src,
                     std::size_t words) {
  if (!in_bounds(addr, words)) throw std::out_of_range("copy_in");
  std::copy(src, src + words, global_.begin() + addr);
  touch(addr + words);
}
void Device::copy_out(std::uint32_t addr, std::uint32_t* dst,
                      std::size_t words) const {
  if (!in_bounds(addr, words)) throw std::out_of_range("copy_out");
  std::copy(global_.begin() + addr, global_.begin() + addr + words, dst);
}
void Device::copy_in_f(std::uint32_t addr, const float* src,
                       std::size_t words) {
  if (!in_bounds(addr, words)) throw std::out_of_range("copy_in_f");
  for (std::size_t i = 0; i < words; ++i)
    global_[addr + i] = std::bit_cast<std::uint32_t>(src[i]);
  touch(addr + words);
}
void Device::copy_out_f(std::uint32_t addr, float* dst,
                        std::size_t words) const {
  if (!in_bounds(addr, words)) throw std::out_of_range("copy_out_f");
  for (std::size_t i = 0; i < words; ++i)
    dst[i] = std::bit_cast<float>(global_[addr + i]);
}
void Device::fill(std::uint32_t addr, std::size_t words,
                  std::uint32_t value) {
  if (!in_bounds(addr, words)) throw std::out_of_range("fill");
  std::fill(global_.begin() + addr, global_.begin() + addr + words, value);
  touch(addr + words);
}

namespace {

constexpr unsigned kWarpSize = isa::kWarpSize;
constexpr std::size_t kMaxStackDepth = 64;

/// One SIMT reconvergence-stack entry: execute at `pc` with `mask`, merge
/// when `pc` reaches `rpc`.
struct StackEntry {
  std::int32_t pc = 0;
  std::int32_t rpc = -1;
  std::uint32_t mask = 0;
};

struct Warp {
  std::vector<StackEntry> stack;
  bool at_barrier = false;
  bool done = false;

  std::uint32_t active_mask() const {
    return stack.empty() ? 0 : stack.back().mask;
  }
};

/// Interpreter state for one CTA.
struct CtaContext {
  unsigned cta_index = 0;
  unsigned cta_x = 0, cta_y = 0;
  LaunchDims dims;
  std::vector<std::uint32_t> regs;   // [thread][kNumRegs]
  std::vector<std::uint8_t> preds;   // [thread][kNumPreds]
  std::vector<std::uint32_t> shared;
  std::vector<Warp> warps;

  std::uint32_t& reg(unsigned tid, unsigned r) {
    return regs[tid * isa::kNumRegs + r];
  }
  std::uint8_t& pred(unsigned tid, unsigned p) {
    return preds[tid * isa::kNumPreds + p];
  }
};

class Trap : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace

LaunchResult Device::launch(const isa::Program& prog, const LaunchDims& dims,
                            const LaunchConfig& cfg) {
  return interp_ == Interpreter::Scalar ? launch_scalar(prog, dims, cfg)
                                        : launch_soa(prog, dims, cfg);
}

LaunchResult Device::launch_scalar(const isa::Program& prog,
                                   const LaunchDims& dims,
                                   const LaunchConfig& cfg) {
  LaunchResult result;
  const unsigned tpc = dims.threads_per_cta();
  if (tpc == 0 || dims.ctas() == 0) return result;
  const auto code_size = static_cast<std::int32_t>(prog.code.size());
  std::uint64_t retired = 0;

  try {
    for (unsigned cta = 0; cta < dims.ctas(); ++cta) {
      CtaContext ctx;
      ctx.cta_index = cta;
      ctx.cta_x = cta % dims.grid_x;
      ctx.cta_y = cta / dims.grid_x;
      ctx.dims = dims;
      ctx.regs.assign(static_cast<std::size_t>(tpc) * isa::kNumRegs, 0);
      ctx.preds.assign(static_cast<std::size_t>(tpc) * isa::kNumPreds, 0);
      ctx.shared.assign(prog.shared_words, 0);
      const unsigned warps = (tpc + kWarpSize - 1) / kWarpSize;
      ctx.warps.resize(warps);
      for (unsigned w = 0; w < warps; ++w) {
        const unsigned lo = w * kWarpSize;
        const unsigned hi = std::min(tpc, lo + kWarpSize);
        std::uint32_t mask = 0;
        for (unsigned t = lo; t < hi; ++t) mask |= 1u << (t - lo);
        ctx.warps[w].stack.push_back(StackEntry{0, -1, mask});
      }

      auto resolve = [&](const Operand& op, unsigned tid) -> std::uint32_t {
        switch (op.kind) {
          case OperandKind::Reg:
            return ctx.reg(tid, op.value & (isa::kNumRegs - 1));
          case OperandKind::Imm:
            return op.value;
          case OperandKind::Special:
            switch (static_cast<isa::SReg>(op.value)) {
              case isa::SReg::TID_X: return tid % dims.block_x;
              case isa::SReg::TID_Y: return tid / dims.block_x;
              case isa::SReg::NTID_X: return dims.block_x;
              case isa::SReg::NTID_Y: return dims.block_y;
              case isa::SReg::CTAID_X: return ctx.cta_x;
              case isa::SReg::CTAID_Y: return ctx.cta_y;
              case isa::SReg::NCTAID_X: return dims.grid_x;
              case isa::SReg::NCTAID_Y: return dims.grid_y;
              case isa::SReg::LANEID: return tid % kWarpSize;
              default: {
                const auto p = static_cast<unsigned>(op.value) -
                               static_cast<unsigned>(isa::SReg::PARAM0);
                return prog.params[p % isa::kNumParams];
              }
            }
            return 0;
          case OperandKind::None:
            return 0;
        }
        return 0;
      };

      // Round-robin, one instruction per warp per turn: deterministic and
      // fair, and barriers release exactly when every live warp arrives.
      bool all_done = false;
      while (!all_done) {
        bool progressed = false;
        all_done = true;
        for (unsigned w = 0; w < warps; ++w) {
          Warp& warp = ctx.warps[w];
          if (warp.done) continue;
          all_done = false;
          if (warp.at_barrier) continue;
          progressed = true;

          StackEntry& top = warp.stack.back();
          const std::int32_t pc = top.pc;
          if (pc < 0 || pc >= code_size) throw Trap("invalid PC");
          const Instr& instr = prog.code[pc];
          // A spent one-shot hook drops the rest of the launch to the
          // unhooked fast path (results are identical either way).
          InstrumentHook* const hook =
              cfg.hook && !cfg.hook->done() ? cfg.hook : nullptr;

          // Per-thread guard evaluation.
          std::uint32_t exec = 0;
          for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (!(top.mask & (1u << lane))) continue;
            const unsigned tid = w * kWarpSize + lane;
            bool on = true;
            if (instr.pred >= 0) {
              on = ctx.pred(tid, static_cast<unsigned>(instr.pred) &
                                     (isa::kNumPreds - 1)) != 0;
              if (instr.pred_neg) on = !on;
            }
            if (on) exec |= 1u << lane;
          }

          // Retirement accounting + profiling hook (all participating
          // threads, guarded-off threads do not retire).
          auto count_retired = [&](std::uint32_t mask) {
            if (!hook) {
              retired += static_cast<unsigned>(std::popcount(mask));
              return;
            }
            for (std::uint32_t m = mask; m; m &= m - 1) {
              const unsigned lane =
                  static_cast<unsigned>(std::countr_zero(m));
              ++retired;
              RetireInfo info;
              info.instr = &instr;
              info.pc = pc;
              info.thread = ThreadId{cta, w, lane, w * kWarpSize + lane};
              info.dyn_index = retired - 1;
              hook->on_count(info);
            }
          };

          switch (instr.op) {
            case Opcode::BRA: {
              count_retired(exec);
              const std::uint32_t not_taken = top.mask & ~exec;
              if (not_taken == 0) {
                if (instr.target < 0) throw Trap("BRA without target");
                top.pc = instr.target;
              } else if (exec == 0) {
                top.pc = pc + 1;
              } else {
                if (instr.reconv < 0)
                  throw Trap("divergent BRA without reconvergence point");
                if (warp.stack.size() + 2 > kMaxStackDepth)
                  throw Trap("SIMT stack overflow");
                top.pc = instr.reconv;  // merged continuation
                warp.stack.push_back(
                    StackEntry{pc + 1, instr.reconv, not_taken});
                warp.stack.push_back(
                    StackEntry{instr.target, instr.reconv, exec});
              }
              break;
            }
            case Opcode::EXIT: {
              count_retired(exec);
              for (auto& entry : warp.stack) entry.mask &= ~exec;
              // Remaining guarded-off threads continue past the EXIT.
              top.pc = pc + 1;
              break;
            }
            case Opcode::BAR: {
              count_retired(exec);
              warp.at_barrier = true;
              top.pc = pc + 1;
              break;
            }
            case Opcode::NOP: {
              count_retired(exec);
              top.pc = pc + 1;
              break;
            }
            case Opcode::ISETP:
            case Opcode::FSETP: {
              for (unsigned lane = 0; lane < kWarpSize; ++lane) {
                if (!(exec & (1u << lane))) continue;
                const unsigned tid = w * kWarpSize + lane;
                const std::uint32_t a = resolve(instr.a, tid);
                const std::uint32_t b = resolve(instr.b, tid);
                bool v = instr.op == Opcode::ISETP
                             ? isa::cmp_eval_i(instr.cmp, a, b)
                             : isa::cmp_eval_f(instr.cmp, a, b);
                ++retired;
                if (hook) {
                  RetireInfo info;
                  info.instr = &instr;
                  info.pc = pc;
                  info.thread = ThreadId{cta, w, lane, tid};
                  info.dyn_index = retired - 1;
                  info.a = a;
                  info.b = b;
                  hook->on_count(info);
                  hook->on_pred_retire(info, v);
                }
                ctx.pred(tid, instr.dst & (isa::kNumPreds - 1)) = v ? 1 : 0;
              }
              top.pc = pc + 1;
              break;
            }
            case Opcode::GLD:
            case Opcode::GST:
            case Opcode::LDS:
            case Opcode::STS: {
              const bool is_load =
                  instr.op == Opcode::GLD || instr.op == Opcode::LDS;
              const bool is_global =
                  instr.op == Opcode::GLD || instr.op == Opcode::GST;
              for (unsigned lane = 0; lane < kWarpSize; ++lane) {
                if (!(exec & (1u << lane))) continue;
                const unsigned tid = w * kWarpSize + lane;
                const std::uint32_t base = resolve(instr.a, tid);
                std::uint32_t addr =
                    base + static_cast<std::uint32_t>(instr.imm);
                const std::size_t limit =
                    is_global ? global_.size() : ctx.shared.size();
                if (addr >= limit) {
                  if (!cfg.oob_wraps || limit == 0)
                    throw Trap("out-of-bounds memory access");
                  addr = static_cast<std::uint32_t>(addr % limit);
                }
                std::uint32_t value;
                if (is_load) {
                  value = is_global ? global_[addr] : ctx.shared[addr];
                } else {
                  value = resolve(instr.b, tid);
                }
                ++retired;
                if (hook) {
                  RetireInfo info;
                  info.instr = &instr;
                  info.pc = pc;
                  info.thread = ThreadId{cta, w, lane, tid};
                  info.dyn_index = retired - 1;
                  info.a = base;
                  info.b = value;
                  hook->on_count(info);
                  if (is_load) hook->on_retire(info, value);
                }
                if (is_load) {
                  ctx.reg(tid, instr.dst & (isa::kNumRegs - 1)) = value;
                } else if (is_global) {
                  global_[addr] = value;
                  touch(static_cast<std::size_t>(addr) + 1);
                } else {
                  ctx.shared[addr] = value;
                }
              }
              top.pc = pc + 1;
              break;
            }
            default: {  // data-processing instructions
              for (unsigned lane = 0; lane < kWarpSize; ++lane) {
                if (!(exec & (1u << lane))) continue;
                const unsigned tid = w * kWarpSize + lane;
                const std::uint32_t a = resolve(instr.a, tid);
                const std::uint32_t b = resolve(instr.b, tid);
                std::uint32_t c = 0;
                bool c_pred = false;
                if (instr.op == Opcode::SEL) {
                  c_pred = ctx.pred(tid, instr.c.value &
                                             (isa::kNumPreds - 1)) != 0;
                } else {
                  c = resolve(instr.c, tid);
                }
                std::uint32_t value =
                    isa::alu_result(instr.op, a, b, c, c_pred);
                ++retired;
                if (hook) {
                  RetireInfo info;
                  info.instr = &instr;
                  info.pc = pc;
                  info.thread = ThreadId{cta, w, lane, tid};
                  info.dyn_index = retired - 1;
                  info.a = a;
                  info.b = b;
                  info.c = c;
                  hook->on_count(info);
                  hook->on_retire(info, value);
                }
                ctx.reg(tid, instr.dst & (isa::kNumRegs - 1)) = value;
              }
              top.pc = pc + 1;
              break;
            }
          }

          // Merge completed divergence regions and retire empty entries.
          while (!warp.stack.empty()) {
            StackEntry& t = warp.stack.back();
            if (t.mask == 0 || (t.rpc >= 0 && t.pc == t.rpc)) {
              // An emptied base entry means every thread exited.
              if (warp.stack.size() == 1 && t.mask != 0) break;
              warp.stack.pop_back();
            } else {
              break;
            }
          }
          if (warp.stack.empty() || warp.stack.back().mask == 0) {
            warp.done = true;
          }

          if (retired > cfg.max_retired) {
            result.status = LaunchStatus::Timeout;
            result.retired = retired;
            return result;
          }
        }

        // Barrier release: every live warp has arrived.
        if (!all_done && !progressed) {
          bool any_waiting = false;
          for (auto& warp : ctx.warps)
            any_waiting |= !warp.done && warp.at_barrier;
          if (!any_waiting) throw Trap("scheduler deadlock");
          for (auto& warp : ctx.warps) warp.at_barrier = false;
        } else if (!all_done) {
          // If all non-done warps are at the barrier, release them.
          bool all_at_bar = true;
          for (auto& warp : ctx.warps)
            if (!warp.done && !warp.at_barrier) all_at_bar = false;
          if (all_at_bar)
            for (auto& warp : ctx.warps) warp.at_barrier = false;
        }
      }
    }
  } catch (const Trap& t) {
    result.status = LaunchStatus::Trap;
    result.trap_reason = t.what();
  }
  result.retired = retired;
  return result;
}

// ---------------------------------------------------------------------------
// SoA warp execution.
//
// CTA state is structure-of-arrays: register r of warp w lives in one
// contiguous 32-lane slab (regs[(w*kNumRegs + r)*32 + lane]), predicates
// likewise. An instruction is decoded once per warp; operands are gathered
// once (register operands alias their slab, immediates broadcast, special
// registers compute per lane); all lanes then execute through the
// isa::*_lanes kernels in tight branch-free loops. The retire-callback loop
// runs in lane order with the same RetireInfo values as the scalar path, so
// hooks — including the injection hook targeting the N-th dynamic candidate
// — observe a bit-identical stream (tests/emu_equiv_test.cpp pins this).
// Lanes of one warp-instruction are independent (each lane reads and writes
// only its own slab index), so gather -> batch compute -> ordered retire is
// exactly the scalar interleaving. Memory instructions stay lane-sequential
// to preserve trap ordering and later-lane-wins store semantics.
// ---------------------------------------------------------------------------

LaunchResult Device::launch_soa(const isa::Program& prog,
                                const LaunchDims& dims,
                                const LaunchConfig& cfg) {
  LaunchResult result;
  const unsigned tpc = dims.threads_per_cta();
  if (tpc == 0 || dims.ctas() == 0) return result;
  const auto code_size = static_cast<std::int32_t>(prog.code.size());
  const unsigned warps = (tpc + kWarpSize - 1) / kWarpSize;
  std::uint64_t retired = 0;

  // Lane slabs, allocated once and re-zeroed per CTA. Slabs are 32-wide even
  // for a partial tail warp; lanes past tpc never enter an active mask, and
  // their garbage results are discarded by the execution mask.
  std::vector<std::uint32_t> regs(
      static_cast<std::size_t>(warps) * isa::kNumRegs * kWarpSize);
  std::vector<std::uint8_t> preds(
      static_cast<std::size_t>(warps) * isa::kNumPreds * kWarpSize);
  std::vector<std::uint32_t> shared;
  std::vector<Warp> warp_state(warps);

  const auto reg_slab = [&](unsigned w, unsigned r) {
    return regs.data() +
           (static_cast<std::size_t>(w) * isa::kNumRegs + r) * kWarpSize;
  };
  const auto pred_slab = [&](unsigned w, unsigned p) {
    return preds.data() +
           (static_cast<std::size_t>(w) * isa::kNumPreds + p) * kWarpSize;
  };

  // Per-warp operand staging.
  alignas(64) std::uint32_t imm_a[kWarpSize];
  alignas(64) std::uint32_t imm_b[kWarpSize];
  alignas(64) std::uint32_t imm_c[kWarpSize];
  alignas(64) std::uint32_t vals[kWarpSize];
  alignas(64) std::uint8_t pvals[kWarpSize];
  static constexpr std::uint32_t kZeros[kWarpSize] = {};

  try {
    for (unsigned cta = 0; cta < dims.ctas(); ++cta) {
      const unsigned cta_x = cta % dims.grid_x;
      const unsigned cta_y = cta / dims.grid_x;
      std::fill(regs.begin(), regs.end(), 0u);
      std::fill(preds.begin(), preds.end(), std::uint8_t{0});
      shared.assign(prog.shared_words, 0);
      for (unsigned w = 0; w < warps; ++w) {
        const unsigned lo = w * kWarpSize;
        const unsigned hi = std::min(tpc, lo + kWarpSize);
        std::uint32_t mask = 0;
        for (unsigned t = lo; t < hi; ++t) mask |= 1u << (t - lo);
        warp_state[w] = Warp{};
        warp_state[w].stack.push_back(StackEntry{0, -1, mask});
      }

      // Gathers one source operand for the lanes of warp `w` named by
      // `lanes` (pure reads, so hoisting the whole gather ahead of the lane
      // loop is equivalent to the scalar path's per-lane resolve). Dense
      // masks fill the whole 32-slot scratch in straight-line loops; sparse
      // masks (a mostly-exited warp, e.g. one lane spinning on a corrupted
      // loop counter) fill only the live slots by bit-iterating the mask,
      // so per-retired-instruction cost tracks live lanes, not warp width.
      const auto gather = [&](const Operand& op, unsigned w,
                              std::uint32_t lanes,
                              std::uint32_t* scratch) -> const std::uint32_t* {
        const bool dense = std::popcount(lanes) * 2 >= int{kWarpSize};
        const auto broadcast = [&](std::uint32_t v) {
          if (dense) {
            for (unsigned l = 0; l < kWarpSize; ++l) scratch[l] = v;
          } else {
            for (std::uint32_t m = lanes; m; m &= m - 1)
              scratch[std::countr_zero(m)] = v;
          }
          return scratch;
        };
        const auto per_lane = [&](auto&& value_of) {
          if (dense) {
            for (unsigned l = 0; l < kWarpSize; ++l) scratch[l] = value_of(l);
          } else {
            for (std::uint32_t m = lanes; m; m &= m - 1) {
              const unsigned l = static_cast<unsigned>(std::countr_zero(m));
              scratch[l] = value_of(l);
            }
          }
          return scratch;
        };
        switch (op.kind) {
          case OperandKind::Reg:
            return reg_slab(w, op.value & (isa::kNumRegs - 1));
          case OperandKind::Imm:
            return broadcast(op.value);
          case OperandKind::Special: {
            const unsigned base_tid = w * kWarpSize;
            switch (static_cast<isa::SReg>(op.value)) {
              case isa::SReg::TID_X:
                return per_lane(
                    [&](unsigned l) { return (base_tid + l) % dims.block_x; });
              case isa::SReg::TID_Y:
                return per_lane(
                    [&](unsigned l) { return (base_tid + l) / dims.block_x; });
              case isa::SReg::NTID_X: return broadcast(dims.block_x);
              case isa::SReg::NTID_Y: return broadcast(dims.block_y);
              case isa::SReg::CTAID_X: return broadcast(cta_x);
              case isa::SReg::CTAID_Y: return broadcast(cta_y);
              case isa::SReg::NCTAID_X: return broadcast(dims.grid_x);
              case isa::SReg::NCTAID_Y: return broadcast(dims.grid_y);
              case isa::SReg::LANEID:
                return per_lane([](unsigned l) { return l; });
              default: {
                const auto p = static_cast<unsigned>(op.value) -
                               static_cast<unsigned>(isa::SReg::PARAM0);
                return broadcast(prog.params[p % isa::kNumParams]);
              }
            }
          }
          case OperandKind::None:
            return kZeros;
        }
        return kZeros;
      };

      bool all_done = false;
      while (!all_done) {
        bool progressed = false;
        all_done = true;
        for (unsigned w = 0; w < warps; ++w) {
          Warp& warp = warp_state[w];
          if (warp.done) continue;
          all_done = false;
          if (warp.at_barrier) continue;
          progressed = true;

          StackEntry& top = warp.stack.back();
          const std::int32_t pc = top.pc;
          if (pc < 0 || pc >= code_size) throw Trap("invalid PC");
          const Instr& instr = prog.code[pc];
          // A spent one-shot hook drops the rest of the launch to the
          // unhooked fast path (results are identical either way).
          InstrumentHook* const hook =
              cfg.hook && !cfg.hook->done() ? cfg.hook : nullptr;

          // Guard mask, evaluated from the predicate slab over live lanes.
          std::uint32_t exec = top.mask;
          if (instr.pred >= 0) {
            const std::uint8_t* ps =
                pred_slab(w, static_cast<unsigned>(instr.pred) &
                                 (isa::kNumPreds - 1));
            std::uint32_t on = 0;
            for (std::uint32_t m = top.mask; m; m &= m - 1) {
              const unsigned l = static_cast<unsigned>(std::countr_zero(m));
              on |= static_cast<std::uint32_t>(ps[l] != 0) << l;
            }
            if (instr.pred_neg) on = ~on;
            exec &= on;
          }

          auto count_retired = [&](std::uint32_t mask) {
            if (!hook) {
              retired += static_cast<unsigned>(std::popcount(mask));
              return;
            }
            for (std::uint32_t m = mask; m; m &= m - 1) {
              const unsigned lane =
                  static_cast<unsigned>(std::countr_zero(m));
              ++retired;
              RetireInfo info;
              info.instr = &instr;
              info.pc = pc;
              info.thread = ThreadId{cta, w, lane, w * kWarpSize + lane};
              info.dyn_index = retired - 1;
              hook->on_count(info);
            }
          };

          switch (instr.op) {
            case Opcode::BRA: {
              count_retired(exec);
              const std::uint32_t not_taken = top.mask & ~exec;
              if (not_taken == 0) {
                if (instr.target < 0) throw Trap("BRA without target");
                top.pc = instr.target;
              } else if (exec == 0) {
                top.pc = pc + 1;
              } else {
                if (instr.reconv < 0)
                  throw Trap("divergent BRA without reconvergence point");
                if (warp.stack.size() + 2 > kMaxStackDepth)
                  throw Trap("SIMT stack overflow");
                top.pc = instr.reconv;  // merged continuation
                warp.stack.push_back(
                    StackEntry{pc + 1, instr.reconv, not_taken});
                warp.stack.push_back(
                    StackEntry{instr.target, instr.reconv, exec});
              }
              break;
            }
            case Opcode::EXIT: {
              count_retired(exec);
              for (auto& entry : warp.stack) entry.mask &= ~exec;
              // Remaining guarded-off threads continue past the EXIT.
              top.pc = pc + 1;
              break;
            }
            case Opcode::BAR: {
              count_retired(exec);
              warp.at_barrier = true;
              top.pc = pc + 1;
              break;
            }
            case Opcode::NOP: {
              count_retired(exec);
              top.pc = pc + 1;
              break;
            }
            case Opcode::ISETP:
            case Opcode::FSETP: {
              const std::uint32_t* a = gather(instr.a, w, exec, imm_a);
              const std::uint32_t* b = gather(instr.b, w, exec, imm_b);
              if (std::popcount(exec) * 2 >= int{kWarpSize}) {
                if (instr.op == Opcode::ISETP)
                  isa::cmp_lanes_i(instr.cmp, a, b, pvals);
                else
                  isa::cmp_lanes_f(instr.cmp, a, b, pvals);
              } else {
                for (std::uint32_t m = exec; m; m &= m - 1) {
                  const unsigned l =
                      static_cast<unsigned>(std::countr_zero(m));
                  pvals[l] = (instr.op == Opcode::ISETP
                                  ? isa::cmp_eval_i(instr.cmp, a[l], b[l])
                                  : isa::cmp_eval_f(instr.cmp, a[l], b[l]))
                                 ? 1
                                 : 0;
                }
              }
              std::uint8_t* dst =
                  pred_slab(w, instr.dst & (isa::kNumPreds - 1));
              if (hook) {
                for (std::uint32_t m = exec; m; m &= m - 1) {
                  const unsigned lane =
                      static_cast<unsigned>(std::countr_zero(m));
                  bool v = pvals[lane] != 0;
                  ++retired;
                  RetireInfo info;
                  info.instr = &instr;
                  info.pc = pc;
                  info.thread = ThreadId{cta, w, lane, w * kWarpSize + lane};
                  info.dyn_index = retired - 1;
                  info.a = a[lane];
                  info.b = b[lane];
                  hook->on_count(info);
                  hook->on_pred_retire(info, v);
                  dst[lane] = v ? 1 : 0;
                }
              } else {
                for (std::uint32_t m = exec; m; m &= m - 1) {
                  const unsigned lane =
                      static_cast<unsigned>(std::countr_zero(m));
                  dst[lane] = pvals[lane];
                }
                retired += static_cast<unsigned>(std::popcount(exec));
              }
              top.pc = pc + 1;
              break;
            }
            case Opcode::GLD:
            case Opcode::GST:
            case Opcode::LDS:
            case Opcode::STS: {
              const bool is_load =
                  instr.op == Opcode::GLD || instr.op == Opcode::LDS;
              const bool is_global =
                  instr.op == Opcode::GLD || instr.op == Opcode::GST;
              const std::uint32_t* base = gather(instr.a, w, exec, imm_a);
              const std::uint32_t* sval =
                  is_load ? kZeros : gather(instr.b, w, exec, imm_b);
              std::uint32_t* dst = reg_slab(w, instr.dst & (isa::kNumRegs - 1));
              // Lane-sequential: trap ordering and later-lane-wins stores.
              for (std::uint32_t lm = exec; lm; lm &= lm - 1) {
                const unsigned lane =
                    static_cast<unsigned>(std::countr_zero(lm));
                std::uint32_t addr =
                    base[lane] + static_cast<std::uint32_t>(instr.imm);
                const std::size_t limit =
                    is_global ? global_.size() : shared.size();
                if (addr >= limit) {
                  if (!cfg.oob_wraps || limit == 0)
                    throw Trap("out-of-bounds memory access");
                  addr = static_cast<std::uint32_t>(addr % limit);
                }
                std::uint32_t value;
                if (is_load) {
                  value = is_global ? global_[addr] : shared[addr];
                } else {
                  value = sval[lane];
                }
                ++retired;
                if (hook) {
                  RetireInfo info;
                  info.instr = &instr;
                  info.pc = pc;
                  info.thread = ThreadId{cta, w, lane, w * kWarpSize + lane};
                  info.dyn_index = retired - 1;
                  info.a = base[lane];
                  info.b = value;
                  hook->on_count(info);
                  if (is_load) hook->on_retire(info, value);
                }
                if (is_load) {
                  dst[lane] = value;
                } else if (is_global) {
                  global_[addr] = value;
                  touch(static_cast<std::size_t>(addr) + 1);
                } else {
                  shared[addr] = value;
                }
              }
              top.pc = pc + 1;
              break;
            }
            default: {  // data-processing instructions
              const std::uint32_t* a = gather(instr.a, w, exec, imm_a);
              const std::uint32_t* b = gather(instr.b, w, exec, imm_b);
              const std::uint32_t* c = kZeros;
              const std::uint8_t* cp = nullptr;
              if (instr.op == Opcode::SEL) {
                cp = pred_slab(w, instr.c.value & (isa::kNumPreds - 1));
              } else {
                c = gather(instr.c, w, exec, imm_c);
              }
              const auto nactive =
                  static_cast<unsigned>(std::popcount(exec));
              if (nactive * 2 >= kWarpSize) {
                isa::alu_lanes(instr.op, a, b, c, cp, vals);
              } else if (nactive != 0) {
                // Sparse masks: batch-computing 31 dead software-FP lanes
                // costs more than it saves — fall back to active lanes only.
                for (std::uint32_t m = exec; m; m &= m - 1) {
                  const unsigned lane =
                      static_cast<unsigned>(std::countr_zero(m));
                  vals[lane] = isa::alu_result(instr.op, a[lane], b[lane],
                                               c[lane],
                                               cp != nullptr && cp[lane]);
                }
              }
              std::uint32_t* dst = reg_slab(w, instr.dst & (isa::kNumRegs - 1));
              if (hook) {
                for (std::uint32_t m = exec; m; m &= m - 1) {
                  const unsigned lane =
                      static_cast<unsigned>(std::countr_zero(m));
                  ++retired;
                  RetireInfo info;
                  info.instr = &instr;
                  info.pc = pc;
                  info.thread = ThreadId{cta, w, lane, w * kWarpSize + lane};
                  info.dyn_index = retired - 1;
                  info.a = a[lane];
                  info.b = b[lane];
                  info.c = c[lane];
                  hook->on_count(info);
                  std::uint32_t value = vals[lane];
                  hook->on_retire(info, value);
                  dst[lane] = value;
                }
              } else {
                for (std::uint32_t m = exec; m; m &= m - 1) {
                  const unsigned lane =
                      static_cast<unsigned>(std::countr_zero(m));
                  dst[lane] = vals[lane];
                }
                retired += static_cast<unsigned>(std::popcount(exec));
              }
              top.pc = pc + 1;
              break;
            }
          }

          // Merge completed divergence regions and retire empty entries.
          while (!warp.stack.empty()) {
            StackEntry& t = warp.stack.back();
            if (t.mask == 0 || (t.rpc >= 0 && t.pc == t.rpc)) {
              // An emptied base entry means every thread exited.
              if (warp.stack.size() == 1 && t.mask != 0) break;
              warp.stack.pop_back();
            } else {
              break;
            }
          }
          if (warp.stack.empty() || warp.stack.back().mask == 0) {
            warp.done = true;
          }

          if (retired > cfg.max_retired) {
            result.status = LaunchStatus::Timeout;
            result.retired = retired;
            return result;
          }
        }

        // Barrier release: every live warp has arrived.
        if (!all_done && !progressed) {
          bool any_waiting = false;
          for (auto& warp : warp_state)
            any_waiting |= !warp.done && warp.at_barrier;
          if (!any_waiting) throw Trap("scheduler deadlock");
          for (auto& warp : warp_state) warp.at_barrier = false;
        } else if (!all_done) {
          // If all non-done warps are at the barrier, release them.
          bool all_at_bar = true;
          for (auto& warp : warp_state)
            if (!warp.done && !warp.at_barrier) all_at_bar = false;
          if (all_at_bar)
            for (auto& warp : warp_state) warp.at_barrier = false;
        }
      }
    }
  } catch (const Trap& t) {
    result.status = LaunchStatus::Trap;
    result.trap_reason = t.what();
  }
  result.retired = retired;
  return result;
}

}  // namespace gpufi::emu
