#include "emu/device.hpp"

#include <algorithm>
#include <bit>
#include <new>
#include <stdexcept>

#include "isa/semantics.hpp"

namespace gpufi::emu {

using isa::Instr;
using isa::Opcode;
using isa::Operand;
using isa::OperandKind;

Device::Device(std::size_t global_words) : global_(global_words, 0) {}

std::uint32_t Device::alloc(std::size_t words) {
  if (alloc_watermark_ + words > global_.size()) throw std::bad_alloc();
  const auto base = static_cast<std::uint32_t>(alloc_watermark_);
  alloc_watermark_ += words;
  return base;
}

std::uint32_t Device::read_word(std::uint32_t addr) const {
  return global_.at(addr);
}
void Device::write_word(std::uint32_t addr, std::uint32_t value) {
  global_.at(addr) = value;
}
float Device::read_float(std::uint32_t addr) const {
  return std::bit_cast<float>(global_.at(addr));
}
void Device::write_float(std::uint32_t addr, float value) {
  global_.at(addr) = std::bit_cast<std::uint32_t>(value);
}

void Device::copy_in(std::uint32_t addr, const std::uint32_t* src,
                     std::size_t words) {
  if (addr + words > global_.size()) throw std::out_of_range("copy_in");
  std::copy(src, src + words, global_.begin() + addr);
}
void Device::copy_out(std::uint32_t addr, std::uint32_t* dst,
                      std::size_t words) const {
  if (addr + words > global_.size()) throw std::out_of_range("copy_out");
  std::copy(global_.begin() + addr, global_.begin() + addr + words, dst);
}
void Device::copy_in_f(std::uint32_t addr, const float* src,
                       std::size_t words) {
  copy_in(addr, reinterpret_cast<const std::uint32_t*>(src), words);
}
void Device::copy_out_f(std::uint32_t addr, float* dst,
                        std::size_t words) const {
  copy_out(addr, reinterpret_cast<std::uint32_t*>(dst), words);
}
void Device::fill(std::uint32_t addr, std::size_t words,
                  std::uint32_t value) {
  if (addr + words > global_.size()) throw std::out_of_range("fill");
  std::fill(global_.begin() + addr, global_.begin() + addr + words, value);
}

namespace {

constexpr unsigned kWarpSize = isa::kWarpSize;
constexpr std::size_t kMaxStackDepth = 64;

/// One SIMT reconvergence-stack entry: execute at `pc` with `mask`, merge
/// when `pc` reaches `rpc`.
struct StackEntry {
  std::int32_t pc = 0;
  std::int32_t rpc = -1;
  std::uint32_t mask = 0;
};

struct Warp {
  std::vector<StackEntry> stack;
  bool at_barrier = false;
  bool done = false;

  std::uint32_t active_mask() const {
    return stack.empty() ? 0 : stack.back().mask;
  }
};

/// Interpreter state for one CTA.
struct CtaContext {
  unsigned cta_index = 0;
  unsigned cta_x = 0, cta_y = 0;
  LaunchDims dims;
  std::vector<std::uint32_t> regs;   // [thread][kNumRegs]
  std::vector<std::uint8_t> preds;   // [thread][kNumPreds]
  std::vector<std::uint32_t> shared;
  std::vector<Warp> warps;

  std::uint32_t& reg(unsigned tid, unsigned r) {
    return regs[tid * isa::kNumRegs + r];
  }
  std::uint8_t& pred(unsigned tid, unsigned p) {
    return preds[tid * isa::kNumPreds + p];
  }
};

class Trap : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace

LaunchResult Device::launch(const isa::Program& prog, const LaunchDims& dims,
                            const LaunchConfig& cfg) {
  LaunchResult result;
  const unsigned tpc = dims.threads_per_cta();
  if (tpc == 0 || dims.ctas() == 0) return result;
  const auto code_size = static_cast<std::int32_t>(prog.code.size());
  std::uint64_t retired = 0;

  try {
    for (unsigned cta = 0; cta < dims.ctas(); ++cta) {
      CtaContext ctx;
      ctx.cta_index = cta;
      ctx.cta_x = cta % dims.grid_x;
      ctx.cta_y = cta / dims.grid_x;
      ctx.dims = dims;
      ctx.regs.assign(static_cast<std::size_t>(tpc) * isa::kNumRegs, 0);
      ctx.preds.assign(static_cast<std::size_t>(tpc) * isa::kNumPreds, 0);
      ctx.shared.assign(prog.shared_words, 0);
      const unsigned warps = (tpc + kWarpSize - 1) / kWarpSize;
      ctx.warps.resize(warps);
      for (unsigned w = 0; w < warps; ++w) {
        const unsigned lo = w * kWarpSize;
        const unsigned hi = std::min(tpc, lo + kWarpSize);
        std::uint32_t mask = 0;
        for (unsigned t = lo; t < hi; ++t) mask |= 1u << (t - lo);
        ctx.warps[w].stack.push_back(StackEntry{0, -1, mask});
      }

      auto resolve = [&](const Operand& op, unsigned tid) -> std::uint32_t {
        switch (op.kind) {
          case OperandKind::Reg:
            return ctx.reg(tid, op.value & (isa::kNumRegs - 1));
          case OperandKind::Imm:
            return op.value;
          case OperandKind::Special:
            switch (static_cast<isa::SReg>(op.value)) {
              case isa::SReg::TID_X: return tid % dims.block_x;
              case isa::SReg::TID_Y: return tid / dims.block_x;
              case isa::SReg::NTID_X: return dims.block_x;
              case isa::SReg::NTID_Y: return dims.block_y;
              case isa::SReg::CTAID_X: return ctx.cta_x;
              case isa::SReg::CTAID_Y: return ctx.cta_y;
              case isa::SReg::NCTAID_X: return dims.grid_x;
              case isa::SReg::NCTAID_Y: return dims.grid_y;
              case isa::SReg::LANEID: return tid % kWarpSize;
              default: {
                const auto p = static_cast<unsigned>(op.value) -
                               static_cast<unsigned>(isa::SReg::PARAM0);
                return prog.params[p % isa::kNumParams];
              }
            }
            return 0;
          case OperandKind::None:
            return 0;
        }
        return 0;
      };

      // Round-robin, one instruction per warp per turn: deterministic and
      // fair, and barriers release exactly when every live warp arrives.
      bool all_done = false;
      while (!all_done) {
        bool progressed = false;
        all_done = true;
        for (unsigned w = 0; w < warps; ++w) {
          Warp& warp = ctx.warps[w];
          if (warp.done) continue;
          all_done = false;
          if (warp.at_barrier) continue;
          progressed = true;

          StackEntry& top = warp.stack.back();
          const std::int32_t pc = top.pc;
          if (pc < 0 || pc >= code_size) throw Trap("invalid PC");
          const Instr& instr = prog.code[pc];

          // Per-thread guard evaluation.
          std::uint32_t exec = 0;
          for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            if (!(top.mask & (1u << lane))) continue;
            const unsigned tid = w * kWarpSize + lane;
            bool on = true;
            if (instr.pred >= 0) {
              on = ctx.pred(tid, static_cast<unsigned>(instr.pred) &
                                     (isa::kNumPreds - 1)) != 0;
              if (instr.pred_neg) on = !on;
            }
            if (on) exec |= 1u << lane;
          }

          // Retirement accounting + profiling hook (all participating
          // threads, guarded-off threads do not retire).
          auto count_retired = [&](std::uint32_t mask) {
            for (unsigned lane = 0; lane < kWarpSize; ++lane) {
              if (!(mask & (1u << lane))) continue;
              ++retired;
              if (cfg.hook) {
                RetireInfo info;
                info.instr = &instr;
                info.pc = pc;
                info.thread = ThreadId{cta, w, lane, w * kWarpSize + lane};
                info.dyn_index = retired - 1;
                cfg.hook->on_count(info);
              }
            }
          };

          switch (instr.op) {
            case Opcode::BRA: {
              count_retired(exec);
              const std::uint32_t not_taken = top.mask & ~exec;
              if (not_taken == 0) {
                if (instr.target < 0) throw Trap("BRA without target");
                top.pc = instr.target;
              } else if (exec == 0) {
                top.pc = pc + 1;
              } else {
                if (instr.reconv < 0)
                  throw Trap("divergent BRA without reconvergence point");
                if (warp.stack.size() + 2 > kMaxStackDepth)
                  throw Trap("SIMT stack overflow");
                top.pc = instr.reconv;  // merged continuation
                warp.stack.push_back(
                    StackEntry{pc + 1, instr.reconv, not_taken});
                warp.stack.push_back(
                    StackEntry{instr.target, instr.reconv, exec});
              }
              break;
            }
            case Opcode::EXIT: {
              count_retired(exec);
              for (auto& entry : warp.stack) entry.mask &= ~exec;
              // Remaining guarded-off threads continue past the EXIT.
              top.pc = pc + 1;
              break;
            }
            case Opcode::BAR: {
              count_retired(exec);
              warp.at_barrier = true;
              top.pc = pc + 1;
              break;
            }
            case Opcode::NOP: {
              count_retired(exec);
              top.pc = pc + 1;
              break;
            }
            case Opcode::ISETP:
            case Opcode::FSETP: {
              for (unsigned lane = 0; lane < kWarpSize; ++lane) {
                if (!(exec & (1u << lane))) continue;
                const unsigned tid = w * kWarpSize + lane;
                const std::uint32_t a = resolve(instr.a, tid);
                const std::uint32_t b = resolve(instr.b, tid);
                bool v = instr.op == Opcode::ISETP
                             ? isa::cmp_eval_i(instr.cmp, a, b)
                             : isa::cmp_eval_f(instr.cmp, a, b);
                ++retired;
                if (cfg.hook) {
                  RetireInfo info;
                  info.instr = &instr;
                  info.pc = pc;
                  info.thread = ThreadId{cta, w, lane, tid};
                  info.dyn_index = retired - 1;
                  info.a = a;
                  info.b = b;
                  cfg.hook->on_count(info);
                  cfg.hook->on_pred_retire(info, v);
                }
                ctx.pred(tid, instr.dst & (isa::kNumPreds - 1)) = v ? 1 : 0;
              }
              top.pc = pc + 1;
              break;
            }
            case Opcode::GLD:
            case Opcode::GST:
            case Opcode::LDS:
            case Opcode::STS: {
              const bool is_load =
                  instr.op == Opcode::GLD || instr.op == Opcode::LDS;
              const bool is_global =
                  instr.op == Opcode::GLD || instr.op == Opcode::GST;
              for (unsigned lane = 0; lane < kWarpSize; ++lane) {
                if (!(exec & (1u << lane))) continue;
                const unsigned tid = w * kWarpSize + lane;
                const std::uint32_t base = resolve(instr.a, tid);
                std::uint32_t addr =
                    base + static_cast<std::uint32_t>(instr.imm);
                const std::size_t limit =
                    is_global ? global_.size() : ctx.shared.size();
                if (addr >= limit) {
                  if (!cfg.oob_wraps || limit == 0)
                    throw Trap("out-of-bounds memory access");
                  addr = static_cast<std::uint32_t>(addr % limit);
                }
                std::uint32_t value;
                if (is_load) {
                  value = is_global ? global_[addr] : ctx.shared[addr];
                } else {
                  value = resolve(instr.b, tid);
                }
                ++retired;
                if (cfg.hook) {
                  RetireInfo info;
                  info.instr = &instr;
                  info.pc = pc;
                  info.thread = ThreadId{cta, w, lane, tid};
                  info.dyn_index = retired - 1;
                  info.a = base;
                  info.b = value;
                  cfg.hook->on_count(info);
                  if (is_load) cfg.hook->on_retire(info, value);
                }
                if (is_load) {
                  ctx.reg(tid, instr.dst & (isa::kNumRegs - 1)) = value;
                } else {
                  (is_global ? global_[addr] : ctx.shared[addr]) = value;
                }
              }
              top.pc = pc + 1;
              break;
            }
            default: {  // data-processing instructions
              for (unsigned lane = 0; lane < kWarpSize; ++lane) {
                if (!(exec & (1u << lane))) continue;
                const unsigned tid = w * kWarpSize + lane;
                const std::uint32_t a = resolve(instr.a, tid);
                const std::uint32_t b = resolve(instr.b, tid);
                std::uint32_t c = 0;
                bool c_pred = false;
                if (instr.op == Opcode::SEL) {
                  c_pred = ctx.pred(tid, instr.c.value &
                                             (isa::kNumPreds - 1)) != 0;
                } else {
                  c = resolve(instr.c, tid);
                }
                std::uint32_t value =
                    isa::alu_result(instr.op, a, b, c, c_pred);
                ++retired;
                if (cfg.hook) {
                  RetireInfo info;
                  info.instr = &instr;
                  info.pc = pc;
                  info.thread = ThreadId{cta, w, lane, tid};
                  info.dyn_index = retired - 1;
                  info.a = a;
                  info.b = b;
                  info.c = c;
                  cfg.hook->on_count(info);
                  cfg.hook->on_retire(info, value);
                }
                ctx.reg(tid, instr.dst & (isa::kNumRegs - 1)) = value;
              }
              top.pc = pc + 1;
              break;
            }
          }

          // Merge completed divergence regions and retire empty entries.
          while (!warp.stack.empty()) {
            StackEntry& t = warp.stack.back();
            if (t.mask == 0 || (t.rpc >= 0 && t.pc == t.rpc)) {
              // An emptied base entry means every thread exited.
              if (warp.stack.size() == 1 && t.mask != 0) break;
              warp.stack.pop_back();
            } else {
              break;
            }
          }
          if (warp.stack.empty() || warp.stack.back().mask == 0) {
            warp.done = true;
          }

          if (retired > cfg.max_retired) {
            result.status = LaunchStatus::Timeout;
            result.retired = retired;
            return result;
          }
        }

        // Barrier release: every live warp has arrived.
        if (!all_done && !progressed) {
          bool any_waiting = false;
          for (auto& warp : ctx.warps)
            any_waiting |= !warp.done && warp.at_barrier;
          if (!any_waiting) throw Trap("scheduler deadlock");
          for (auto& warp : ctx.warps) warp.at_barrier = false;
        } else if (!all_done) {
          // If all non-done warps are at the barrier, release them.
          bool all_at_bar = true;
          for (auto& warp : ctx.warps)
            if (!warp.done && !warp.at_barrier) all_at_bar = false;
          if (all_at_bar)
            for (auto& warp : ctx.warps) warp.at_barrier = false;
        }
      }
    }
  } catch (const Trap& t) {
    result.status = LaunchStatus::Trap;
    result.trap_reason = t.what();
  }
  result.retired = retired;
  return result;
}

}  // namespace gpufi::emu
