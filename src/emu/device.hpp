#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace gpufi::emu {

/// Grid/block launch geometry (x * y threads per CTA, x * y CTAs).
struct LaunchDims {
  unsigned grid_x = 1, grid_y = 1;
  unsigned block_x = 1, block_y = 1;

  unsigned threads_per_cta() const { return block_x * block_y; }
  unsigned ctas() const { return grid_x * grid_y; }
};

/// Identifies one executing thread during instrumentation callbacks.
struct ThreadId {
  unsigned cta = 0;    ///< linear CTA index
  unsigned warp = 0;   ///< warp index within the CTA
  unsigned lane = 0;   ///< lane within the warp (0..31)
  unsigned tid = 0;    ///< linear thread index within the CTA
};

/// Information passed to instrumentation on each retired instruction.
struct RetireInfo {
  const isa::Instr* instr = nullptr;
  std::int32_t pc = 0;
  ThreadId thread;
  std::uint64_t dyn_index = 0;  ///< per-launch retirement counter (per thread-instruction)
  std::uint32_t a = 0, b = 0, c = 0;  ///< resolved source operand values
};

/// NVBit-style instrumentation interface.
///
/// `on_retire` fires once per thread per retired value-producing
/// instruction, after the result is computed and before it is written back;
/// the callback may rewrite `value` (this is the software fault-injection
/// primitive). `on_pred_retire` is the analogous hook for ISETP/FSETP.
/// `on_count` fires once per thread per retired instruction of any kind
/// (profiling).
class InstrumentHook {
 public:
  virtual ~InstrumentHook() = default;
  virtual void on_retire(const RetireInfo& /*info*/, std::uint32_t& /*value*/) {}
  virtual void on_pred_retire(const RetireInfo& /*info*/, bool& /*value*/) {}
  virtual void on_count(const RetireInfo& /*info*/) {}
  /// A hook that returns true here promises it no longer observes or mutates
  /// anything: the interpreter may stop issuing callbacks and drop to the
  /// unhooked fast path (batched retire accounting) for the rest of the
  /// launch. Queried once per warp-instruction. Everything the launch
  /// produces — memory, retired totals, traps — is identical either way;
  /// a one-shot injection hook uses this to make the post-fire tail of a
  /// trial (on average half of it, all of it for a fault-induced hang) run
  /// at uninstrumented speed.
  virtual bool done() const { return false; }
};

/// Terminal status of a kernel launch.
enum class LaunchStatus {
  Ok,       ///< all threads exited
  Trap,     ///< invalid PC, out-of-bounds access, divergence-stack overflow
  Timeout,  ///< retired-instruction watchdog expired (hang)
};

/// Outcome and accounting of one launch.
struct LaunchResult {
  LaunchStatus status = LaunchStatus::Ok;
  std::string trap_reason;
  std::uint64_t retired = 0;  ///< total thread-instructions retired
};

/// Per-launch tunables.
struct LaunchConfig {
  /// Watchdog: maximum thread-instructions before declaring a hang.
  /// 0 means "derive from a golden run" is not available; use the default.
  std::uint64_t max_retired = 400'000'000;
  InstrumentHook* hook = nullptr;
  /// When true, out-of-range memory accesses wrap modulo the memory size
  /// instead of trapping. This models a real GPU's large mapped address
  /// space, where a corrupted address usually returns wrong data rather
  /// than faulting — matching the paper's observation that software
  /// syndrome injection produces no DUEs. The RTL model always traps.
  bool oob_wraps = false;
};

/// Interpreter implementation executing a launch. Both produce bit-identical
/// results — outputs, retire-callback order and values, traps, and retired
/// counts (tests/emu_equiv_test.cpp pins this).
enum class Interpreter : std::uint8_t {
  Scalar,  ///< reference: one instruction per lane per step
  /// Structure-of-arrays warp execution: registers and predicates live in
  /// contiguous per-warp lane slabs, an instruction is decoded once per warp
  /// and all 32 lanes execute in tight branch-free loops.
  SoA,
};

/// Functional SIMT GPU device: flat word-addressed global memory plus a
/// kernel interpreter with G80-style SIMT divergence stacks and CTA-wide
/// barriers. This is the software level of the two-level framework: fast,
/// architecturally visible state only.
class Device {
 public:
  /// Creates a device with `global_words` words of global memory.
  explicit Device(std::size_t global_words = 1 << 22);

  /// Resets the allocation watermark (memory contents are untouched).
  void reset_allocator() { alloc_watermark_ = 0; }

  /// Restores the device to its freshly-constructed state: every word ever
  /// written (host copies/fills and kernel global stores) is zeroed again
  /// and the allocator rewinds. Campaign loops reuse one device per worker
  /// through this instead of constructing (and zeroing) a new one per trial;
  /// the post-reset state is byte-identical to a new Device of the same size.
  void reset();

  /// Selects the interpreter used by launch() (default SoA; the scalar path
  /// is kept as the equivalence-test and benchmark reference).
  void set_interpreter(Interpreter i) { interp_ = i; }
  Interpreter interpreter() const { return interp_; }

  /// Bump-allocates `words` words of global memory; returns the word
  /// address. Throws std::bad_alloc when the device is full.
  std::uint32_t alloc(std::size_t words);

  /// Word-accurate access to global memory (host side).
  std::uint32_t read_word(std::uint32_t addr) const;
  void write_word(std::uint32_t addr, std::uint32_t value);
  float read_float(std::uint32_t addr) const;
  void write_float(std::uint32_t addr, float value);

  /// Bulk host<->device copies (word granularity).
  void copy_in(std::uint32_t addr, const std::uint32_t* src,
               std::size_t words);
  void copy_out(std::uint32_t addr, std::uint32_t* dst,
                std::size_t words) const;
  void copy_in_f(std::uint32_t addr, const float* src, std::size_t words);
  void copy_out_f(std::uint32_t addr, float* dst, std::size_t words) const;

  /// Fills a region with a word value.
  void fill(std::uint32_t addr, std::size_t words, std::uint32_t value);

  std::size_t global_words() const { return global_.size(); }

  /// Executes a kernel to completion (or trap/timeout).
  LaunchResult launch(const isa::Program& prog, const LaunchDims& dims,
                      const LaunchConfig& cfg = {});

 private:
  /// True when [addr, addr+words) lies inside global memory, computed
  /// without overflow (`addr + words` can wrap std::size_t).
  bool in_bounds(std::uint32_t addr, std::size_t words) const {
    return addr <= global_.size() && words <= global_.size() - addr;
  }
  /// Records that words below `end` may now be nonzero (reset() only has to
  /// zero up to the high-water mark).
  void touch(std::size_t end) {
    if (end > touched_high_) touched_high_ = end;
  }

  LaunchResult launch_scalar(const isa::Program& prog, const LaunchDims& dims,
                             const LaunchConfig& cfg);
  LaunchResult launch_soa(const isa::Program& prog, const LaunchDims& dims,
                          const LaunchConfig& cfg);

  std::vector<std::uint32_t> global_;
  std::size_t alloc_watermark_ = 0;
  std::size_t touched_high_ = 0;  ///< one past the highest word ever written
  Interpreter interp_ = Interpreter::SoA;
};

}  // namespace gpufi::emu
