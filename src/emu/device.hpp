#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace gpufi::emu {

/// Grid/block launch geometry (x * y threads per CTA, x * y CTAs).
struct LaunchDims {
  unsigned grid_x = 1, grid_y = 1;
  unsigned block_x = 1, block_y = 1;

  unsigned threads_per_cta() const { return block_x * block_y; }
  unsigned ctas() const { return grid_x * grid_y; }
};

/// Identifies one executing thread during instrumentation callbacks.
struct ThreadId {
  unsigned cta = 0;    ///< linear CTA index
  unsigned warp = 0;   ///< warp index within the CTA
  unsigned lane = 0;   ///< lane within the warp (0..31)
  unsigned tid = 0;    ///< linear thread index within the CTA
};

/// Information passed to instrumentation on each retired instruction.
struct RetireInfo {
  const isa::Instr* instr = nullptr;
  std::int32_t pc = 0;
  ThreadId thread;
  std::uint64_t dyn_index = 0;  ///< per-launch retirement counter (per thread-instruction)
  std::uint32_t a = 0, b = 0, c = 0;  ///< resolved source operand values
};

/// NVBit-style instrumentation interface.
///
/// `on_retire` fires once per thread per retired value-producing
/// instruction, after the result is computed and before it is written back;
/// the callback may rewrite `value` (this is the software fault-injection
/// primitive). `on_pred_retire` is the analogous hook for ISETP/FSETP.
/// `on_count` fires once per thread per retired instruction of any kind
/// (profiling).
class InstrumentHook {
 public:
  virtual ~InstrumentHook() = default;
  virtual void on_retire(const RetireInfo& /*info*/, std::uint32_t& /*value*/) {}
  virtual void on_pred_retire(const RetireInfo& /*info*/, bool& /*value*/) {}
  virtual void on_count(const RetireInfo& /*info*/) {}
};

/// Terminal status of a kernel launch.
enum class LaunchStatus {
  Ok,       ///< all threads exited
  Trap,     ///< invalid PC, out-of-bounds access, divergence-stack overflow
  Timeout,  ///< retired-instruction watchdog expired (hang)
};

/// Outcome and accounting of one launch.
struct LaunchResult {
  LaunchStatus status = LaunchStatus::Ok;
  std::string trap_reason;
  std::uint64_t retired = 0;  ///< total thread-instructions retired
};

/// Per-launch tunables.
struct LaunchConfig {
  /// Watchdog: maximum thread-instructions before declaring a hang.
  /// 0 means "derive from a golden run" is not available; use the default.
  std::uint64_t max_retired = 400'000'000;
  InstrumentHook* hook = nullptr;
  /// When true, out-of-range memory accesses wrap modulo the memory size
  /// instead of trapping. This models a real GPU's large mapped address
  /// space, where a corrupted address usually returns wrong data rather
  /// than faulting — matching the paper's observation that software
  /// syndrome injection produces no DUEs. The RTL model always traps.
  bool oob_wraps = false;
};

/// Functional SIMT GPU device: flat word-addressed global memory plus a
/// kernel interpreter with G80-style SIMT divergence stacks and CTA-wide
/// barriers. This is the software level of the two-level framework: fast,
/// architecturally visible state only.
class Device {
 public:
  /// Creates a device with `global_words` words of global memory.
  explicit Device(std::size_t global_words = 1 << 22);

  /// Resets the allocation watermark (memory contents are untouched).
  void reset_allocator() { alloc_watermark_ = 0; }

  /// Bump-allocates `words` words of global memory; returns the word
  /// address. Throws std::bad_alloc when the device is full.
  std::uint32_t alloc(std::size_t words);

  /// Word-accurate access to global memory (host side).
  std::uint32_t read_word(std::uint32_t addr) const;
  void write_word(std::uint32_t addr, std::uint32_t value);
  float read_float(std::uint32_t addr) const;
  void write_float(std::uint32_t addr, float value);

  /// Bulk host<->device copies (word granularity).
  void copy_in(std::uint32_t addr, const std::uint32_t* src,
               std::size_t words);
  void copy_out(std::uint32_t addr, std::uint32_t* dst,
                std::size_t words) const;
  void copy_in_f(std::uint32_t addr, const float* src, std::size_t words);
  void copy_out_f(std::uint32_t addr, float* dst, std::size_t words) const;

  /// Fills a region with a word value.
  void fill(std::uint32_t addr, std::size_t words, std::uint32_t value);

  std::size_t global_words() const { return global_.size(); }

  /// Executes a kernel to completion (or trap/timeout).
  LaunchResult launch(const isa::Program& prog, const LaunchDims& dims,
                      const LaunchConfig& cfg = {});

 private:
  std::vector<std::uint32_t> global_;
  std::size_t alloc_watermark_ = 0;
};

}  // namespace gpufi::emu
