#include "emu/profiler.hpp"

namespace gpufi::emu {

double Profiler::class_fraction(isa::OpClass cls) const {
  const auto t = total();
  if (t == 0) return 0.0;
  // Disjoint partition matching Fig. 3: the five named buckets cover only
  // the 12 RTL-characterized opcodes; everything else is "Others" (so
  // LDS/STS, FSETP, BAR, plain MOV arithmetic etc. land in Other).
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < isa::kNumOpcodes; ++i) {
    const auto op = static_cast<isa::Opcode>(i);
    if (cls == isa::OpClass::Other) {
      if (!isa::is_characterized(op)) n += counts_[i];
    } else if (isa::is_characterized(op) && isa::op_class(op) == cls) {
      n += counts_[i];
    }
  }
  return static_cast<double>(n) / static_cast<double>(t);
}

}  // namespace gpufi::emu
