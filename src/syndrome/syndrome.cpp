#include "syndrome/syndrome.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/statistics.hpp"
#include "obs/metrics.hpp"

namespace gpufi::syndrome {

SchemaMismatch::SchemaMismatch(int found, int expected)
    : std::runtime_error("syndrome db: schema version " +
                         std::to_string(found) + ", expected " +
                         std::to_string(expected) +
                         " — regenerate with `gpufi build-db`"),
      found_(found) {}

void Dist::add(double rel_error) {
  if (!(rel_error > 0.0) || !std::isfinite(rel_error)) {
    // Zero/invalid relative errors carry no syndrome information.
    return;
  }
  ++n_;
  hist_.add(rel_error);
  if (samples_.size() < kMaxSamples) samples_.push_back(rel_error);
}

double Dist::median() const { return stats::median(samples_); }

bool Dist::fit() {
  fit_.reset();
  try {
    fit_ = fit_power_law(samples_);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

double Dist::shapiro_p() const {
  if (samples_.size() < 8) return 1.0;
  // Test at most 4000 samples (Royston's approximation is rated to n=5000).
  std::span<const double> s(samples_.data(),
                            std::min<std::size_t>(samples_.size(), 4000));
  return stats::shapiro_wilk(s).p_value;
}

double Dist::sample(Rng& rng) const {
  if (n_ == 0) return 0.0;
  if (fit_) {
    // Eq. (1): x = x_min * (1 - r)^(-1 / (alpha - 1)).
    return fit_->sample(rng);
  }
  return hist_.sample(rng);
}

std::string_view pattern_name(Pattern p) {
  switch (p) {
    case Pattern::Single: return "single";
    case Pattern::Row: return "row";
    case Pattern::Col: return "col";
    case Pattern::RowCol: return "row+col";
    case Pattern::Block: return "block";
    case Pattern::Random: return "rand";
    case Pattern::All: return "all";
  }
  return "?";
}

Pattern classify_pattern(const std::vector<std::uint32_t>& indices,
                         unsigned rows, unsigned cols) {
  if (indices.empty() || rows == 0 || cols == 0) return Pattern::Single;
  if (indices.size() == 1) return Pattern::Single;
  std::set<unsigned> rset, cset;
  unsigned rmin = rows, rmax = 0, cmin = cols, cmax = 0;
  for (auto idx : indices) {
    const unsigned r = idx / cols, c = idx % cols;
    rset.insert(r);
    cset.insert(c);
    rmin = std::min(rmin, r);
    rmax = std::max(rmax, r);
    cmin = std::min(cmin, c);
    cmax = std::max(cmax, c);
  }
  const std::size_t n = indices.size();
  if (n + 2 >= static_cast<std::size_t>(rows) * cols) return Pattern::All;
  if (rset.size() == 1) return Pattern::Row;
  if (cset.size() == 1) return Pattern::Col;
  // Row+column: every element lies on one specific row or one specific
  // column, and both carry at least two elements.
  for (unsigned r : rset) {
    for (unsigned c : cset) {
      std::size_t on_r = 0, on_c = 0;
      bool outside = false;
      for (auto idx : indices) {
        const unsigned ir = idx / cols, ic = idx % cols;
        if (ir == r) ++on_r;
        if (ic == c) ++on_c;
        if (ir != r && ic != c) outside = true;
      }
      if (!outside && on_r >= 2 && on_c >= 2) return Pattern::RowCol;
    }
  }
  // Block: a filled bounding rectangle (taller and wider than one line).
  const std::size_t area =
      static_cast<std::size_t>(rmax - rmin + 1) * (cmax - cmin + 1);
  if (area == n) return Pattern::Block;
  return Pattern::Random;
}

std::size_t TilePatternStats::total() const {
  std::size_t t = 0;
  for (auto c : counts) t += c;
  return t;
}

double TilePatternStats::multi_fraction(Pattern p) const {
  std::size_t multi = 0;
  for (std::size_t i = 1; i < kNumPatterns; ++i) multi += counts[i];
  if (multi == 0 || p == Pattern::Single) return 0.0;
  return static_cast<double>(counts[static_cast<std::size_t>(p)]) /
         static_cast<double>(multi);
}

void Database::add_campaign(const Key& key,
                            const rtlfi::CampaignResult& result) {
  Dist& d = dists_[key];
  for (const auto& rec : result.records) {
    if (rec.outcome != rtlfi::Outcome::Sdc) continue;
    for (const auto& diff : rec.diffs) d.add(diff.rel_error);
  }
}

void Database::add_tmxm_campaign(rtl::Module site, unsigned rows,
                                 unsigned cols,
                                 const rtlfi::CampaignResult& result) {
  TilePatternStats& s = tmxm_mutable(site);
  for (const auto& rec : result.records) {
    if (rec.outcome != rtlfi::Outcome::Sdc) continue;
    std::vector<std::uint32_t> indices;
    double max_rel = 0.0;
    for (const auto& diff : rec.diffs) {
      indices.push_back(diff.index);
      s.elements.add(diff.rel_error);
      if (std::isfinite(diff.rel_error)) max_rel = std::max(max_rel, diff.rel_error);
    }
    const Pattern p = classify_pattern(indices, rows, cols);
    ++s.counts[static_cast<std::size_t>(p)];
    s.record_max.add(max_rel);
  }
}

void Database::finalize() {
  for (auto& [key, dist] : dists_) dist.fit();
  tmxm_scheduler_.elements.fit();
  tmxm_scheduler_.record_max.fit();
  tmxm_pipeline_.elements.fit();
  tmxm_pipeline_.record_max.fit();
}

const Dist* Database::find(const Key& key) const {
  const auto it = dists_.find(key);
  return it == dists_.end() ? nullptr : &it->second;
}

std::optional<double> Database::sample_relative_error(
    isa::Opcode op, rtlfi::InputRange range, Rng& rng,
    rtl::FaultModel model) const {
  // Pool modules for this (op, range, model), weighted by observed SDC
  // counts. When the requested fault-model class was never characterized
  // for this opcode, fall back to the transient class — the transient grid
  // is always built first and most densely.
  std::vector<const Dist*> pool;
  std::size_t total = 0;
  const auto build_pool = [&](rtl::FaultModel m) {
    pool.clear();
    total = 0;
    for (const auto& [key, dist] : dists_) {
      if (key.op != op || key.range != range || key.model != m ||
          dist.count() == 0)
        continue;
      pool.push_back(&dist);
      total += dist.count();
    }
  };
  build_pool(model);
  if (total == 0 && model != rtl::FaultModel::Transient) {
    obs::count("gpufi_syndrome_transient_fallback_total");
    build_pool(rtl::FaultModel::Transient);
  }
  if (total == 0) {
    obs::count("gpufi_syndrome_sample_miss_total");
    return std::nullopt;
  }
  std::size_t target = rng.below(total);
  for (const Dist* d : pool) {
    if (target < d->count()) return d->sample(rng);
    target -= d->count();
  }
  return pool.back()->sample(rng);
}

const TilePatternStats& Database::tmxm(rtl::Module site) const {
  return site == rtl::Module::Scheduler ? tmxm_scheduler_ : tmxm_pipeline_;
}
TilePatternStats& Database::tmxm_mutable(rtl::Module site) {
  return site == rtl::Module::Scheduler ? tmxm_scheduler_ : tmxm_pipeline_;
}

TileCorruption Database::sample_tile_corruption(unsigned rows, unsigned cols,
                                                Rng& rng) const {
  TileCorruption out;
  // Pick the injection site by its SDC mass, then the pattern by observed
  // frequency at that site.
  const TilePatternStats* site = &tmxm_scheduler_;
  const std::size_t tot_s = tmxm_scheduler_.total();
  const std::size_t tot_p = tmxm_pipeline_.total();
  if (tot_s + tot_p == 0) {
    // Untrained database: a single-element corruption with a fixed error.
    out.pattern = Pattern::Single;
    out.elements.push_back({0, 0, 1.0});
    return out;
  }
  if (rng.below(tot_s + tot_p) >= tot_s) site = &tmxm_pipeline_;

  std::size_t target = rng.below(site->total());
  std::size_t chosen = 0;
  for (std::size_t i = 0; i < kNumPatterns; ++i) {
    if (target < site->counts[i]) {
      chosen = i;
      break;
    }
    target -= site->counts[i];
  }
  out.pattern = static_cast<Pattern>(chosen);

  // Geometry.
  std::vector<std::pair<unsigned, unsigned>> cells;
  const unsigned r0 = static_cast<unsigned>(rng.below(rows));
  const unsigned c0 = static_cast<unsigned>(rng.below(cols));
  switch (out.pattern) {
    case Pattern::Single:
      cells.push_back({r0, c0});
      break;
    case Pattern::Row:
      for (unsigned c = 0; c < cols; ++c) cells.push_back({r0, c});
      break;
    case Pattern::Col:
      for (unsigned r = 0; r < rows; ++r) cells.push_back({r, c0});
      break;
    case Pattern::RowCol:
      for (unsigned c = 0; c < cols; ++c) cells.push_back({r0, c});
      for (unsigned r = 0; r < rows; ++r)
        if (r != r0) cells.push_back({r, c0});
      break;
    case Pattern::Block: {
      const unsigned h = 2 + static_cast<unsigned>(rng.below(
                                 std::max(1u, rows - 2)));
      const unsigned w = 2 + static_cast<unsigned>(rng.below(
                                 std::max(1u, cols - 2)));
      const unsigned rb = static_cast<unsigned>(
          rng.below(rows - std::min(h, rows) + 1));
      const unsigned cb = static_cast<unsigned>(
          rng.below(cols - std::min(w, cols) + 1));
      for (unsigned r = rb; r < std::min(rows, rb + h); ++r)
        for (unsigned c = cb; c < std::min(cols, cb + w); ++c)
          cells.push_back({r, c});
      break;
    }
    case Pattern::Random: {
      const unsigned n =
          2 + static_cast<unsigned>(rng.below(rows * cols / 4));
      std::set<std::pair<unsigned, unsigned>> uniq;
      while (uniq.size() < n)
        uniq.insert({static_cast<unsigned>(rng.below(rows)),
                     static_cast<unsigned>(rng.below(cols))});
      cells.assign(uniq.begin(), uniq.end());
      break;
    }
    case Pattern::All:
      for (unsigned r = 0; r < rows; ++r)
        for (unsigned c = 0; c < cols; ++c) cells.push_back({r, c});
      break;
  }

  // Two-level relative-error scheme (Sec. V-D): Eq. (1) selects the range
  // (the record's maximum error), a second power-law draw places each
  // element within it.
  const double range_max = std::max(site->record_max.sample(rng), 1e-9);
  for (auto [r, c] : cells) {
    double frac = 1.0;
    if (site->elements.power_law()) {
      const auto& pl = *site->elements.power_law();
      frac = pl.x_min / std::max(pl.sample(rng), pl.x_min);
    } else {
      frac = rng.uniform(0.05, 1.0);
    }
    out.elements.push_back({r, c, range_max * frac});
  }
  return out;
}

std::vector<Key> Database::keys() const {
  std::vector<Key> ks;
  ks.reserve(dists_.size());
  for (const auto& [key, dist] : dists_) ks.push_back(key);
  return ks;
}

// ------------------------------------------------------------ serialization

namespace {

void save_dist(std::ostream& os, const Dist& d) {
  os << d.count() << ' ' << d.samples().size();
  for (double s : d.samples()) os << ' ' << s;
  os << '\n';
}

Dist load_dist(std::istream& is) {
  Dist d;
  std::size_t count = 0, stored = 0;
  is >> count >> stored;
  for (std::size_t i = 0; i < stored; ++i) {
    double s;
    is >> s;
    d.add(s);
  }
  d.fit();
  return d;
}

void save_tmxm(std::ostream& os, const TilePatternStats& s) {
  os << "tmxm";
  for (auto c : s.counts) os << ' ' << c;
  os << '\n';
  save_dist(os, s.record_max);
  save_dist(os, s.elements);
}

TilePatternStats load_tmxm(std::istream& is) {
  TilePatternStats s;
  std::string tag;
  is >> tag;
  if (tag != "tmxm") throw std::runtime_error("syndrome db: bad tmxm tag");
  for (auto& c : s.counts) is >> c;
  s.record_max = load_dist(is);
  s.elements = load_dist(is);
  return s;
}

}  // namespace

void Database::save(std::ostream& os) const {
  // max_digits10 makes the double<->text round trip lossless, so a loaded
  // database samples exactly what the in-memory one did.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "gpufi-syndrome-db " << kSchemaVersion << '\n';
  os << dists_.size() << '\n';
  for (const auto& [key, dist] : dists_) {
    os << static_cast<int>(key.module) << ' ' << static_cast<int>(key.op)
       << ' ' << static_cast<int>(key.range) << ' '
       << static_cast<int>(key.model) << '\n';
    save_dist(os, dist);
  }
  save_tmxm(os, tmxm_scheduler_);
  save_tmxm(os, tmxm_pipeline_);
}

Database Database::load(std::istream& is) {
  Database db;
  std::string magic;
  int version = 0;
  is >> magic >> version;
  if (magic != "gpufi-syndrome-db")
    throw std::runtime_error("syndrome db: bad header");
  if (version != kSchemaVersion) throw SchemaMismatch(version, kSchemaVersion);
  std::size_t n = 0;
  is >> n;
  for (std::size_t i = 0; i < n; ++i) {
    int m, o, r, fm;
    is >> m >> o >> r >> fm;
    Key key{static_cast<rtl::Module>(m), static_cast<isa::Opcode>(o),
            static_cast<rtlfi::InputRange>(r),
            static_cast<rtl::FaultModel>(fm)};
    db.dists_[key] = load_dist(is);
  }
  db.tmxm_scheduler_ = load_tmxm(is);
  db.tmxm_pipeline_ = load_tmxm(is);
  return db;
}

void Database::save_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write " + path);
  save(os);
}

Database Database::load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot read " + path);
  return load(is);
}

}  // namespace gpufi::syndrome
