#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/powerlaw.hpp"
#include "common/rng.hpp"
#include "isa/isa.hpp"
#include "rtl/state.hpp"
#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"

namespace gpufi::syndrome {

/// Key of a syndrome distribution: the paper selects the error to inject
/// based on the corrupted module, the instruction opcode, and the operand
/// magnitude range; schema v2 additionally keys by the RTL fault model, so
/// stuck-at and transient syndromes of the same site stay separate classes.
struct Key {
  rtl::Module module = rtl::Module::Fp32Fu;
  isa::Opcode op = isa::Opcode::FADD;
  rtlfi::InputRange range = rtlfi::InputRange::Medium;
  rtl::FaultModel model = rtl::FaultModel::Transient;

  auto operator<=>(const Key&) const = default;
};

/// Thrown when a database file's schema version does not match
/// Database::kSchemaVersion. A stale incompatible file must hard-error
/// (the CLI maps this to exit code 2), never be silently reinterpreted.
class SchemaMismatch : public std::runtime_error {
 public:
  SchemaMismatch(int found, int expected);
  int found() const { return found_; }

 private:
  int found_;
};

/// Distribution of the relative error a fault imposes on one instruction's
/// output (one cell of Figures 5/6). Holds the raw samples (capped), a
/// decade histogram for rendering, and the fitted power law used by Eq. (1).
class Dist {
 public:
  Dist() : hist_(-8, 3, 1) {}

  /// Records one observed relative error.
  void add(double rel_error);

  /// Number of recorded syndromes.
  std::size_t count() const { return n_; }
  /// Median relative error.
  double median() const;
  /// Histogram over decades 1e-8..1e3 (Fig. 5/6 rendering).
  const LogHistogram& histogram() const { return hist_; }
  /// Raw samples (capped at kMaxSamples).
  const std::vector<double>& samples() const { return samples_; }

  /// Fits (or re-fits) the power law; returns false when the data does not
  /// admit a fit (too few samples), in which case sampling falls back to
  /// the empirical histogram.
  bool fit();
  const std::optional<PowerLaw>& power_law() const { return fit_; }

  /// Shapiro-Wilk p-value on the samples (the paper: always < 0.05, i.e.
  /// syndromes are decisively non-Gaussian).
  double shapiro_p() const;

  /// Draws one relative error: Eq. (1) of the paper when a power law is
  /// fitted, the empirical histogram otherwise. Returns 0 when empty.
  double sample(Rng& rng) const;

  /// Cap on raw samples retained per distribution.
  static constexpr std::size_t kMaxSamples = 50000;

 private:
  std::size_t n_ = 0;
  std::vector<double> samples_;
  LogHistogram hist_;
  std::optional<PowerLaw> fit_;
};

// ---------------------------------------------------------------------------
// t-MxM spatial error patterns (Fig. 8 / Table II).
// ---------------------------------------------------------------------------

/// Geometric classes of multi-element corruption in a tile output.
enum class Pattern : std::uint8_t {
  Single = 0,  ///< one corrupted element (not listed in Table II)
  Row,         ///< all corrupted elements share a row
  Col,         ///< all share a column
  RowCol,      ///< a row plus a column
  Block,       ///< a contiguous rectangular block
  Random,      ///< scattered with no structure
  All,         ///< (almost) every element corrupted
};

constexpr std::size_t kNumPatterns = 7;

/// Pattern name ("row", "block", ...).
std::string_view pattern_name(Pattern p);

/// Classifies the corrupted element indices of a rows x cols tile.
Pattern classify_pattern(const std::vector<std::uint32_t>& indices,
                         unsigned rows, unsigned cols);

/// Statistics of the t-MxM characterization for one injection site
/// (scheduler or pipeline): pattern frequencies plus the relative-error
/// distributions needed to reproduce the corruption in software.
struct TilePatternStats {
  std::array<std::size_t, kNumPatterns> counts{};
  /// Max relative error per SDC record ("range" selector of Sec. V-D).
  Dist record_max;
  /// Per-element relative errors.
  Dist elements;

  std::size_t total() const;
  /// Fraction of multi-element records in pattern p (Table II rows; the
  /// Single column is excluded from the denominator as in the paper).
  double multi_fraction(Pattern p) const;
};

/// One sampled tile-corruption plan (consumed by the CNN injector).
struct TileCorruption {
  Pattern pattern = Pattern::Single;
  /// Element (row, col, relative_error) triples within a rows x cols tile.
  struct Element {
    unsigned row, col;
    double rel_error;
  };
  std::vector<Element> elements;
};

// ---------------------------------------------------------------------------
// The database.
// ---------------------------------------------------------------------------

/// The RTL fault-syndrome database — the artifact the paper publishes:
/// relative-error distributions per (module, opcode, input range), plus the
/// t-MxM spatial pattern statistics per injection site.
class Database {
 public:
  /// Ingests the SDC records of a micro-benchmark campaign.
  void add_campaign(const Key& key, const rtlfi::CampaignResult& result);

  /// Ingests a t-MxM campaign (site must be Scheduler or PipelineRegs).
  void add_tmxm_campaign(rtl::Module site, unsigned rows, unsigned cols,
                         const rtlfi::CampaignResult& result);

  /// Fits every distribution's power law; call once after ingestion.
  void finalize();

  /// Distribution for an exact key, or nullptr.
  const Dist* find(const Key& key) const;

  /// Samples a relative error for (op, range) pooling all modules, weighted
  /// by their observed SDC counts — the paper's "cocktail of fault
  /// syndromes". `model` selects the fault-model syndrome class; when that
  /// class was never characterized for the opcode, sampling falls back to
  /// the transient class (documented fallback: the transient grid is always
  /// built first and most densely). Returns nullopt if the opcode was never
  /// characterized at all.
  std::optional<double> sample_relative_error(
      isa::Opcode op, rtlfi::InputRange range, Rng& rng,
      rtl::FaultModel model = rtl::FaultModel::Transient) const;

  /// t-MxM pattern statistics per site.
  const TilePatternStats& tmxm(rtl::Module site) const;
  TilePatternStats& tmxm_mutable(rtl::Module site);

  /// Samples a tile corruption: pattern by observed frequency (including
  /// Single), geometry uniformly within the tile, per-element relative
  /// errors via the two-level power-law scheme of Sec. V-D.
  TileCorruption sample_tile_corruption(unsigned rows, unsigned cols,
                                        Rng& rng) const;

  /// All keys present (deterministic order).
  std::vector<Key> keys() const;

  /// On-disk schema version written/required by save/load. v2 added the
  /// fault-model column to every distribution key.
  static constexpr int kSchemaVersion = 2;

  /// Plain-text (de)serialization of the whole database. load throws
  /// std::runtime_error on garbage and SchemaMismatch on a well-formed
  /// header with the wrong version.
  void save(std::ostream& os) const;
  static Database load(std::istream& is);
  void save_file(const std::string& path) const;
  static Database load_file(const std::string& path);

 private:
  std::map<Key, Dist> dists_;
  TilePatternStats tmxm_scheduler_;
  TilePatternStats tmxm_pipeline_;
};

}  // namespace gpufi::syndrome
