#pragma once

// Golden-run liveness timeline: which dynamic instruction occupies the
// machine at every cycle of a fault-free run. The Sm interpreter is
// blocking in-order with one warp instruction in flight, so the timeline is
// a sorted vector of non-overlapping [start, end) intervals — one per
// dynamic instruction — and attribution of a fault cycle to the live
// instruction is a binary search. Recorded once per campaign alongside the
// golden output (and, for accelerated modes, the checkpoint ladder), so
// resolving a FaultSiteContext costs nothing per faulty trial.

#include <cstdint>
#include <string_view>
#include <vector>

#include "isa/isa.hpp"
#include "rtl/state.hpp"

namespace gpufi::rtl {

/// One dynamic instruction's occupancy of the machine: the cycle-counter
/// values [start, end) consumed between its fetch and its retirement
/// (including scoreboard stalls and SFU arbitration rounds). Idle and
/// barrier-release cycles belong to no interval.
struct LiveInterval {
  std::uint64_t start = 0;  ///< first cycle-counter value occupied
  std::uint64_t end = 0;    ///< one past the last occupied counter value
  std::uint64_t dyn_index = 0;  ///< dynamic-instruction index (fetch order)
  std::uint64_t pc = 0;         ///< static instruction index
  std::uint32_t cta = 0;
  std::uint32_t warp = 0;
  isa::Opcode op = isa::Opcode::NOP;
};

/// Coarse pipeline phase a fault cycle lands in, derived from the cycle's
/// offset within the live interval (the interpreter's micro-sequence is
/// fixed: fetch tick, guard tick, then execute ticks, with the last beats
/// draining into writeback and a final retire/PC-advance tick).
enum class PipeStage : std::uint8_t {
  Idle,       ///< no instruction in flight (fault fell between instructions)
  Fetch,      ///< instruction-buffer fill
  Guard,      ///< predicate-guard evaluation
  Execute,    ///< issue/operand-fetch/FU cycles (incl. stalls, SFU rounds)
  Writeback,  ///< result-collector drain into the register file
  Retire,     ///< PC advance / stack merge
};

/// Stable token for a PipeStage ("idle", "fetch", ...).
std::string_view stage_name(PipeStage s);

/// Everything attribution knows about the machine state at a fault cycle,
/// joined from the golden liveness timeline. Deterministic per (workload,
/// cycle, module) — independent of acceleration level and job count.
struct FaultSiteContext {
  bool live = false;  ///< an instruction was in flight at the fault cycle
  std::uint64_t dyn_index = 0;
  std::uint64_t pc = 0;
  std::uint32_t cta = 0;
  std::uint32_t warp = 0;
  isa::Opcode op = isa::Opcode::NOP;
  PipeStage stage = PipeStage::Idle;
  /// True when the faulted module was actually occupied by the live
  /// instruction (a Fp32Fu fault during an IADD hits at-rest state).
  bool unit_busy = false;
};

/// The per-run liveness recording. Intervals are appended in fetch order
/// (therefore sorted by start and non-overlapping) by the interpreter.
class LivenessTimeline {
 public:
  void clear() {
    intervals_.clear();
    total_cycles_ = 0;
  }

  /// Opens an interval at `cycle` (called at instruction fetch).
  void begin(std::uint64_t cycle, std::uint32_t cta, std::uint32_t warp,
             std::uint64_t pc, isa::Opcode op) {
    LiveInterval iv;
    iv.start = cycle;
    iv.end = cycle;  // closed on retire; at()/finalize drop empty intervals
    iv.dyn_index = intervals_.size();
    iv.pc = pc;
    iv.cta = cta;
    iv.warp = warp;
    iv.op = op;
    intervals_.push_back(iv);
  }

  /// Closes the most recently opened interval at `cycle` (exclusive).
  void close(std::uint64_t cycle) {
    if (!intervals_.empty()) intervals_.back().end = cycle;
  }

  /// Stamps the run length and drops a trailing unclosed interval (only
  /// possible when the recorded run trapped mid-instruction).
  void finalize(std::uint64_t run_cycles);

  /// The interval covering `cycle`, or nullptr for an idle/barrier cycle.
  const LiveInterval* at(std::uint64_t cycle) const;

  const std::vector<LiveInterval>& intervals() const { return intervals_; }
  std::uint64_t total_cycles() const { return total_cycles_; }

  /// Cycles the static instruction at `pc` occupied the machine over the
  /// whole run (residency numerator for AVF-style weighting).
  std::uint64_t live_cycles_at_pc(std::uint64_t pc) const;

 private:
  std::vector<LiveInterval> intervals_;
  std::uint64_t total_cycles_ = 0;
};

/// True when `op`'s datapath occupies module `m` (the functional-unit
/// mapping of the paper's Table I: FP32 ops in the FP32 FU, INT32 ops in
/// the INT FU, transcendental ops in the SFU + its controller; every
/// instruction traverses the scheduler and the pipeline registers).
bool unit_occupied(Module m, isa::Opcode op);

/// Joins the golden timeline with a fault cycle: identifies the live
/// dynamic instruction (if any), its pipeline phase at that cycle, and
/// whether the faulted module was busy with it.
FaultSiteContext resolve_fault_site(const LivenessTimeline& timeline,
                                    std::uint64_t cycle, Module module);

}  // namespace gpufi::rtl
