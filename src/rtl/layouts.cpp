#include "rtl/layouts.hpp"

#include <string>

namespace gpufi::rtl {

namespace {
std::string idx(const char* base, unsigned i) {
  return std::string(base) + "[" + std::to_string(i) + "]";
}
std::string idx2(const char* base, unsigned i, unsigned j) {
  return std::string(base) + "[" + std::to_string(i) + "][" +
         std::to_string(j) + "]";
}
constexpr auto kData = FieldRole::Data;
constexpr auto kCtl = FieldRole::Control;
}  // namespace

SchedulerLayout::SchedulerLayout() {
  for (unsigned w = 0; w < kMaxWarps; ++w) {
    for (unsigned e = 0; e < kStackDepth; ++e) {
      warp[w].stack[e].mask = layout.add(idx2("stack_mask", w, e), 32, kCtl);
      warp[w].stack[e].pc = layout.add(idx2("stack_pc", w, e), 13, kCtl);
      warp[w].stack[e].rpc = layout.add(idx2("stack_rpc", w, e), 13, kCtl);
    }
    warp[w].depth = layout.add(idx("stack_depth", w), 4, kCtl);
    warp[w].state = layout.add(idx("warp_state", w), 2, kCtl);
  }
  fetch_pc = layout.add("fetch_pc", 13, kCtl);
  cur_warp = layout.add("cur_warp", 3, kCtl);
  beat = layout.add("beat", 2, kCtl);
  rr_ptr = layout.add("rr_ptr", 3, kCtl);
  barrier_mask = layout.add("barrier_mask", kMaxWarps, kCtl);
  barrier_active = layout.add("barrier_active", 1, kCtl);
  for (unsigned p = 0; p < 8; ++p)
    param[p] = layout.add(idx("param", p), 32, kCtl);
  ntid_x = layout.add("ntid_x", 16, kCtl);
  ntid_y = layout.add("ntid_y", 16, kCtl);
  ctaid_x = layout.add("ctaid_x", 5, kCtl);
  ctaid_y = layout.add("ctaid_y", 4, kCtl);
  ib_op = layout.add("ib_op", 6, kCtl);
  ib_dst = layout.add("ib_dst", 6, kCtl);
  ib_akind = layout.add("ib_akind", 2, kCtl);
  ib_aval = layout.add("ib_aval", 32, kData);
  ib_bkind = layout.add("ib_bkind", 2, kCtl);
  ib_bval = layout.add("ib_bval", 32, kData);
  ib_ckind = layout.add("ib_ckind", 2, kCtl);
  ib_cval = layout.add("ib_cval", 32, kData);
  ib_imm = layout.add("ib_imm", 32, kData);
  ib_target = layout.add("ib_target", 13, kCtl);
  ib_reconv = layout.add("ib_reconv", 13, kCtl);
  ib_cmp = layout.add("ib_cmp", 3, kCtl);
  ib_pred = layout.add("ib_pred", 3, kCtl);
  ib_predneg = layout.add("ib_predneg", 1, kCtl);
  issue_valid = layout.add("issue_valid", 1, kCtl);
  exec_mask = layout.add("exec_mask", 32, kCtl);
  spare = layout.add("seq_spare", 1, kCtl);
}

IntFuLayout::IntFuLayout() {
  for (unsigned l = 0; l < kLanes; ++l) {
    lane[l].a = layout.add(idx("a", l), 32, kData);
    lane[l].b = layout.add(idx("b", l), 32, kData);
    lane[l].c = layout.add(idx("c", l), 32, kData);
    lane[l].prod = layout.add(idx("prod", l), 64, kData);
    lane[l].sum = layout.add(idx("sum", l), 32, kData);
  }
  op = layout.add("op", 2, kCtl);
  valid = layout.add("stage_valid", 3, kCtl);
  busy = layout.add("busy", 1, kCtl);
}

Fp32FuLayout::Fp32FuLayout() {
  for (unsigned l = 0; l < kLanes; ++l) {
    Lane& n = lane[l];
    n.l_a = layout.add(idx("l_a", l), 32, kData);
    n.l_b = layout.add(idx("l_b", l), 32, kData);
    n.l_c = layout.add(idx("l_c", l), 32, kData);
    n.s1_sa = layout.add(idx("s1_sa", l), 1, kData);
    n.s1_sb = layout.add(idx("s1_sb", l), 1, kData);
    n.s1_sc = layout.add(idx("s1_sc", l), 1, kData);
    n.s1_ea = layout.add(idx("s1_ea", l), 9, kData);
    n.s1_eb = layout.add(idx("s1_eb", l), 9, kData);
    n.s1_ec = layout.add(idx("s1_ec", l), 9, kData);
    n.s1_ma = layout.add(idx("s1_ma", l), 24, kData);
    n.s1_mb = layout.add(idx("s1_mb", l), 24, kData);
    n.s1_mc = layout.add(idx("s1_mc", l), 24, kData);
    n.s1_clsa = layout.add(idx("s1_clsa", l), 2, kData);
    n.s1_clsb = layout.add(idx("s1_clsb", l), 2, kData);
    n.s1_clsc = layout.add(idx("s1_clsc", l), 2, kData);
    n.s1_op = layout.add(idx("s1_op", l), 2, kCtl);
    n.s2_prod = layout.add(idx("s2_prod", l), 48, kData);
    n.s2_expp = layout.add(idx("s2_expp", l), 11, kData);
    n.s2_signp = layout.add(idx("s2_signp", l), 1, kData);
    n.s2_clsp = layout.add(idx("s2_clsp", l), 2, kData);
    n.s2_sc = layout.add(idx("s2_sc", l), 1, kData);
    n.s2_ec = layout.add(idx("s2_ec", l), 9, kData);
    n.s2_mc = layout.add(idx("s2_mc", l), 24, kData);
    n.s2_clsc = layout.add(idx("s2_clsc", l), 2, kData);
    n.s2_special = layout.add(idx("s2_special", l), 1, kData);
    n.s2_sbits = layout.add(idx("s2_sbits", l), 32, kData);
    n.s2_op = layout.add(idx("s2_op", l), 2, kCtl);
    n.s3_sumlo = layout.add(idx("s3_sumlo", l), 64, kData);
    n.s3_sumhi = layout.add(idx("s3_sumhi", l), 12, kData);
    n.s3_expr = layout.add(idx("s3_expr", l), 11, kData);
    n.s3_signr = layout.add(idx("s3_signr", l), 1, kData);
    n.s3_sticky = layout.add(idx("s3_sticky", l), 1, kData);
    n.s3_special = layout.add(idx("s3_special", l), 1, kData);
    n.s3_sbits = layout.add(idx("s3_sbits", l), 32, kData);
    n.s3_zero = layout.add(idx("s3_zero", l), 1, kData);
    n.s3_signp = layout.add(idx("s3_signp", l), 1, kData);
    n.s3_signc = layout.add(idx("s3_signc", l), 1, kData);
    n.s3_cancel = layout.add(idx("s3_cancel", l), 1, kData);
    n.s3_op = layout.add(idx("s3_op", l), 2, kCtl);
    n.s4_res = layout.add(idx("s4_res", l), 32, kData);
    n.s4_valid = layout.add(idx("s4_valid", l), 1, kCtl);
  }
  stage_valid = layout.add("stage_valid", 4, kCtl);
  busy = layout.add("busy", 1, kCtl);
}

SfuLayout::SfuLayout() {
  for (unsigned u = 0; u < kSfuUnits; ++u) {
    for (unsigned s = 0; s < kSfuWidth; ++s) {
      SubLane& n = unit[u][s];
      const unsigned id = u * kSfuWidth + s;
      n.in_x = layout.add(idx("in_x", id), 32, kData);
      n.in_func = layout.add(idx("in_func", id), 1, kCtl);
      n.in_valid = layout.add(idx("in_valid", id), 1, kCtl);
      n.in_lane = layout.add(idx("in_lane", id), 5, kCtl);
      n.rr_s = layout.add(idx("rr_s", id), 33, kData);
      n.rr_c = layout.add(idx("rr_c", id), 33, kData);
      n.s2_q = layout.add(idx("s2_q", id), 2, kData);
      n.s2_neg = layout.add(idx("s2_neg", id), 1, kData);
      n.s2_k = layout.add(idx("s2_k", id), 12, kData);
      n.s2_special = layout.add(idx("s2_special", id), 1, kData);
      n.s2_sbits = layout.add(idx("s2_sbits", id), 32, kData);
      n.s2_func = layout.add(idx("s2_func", id), 1, kCtl);
      n.s2_valid = layout.add(idx("s2_valid", id), 1, kCtl);
      n.s2_lane = layout.add(idx("s2_lane", id), 5, kCtl);
      n.s3_idx = layout.add(idx("s3_idx", id), 7, kData);
      n.s3_dx = layout.add(idx("s3_dx", id), 26, kData);
      n.s3_c0 = layout.add(idx("s3_c0", id), 42, kData);
      n.s3_c1 = layout.add(idx("s3_c1", id), 36, kData);
      n.s3_c2 = layout.add(idx("s3_c2", id), 28, kData);
      n.s3_q = layout.add(idx("s3_q", id), 2, kData);
      n.s3_neg = layout.add(idx("s3_neg", id), 1, kData);
      n.s3_k = layout.add(idx("s3_k", id), 12, kData);
      n.s3_special = layout.add(idx("s3_special", id), 1, kData);
      n.s3_sbits = layout.add(idx("s3_sbits", id), 32, kData);
      n.s3_func = layout.add(idx("s3_func", id), 1, kCtl);
      n.s3_valid = layout.add(idx("s3_valid", id), 1, kCtl);
      n.s3_lane = layout.add(idx("s3_lane", id), 5, kCtl);
      n.s4_pp1s = layout.add(idx("s4_pp1s", id), 64, kData);
      n.s4_pp1c = layout.add(idx("s4_pp1c", id), 64, kData);
      n.s4_pp2s = layout.add(idx("s4_pp2s", id), 56, kData);
      n.s4_pp2c = layout.add(idx("s4_pp2c", id), 56, kData);
      n.s4_c1n = layout.add(idx("s4_c1n", id), 1, kData);
      n.s4_c2n = layout.add(idx("s4_c2n", id), 1, kData);
      n.s4_dx = layout.add(idx("s4_dx", id), 26, kData);
      n.s4_c0 = layout.add(idx("s4_c0", id), 42, kData);
      n.s4_q = layout.add(idx("s4_q", id), 2, kData);
      n.s4_neg = layout.add(idx("s4_neg", id), 1, kData);
      n.s4_k = layout.add(idx("s4_k", id), 12, kData);
      n.s4_special = layout.add(idx("s4_special", id), 1, kData);
      n.s4_sbits = layout.add(idx("s4_sbits", id), 32, kData);
      n.s4_func = layout.add(idx("s4_func", id), 1, kCtl);
      n.s4_valid = layout.add(idx("s4_valid", id), 1, kCtl);
      n.s4_lane = layout.add(idx("s4_lane", id), 5, kCtl);
      n.s5_acc = layout.add(idx("s5_acc", id), 44, kData);
      n.s5_q = layout.add(idx("s5_q", id), 2, kData);
      n.s5_neg = layout.add(idx("s5_neg", id), 1, kData);
      n.s5_k = layout.add(idx("s5_k", id), 12, kData);
      n.s5_special = layout.add(idx("s5_special", id), 1, kData);
      n.s5_sbits = layout.add(idx("s5_sbits", id), 32, kData);
      n.s5_func = layout.add(idx("s5_func", id), 1, kCtl);
      n.s5_valid = layout.add(idx("s5_valid", id), 1, kCtl);
      n.s5_lane = layout.add(idx("s5_lane", id), 5, kCtl);
      n.s6_res = layout.add(idx("s6_res", id), 32, kData);
      n.s6_valid = layout.add(idx("s6_valid", id), 1, kCtl);
      n.s6_lane = layout.add(idx("s6_lane", id), 5, kCtl);
    }
  }
}

SfuCtlLayout::SfuCtlLayout() {
  for (unsigned q = 0; q < kSfuQueue; ++q) {
    queue[q].lane = layout.add(idx("q_lane", q), 5, kCtl);
    queue[q].valid = layout.add(idx("q_valid", q), 1, kCtl);
    queue[q].func = layout.add(idx("q_func", q), 1, kCtl);
  }
  head = layout.add("head", 4, kCtl);
  tail = layout.add("tail", 4, kCtl);
  count = layout.add("count", 5, kCtl);
  for (unsigned u = 0; u < kSfuUnits; ++u)
    grant_lane[u] = layout.add(idx("grant_lane", u), 5, kCtl);
  grant_valid = layout.add("grant_valid", 2, kCtl);
  collected = layout.add("collected", 32, kCtl);
  done_count = layout.add("done_count", 6, kCtl);
  rounds = layout.add("rounds", 2, kCtl);
  busy = layout.add("busy", 1, kCtl);
  for (unsigned u = 0; u < kSfuUnits; ++u)
    inflight[u] = layout.add(idx("inflight", u), 3, kCtl);
  state = layout.add("state", 4, kCtl);
}

PipelineLayout::PipelineLayout() {
  for (unsigned t = 0; t < 32; ++t) oc_a[t] = layout.add(idx("oc_a", t), 32, kData);
  for (unsigned t = 0; t < 32; ++t) oc_b[t] = layout.add(idx("oc_b", t), 32, kData);
  for (unsigned t = 0; t < 32; ++t) oc_c[t] = layout.add(idx("oc_c", t), 32, kData);
  for (unsigned t = 0; t < 32; ++t) rc[t] = layout.add(idx("rc", t), 32, kData);
  rc_valid = layout.add("rc_valid", 32, kCtl);
  for (unsigned s = 0; s < kStages; ++s) {
    Stage& st = stage[s];
    for (unsigned l = 0; l < kLanes; ++l) {
      st.lane[l].a = layout.add(idx2("stg_a", s, l), 32, kData);
      st.lane[l].b = layout.add(idx2("stg_b", s, l), 32, kData);
      st.lane[l].c = layout.add(idx2("stg_c", s, l), 32, kData);
      st.lane[l].res = layout.add(idx2("stg_res", s, l), 32, kData);
    }
    st.op = layout.add(idx("stg_op", s), 6, kCtl);
    st.dst = layout.add(idx("stg_dst", s), 6, kCtl);
    st.warp = layout.add(idx("stg_warp", s), 3, kCtl);
    st.beat = layout.add(idx("stg_beat", s), 2, kCtl);
    st.valid = layout.add(idx("stg_valid", s), 1, kCtl);
    st.cmp = layout.add(idx("stg_cmp", s), 3, kCtl);
    st.akind = layout.add(idx("stg_akind", s), 2, kCtl);
    st.bkind = layout.add(idx("stg_bkind", s), 2, kCtl);
    st.ckind = layout.add(idx("stg_ckind", s), 2, kCtl);
    st.imm = layout.add(idx("stg_imm", s), 32, kCtl);
    st.wen = layout.add(idx("stg_wen", s), kLanes, kCtl);
    st.emask = layout.add(idx("stg_emask", s), 32, kCtl);
  }
  exec_mask = layout.add("exec_mask", 32, kCtl);
  wb_mask = layout.add("wb_mask", 32, kCtl);
  for (unsigned w = 0; w < kMaxWarps; ++w)
    scoreboard[w] = layout.add(idx("scoreboard", w), 32, kCtl);
  mem_valid = layout.add("mem_valid", 32, kCtl);
  pred_stage = layout.add("pred_stage", 32, kCtl);
  selp_stage = layout.add("selp_stage", 32, kCtl);
}

const StateLayout& Layouts::of(Module m) const {
  switch (m) {
    case Module::Fp32Fu: return fp32_fu.layout;
    case Module::IntFu: return int_fu.layout;
    case Module::Sfu: return sfu.layout;
    case Module::SfuCtl: return sfu_ctl.layout;
    case Module::Scheduler: return scheduler.layout;
    case Module::PipelineRegs: return pipeline.layout;
  }
  return pipeline.layout;
}

const Layouts& layouts() {
  static const Layouts instance;
  return instance;
}

}  // namespace gpufi::rtl
