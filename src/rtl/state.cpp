#include "rtl/state.hpp"

#include <stdexcept>

namespace gpufi::rtl {

std::string_view module_name(Module m) {
  switch (m) {
    case Module::Fp32Fu: return "FP32";
    case Module::IntFu: return "INT";
    case Module::Sfu: return "SFU";
    case Module::SfuCtl: return "SFU controller";
    case Module::Scheduler: return "Scheduler controller";
    case Module::PipelineRegs: return "Pipeline Registers";
  }
  return "?";
}

FieldRef StateLayout::add(std::string name, unsigned width, FieldRole role) {
  if (width == 0 || width > 64)
    throw std::invalid_argument("StateLayout::add: bad width for " + name);
  FieldInfo info;
  info.name = std::move(name);
  info.offset = static_cast<std::uint32_t>(bits_);
  info.width = static_cast<std::uint16_t>(width);
  info.role = role;
  fields_.push_back(info);
  bits_ += width;
  if (role == FieldRole::Data) data_bits_ += width;
  return FieldRef{info.offset, info.width};
}

void ModuleState::set_tracking(bool on, std::uint64_t salt) {
  track_ = on;
  if (!on) return;
  salt_ = salt;
  digest_ = 0;
  for (const auto& fi : layout_->fields())
    digest_ ^= state_digest_mix(salt_, fi.offset,
                                bits_.get_field(fi.offset, fi.width));
}

void ModuleState::load(const BitVector& bits, std::uint64_t digest) {
  if (bits.size() != bits_.size())
    throw std::invalid_argument("ModuleState::load: size mismatch");
  bits_ = bits;
  digest_ = digest;
}

const FieldInfo& StateLayout::field_at(std::size_t bit) const {
  // Binary search over the sorted field offsets.
  std::size_t lo = 0, hi = fields_.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (fields_[mid].offset <= bit)
      lo = mid;
    else
      hi = mid;
  }
  if (fields_.empty() || bit >= bits_)
    throw std::out_of_range("StateLayout::field_at");
  return fields_[lo];
}

}  // namespace gpufi::rtl
