#include "rtl/liveness.hpp"

#include <algorithm>

#include "rtl/layouts.hpp"

namespace gpufi::rtl {

std::string_view stage_name(PipeStage s) {
  switch (s) {
    case PipeStage::Idle: return "idle";
    case PipeStage::Fetch: return "fetch";
    case PipeStage::Guard: return "guard";
    case PipeStage::Execute: return "execute";
    case PipeStage::Writeback: return "writeback";
    case PipeStage::Retire: return "retire";
  }
  return "?";
}

void LivenessTimeline::finalize(std::uint64_t run_cycles) {
  total_cycles_ = run_cycles;
  // A trapped run can leave the last interval unclosed (end == start);
  // extend it to the end of the run so the trapping instruction still
  // attributes — it *was* the one in flight when the machine died.
  if (!intervals_.empty() && intervals_.back().end <= intervals_.back().start)
    intervals_.back().end = std::max(run_cycles, intervals_.back().start + 1);
}

const LiveInterval* LivenessTimeline::at(std::uint64_t cycle) const {
  // First interval with start > cycle; its predecessor is the only
  // candidate (intervals are sorted and non-overlapping).
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), cycle,
      [](std::uint64_t c, const LiveInterval& iv) { return c < iv.start; });
  if (it == intervals_.begin()) return nullptr;
  --it;
  if (cycle < it->end) return &*it;
  return nullptr;
}

std::uint64_t LivenessTimeline::live_cycles_at_pc(std::uint64_t pc) const {
  std::uint64_t total = 0;
  for (const auto& iv : intervals_)
    if (iv.pc == pc && iv.end > iv.start) total += iv.end - iv.start;
  return total;
}

namespace {

bool is_scheduler_op(isa::Opcode op) {
  return op == isa::Opcode::BRA || op == isa::Opcode::EXIT ||
         op == isa::Opcode::BAR || op == isa::Opcode::NOP;
}

}  // namespace

bool unit_occupied(Module m, isa::Opcode op) {
  switch (m) {
    case Module::Scheduler:
    case Module::PipelineRegs:
      // Every instruction is latched by the scheduler and traverses the
      // pipeline registers, whatever its datapath.
      return true;
    case Module::Fp32Fu:
      return isa::op_class(op) == isa::OpClass::Fp32;
    case Module::IntFu:
      return isa::op_class(op) == isa::OpClass::Int32;
    case Module::Sfu:
    case Module::SfuCtl:
      return isa::op_class(op) == isa::OpClass::Special;
  }
  return false;
}

FaultSiteContext resolve_fault_site(const LivenessTimeline& timeline,
                                    std::uint64_t cycle, Module module) {
  FaultSiteContext ctx;
  const LiveInterval* iv = timeline.at(cycle);
  if (!iv) return ctx;  // idle / barrier-release cycle
  ctx.live = true;
  ctx.dyn_index = iv->dyn_index;
  ctx.pc = iv->pc;
  ctx.cta = iv->cta;
  ctx.warp = iv->warp;
  ctx.op = iv->op;
  ctx.unit_busy = unit_occupied(module, iv->op);
  // Derive the pipeline phase from the cycle's offset in the interval.
  // The interpreter's micro-sequence per instruction is: fetch tick,
  // guard tick, then either the scheduler resolve tick (control ops) or
  // the data pipeline (issue/operand/EX beats, kBeats writeback ticks,
  // one retire/PC-advance tick).
  const std::uint64_t offset = cycle - iv->start;
  const std::uint64_t len = iv->end - iv->start;
  if (offset == 0) {
    ctx.stage = PipeStage::Fetch;
  } else if (offset == 1) {
    ctx.stage = PipeStage::Guard;
  } else if (is_scheduler_op(iv->op)) {
    ctx.stage = PipeStage::Execute;  // the single resolve_control tick
  } else if (offset == len - 1) {
    ctx.stage = PipeStage::Retire;
  } else if (len > kBeats + 1 && offset >= len - 1 - kBeats) {
    ctx.stage = PipeStage::Writeback;
  } else {
    ctx.stage = PipeStage::Execute;
  }
  return ctx;
}

}  // namespace gpufi::rtl
