#pragma once

#include <array>

#include "rtl/state.hpp"

namespace gpufi::rtl {

/// Geometry of the modelled SM (a G80-style streaming multiprocessor).
constexpr unsigned kLanes = 8;        ///< scalar processors (SPs) per SM
constexpr unsigned kMaxWarps = 6;     ///< warp slots in the scheduler
constexpr unsigned kStackDepth = 8;   ///< SIMT reconvergence stack entries
constexpr unsigned kSfuUnits = 2;     ///< special function units per SM
constexpr unsigned kSfuWidth = 2;     ///< sublanes per SFU (2-wide pipelines)
constexpr unsigned kSfuQueue = 16;    ///< SFU controller queue entries
constexpr unsigned kBeats = 4;        ///< a 32-thread warp issues in 4 beats
constexpr unsigned kStages = 5;       ///< pipeline stages OF,EX1..EX3,WB

/// Warp scheduler state machine values (stored in 2 flip-flops per warp).
enum class WarpState : std::uint8_t { Ready = 0, AtBarrier = 1, Done = 2 };

// ---------------------------------------------------------------------------
// Field-handle structs: one per module, built against its StateLayout. The
// handles give sm.cpp readable named access while every bit stays visible to
// the fault injector.
// ---------------------------------------------------------------------------

/// Scheduler controller: per-warp SIMT stacks plus the fetch/issue front end
/// (fetched-instruction buffer, guard-mask latch, barrier bookkeeping).
struct SchedulerLayout {
  struct WarpSlot {
    struct Entry {
      FieldRef mask, pc, rpc;
    };
    std::array<Entry, kStackDepth> stack;
    FieldRef depth;   ///< live stack entries (0 = warp never started)
    FieldRef state;   ///< WarpState encoding
  };
  std::array<WarpSlot, kMaxWarps> warp;

  FieldRef fetch_pc;        ///< PC of the instruction being executed
  FieldRef cur_warp;        ///< warp selected by the issue FSM
  FieldRef beat;            ///< beat counter of the in-flight warp
  FieldRef rr_ptr;          ///< round-robin scheduling pointer
  FieldRef barrier_mask;    ///< warps arrived at the barrier
  FieldRef barrier_active;

  /// Kernel parameter bank (buffer base addresses etc.): the "memory
  /// addresses stored in the controller" whose corruption the paper flags
  /// as a scheduler DUE/multi-thread source.
  std::array<FieldRef, 8> param;
  FieldRef ntid_x, ntid_y;      ///< CTA dimension latches
  FieldRef ctaid_x, ctaid_y;    ///< current CTA index latches

  // Fetched-and-decoded instruction buffer.
  FieldRef ib_op, ib_dst;
  FieldRef ib_akind, ib_aval, ib_bkind, ib_bval, ib_ckind, ib_cval;
  FieldRef ib_imm, ib_target, ib_reconv, ib_cmp, ib_pred, ib_predneg;
  FieldRef issue_valid;
  FieldRef exec_mask;       ///< guard-evaluated execution mask
  FieldRef spare;

  StateLayout layout;
  SchedulerLayout();
};

/// Integer functional unit: 8 unified MAD lanes (d = lo32(a*b) + c).
struct IntFuLayout {
  struct Lane {
    FieldRef a, b, c;  ///< operand latches
    FieldRef prod;     ///< 64-bit product register
    FieldRef sum;      ///< adder output register
  };
  std::array<Lane, kLanes> lane;
  FieldRef op;        ///< operation latch (broadcast)
  FieldRef valid;     ///< stage valid bits
  FieldRef busy;

  StateLayout layout;
  IntFuLayout();
};

/// FP32 functional unit: 8 unified FMA lanes with four live stage-register
/// banks mirroring fparith's FmaS1..S4 records.
struct Fp32FuLayout {
  struct Lane {
    FieldRef l_a, l_b, l_c;  ///< raw operand latches
    // S1: unpacked operands.
    FieldRef s1_sa, s1_sb, s1_sc;
    FieldRef s1_ea, s1_eb, s1_ec;     ///< signed exponents (9 bits)
    FieldRef s1_ma, s1_mb, s1_mc;     ///< 24-bit mantissas
    FieldRef s1_clsa, s1_clsb, s1_clsc;
    FieldRef s1_op;
    // S2: product + pass-through addend.
    FieldRef s2_prod, s2_expp, s2_signp, s2_clsp;
    FieldRef s2_sc, s2_ec, s2_mc, s2_clsc;
    FieldRef s2_special, s2_sbits, s2_op;
    // S3: wide aligned sum.
    FieldRef s3_sumlo, s3_sumhi, s3_expr, s3_signr, s3_sticky;
    FieldRef s3_special, s3_sbits, s3_zero, s3_signp, s3_signc, s3_cancel,
        s3_op;
    // S4: rounded result.
    FieldRef s4_res, s4_valid;
  };
  std::array<Lane, kLanes> lane;
  FieldRef stage_valid;
  FieldRef busy;

  StateLayout layout;
  Fp32FuLayout();
};

/// Special function unit pair. Each SFU is a 2-wide (two sublanes), 6-deep
/// pipeline: IN (operand latch) -> S2 (range-reduced argument held as a
/// redundant carry-save pair) -> S3 (table lookup) -> S4 (carry-save
/// interpolation products) -> S5 (accumulate) -> S6 (packed result).
struct SfuLayout {
  struct SubLane {
    FieldRef in_x, in_func, in_valid, in_lane;
    FieldRef rr_s, rr_c;  ///< carry-save split of the reduced argument
    FieldRef s2_q, s2_neg, s2_k, s2_special, s2_sbits, s2_func, s2_valid,
        s2_lane;
    FieldRef s3_idx, s3_dx, s3_c0, s3_c1, s3_c2;
    FieldRef s3_q, s3_neg, s3_k, s3_special, s3_sbits, s3_func, s3_valid,
        s3_lane;
    FieldRef s4_pp1s, s4_pp1c, s4_pp2s, s4_pp2c, s4_c1n, s4_c2n, s4_dx,
        s4_c0;
    FieldRef s4_q, s4_neg, s4_k, s4_special, s4_sbits, s4_func, s4_valid,
        s4_lane;
    FieldRef s5_acc;
    FieldRef s5_q, s5_neg, s5_k, s5_special, s5_sbits, s5_func, s5_valid,
        s5_lane;
    FieldRef s6_res, s6_valid, s6_lane;
  };
  std::array<std::array<SubLane, kSfuWidth>, kSfuUnits> unit;

  StateLayout layout;
  SfuLayout();
};

/// SFU controller: request queue plus grant/collection bookkeeping that
/// shares the two SFUs among the warp's 32 threads. Faults here are the
/// paper's source of multi-thread corruption for FSIN/FEXP.
struct SfuCtlLayout {
  struct Slot {
    FieldRef lane, valid, func;
  };
  std::array<Slot, kSfuQueue> queue;
  FieldRef head, tail, count;
  std::array<FieldRef, kSfuUnits> grant_lane;
  FieldRef grant_valid;
  FieldRef collected;     ///< result-arrival mask (32)
  FieldRef done_count;    ///< results retired (completion is count-based)
  FieldRef rounds;        ///< dispatch round counter
  FieldRef busy;
  std::array<FieldRef, kSfuUnits> inflight;
  FieldRef state;

  StateLayout layout;
  SfuCtlLayout();
};

/// Pipeline registers: warp-wide operand/result collectors plus per-stage
/// lane latches and the per-stage decoded-control words. Data fields hold
/// operands for each parallel core; control fields steer them (the paper's
/// ~84%/~16% split).
struct PipelineLayout {
  // Warp-wide collectors, one slot per thread.
  std::array<FieldRef, 32> oc_a, oc_b, oc_c;   ///< operand collector
  std::array<FieldRef, 32> rc;                 ///< result collector
  FieldRef rc_valid;                           ///< per-thread result arrived

  // Per-stage lane latches (stage 0 = OF .. stage 4 = WB).
  struct Stage {
    struct Lane {
      FieldRef a, b, c, res;
    };
    std::array<Lane, kLanes> lane;
    // Decoded control word travelling with the stage.
    FieldRef op, dst, warp, beat, valid, cmp;
    FieldRef akind, bkind, ckind;
    FieldRef imm;
    FieldRef wen;    ///< lane write enables
    FieldRef emask;  ///< full warp execution mask copy
  };
  std::array<Stage, kStages> stage;

  // Warp-wide control.
  FieldRef exec_mask;   ///< execution mask of the in-flight instruction
  FieldRef wb_mask;     ///< threads whose results will be written back
  std::array<FieldRef, kMaxWarps> scoreboard;  ///< per-warp dest-reg busy bits
  FieldRef mem_valid;   ///< per-thread pending memory request
  FieldRef pred_stage;  ///< ISETP/FSETP predicate results staging (32)
  FieldRef selp_stage;  ///< SEL predicate operand staging (32)

  StateLayout layout;
  PipelineLayout();
};

/// All six module layouts, built once.
struct Layouts {
  SchedulerLayout scheduler;
  IntFuLayout int_fu;
  Fp32FuLayout fp32_fu;
  SfuLayout sfu;
  SfuCtlLayout sfu_ctl;
  PipelineLayout pipeline;

  const StateLayout& of(Module m) const;
};

/// Singleton accessor (layouts are immutable after construction).
const Layouts& layouts();

}  // namespace gpufi::rtl
