#include "rtl/sm.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <functional>
#include <stdexcept>

#include "fparith/fp32.hpp"
#include "fparith/sfu.hpp"
#include "isa/semantics.hpp"

namespace gpufi::rtl {

namespace {

using isa::CmpOp;
using isa::Instr;
using isa::Opcode;
using isa::OperandKind;

constexpr std::uint64_t kRpcNone = 0x1FFF;  // 13-bit PC sentinel
constexpr std::uint64_t kUnlimitedCycles = std::uint64_t{1} << 62;

struct TrapExc {
  const char* reason;
};
struct WatchdogExc {};
struct ConvergedExc {};

/// Optional tracing/resume behaviour of one Machine run. The plain run
/// paths pass the default-constructed context (all features off).
struct RunCtx {
  // Golden-trace recording.
  GoldenTrace* record = nullptr;
  std::uint64_t interval = 1;  ///< min cycles between ladder rungs
  std::vector<std::uint64_t> capture_at;  ///< sorted; mid-instruction grabs
  std::function<SmCheckpoint(std::uint64_t, unsigned, bool)> capture;
  // Convergence early-exit against a recorded golden trace.
  const GoldenTrace* reference = nullptr;
  std::uint64_t check_interval = 16;
  // Fast-forward: re-enter the scheduler loop at this restored checkpoint.
  const SmCheckpoint* resume_from = nullptr;
  // Liveness recording: per-dynamic-instruction occupancy intervals for
  // golden-run attribution. Never set together with a fault.
  LivenessTimeline* liveness = nullptr;
};

const RunCtx kPlainRun;

/// True if the opcode executes entirely in the scheduler controller.
bool is_scheduler_op(Opcode op) {
  return op == Opcode::BRA || op == Opcode::EXIT || op == Opcode::BAR ||
         op == Opcode::NOP;
}

bool writes_gpr_op(Opcode op) {
  Instr i;
  i.op = op;
  return i.writes_gpr();
}

/// The per-run interpreter: owns the micro-sequencing, while every
/// architectural latch it touches lives in the faultable ModuleStates.
class Machine {
 public:
  Machine(ModuleState& sched, ModuleState& intfu, ModuleState& fpfu,
          ModuleState& sfu, ModuleState& sfuctl, ModuleState& pipe,
          TrackedArray<std::uint32_t>& global,
          TrackedArray<std::uint32_t>& regs,
          TrackedArray<std::uint8_t>& preds,
          TrackedArray<std::uint32_t>& shared, const isa::Program& prog,
          const GridDims& dims, const std::optional<FaultSpec>& fault,
          std::uint64_t max_cycles, const RunCtx& ctx)
      : sched_(sched),
        intfu_(intfu),
        fpfu_(fpfu),
        sfu_(sfu),
        sfuctl_(sfuctl),
        pipe_(pipe),
        global_(global),
        regs_(regs),
        preds_(preds),
        shared_(shared),
        prog_(prog),
        dims_(dims),
        fault_(fault),
        max_cycles_(max_cycles),
        ctx_(ctx),
        L(layouts()) {}

  RunResult run() {
    RunResult result;
    try {
      if (prog_.code.size() >= kRpcNone)
        throw TrapExc{"program too large for 13-bit PC"};
      unsigned start_cta = 0;
      if (ctx_.resume_from) {
        // The checkpoint was captured at a scheduler quiescent point: the
        // restored banks already hold the launch latches, warp table and
        // memories, so execution re-enters the scheduler loop directly.
        cycle_ = ctx_.resume_from->cycle;
        start_cta = ctx_.resume_from->cta;
      } else {
        // Launch setup: kernel parameters and CTA dimensions are latched in
        // the scheduler controller (faultable, per the paper's observation
        // that the controller stores memory addresses).
        for (unsigned p = 0; p < 8; ++p)
          sched_.set(L.scheduler.param[p], prog_.params[p]);
        sched_.set(L.scheduler.ntid_x, dims_.block_x);
        sched_.set(L.scheduler.ntid_y, dims_.block_y);
      }
      for (unsigned cta = start_cta; cta < dims_.ctas(); ++cta)
        run_cta(cta, ctx_.resume_from != nullptr && cta == start_cta);
      result.status = RunStatus::Ok;
    } catch (const TrapExc& t) {
      result.status = RunStatus::Trap;
      result.trap_reason = t.reason;
    } catch (const WatchdogExc&) {
      result.status = RunStatus::Watchdog;
      result.trap_reason = "watchdog expired";
    } catch (const ConvergedExc&) {
      result.status = RunStatus::Ok;
      result.converged = true;
      result.cycles = ctx_.reference->result.cycles;
      return result;
    }
    result.cycles = cycle_;
    return result;
  }

 private:
  // ------------------------------------------------------------- utilities

  /// Drives the injected fault at a clock edge. `fault_pending_` stays true
  /// for as long as the fault can still act: until the flip for Transient,
  /// until the window closes for the windowed models — and forever for a
  /// permanent fault (duration 0), which is what keeps the convergence
  /// early-exit gated off for the whole run.
  void drive_fault() {
    const FaultSpec& f = *fault_;
    if (cycle_ < f.cycle) return;
    if (f.model == FaultModel::Transient) {
      module_of(f.module).flip(f.bit);
      fault_pending_ = false;
      return;
    }
    if (f.duration != 0 && cycle_ >= f.cycle + f.duration) {
      // Window closed: the last forced/flipped value stays in the flip-flop
      // until normal operation overwrites it (transient tail semantics).
      fault_pending_ = false;
      return;
    }
    switch (f.model) {
      case FaultModel::StuckAt0:
      case FaultModel::StuckAt1:
        // Re-asserted at every clock edge inside the window, so any pipeline
        // write to the flip-flop is overridden on the next edge.
        module_of(f.module).force(f.bit, f.model == FaultModel::StuckAt1);
        break;
      case FaultModel::IntermittentBurst: {
        const std::uint64_t period = std::max<std::uint64_t>(1, f.period);
        if ((cycle_ - f.cycle) % period == 0)
          module_of(f.module).flip(f.bit);
        break;
      }
      case FaultModel::Transient:
        break;  // handled above
    }
  }

  /// Advances the global clock by one cycle; drives the injected fault
  /// (between cycles) and enforces the watchdog.
  void tick() {
    if (fault_ && fault_pending_) drive_fault();
    ++cycle_;
    if (cycle_ > max_cycles_) throw WatchdogExc{};
    if (ctx_.record && capture_idx_ < ctx_.capture_at.size() &&
        cycle_ >= ctx_.capture_at[capture_idx_]) {
      // Mid-instruction capture: restorable, but not resumable (the
      // interpreter's implicit control-flow position is not part of it).
      ctx_.record->checkpoints.push_back(ctx_.capture(cycle_, cta_, false));
      ++capture_idx_;
    }
  }

  /// Composite machine digest as used in the golden timeline: the Sm state
  /// components plus the CTA loop index (the only interpreter state that is
  /// live at a quiescent point besides the cycle counter, which keys the
  /// timeline itself).
  std::uint64_t timeline_digest() const {
    return sched_.digest() ^ intfu_.digest() ^ fpfu_.digest() ^
           sfu_.digest() ^ sfuctl_.digest() ^ pipe_.digest() ^
           global_.digest() ^ regs_.digest() ^ preds_.digest() ^
           shared_.digest() ^
           state_digest_mix(digest_salt(kSaltDomainCta), 0, cta_ + 1);
  }

  /// Called at the top of the scheduler loop — the one place where the
  /// interpreter keeps no implicit state, so the Sm members fully describe
  /// the machine. Records the golden trace and/or tests for convergence.
  void quiescent_point() {
    if (ctx_.record) {
      if (cycle_ >= next_ckpt_) {
        ctx_.record->checkpoints.push_back(ctx_.capture(cycle_, cta_, true));
        next_ckpt_ = cycle_ + ctx_.interval;
      }
      ctx_.record->digest_at.emplace(cycle_, timeline_digest());
    }
    if (ctx_.reference && !fault_pending_ && cycle_ >= next_check_) {
      const auto it = ctx_.reference->digest_at.find(cycle_);
      if (it != ctx_.reference->digest_at.end() &&
          it->second == timeline_digest())
        throw ConvergedExc{};
      next_check_ = cycle_ + ctx_.check_interval;
    }
  }

  ModuleState& module_of(Module m) {
    switch (m) {
      case Module::Fp32Fu: return fpfu_;
      case Module::IntFu: return intfu_;
      case Module::Sfu: return sfu_;
      case Module::SfuCtl: return sfuctl_;
      case Module::Scheduler: return sched_;
      case Module::PipelineRegs: return pipe_;
    }
    return pipe_;
  }

  Opcode read_op(FieldRef f, ModuleState& st) {
    const std::uint64_t v = st.get(f);
    if (v >= isa::kNumOpcodes) throw TrapExc{"illegal opcode"};
    return static_cast<Opcode>(v);
  }

  std::uint32_t rf(unsigned warp, unsigned lane, unsigned reg) const {
    return regs_[(warp * 32 + lane) * isa::kNumRegs + (reg & 31)];
  }
  std::uint8_t pf(unsigned warp, unsigned lane, unsigned p) const {
    return preds_[(warp * 32 + lane) * isa::kNumPreds + (p & 3)];
  }
  void set_rf(unsigned warp, unsigned lane, unsigned reg, std::uint32_t v) {
    regs_.store((warp * 32 + lane) * isa::kNumRegs + (reg & 31), v);
  }
  void set_pf(unsigned warp, unsigned lane, unsigned p, std::uint8_t v) {
    preds_.store((warp * 32 + lane) * isa::kNumPreds + (p & 3), v);
  }

  std::uint32_t sreg_value(unsigned warp, unsigned lane, std::uint32_t id) {
    const unsigned tid = warp * 32 + lane;
    const auto sreg = static_cast<isa::SReg>(id % 17);
    switch (sreg) {
      case isa::SReg::TID_X:
      case isa::SReg::TID_Y: {
        const auto nx = sched_.get(L.scheduler.ntid_x);
        if (nx == 0) throw TrapExc{"corrupt CTA dimension latch"};
        return sreg == isa::SReg::TID_X
                   ? static_cast<std::uint32_t>(tid % nx)
                   : static_cast<std::uint32_t>(tid / nx);
      }
      case isa::SReg::NTID_X:
        return static_cast<std::uint32_t>(sched_.get(L.scheduler.ntid_x));
      case isa::SReg::NTID_Y:
        return static_cast<std::uint32_t>(sched_.get(L.scheduler.ntid_y));
      case isa::SReg::CTAID_X:
        return static_cast<std::uint32_t>(sched_.get(L.scheduler.ctaid_x));
      case isa::SReg::CTAID_Y:
        return static_cast<std::uint32_t>(sched_.get(L.scheduler.ctaid_y));
      case isa::SReg::NCTAID_X: return dims_.grid_x;
      case isa::SReg::NCTAID_Y: return dims_.grid_y;
      case isa::SReg::LANEID: return lane;
      default: {
        const auto p = (id - static_cast<std::uint32_t>(isa::SReg::PARAM0)) %
                       isa::kNumParams;
        return static_cast<std::uint32_t>(sched_.get(L.scheduler.param[p]));
      }
    }
  }

  /// Resolves one operand descriptor from the scheduler instruction buffer.
  std::uint32_t resolve(FieldRef kind_f, FieldRef val_f, unsigned warp,
                        unsigned lane) {
    const auto kind = static_cast<OperandKind>(sched_.get(kind_f) & 3);
    const auto val = static_cast<std::uint32_t>(sched_.get(val_f));
    switch (kind) {
      case OperandKind::None: return 0;
      case OperandKind::Reg: return rf(warp, lane, val & 31);
      case OperandKind::Imm: return val;
      case OperandKind::Special: return sreg_value(warp, lane, val);
    }
    return 0;
  }

  // --------------------------------------------------------- CTA execution

  void run_cta(unsigned cta, bool resuming) {
    cta_ = cta;
    if (!resuming) {
      sched_.set(L.scheduler.ctaid_x, cta % dims_.grid_x);
      sched_.set(L.scheduler.ctaid_y, cta / dims_.grid_x);
      const unsigned tpc = dims_.threads_per_cta();
      const unsigned n_warps = (tpc + 31) / 32;
      if (n_warps > kMaxWarps) throw TrapExc{"too many warps per CTA"};

      regs_.clear();
      preds_.clear();
      shared_.clear();

      // Warp table power-on for this CTA.
      for (unsigned w = 0; w < kMaxWarps; ++w) {
        const auto& ws = L.scheduler.warp[w];
        if (w < n_warps) {
          std::uint32_t mask = 0;
          for (unsigned l = 0; l < 32 && w * 32 + l < tpc; ++l)
            mask |= 1u << l;
          sched_.set(ws.stack[0].mask, mask);
          sched_.set(ws.stack[0].pc, 0);
          sched_.set(ws.stack[0].rpc, kRpcNone);
          sched_.set(ws.depth, 1);
          sched_.set(ws.state, static_cast<std::uint64_t>(WarpState::Ready));
        } else {
          sched_.set(ws.depth, 0);
          sched_.set(ws.state, static_cast<std::uint64_t>(WarpState::Done));
        }
      }
      sched_.set(L.scheduler.barrier_mask, 0);
      sched_.set(L.scheduler.barrier_active, 0);
      sched_.set(L.scheduler.rr_ptr, 0);
    }

    while (true) {
      quiescent_point();
      // All warps done?
      bool all_done = true;
      for (unsigned w = 0; w < kMaxWarps; ++w) {
        const auto s = sched_.get(L.scheduler.warp[w].state);
        if (s == 3) throw TrapExc{"invalid warp state"};
        if (s != static_cast<std::uint64_t>(WarpState::Done)) all_done = false;
      }
      if (all_done) break;

      // Round-robin pick of a Ready warp.
      const auto rr = static_cast<unsigned>(sched_.get(L.scheduler.rr_ptr));
      int picked = -1;
      for (unsigned i = 0; i < kMaxWarps; ++i) {
        const unsigned w = (rr + i) % kMaxWarps;
        if (sched_.get(L.scheduler.warp[w].state) ==
            static_cast<std::uint64_t>(WarpState::Ready)) {
          picked = static_cast<int>(w);
          break;
        }
      }
      if (picked < 0) {
        // Nothing ready: release the barrier if every live warp arrived.
        bool any_running = false, any_barrier = false;
        for (unsigned w = 0; w < kMaxWarps; ++w) {
          const auto s = sched_.get(L.scheduler.warp[w].state);
          if (s == static_cast<std::uint64_t>(WarpState::AtBarrier))
            any_barrier = true;
          else if (s == static_cast<std::uint64_t>(WarpState::Ready))
            any_running = true;
        }
        // Release also consults the barrier arrival mask: a warp whose
        // arrival bit was lost keeps the barrier closed (-> watchdog DUE).
        bool arrivals_ok = true;
        const auto bmask = sched_.get(L.scheduler.barrier_mask);
        for (unsigned w = 0; w < kMaxWarps; ++w) {
          if (sched_.get(L.scheduler.warp[w].state) ==
                  static_cast<std::uint64_t>(WarpState::AtBarrier) &&
              !((bmask >> w) & 1))
            arrivals_ok = false;
        }
        if (any_barrier && !any_running && arrivals_ok) {
          for (unsigned w = 0; w < kMaxWarps; ++w) {
            const auto& ws = L.scheduler.warp[w];
            if (sched_.get(ws.state) ==
                static_cast<std::uint64_t>(WarpState::AtBarrier))
              sched_.set(ws.state,
                         static_cast<std::uint64_t>(WarpState::Ready));
          }
          sched_.set(L.scheduler.barrier_mask, 0);
          sched_.set(L.scheduler.barrier_active, 0);
        }
        tick();  // either barrier-release cycle or idle (watchdog will fire)
        continue;
      }
      sched_.set(L.scheduler.rr_ptr, (picked + 1) % kMaxWarps);
      step_warp(static_cast<unsigned>(picked));
    }
  }

  // ------------------------------------------------------ instruction step

  void step_warp(unsigned w) {
    const auto& S = L.scheduler;
    const auto& ws = S.warp[w];

    // FETCH: read the stack top, latch PC, fetch and decode into the
    // instruction buffer.
    const auto depth = sched_.get(ws.depth);
    if (depth == 0 || depth > kStackDepth) throw TrapExc{"corrupt SIMT stack"};
    const auto& top = ws.stack[depth - 1];
    const std::uint64_t pc = sched_.get(top.pc);
    if (pc >= prog_.code.size()) throw TrapExc{"invalid PC"};
    sched_.set(S.fetch_pc, pc);
    sched_.set(S.cur_warp, w);
    const Instr& instr = prog_.code[pc];
    if (ctx_.liveness)
      ctx_.liveness->begin(cycle_, static_cast<std::uint32_t>(cta_), w, pc,
                           instr.op);
    sched_.set(S.ib_op, static_cast<std::uint64_t>(instr.op));
    sched_.set(S.ib_dst, instr.dst);
    sched_.set(S.ib_akind, static_cast<std::uint64_t>(instr.a.kind));
    sched_.set(S.ib_aval, instr.a.value);
    sched_.set(S.ib_bkind, static_cast<std::uint64_t>(instr.b.kind));
    sched_.set(S.ib_bval, instr.b.value);
    sched_.set(S.ib_ckind, static_cast<std::uint64_t>(instr.c.kind));
    sched_.set(S.ib_cval, instr.c.value);
    sched_.set(S.ib_imm, static_cast<std::uint32_t>(instr.imm));
    sched_.set(S.ib_target,
               instr.target < 0 ? kRpcNone
                                : static_cast<std::uint64_t>(instr.target));
    sched_.set(S.ib_reconv,
               instr.reconv < 0 ? kRpcNone
                                : static_cast<std::uint64_t>(instr.reconv));
    sched_.set(S.ib_cmp, static_cast<std::uint64_t>(instr.cmp));
    sched_.set(S.ib_pred, instr.pred < 0 ? 0 : instr.pred + 1);
    sched_.set(S.ib_predneg, instr.pred_neg ? 1 : 0);
    sched_.set(S.issue_valid, 1);
    tick();

    // GUARD: evaluate the predicate guard into the exec-mask latch.
    const Opcode op = read_op(S.ib_op, sched_);
    const std::uint32_t active =
        static_cast<std::uint32_t>(sched_.get(top.mask));
    const auto pred_code = sched_.get(S.ib_pred);
    const bool pred_neg = sched_.get_flag(S.ib_predneg);
    std::uint32_t exec = 0;
    for (unsigned l = 0; l < 32; ++l) {
      if (!(active & (1u << l))) continue;
      bool on = true;
      if (pred_code != 0) {
        on = pf(w, l, static_cast<unsigned>(pred_code - 1)) != 0;
        if (pred_neg) on = !on;
      }
      if (on) exec |= 1u << l;
    }
    sched_.set(S.exec_mask, exec);
    tick();

    if (is_scheduler_op(op)) {
      resolve_control(w, op);
    } else {
      run_data_instruction(w, op);
      advance_pc(w);
    }
    if (ctx_.liveness) ctx_.liveness->close(cycle_);
  }

  /// Sets the stack-top PC to `next`, then merges completed divergence
  /// regions and retires the warp when every thread has exited.
  void finish_at(unsigned w, std::uint64_t next) {
    const auto& ws = L.scheduler.warp[w];
    auto depth = sched_.get(ws.depth);
    if (depth == 0 || depth > kStackDepth) throw TrapExc{"corrupt SIMT stack"};
    sched_.set(ws.stack[depth - 1].pc, next);
    // Pop entries whose mask emptied or whose PC reached the reconvergence
    // point; the base entry (rpc == none) only pops when its mask empties.
    while (depth > 0) {
      const auto& e = ws.stack[depth - 1];
      const auto mask = sched_.get(e.mask);
      const auto rpc = sched_.get(e.rpc);
      const auto epc = sched_.get(e.pc);
      if (mask == 0 || (rpc != kRpcNone && epc == rpc)) {
        if (depth == 1 && mask != 0) break;
        --depth;
        sched_.set(ws.depth, depth);
      } else {
        break;
      }
    }
    if (depth == 0) {
      sched_.set(ws.state, static_cast<std::uint64_t>(WarpState::Done));
    }
  }

  void advance_pc(unsigned w) {
    finish_at(w, sched_.get(L.scheduler.fetch_pc) + 1);
    tick();
  }

  // --------------------------------------------------- scheduler-only ops

  void resolve_control(unsigned w, Opcode op) {
    const auto& S = L.scheduler;
    const auto& ws = S.warp[w];
    const auto depth = sched_.get(ws.depth);
    if (depth == 0 || depth > kStackDepth) throw TrapExc{"corrupt SIMT stack"};
    const auto& top = ws.stack[depth - 1];
    const std::uint64_t pc = sched_.get(S.fetch_pc);
    const auto exec = static_cast<std::uint32_t>(sched_.get(S.exec_mask));
    const auto mask = static_cast<std::uint32_t>(sched_.get(top.mask));

    switch (op) {
      case Opcode::NOP: {
        finish_at(w, pc + 1);
        break;
      }
      case Opcode::BAR: {
        sched_.set(ws.state, static_cast<std::uint64_t>(WarpState::AtBarrier));
        sched_.set(S.barrier_mask,
                   sched_.get(S.barrier_mask) | (std::uint64_t{1} << w));
        sched_.set(S.barrier_active, 1);
        finish_at(w, pc + 1);
        break;
      }
      case Opcode::EXIT: {
        for (unsigned e = 0; e < depth; ++e) {
          const auto m = sched_.get(ws.stack[e].mask);
          sched_.set(ws.stack[e].mask, m & ~static_cast<std::uint64_t>(exec));
        }
        finish_at(w, pc + 1);
        break;
      }
      case Opcode::BRA: {
        const std::uint64_t target = sched_.get(S.ib_target);
        const std::uint32_t taken = exec;
        const std::uint32_t not_taken = mask & ~taken;
        if (not_taken == 0) {
          if (target == kRpcNone) throw TrapExc{"BRA without target"};
          finish_at(w, target);
        } else if (taken == 0) {
          finish_at(w, pc + 1);
        } else {
          const std::uint64_t rpc = sched_.get(S.ib_reconv);
          if (rpc == kRpcNone)
            throw TrapExc{"divergent BRA without reconvergence"};
          // A path that starts at the reconvergence point reconverges
          // immediately and is never pushed (its threads simply wait in the
          // merged continuation) — this keeps loop-exit divergence from
          // growing the stack by two per split.
          const bool push_taken = target != rpc;
          const bool push_not_taken = pc + 1 != rpc;
          const unsigned pushes =
              (push_taken ? 1u : 0u) + (push_not_taken ? 1u : 0u);
          if (depth + pushes > kStackDepth)
            throw TrapExc{"SIMT stack overflow"};
          sched_.set(top.pc, rpc);  // merged continuation (full mask)
          unsigned d = depth;
          if (push_not_taken) {
            const auto& e = ws.stack[d++];
            sched_.set(e.mask, not_taken);
            sched_.set(e.pc, pc + 1);
            sched_.set(e.rpc, rpc);
          }
          if (push_taken) {
            const auto& e = ws.stack[d++];
            sched_.set(e.mask, taken);
            if (target == kRpcNone) throw TrapExc{"BRA without target"};
            sched_.set(e.pc, target);
            sched_.set(e.rpc, rpc);
          }
          if (pushes == 0) {
            // Both paths land on the reconvergence point: uniform after all.
            sched_.set(top.pc, rpc);
          }
          sched_.set(ws.depth, d);
        }
        break;
      }
      default:
        throw TrapExc{"non-control opcode in scheduler"};
    }
    tick();
  }

  // --------------------------------------------------------- the pipeline

  void copy_stage(unsigned to) {
    const auto& P = L.pipeline;
    const auto& src = P.stage[to - 1];
    const auto& dst = P.stage[to];
    for (unsigned l = 0; l < kLanes; ++l) {
      pipe_.set(dst.lane[l].a, pipe_.get(src.lane[l].a));
      pipe_.set(dst.lane[l].b, pipe_.get(src.lane[l].b));
      pipe_.set(dst.lane[l].c, pipe_.get(src.lane[l].c));
      pipe_.set(dst.lane[l].res, pipe_.get(src.lane[l].res));
    }
    pipe_.set(dst.op, pipe_.get(src.op));
    pipe_.set(dst.dst, pipe_.get(src.dst));
    pipe_.set(dst.warp, pipe_.get(src.warp));
    pipe_.set(dst.beat, pipe_.get(src.beat));
    pipe_.set(dst.valid, pipe_.get(src.valid));
    pipe_.set(dst.cmp, pipe_.get(src.cmp));
    pipe_.set(dst.akind, pipe_.get(src.akind));
    pipe_.set(dst.bkind, pipe_.get(src.bkind));
    pipe_.set(dst.ckind, pipe_.get(src.ckind));
    pipe_.set(dst.imm, pipe_.get(src.imm));
    pipe_.set(dst.wen, pipe_.get(src.wen));
    pipe_.set(dst.emask, pipe_.get(src.emask));
  }

  void run_data_instruction(unsigned w, Opcode op) {
    const auto& S = L.scheduler;
    const auto& P = L.pipeline;
    const bool is_fp = op == Opcode::FADD || op == Opcode::FMUL ||
                       op == Opcode::FFMA;
    const bool is_int = op == Opcode::IADD || op == Opcode::IMUL ||
                        op == Opcode::IMAD;
    const bool is_sfu = op == Opcode::FSIN || op == Opcode::FEXP;
    const bool is_mem = op == Opcode::GLD || op == Opcode::GST ||
                        op == Opcode::LDS || op == Opcode::STS;
    const bool is_setp = op == Opcode::ISETP || op == Opcode::FSETP;
    const bool is_store = op == Opcode::GST || op == Opcode::STS;

    // ISSUE: scoreboard check + warp-wide pipeline control setup.
    {
      const auto dst = static_cast<unsigned>(sched_.get(S.ib_dst));
      // Stall while any source or the destination register is marked busy.
      while (true) {
        std::uint64_t busy = pipe_.get(P.scoreboard[w]);
        std::uint64_t need = 0;
        for (auto [kf, vf] : {std::pair{S.ib_akind, S.ib_aval},
                              std::pair{S.ib_bkind, S.ib_bval},
                              std::pair{S.ib_ckind, S.ib_cval}}) {
          if (static_cast<OperandKind>(sched_.get(kf) & 3) ==
              OperandKind::Reg)
            need |= std::uint64_t{1} << (sched_.get(vf) & 31);
        }
        if (writes_gpr_op(op)) need |= std::uint64_t{1} << (dst & 31);
        if ((busy & need) == 0) break;
        tick();  // stall cycle; only a stuck scoreboard bit loops forever
      }
      const auto exec = sched_.get(S.exec_mask);
      pipe_.set(P.exec_mask, exec);
      pipe_.set(P.wb_mask, exec);
      pipe_.set(P.rc_valid, 0);
      pipe_.set(P.mem_valid, 0);
      if (writes_gpr_op(op))
        pipe_.set(P.scoreboard[w],
                  pipe_.get(P.scoreboard[w]) | (std::uint64_t{1} << (dst & 31)));
      const auto& s0 = P.stage[0];
      pipe_.set(s0.op, static_cast<std::uint64_t>(op));
      pipe_.set(s0.dst, dst);
      pipe_.set(s0.warp, w);
      pipe_.set(s0.valid, 1);
      pipe_.set(s0.cmp, sched_.get(S.ib_cmp));
      pipe_.set(s0.akind, sched_.get(S.ib_akind));
      pipe_.set(s0.bkind, sched_.get(S.ib_bkind));
      pipe_.set(s0.ckind, sched_.get(S.ib_ckind));
      pipe_.set(s0.imm, sched_.get(S.ib_imm));
      pipe_.set(s0.emask, exec);
      tick();
    }

    // OPERAND FETCH: four beats fill the operand collector. The unified
    // FMA/MAD datapaths receive pre-mapped operands (FADD -> a*1+b, etc.).
    for (unsigned beat = 0; beat < kBeats; ++beat) {
      sched_.set(S.beat, beat);
      const auto exec =
          static_cast<std::uint32_t>(pipe_.get(P.exec_mask));
      for (unsigned l = 0; l < kLanes; ++l) {
        const unsigned t = beat * kLanes + l;
        if (!(exec & (1u << t))) continue;
        std::uint32_t a = resolve(S.ib_akind, S.ib_aval, w, t);
        std::uint32_t b = resolve(S.ib_bkind, S.ib_bval, w, t);
        std::uint32_t c = resolve(S.ib_ckind, S.ib_cval, w, t);
        switch (op) {
          // FP operand mapping happens inside the FMA datapath's own
          // decode (fma_stage1), driven by the stage opcode field; only
          // the integer MAD unit needs pre-mapped operands.
          case Opcode::IADD:  // a*1 + b
            c = b;
            b = 1;
            break;
          case Opcode::IMUL:  // a*b + 0
            c = 0;
            break;
          case Opcode::SEL: {
            // Predicate operand staged as a control bit.
            const bool p = pf(w, t, sched_.get(S.ib_cval) & 3) != 0;
            auto sel = pipe_.get(P.selp_stage);
            sel = p ? (sel | (std::uint64_t{1} << t))
                    : (sel & ~(std::uint64_t{1} << t));
            pipe_.set(P.selp_stage, sel);
            break;
          }
          default:
            break;
        }
        pipe_.set(P.oc_a[t], a);
        pipe_.set(P.oc_b[t], b);
        pipe_.set(P.oc_c[t], c);
      }
      tick();
    }

    if (is_sfu) {
      run_sfu(w, op);
      // Drain: the decoded control word travels to the writeback stage so
      // WB sees the instruction that was actually issued.
      for (unsigned s = 1; s < kStages; ++s) {
        copy_stage(s);
        tick();
      }
    } else {
      // EXECUTE: each beat flows through the five pipeline stages (and, for
      // FP32/INT, through the functional unit's internal stage registers).
      for (unsigned beat = 0; beat < kBeats; ++beat) {
        sched_.set(S.beat, beat);
        // EX_a: operand collector -> stage 1 latches / FU operand latches.
        {
          copy_stage(1);
          const auto& s1 = P.stage[1];
          const auto em =
              static_cast<std::uint32_t>(pipe_.get(P.stage[0].emask));
          pipe_.set(s1.beat, beat);
          pipe_.set(s1.wen, (em >> (beat * kLanes)) & 0xffu);
          std::uint64_t memv = pipe_.get(P.mem_valid);
          for (unsigned l = 0; l < kLanes; ++l) {
            const unsigned t = beat * kLanes + l;
            const std::uint32_t a =
                static_cast<std::uint32_t>(pipe_.get(P.oc_a[t]));
            const std::uint32_t b =
                static_cast<std::uint32_t>(pipe_.get(P.oc_b[t]));
            const std::uint32_t c =
                static_cast<std::uint32_t>(pipe_.get(P.oc_c[t]));
            pipe_.set(s1.lane[l].a, a);
            pipe_.set(s1.lane[l].b, b);
            pipe_.set(s1.lane[l].c, c);
            if (is_fp) {
              const auto& fl = L.fp32_fu.lane[l];
              fpfu_.set(fl.l_a, a);
              fpfu_.set(fl.l_b, b);
              fpfu_.set(fl.l_c, c);
            } else if (is_int) {
              const auto& il = L.int_fu.lane[l];
              intfu_.set(il.a, a);
              intfu_.set(il.b, b);
              intfu_.set(il.c, c);
            } else if (is_mem) {
              const std::uint32_t imm =
                  static_cast<std::uint32_t>(pipe_.get(P.stage[0].imm));
              pipe_.set(s1.lane[l].res, a + imm);
              if ((pipe_.get(s1.wen) >> l) & 1)
                memv |= std::uint64_t{1} << t;
            } else if (is_setp) {
              const auto cmp = static_cast<CmpOp>(
                  pipe_.get(P.stage[0].cmp) % 6);
              const bool v = op == Opcode::ISETP
                                 ? isa::cmp_eval_i(cmp, a, b)
                                 : isa::cmp_eval_f(cmp, a, b);
              auto ps = pipe_.get(P.pred_stage);
              ps = v ? (ps | (std::uint64_t{1} << t))
                     : (ps & ~(std::uint64_t{1} << t));
              pipe_.set(P.pred_stage, ps);
              pipe_.set(s1.lane[l].res, v ? 1 : 0);
            } else {
              const bool cp = (pipe_.get(P.selp_stage) >> t) & 1;
              pipe_.set(s1.lane[l].res, isa::alu_result(op, a, b, c, cp));
            }
          }
          if (is_mem) pipe_.set(P.mem_valid, memv);
          if (is_fp) {
            fpfu_.set(L.fp32_fu.stage_valid, 1);
            fpfu_.set(L.fp32_fu.busy, 1);
          }
          if (is_int) {
            intfu_.set(L.int_fu.op, 0);
            intfu_.set(L.int_fu.valid, 1);
            intfu_.set(L.int_fu.busy, 1);
          }
          tick();
        }
        // EX_b
        {
          copy_stage(2);
          if (is_fp) fp_advance(1);
          if (is_int) int_advance(1);
          if (is_mem) mem_access(beat, is_store, op);
          tick();
        }
        // EX_c
        {
          copy_stage(3);
          if (is_fp) fp_advance(2);
          if (is_int) int_advance(2);
          tick();
        }
        // EX_d
        {
          copy_stage(4);
          if (is_fp) fp_advance(3);
          tick();
        }
        // EX_e (FP only: final rounding stage)
        if (is_fp) {
          fp_advance(4);
          tick();
        }
        // COLLECT: lane results -> result collector.
        {
          const auto& s4 = P.stage[4];
          const auto wen =
              static_cast<std::uint32_t>(pipe_.get(s4.wen));
          const auto sbeat =
              static_cast<unsigned>(pipe_.get(s4.beat));
          auto rcv = pipe_.get(P.rc_valid);
          for (unsigned l = 0; l < kLanes; ++l) {
            if (!((wen >> l) & 1)) continue;
            const unsigned t = (sbeat * kLanes + l) & 31;
            std::uint32_t v;
            if (is_fp) {
              v = static_cast<std::uint32_t>(
                  fpfu_.get(L.fp32_fu.lane[l].s4_res));
            } else if (is_int) {
              v = static_cast<std::uint32_t>(
                  intfu_.get(L.int_fu.lane[l].sum));
            } else {
              v = static_cast<std::uint32_t>(pipe_.get(s4.lane[l].res));
            }
            pipe_.set(P.rc[t], v);
            rcv |= std::uint64_t{1} << t;
          }
          pipe_.set(P.rc_valid, rcv);
          tick();
        }
      }
    }

    // WRITE BACK: four beats drain the result collector into the register
    // file (or predicate file) of the warp named by the stage-4 control.
    const Opcode wb_op = read_op(P.stage[4].op, pipe_);
    const auto wb_warp = static_cast<unsigned>(pipe_.get(P.stage[4].warp));
    if (wb_warp >= kMaxWarps) throw TrapExc{"invalid warp id at writeback"};
    const auto wb_dst = static_cast<unsigned>(pipe_.get(P.stage[4].dst));
    for (unsigned beat = 0; beat < kBeats; ++beat) {
      const auto wbm =
          static_cast<std::uint32_t>(pipe_.get(P.wb_mask));
      const auto rcv =
          static_cast<std::uint32_t>(pipe_.get(P.rc_valid));
      for (unsigned l = 0; l < kLanes; ++l) {
        const unsigned t = beat * kLanes + l;
        if (!((wbm >> t) & 1)) continue;
        if (wb_op == Opcode::ISETP || wb_op == Opcode::FSETP) {
          set_pf(wb_warp, t, wb_dst & 3,
                 (pipe_.get(P.pred_stage) >> t) & 1 ? 1 : 0);
        } else if (writes_gpr_op(wb_op)) {
          if (!((rcv >> t) & 1)) continue;
          set_rf(wb_warp, t, wb_dst & 31,
                 static_cast<std::uint32_t>(pipe_.get(P.rc[t])));
        }
      }
      tick();
    }
    // Scoreboard release.
    if (writes_gpr_op(wb_op)) {
      pipe_.set(P.scoreboard[wb_warp],
                pipe_.get(P.scoreboard[wb_warp]) &
                    ~(std::uint64_t{1} << (wb_dst & 31)));
    }
    if (is_fp) fpfu_.set(L.fp32_fu.busy, 0);
    if (is_int) intfu_.set(L.int_fu.busy, 0);
  }

  // FU stage advances -----------------------------------------------------

  void fp_advance(unsigned step) {
    using namespace fparith;
    for (unsigned l = 0; l < kLanes; ++l) {
      const auto& n = L.fp32_fu.lane[l];
      switch (step) {
        case 1: {  // operand latches -> S1 (unpack + FU-internal decode)
          // The FMA mode is decoded from the faultable stage-1 opcode
          // field (a flipped opcode bit can turn an FADD into an FFMA).
          FpOp mode;
          switch (static_cast<Opcode>(pipe_.get(L.pipeline.stage[1].op) %
                                      isa::kNumOpcodes)) {
            case Opcode::FADD: mode = FpOp::Add; break;
            case Opcode::FMUL: mode = FpOp::Mul; break;
            default: mode = FpOp::Fma; break;
          }
          const FmaS1 s1 = fma_stage1(
              static_cast<std::uint32_t>(fpfu_.get(n.l_a)),
              static_cast<std::uint32_t>(fpfu_.get(n.l_b)),
              static_cast<std::uint32_t>(fpfu_.get(n.l_c)), mode);
          auto put = [&](FieldRef sf, FieldRef ef, FieldRef mf, FieldRef cf,
                         const Unpacked& u) {
            fpfu_.set(sf, u.sign);
            fpfu_.set(ef, static_cast<std::uint64_t>(u.exp));
            fpfu_.set(mf, u.man);
            fpfu_.set(cf, static_cast<std::uint64_t>(u.cls));
          };
          put(n.s1_sa, n.s1_ea, n.s1_ma, n.s1_clsa, s1.a);
          put(n.s1_sb, n.s1_eb, n.s1_mb, n.s1_clsb, s1.b);
          put(n.s1_sc, n.s1_ec, n.s1_mc, n.s1_clsc, s1.c);
          fpfu_.set(n.s1_op, static_cast<std::uint64_t>(s1.op));
          break;
        }
        case 2: {  // S1 -> S2 (multiply)
          FmaS1 s1;
          auto take = [&](FieldRef sf, FieldRef ef, FieldRef mf, FieldRef cf,
                          Unpacked& u) {
            u.sign = fpfu_.get_flag(sf);
            u.exp = static_cast<std::int32_t>(fpfu_.get_signed(ef));
            u.man = static_cast<std::uint32_t>(fpfu_.get(mf));
            u.cls = static_cast<FpClass>(fpfu_.get(cf));
          };
          take(n.s1_sa, n.s1_ea, n.s1_ma, n.s1_clsa, s1.a);
          take(n.s1_sb, n.s1_eb, n.s1_mb, n.s1_clsb, s1.b);
          take(n.s1_sc, n.s1_ec, n.s1_mc, n.s1_clsc, s1.c);
          s1.op = static_cast<FpOp>(fpfu_.get(n.s1_op) % 3);
          const FmaS2 s2 = fma_stage2(s1);
          fpfu_.set(n.s2_prod, s2.prod);
          fpfu_.set(n.s2_expp, static_cast<std::uint64_t>(s2.exp_p));
          fpfu_.set(n.s2_signp, s2.sign_p);
          fpfu_.set(n.s2_clsp, static_cast<std::uint64_t>(s2.cls_p));
          fpfu_.set(n.s2_sc, s2.c.sign);
          fpfu_.set(n.s2_ec, static_cast<std::uint64_t>(s2.c.exp));
          fpfu_.set(n.s2_mc, s2.c.man);
          fpfu_.set(n.s2_clsc, static_cast<std::uint64_t>(s2.c.cls));
          fpfu_.set(n.s2_special, s2.special);
          fpfu_.set(n.s2_sbits, s2.special_bits);
          fpfu_.set(n.s2_op, static_cast<std::uint64_t>(s2.op));
          break;
        }
        case 3: {  // S2 -> S3 (align/add)
          FmaS2 s2;
          s2.prod = fpfu_.get(n.s2_prod);
          s2.exp_p = static_cast<std::int32_t>(fpfu_.get_signed(n.s2_expp));
          s2.sign_p = fpfu_.get_flag(n.s2_signp);
          s2.cls_p = static_cast<FpClass>(fpfu_.get(n.s2_clsp));
          s2.c.sign = fpfu_.get_flag(n.s2_sc);
          s2.c.exp = static_cast<std::int32_t>(fpfu_.get_signed(n.s2_ec));
          s2.c.man = static_cast<std::uint32_t>(fpfu_.get(n.s2_mc));
          s2.c.cls = static_cast<FpClass>(fpfu_.get(n.s2_clsc));
          s2.special = fpfu_.get_flag(n.s2_special);
          s2.special_bits = static_cast<std::uint32_t>(fpfu_.get(n.s2_sbits));
          s2.op = static_cast<FpOp>(fpfu_.get(n.s2_op) % 3);
          const FmaS3 s3 = fma_stage3(s2);
          fpfu_.set(n.s3_sumlo, static_cast<std::uint64_t>(s3.sum));
          fpfu_.set(n.s3_sumhi, static_cast<std::uint64_t>(s3.sum >> 64));
          fpfu_.set(n.s3_expr, static_cast<std::uint64_t>(s3.exp_r));
          fpfu_.set(n.s3_signr, s3.sign_r);
          fpfu_.set(n.s3_sticky, s3.sticky);
          fpfu_.set(n.s3_special, s3.special);
          fpfu_.set(n.s3_sbits, s3.special_bits);
          fpfu_.set(n.s3_zero, s3.zero_case);
          fpfu_.set(n.s3_signp, s3.sign_p);
          fpfu_.set(n.s3_signc, s3.sign_c);
          fpfu_.set(n.s3_cancel, s3.cancel);
          fpfu_.set(n.s3_op, static_cast<std::uint64_t>(s3.op));
          break;
        }
        case 4: {  // S3 -> S4 (normalize/round)
          FmaS3 s3;
          s3.sum = (static_cast<unsigned __int128>(fpfu_.get(n.s3_sumhi))
                    << 64) |
                   fpfu_.get(n.s3_sumlo);
          s3.exp_r = static_cast<std::int32_t>(fpfu_.get_signed(n.s3_expr));
          s3.sign_r = fpfu_.get_flag(n.s3_signr);
          s3.sticky = fpfu_.get_flag(n.s3_sticky);
          s3.special = fpfu_.get_flag(n.s3_special);
          s3.special_bits = static_cast<std::uint32_t>(fpfu_.get(n.s3_sbits));
          s3.zero_case = fpfu_.get_flag(n.s3_zero);
          s3.sign_p = fpfu_.get_flag(n.s3_signp);
          s3.sign_c = fpfu_.get_flag(n.s3_signc);
          s3.cancel = fpfu_.get_flag(n.s3_cancel);
          s3.op = static_cast<FpOp>(fpfu_.get(n.s3_op) % 3);
          fpfu_.set(n.s4_res, fma_stage4(s3));
          fpfu_.set(n.s4_valid, 1);
          break;
        }
        default:
          break;
      }
    }
  }

  void int_advance(unsigned step) {
    for (unsigned l = 0; l < kLanes; ++l) {
      const auto& n = L.int_fu.lane[l];
      if (step == 1) {
        const auto s = fparith::imad_stage1(
            static_cast<std::uint32_t>(intfu_.get(n.a)),
            static_cast<std::uint32_t>(intfu_.get(n.b)),
            static_cast<std::uint32_t>(intfu_.get(n.c)));
        intfu_.set(n.prod, s.prod);
      } else if (step == 2) {
        fparith::IntS1 s;
        s.prod = intfu_.get(n.prod);
        s.c = static_cast<std::uint32_t>(intfu_.get(n.c));
        intfu_.set(n.sum, fparith::imad_stage2(s));
      }
    }
  }

  void mem_access(unsigned beat, bool is_store, Opcode op) {
    // Runs during EX_b, after the beat was copied into stage 2: addresses
    // and store data are read there, and loaded values are deposited into
    // the stage-2 result latch so they travel onward to writeback.
    const auto& P = L.pipeline;
    const auto& s2 = P.stage[2];
    const bool is_global = op == Opcode::GLD || op == Opcode::GST;
    auto memv = pipe_.get(P.mem_valid);
    for (unsigned l = 0; l < kLanes; ++l) {
      const unsigned t = beat * kLanes + l;
      if (!((memv >> t) & 1)) continue;
      const auto addr = static_cast<std::uint32_t>(pipe_.get(s2.lane[l].res));
      const std::size_t limit = is_global ? global_.size() : shared_.size();
      if (addr >= limit) throw TrapExc{"out-of-bounds memory access"};
      if (is_store) {
        const auto v = static_cast<std::uint32_t>(pipe_.get(s2.lane[l].b));
        if (is_global)
          global_.store(addr, v);
        else
          shared_.store(addr, v);
      } else {
        pipe_.set(s2.lane[l].res,
                  is_global ? global_[addr] : shared_[addr]);
      }
      memv &= ~(std::uint64_t{1} << t);
    }
    pipe_.set(P.mem_valid, memv);
  }

  // ----------------------------------------------------------- SFU path

  void run_sfu(unsigned w, Opcode op) {
    (void)w;
    using namespace fparith;
    const auto& P = L.pipeline;
    const auto& C = L.sfu_ctl;
    const SfuFunc func =
        op == Opcode::FSIN ? SfuFunc::Sin : SfuFunc::Exp;

    // Controller power-up for this instruction.
    sfuctl_.set(C.head, 0);
    sfuctl_.set(C.tail, 0);
    sfuctl_.set(C.count, 0);
    sfuctl_.set(C.collected, 0);
    sfuctl_.set(C.done_count, 0);
    sfuctl_.set(C.rounds, 0);
    sfuctl_.set(C.busy, 1);
    sfuctl_.set(C.grant_valid, 0);
    for (unsigned q = 0; q < kSfuQueue; ++q)
      sfuctl_.set(C.queue[q].valid, 0);
    for (unsigned u = 0; u < kSfuUnits; ++u) {
      sfuctl_.set(C.inflight[u], 0);
      for (unsigned s = 0; s < kSfuWidth; ++s) {
        const auto& sl = L.sfu.unit[u][s];
        sfu_.set(sl.in_valid, 0);
        sfu_.set(sl.s2_valid, 0);
        sfu_.set(sl.s3_valid, 0);
        sfu_.set(sl.s4_valid, 0);
        sfu_.set(sl.s5_valid, 0);
        sfu_.set(sl.s6_valid, 0);
      }
    }

    unsigned enqueue_cursor = 0;  // micro-sequencer scan position
    while (true) {
      const auto exec =
          static_cast<std::uint32_t>(pipe_.get(P.exec_mask));

      // 1. Enqueue up to two pending lane requests.
      for (int k = 0; k < 2 && enqueue_cursor < 32; ++k) {
        while (enqueue_cursor < 32 && !((exec >> enqueue_cursor) & 1))
          ++enqueue_cursor;
        if (enqueue_cursor >= 32) break;
        const auto count = sfuctl_.get(C.count);
        if (count >= kSfuQueue) break;
        const auto tail = sfuctl_.get(C.tail) % kSfuQueue;
        sfuctl_.set(C.queue[tail].lane, enqueue_cursor);
        sfuctl_.set(C.queue[tail].valid, 1);
        sfuctl_.set(C.queue[tail].func, static_cast<std::uint64_t>(func));
        sfuctl_.set(C.tail, (tail + 1) % kSfuQueue);
        sfuctl_.set(C.count, count + 1);
        ++enqueue_cursor;
      }

      // 2. Pipelines advance back to front (each sublane independently).
      for (unsigned u = 0; u < kSfuUnits; ++u) {
        for (unsigned s = 0; s < kSfuWidth; ++s) {
          advance_sfu_sublane(L.sfu.unit[u][s]);
        }
      }

      // 3. Dispatch queued requests into free sublanes.
      for (unsigned u = 0; u < kSfuUnits; ++u) {
        for (unsigned s = 0; s < kSfuWidth; ++s) {
          const auto& sl = L.sfu.unit[u][s];
          if (sfu_.get_flag(sl.in_valid)) continue;
          const auto count = sfuctl_.get(C.count);
          if (count == 0) continue;
          const auto head = sfuctl_.get(C.head) % kSfuQueue;
          const auto& slot = C.queue[head];
          const bool valid = sfuctl_.get_flag(slot.valid);
          const auto lane = static_cast<unsigned>(sfuctl_.get(slot.lane));
          sfuctl_.set(C.head, (head + 1) % kSfuQueue);
          sfuctl_.set(C.count, count - 1);
          sfuctl_.set(slot.valid, 0);
          if (!valid) continue;  // corrupted slot: the request is dropped
          sfuctl_.set(C.grant_lane[u], lane);
          sfu_.set(sl.in_x, pipe_.get(P.oc_a[lane & 31]));
          sfu_.set(sl.in_func, sfuctl_.get(slot.func));
          sfu_.set(sl.in_lane, lane);
          sfu_.set(sl.in_valid, 1);
        }
      }

      sfuctl_.set(C.rounds, (sfuctl_.get(C.rounds) + 1) & 0x3);
      tick();

      // 4. Completion is count-based (as in a credit/ack scheme): the
      // controller releases the warp once as many results retired as
      // threads were executing. A misrouted lane therefore completes with
      // corrupt data (multi-thread SDC) rather than hanging, while a lost
      // request or a decremented counter starves completion (DUE).
      const auto done =
          static_cast<unsigned>(sfuctl_.get(C.done_count));
      if (done >= static_cast<unsigned>(std::popcount(exec))) break;
    }
    sfuctl_.set(C.busy, 0);
  }

  /// One clock of a 6-deep SFU sublane pipeline (drain order: S6 first).
  void advance_sfu_sublane(const SfuLayout::SubLane& n) {
    using namespace fparith;
    const auto& P = L.pipeline;
    const auto& C = L.sfu_ctl;

    // S6 -> result collector.
    if (sfu_.get_flag(n.s6_valid)) {
      const auto lane = static_cast<unsigned>(sfu_.get(n.s6_lane)) & 31;
      pipe_.set(P.rc[lane], sfu_.get(n.s6_res));
      pipe_.set(P.rc_valid,
                pipe_.get(P.rc_valid) | (std::uint64_t{1} << lane));
      sfuctl_.set(C.collected,
                  sfuctl_.get(C.collected) | (std::uint64_t{1} << lane));
      sfuctl_.set(C.done_count, (sfuctl_.get(C.done_count) + 1) & 0x3f);
      sfu_.set(n.s6_valid, 0);
    }
    // S5 -> S6.
    if (sfu_.get_flag(n.s5_valid)) {
      SfuS5 s5;
      s5.acc = sfu_.get_signed(n.s5_acc);
      s5.quadrant = static_cast<std::uint8_t>(sfu_.get(n.s5_q));
      s5.neg = sfu_.get_flag(n.s5_neg);
      s5.k_exp = static_cast<std::int32_t>(sfu_.get_signed(n.s5_k));
      s5.special = sfu_.get_flag(n.s5_special);
      s5.special_bits = static_cast<std::uint32_t>(sfu_.get(n.s5_sbits));
      s5.func = static_cast<SfuFunc>(sfu_.get(n.s5_func));
      sfu_.set(n.s6_res, sfu_stage6(s5));
      sfu_.set(n.s6_lane, sfu_.get(n.s5_lane));
      sfu_.set(n.s6_valid, 1);
      sfu_.set(n.s5_valid, 0);
    }
    // S4 -> S5.
    if (sfu_.get_flag(n.s4_valid)) {
      SfuS4 s4;
      s4.t1_s = sfu_.get(n.s4_pp1s);
      s4.t1_c = sfu_.get(n.s4_pp1c);
      s4.t2_s = sfu_.get(n.s4_pp2s);
      s4.t2_c = sfu_.get(n.s4_pp2c);
      s4.c1_neg = sfu_.get_flag(n.s4_c1n);
      s4.c2_neg = sfu_.get_flag(n.s4_c2n);
      s4.dx = static_cast<std::uint32_t>(sfu_.get(n.s4_dx));
      s4.c0 = sfu_.get(n.s4_c0);
      s4.quadrant = static_cast<std::uint8_t>(sfu_.get(n.s4_q));
      s4.neg = sfu_.get_flag(n.s4_neg);
      s4.k_exp = static_cast<std::int32_t>(sfu_.get_signed(n.s4_k));
      s4.special = sfu_.get_flag(n.s4_special);
      s4.special_bits = static_cast<std::uint32_t>(sfu_.get(n.s4_sbits));
      s4.func = static_cast<SfuFunc>(sfu_.get(n.s4_func));
      const SfuS5 s5 = sfu_stage5(s4);
      sfu_.set(n.s5_acc, static_cast<std::uint64_t>(s5.acc));
      sfu_.set(n.s5_q, s5.quadrant);
      sfu_.set(n.s5_neg, s5.neg);
      sfu_.set(n.s5_k, static_cast<std::uint64_t>(s5.k_exp));
      sfu_.set(n.s5_special, s5.special);
      sfu_.set(n.s5_sbits, s5.special_bits);
      sfu_.set(n.s5_func, static_cast<std::uint64_t>(s5.func));
      sfu_.set(n.s5_lane, sfu_.get(n.s4_lane));
      sfu_.set(n.s5_valid, 1);
      sfu_.set(n.s4_valid, 0);
    }
    // S3 -> S4.
    if (sfu_.get_flag(n.s3_valid)) {
      SfuS3 s3;
      s3.idx = static_cast<std::uint8_t>(sfu_.get(n.s3_idx));
      s3.dx = static_cast<std::uint32_t>(sfu_.get(n.s3_dx));
      s3.c0 = sfu_.get(n.s3_c0);
      s3.c1 = sfu_.get_signed(n.s3_c1);
      s3.c2 = sfu_.get_signed(n.s3_c2);
      s3.quadrant = static_cast<std::uint8_t>(sfu_.get(n.s3_q));
      s3.neg = sfu_.get_flag(n.s3_neg);
      s3.k_exp = static_cast<std::int32_t>(sfu_.get_signed(n.s3_k));
      s3.special = sfu_.get_flag(n.s3_special);
      s3.special_bits = static_cast<std::uint32_t>(sfu_.get(n.s3_sbits));
      s3.func = static_cast<SfuFunc>(sfu_.get(n.s3_func));
      const SfuS4 s4 = sfu_stage4(s3);
      sfu_.set(n.s4_pp1s, s4.t1_s);
      sfu_.set(n.s4_pp1c, s4.t1_c);
      sfu_.set(n.s4_pp2s, s4.t2_s);
      sfu_.set(n.s4_pp2c, s4.t2_c);
      sfu_.set(n.s4_c1n, s4.c1_neg);
      sfu_.set(n.s4_c2n, s4.c2_neg);
      sfu_.set(n.s4_dx, s4.dx);
      sfu_.set(n.s4_c0, s4.c0);
      sfu_.set(n.s4_q, s4.quadrant);
      sfu_.set(n.s4_neg, s4.neg);
      sfu_.set(n.s4_k, static_cast<std::uint64_t>(s4.k_exp));
      sfu_.set(n.s4_special, s4.special);
      sfu_.set(n.s4_sbits, s4.special_bits);
      sfu_.set(n.s4_func, static_cast<std::uint64_t>(s4.func));
      sfu_.set(n.s4_lane, sfu_.get(n.s3_lane));
      sfu_.set(n.s4_valid, 1);
      sfu_.set(n.s3_valid, 0);
    }
    // S2 -> S3: recombine the carry-save argument, look up coefficients.
    if (sfu_.get_flag(n.s2_valid)) {
      SfuS2 s2;
      s2.u_fx = sfu_.get(n.rr_s) + sfu_.get(n.rr_c);
      s2.quadrant = static_cast<std::uint8_t>(sfu_.get(n.s2_q));
      s2.neg = sfu_.get_flag(n.s2_neg);
      s2.k_exp = static_cast<std::int32_t>(sfu_.get_signed(n.s2_k));
      s2.special = sfu_.get_flag(n.s2_special);
      s2.special_bits = static_cast<std::uint32_t>(sfu_.get(n.s2_sbits));
      s2.func = static_cast<SfuFunc>(sfu_.get(n.s2_func));
      const SfuS3 s3 = sfu_stage3(s2);
      sfu_.set(n.s3_idx, s3.idx);
      sfu_.set(n.s3_dx, s3.dx);
      sfu_.set(n.s3_c0, s3.c0);
      sfu_.set(n.s3_c1, static_cast<std::uint64_t>(s3.c1));
      sfu_.set(n.s3_c2, static_cast<std::uint64_t>(s3.c2));
      sfu_.set(n.s3_q, s3.quadrant);
      sfu_.set(n.s3_neg, s3.neg);
      sfu_.set(n.s3_k, static_cast<std::uint64_t>(s3.k_exp));
      sfu_.set(n.s3_special, s3.special);
      sfu_.set(n.s3_sbits, s3.special_bits);
      sfu_.set(n.s3_func, static_cast<std::uint64_t>(s3.func));
      sfu_.set(n.s3_lane, sfu_.get(n.s2_lane));
      sfu_.set(n.s3_valid, 1);
      sfu_.set(n.s2_valid, 0);
    }
    // IN -> S2: range reduction (the reduced argument is stored as a
    // redundant carry-save pair).
    if (sfu_.get_flag(n.in_valid)) {
      const auto x =
          static_cast<std::uint32_t>(sfu_.get(n.in_x));
      const auto func = static_cast<SfuFunc>(sfu_.get(n.in_func));
      const SfuS2 s2 = sfu_stage2(x, func);
      constexpr std::uint64_t kEvenMask = 0x5555555555555555ull;
      sfu_.set(n.rr_s, s2.u_fx & kEvenMask);
      sfu_.set(n.rr_c, s2.u_fx & ~kEvenMask);
      sfu_.set(n.s2_q, s2.quadrant);
      sfu_.set(n.s2_neg, s2.neg);
      sfu_.set(n.s2_k, static_cast<std::uint64_t>(s2.k_exp));
      sfu_.set(n.s2_special, s2.special);
      sfu_.set(n.s2_sbits, s2.special_bits);
      sfu_.set(n.s2_func, static_cast<std::uint64_t>(s2.func));
      sfu_.set(n.s2_lane, sfu_.get(n.in_lane));
      sfu_.set(n.s2_valid, 1);
      sfu_.set(n.in_valid, 0);
    }
  }

  ModuleState& sched_;
  ModuleState& intfu_;
  ModuleState& fpfu_;
  ModuleState& sfu_;
  ModuleState& sfuctl_;
  ModuleState& pipe_;
  TrackedArray<std::uint32_t>& global_;
  TrackedArray<std::uint32_t>& regs_;
  TrackedArray<std::uint8_t>& preds_;
  TrackedArray<std::uint32_t>& shared_;
  const isa::Program& prog_;
  const GridDims& dims_;
  std::optional<FaultSpec> fault_;
  std::uint64_t max_cycles_;
  const RunCtx& ctx_;
  const Layouts& L;

  std::uint64_t cycle_ = 0;
  bool fault_pending_ = true;
  unsigned cta_ = 0;
  std::uint64_t next_ckpt_ = 0;
  std::uint64_t next_check_ = 0;
  std::size_t capture_idx_ = 0;
};

}  // namespace

const SmCheckpoint* GoldenTrace::floor(std::uint64_t c) const {
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it)
    if (it->quiescent && it->cycle <= c) return &*it;
  return nullptr;
}

Sm::Sm(std::size_t global_words)
    : sched_(layouts().scheduler.layout),
      intfu_(layouts().int_fu.layout),
      fpfu_(layouts().fp32_fu.layout),
      sfu_(layouts().sfu.layout),
      sfuctl_(layouts().sfu_ctl.layout),
      pipe_(layouts().pipeline.layout) {
  global_.init(global_words, digest_salt(kSaltDomainGlobal));
  regs_.init(std::size_t{kMaxWarps} * 32 * isa::kNumRegs,
             digest_salt(kSaltDomainRegs));
  preds_.init(std::size_t{kMaxWarps} * 32 * isa::kNumPreds,
              digest_salt(kSaltDomainPreds));
  shared_.init(0, digest_salt(kSaltDomainShared));
}

std::uint32_t Sm::alloc(std::size_t words) {
  if (alloc_watermark_ + words > global_.size())
    throw std::bad_alloc();
  const auto base = static_cast<std::uint32_t>(alloc_watermark_);
  alloc_watermark_ += words;
  return base;
}
std::uint32_t Sm::read_word(std::uint32_t addr) const {
  if (addr >= global_.size()) throw std::out_of_range("read_word");
  return global_[addr];
}
void Sm::write_word(std::uint32_t addr, std::uint32_t value) {
  if (addr >= global_.size()) throw std::out_of_range("write_word");
  global_.store(addr, value);
}
float Sm::read_float(std::uint32_t addr) const {
  return std::bit_cast<float>(read_word(addr));
}
void Sm::write_float(std::uint32_t addr, float value) {
  write_word(addr, std::bit_cast<std::uint32_t>(value));
}
void Sm::fill(std::uint32_t addr, std::size_t words, std::uint32_t value) {
  if (addr + words > global_.size()) throw std::out_of_range("fill");
  for (std::size_t i = 0; i < words; ++i) global_.store(addr + i, value);
}

const ModuleState& Sm::module_state(Module m) const {
  switch (m) {
    case Module::Fp32Fu: return fpfu_;
    case Module::IntFu: return intfu_;
    case Module::Sfu: return sfu_;
    case Module::SfuCtl: return sfuctl_;
    case Module::Scheduler: return sched_;
    case Module::PipelineRegs: return pipe_;
  }
  return pipe_;
}

ModuleState& Sm::bank(Module m) {
  return const_cast<ModuleState&>(module_state(m));
}

void Sm::set_tracking(bool on) {
  if (tracking_ == on) return;
  tracking_ = on;
  for (std::size_t i = 0; i < kNumModules; ++i)
    bank(static_cast<Module>(i))
        .set_tracking(on, digest_salt(kSaltDomainModule0 +
                                      static_cast<unsigned>(i)));
  global_.set_tracking(on);
  regs_.set_tracking(on);
  preds_.set_tracking(on);
  shared_.set_tracking(on);
}

void Sm::enable_digest_tracking() { set_tracking(true); }

std::uint64_t Sm::state_digest() const {
  return sched_.digest() ^ intfu_.digest() ^ fpfu_.digest() ^ sfu_.digest() ^
         sfuctl_.digest() ^ pipe_.digest() ^ global_.digest() ^
         regs_.digest() ^ preds_.digest() ^ shared_.digest();
}

SmCheckpoint Sm::snap(std::uint64_t cycle, unsigned cta,
                      bool quiescent) const {
  SmCheckpoint c;
  c.cycle = cycle;
  c.cta = cta;
  c.quiescent = quiescent;
  for (std::size_t i = 0; i < kNumModules; ++i) {
    const ModuleState& ms = module_state(static_cast<Module>(i));
    c.modules[i].bits = ms.bits();
    c.modules[i].digest = ms.digest();
  }
  c.global = global_.snapshot();
  c.regs = regs_.snapshot();
  c.preds = preds_.snapshot();
  c.shared = shared_.snapshot();
  c.digest = state_digest();
  return c;
}

SmCheckpoint Sm::checkpoint() {
  enable_digest_tracking();
  return snap(0, 0, false);
}

void Sm::restore(const SmCheckpoint& c) {
  for (std::size_t i = 0; i < kNumModules; ++i)
    bank(static_cast<Module>(i)).load(c.modules[i].bits, c.modules[i].digest);
  global_.restore(c.global);
  regs_.restore(c.regs);
  preds_.restore(c.preds);
  shared_.restore(c.shared);
}

RunResult Sm::execute(const isa::Program& prog, const GridDims& dims,
                      const std::optional<FaultSpec>& fault,
                      std::uint64_t max_cycles) {
  // Power-on reset of every flip-flop bank.
  sched_.reset();
  intfu_.reset();
  fpfu_.reset();
  sfu_.reset();
  sfuctl_.reset();
  pipe_.reset();
  shared_.resize_clear(prog.shared_words);
  // A faulted run is never unlimited: a scheduler stuck-at can loop the
  // issue FSM forever, and a hang must classify as Watchdog (DUE).
  const std::uint64_t bound =
      max_cycles != 0 ? max_cycles
                      : (fault ? kFaultyRunCycleCap : kUnlimitedCycles);
  Machine m(sched_, intfu_, fpfu_, sfu_, sfuctl_, pipe_, global_, regs_,
            preds_, shared_, prog, dims, fault, bound, kPlainRun);
  return m.run();
}

RunResult Sm::run(const isa::Program& prog, const GridDims& dims,
                  std::uint64_t max_cycles) {
  return execute(prog, dims, std::nullopt, max_cycles);
}

RunResult Sm::run(const isa::Program& prog, const GridDims& dims,
                  LivenessTimeline& liveness, std::uint64_t max_cycles) {
  sched_.reset();
  intfu_.reset();
  fpfu_.reset();
  sfu_.reset();
  sfuctl_.reset();
  pipe_.reset();
  shared_.resize_clear(prog.shared_words);
  liveness.clear();
  RunCtx ctx;
  ctx.liveness = &liveness;
  const std::uint64_t bound = max_cycles != 0 ? max_cycles : kUnlimitedCycles;
  Machine m(sched_, intfu_, fpfu_, sfu_, sfuctl_, pipe_, global_, regs_,
            preds_, shared_, prog, dims, std::nullopt, bound, ctx);
  RunResult r = m.run();
  liveness.finalize(r.cycles);
  return r;
}

RunResult Sm::run_with_fault(const isa::Program& prog, const GridDims& dims,
                             const FaultSpec& fault,
                             std::uint64_t max_cycles) {
  return execute(prog, dims, fault, max_cycles);
}

RunResult Sm::run_traced(const isa::Program& prog, const GridDims& dims,
                         GoldenTrace& trace,
                         std::uint64_t checkpoint_interval,
                         std::uint64_t max_cycles,
                         std::vector<std::uint64_t> capture_at) {
  enable_digest_tracking();
  trace.checkpoints.clear();
  trace.digest_at.clear();
  std::sort(capture_at.begin(), capture_at.end());
  sched_.reset();
  intfu_.reset();
  fpfu_.reset();
  sfu_.reset();
  sfuctl_.reset();
  pipe_.reset();
  shared_.resize_clear(prog.shared_words);
  RunCtx ctx;
  ctx.record = &trace;
  ctx.interval = std::max<std::uint64_t>(1, checkpoint_interval);
  ctx.capture_at = std::move(capture_at);
  ctx.capture = [this](std::uint64_t cy, unsigned ct, bool q) {
    return snap(cy, ct, q);
  };
  Machine m(sched_, intfu_, fpfu_, sfu_, sfuctl_, pipe_, global_, regs_,
            preds_, shared_, prog, dims, std::nullopt,
            max_cycles == 0 ? kUnlimitedCycles : max_cycles, ctx);
  trace.result = m.run();
  return trace.result;
}

RunResult Sm::resume_with_fault(const isa::Program& prog, const GridDims& dims,
                                const FaultSpec& fault,
                                std::uint64_t max_cycles,
                                const SmCheckpoint& from,
                                const GoldenTrace* golden,
                                std::uint64_t check_interval) {
  if (!from.quiescent)
    throw std::invalid_argument(
        "resume_with_fault: checkpoint is not resumable");
  // Digest maintenance is only paid for when the convergence early-exit
  // needs it; the checkpoint's recorded digests stay authoritative either
  // way because restore() overwrites the live digests wholesale.
  set_tracking(golden != nullptr);
  restore(from);
  RunCtx ctx;
  ctx.resume_from = &from;
  ctx.reference = golden;
  ctx.check_interval = std::max<std::uint64_t>(1, check_interval);
  Machine m(sched_, intfu_, fpfu_, sfu_, sfuctl_, pipe_, global_, regs_,
            preds_, shared_, prog, dims, fault,
            max_cycles == 0 ? kFaultyRunCycleCap : max_cycles, ctx);
  return m.run();
}

std::string_view fault_model_name(FaultModel m) {
  switch (m) {
    case FaultModel::Transient: return "transient";
    case FaultModel::StuckAt0: return "stuck-at-0";
    case FaultModel::StuckAt1: return "stuck-at-1";
    case FaultModel::IntermittentBurst: return "intermittent-burst";
  }
  return "?";
}

}  // namespace gpufi::rtl
