#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bitvector.hpp"

namespace gpufi::rtl {

/// The six fault-injection targets of Table I. Memories (register file,
/// shared memory, caches) are deliberately absent: the paper assumes they
/// are ECC protected and does not inject into them.
enum class Module : std::uint8_t {
  Fp32Fu,       ///< 8-lane unified FP32 FMA datapath
  IntFu,        ///< 8-lane integer MAD datapath
  Sfu,          ///< 2 special function units (sin/exp pipelines)
  SfuCtl,       ///< SFU request queue / arbitration controller
  Scheduler,    ///< warp scheduler controller (warp table + issue FSM)
  PipelineRegs, ///< operand/result collectors and per-stage latches
};

/// Number of faultable modules.
constexpr std::size_t kNumModules = 6;

/// Human-readable module name ("FP32", "Scheduler", ...).
std::string_view module_name(Module m);

/// Whether a flip-flop field carries datapath values or control signals.
/// The paper's key structural observation (~84% of pipeline registers are
/// data, ~16% control, and the control ones cause the DUEs/multi-thread
/// SDCs) is reproduced by tagging every field.
enum class FieldRole : std::uint8_t { Data, Control };

/// Handle to a packed field inside a module's flip-flop bank.
struct FieldRef {
  std::uint32_t offset = 0;
  std::uint16_t width = 0;
};

/// Metadata of one registered field.
struct FieldInfo {
  std::string name;
  std::uint32_t offset = 0;
  std::uint16_t width = 0;
  FieldRole role = FieldRole::Data;
};

/// Builder/registry for a module's flip-flop bank: fields are appended in
/// declaration order and packed contiguously. The layout doubles as the
/// lookup table that maps an injected bit index back to a named field for
/// the detailed fault reports.
class StateLayout {
 public:
  /// Registers a field of `width` bits; returns its handle.
  FieldRef add(std::string name, unsigned width,
               FieldRole role = FieldRole::Data);

  /// Total flip-flop count (Table I column "RTL Size").
  std::size_t bits() const { return bits_; }
  /// Flip-flops tagged as data.
  std::size_t data_bits() const { return data_bits_; }
  /// Flip-flops tagged as control.
  std::size_t control_bits() const { return bits_ - data_bits_; }

  /// Field containing the given bit (for reports). Throws if out of range.
  const FieldInfo& field_at(std::size_t bit) const;

  const std::vector<FieldInfo>& fields() const { return fields_; }

 private:
  std::vector<FieldInfo> fields_;
  std::size_t bits_ = 0;
  std::size_t data_bits_ = 0;
};

/// A module's live flip-flop bank: a BitVector addressed through FieldRefs.
/// Fault injection flips raw bits; normal operation reads/writes fields.
class ModuleState {
 public:
  explicit ModuleState(const StateLayout& layout)
      : layout_(&layout), bits_(layout.bits()) {}

  std::uint64_t get(FieldRef f) const {
    return bits_.get_field(f.offset, f.width);
  }
  void set(FieldRef f, std::uint64_t v) {
    bits_.set_field(f.offset, f.width, v);
  }
  bool get_flag(FieldRef f) const { return get(f) != 0; }

  /// Sign-extends a field read as a two's-complement value.
  std::int64_t get_signed(FieldRef f) const {
    const std::uint64_t v = get(f);
    if (f.width == 64) return static_cast<std::int64_t>(v);
    const std::uint64_t sign = std::uint64_t{1} << (f.width - 1);
    return static_cast<std::int64_t>((v ^ sign)) -
           static_cast<std::int64_t>(sign);
  }

  /// The fault-injection primitive.
  void flip(std::size_t bit) { bits_.flip(bit); }
  /// Clears every flip-flop (power-on reset).
  void reset() { bits_.clear(); }

  std::size_t size() const { return bits_.size(); }
  const StateLayout& layout() const { return *layout_; }

 private:
  const StateLayout* layout_;
  BitVector bits_;
};

}  // namespace gpufi::rtl
