#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bitvector.hpp"
#include "common/rng.hpp"

namespace gpufi::rtl {

/// The six fault-injection targets of Table I. Memories (register file,
/// shared memory, caches) are deliberately absent: the paper assumes they
/// are ECC protected and does not inject into them.
enum class Module : std::uint8_t {
  Fp32Fu,       ///< 8-lane unified FP32 FMA datapath
  IntFu,        ///< 8-lane integer MAD datapath
  Sfu,          ///< 2 special function units (sin/exp pipelines)
  SfuCtl,       ///< SFU request queue / arbitration controller
  Scheduler,    ///< warp scheduler controller (warp table + issue FSM)
  PipelineRegs, ///< operand/result collectors and per-stage latches
};

/// Number of faultable modules.
constexpr std::size_t kNumModules = 6;

/// Human-readable module name ("FP32", "Scheduler", ...).
std::string_view module_name(Module m);

/// Whether a flip-flop field carries datapath values or control signals.
/// The paper's key structural observation (~84% of pipeline registers are
/// data, ~16% control, and the control ones cause the DUEs/multi-thread
/// SDCs) is reproduced by tagging every field.
enum class FieldRole : std::uint8_t { Data, Control };

/// Handle to a packed field inside a module's flip-flop bank.
struct FieldRef {
  std::uint32_t offset = 0;
  std::uint16_t width = 0;
};

/// Metadata of one registered field.
struct FieldInfo {
  std::string name;
  std::uint32_t offset = 0;
  std::uint16_t width = 0;
  FieldRole role = FieldRole::Data;
};

/// Builder/registry for a module's flip-flop bank: fields are appended in
/// declaration order and packed contiguously. The layout doubles as the
/// lookup table that maps an injected bit index back to a named field for
/// the detailed fault reports.
class StateLayout {
 public:
  /// Registers a field of `width` bits; returns its handle.
  FieldRef add(std::string name, unsigned width,
               FieldRole role = FieldRole::Data);

  /// Total flip-flop count (Table I column "RTL Size").
  std::size_t bits() const { return bits_; }
  /// Flip-flops tagged as data.
  std::size_t data_bits() const { return data_bits_; }
  /// Flip-flops tagged as control.
  std::size_t control_bits() const { return bits_ - data_bits_; }

  /// Field containing the given bit (for reports). Throws if out of range.
  const FieldInfo& field_at(std::size_t bit) const;

  const std::vector<FieldInfo>& fields() const { return fields_; }

 private:
  std::vector<FieldInfo> fields_;
  std::size_t bits_ = 0;
  std::size_t data_bits_ = 0;
};

// ---------------------------------------------------------------------------
// Incremental state digests.
//
// Every stateful component (flip-flop bank, architectural memory, CTA loop
// index) contributes an XOR-accumulated 64-bit digest; the composite machine
// digest is the XOR of all component digests. A component's digest is the
// XOR over its (position, value) pairs of `state_digest_mix`, which hashes
// position and value under a per-component salt. Two properties make the
// digest cheap to maintain:
//  * XOR accumulation: changing one field costs two mixes (XOR the old
//    contribution out, the new one in) — O(1) per state write.
//  * Zero values contribute nothing: a power-on-reset component digests to
//    0 and re-computation after enabling tracking touches only live state.
//
// The digest is 64 bits wide: with ~1e6 digest comparisons per campaign the
// probability of any false state-equality is bounded by ~1e6 * 2^-64
// (~5e-14), far below the campaigns' statistical margins.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kDigestPosMult = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kDigestValMult = 0xbf58476d1ce4e5b9ull;

/// Contribution of one (position, value) pair to a component digest.
constexpr std::uint64_t state_digest_mix(std::uint64_t salt, std::uint64_t pos,
                                         std::uint64_t val) {
  return val == 0
             ? 0
             : splitmix64(salt + (pos + 1) * kDigestPosMult +
                          val * kDigestValMult);
}

/// Digest-domain indices: each component mixes under a distinct salt so that
/// equal (position, value) pairs in different components cannot cancel.
constexpr unsigned kSaltDomainModule0 = 0;  ///< + Module enum index (0..5)
constexpr unsigned kSaltDomainGlobal = 8;
constexpr unsigned kSaltDomainRegs = 9;
constexpr unsigned kSaltDomainPreds = 10;
constexpr unsigned kSaltDomainShared = 11;
constexpr unsigned kSaltDomainCta = 12;

/// Salt of a digest domain.
constexpr std::uint64_t digest_salt(unsigned domain) {
  return splitmix64(0x6770756669646967ull + domain);
}

/// A module's live flip-flop bank: a BitVector addressed through FieldRefs.
/// Fault injection flips raw bits; normal operation reads/writes fields.
///
/// With tracking enabled (`set_tracking`), the bank maintains an incremental
/// field-granular digest of its contents; tracking is off by default so the
/// plain simulation path pays only an untaken branch per field write.
class ModuleState {
 public:
  explicit ModuleState(const StateLayout& layout)
      : layout_(&layout), bits_(layout.bits()) {}

  std::uint64_t get(FieldRef f) const {
    return bits_.get_field(f.offset, f.width);
  }
  void set(FieldRef f, std::uint64_t v) {
    if (track_) {
      const std::uint64_t old = bits_.get_field(f.offset, f.width);
      if (old == v) return;
      digest_ ^= state_digest_mix(salt_, f.offset, old) ^
                 state_digest_mix(salt_, f.offset, v);
    }
    bits_.set_field(f.offset, f.width, v);
  }
  bool get_flag(FieldRef f) const { return get(f) != 0; }

  /// Sign-extends a field read as a two's-complement value.
  std::int64_t get_signed(FieldRef f) const {
    const std::uint64_t v = get(f);
    if (f.width == 64) return static_cast<std::int64_t>(v);
    const std::uint64_t sign = std::uint64_t{1} << (f.width - 1);
    return static_cast<std::int64_t>((v ^ sign)) -
           static_cast<std::int64_t>(sign);
  }

  /// Stuck-at drive primitive: forces `bit` to `value`, a no-op when the
  /// flip-flop already holds it (so the digest stays exact either way).
  void force(std::size_t bit, bool value) {
    if (bits_.get(bit) != value) flip(bit);
  }

  /// The fault-injection primitive.
  void flip(std::size_t bit) {
    if (!track_) {
      bits_.flip(bit);
      return;
    }
    const FieldInfo& fi = layout_->field_at(bit);
    digest_ ^= state_digest_mix(salt_, fi.offset,
                                bits_.get_field(fi.offset, fi.width));
    bits_.flip(bit);
    digest_ ^= state_digest_mix(salt_, fi.offset,
                                bits_.get_field(fi.offset, fi.width));
  }
  /// Clears every flip-flop (power-on reset).
  void reset() {
    bits_.clear();
    digest_ = 0;
  }

  std::size_t size() const { return bits_.size(); }
  const StateLayout& layout() const { return *layout_; }

  // ---- digest tracking (checkpoint/convergence fast path) --------------

  /// Enables (recomputing the digest from the live bits) or disables
  /// incremental digest maintenance. `salt` is the bank's digest domain.
  void set_tracking(bool on, std::uint64_t salt);
  bool tracking() const { return track_; }
  /// Current content digest (only meaningful while tracking).
  std::uint64_t digest() const { return digest_; }

  /// Raw bit image (checkpoint capture).
  const BitVector& bits() const { return bits_; }
  /// Restores a checkpointed bit image plus its digest. Sizes must match.
  void load(const BitVector& bits, std::uint64_t digest);

 private:
  const StateLayout* layout_;
  BitVector bits_;
  std::uint64_t salt_ = 0;
  std::uint64_t digest_ = 0;
  bool track_ = false;
};

}  // namespace gpufi::rtl
