#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "rtl/layouts.hpp"
#include "rtl/state.hpp"

namespace gpufi::rtl {

/// Launch geometry for the RTL model (one CTA executes at a time on the
/// single modelled SM; CTAs of a grid run back to back).
struct GridDims {
  unsigned grid_x = 1, grid_y = 1;
  unsigned block_x = 1, block_y = 1;

  unsigned threads_per_cta() const { return block_x * block_y; }
  unsigned ctas() const { return grid_x * grid_y; }
};

/// A single transient fault: flip `bit` of `module` when the global cycle
/// counter reaches `cycle`. The flipped value persists until normal pipeline
/// operation overwrites the flip-flop (transient fault semantics).
struct FaultSpec {
  Module module = Module::PipelineRegs;
  std::uint32_t bit = 0;
  std::uint64_t cycle = 0;
};

/// Terminal status of an RTL run.
enum class RunStatus {
  Ok,        ///< orderly completion
  Trap,      ///< detected illegal state (invalid PC/opcode, OOB access, ...)
  Watchdog,  ///< cycle limit expired (hang / deadlock / livelock)
};

/// Outcome of one RTL execution.
struct RunResult {
  RunStatus status = RunStatus::Ok;
  std::string trap_reason;
  std::uint64_t cycles = 0;
};

/// Cycle-level model of one G80-style streaming multiprocessor with
/// explicit, faultable flip-flop state for the six modules of Table I.
///
/// The execution style follows FlexGripPlus: blocking in-order issue, one
/// warp instruction in flight, a 32-thread warp processed as four beats of
/// eight lanes, two shared SFUs behind an arbitration controller. All
/// architectural memories (register file, predicate file, shared and global
/// memory, program ROM) are modelled as plain storage and are NOT fault
/// targets, mirroring the paper's ECC assumption.
class Sm {
 public:
  explicit Sm(std::size_t global_words = 1 << 20);

  // ---- host-side memory interface (word addressed) --------------------
  std::uint32_t alloc(std::size_t words);
  void reset_allocator() { alloc_watermark_ = 0; }
  std::uint32_t read_word(std::uint32_t addr) const;
  void write_word(std::uint32_t addr, std::uint32_t value);
  float read_float(std::uint32_t addr) const;
  void write_float(std::uint32_t addr, float value);
  void fill(std::uint32_t addr, std::size_t words, std::uint32_t value);
  std::size_t global_words() const { return global_.size(); }
  /// Snapshot of the whole global memory (for golden/faulty comparison).
  const std::vector<std::uint32_t>& global() const { return global_; }
  /// Restores a snapshot (e.g. re-arming inputs between injections).
  void set_global(std::vector<std::uint32_t> mem) { global_ = std::move(mem); }

  /// Runs a kernel with no fault. `max_cycles` = 0 means unlimited-ish
  /// (2^62). Returns cycle count for fault-window sizing.
  RunResult run(const isa::Program& prog, const GridDims& dims,
                std::uint64_t max_cycles = 0);

  /// Runs a kernel with one transient fault injected.
  RunResult run_with_fault(const isa::Program& prog, const GridDims& dims,
                           const FaultSpec& fault, std::uint64_t max_cycles);

  /// Read access to a module's flip-flop bank (tests/reports).
  const ModuleState& module_state(Module m) const;

 private:
  RunResult execute(const isa::Program& prog, const GridDims& dims,
                    const std::optional<FaultSpec>& fault,
                    std::uint64_t max_cycles);

  std::vector<std::uint32_t> global_;
  std::size_t alloc_watermark_ = 0;

  ModuleState sched_;
  ModuleState intfu_;
  ModuleState fpfu_;
  ModuleState sfu_;
  ModuleState sfuctl_;
  ModuleState pipe_;
};

}  // namespace gpufi::rtl
