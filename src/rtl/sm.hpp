#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "isa/isa.hpp"
#include "rtl/layouts.hpp"
#include "rtl/liveness.hpp"
#include "rtl/state.hpp"

namespace gpufi::rtl {

/// Launch geometry for the RTL model (one CTA executes at a time on the
/// single modelled SM; CTAs of a grid run back to back).
struct GridDims {
  unsigned grid_x = 1, grid_y = 1;
  unsigned block_x = 1, block_y = 1;

  unsigned threads_per_cta() const { return block_x * block_y; }
  unsigned ctas() const { return grid_x * grid_y; }
};

/// How an injected fault manifests over time — the fault-model axis that
/// generalizes the paper's single transient-flip assumption (the permanent /
/// intermittent taxonomy of the follow-up control-unit studies).
enum class FaultModel : std::uint8_t {
  /// One bit flip at `cycle`; the flipped value persists only until normal
  /// pipeline operation overwrites the flip-flop.
  Transient,
  /// The bit is forced to 0 at every clock edge inside the fault window
  /// [cycle, cycle+duration) — any pipeline write is re-overridden on the
  /// next edge. duration = 0 keeps the window open forever (permanent).
  StuckAt0,
  /// As StuckAt0 but forced to 1.
  StuckAt1,
  /// Intermittent burst: the bit is re-flipped every `period` cycles inside
  /// the fault window (marginal-cell / noise-coupling behaviour).
  IntermittentBurst,
};

/// Number of fault models.
constexpr std::size_t kNumFaultModels = 4;

/// Human-readable fault-model name ("transient", "stuck-at-0", ...).
std::string_view fault_model_name(FaultModel m);

/// A single injected fault: location (`module`, `bit`), activation cycle,
/// and the temporal shape given by `model`/`duration`/`period`.
struct FaultSpec {
  Module module = Module::PipelineRegs;
  std::uint32_t bit = 0;
  std::uint64_t cycle = 0;
  FaultModel model = FaultModel::Transient;
  /// Fault-window length in cycles for the non-transient models; 0 keeps
  /// the window open forever (a permanent fault). Ignored for Transient.
  std::uint64_t duration = 0;
  /// Re-flip period of IntermittentBurst (cycles, minimum 1).
  std::uint64_t period = 1;

  /// True when the fault window never closes (non-transient, duration 0).
  bool permanent() const {
    return model != FaultModel::Transient && duration == 0;
  }
};

/// Watchdog applied to faulty runs launched without an explicit cycle
/// bound: a stuck-at in the scheduler can starve the issue FSM forever, so
/// a faulted run is never truly unlimited — it classifies as a hang (DUE)
/// once this many cycles elapse. Campaigns size a tighter bound from the
/// golden cycle count; this cap only backstops direct run_with_fault /
/// resume_with_fault calls.
constexpr std::uint64_t kFaultyRunCycleCap = std::uint64_t{1} << 22;

/// Terminal status of an RTL run.
enum class RunStatus {
  Ok,        ///< orderly completion
  Trap,      ///< detected illegal state (invalid PC/opcode, OOB access, ...)
  Watchdog,  ///< cycle limit expired (hang / deadlock / livelock)
};

/// Outcome of one RTL execution.
struct RunResult {
  RunStatus status = RunStatus::Ok;
  std::string trap_reason;
  std::uint64_t cycles = 0;
  /// True when the run was cut short because the full machine state
  /// re-converged with the golden reference — the remainder of the run is
  /// then provably the golden suffix, so the outcome (including every
  /// memory word) is identical to running to completion. `cycles` reports
  /// the golden run's cycle count in that case.
  bool converged = false;
};

/// Architectural memory with an incrementally maintained content digest and
/// a high watermark over its touched prefix. Invariant: every element at
/// index >= hi() is T{}. clear(), snapshot() and restore() are therefore
/// proportional to the touched prefix, not to the (multi-megaword) array.
template <class T>
class TrackedArray {
 public:
  /// Prefix copy of the array (checkpoint building block).
  struct Snapshot {
    std::vector<T> prefix;  ///< copy of [0, hi) at capture
    std::size_t size = 0;   ///< full array size at capture
    std::uint64_t digest = 0;
  };

  /// (Re)initializes to `n` zero elements under digest domain `salt`.
  void init(std::size_t n, std::uint64_t salt) {
    v_.assign(n, T{});
    salt_ = salt;
    hi_ = 0;
    digest_ = 0;
  }
  /// Resizes to `n` zero elements (keeps salt and tracking mode).
  void resize_clear(std::size_t n) {
    if (v_.size() == n) {
      clear();
      return;
    }
    v_.assign(n, T{});
    hi_ = 0;
    digest_ = 0;
  }

  std::size_t size() const { return v_.size(); }
  T operator[](std::size_t i) const { return v_[i]; }
  const std::vector<T>& vec() const { return v_; }

  /// The only mutation primitive: writes element `i`, maintaining the
  /// watermark and (when tracking) the digest.
  void store(std::size_t i, T val) {
    T& slot = v_[i];
    if (slot == val) return;
    if (track_)
      digest_ ^= state_digest_mix(salt_, i, slot) ^
                 state_digest_mix(salt_, i, val);
    slot = val;
    if (i >= hi_) hi_ = i + 1;
  }

  /// Zeroes the touched prefix (equivalent to zeroing the whole array).
  void clear() {
    std::fill(v_.begin(), v_.begin() + static_cast<std::ptrdiff_t>(hi_), T{});
    hi_ = 0;
    digest_ = 0;
  }

  std::size_t hi() const { return hi_; }
  std::uint64_t digest() const { return digest_; }

  void set_tracking(bool on) {
    if (on && !track_) {
      digest_ = 0;
      for (std::size_t i = 0; i < hi_; ++i)
        digest_ ^= state_digest_mix(salt_, i,
                                    static_cast<std::uint64_t>(v_[i]));
    }
    track_ = on;
  }
  bool tracking() const { return track_; }

  Snapshot snapshot() const {
    Snapshot s;
    s.prefix.assign(v_.begin(),
                    v_.begin() + static_cast<std::ptrdiff_t>(hi_));
    s.size = v_.size();
    s.digest = digest_;
    return s;
  }
  void restore(const Snapshot& s) {
    if (v_.size() != s.size)
      v_.assign(s.size, T{});
    else if (hi_ > s.prefix.size())
      std::fill(v_.begin() + static_cast<std::ptrdiff_t>(s.prefix.size()),
                v_.begin() + static_cast<std::ptrdiff_t>(hi_), T{});
    std::copy(s.prefix.begin(), s.prefix.end(), v_.begin());
    hi_ = s.prefix.size();
    digest_ = s.digest;
  }

 private:
  std::vector<T> v_;
  std::size_t hi_ = 0;
  std::uint64_t salt_ = 0;
  std::uint64_t digest_ = 0;
  bool track_ = false;
};

/// Full microarchitectural state of an Sm at one instant: the six flip-flop
/// banks of Table I, every architectural memory, and the position within
/// the run (cycle counter, CTA loop index). Checkpoints captured at a
/// scheduler quiescent point (`quiescent == true`) are resumable — the
/// interpreter holds no implicit C++ state there, so execution can continue
/// from the restored image; mid-instruction captures are restorable only.
struct SmCheckpoint {
  std::uint64_t cycle = 0;
  unsigned cta = 0;
  bool quiescent = false;
  std::uint64_t digest = 0;  ///< composite state digest at capture

  struct ModuleSnap {
    BitVector bits;
    std::uint64_t digest = 0;
  };
  std::array<ModuleSnap, kNumModules> modules;  ///< indexed by Module
  TrackedArray<std::uint32_t>::Snapshot global, regs, shared;
  TrackedArray<std::uint8_t>::Snapshot preds;
};

/// Golden-run acceleration artifact: a ladder of resumable checkpoints plus
/// the digest timeline faulty trials compare against to exit early. Built
/// once per campaign and shared read-only by every trial.
struct GoldenTrace {
  RunResult result;
  /// Checkpoints in capture order (ascending cycle). Contains one resumable
  /// rung at least every `checkpoint_interval` cycles — always including
  /// cycle 0 — plus any requested mid-instruction captures.
  std::vector<SmCheckpoint> checkpoints;
  /// Composite digest at every scheduler quiescent point of the golden run.
  /// When two quiescent points share a cycle (a CTA boundary), the first
  /// wins; a missed lookup only delays an early exit, never causes one.
  std::unordered_map<std::uint64_t, std::uint64_t> digest_at;

  /// Latest resumable checkpoint with cycle <= c (nullptr only when the
  /// trace is empty: a traced run always records a rung at cycle 0).
  const SmCheckpoint* floor(std::uint64_t c) const;
};

/// Cycle-level model of one G80-style streaming multiprocessor with
/// explicit, faultable flip-flop state for the six modules of Table I.
///
/// The execution style follows FlexGripPlus: blocking in-order issue, one
/// warp instruction in flight, a 32-thread warp processed as four beats of
/// eight lanes, two shared SFUs behind an arbitration controller. All
/// architectural memories (register file, predicate file, shared and global
/// memory, program ROM) are modelled as plain storage and are NOT fault
/// targets, mirroring the paper's ECC assumption.
class Sm {
 public:
  explicit Sm(std::size_t global_words = 1 << 20);

  // ---- host-side memory interface (word addressed) --------------------
  std::uint32_t alloc(std::size_t words);
  void reset_allocator() { alloc_watermark_ = 0; }
  std::uint32_t read_word(std::uint32_t addr) const;
  void write_word(std::uint32_t addr, std::uint32_t value);
  float read_float(std::uint32_t addr) const;
  void write_float(std::uint32_t addr, float value);
  void fill(std::uint32_t addr, std::size_t words, std::uint32_t value);
  std::size_t global_words() const { return global_.size(); }
  /// Snapshot of the whole global memory (for golden/faulty comparison).
  const std::vector<std::uint32_t>& global() const { return global_.vec(); }
  /// Zeroes global memory (cheap: only the touched prefix is written), so
  /// every injection starts from the same power-on memory image.
  void clear_global() { global_.clear(); }

  /// Runs a kernel with no fault. `max_cycles` = 0 means unlimited-ish
  /// (2^62). Returns cycle count for fault-window sizing.
  RunResult run(const isa::Program& prog, const GridDims& dims,
                std::uint64_t max_cycles = 0);

  /// Runs a kernel with no fault while recording the per-cycle liveness
  /// timeline (which dynamic instruction occupies the machine at each
  /// cycle), for fault-site attribution against the same seeds/cycles a
  /// campaign draws. The timeline is cleared, filled, and finalized.
  RunResult run(const isa::Program& prog, const GridDims& dims,
                LivenessTimeline& liveness, std::uint64_t max_cycles = 0);

  /// Runs a kernel with one transient fault injected.
  RunResult run_with_fault(const isa::Program& prog, const GridDims& dims,
                           const FaultSpec& fault, std::uint64_t max_cycles);

  // ---- checkpoint / state-digest fast path ----------------------------

  /// Turns on incremental digest maintenance for every state component
  /// (recomputing digests from the live state). Idempotent. The plain run
  /// paths never require this; the traced/resumed paths enable it as
  /// needed.
  void enable_digest_tracking();
  bool digest_tracking() const { return tracking_; }
  /// Composite digest over the six flip-flop banks and all architectural
  /// memories (meaningful while digest tracking is on).
  std::uint64_t state_digest() const;

  /// Captures the current at-rest state (enables tracking). The result is
  /// restorable but not resumable (no run position is associated with it).
  SmCheckpoint checkpoint();
  /// Restores a checkpoint previously captured from an Sm with the same
  /// layouts. Digest tracking state is preserved.
  void restore(const SmCheckpoint& c);

  /// Golden run that additionally records the acceleration trace: one
  /// resumable checkpoint-ladder rung at least every `checkpoint_interval`
  /// cycles (always including cycle 0) and the digest timeline at every
  /// scheduler quiescent point. `capture_at` requests extra restorable
  /// mid-instruction checkpoints at exact cycle numbers (a testing hook).
  RunResult run_traced(const isa::Program& prog, const GridDims& dims,
                       GoldenTrace& trace, std::uint64_t checkpoint_interval,
                       std::uint64_t max_cycles = 0,
                       std::vector<std::uint64_t> capture_at = {});

  /// Fault-injection run that fast-forwards by restoring `from` (a
  /// resumable checkpoint with cycle <= fault.cycle) instead of replaying
  /// the fault-free prefix from reset; the fault fires on exactly the same
  /// cycle as it would in a full replay. When `golden` is given, the run
  /// additionally compares its state digest against the golden timeline
  /// every `check_interval` cycles once the fault is in, and returns
  /// `converged = true` (status Ok) the moment the full machine state
  /// coincides with the golden run's at the same cycle.
  RunResult resume_with_fault(const isa::Program& prog, const GridDims& dims,
                              const FaultSpec& fault, std::uint64_t max_cycles,
                              const SmCheckpoint& from,
                              const GoldenTrace* golden = nullptr,
                              std::uint64_t check_interval = 16);

  /// Read access to a module's flip-flop bank (tests/reports).
  const ModuleState& module_state(Module m) const;

 private:
  RunResult execute(const isa::Program& prog, const GridDims& dims,
                    const std::optional<FaultSpec>& fault,
                    std::uint64_t max_cycles);
  ModuleState& bank(Module m);
  void set_tracking(bool on);
  SmCheckpoint snap(std::uint64_t cycle, unsigned cta, bool quiescent) const;

  TrackedArray<std::uint32_t> global_;
  std::size_t alloc_watermark_ = 0;
  bool tracking_ = false;

  ModuleState sched_;
  ModuleState intfu_;
  ModuleState fpfu_;
  ModuleState sfu_;
  ModuleState sfuctl_;
  ModuleState pipe_;

  // Architectural memories live here (not in the per-run interpreter) so
  // checkpoints can capture and restore them.
  TrackedArray<std::uint32_t> regs_, shared_;
  TrackedArray<std::uint8_t> preds_;
};

}  // namespace gpufi::rtl
