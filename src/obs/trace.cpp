#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace gpufi::obs {

namespace {

std::mutex g_sink_mutex;
std::shared_ptr<TraceSink> g_sink;
std::atomic<bool> g_sink_installed{false};
std::atomic<std::uint64_t> g_next_span_id{1};

thread_local std::vector<std::uint64_t> t_span_stack;

std::chrono::steady_clock::time_point process_start() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

// Touch the epoch at static-init time so now_us() is monotone from early in
// the process, not from the first span.
const auto g_epoch_init = process_start();

}  // namespace

std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - process_start())
          .count());
}

// ---------------------------------------------------------------------------
// TraceSink.
// ---------------------------------------------------------------------------

TraceSink::~TraceSink() {
  // Atomic publish: close the staging file, then rename it over the target
  // so readers only ever observe a complete trace (or the previous one).
  owned_.reset();
  if (!tmp_path_.empty() && !final_path_.empty())
    std::rename(tmp_path_.c_str(), final_path_.c_str());
}

std::shared_ptr<TraceSink> TraceSink::open(const std::string& path) {
  const std::string tmp = path + ".tmp";
  auto file = std::make_unique<std::ofstream>(tmp, std::ios::trunc);
  if (!*file)
    throw std::runtime_error("cannot open trace file: " + tmp);
  auto sink = std::shared_ptr<TraceSink>(new TraceSink);
  sink->out_ = file.get();
  sink->owned_ = std::move(file);
  sink->tmp_path_ = tmp;
  sink->final_path_ = path;
  return sink;
}

std::shared_ptr<TraceSink> TraceSink::to_stream(std::ostream& out) {
  auto sink = std::shared_ptr<TraceSink>(new TraceSink);
  sink->out_ = &out;
  return sink;
}

void TraceSink::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  *out_ << line << '\n';
  out_->flush();
  ++lines_;
}

std::uint64_t TraceSink::lines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

void set_trace_sink(std::shared_ptr<TraceSink> sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
  g_sink_installed.store(g_sink != nullptr, std::memory_order_release);
}

std::shared_ptr<TraceSink> trace_sink() {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  return g_sink;
}

bool tracing() noexcept {
  return enabled() && g_sink_installed.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// JSON helpers.
// ---------------------------------------------------------------------------

std::string json_escape(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Span.
// ---------------------------------------------------------------------------

Span::Span(std::string_view name) {
  if (!tracing()) return;
  active_ = true;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_span_stack.empty() ? 0 : t_span_stack.back();
  start_us_ = now_us();
  name_ = name;
  t_span_stack.push_back(id_);
}

Span::~Span() {
  if (!active_) return;
  if (!t_span_stack.empty() && t_span_stack.back() == id_)
    t_span_stack.pop_back();
  const std::uint64_t end = now_us();
  const auto sink = trace_sink();
  if (!sink) return;  // sink removed while the span was open
  std::string line = "{\"type\":\"span\",\"name\":\"";
  line += json_escape(name_);
  line += "\",\"span\":";
  line += std::to_string(id_);
  line += ",\"parent\":";
  line += std::to_string(parent_);
  line += ",\"t_us\":";
  line += std::to_string(start_us_);
  line += ",\"dur_us\":";
  line += std::to_string(end - start_us_);
  for (const auto& [key, value] : fields_) {
    line += ",\"";
    line += json_escape(key);
    line += "\":\"";
    line += json_escape(value);
    line += '"';
  }
  line += '}';
  sink->write_line(line);
}

void Span::set(std::string_view key, std::string_view value) {
  if (!active_) return;
  fields_.emplace_back(std::string(key), std::string(value));
}

void Span::set(std::string_view key, std::uint64_t value) {
  if (!active_) return;
  fields_.emplace_back(std::string(key), std::to_string(value));
}

// ---------------------------------------------------------------------------
// Events.
// ---------------------------------------------------------------------------

void event(std::string_view name,
           std::initializer_list<std::pair<std::string_view, std::string_view>>
               fields) {
  if (!tracing()) return;
  const auto sink = trace_sink();
  if (!sink) return;
  std::string line = "{\"type\":\"event\",\"name\":\"";
  line += json_escape(name);
  line += "\",\"t_us\":";
  line += std::to_string(now_us());
  line += ",\"span\":";
  line += std::to_string(t_span_stack.empty() ? 0 : t_span_stack.back());
  for (const auto& [key, value] : fields) {
    line += ",\"";
    line += json_escape(key);
    line += "\":\"";
    line += json_escape(value);
    line += '"';
  }
  line += '}';
  sink->write_line(line);
}

}  // namespace gpufi::obs
