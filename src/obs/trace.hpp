#pragma once

// gpufi-obs tracing: phase-scoped spans and instantaneous events written as
// one JSON object per line (JSONL) to a process-wide sink.
//
// A Span is an RAII scope: it records its start on construction and emits a
// single line on destruction carrying name, span id, parent id (from a
// thread-local span stack), start offset, duration and any set() fields.
// With no sink installed (the default) spans are inert — a couple of branch
// checks, no allocation — so campaign code can create them unconditionally.
//
// Like metrics, tracing is a pure observer: no span or event value ever
// feeds back into trial computation, so enabling --trace-out cannot change
// campaign results (pinned by the rtlfi equivalence suite).

#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace gpufi::obs {

/// Thread-safe JSONL line writer. Owns a file (open()) or borrows a stream
/// (to_stream(), tests); every emitted line is written and flushed under one
/// mutex so concurrent spans never interleave bytes.
class TraceSink {
 public:
  ~TraceSink();

  /// Opens `path` for writing (truncates). The sink actually writes to
  /// `path + ".tmp"` and renames it over `path` on destruction, so a
  /// crashed or interrupted run never leaves a torn half-written trace at
  /// the requested path. Throws std::runtime_error when the temporary file
  /// cannot be opened.
  static std::shared_ptr<TraceSink> open(const std::string& path);

  /// Wraps a caller-owned stream (not closed on destruction) — test helper.
  static std::shared_ptr<TraceSink> to_stream(std::ostream& out);

  /// Writes one complete JSONL line (no trailing newline expected).
  void write_line(const std::string& line);

  /// Number of lines written so far.
  std::uint64_t lines() const;

 private:
  TraceSink() = default;

  mutable std::mutex mutex_;
  std::ostream* out_ = nullptr;      ///< borrowed (to_stream)
  std::unique_ptr<std::ostream> owned_;  ///< owned (open)
  std::string tmp_path_;    ///< staging file while the sink is live
  std::string final_path_;  ///< rename target on destruction
  std::uint64_t lines_ = 0;
};

/// Installs / clears the process-wide sink. Passing nullptr disables
/// tracing; spans created while no sink is installed stay inert even if a
/// sink appears before they close.
void set_trace_sink(std::shared_ptr<TraceSink> sink);
std::shared_ptr<TraceSink> trace_sink();

/// True when tracing is live: obs enabled and a sink installed. One relaxed
/// atomic load — safe to call per trial.
bool tracing() noexcept;

/// Escapes `v` for embedding inside a JSON string literal.
std::string json_escape(std::string_view v);

/// RAII trace span. Usage:
///   obs::Span span("rtlfi.run_campaign");
///   span.set("module", module_name);
///   span.set("faults", n);
/// Parent linkage comes from a thread-local stack, so nest spans on the
/// thread whose phase they describe.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a field emitted with the span line. No-ops when inactive.
  void set(std::string_view key, std::string_view value);
  void set(std::string_view key, std::uint64_t value);

  bool active() const noexcept { return active_; }
  std::uint64_t id() const noexcept { return id_; }

 private:
  bool active_ = false;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t start_us_ = 0;
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Emits an instantaneous event line: {"type":"event","name":...,fields...}.
/// Fields are key/value string pairs. No-op when tracing() is false.
void event(std::string_view name,
           std::initializer_list<std::pair<std::string_view, std::string_view>>
               fields = {});

/// Microseconds since process start (steady clock) — the time base every
/// span and event line uses.
std::uint64_t now_us() noexcept;

}  // namespace gpufi::obs
