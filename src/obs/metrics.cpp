#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace gpufi::obs {

namespace detail {
std::atomic<bool> g_enabled{true};
}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

const std::vector<double>& default_latency_buckets() {
  // 1-2-5 ladder: microseconds through 10 s. Trials span six orders of
  // magnitude (sw injections ~ms, watchdog-bound RTL stuck-at trials ~s).
  static const std::vector<double> kBuckets = {
      1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
      5e-3, 1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,  1.0,  2.0,  5.0,  10.0};
  return kBuckets;
}

namespace {

/// Index of the bucket (last = +Inf overflow) for an observed value — the
/// one bucket-assignment function shared by Histogram and HistogramData so
/// the atomic and sharded paths can never disagree.
std::size_t bucket_index(const std::vector<double>& bounds, double v) {
  return static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

void Histogram::observe(double v) noexcept {
  counts_[bucket_index(bounds_, v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loop: std::atomic<double>::fetch_add is C++20 but not universally
  // lowered; compare_exchange is portable and the histogram sum is not a
  // contended hot path (the trial loop goes through shards).
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::merge_data(const HistogramData& data) noexcept {
  const std::size_t n = std::min(counts_.size(), data.counts.size());
  for (std::size_t i = 0; i < n; ++i)
    counts_[i].fetch_add(data.counts[i], std::memory_order_relaxed);
  count_.fetch_add(data.count, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + data.sum,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    out[i] = counts_[i].load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// Shards.
// ---------------------------------------------------------------------------

void HistogramData::observe(double v) {
  if (counts.empty()) counts.resize(default_latency_buckets().size() + 1);
  ++counts[bucket_index(default_latency_buckets(), v)];
  sum += v;
  ++count;
}

void HistogramData::merge(const HistogramData& other) {
  if (counts.empty()) counts.resize(default_latency_buckets().size() + 1);
  for (std::size_t i = 0; i < other.counts.size(); ++i)
    counts[i] += other.counts[i];
  sum += other.sum;
  count += other.count;
}

void Shard::add(std::string_view counter, std::uint64_t n) {
  auto it = counters_.find(counter);
  if (it == counters_.end())
    counters_.emplace(std::string(counter), n);
  else
    it->second += n;
}

void Shard::observe(std::string_view histogram, double v) {
  auto it = histograms_.find(histogram);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(histogram), HistogramData{}).first;
  it->second.observe(v);
}

void Shard::merge(const Shard& other) {
  for (const auto& [name, n] : other.counters_) add(name, n);
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end())
      it = histograms_.emplace(name, HistogramData{}).first;
    it->second.merge(h);
  }
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  return histogram(name, default_latency_buckets());
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  return *it->second;
}

void Registry::absorb(const Shard& shard) {
  for (const auto& [name, n] : shard.counters()) counter(name).add(n);
  for (const auto& [name, h] : shard.histograms())
    histogram(name).merge_data(h);
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::int64_t Registry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Registry& Registry::global() {
  static Registry* instance = new Registry;  // never destroyed: metrics may
                                             // be touched during exit paths
  return *instance;
}

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

namespace {

/// Family name = metric name up to the label block.
std::string_view family_of(std::string_view name) {
  const auto brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

std::string fmt_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

}  // namespace

std::string Registry::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  std::string_view last_family;
  const auto type_header = [&](std::string_view name, const char* type) {
    const std::string_view family = family_of(name);
    if (family == last_family) return;
    last_family = family;
    out += "# TYPE ";
    out += family;
    out += ' ';
    out += type;
    out += '\n';
  };
  for (const auto& [name, c] : counters_) {
    type_header(name, "counter");
    out += name;
    out += ' ';
    out += std::to_string(c->value());
    out += '\n';
  }
  last_family = {};
  for (const auto& [name, g] : gauges_) {
    type_header(name, "gauge");
    out += name;
    out += ' ';
    out += std::to_string(g->value());
    out += '\n';
  }
  last_family = {};
  for (const auto& [name, h] : histograms_) {
    type_header(name, "histogram");
    const auto counts = h->bucket_counts();
    const auto& bounds = h->bounds();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      out += name;
      out += "_bucket{le=\"";
      out += i < bounds.size() ? fmt_num(bounds[i]) : "+Inf";
      out += "\"} ";
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += name;
    out += "_sum ";
    out += fmt_num(h->sum());
    out += '\n';
    out += name;
    out += "_count ";
    out += std::to_string(h->count());
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Hot-path helpers.
// ---------------------------------------------------------------------------

namespace {
thread_local Shard* t_shard = nullptr;
}  // namespace

ScopedShard::ScopedShard(Shard* shard) noexcept : prev_(t_shard) {
  if (shard) t_shard = shard;
}

ScopedShard::~ScopedShard() { t_shard = prev_; }

Shard* ScopedShard::current() noexcept { return t_shard; }

void count(std::string_view name, std::uint64_t n) {
  if (!enabled()) return;
  if (Shard* shard = t_shard)
    shard->add(name, n);
  else
    Registry::global().counter(name).add(n);
}

void observe(std::string_view name, double v) {
  if (!enabled()) return;
  if (Shard* shard = t_shard)
    shard->observe(name, v);
  else
    Registry::global().histogram(name).observe(v);
}

void set_gauge(std::string_view name, std::int64_t v) {
  if (!enabled()) return;
  Registry::global().gauge(name).set(v);
}

void add_gauge(std::string_view name, std::int64_t d) {
  if (!enabled()) return;
  Registry::global().gauge(name).add(d);
}

std::string label(std::string_view name, std::string_view key,
                  std::string_view value) {
  std::string out;
  out.reserve(name.size() + key.size() + value.size() + 5);
  if (!name.empty() && name.back() == '}') {
    out.append(name.substr(0, name.size() - 1));
    out += ',';
  } else {
    out.append(name);
    out += '{';
  }
  out += key;
  out += "=\"";
  out += value;
  out += "\"}";
  return out;
}

}  // namespace gpufi::obs
