#pragma once

// gpufi-obs metrics: a process-wide registry of monotonic counters, gauges
// and fixed-bucket histograms, rendered as a Prometheus-style text
// exposition.
//
// Two write paths exist:
//  * direct — count()/observe() outside a campaign hit the global registry's
//    atomics (cheap, commutative, schedule-dependent arrival order);
//  * sharded — inside exec::run_trials every chunk owns a private Shard
//    (installed via ScopedShard as the thread-local sink), accumulated
//    without synchronization and absorbed into the registry in chunk-index
//    order after the pool joins. Chunking is a pure function of the trial
//    count, so the merge sequence — and with it every counter value and
//    histogram bucket — is identical for any --jobs value.
//
// Determinism contract: observability is strictly read-only with respect to
// campaign computation. No metric, span or sink ever feeds a value back into
// a trial, so Result payloads and syndrome-DB bytes are byte-identical with
// observability enabled, runtime-disabled (set_enabled(false)) or compiled
// out (-DGPUFI_OBS_DISABLED via the GPUFI_OBS=OFF CMake option).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gpufi::obs {

/// False when the library was compiled out (GPUFI_OBS=OFF): enabled() is a
/// constant false and every hot-path helper folds to a no-op.
#if defined(GPUFI_OBS_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Runtime master switch (default on). Disabled, every count/observe/span is
/// an early-return; campaign results are identical either way.
inline bool enabled() noexcept {
  if constexpr (!kCompiledIn) return false;
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

// ---------------------------------------------------------------------------
// Metric primitives.
// ---------------------------------------------------------------------------

/// Monotonic counter (atomic, relaxed: values are aggregates, not fences).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time signed value (queue depths, active jobs).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// The fixed latency bucket ladder (seconds, 1-2-5 decades from 1us to 10s)
/// shared by every histogram created without explicit bounds. Fixed bounds
/// make bucket assignment a pure function of the observed value — the
/// histogram-determinism half of the shard-merge contract.
const std::vector<double>& default_latency_buckets();

/// Fixed-bucket histogram. Bucket `i` counts observations <= bounds[i]; one
/// implicit +Inf bucket catches the rest. Thread-safe via relaxed atomics
/// (sum uses a CAS loop; double addition order is unspecified on the direct
/// path, fixed on the sharded path).
struct HistogramData;

class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  /// Folds a shard histogram in: element-wise bucket adds plus the shard's
  /// exact sum — the registry ends up with the same buckets, count and sum
  /// as if every observation had been made directly. Requires the shard's
  /// bucket ladder (the default one) to match this histogram's.
  void merge_data(const HistogramData& data) noexcept;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (bounds().size() + 1 entries, last = +Inf).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// ---------------------------------------------------------------------------
// Shards: unsynchronized per-chunk accumulation, deterministic merge.
// ---------------------------------------------------------------------------

/// Plain-data histogram used inside shards (no atomics — a shard is owned by
/// exactly one worker until it is merged). Always uses the default latency
/// bucket ladder so shard and registry histograms line up bucket for bucket.
struct HistogramData {
  std::vector<std::uint64_t> counts;  ///< default bounds + 1 entries
  double sum = 0.0;
  std::uint64_t count = 0;

  void observe(double v);
  /// Element-wise accumulation; exact (and therefore associative) for
  /// bucket/count integers, order-fixed for the double sum.
  void merge(const HistogramData& other);
};

/// A private metrics accumulator: counter increments and histogram
/// observations keyed by metric name, added without any synchronization.
/// Shard merge is associative on counters and bucket counts, so any grouping
/// of shards merged in the same order yields the same totals — the property
/// obs_test pins and run_trials relies on when it absorbs shards in
/// chunk-index order.
class Shard {
 public:
  void add(std::string_view counter, std::uint64_t n = 1);
  void observe(std::string_view histogram, double v);

  /// Folds `other` into this shard (counter adds + histogram merges).
  void merge(const Shard& other);

  bool empty() const { return counters_.empty() && histograms_.empty(); }
  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, HistogramData, std::less<>>& histograms()
      const {
    return histograms_;
  }

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, HistogramData, std::less<>> histograms_;
};

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

/// Process-wide metric registry. Metric names follow Prometheus conventions
/// and may carry a baked-in label set: `gpufi_rtl_outcomes_total` or
/// `gpufi_rtl_outcomes_total{model="transient",outcome="SDC"}`. Lookup takes
/// a mutex; returned references are stable for the registry's lifetime, so
/// hot paths either cache the reference or accumulate through a Shard.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Histogram with the default latency buckets (the only bucket ladder the
  /// sharded path produces).
  Histogram& histogram(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Folds a shard's accumulations into the registry. run_trials calls this
  /// once per chunk, in chunk-index order, after the pool has joined.
  void absorb(const Shard& shard);

  /// Prometheus text exposition: counters, then gauges, then histograms,
  /// each family sorted by name with a single `# TYPE` header — a
  /// deterministic function of the registry contents.
  std::string render_prometheus() const;

  /// Reads a counter/gauge without creating it (0 when absent) — test and
  /// assertion helper.
  std::uint64_t counter_value(std::string_view name) const;
  std::int64_t gauge_value(std::string_view name) const;

  /// Drops every metric (tests only; references from before are invalid).
  void reset();

  /// The process-wide instance every layer reports into.
  static Registry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// ---------------------------------------------------------------------------
// Hot-path helpers (shard-aware).
// ---------------------------------------------------------------------------

/// Installs a Shard as this thread's metrics sink for the current scope:
/// count()/observe() land in the shard instead of the global registry.
/// run_trials wraps each chunk in one so trial-loop metrics merge in
/// deterministic chunk order. A null shard leaves the direct path active.
class ScopedShard {
 public:
  explicit ScopedShard(Shard* shard) noexcept;
  ~ScopedShard();
  ScopedShard(const ScopedShard&) = delete;
  ScopedShard& operator=(const ScopedShard&) = delete;

  /// The currently installed shard of this thread (null = direct path).
  static Shard* current() noexcept;

 private:
  Shard* prev_;
};

/// Adds to a counter: the thread's installed shard when present, else the
/// global registry. No-op while disabled.
void count(std::string_view name, std::uint64_t n = 1);

/// Records a histogram observation (default latency buckets), shard-aware.
void observe(std::string_view name, double v);

/// Sets / adjusts a gauge on the global registry (gauges are point-in-time
/// and never sharded). No-ops while disabled.
void set_gauge(std::string_view name, std::int64_t v);
void add_gauge(std::string_view name, std::int64_t d);

/// Builds `name{key="value"}` (or appends to an existing label set).
std::string label(std::string_view name, std::string_view key,
                  std::string_view value);

}  // namespace gpufi::obs
