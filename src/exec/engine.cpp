#include "exec/engine.hpp"

#include <chrono>
#include <mutex>

namespace gpufi::exec {

namespace {

std::int64_t steady_ns(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             t.time_since_epoch())
      .count();
}

}  // namespace

void CancelToken::set_deadline(std::chrono::steady_clock::time_point t) noexcept {
  // 0 means "unarmed", so a deadline that lands exactly on the epoch is
  // nudged forward one tick — indistinguishable in practice.
  const std::int64_t ns = steady_ns(t);
  deadline_ns_.store(ns == 0 ? 1 : ns, std::memory_order_relaxed);
}

void CancelToken::set_deadline_after(std::chrono::nanoseconds budget) noexcept {
  set_deadline(std::chrono::steady_clock::now() + budget);
}

bool CancelToken::expired() const noexcept {
  const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
  if (d == 0) return false;
  return steady_ns(std::chrono::steady_clock::now()) >= d;
}

unsigned resolve_jobs(unsigned jobs, std::size_t n_units) {
  if (jobs == 0) jobs = ThreadPool::default_jobs();
  if (n_units == 0) return 1;
  return static_cast<unsigned>(
      std::min<std::size_t>(jobs, n_units));
}

std::size_t chunk_size(std::size_t n_trials) {
  // Roughly 64 chunks per campaign so any realistic worker count load-balances
  // well, floored at 16 trials so per-chunk context setup (e.g. constructing
  // an rtl::Sm) amortizes. Must stay a pure function of the trial count: the
  // jobs knob must never influence which trials share a context.
  const std::size_t target = (n_trials + 63) / 64;
  return std::clamp<std::size_t>(target, 16, 256);
}

std::vector<TrialRange> plan_shards(std::size_t n_trials,
                                    std::size_t max_shards) {
  std::vector<TrialRange> out;
  if (n_trials == 0) return out;
  const std::size_t chunk = chunk_size(n_trials);
  const std::size_t n_chunks = (n_trials + chunk - 1) / chunk;
  const std::size_t n_shards =
      std::max<std::size_t>(1, std::min(max_shards, n_chunks));
  out.reserve(n_shards);
  // Distribute whole chunks round-robin-evenly: the first `rem` shards get
  // one extra chunk. The partition never splits a chunk, so every shard
  // starts (and, except the last, ends) on a chunk boundary.
  const std::size_t base = n_chunks / n_shards;
  const std::size_t rem = n_chunks % n_shards;
  std::size_t chunk_lo = 0;
  for (std::size_t s = 0; s < n_shards; ++s) {
    const std::size_t chunks_here = base + (s < rem ? 1 : 0);
    const std::size_t lo = chunk_lo * chunk;
    const std::size_t hi = std::min(n_trials, (chunk_lo + chunks_here) * chunk);
    out.push_back({lo, hi - lo});
    chunk_lo += chunks_here;
  }
  return out;
}

namespace detail {

struct ProgressMeter::State {
  std::mutex mutex;
  std::size_t total = 0;
  std::size_t done = 0;
  std::size_t next_report = 0;
  std::size_t step = 1;
  std::chrono::steady_clock::time_point start;
  ProgressFn fn;
};

ProgressMeter::ProgressMeter(std::size_t total, const ProgressFn& fn,
                             std::size_t step_override)
    : state_(nullptr) {
  if (!fn || total == 0) return;
  state_ = new State;
  state_->total = total;
  // ~50 reports per batch keeps terminal progress readable at any scale;
  // --progress-interval pins the step instead.
  state_->step = step_override ? step_override
                               : std::max<std::size_t>(1, total / 50);
  state_->next_report = state_->step;
  state_->start = std::chrono::steady_clock::now();
  state_->fn = fn;
}

ProgressMeter::~ProgressMeter() { delete state_; }

void ProgressMeter::add(std::size_t n) {
  if (!state_ || n == 0) return;
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->done += n;
  if (state_->done < state_->next_report && state_->done < state_->total)
    return;
  while (state_->next_report <= state_->done)
    state_->next_report += state_->step;
  Progress p;
  p.done = state_->done;
  p.total = state_->total;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    state_->start)
          .count();
  if (elapsed > 0) {
    p.per_second = static_cast<double>(p.done) / elapsed;
    if (p.per_second > 0)
      p.eta_seconds = static_cast<double>(p.total - p.done) / p.per_second;
  }
  state_->fn(p);
}

void note_stop(const CancelToken* cancel) {
  if (!cancel || !cancel->stopped() || !obs::enabled()) return;
  // An explicit cancel wins the tie-break: it is the caller's intent even
  // when the deadline has also passed by the time we look.
  if (cancel->cancelled()) {
    obs::count("gpufi_exec_cancelled_total");
    obs::event("exec.cancelled");
  } else {
    obs::count("gpufi_exec_deadline_expired_total");
    obs::event("exec.deadline_expired");
  }
}

}  // namespace detail

void run_indexed(std::size_t n, unsigned jobs, const ProgressFn& progress,
                 const std::function<void(std::size_t)>& task,
                 const CancelToken* cancel, std::size_t progress_interval) {
  if (n == 0) return;
  detail::ProgressMeter meter(n, progress, progress_interval);
  ThreadPool pool(resolve_jobs(jobs, n));
  pool.run(n, [&](std::size_t i) {
    if (cancel && cancel->stopped()) return;
    task(i);
    meter.add(1);
  });
  detail::note_stop(cancel);
}

}  // namespace gpufi::exec
