#include "exec/engine.hpp"

#include <chrono>
#include <mutex>

namespace gpufi::exec {

std::size_t chunk_size(std::size_t n_trials) {
  // Roughly 64 chunks per campaign so any realistic worker count load-balances
  // well, floored at 16 trials so per-chunk context setup (e.g. constructing
  // an rtl::Sm) amortizes. Must stay a pure function of the trial count: the
  // jobs knob must never influence which trials share a context.
  const std::size_t target = (n_trials + 63) / 64;
  return std::clamp<std::size_t>(target, 16, 256);
}

namespace detail {

struct ProgressMeter::State {
  std::mutex mutex;
  std::size_t total = 0;
  std::size_t done = 0;
  std::size_t next_report = 0;
  std::size_t step = 1;
  std::chrono::steady_clock::time_point start;
  ProgressFn fn;
};

ProgressMeter::ProgressMeter(std::size_t total, const ProgressFn& fn)
    : state_(nullptr) {
  if (!fn || total == 0) return;
  state_ = new State;
  state_->total = total;
  // ~50 reports per batch keeps terminal progress readable at any scale.
  state_->step = std::max<std::size_t>(1, total / 50);
  state_->next_report = state_->step;
  state_->start = std::chrono::steady_clock::now();
  state_->fn = fn;
}

ProgressMeter::~ProgressMeter() { delete state_; }

void ProgressMeter::add(std::size_t n) {
  if (!state_ || n == 0) return;
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->done += n;
  if (state_->done < state_->next_report && state_->done < state_->total)
    return;
  while (state_->next_report <= state_->done)
    state_->next_report += state_->step;
  Progress p;
  p.done = state_->done;
  p.total = state_->total;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    state_->start)
          .count();
  if (elapsed > 0) {
    p.per_second = static_cast<double>(p.done) / elapsed;
    if (p.per_second > 0)
      p.eta_seconds = static_cast<double>(p.total - p.done) / p.per_second;
  }
  state_->fn(p);
}

}  // namespace detail

void run_indexed(std::size_t n, unsigned jobs, const ProgressFn& progress,
                 const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  detail::ProgressMeter meter(n, progress);
  ThreadPool pool(jobs);
  pool.run(n, [&](std::size_t i) {
    task(i);
    meter.add(1);
  });
}

}  // namespace gpufi::exec
