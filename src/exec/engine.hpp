#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gpufi::exec {

/// Cooperative stop flag threaded through the campaign loops: `cancel()` (or
/// an expired deadline) makes `run_trials`/`run_indexed` skip every trial not
/// yet started and return the partial merge. Cancellation never tears a trial
/// mid-flight — completed trials are still byte-identical to an uncancelled
/// run's prefix. Safe to signal from any thread (e.g. a server noticing a
/// client disconnect) while a campaign is running.
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Arms (or re-arms) an absolute deadline; trials started after it passes
  /// are skipped exactly like an explicit cancel().
  void set_deadline(std::chrono::steady_clock::time_point t) noexcept;
  /// Convenience: deadline `budget` from now.
  void set_deadline_after(std::chrono::nanoseconds budget) noexcept;
  bool expired() const noexcept;

  /// True once the token should stop work (cancelled or past deadline).
  bool stopped() const noexcept { return cancelled() || expired(); }

 private:
  std::atomic<bool> cancelled_{false};
  /// Deadline as steady-clock nanoseconds-since-epoch; 0 = unarmed.
  std::atomic<std::int64_t> deadline_ns_{0};
};

/// Snapshot handed to the progress callback while a trial batch runs.
struct Progress {
  std::size_t done = 0;      ///< trials finished so far
  std::size_t total = 0;     ///< trials in the batch
  double per_second = 0.0;   ///< completed trials (= injections) per second
  double eta_seconds = 0.0;  ///< remaining / per_second (0 while warming up)
};

/// Invoked from worker threads, serialized and throttled by the engine; safe
/// to print from. The final call always reports done == total.
using ProgressFn = std::function<void(const Progress&)>;

/// Parameters shared by every campaign-shaped computation: how many
/// independent trials, the campaign seed, and how wide to run.
struct EngineConfig {
  std::size_t n_trials = 0;
  std::uint64_t seed = 1;
  /// Worker threads; 0 resolves to ThreadPool::default_jobs() (the GPUFI_JOBS
  /// environment variable, else the hardware concurrency).
  unsigned jobs = 0;
  ProgressFn progress;  ///< optional
  /// Fire `progress` every this many finished trials; 0 = automatic
  /// (~50 reports per batch). The final done == total call always fires.
  std::size_t progress_interval = 0;
  /// Optional cooperative stop flag: once `stopped()`, no further trial
  /// starts and run_trials returns the merge of the trials already done.
  const CancelToken* cancel = nullptr;
  /// Distributed sharding (gpufi-fabric): this batch runs the GLOBAL trial
  /// indices [trial_offset, trial_offset + n_trials) of a campaign of
  /// trial_total trials. trial_total == 0 means standalone (offset must be
  /// 0). Chunking — and therefore per-chunk context reuse — is computed
  /// over trial_total, so a shard must start on a chunk boundary and end on
  /// one (or at trial_total); run_trials throws std::invalid_argument
  /// otherwise. Merging shard Results in offset order is then identical to
  /// the single-process chunk-order merge, byte for byte.
  std::size_t trial_offset = 0;
  std::size_t trial_total = 0;
};

/// Resolves the user-facing jobs knob against the batch width: 0 becomes
/// ThreadPool::default_jobs(), and the result is clamped to `n_units` so a
/// wide pool is never spun up for a narrow batch (jobs > trials spawns no
/// idle threads).
unsigned resolve_jobs(unsigned jobs, std::size_t n_units);

/// Trials are executed in contiguous index chunks; the chunk size is a
/// function of the trial count ONLY (never of `jobs`), so per-chunk worker
/// context (e.g. a reused rtl::Sm) sees the same trial sequence whatever the
/// parallelism — a prerequisite for the bit-identical-across-jobs guarantee.
std::size_t chunk_size(std::size_t n_trials);

/// One contiguous chunk-aligned trial range — the fabric's unit of
/// dispatch and retry (a pure function of (spec, seed, offset, count)).
struct TrialRange {
  std::size_t offset = 0;
  std::size_t count = 0;

  bool operator==(const TrialRange&) const = default;
};

/// Splits [0, n_trials) into at most `max_shards` contiguous ranges, each
/// aligned to chunk_size(n_trials) boundaries, balanced to within one chunk.
/// A pure function of its arguments — and because the chunk-order merge is
/// associative over chunk boundaries, ANY chunk-aligned partition merges to
/// the same bytes; the shard count only shapes fan-out granularity.
std::vector<TrialRange> plan_shards(std::size_t n_trials,
                                    std::size_t max_shards);

namespace detail {

/// Thread-safe throttled progress reporting (count- and rate-based).
/// `step_override` fixes the report interval in trials; 0 keeps the
/// automatic ~50-reports-per-batch throttle.
class ProgressMeter {
 public:
  ProgressMeter(std::size_t total, const ProgressFn& fn,
                std::size_t step_override = 0);
  ~ProgressMeter();
  /// Records `n` finished trials, possibly firing the callback.
  void add(std::size_t n);

 private:
  struct State;
  State* state_;
};

/// Records why a batch stopped early (cancel vs deadline) as a counter and
/// trace event. No-op when the token is null or not stopped.
void note_stop(const CancelToken* cancel);

}  // namespace detail

/// The common shape of every fault-injection campaign in this codebase
/// ("golden run, then N independent trials, classify each, merge"): runs
/// `cfg.n_trials` trials and returns the merged Result.
///
/// Determinism contract — the returned Result is byte-identical for every
/// `jobs` value, because:
///  * trial `i` draws all randomness from `Rng(rng_derive(cfg.seed, i))`,
///    never from a shared stream;
///  * `make_context()` builds one worker context per chunk (chunking depends
///    only on n_trials), so context reuse is schedule-independent;
///  * every trial writes only to its chunk's Result shard, and shards are
///    merged in chunk-index order — i.e. records end up in trial order.
///
/// Result: default-constructible, with `merge(const Result&)` accumulating
/// counters commutatively and appending records in call order.
/// MakeContext: Context() — per-chunk worker state (simulator instance, ...).
/// Trial: void(Context&, std::size_t trial_index, Rng&, Result& shard).
///
/// Cancellation (`cfg.cancel`) is checked before each chunk and each trial;
/// a stopped token makes the remaining trials no-ops, so the returned Result
/// is the merge of a prefix-closed-per-chunk subset of trials. Callers that
/// care must test the token afterwards — a partial result is not flagged.
template <class Result, class MakeContext, class Trial>
Result run_trials(const EngineConfig& cfg, MakeContext&& make_context,
                  Trial&& trial) {
  Result merged{};
  const std::size_t n = cfg.n_trials;
  if (n == 0) return merged;
  // Sharded batches chunk over the campaign TOTAL so a shard's chunks line
  // up exactly with the chunks the single-process run would have formed —
  // the alignment the byte-identical distributed merge rests on.
  const std::size_t total = cfg.trial_total == 0 ? n : cfg.trial_total;
  const std::size_t chunk = chunk_size(total);
  if (cfg.trial_total == 0 && cfg.trial_offset != 0)
    throw std::invalid_argument("trial_offset requires trial_total");
  if (cfg.trial_offset % chunk != 0)
    throw std::invalid_argument("shard offset not chunk-aligned");
  if (cfg.trial_offset + n > total)
    throw std::invalid_argument("shard range exceeds trial_total");
  if (n % chunk != 0 && cfg.trial_offset + n != total)
    throw std::invalid_argument(
        "shard must end on a chunk boundary or at trial_total");
  obs::Span span("exec.run_trials");
  span.set("trials", static_cast<std::uint64_t>(n));
  const bool obs_on = obs::enabled();
  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  std::vector<Result> shards(n_chunks);
  // One metrics shard per chunk, absorbed in chunk-index order below —
  // the same shape (and the same determinism argument) as the Result
  // shards. Observability reads trial timings but never writes anything a
  // trial can see, so Results are identical with obs on/off/compiled-out.
  std::vector<obs::Shard> obs_shards(obs_on ? n_chunks : 0);
  detail::ProgressMeter meter(n, cfg.progress, cfg.progress_interval);
  const CancelToken* cancel = cfg.cancel;
  ThreadPool pool(resolve_jobs(cfg.jobs, n_chunks));
  pool.run(n_chunks, [&](std::size_t c) {
    if (cancel && cancel->stopped()) return;
    obs::ScopedShard scoped(obs_on ? &obs_shards[c] : nullptr);
    auto context = make_context();
    Result& shard = shards[c];
    const std::size_t lo = cfg.trial_offset + c * chunk;
    const std::size_t hi = std::min(cfg.trial_offset + n, lo + chunk);
    std::size_t done = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      if (cancel && cancel->stopped()) break;
      Rng rng(rng_derive(cfg.seed, i));
      if (obs_on) {
        const auto t0 = std::chrono::steady_clock::now();
        trial(context, i, rng, shard);
        obs::observe("gpufi_exec_trial_seconds",
                     std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
      } else {
        trial(context, i, rng, shard);
      }
      ++done;
      meter.add(1);
    }
    if (obs_on) {
      obs::count("gpufi_exec_trials_total", done);
      obs::count("gpufi_exec_chunks_total");
    }
  });
  for (auto& shard : shards) merged.merge(shard);
  for (const auto& s : obs_shards) obs::Registry::global().absorb(s);
  detail::note_stop(cancel);
  return merged;
}

/// Index-addressed fan-out for heterogeneous work (e.g. one task per RTL
/// characterization campaign): runs task(i) for i in [0, n) on `jobs`
/// workers and reports progress per finished task. Results should be written
/// to pre-sized slots so completion order cannot leak into the output. A
/// stopped `cancel` token skips every task not yet started.
void run_indexed(std::size_t n, unsigned jobs, const ProgressFn& progress,
                 const std::function<void(std::size_t)>& task,
                 const CancelToken* cancel = nullptr,
                 std::size_t progress_interval = 0);

}  // namespace gpufi::exec
