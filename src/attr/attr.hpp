#pragma once

// Cross-layer root-cause attribution: joins raw flip-flop fault outcomes
// with the instruction that was live at the fault site (resolved from the
// golden liveness timeline) and aggregates them into per-(module × static
// instruction) and per-opcode vulnerability tables — P(SDC|hit) with
// Wilson intervals, residency-weighted AVF-style scores, and DUEs grouped
// by cause. Everything here is deterministic: tables are ordered maps and
// rows carry total orderings, so the rendered report is byte-identical for
// any acceleration level or job count that produces the same counts.

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "rtl/liveness.hpp"
#include "vocab/outcomes.hpp"

namespace gpufi::attr {

/// Accumulation key: the fault-site identity within one module campaign.
/// `live == false` collapses every between-instructions fault into a single
/// "idle" bucket (pc/op are zeroed for it).
struct SiteKey {
  bool live = false;
  std::uint64_t pc = 0;
  isa::Opcode op = isa::Opcode::NOP;

  auto operator<=>(const SiteKey&) const = default;
};

/// Makes the accumulation key for a resolved fault site.
SiteKey site_key(const rtl::FaultSiteContext& site);

/// Outcome tallies for one fault site.
struct SiteCounts {
  std::uint64_t hits = 0;  ///< faults injected while this site was live
  std::uint64_t masked = 0;
  std::uint64_t sdc_single = 0;
  std::uint64_t sdc_multi = 0;
  std::uint64_t due = 0;
  std::array<std::uint64_t, vocab::kNumDueReasons> due_by_reason{};

  std::uint64_t sdc() const { return sdc_single + sdc_multi; }
  void merge(const SiteCounts& o);
};

/// Site → counts for one campaign. std::map keeps shard merges and report
/// iteration deterministic.
using SiteTable = std::map<SiteKey, SiteCounts>;

/// Merges `from` into `into` (associative/commutative, used by the
/// chunk-ordered shard merge).
void merge_tables(SiteTable& into, const SiteTable& from);

/// One module campaign's attribution input to a report.
struct CampaignSlice {
  std::string module;  ///< module token (e.g. "fp32", "sched")
  SiteTable sites;
  std::uint64_t injected = 0;
};

/// One rendered row: a static instruction (or the idle bucket) of one
/// module campaign.
struct InstrRow {
  std::string module;
  bool live = false;
  std::uint64_t pc = 0;
  isa::Opcode op = isa::Opcode::NOP;
  std::uint64_t hits = 0;
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;
  std::uint64_t due = 0;
  double p_sdc = 0.0;   ///< P(SDC | fault hit this site)
  double sdc_lo = 0.0;  ///< Wilson 95% interval on p_sdc
  double sdc_hi = 0.0;
  double residency = 0.0;  ///< live cycles at pc / golden run cycles
  double score = 0.0;      ///< residency-weighted AVF-style score
};

/// Per-opcode aggregate across modules.
struct OpcodeRow {
  isa::Opcode op = isa::Opcode::NOP;
  bool live = false;  ///< false only for the idle bucket row
  std::uint64_t hits = 0;
  std::uint64_t sdc = 0;
  std::uint64_t due = 0;
  double p_sdc = 0.0;
  double sdc_lo = 0.0;
  double sdc_hi = 0.0;
};

/// DUE tally for one concrete reason, carrying its coarse group.
struct DueRow {
  vocab::DueReason reason = vocab::DueReason::None;
  vocab::DueGroup group = vocab::DueGroup::None;
  std::uint64_t count = 0;
};

/// The full attribution report for one workload.
struct Report {
  std::string workload;
  std::uint64_t golden_cycles = 0;
  std::uint64_t injected = 0;
  std::uint64_t attributed = 0;    ///< faults that resolved to a live site
  std::uint64_t unattributed = 0;  ///< faults landing on idle cycles
  std::vector<InstrRow> rows;      ///< score-desc, ties by (module, pc)
  std::vector<OpcodeRow> opcodes;  ///< hits-desc, ties by opcode value
  std::vector<DueRow> dues;        ///< group then reason order, count > 0
};

/// Builds the report: joins slices with the golden timeline's residency,
/// computes P(SDC|hit) + Wilson intervals, aggregates opcodes and DUE
/// causes. Deterministic for identical inputs.
Report build_report(std::string workload, const rtl::LivenessTimeline& timeline,
                    const std::vector<CampaignSlice>& slices);

/// ASCII rendering (TextTable) of the instruction, opcode and DUE tables.
std::string render_text(const Report& r);

/// JSON rendering of the same data (stable key order, fixed formatting).
std::string render_json(const Report& r);

}  // namespace gpufi::attr
