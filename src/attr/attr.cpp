#include "attr/attr.hpp"

#include <algorithm>
#include <cstdio>

#include "common/statistics.hpp"
#include "common/table.hpp"

namespace gpufi::attr {

namespace {

/// Fixed-width probability formatting so renderings are byte-stable.
std::string fmt_prob(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

std::string json_str(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

SiteKey site_key(const rtl::FaultSiteContext& site) {
  SiteKey k;
  k.live = site.live;
  if (site.live) {
    k.pc = site.pc;
    k.op = site.op;
  }
  return k;
}

void SiteCounts::merge(const SiteCounts& o) {
  hits += o.hits;
  masked += o.masked;
  sdc_single += o.sdc_single;
  sdc_multi += o.sdc_multi;
  due += o.due;
  for (std::size_t i = 0; i < due_by_reason.size(); ++i)
    due_by_reason[i] += o.due_by_reason[i];
}

void merge_tables(SiteTable& into, const SiteTable& from) {
  for (const auto& [key, counts] : from) into[key].merge(counts);
}

Report build_report(std::string workload, const rtl::LivenessTimeline& timeline,
                    const std::vector<CampaignSlice>& slices) {
  Report r;
  r.workload = std::move(workload);
  r.golden_cycles = timeline.total_cycles();

  // Residency denominators: total run cycles and the idle remainder.
  std::uint64_t live_total = 0;
  for (const auto& iv : timeline.intervals())
    if (iv.end > iv.start) live_total += iv.end - iv.start;
  const double cycles = r.golden_cycles ? static_cast<double>(r.golden_cycles)
                                        : 1.0;
  const double idle_residency =
      r.golden_cycles > live_total
          ? static_cast<double>(r.golden_cycles - live_total) / cycles
          : 0.0;

  // Per-(live, op) aggregate across modules and per-reason DUE tallies.
  std::map<std::pair<bool, isa::Opcode>, OpcodeRow> op_agg;
  std::array<std::uint64_t, vocab::kNumDueReasons> due_totals{};

  for (const auto& slice : slices) {
    r.injected += slice.injected;
    for (const auto& [key, counts] : slice.sites) {
      InstrRow row;
      row.module = slice.module;
      row.live = key.live;
      row.pc = key.pc;
      row.op = key.op;
      row.hits = counts.hits;
      row.masked = counts.masked;
      row.sdc = counts.sdc();
      row.due = counts.due;
      row.p_sdc = counts.hits
                      ? static_cast<double>(row.sdc) /
                            static_cast<double>(counts.hits)
                      : 0.0;
      const auto ci = stats::wilson_interval(row.sdc, counts.hits);
      row.sdc_lo = ci.lo;
      row.sdc_hi = ci.hi;
      row.residency =
          key.live
              ? static_cast<double>(timeline.live_cycles_at_pc(key.pc)) / cycles
              : idle_residency;
      row.score = row.residency * row.p_sdc;
      r.rows.push_back(std::move(row));

      if (key.live)
        r.attributed += counts.hits;
      else
        r.unattributed += counts.hits;

      auto& agg = op_agg[{key.live, key.live ? key.op : isa::Opcode::NOP}];
      agg.op = key.live ? key.op : isa::Opcode::NOP;
      agg.live = key.live;
      agg.hits += counts.hits;
      agg.sdc += counts.sdc();
      agg.due += counts.due;

      for (std::size_t i = 0; i < counts.due_by_reason.size(); ++i)
        due_totals[i] += counts.due_by_reason[i];
    }
  }

  // Instruction rows: most vulnerable first (score, then P(SDC|hit)),
  // total order completed by (module, live, pc) so rendering is stable.
  std::sort(r.rows.begin(), r.rows.end(),
            [](const InstrRow& a, const InstrRow& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.p_sdc != b.p_sdc) return a.p_sdc > b.p_sdc;
              if (a.module != b.module) return a.module < b.module;
              if (a.live != b.live) return a.live > b.live;
              return a.pc < b.pc;
            });

  for (auto& [key, agg] : op_agg) {
    agg.p_sdc = agg.hits ? static_cast<double>(agg.sdc) /
                               static_cast<double>(agg.hits)
                         : 0.0;
    const auto ci = stats::wilson_interval(agg.sdc, agg.hits);
    agg.sdc_lo = ci.lo;
    agg.sdc_hi = ci.hi;
    r.opcodes.push_back(agg);
  }
  std::sort(r.opcodes.begin(), r.opcodes.end(),
            [](const OpcodeRow& a, const OpcodeRow& b) {
              if (a.hits != b.hits) return a.hits > b.hits;
              if (a.live != b.live) return a.live > b.live;
              return static_cast<int>(a.op) < static_cast<int>(b.op);
            });

  for (std::size_t i = 0; i < due_totals.size(); ++i) {
    if (due_totals[i] == 0) continue;
    DueRow d;
    d.reason = static_cast<vocab::DueReason>(i);
    d.group = vocab::due_group(d.reason);
    d.count = due_totals[i];
    r.dues.push_back(d);
  }
  std::sort(r.dues.begin(), r.dues.end(), [](const DueRow& a, const DueRow& b) {
    if (a.group != b.group)
      return static_cast<int>(a.group) < static_cast<int>(b.group);
    return static_cast<int>(a.reason) < static_cast<int>(b.reason);
  });

  return r;
}

std::string render_text(const Report& r) {
  std::string out;
  out += "attribution report: " + r.workload + "\n";
  out += "golden cycles: " + std::to_string(r.golden_cycles) +
         "  injected: " + std::to_string(r.injected) +
         "  attributed: " + std::to_string(r.attributed) +
         "  idle-site: " + std::to_string(r.unattributed) + "\n\n";

  TextTable instr({"Module", "PC", "Op", "Hits", "Masked", "SDC", "DUE",
                   "P(SDC|hit)", "CI95", "Residency", "Score"});
  for (const auto& row : r.rows) {
    instr.add_row({row.module, row.live ? std::to_string(row.pc) : "-",
                   row.live ? std::string(isa::mnemonic(row.op)) : "(idle)",
                   std::to_string(row.hits), std::to_string(row.masked),
                   std::to_string(row.sdc), std::to_string(row.due),
                   fmt_prob(row.p_sdc),
                   "[" + fmt_prob(row.sdc_lo) + "," + fmt_prob(row.sdc_hi) +
                       "]",
                   fmt_prob(row.residency), fmt_prob(row.score)});
  }
  out += "Per-(module x static instruction) vulnerability\n";
  out += instr.to_string();
  out += "\n";

  TextTable ops({"Op", "Hits", "SDC", "DUE", "P(SDC|hit)", "CI95"});
  for (const auto& o : r.opcodes) {
    ops.add_row({o.live ? std::string(isa::mnemonic(o.op)) : "(idle)",
                 std::to_string(o.hits), std::to_string(o.sdc),
                 std::to_string(o.due), fmt_prob(o.p_sdc),
                 "[" + fmt_prob(o.sdc_lo) + "," + fmt_prob(o.sdc_hi) + "]"});
  }
  out += "Per-opcode aggregate\n";
  out += ops.to_string();

  if (!r.dues.empty()) {
    out += "\n";
    TextTable dues({"Group", "Reason", "Count"});
    for (const auto& d : r.dues) {
      dues.add_row({std::string(vocab::due_group_token(d.group)),
                    std::string(vocab::due_reason_token(d.reason)),
                    std::to_string(d.count)});
    }
    out += "DUEs by cause\n";
    out += dues.to_string();
  }
  return out;
}

std::string render_json(const Report& r) {
  std::string out = "{";
  out += "\"workload\":" + json_str(r.workload);
  out += ",\"golden_cycles\":" + std::to_string(r.golden_cycles);
  out += ",\"injected\":" + std::to_string(r.injected);
  out += ",\"attributed\":" + std::to_string(r.attributed);
  out += ",\"idle_site\":" + std::to_string(r.unattributed);
  out += ",\"instructions\":[";
  for (std::size_t i = 0; i < r.rows.size(); ++i) {
    const auto& row = r.rows[i];
    if (i) out += ",";
    out += "{\"module\":" + json_str(row.module);
    out += ",\"live\":" + std::string(row.live ? "true" : "false");
    if (row.live) {
      out += ",\"pc\":" + std::to_string(row.pc);
      out += ",\"op\":" + json_str(isa::mnemonic(row.op));
    }
    out += ",\"hits\":" + std::to_string(row.hits);
    out += ",\"masked\":" + std::to_string(row.masked);
    out += ",\"sdc\":" + std::to_string(row.sdc);
    out += ",\"due\":" + std::to_string(row.due);
    out += ",\"p_sdc\":" + fmt_prob(row.p_sdc);
    out += ",\"ci_lo\":" + fmt_prob(row.sdc_lo);
    out += ",\"ci_hi\":" + fmt_prob(row.sdc_hi);
    out += ",\"residency\":" + fmt_prob(row.residency);
    out += ",\"score\":" + fmt_prob(row.score);
    out += "}";
  }
  out += "],\"opcodes\":[";
  for (std::size_t i = 0; i < r.opcodes.size(); ++i) {
    const auto& o = r.opcodes[i];
    if (i) out += ",";
    out += "{\"op\":" +
           json_str(o.live ? isa::mnemonic(o.op) : std::string_view("(idle)"));
    out += ",\"hits\":" + std::to_string(o.hits);
    out += ",\"sdc\":" + std::to_string(o.sdc);
    out += ",\"due\":" + std::to_string(o.due);
    out += ",\"p_sdc\":" + fmt_prob(o.p_sdc);
    out += ",\"ci_lo\":" + fmt_prob(o.sdc_lo);
    out += ",\"ci_hi\":" + fmt_prob(o.sdc_hi);
    out += "}";
  }
  out += "],\"dues\":[";
  for (std::size_t i = 0; i < r.dues.size(); ++i) {
    const auto& d = r.dues[i];
    if (i) out += ",";
    out += "{\"group\":" + json_str(vocab::due_group_token(d.group));
    out += ",\"reason\":" + json_str(vocab::due_reason_token(d.reason));
    out += ",\"count\":" + std::to_string(d.count);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace gpufi::attr
