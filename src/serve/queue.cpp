#include "serve/queue.hpp"

namespace gpufi::serve {

JobQueue::JobQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool JobQueue::push(Job job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || queue_.size() >= capacity_) {
      ++rejected_;
      return false;
    }
    queue_.emplace(std::make_pair(job.spec.priority, next_seq_++),
                   std::move(job));
  }
  cv_.notify_one();
  return true;
}

std::optional<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;
  auto it = queue_.begin();
  Job job = std::move(it->second);
  queue_.erase(it);
  return job;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::vector<Job> JobQueue::drain_pending() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Job> pending;
  pending.reserve(queue_.size());
  for (auto& [key, job] : queue_) pending.push_back(std::move(job));
  queue_.clear();
  return pending;
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t JobQueue::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

}  // namespace gpufi::serve
