#pragma once

// gpufi-serve: a long-running fault-injection campaign daemon.
//
// Lifecycle: Server::start() binds the Unix-domain socket and spawns one
// accept thread plus `workers` campaign workers. Each accepted connection
// submits one campaign spec; the accept thread applies admission control
// (bounded priority queue, reject-with-backpressure when full) and workers
// execute jobs with progress streamed back as frames. A client disconnect or
// an expired per-request deadline cancels the trial loop cooperatively via
// exec::CancelToken. shutdown(drain=true) — the SIGTERM path — stops
// accepting, finishes every admitted job, then tears down.
//
// Determinism contract: a served campaign's Result payload is byte-identical
// to run_spec_offline() of the same spec — queueing, worker count, cache
// sharing and progress streaming cannot change a single byte of the result.

#include <cstdint>
#include <memory>
#include <string>

#include "serve/cache.hpp"
#include "serve/protocol.hpp"

namespace gpufi::fabric {
class Coordinator;
}  // namespace gpufi::fabric

namespace gpufi::serve {

struct ServerConfig {
  std::string socket_path = kDefaultSocketPath;
  unsigned workers = 2;          ///< concurrent campaign executors
  std::size_t queue_capacity = 64;  ///< admitted-but-not-running bound
  /// Applied when a spec carries no deadline; 0 = unlimited.
  std::uint64_t default_deadline_ms = 0;
  /// Suppress stderr lifecycle logging (tests).
  bool quiet = true;
  /// gpufi-fabric coordinator listen address ("unix:PATH", "HOST:PORT" or
  /// "tcp:HOST:PORT"); empty disables the fabric, and submits asking for
  /// workers > 0 are then rejected with a clear error.
  std::string fabric_listen;
  /// See fabric::CoordinatorConfig.
  std::uint64_t fabric_heartbeat_timeout_ms = 5000;
  unsigned fabric_max_retries = 3;
};

/// Point-in-time counters (the Stats frame payload).
struct ServerStats {
  std::size_t accepted = 0;   ///< jobs admitted to the queue
  std::size_t completed = 0;  ///< jobs that sent a Result frame
  std::size_t failed = 0;     ///< jobs that sent an Error frame
  std::size_t cancelled = 0;  ///< jobs aborted by disconnect/deadline/shutdown
  std::size_t rejected = 0;   ///< submissions bounced by admission control
  std::size_t active = 0;     ///< jobs currently executing
  std::size_t queued = 0;     ///< jobs waiting in the queue
  std::size_t queue_capacity = 0;
  std::size_t workers = 0;
  /// Strata the campaign planner stopped early (Wilson interval converged
  /// before the trial budget ran out) over the daemon's lifetime — read from
  /// the gpufi_swfi_planner_early_stops_total counter.
  std::size_t planner_early_stops = 0;
  CacheStats db_cache;
  CacheStats golden_cache;
  // Fabric fleet aggregates (all zero when the fabric is disabled).
  std::size_t fabric_workers_registered = 0;  ///< lifetime handshakes
  std::size_t fabric_workers_alive = 0;
  std::size_t fabric_shards_inflight = 0;
  std::size_t fabric_shards_retried = 0;
  std::size_t fabric_shards_completed = 0;
};

std::string encode_stats(const ServerStats& s);
std::optional<ServerStats> decode_stats(std::string_view payload);

/// Resolves an rtl/tmxm spec to the campaign config its trials run under —
/// shared by the in-process dispatch and the fabric worker's shard executor
/// so a sharded campaign cannot drift from the offline one.
rtlfi::CampaignConfig campaign_config_for_spec(
    const CampaignSpec& spec, rtl::Module module,
    const exec::ProgressFn& progress, const exec::CancelToken* cancel);

/// Cache key of the shareable golden half of an RTL/t-MxM campaign: the
/// workload identity (name encodes op/range or tile kind; the value seed is
/// spec.seed) plus the trace geometry rtlfi::prepare_golden depends on.
std::string golden_cache_key(const CampaignSpec& spec,
                             const rtlfi::CampaignConfig& cc,
                             const rtlfi::Workload& w);

/// Executes one campaign spec on the calling thread, sharing `caches`.
/// Returns the deterministic Result payload. `progress`/`cancel` may be
/// empty/null. Throws on failure; throws exec-level partial results away
/// when `cancel` stopped the loop (the caller must check the token).
std::string run_spec(const CampaignSpec& spec, Caches& caches,
                     const exec::ProgressFn& progress,
                     const exec::CancelToken* cancel);

/// The offline reference path: same dispatch with fresh caches and no
/// hooks — what the CLI runs, and what the byte-identity tests compare a
/// served payload against.
std::string run_spec_offline(const CampaignSpec& spec);

/// Executes one attribution-report spec (kind must be rtl) on the calling
/// thread and returns the report JSON (attr::render_json) — the Report
/// frame payload, byte-identical to the offline `gpufi report --json` of
/// the same spec.
std::string run_report_spec(const CampaignSpec& spec,
                            const exec::ProgressFn& progress,
                            const exec::CancelToken* cancel);

/// Offline reference for the Report byte-identity contract.
std::string run_report_offline(const CampaignSpec& spec);

class Server {
 public:
  explicit Server(ServerConfig cfg);
  /// Stops without draining if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and spawns the accept/worker threads. Throws
  /// std::runtime_error on bind/listen failure.
  void start();

  /// Idempotent teardown. drain=true (SIGTERM): stop accepting, run every
  /// admitted job to completion, then join. drain=false: additionally
  /// cancel the active jobs and bounce the queued ones with an Error frame.
  void shutdown(bool drain);

  bool running() const;
  ServerStats stats() const;
  const ServerConfig& config() const;
  /// The embedded fabric coordinator; null when fabric_listen is empty.
  fabric::Coordinator* coordinator() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gpufi::serve
