#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/gpufi.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/transport.hpp"
#include "nn/gpu_infer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/queue.hpp"
#include "vocab/vocab.hpp"

namespace gpufi::serve {

namespace {

/// Internal control-flow signal for "the token stopped the campaign".
struct CancelledError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void throw_if_stopped(const exec::CancelToken* cancel) {
  if (cancel && cancel->stopped()) throw CancelledError("campaign cancelled");
}

}  // namespace

std::string golden_cache_key(const CampaignSpec& spec,
                             const rtlfi::CampaignConfig& cc,
                             const rtlfi::Workload& w) {
  std::string key = w.name;
  key += "/vseed=";
  key += std::to_string(spec.seed);
  if (cc.acceleration == rtlfi::Acceleration::None)
    key += "/untraced";
  else
    key += "/ckpt=" + std::to_string(cc.checkpoint_interval);
  return key;
}

rtlfi::CampaignConfig campaign_config_for_spec(
    const CampaignSpec& spec, rtl::Module module,
    const exec::ProgressFn& progress, const exec::CancelToken* cancel) {
  rtlfi::CampaignConfig cc;
  cc.module = module;
  cc.n_faults = spec.faults;
  cc.seed = spec.seed;
  cc.jobs = spec.jobs;
  cc.acceleration = *parse_acceleration(spec.accel);
  cc.fault_model = *parse_fault_model(spec.fault_model);
  cc.fault_duration = spec.fault_duration;
  cc.burst_period = spec.burst_period;
  cc.progress = progress;
  cc.progress_interval = spec.progress_interval;
  cc.cancel = cancel;
  return cc;
}

std::string run_spec(const CampaignSpec& spec, Caches& caches,
                     const exec::ProgressFn& progress,
                     const exec::CancelToken* cancel) {
  if (const auto err = validate_spec(spec))
    throw std::invalid_argument(*err);
  obs::Span span("serve.run_spec");
  span.set("kind", campaign_kind_name(spec.kind));

  switch (spec.kind) {
    case CampaignKind::Rtl: {
      const auto w = rtlfi::make_microbenchmark(
          *parse_opcode(spec.op), *parse_range(spec.range), spec.seed);
      const auto cc = campaign_config_for_spec(spec, *parse_module(spec.module),
                                               progress, cancel);
      const auto golden = caches.golden(
          golden_cache_key(spec, cc, w),
          [&] { return rtlfi::prepare_golden(w, cc); });
      const auto r = rtlfi::run_campaign(w, cc, *golden);
      throw_if_stopped(cancel);
      return serialize_campaign_result(spec, r);
    }
    case CampaignKind::Tmxm: {
      const auto w = rtlfi::make_tmxm(*parse_tile(spec.tile), spec.seed);
      const auto cc = campaign_config_for_spec(spec, *parse_module(spec.module),
                                               progress, cancel);
      const auto golden = caches.golden(
          golden_cache_key(spec, cc, w),
          [&] { return rtlfi::prepare_golden(w, cc); });
      const auto r = rtlfi::run_campaign(w, cc, *golden);
      throw_if_stopped(cancel);
      return serialize_campaign_result(spec, r);
    }
    case CampaignKind::Sw: {
      const auto app = vocab::make_app(spec.app);
      swfi::Config cfg;
      cfg.model = *parse_sw_model(spec.model);
      cfg.n_injections = spec.injections;
      cfg.seed = spec.seed;
      cfg.jobs = spec.jobs;
      cfg.progress = progress;
      cfg.progress_interval = spec.progress_interval;
      cfg.cancel = cancel;
      std::shared_ptr<const syndrome::Database> db;
      if (cfg.model == swfi::FaultModel::RelativeError ||
          cfg.model == swfi::FaultModel::WarpRelativeError ||
          cfg.model == swfi::FaultModel::StickyRelativeError) {
        db = caches.syndrome_db(spec.db_path, spec.jobs);
        throw_if_stopped(cancel);  // the shared build may outlive a deadline
        cfg.db = db.get();
        // Sticky replay images a stuck-at fault: sample that syndrome class
        // (falls back to transient inside the database when absent).
        if (cfg.model == swfi::FaultModel::StickyRelativeError)
          cfg.syndrome_model = rtl::FaultModel::StuckAt1;
      }
      if (!spec.plan.empty()) {
        const auto plan = vocab::parse_plan(spec.plan);
        if (!plan)  // validate_spec guarantees this cannot happen
          throw std::invalid_argument("bad plan: " + spec.plan);
        const auto pr = swfi::run_planned_campaign(app.app, cfg, *plan);
        throw_if_stopped(cancel);
        return serialize_planned_sw_result(pr);
      }
      const auto r = swfi::run_sw_campaign(app.app, cfg);
      throw_if_stopped(cancel);
      return serialize_sw_result(r);
    }
    case CampaignKind::Cnn: {
      const auto db = caches.syndrome_db(spec.db_path, spec.jobs);
      const auto models = core::ensure_models(spec.models_dir);
      throw_if_stopped(cancel);
      const bool lenet = spec.net == "lenet";
      const auto r = nn::run_cnn_campaign(
          lenet ? models.lenet : models.yololite,
          lenet ? nn::CnnTask::Classification : nn::CnnTask::Detection,
          *parse_cnn_model(spec.model), db.get(), spec.injections, spec.seed);
      throw_if_stopped(cancel);
      return serialize_cnn_result(r);
    }
  }
  throw std::logic_error("unreachable campaign kind");
}

std::string run_spec_offline(const CampaignSpec& spec) {
  Caches fresh;
  return run_spec(spec, fresh, {}, nullptr);
}

std::string run_report_spec(const CampaignSpec& spec,
                            const exec::ProgressFn& progress,
                            const exec::CancelToken* cancel) {
  if (spec.kind != CampaignKind::Rtl)
    throw std::invalid_argument(
        "attribution reports require an rtl campaign spec");
  if (const auto err = validate_spec(spec))
    throw std::invalid_argument(*err);
  obs::Span span("serve.run_report");
  span.set("op", spec.op);

  core::ReportConfig rc;
  rc.op = *parse_opcode(spec.op);
  rc.module = *parse_module(spec.module);
  rc.range = *parse_range(spec.range);
  rc.n_faults = spec.faults;
  rc.seed = spec.seed;
  rc.jobs = spec.jobs;
  rc.acceleration = *parse_acceleration(spec.accel);
  rc.fault_model = *parse_fault_model(spec.fault_model);
  rc.fault_duration = spec.fault_duration;
  rc.burst_period = spec.burst_period;
  rc.progress = progress;
  rc.progress_interval = spec.progress_interval;
  rc.cancel = cancel;
  const attr::Report report = core::run_report(rc);
  throw_if_stopped(cancel);
  return attr::render_json(report);
}

std::string run_report_offline(const CampaignSpec& spec) {
  return run_report_spec(spec, {}, nullptr);
}

// ---------------------------------------------------------------------------
// Stats payload.
// ---------------------------------------------------------------------------

std::string encode_stats(const ServerStats& s) {
  std::string out;
  const auto kv = [&](const char* k, std::size_t v) {
    out += k;
    out += '=';
    out += std::to_string(v);
    out += '\n';
  };
  kv("accepted", s.accepted);
  kv("completed", s.completed);
  kv("failed", s.failed);
  kv("cancelled", s.cancelled);
  kv("rejected", s.rejected);
  kv("active", s.active);
  kv("queued", s.queued);
  kv("queue_capacity", s.queue_capacity);
  kv("workers", s.workers);
  kv("planner_early_stops", s.planner_early_stops);
  kv("db_cache_hits", s.db_cache.hits);
  kv("db_cache_misses", s.db_cache.misses);
  kv("golden_cache_hits", s.golden_cache.hits);
  kv("golden_cache_misses", s.golden_cache.misses);
  kv("fabric_workers_registered", s.fabric_workers_registered);
  kv("fabric_workers_alive", s.fabric_workers_alive);
  kv("fabric_shards_inflight", s.fabric_shards_inflight);
  kv("fabric_shards_retried", s.fabric_shards_retried);
  kv("fabric_shards_completed", s.fabric_shards_completed);
  return out;
}

std::optional<ServerStats> decode_stats(std::string_view payload) {
  ServerStats s;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) eol = payload.size();
    const std::string_view line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = line.substr(0, eq);
    errno = 0;
    char* end = nullptr;
    const std::string value(line.substr(eq + 1));
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (errno != 0 || end != value.c_str() + value.size())
      return std::nullopt;
    if (key == "accepted") s.accepted = v;
    else if (key == "completed") s.completed = v;
    else if (key == "failed") s.failed = v;
    else if (key == "cancelled") s.cancelled = v;
    else if (key == "rejected") s.rejected = v;
    else if (key == "active") s.active = v;
    else if (key == "queued") s.queued = v;
    else if (key == "queue_capacity") s.queue_capacity = v;
    else if (key == "workers") s.workers = v;
    else if (key == "planner_early_stops") s.planner_early_stops = v;
    else if (key == "db_cache_hits") s.db_cache.hits = v;
    else if (key == "db_cache_misses") s.db_cache.misses = v;
    else if (key == "golden_cache_hits") s.golden_cache.hits = v;
    else if (key == "golden_cache_misses") s.golden_cache.misses = v;
    else if (key == "fabric_workers_registered") s.fabric_workers_registered = v;
    else if (key == "fabric_workers_alive") s.fabric_workers_alive = v;
    else if (key == "fabric_shards_inflight") s.fabric_shards_inflight = v;
    else if (key == "fabric_shards_retried") s.fabric_shards_retried = v;
    else if (key == "fabric_shards_completed") s.fabric_shards_completed = v;
    else return std::nullopt;
  }
  return s;
}

// ---------------------------------------------------------------------------
// The daemon.
// ---------------------------------------------------------------------------

struct Server::Impl {
  explicit Impl(ServerConfig c)
      : cfg(std::move(c)), queue(cfg.queue_capacity) {}

  ServerConfig cfg;
  JobQueue queue;
  Caches caches;
  /// Embedded fabric coordinator (null when cfg.fabric_listen is empty).
  std::unique_ptr<fabric::Coordinator> fabric;

  int listen_fd = -1;
  std::atomic<bool> started{false};
  std::atomic<bool> stopped{false};
  std::thread accept_thread;
  std::vector<std::thread> workers;

  std::atomic<std::uint64_t> next_id{1};
  std::atomic<std::size_t> accepted{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> cancelled{0};
  std::atomic<std::size_t> active{0};

  /// Tokens of currently-executing jobs (forced shutdown cancels them).
  std::mutex active_mutex;
  std::set<std::shared_ptr<exec::CancelToken>> active_tokens;

  void log(const char* fmt, ...) const;
  void accept_loop();
  void handle_connection(int fd);
  void worker_loop();
  void handle_job(Job job);
  /// Syncs the point-in-time gauges (queue depth, active jobs, pool shape)
  /// into the metric registry — called at scrape time, so a Metrics frame
  /// always reflects the live state.
  void refresh_gauges();
  void fill_stats(ServerStats& s) const;
};

void Server::Impl::refresh_gauges() {
  obs::set_gauge("gpufi_serve_queue_depth",
                 static_cast<std::int64_t>(queue.depth()));
  obs::set_gauge("gpufi_serve_queue_capacity",
                 static_cast<std::int64_t>(queue.capacity()));
  obs::set_gauge("gpufi_serve_active_jobs",
                 static_cast<std::int64_t>(active.load()));
  obs::set_gauge("gpufi_serve_workers",
                 static_cast<std::int64_t>(workers.size()));
  if (fabric) {
    // Fleet-wide aggregates so `gpufi stats --metrics` reflects the fabric
    // at scrape time.
    const auto fs = fabric->stats();
    obs::set_gauge("gpufi_fabric_workers_registered",
                   static_cast<std::int64_t>(fs.workers_registered));
    obs::set_gauge("gpufi_fabric_workers_alive",
                   static_cast<std::int64_t>(fs.workers_alive));
    obs::set_gauge("gpufi_fabric_shards_inflight",
                   static_cast<std::int64_t>(fs.shards_inflight));
    obs::set_gauge("gpufi_fabric_shards_pending",
                   static_cast<std::int64_t>(fs.shards_pending));
    obs::set_gauge("gpufi_fabric_shards_retried",
                   static_cast<std::int64_t>(fs.shards_retried));
  }
}

void Server::Impl::fill_stats(ServerStats& s) const {
  s.accepted = accepted;
  s.completed = completed;
  s.failed = failed;
  s.cancelled = cancelled;
  s.rejected = queue.rejected();
  s.active = active;
  s.queued = queue.depth();
  s.queue_capacity = queue.capacity();
  s.workers = workers.size();
  s.planner_early_stops = obs::Registry::global().counter_value(
      "gpufi_swfi_planner_early_stops_total");
  s.db_cache = caches.syndrome_db_stats();
  s.golden_cache = caches.golden_stats();
  if (fabric) {
    const auto fs = fabric->stats();
    s.fabric_workers_registered = fs.workers_registered;
    s.fabric_workers_alive = fs.workers_alive;
    s.fabric_shards_inflight = fs.shards_inflight;
    s.fabric_shards_retried = fs.shards_retried;
    s.fabric_shards_completed = fs.shards_completed;
  }
}

void Server::Impl::log(const char* fmt, ...) const {
  if (cfg.quiet) return;
  va_list args;
  va_start(args, fmt);
  std::fputs("gpufi-serve: ", stderr);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
}

void Server::Impl::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down (or fatal): stop accepting
    }
    // Bound the time a silent client can hold the accept thread.
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    handle_connection(fd);
  }
}

void Server::Impl::handle_connection(int fd) {
  Frame req;
  const ReadStatus st = read_frame(fd, req);
  if (st != ReadStatus::Ok) {
    if (st != ReadStatus::Eof) {
      obs::count("gpufi_serve_bad_requests_total");
      write_frame(fd, {FrameType::Error, "malformed request frame"});
    }
    ::close(fd);
    return;
  }

  if (req.type == FrameType::MetricsRequest) {
    refresh_gauges();
    write_frame(fd,
                {FrameType::Metrics,
                 obs::Registry::global().render_prometheus()});
    ::close(fd);
    return;
  }

  if (req.type == FrameType::Status) {
    ServerStats s;
    fill_stats(s);
    write_frame(fd, {FrameType::Stats, encode_stats(s)});
    ::close(fd);
    return;
  }

  if (req.type != FrameType::Submit && req.type != FrameType::ReportRequest) {
    obs::count("gpufi_serve_bad_requests_total");
    write_frame(fd, {FrameType::Error,
                     "expected a Submit, ReportRequest, or Status frame"});
    ::close(fd);
    return;
  }

  std::string error;
  const auto spec = decode_spec(req.payload, &error);
  if (!spec) {
    ++failed;
    obs::count("gpufi_serve_jobs_failed_total");
    write_frame(fd, {FrameType::Error, "invalid campaign spec: " + error});
    ::close(fd);
    return;
  }

  Job job;
  job.id = next_id.fetch_add(1);
  job.spec = *spec;
  job.fd = fd;
  job.report = req.type == FrameType::ReportRequest;
  job.cancel = std::make_shared<exec::CancelToken>();
  const std::uint64_t deadline_ms =
      spec->deadline_ms != 0 ? spec->deadline_ms : cfg.default_deadline_ms;
  if (deadline_ms != 0)
    job.cancel->set_deadline_after(std::chrono::milliseconds(deadline_ms));
  job.enqueued_at = std::chrono::steady_clock::now();

  if (!queue.push(std::move(job))) {
    // Admission control: reject-with-backpressure instead of buffering.
    obs::count("gpufi_serve_jobs_rejected_total");
    write_frame(fd, {FrameType::Error,
                     "queue full (capacity " +
                         std::to_string(queue.capacity()) +
                         "): retry later"});
    ::close(fd);
    log("rejected job (queue full)");
    return;
  }
  ++accepted;
  obs::count("gpufi_serve_jobs_accepted_total");
  log("accepted %s job (queued %zu)",
      std::string(campaign_kind_name(spec->kind)).c_str(), queue.depth());
}

void Server::Impl::worker_loop() {
  while (auto job = queue.pop()) handle_job(std::move(*job));
}

void Server::Impl::handle_job(Job job) {
  ++active;
  {
    std::lock_guard<std::mutex> lock(active_mutex);
    active_tokens.insert(job.cancel);
  }
  const auto token = job.cancel;
  const int fd = job.fd;

  obs::observe("gpufi_serve_queue_wait_seconds",
               std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             job.enqueued_at)
                   .count());
  obs::Span span("serve.request");
  span.set("kind", campaign_kind_name(job.spec.kind));
  span.set("id", job.id);

  // Progress streamer + disconnect detector: a client that closed its end
  // surfaces as recv()==0 (orderly FIN) or a failed frame write, either of
  // which cancels the trial loop cooperatively.
  const exec::ProgressFn progress = [fd, token](const exec::Progress& p) {
    char probe;
    const ssize_t r = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
    if (r == 0) {
      token->cancel();
      return;
    }
    if (!write_frame(fd, {FrameType::Progress, encode_progress(p)}))
      token->cancel();
  };

  try {
    throw_if_stopped(token.get());
    std::string payload;
    if (!job.report && job.spec.workers > 0) {
      // Fabric fan-out: the coordinator shards the campaign over the
      // registered `gpufi worker` fleet and merges to the exact bytes the
      // in-process path below would have produced.
      if (!fabric)
        throw std::invalid_argument(
            "this daemon has no fabric: restart `gpufi serve` with "
            "--fabric ADDR, or resubmit without --workers");
      payload =
          fabric->run_job(job.spec, job.spec.workers, progress, token.get());
    } else if (job.report && job.spec.workers > 0) {
      throw std::invalid_argument(
          "attribution reports cannot fan out over the fabric; resubmit "
          "without --workers");
    } else {
      payload = job.report ? run_report_spec(job.spec, progress, token.get())
                           : run_spec(job.spec, caches, progress, token.get());
    }
    const FrameType reply =
        job.report ? FrameType::Report : FrameType::Result;
    if (write_frame(fd, {reply, payload})) {
      ++completed;
      obs::count("gpufi_serve_jobs_completed_total");
      log("job %llu done", static_cast<unsigned long long>(job.id));
    } else {
      ++cancelled;  // client vanished between the last trial and the result
      obs::count("gpufi_serve_jobs_cancelled_total");
    }
  } catch (const CancelledError&) {
    ++cancelled;
    obs::count("gpufi_serve_jobs_cancelled_total");
    const char* why = token->cancelled() ? "campaign cancelled"
                                         : "deadline exceeded";
    write_frame(fd, {FrameType::Error, why});
    log("job %llu %s", static_cast<unsigned long long>(job.id), why);
  } catch (const std::exception& e) {
    if (token->stopped()) {
      // A cancelled shared computation (e.g. DB build) may surface as a
      // generic exception; classify by the token, not the message.
      ++cancelled;
      obs::count("gpufi_serve_jobs_cancelled_total");
      write_frame(fd, {FrameType::Error, token->cancelled()
                                             ? "campaign cancelled"
                                             : "deadline exceeded"});
    } else {
      ++failed;
      obs::count("gpufi_serve_jobs_failed_total");
      write_frame(fd, {FrameType::Error,
                       std::string("campaign failed: ") + e.what()});
      log("job %llu failed: %s", static_cast<unsigned long long>(job.id),
          e.what());
    }
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(active_mutex);
    active_tokens.erase(token);
  }
  --active;
}

Server::Server(ServerConfig cfg) : impl_(std::make_unique<Impl>(std::move(cfg))) {}

Server::~Server() {
  if (impl_->started && !impl_->stopped) shutdown(false);
}

const ServerConfig& Server::config() const { return impl_->cfg; }

bool Server::running() const {
  return impl_->started && !impl_->stopped;
}

void Server::start() {
  if (impl_->started) throw std::logic_error("server already started");
  const std::string& path = impl_->cfg.socket_path;

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("socket(): " + std::string(std::strerror(errno)));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // clear a stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("bind(" + path + "): " + err);
  }
  if (::listen(fd, 128) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ::unlink(path.c_str());
    throw std::runtime_error("listen(" + path + "): " + err);
  }

  if (!impl_->cfg.fabric_listen.empty()) {
    const auto ep = fabric::parse_endpoint(impl_->cfg.fabric_listen);
    if (!ep) {
      ::close(fd);
      ::unlink(path.c_str());
      throw std::runtime_error("bad fabric listen address: " +
                               impl_->cfg.fabric_listen);
    }
    fabric::CoordinatorConfig fc;
    fc.listen = *ep;
    fc.heartbeat_timeout_ms = impl_->cfg.fabric_heartbeat_timeout_ms;
    fc.max_shard_retries = impl_->cfg.fabric_max_retries;
    fc.quiet = impl_->cfg.quiet;
    impl_->fabric = std::make_unique<fabric::Coordinator>(fc);
    try {
      impl_->fabric->start();
    } catch (...) {
      impl_->fabric.reset();
      ::close(fd);
      ::unlink(path.c_str());
      throw;
    }
    impl_->log("fabric coordinator on %s", ep->describe().c_str());
  }

  impl_->listen_fd = fd;
  impl_->started = true;
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
  const unsigned n = impl_->cfg.workers == 0 ? 1 : impl_->cfg.workers;
  impl_->workers.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  impl_->log("listening on %s (%u workers, queue capacity %zu)",
             path.c_str(), n, impl_->queue.capacity());
}

void Server::shutdown(bool drain) {
  if (!impl_->started || impl_->stopped) return;
  impl_->stopped = true;
  impl_->log(drain ? "draining..." : "stopping...");

  // Wake the accept thread: shutdown() on a listening socket makes a
  // blocked accept() return immediately.
  ::shutdown(impl_->listen_fd, SHUT_RDWR);
  impl_->accept_thread.join();
  ::close(impl_->listen_fd);
  impl_->listen_fd = -1;

  if (!drain) {
    for (auto& job : impl_->queue.drain_pending()) {
      job.cancel->cancel();
      write_frame(job.fd, {FrameType::Error, "server shutting down"});
      ::close(job.fd);
      ++impl_->cancelled;
    }
    std::lock_guard<std::mutex> lock(impl_->active_mutex);
    for (const auto& token : impl_->active_tokens) token->cancel();
  }

  // Drain semantics: admitted jobs still run to completion; workers exit
  // once the queue is empty.
  impl_->queue.close();
  for (auto& w : impl_->workers) w.join();
  impl_->workers.clear();
  // Stop the fabric only after the executor pool drained: in-flight fabric
  // jobs finish their shards before the fleet is cut loose.
  if (impl_->fabric) impl_->fabric->stop();
  ::unlink(impl_->cfg.socket_path.c_str());
  impl_->log("stopped (completed %zu, failed %zu, cancelled %zu)",
             impl_->completed.load(), impl_->failed.load(),
             impl_->cancelled.load());
}

ServerStats Server::stats() const {
  ServerStats s;
  impl_->fill_stats(s);
  return s;
}

fabric::Coordinator* Server::coordinator() const {
  return impl_->fabric.get();
}

}  // namespace gpufi::serve
