#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gpufi::serve {

int connect_socket(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    errno = ENAMETOOLONG;
    return -1;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

SubmitOutcome submit_campaign(
    const std::string& socket_path, const CampaignSpec& spec,
    const std::function<void(const exec::Progress&)>& on_progress) {
  SubmitOutcome out;
  const int fd = connect_socket(socket_path);
  if (fd < 0) {
    out.error = "connect(" + socket_path + "): " + std::strerror(errno);
    return out;
  }
  if (!write_frame(fd, {FrameType::Submit, encode_spec(spec)})) {
    out.error = "failed to send the campaign spec";
    ::close(fd);
    return out;
  }
  for (;;) {
    Frame f;
    const ReadStatus st = read_frame(fd, f);
    if (st != ReadStatus::Ok) {
      out.error = st == ReadStatus::Eof
                      ? "server closed the connection without a result"
                      : "transport error while waiting for the result";
      break;
    }
    if (f.type == FrameType::Progress) {
      ++out.progress_frames;
      if (on_progress) {
        if (const auto p = decode_progress(f.payload)) on_progress(*p);
      }
      continue;
    }
    if (f.type == FrameType::Result) {
      out.ok = true;
      out.result = std::move(f.payload);
    } else {
      out.error = f.type == FrameType::Error
                      ? std::move(f.payload)
                      : "unexpected frame type from server";
    }
    break;
  }
  ::close(fd);
  return out;
}

std::optional<ServerStats> query_stats(const std::string& socket_path,
                                       std::string* error) {
  const auto fail = [&](std::string msg) -> std::optional<ServerStats> {
    if (error) *error = std::move(msg);
    return std::nullopt;
  };
  const int fd = connect_socket(socket_path);
  if (fd < 0)
    return fail("connect(" + socket_path + "): " + std::strerror(errno));
  if (!write_frame(fd, {FrameType::Status, ""})) {
    ::close(fd);
    return fail("failed to send the status request");
  }
  Frame f;
  const ReadStatus st = read_frame(fd, f);
  ::close(fd);
  if (st != ReadStatus::Ok) return fail("no stats reply from server");
  if (f.type == FrameType::Error) return fail(std::move(f.payload));
  if (f.type != FrameType::Stats) return fail("unexpected reply frame type");
  auto stats = decode_stats(f.payload);
  if (!stats) return fail("malformed stats payload");
  return stats;
}

std::optional<std::string> query_metrics(const std::string& socket_path,
                                         std::string* error) {
  const auto fail = [&](std::string msg) -> std::optional<std::string> {
    if (error) *error = std::move(msg);
    return std::nullopt;
  };
  const int fd = connect_socket(socket_path);
  if (fd < 0)
    return fail("connect(" + socket_path + "): " + std::strerror(errno));
  if (!write_frame(fd, {FrameType::MetricsRequest, ""})) {
    ::close(fd);
    return fail("failed to send the metrics request");
  }
  Frame f;
  const ReadStatus st = read_frame(fd, f);
  ::close(fd);
  if (st != ReadStatus::Ok) return fail("no metrics reply from server");
  if (f.type == FrameType::Error) return fail(std::move(f.payload));
  if (f.type != FrameType::Metrics)
    return fail("unexpected reply frame type");
  return std::move(f.payload);
}

std::optional<std::string> query_report(
    const std::string& socket_path, const CampaignSpec& spec,
    const std::function<void(const exec::Progress&)>& on_progress,
    std::string* error) {
  const auto fail = [&](std::string msg) -> std::optional<std::string> {
    if (error) *error = std::move(msg);
    return std::nullopt;
  };
  const int fd = connect_socket(socket_path);
  if (fd < 0)
    return fail("connect(" + socket_path + "): " + std::strerror(errno));
  if (!write_frame(fd, {FrameType::ReportRequest, encode_spec(spec)})) {
    ::close(fd);
    return fail("failed to send the report request");
  }
  for (;;) {
    Frame f;
    const ReadStatus st = read_frame(fd, f);
    if (st != ReadStatus::Ok) {
      ::close(fd);
      return fail(st == ReadStatus::Eof
                      ? "server closed the connection without a report"
                      : "transport error while waiting for the report");
    }
    if (f.type == FrameType::Progress) {
      if (on_progress) {
        if (const auto p = decode_progress(f.payload)) on_progress(*p);
      }
      continue;
    }
    ::close(fd);
    if (f.type == FrameType::Report) return std::move(f.payload);
    return fail(f.type == FrameType::Error
                    ? std::move(f.payload)
                    : "unexpected frame type from server");
  }
}

}  // namespace gpufi::serve
