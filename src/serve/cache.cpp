#include "serve/cache.hpp"

#include "core/gpufi.hpp"

namespace gpufi::serve {

std::shared_ptr<const syndrome::Database> Caches::syndrome_db(
    const std::string& path, unsigned jobs) {
  return dbs_.get_or_compute(path, [&] {
    core::RtlCharacterizationConfig cfg;
    cfg.jobs = jobs;
    // Deliberately no cancel token: the build is shared by (and cached for)
    // every future request, so one impatient client must not abort it.
    return core::ensure_syndrome_database(path, cfg);
  });
}

std::shared_ptr<const rtlfi::GoldenContext> Caches::golden(
    const std::string& key,
    const std::function<rtlfi::GoldenContext()>& make) {
  return goldens_.get_or_compute(key, make);
}

}  // namespace gpufi::serve
