#pragma once

// Client side of the gpufi-serve protocol: connect, submit one campaign,
// stream progress, collect the final Result/Error frame. Used by
// `gpufi submit` / `gpufi status` and by the loopback tests.

#include <functional>
#include <optional>
#include <string>

#include "exec/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace gpufi::serve {

/// Connects to the daemon's Unix-domain socket. Returns -1 (with errno set)
/// on failure; the caller owns the fd.
int connect_socket(const std::string& socket_path);

struct SubmitOutcome {
  bool ok = false;           ///< a Result frame arrived
  std::string error;         ///< Error-frame payload or transport failure
  std::string result;        ///< Result-frame payload (the campaign bytes)
  std::size_t progress_frames = 0;
};

/// Submits `spec` and blocks until the server answers with Result or Error
/// (invoking `on_progress`, when given, per Progress frame in between).
SubmitOutcome submit_campaign(
    const std::string& socket_path, const CampaignSpec& spec,
    const std::function<void(const exec::Progress&)>& on_progress = {});

/// Asks the daemon for its stats snapshot. Returns nullopt (filling `error`
/// when given) if the daemon is unreachable or answers garbage.
std::optional<ServerStats> query_stats(const std::string& socket_path,
                                       std::string* error = nullptr);

/// Asks the daemon for its Prometheus text exposition (a Metrics frame in
/// answer to MetricsRequest). Returns nullopt (filling `error` when given)
/// if the daemon is unreachable or answers with anything else.
std::optional<std::string> query_metrics(const std::string& socket_path,
                                         std::string* error = nullptr);

/// Sends a ReportRequest (spec kind must be rtl) and blocks until the
/// server answers with a Report or Error frame, invoking `on_progress`,
/// when given, per Progress frame in between. Returns the report JSON, or
/// nullopt filling `error`.
std::optional<std::string> query_report(
    const std::string& socket_path, const CampaignSpec& spec,
    const std::function<void(const exec::Progress&)>& on_progress = {},
    std::string* error = nullptr);

}  // namespace gpufi::serve
