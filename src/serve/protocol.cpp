#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "syndrome/syndrome.hpp"

namespace gpufi::serve {

namespace {

void put_u32_le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32_le(const char* p) {
  const auto b = [&](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

/// Appends one "key=value\n" line; values must be newline-free.
void put_kv(std::string& out, std::string_view key, std::string_view value) {
  if (value.find('\n') != std::string_view::npos)
    throw std::invalid_argument("newline in protocol value for key '" +
                                std::string(key) + "'");
  out.append(key);
  out.push_back('=');
  out.append(value);
  out.push_back('\n');
}

void put_kv(std::string& out, std::string_view key, std::uint64_t value) {
  put_kv(out, key, std::to_string(value));
}

/// Lossless double formatting (round-trips bit-exactly through strtod).
std::string fmt_double(double v) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const std::string buf(s);
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  if (!buf.empty() && buf[0] == '-') return false;
  out = v;
  return true;
}

bool parse_i64(std::string_view s, std::int64_t& out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const std::string buf(s);
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

bool parse_double(std::string_view s, double& out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const std::string buf(s);
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

/// Iterates "key=value\n" lines; returns false (with `error`) on a malformed
/// line or when `fn` rejects a key/value pair.
bool for_each_kv(std::string_view payload, std::string* error,
                 const std::function<bool(std::string_view, std::string_view,
                                          std::string*)>& fn) {
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) eol = payload.size();
    const std::string_view line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      if (error) *error = "malformed line (no '='): " + std::string(line);
      return false;
    }
    if (!fn(line.substr(0, eq), line.substr(eq + 1), error)) return false;
  }
  return true;
}

}  // namespace

bool frame_type_valid(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::Submit) &&
         t <= static_cast<std::uint8_t>(FrameType::ShardProgress);
}

std::string encode_frame(const Frame& f) {
  if (f.payload.size() > kMaxFramePayload)
    throw std::length_error("frame payload exceeds kMaxFramePayload");
  std::string out;
  out.reserve(kFrameHeaderSize + f.payload.size());
  put_u32_le(out, static_cast<std::uint32_t>(f.payload.size()));
  out.push_back(static_cast<char>(f.type));
  out.append(f.payload);
  return out;
}

DecodeStatus decode_frame(std::string_view buf, Frame& out,
                          std::size_t& consumed, std::size_t max_payload) {
  if (buf.size() < kFrameHeaderSize) return DecodeStatus::NeedMore;
  const std::uint32_t len = get_u32_le(buf.data());
  if (len > max_payload) return DecodeStatus::TooLarge;
  const auto type = static_cast<std::uint8_t>(buf[4]);
  if (!frame_type_valid(type)) return DecodeStatus::BadType;
  if (buf.size() < kFrameHeaderSize + len) return DecodeStatus::NeedMore;
  out.type = static_cast<FrameType>(type);
  out.payload.assign(buf.data() + kFrameHeaderSize, len);
  consumed = kFrameHeaderSize + len;
  return DecodeStatus::Ok;
}

bool write_frame(int fd, const Frame& f) {
  std::string wire;
  try {
    wire = encode_frame(f);
  } catch (const std::exception&) {
    return false;
  }
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + off, wire.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

namespace {

/// Reads exactly `len` bytes. 1 = ok, 0 = clean EOF at offset 0, -1 = error.
int read_exact(int fd, char* dst, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd, dst + off, len - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return off == 0 ? 0 : -1;
    off += static_cast<std::size_t>(n);
  }
  return 1;
}

}  // namespace

ReadStatus read_frame(int fd, Frame& out, std::size_t max_payload) {
  char header[kFrameHeaderSize];
  const int h = read_exact(fd, header, sizeof header);
  if (h == 0) return ReadStatus::Eof;
  if (h < 0) return ReadStatus::Error;
  const std::uint32_t len = get_u32_le(header);
  if (len > max_payload) return ReadStatus::TooLarge;
  const auto type = static_cast<std::uint8_t>(header[4]);
  if (!frame_type_valid(type)) return ReadStatus::BadType;
  out.type = static_cast<FrameType>(type);
  out.payload.resize(len);
  if (len != 0 && read_exact(fd, out.payload.data(), len) != 1)
    return ReadStatus::Error;
  return ReadStatus::Ok;
}

// ---------------------------------------------------------------------------
// Campaign spec.
// ---------------------------------------------------------------------------

std::string_view campaign_kind_name(CampaignKind k) {
  switch (k) {
    case CampaignKind::Rtl: return "rtl";
    case CampaignKind::Tmxm: return "tmxm";
    case CampaignKind::Sw: return "sw";
    case CampaignKind::Cnn: return "cnn";
  }
  return "?";
}

std::optional<CampaignKind> parse_campaign_kind(std::string_view s) {
  if (s == "rtl") return CampaignKind::Rtl;
  if (s == "tmxm") return CampaignKind::Tmxm;
  if (s == "sw") return CampaignKind::Sw;
  if (s == "cnn") return CampaignKind::Cnn;
  return std::nullopt;
}

std::string encode_spec(const CampaignSpec& spec) {
  std::string out;
  put_kv(out, "kind", campaign_kind_name(spec.kind));
  put_kv(out, "op", spec.op);
  put_kv(out, "module", spec.module);
  put_kv(out, "range", spec.range);
  put_kv(out, "tile", spec.tile);
  put_kv(out, "app", spec.app);
  put_kv(out, "model", spec.model);
  put_kv(out, "net", spec.net);
  put_kv(out, "fault_model", spec.fault_model);
  put_kv(out, "fault_duration", spec.fault_duration);
  put_kv(out, "burst_period", spec.burst_period);
  put_kv(out, "faults", spec.faults);
  put_kv(out, "injections", spec.injections);
  put_kv(out, "seed", spec.seed);
  put_kv(out, "jobs", spec.jobs);
  put_kv(out, "workers", spec.workers);
  put_kv(out, "accel", spec.accel);
  put_kv(out, "db", spec.db_path);
  put_kv(out, "models", spec.models_dir);
  put_kv(out, "priority", std::to_string(spec.priority));
  put_kv(out, "deadline_ms", spec.deadline_ms);
  put_kv(out, "progress_interval", spec.progress_interval);
  put_kv(out, "plan", spec.plan);
  return out;
}

std::optional<CampaignSpec> decode_spec(std::string_view payload,
                                        std::string* error) {
  CampaignSpec spec;
  const bool ok = for_each_kv(
      payload, error,
      [&](std::string_view key, std::string_view value, std::string* err) {
        const auto fail = [&](const std::string& msg) {
          if (err) *err = msg;
          return false;
        };
        const auto number = [&](std::uint64_t& dst) {
          std::uint64_t v = 0;
          if (!parse_u64(value, v))
            return fail("bad number for '" + std::string(key) +
                        "': " + std::string(value));
          dst = v;
          return true;
        };
        if (key == "kind") {
          const auto k = parse_campaign_kind(value);
          if (!k) return fail("unknown kind: " + std::string(value));
          spec.kind = *k;
          return true;
        }
        if (key == "op") { spec.op = value; return true; }
        if (key == "module") { spec.module = value; return true; }
        if (key == "range") { spec.range = value; return true; }
        if (key == "tile") { spec.tile = value; return true; }
        if (key == "app") { spec.app = value; return true; }
        if (key == "model") { spec.model = value; return true; }
        if (key == "net") { spec.net = value; return true; }
        if (key == "fault_model") { spec.fault_model = value; return true; }
        if (key == "fault_duration") return number(spec.fault_duration);
        if (key == "burst_period") return number(spec.burst_period);
        if (key == "accel") { spec.accel = value; return true; }
        if (key == "db") { spec.db_path = value; return true; }
        if (key == "models") { spec.models_dir = value; return true; }
        if (key == "faults") {
          std::uint64_t v;
          if (!number(v)) return false;
          spec.faults = v;
          return true;
        }
        if (key == "injections") {
          std::uint64_t v;
          if (!number(v)) return false;
          spec.injections = v;
          return true;
        }
        if (key == "seed") return number(spec.seed);
        if (key == "jobs") {
          std::uint64_t v;
          if (!number(v)) return false;
          spec.jobs = static_cast<unsigned>(v);
          return true;
        }
        if (key == "workers") {
          std::uint64_t v;
          if (!number(v)) return false;
          spec.workers = static_cast<unsigned>(v);
          return true;
        }
        if (key == "priority") {
          std::int64_t v;
          if (!parse_i64(value, v))
            return fail("bad number for 'priority': " + std::string(value));
          spec.priority = static_cast<int>(v);
          return true;
        }
        if (key == "deadline_ms") return number(spec.deadline_ms);
        if (key == "progress_interval") {
          std::uint64_t v;
          if (!number(v)) return false;
          spec.progress_interval = v;
          return true;
        }
        if (key == "plan") { spec.plan = value; return true; }
        return fail("unknown spec key: " + std::string(key));
      });
  if (!ok) return std::nullopt;
  if (const auto err = validate_spec(spec)) {
    if (error) *error = *err;
    return std::nullopt;
  }
  return spec;
}

std::optional<std::string> validate_spec(const CampaignSpec& spec) {
  if (!parse_acceleration(spec.accel))
    return "unknown accel level: " + spec.accel;
  if (!parse_fault_model(spec.fault_model))
    return "unknown fault model: " + spec.fault_model;
  if (!spec.plan.empty()) {
    if (spec.kind != CampaignKind::Sw)
      return "plan is only valid for kind=sw";
    std::string err;
    if (!vocab::parse_plan(spec.plan, &err)) return err;
  }
  switch (spec.kind) {
    case CampaignKind::Rtl:
      if (!parse_opcode(spec.op)) return "unknown opcode: " + spec.op;
      if (!parse_module(spec.module))
        return "unknown module: " + spec.module;
      if (!parse_range(spec.range)) return "unknown range: " + spec.range;
      break;
    case CampaignKind::Tmxm:
      if (!parse_module(spec.module)) return "unknown site: " + spec.module;
      if (!parse_tile(spec.tile)) return "unknown tile: " + spec.tile;
      break;
    case CampaignKind::Sw:
      if (!is_known_app(spec.app)) return "unknown app: " + spec.app;
      if (!parse_sw_model(spec.model))
        return "unknown sw fault model: " + spec.model;
      break;
    case CampaignKind::Cnn:
      if (spec.net != "lenet" && spec.net != "yolo")
        return "unknown net: " + spec.net;
      if (!parse_cnn_model(spec.model))
        return "unknown cnn fault model: " + spec.model;
      break;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Progress payload.
// ---------------------------------------------------------------------------

std::string encode_progress(const exec::Progress& p) {
  std::string out;
  put_kv(out, "done", p.done);
  put_kv(out, "total", p.total);
  put_kv(out, "per_second", fmt_double(p.per_second));
  put_kv(out, "eta_seconds", fmt_double(p.eta_seconds));
  return out;
}

std::optional<exec::Progress> decode_progress(std::string_view payload) {
  exec::Progress p;
  const bool ok = for_each_kv(
      payload, nullptr,
      [&](std::string_view key, std::string_view value, std::string*) {
        std::uint64_t u = 0;
        double d = 0.0;
        if (key == "done" && parse_u64(value, u)) { p.done = u; return true; }
        if (key == "total" && parse_u64(value, u)) {
          p.total = u;
          return true;
        }
        if (key == "per_second" && parse_double(value, d)) {
          p.per_second = d;
          return true;
        }
        if (key == "eta_seconds" && parse_double(value, d)) {
          p.eta_seconds = d;
          return true;
        }
        return false;
      });
  if (!ok) return std::nullopt;
  return p;
}

// ---------------------------------------------------------------------------
// Result serializations.
// ---------------------------------------------------------------------------

std::string serialize_campaign_result(const CampaignSpec& spec,
                                      const rtlfi::CampaignResult& r) {
  std::string out;
  put_kv(out, "kind", campaign_kind_name(spec.kind));
  put_kv(out, "fault_model", spec.fault_model);
  put_kv(out, "injected", r.injected);
  put_kv(out, "masked", r.masked);
  put_kv(out, "sdc_single", r.sdc_single);
  put_kv(out, "sdc_multi", r.sdc_multi);
  put_kv(out, "due", r.due);
  put_kv(out, "golden_cycles", r.golden_cycles);
  put_kv(out, "converged_early", r.converged_early);
  // Record-format version: v2 adds the per-record fault-site line and the
  // per-site attribution table (v1 payloads had neither line and no
  // record_version key).
  put_kv(out, "record_version", std::uint64_t{2});
  put_kv(out, "records", r.records.size());
  for (const auto& rec : r.records) {
    std::string line;
    line += std::to_string(static_cast<unsigned>(rec.fault.module));
    line += ' ';
    line += std::to_string(rec.fault.bit);
    line += ' ';
    line += std::to_string(rec.fault.cycle);
    line += ' ';
    line += rec.field;
    line += ' ';
    line += rec.role == rtl::FieldRole::Data ? "data" : "control";
    line += ' ';
    line += rtlfi::outcome_name(rec.outcome);
    line += ' ';
    line += std::to_string(rec.corrupted_elements);
    line += ' ';
    line += std::to_string(rec.corrupted_threads);
    line += ' ';
    line += std::to_string(rec.diffs.size());
    if (!rec.due_reason.empty()) {
      line += " # ";
      line += rec.due_reason;
    }
    put_kv(out, "record", line);
    // v2: the fault-site context joined from the golden liveness timeline.
    {
      std::string sl;
      sl += rec.site.live ? "live" : "idle";
      sl += ' ';
      sl += std::to_string(rec.site.dyn_index);
      sl += ' ';
      sl += std::to_string(rec.site.cta);
      sl += ' ';
      sl += std::to_string(rec.site.warp);
      sl += ' ';
      sl += std::to_string(rec.site.pc);
      sl += ' ';
      sl += rec.site.live ? isa::mnemonic(rec.site.op) : std::string_view("-");
      sl += ' ';
      sl += rtl::stage_name(rec.site.stage);
      sl += ' ';
      sl += rec.site.unit_busy ? '1' : '0';
      sl += ' ';
      sl += vocab::due_reason_token(rec.due_reason_code);
      put_kv(out, "site", sl);
    }
    for (const auto& d : rec.diffs) {
      std::string dl;
      dl += std::to_string(d.index);
      dl += ' ';
      dl += std::to_string(d.golden);
      dl += ' ';
      dl += std::to_string(d.faulty);
      dl += ' ';
      dl += fmt_double(d.rel_error);
      dl += ' ';
      dl += std::to_string(d.bits_flipped);
      put_kv(out, "diff", dl);
    }
  }

  // v2: the per-site attribution table (every trial lands in exactly one
  // bucket; the hits over all lines sum to `injected`).
  put_kv(out, "attr_sites", r.attribution.size());
  for (const auto& [key, counts] : r.attribution) {
    std::string al;
    al += key.live ? "live" : "idle";
    al += ' ';
    al += std::to_string(key.pc);
    al += ' ';
    al += key.live ? isa::mnemonic(key.op) : std::string_view("-");
    al += ' ';
    al += std::to_string(counts.hits);
    al += ' ';
    al += std::to_string(counts.masked);
    al += ' ';
    al += std::to_string(counts.sdc_single);
    al += ' ';
    al += std::to_string(counts.sdc_multi);
    al += ' ';
    al += std::to_string(counts.due);
    for (std::size_t i = 0; i < counts.due_by_reason.size(); ++i) {
      if (counts.due_by_reason[i] == 0) continue;
      al += ' ';
      al += vocab::due_reason_token(static_cast<vocab::DueReason>(i));
      al += ':';
      al += std::to_string(counts.due_by_reason[i]);
    }
    put_kv(out, "attr", al);
  }

  // The campaign's distilled syndrome-database bytes: the artifact the
  // two-level hand-off consumes, pinned verbatim by the served-equals-offline
  // contract.
  syndrome::Database db;
  if (spec.kind == CampaignKind::Tmxm) {
    const auto site = parse_module(spec.module);
    if (!site) throw std::invalid_argument("bad tmxm site: " + spec.module);
    db.add_tmxm_campaign(*site, 8, 8, r);
  } else {
    const auto module = parse_module(spec.module);
    const auto op = parse_opcode(spec.op);
    const auto range = parse_range(spec.range);
    const auto model = parse_fault_model(spec.fault_model);
    if (!module || !op || !range || !model)
      throw std::invalid_argument("bad rtl spec for serialization");
    db.add_campaign(syndrome::Key{*module, *op, *range, *model}, r);
  }
  db.finalize();
  std::ostringstream dbos;
  db.save(dbos);
  out += "--- syndrome-db ---\n";
  out += dbos.str();
  return out;
}

std::string serialize_sw_result(const swfi::Result& r) {
  std::string out;
  put_kv(out, "kind", "sw");
  put_kv(out, "injections", r.injections);
  put_kv(out, "masked", r.masked);
  put_kv(out, "sdc", r.sdc);
  put_kv(out, "due", r.due);
  put_kv(out, "candidates", r.candidate_instructions);
  return out;
}

std::string serialize_planned_sw_result(const swfi::PlanResult& r) {
  std::string out;
  put_kv(out, "kind", "sw-planned");
  put_kv(out, "injections", r.result.injections);
  put_kv(out, "masked", r.result.masked);
  put_kv(out, "sdc", r.result.sdc);
  put_kv(out, "due", r.result.due);
  put_kv(out, "candidates", r.result.candidate_instructions);
  put_kv(out, "adaptive", std::uint64_t{r.adaptive ? 1u : 0u});
  put_kv(out, "planned_trials", r.planned_trials);
  put_kv(out, "trials_saved", r.trials_saved);
  put_kv(out, "pvf", fmt_double(r.pvf));
  put_kv(out, "pvf_half_width", fmt_double(r.pvf_half_width));
  put_kv(out, "strata", r.strata.size());
  for (const auto& s : r.strata) {
    std::string sl;
    sl += isa::mnemonic(s.op);
    sl += ' ';
    sl += rtlfi::range_name(s.range);
    sl += ' ';
    sl += std::to_string(s.candidates);
    sl += ' ';
    sl += std::to_string(s.budget);
    sl += ' ';
    sl += std::to_string(s.trials);
    sl += ' ';
    sl += std::to_string(s.masked);
    sl += ' ';
    sl += std::to_string(s.sdc);
    sl += ' ';
    sl += std::to_string(s.due);
    sl += ' ';
    sl += swfi::stratum_stop_name(s.stop);
    sl += ' ';
    sl += fmt_double(s.sdc_half_width);
    put_kv(out, "stratum", sl);
  }
  return out;
}

std::string serialize_cnn_result(const nn::CnnCampaignResult& r) {
  std::string out;
  put_kv(out, "kind", "cnn");
  put_kv(out, "injections", r.injections);
  put_kv(out, "masked", r.masked);
  put_kv(out, "sdc", r.sdc);
  put_kv(out, "critical", r.critical);
  put_kv(out, "due", r.due);
  return out;
}

}  // namespace gpufi::serve
