#pragma once

// Bounded priority job queue for gpufi-serve.
//
// Admission control is reject-with-backpressure: push() on a full queue
// returns false immediately (the server answers the client with an Error
// frame instead of buffering unboundedly or blocking the accept loop).
// Workers pop in (priority, arrival) order; close() stops admissions while
// letting workers drain what was already accepted — the graceful-SIGTERM
// path — and drain_pending() empties the queue for a forced shutdown.

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <condition_variable>
#include <utility>
#include <vector>

#include "exec/engine.hpp"
#include "serve/protocol.hpp"

namespace gpufi::serve {

/// One admitted campaign request. The job owns its connection fd (the
/// server closes it exactly once, after the final Result/Error frame).
struct Job {
  std::uint64_t id = 0;
  CampaignSpec spec;
  int fd = -1;
  /// True for ReportRequest jobs: the campaign's attribution tables are
  /// aggregated into a report and answered with a Report frame instead of
  /// the raw Result serialization.
  bool report = false;
  /// Cooperative stop flag shared with the connection watcher: client
  /// disconnect / deadline expiry cancel the trial loop through it.
  std::shared_ptr<exec::CancelToken> cancel;
  /// Admission time — the queue-wait histogram measures from here to the
  /// moment a worker picks the job up.
  std::chrono::steady_clock::time_point enqueued_at{};
};

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity);

  /// Admits a job unless the queue is full or closed. Never blocks.
  bool push(Job job);

  /// Blocks for the next job in (priority, arrival) order; returns nullopt
  /// once the queue is closed AND drained — the worker-exit signal.
  std::optional<Job> pop();

  /// Stops admissions and wakes every blocked pop(); already-queued jobs
  /// are still handed out (drain semantics).
  void close();

  /// Empties the queue (for forced shutdown); the caller owns the returned
  /// jobs' fds and cancel tokens.
  std::vector<Job> drain_pending();

  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }
  /// Jobs bounced by admission control since construction.
  std::size_t rejected() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// Ordered by (priority, arrival seq): lowest priority value first, FIFO
  /// within a priority class.
  std::map<std::pair<int, std::uint64_t>, Job> queue_;
  std::uint64_t next_seq_ = 0;
  std::size_t rejected_ = 0;
  bool closed_ = false;
};

}  // namespace gpufi::serve
