#pragma once

// gpufi-serve wire protocol: length-prefixed frames over a Unix-domain
// stream socket.
//
// Frame layout (little-endian):
//   u32  payload length (bytes, <= kMaxFramePayload)
//   u8   frame type (FrameType)
//   ...  payload
//
// A client sends exactly one Submit (campaign spec) or Status frame per
// connection. The server answers a Submit with zero or more Progress frames
// followed by exactly one Result or Error frame, and a Status with one Stats
// frame; either side closing the connection ends the exchange (a client
// disconnect cancels the in-flight campaign).
//
// Payloads are deterministic "key=value\n" text — the Result payload of a
// served campaign is byte-identical to the offline engine's serialization of
// the same spec and seed (the contract tests/serve_test.cpp pins).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "exec/engine.hpp"
#include "isa/isa.hpp"
#include "nn/gpu_infer.hpp"
#include "rtl/state.hpp"
#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"
#include "swfi/planner.hpp"
#include "swfi/swfi.hpp"
#include "vocab/vocab.hpp"

namespace gpufi::serve {

/// Default Unix-domain socket path of `gpufi serve` (relative to the
/// daemon's working directory; gitignored).
inline constexpr const char* kDefaultSocketPath = "gpufi.sock";

/// Upper bound on a frame payload; longer frames are a protocol violation
/// (the stream cannot be resynchronized afterwards, so the peer closes).
inline constexpr std::size_t kMaxFramePayload = 16u << 20;

/// Bytes of frame header (u32 length + u8 type).
inline constexpr std::size_t kFrameHeaderSize = 5;

enum class FrameType : std::uint8_t {
  Submit = 1,    ///< client -> server: campaign spec
  Status = 2,    ///< client -> server: stats request (empty payload)
  Progress = 3,  ///< server -> client: trial-loop telemetry
  Result = 4,    ///< server -> client: final campaign serialization
  Error = 5,     ///< server -> client: human-readable failure/rejection
  Stats = 6,     ///< server -> client: queue/cache/counter snapshot
  /// client -> server: metrics scrape request (empty payload); answered
  /// with one Metrics frame.
  MetricsRequest = 7,
  /// server -> client: Prometheus text exposition of the daemon's metric
  /// registry (gpufi_* counters/gauges/histograms).
  Metrics = 8,
  /// client -> server: attribution-report request. Payload is a campaign
  /// spec (kind must be rtl); the job runs the campaign and answers with
  /// Progress frames followed by one Report (or Error) frame.
  ReportRequest = 9,
  /// server -> client: the attribution report JSON (attr::render_json),
  /// byte-identical to the offline `gpufi report --json` of the same spec.
  Report = 10,

  // --- gpufi-fabric frames (worker <-> coordinator, same framing; work
  // over the Unix transport and the TCP transport alike) -------------------
  /// worker -> coordinator: registration (version, name, pid). The
  /// coordinator validates fabric::kFabricProtocolVersion and answers with
  /// HelloAck, or an Error frame naming both versions for a mismatch.
  Hello = 11,
  /// coordinator -> worker: registration accepted.
  HelloAck = 12,
  /// coordinator -> worker: run one trial-range shard of a campaign spec.
  ShardRequest = 13,
  /// worker -> coordinator: a shard's (partial or final) result payload.
  ShardResult = 14,
  /// worker -> coordinator: the shard raised an exception (deterministic —
  /// the coordinator fails the job instead of retrying).
  ShardError = 15,
  /// worker -> coordinator: liveness beacon (empty payload). Any inbound
  /// frame refreshes the worker's liveness deadline.
  Heartbeat = 16,
  /// worker -> coordinator: trials completed so far within one shard.
  ShardProgress = 17,
};

/// True for types defined above (wire bytes outside the enum are rejected).
bool frame_type_valid(std::uint8_t t);

struct Frame {
  FrameType type = FrameType::Error;
  std::string payload;
};

// ---------------------------------------------------------------------------
// In-memory framing (unit-testable without sockets).
// ---------------------------------------------------------------------------

/// Serializes header + payload. Throws std::length_error past
/// kMaxFramePayload.
std::string encode_frame(const Frame& f);

enum class DecodeStatus : std::uint8_t {
  Ok,        ///< one frame decoded; `consumed` bytes eaten
  NeedMore,  ///< buffer holds only a truncated frame — read more bytes
  TooLarge,  ///< declared payload exceeds `max_payload`: close the stream
  BadType,   ///< unknown frame type byte: close the stream
};

/// Decodes the first frame of `buf`; on Ok fills `out` and sets `consumed`.
DecodeStatus decode_frame(std::string_view buf, Frame& out,
                          std::size_t& consumed,
                          std::size_t max_payload = kMaxFramePayload);

// ---------------------------------------------------------------------------
// Blocking socket framing.
// ---------------------------------------------------------------------------

/// Writes one frame to `fd` (handles short writes, suppresses SIGPIPE).
/// Returns false on any error — for a server that means "client is gone".
bool write_frame(int fd, const Frame& f);

enum class ReadStatus : std::uint8_t {
  Ok,
  Eof,       ///< clean close before a header byte
  Error,     ///< syscall failure or mid-frame close
  TooLarge,  ///< oversized declared payload (protocol violation)
  BadType,   ///< unknown frame type (protocol violation)
};

/// Reads exactly one frame from `fd`.
ReadStatus read_frame(int fd, Frame& out,
                      std::size_t max_payload = kMaxFramePayload);

// ---------------------------------------------------------------------------
// Campaign spec — the request payload, mirroring the CLI grids.
// ---------------------------------------------------------------------------

enum class CampaignKind : std::uint8_t { Rtl, Tmxm, Sw, Cnn };

std::string_view campaign_kind_name(CampaignKind k);
std::optional<CampaignKind> parse_campaign_kind(std::string_view s);

/// One campaign request. String fields hold the CLI vocabulary ("FFMA",
/// "fp32", "M", ...) and are validated by resolve-time parsers below; the
/// spec round-trips losslessly through encode/decode.
struct CampaignSpec {
  CampaignKind kind = CampaignKind::Rtl;
  std::string op = "FFMA";        ///< rtl: instruction mnemonic
  std::string module = "fp32";    ///< rtl: module / tmxm: injection site
  std::string range = "M";        ///< rtl: input range S|M|L
  std::string tile = "random";    ///< tmxm: max|zero|random
  std::string app = "mxm";        ///< sw: application name
  std::string model = "bitflip";  ///< sw: fault model / cnn: fault model
  std::string net = "lenet";      ///< cnn: lenet|yolo
  /// rtl/tmxm: RTL fault model (transient|stuck0|stuck1|burst); also the
  /// syndrome class the sw `sticky` model replays.
  std::string fault_model = "transient";
  std::uint64_t fault_duration = 0;  ///< rtl: window cycles; 0 = permanent
  std::uint64_t burst_period = 8;    ///< rtl: burst re-flip period
  std::size_t faults = 2000;      ///< rtl/tmxm trial count
  std::size_t injections = 300;   ///< sw/cnn trial count
  std::uint64_t seed = 1;
  /// Trial-loop threads per campaign. Served default is 1: the daemon's
  /// worker pool is the wide axis, one request = one core.
  unsigned jobs = 1;
  /// Fan the campaign out over the serve fabric into trial-range shards
  /// served by up to this many `gpufi worker` processes; 0 runs it inside
  /// the daemon process. The Result payload is byte-identical either way.
  unsigned workers = 0;
  std::string accel = "full";  ///< none|checkpoint|full
  std::string db_path = "gpufi_data/syndromes.db";
  std::string models_dir = "gpufi_data";
  int priority = 0;              ///< lower value = served earlier
  std::uint64_t deadline_ms = 0;  ///< wall-clock budget; 0 = none
  /// Progress frame every this many trials; 0 = automatic throttle.
  std::size_t progress_interval = 0;
  /// sw: adaptive-plan vocabulary "target_err=X[,min_trials=N][,max_trials=N]"
  /// (vocab::parse_plan); empty = fixed-trial campaign. Non-empty is only
  /// valid for kind=sw.
  std::string plan;

  bool operator==(const CampaignSpec&) const = default;
};

/// Deterministic "key=value\n" serialization (every field, fixed order).
std::string encode_spec(const CampaignSpec& spec);

/// Strict parse: unknown keys, malformed numbers, or invalid enum values are
/// errors (mirrors the CLI's hard usage errors). On failure returns nullopt
/// and, when given, fills `error`.
std::optional<CampaignSpec> decode_spec(std::string_view payload,
                                        std::string* error = nullptr);

/// Validates the spec's vocabulary fields against the engine's parsers
/// (opcode, module, range, tile, accel, app, model, net — whichever the
/// kind uses). Returns an error message, or nullopt when the spec is sound.
std::optional<std::string> validate_spec(const CampaignSpec& spec);

// Vocabulary parsers shared by the CLI and the server dispatch — one
// definition in vocab/, aliased here so existing call sites keep reading
// serve::parse_*.
using vocab::is_known_app;
using vocab::parse_acceleration;
using vocab::parse_cnn_model;
using vocab::parse_fault_model;
using vocab::parse_module;
using vocab::parse_opcode;
using vocab::parse_range;
using vocab::parse_sw_model;
using vocab::parse_tile;

// ---------------------------------------------------------------------------
// Progress payload.
// ---------------------------------------------------------------------------

std::string encode_progress(const exec::Progress& p);
std::optional<exec::Progress> decode_progress(std::string_view payload);

// ---------------------------------------------------------------------------
// Result payloads — deterministic serializations the byte-identity contract
// is defined over. Floating-point values print with max_digits10 (lossless).
// ---------------------------------------------------------------------------

/// RTL / t-MxM campaign: every counter, every record (fault site, field,
/// outcome, diffs), and the syndrome-database bytes the campaign distills to
/// (add_campaign for rtl, add_tmxm_campaign for tmxm).
std::string serialize_campaign_result(const CampaignSpec& spec,
                                      const rtlfi::CampaignResult& r);

/// Software campaign counters.
std::string serialize_sw_result(const swfi::Result& r);

/// Planned software campaign: the fixed-campaign counters plus the planner's
/// stratified estimate and one line per stratum (opcode, range, candidates,
/// budget, trials, outcome tallies, stop reason, Wilson half-width).
std::string serialize_planned_sw_result(const swfi::PlanResult& r);

/// CNN campaign counters (criticality split included).
std::string serialize_cnn_result(const nn::CnnCampaignResult& r);

}  // namespace gpufi::serve
