#pragma once

// Process-wide read-only caches for gpufi-serve: parsed syndrome databases
// and golden RTL traces are expensive to (re)build, identical for every
// request with the same key, and immutable once built — so N concurrent
// campaign requests share one copy instead of recomputing N times.

#include <cstddef>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "rtlfi/campaign.hpp"
#include "syndrome/syndrome.hpp"

namespace gpufi::serve {

struct CacheStats {
  std::size_t hits = 0;    ///< lookups served from an existing entry
  std::size_t misses = 0;  ///< lookups that triggered (exactly one) compute
};

/// Single-flight keyed cache: the first requester of a key computes the
/// value while every concurrent requester of the same key blocks on the same
/// future — one compute per key, ever, no matter how many threads race on a
/// cold entry. A failed compute is not poisoned into the cache: the
/// exception propagates to every waiter of that flight and the next
/// requester retries.
template <class Value>
class SharedCache {
 public:
  using Ptr = std::shared_ptr<const Value>;

  /// `cache_label` names this cache in the metrics exposition
  /// (gpufi_serve_cache_{hits,misses}_total{cache="..."}); empty = no
  /// metrics.
  explicit SharedCache(std::string cache_label = {}) {
    if (!cache_label.empty()) {
      hits_metric_ = obs::label("gpufi_serve_cache_hits_total", "cache",
                                cache_label);
      misses_metric_ = obs::label("gpufi_serve_cache_misses_total", "cache",
                                  cache_label);
    }
  }

  Ptr get_or_compute(const std::string& key,
                     const std::function<Value()>& compute) {
    std::shared_future<Ptr> flight;
    std::promise<Ptr> promise;
    bool owner = false;
    bool hit = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++stats_.hits;
        hit = true;
        flight = it->second;
      } else {
        ++stats_.misses;
        flight = promise.get_future().share();
        entries_.emplace(key, flight);
        owner = true;
      }
    }
    if (!hits_metric_.empty()) obs::count(hit ? hits_metric_ : misses_metric_);
    if (owner) {
      try {
        promise.set_value(std::make_shared<const Value>(compute()));
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          entries_.erase(key);
        }
        promise.set_exception(std::current_exception());
      }
    }
    return flight.get();  // rethrows the owner's exception, if any
  }

  CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_future<Ptr>> entries_;
  CacheStats stats_;
  std::string hits_metric_, misses_metric_;
};

/// The two caches a gpufi-serve process shares across requests.
class Caches {
 public:
  Caches() : dbs_("db"), goldens_("golden") {}

  /// Syndrome database by file path: loads (or builds and saves) once via
  /// core::ensure_syndrome_database, then serves the parsed object to every
  /// request. `jobs` parallelizes a cold build only.
  std::shared_ptr<const syndrome::Database> syndrome_db(
      const std::string& path, unsigned jobs);

  /// Golden context (reference run + checkpoint ladder) by workload key —
  /// see rtlfi::prepare_golden for what the key must capture.
  std::shared_ptr<const rtlfi::GoldenContext> golden(
      const std::string& key,
      const std::function<rtlfi::GoldenContext()>& make);

  CacheStats syndrome_db_stats() const { return dbs_.stats(); }
  CacheStats golden_stats() const { return goldens_.stats(); }

 private:
  SharedCache<syndrome::Database> dbs_;
  SharedCache<rtlfi::GoldenContext> goldens_;
};

}  // namespace gpufi::serve
