#include "fabric/worker.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "vocab/vocab.hpp"

namespace gpufi::fabric {

namespace {

void logf(const WorkerConfig& cfg, const char* fmt, ...) {
  if (cfg.quiet) return;
  va_list args;
  va_start(args, fmt);
  std::fprintf(stderr, "gpufi-worker: ");
  std::vfprintf(stderr, fmt, args);
  std::fprintf(stderr, "\n");
  va_end(args);
}

}  // namespace

Worker::Worker(WorkerConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.name.empty())
    cfg_.name = "worker-" + std::to_string(::getpid());
}

Worker::~Worker() { stop(); }

void Worker::start() {
  fd_ = connect_endpoint(cfg_.coordinator);
  if (fd_ < 0)
    throw std::runtime_error("cannot connect to coordinator at " +
                             cfg_.coordinator.describe());
  Hello hello;
  hello.version = cfg_.protocol_version;
  hello.name = cfg_.name;
  hello.pid = static_cast<std::uint64_t>(::getpid());
  if (!serve::write_frame(
          fd_, {serve::FrameType::Hello, encode_hello(hello)})) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("coordinator closed during handshake");
  }
  serve::Frame reply;
  if (serve::read_frame(fd_, reply) != serve::ReadStatus::Ok) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("coordinator closed during handshake");
  }
  if (reply.type == serve::FrameType::Error) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(reply.payload);
  }
  if (reply.type != serve::FrameType::HelloAck) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("unexpected handshake reply from coordinator");
  }
  logf(cfg_, "registered with %s as %s", cfg_.coordinator.describe().c_str(),
       cfg_.name.c_str());
  running_.store(true);
  connected_.store(true);
  loop_ = std::thread([this] { run_loop(); });
  heartbeat_ = std::thread([this] { heartbeat_loop(); });
}

void Worker::join() {
  if (loop_.joinable()) loop_.join();
  running_.store(false);
  if (heartbeat_.joinable()) heartbeat_.join();
}

void Worker::stop() {
  running_.store(false);
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  if (loop_.joinable()) loop_.join();
  if (heartbeat_.joinable()) heartbeat_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  connected_.store(false);
}

bool Worker::send(serve::FrameType type, std::string payload) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  return serve::write_frame(fd_, {type, std::move(payload)});
}

void Worker::heartbeat_loop() {
  // Sliced sleep so stop() never waits a full heartbeat period.
  const auto slice = std::chrono::milliseconds(20);
  auto next = std::chrono::steady_clock::now();
  while (running_.load()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= next) {
      if (!send(serve::FrameType::Heartbeat, {})) return;
      next = now + std::chrono::milliseconds(cfg_.heartbeat_ms);
    }
    std::this_thread::sleep_for(slice);
  }
}

std::string Worker::execute(const ShardRequest& req) {
  const serve::CampaignSpec& spec = req.spec;
  obs::Span span("fabric.shard");
  span.set("job", req.job);
  span.set("shard", static_cast<std::uint64_t>(req.shard_index));
  const exec::ProgressFn progress = [this, &req](const exec::Progress& p) {
    ShardProgressMsg m;
    m.job = req.job;
    m.shard_index = req.shard_index;
    m.done = p.done;
    m.total = p.total;
    send(serve::FrameType::ShardProgress, encode_shard_progress(m));
  };
  // Single-shard jobs return the public Result payload verbatim — the
  // coordinator forwards it byte-for-byte, so these are identical to the
  // in-daemon run by construction.
  if (req.final_payload)
    return serve::run_spec(spec, caches_, progress, nullptr);

  if (const auto err = serve::validate_spec(spec))
    throw std::invalid_argument(*err);
  switch (spec.kind) {
    case serve::CampaignKind::Rtl:
    case serve::CampaignKind::Tmxm: {
      const auto w =
          spec.kind == serve::CampaignKind::Rtl
              ? rtlfi::make_microbenchmark(*serve::parse_opcode(spec.op),
                                           *serve::parse_range(spec.range),
                                           spec.seed)
              : rtlfi::make_tmxm(*serve::parse_tile(spec.tile), spec.seed);
      auto cc = serve::campaign_config_for_spec(
          spec, *serve::parse_module(spec.module), progress, nullptr);
      cc.shard_offset = req.trial_offset;
      cc.shard_count = req.trial_count;
      // Per-worker golden tier: the same key the daemon's cache uses, so a
      // worker prepares one golden context per workload × geometry and
      // every shard (of this and later campaigns) reuses it.
      const auto golden =
          caches_.golden(serve::golden_cache_key(spec, cc, w),
                         [&] { return rtlfi::prepare_golden(w, cc); });
      return encode_rtl_partial(rtlfi::run_campaign(w, cc, *golden));
    }
    case serve::CampaignKind::Sw: {
      const auto app = vocab::make_app(spec.app);
      swfi::Config cfg;
      cfg.model = *serve::parse_sw_model(spec.model);
      cfg.n_injections = spec.injections;
      cfg.seed = spec.seed;
      cfg.jobs = spec.jobs;
      cfg.progress = progress;
      cfg.progress_interval = spec.progress_interval;
      cfg.shard_offset = req.trial_offset;
      cfg.shard_count = req.trial_count;
      std::shared_ptr<const syndrome::Database> db;
      if (cfg.model == swfi::FaultModel::RelativeError ||
          cfg.model == swfi::FaultModel::WarpRelativeError ||
          cfg.model == swfi::FaultModel::StickyRelativeError) {
        db = caches_.syndrome_db(spec.db_path, spec.jobs);
        cfg.db = db.get();
        if (cfg.model == swfi::FaultModel::StickyRelativeError)
          cfg.syndrome_model = rtl::FaultModel::StuckAt1;
      }
      return encode_sw_partial(swfi::run_sw_campaign(app.app, cfg));
    }
    case serve::CampaignKind::Cnn:
      // The coordinator plans cnn campaigns as one final_payload shard.
      throw std::logic_error("cnn campaigns are single-shard");
  }
  throw std::logic_error("unreachable campaign kind");
}

void Worker::run_loop() {
  for (;;) {
    serve::Frame frame;
    const auto status = serve::read_frame(fd_, frame);
    if (status != serve::ReadStatus::Ok) break;
    if (frame.type != serve::FrameType::ShardRequest) continue;
    const auto req = decode_shard_request(frame.payload);
    if (!req) {
      logf(cfg_, "dropping malformed shard request");
      continue;
    }
    if (cfg_.fail_after_shards != 0 &&
        shards_done_.load() >= cfg_.fail_after_shards) {
      // Test hook: die with this shard in flight, the way a crashed
      // process would — no result, no orderly goodbye.
      logf(cfg_, "fail_after_shards hook firing");
      ::shutdown(fd_, SHUT_RDWR);
      break;
    }
    try {
      auto payload = execute(*req);
      ShardResultMsg m;
      m.job = req->job;
      m.shard_index = req->shard_index;
      m.payload = std::move(payload);
      if (!send(serve::FrameType::ShardResult, encode_shard_result(m))) break;
      shards_done_.fetch_add(1);
      obs::count("gpufi_fabric_worker_shards_total");
    } catch (const std::exception& e) {
      ShardErrorMsg m;
      m.job = req->job;
      m.shard_index = req->shard_index;
      m.error = e.what();
      if (!send(serve::FrameType::ShardError, encode_shard_error(m))) break;
    }
  }
  running_.store(false);
  connected_.store(false);
}

}  // namespace gpufi::fabric
