#pragma once

// gpufi-fabric coordinator: accepts worker registrations, splits each
// submitted campaign into chunk-aligned trial-range shards
// (exec::plan_shards), fans them out over the registered fleet, and merges
// the returned partials IN SHARD-INDEX ORDER — the same chunk-order merge
// exec::run_trials performs in-process, so the final Result payload is
// byte-identical to the offline single-process run for ANY worker count,
// retry history, or completion order.
//
// Failure model: a shard is a pure function of (spec, seed, range), so
//  * a DEAD worker (EOF, read error, heartbeat timeout) only costs the
//    re-execution of its in-flight shard — the coordinator requeues it
//    (bounded by max_shard_retries) and the merged bytes cannot change;
//  * a shard that REPORTS an error (ShardError) failed deterministically —
//    a retry would fail identically, so the job fails immediately.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exec/engine.hpp"
#include "fabric/protocol.hpp"
#include "fabric/transport.hpp"
#include "serve/protocol.hpp"

namespace gpufi::fabric {

struct CoordinatorConfig {
  Endpoint listen;
  /// A worker whose connection stays silent this long (no result, no
  /// progress, no heartbeat) is declared dead and its in-flight shard
  /// requeued. Workers beacon every ~500ms, so this is many missed beats.
  std::uint64_t heartbeat_timeout_ms = 5000;
  /// Hard per-shard wall-clock budget; exceeding it kills the worker's
  /// connection (which requeues the shard). 0 = no budget.
  std::uint64_t shard_timeout_ms = 0;
  /// A shard lost this many times fails its job (a fleet that keeps
  /// crashing on one range is a deployment problem, not a retry problem).
  unsigned max_shard_retries = 3;
  /// Fan-out granularity: a job targeting W workers is split into up to
  /// W * this many shards, so a straggler costs 1/(W*k) of the campaign
  /// and retry loses proportionally little.
  unsigned shards_per_worker = 4;
  /// How long run_job waits for the first worker registration before
  /// failing the job.
  std::uint64_t worker_wait_ms = 10000;
  bool quiet = true;
};

struct CoordinatorStats {
  std::size_t workers_registered = 0;  ///< lifetime successful handshakes
  std::size_t workers_alive = 0;
  std::size_t workers_rejected = 0;  ///< version-mismatch handshakes
  std::size_t shards_dispatched = 0;
  std::size_t shards_completed = 0;
  std::size_t shards_retried = 0;    ///< requeued after a worker death
  std::size_t shards_duplicate = 0;  ///< late results dropped (already done)
  std::size_t shards_inflight = 0;
  std::size_t shards_pending = 0;
  std::size_t jobs_completed = 0;
  std::size_t jobs_failed = 0;
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorConfig cfg);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds the listen endpoint and spawns the accept + dispatch threads.
  void start();

  /// Severs every worker connection and joins all threads. Idempotent.
  void stop();

  /// Runs one campaign over the fleet and returns the SAME payload bytes
  /// run_spec_offline(spec) produces. Blocks until done; throws
  /// std::runtime_error on failure, and with message "campaign cancelled"
  /// when `cancel` stops the job. `max_workers` caps the fan-out
  /// (spec.workers; >= 1). Thread-safe — any number of concurrent jobs
  /// share the fleet.
  std::string run_job(const serve::CampaignSpec& spec, unsigned max_workers,
                      const exec::ProgressFn& progress,
                      const exec::CancelToken* cancel);

  /// Blocks until `n` workers are alive (tests); false on timeout.
  bool wait_for_workers(std::size_t n, std::uint64_t timeout_ms);

  CoordinatorStats stats() const;
  /// Port actually bound (TCP listen endpoints with port 0); 0 for unix.
  std::uint16_t port() const;
  const CoordinatorConfig& config() const { return cfg_; }

 private:
  struct Shard {
    std::uint64_t job = 0;
    std::uint32_t index = 0;
    std::uint32_t n_shards = 1;
    exec::TrialRange range;
    bool final_payload = false;
    unsigned attempts = 0;
  };

  struct JobState {
    std::uint64_t id = 0;
    serve::CampaignSpec spec;
    std::size_t n_shards = 0;
    std::size_t completed = 0;
    std::vector<std::optional<std::string>> partials;
    bool failed = false;
    bool cancelled = false;
    std::string error;
    /// Per-shard trials-done high-water marks: progress survives a retry
    /// (the rerun's early frames never regress the job's done count).
    std::vector<std::uint64_t> shard_done;
    std::uint64_t total_trials = 0;
    exec::ProgressFn progress;
    std::chrono::steady_clock::time_point started;
    /// Serializes progress callbacks and enforces job-level monotonicity.
    std::mutex progress_mutex;
    std::size_t last_done_reported = 0;

    bool done() const { return failed || completed == n_shards; }
  };

  struct WorkerConn {
    int fd = -1;
    std::string name;
    std::uint64_t pid = 0;
    bool alive = false;
    std::optional<Shard> inflight;
    std::chrono::steady_clock::time_point dispatched_at;
  };

  void accept_loop();
  void session(int fd);
  void dispatch_loop();
  /// Marks `w` dead and requeues (or fails) its in-flight shard. Called
  /// with `mutex_` held.
  void worker_died(WorkerConn& w);
  /// Reports job progress from the shard high-water marks. Called with
  /// `mutex_` held; performs the callback outside it.
  void report_progress(const std::shared_ptr<JobState>& job,
                       std::unique_lock<std::mutex>& lock);
  void handle_result(ShardResultMsg msg, WorkerConn& w);
  void handle_error(const ShardErrorMsg& msg, WorkerConn& w);
  void handle_progress(const ShardProgressMsg& msg);
  std::string merge_job(JobState& job);
  void logf(const char* fmt, ...);

  CoordinatorConfig cfg_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::vector<std::thread> sessions_;
  std::mutex sessions_mutex_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool running_ = false;
  std::deque<Shard> pending_;
  std::map<std::uint64_t, std::shared_ptr<JobState>> jobs_;
  std::vector<std::unique_ptr<WorkerConn>> workers_;
  std::uint64_t next_job_ = 1;
  CoordinatorStats stats_;
};

}  // namespace gpufi::fabric
