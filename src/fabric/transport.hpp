#pragma once

// gpufi-fabric transport: one address grammar for both transports the
// fabric speaks — Unix-domain stream sockets for same-machine fleets and
// TCP for cross-machine ones. The frame layer (serve/protocol.hpp) is
// byte-stream oriented and never looks at the socket family, so a
// coordinator and its workers interoperate over either transport without
// any protocol difference.
//
// Address grammar (parse_endpoint):
//   "unix:PATH"      Unix-domain socket at PATH
//   "tcp:HOST:PORT"  TCP on HOST:PORT
//   "HOST:PORT"      shorthand for tcp: when the prefix is absent
//   "PATH"           shorthand for unix: when no ':' is present

#include <cstdint>
#include <optional>
#include <string>

namespace gpufi::fabric {

struct Endpoint {
  enum class Kind : std::uint8_t { Unix, Tcp };
  Kind kind = Kind::Unix;
  std::string path;  ///< Unix socket path (Kind::Unix)
  std::string host;  ///< TCP host (Kind::Tcp)
  std::uint16_t port = 0;  ///< TCP port; 0 binds ephemeral (tests)

  /// Canonical "unix:PATH" / "tcp:HOST:PORT" rendering.
  std::string describe() const;
};

/// Parses the address grammar above; nullopt on empty input or an
/// out-of-range/non-numeric port.
std::optional<Endpoint> parse_endpoint(std::string_view s);

/// Binds and listens on `ep`. Unix endpoints unlink a stale socket file
/// first; TCP endpoints set SO_REUSEADDR and bind IPv4. Returns the
/// listening fd; throws std::runtime_error with errno context on failure.
int listen_endpoint(const Endpoint& ep, int backlog = 64);

/// Connects to `ep`; returns the connected fd or -1 (with errno set).
int connect_endpoint(const Endpoint& ep);

/// Port a TCP listening fd actually bound (resolves port 0); 0 for
/// non-TCP sockets.
std::uint16_t local_port(int fd);

}  // namespace gpufi::fabric
