#pragma once

// gpufi-fabric wire messages, layered on the serve frame protocol
// (serve/protocol.hpp): the coordinator and its workers exchange the
// FrameType::Hello..ShardProgress frames defined there, with the payload
// codecs living here.
//
// Two payload families:
//
//  * Control messages (Hello, ShardRequest, ...) — deterministic
//    "key=value\n" text like the rest of the serve protocol.
//
//  * Shard partials — the LOSSLESS serializations of rtlfi::CampaignResult
//    and swfi::Result a worker ships back for a non-final shard. The
//    public Result payload (serve::serialize_campaign_result) is lossy —
//    it drops FaultSpec temporal fields and distills the syndrome DB from
//    the in-memory result — so the coordinator cannot merge from it.
//    These codecs round-trip every field bit for bit (doubles cross the
//    wire as u64 bit patterns), letting the coordinator reassemble the
//    exact in-memory result run_trials would have produced and THEN apply
//    the same public serialization as the offline path. Enums are encoded
//    numerically; the Hello version handshake guarantees both ends agree
//    on the numbering.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "rtlfi/campaign.hpp"
#include "serve/protocol.hpp"
#include "swfi/swfi.hpp"

namespace gpufi::fabric {

/// Fabric protocol revision. Bumped whenever any fabric payload codec,
/// enum numbering, or the shard-planning contract changes; the coordinator
/// rejects a Hello carrying any other value (see Coordinator) so a stale
/// worker binary fails fast with a clear error instead of corrupting a
/// merge.
inline constexpr std::uint32_t kFabricProtocolVersion = 1;

// ---------------------------------------------------------------------------
// Control messages.
// ---------------------------------------------------------------------------

/// Worker registration (FrameType::Hello payload).
struct Hello {
  std::uint32_t version = kFabricProtocolVersion;
  std::string name;  ///< display name for stats/metrics labels
  std::uint64_t pid = 0;
};

std::string encode_hello(const Hello& h);
std::optional<Hello> decode_hello(std::string_view payload);

/// One trial-range shard assignment (FrameType::ShardRequest payload).
struct ShardRequest {
  std::uint64_t job = 0;          ///< coordinator-scoped job id
  std::uint32_t shard_index = 0;  ///< merge position (chunk order)
  std::uint32_t n_shards = 1;
  std::uint64_t trial_offset = 0;
  std::uint64_t trial_count = 0;
  /// True = run the WHOLE spec and return the public Result payload
  /// verbatim (single-shard jobs: cnn campaigns and planned sw campaigns,
  /// whose adaptive loop is inherently sequential). False = run only
  /// [trial_offset, trial_offset+trial_count) and return a partial codec.
  bool final_payload = false;
  serve::CampaignSpec spec;
};

std::string encode_shard_request(const ShardRequest& r);
std::optional<ShardRequest> decode_shard_request(std::string_view payload,
                                                 std::string* error = nullptr);

/// Shard completion (FrameType::ShardResult payload): header + raw result
/// bytes (a partial codec, or the public payload for final_payload shards).
struct ShardResultMsg {
  std::uint64_t job = 0;
  std::uint32_t shard_index = 0;
  std::string payload;
};

std::string encode_shard_result(const ShardResultMsg& m);
std::optional<ShardResultMsg> decode_shard_result(std::string_view payload);

/// Shard failure (FrameType::ShardError payload). Shards are pure
/// functions of (spec, seed, range), so a failure is deterministic and the
/// coordinator fails the job instead of retrying.
struct ShardErrorMsg {
  std::uint64_t job = 0;
  std::uint32_t shard_index = 0;
  std::string error;
};

std::string encode_shard_error(const ShardErrorMsg& m);
std::optional<ShardErrorMsg> decode_shard_error(std::string_view payload);

/// In-shard progress beacon (FrameType::ShardProgress payload).
struct ShardProgressMsg {
  std::uint64_t job = 0;
  std::uint32_t shard_index = 0;
  std::uint64_t done = 0;   ///< trials finished within this shard
  std::uint64_t total = 0;  ///< == trial_count
};

std::string encode_shard_progress(const ShardProgressMsg& m);
std::optional<ShardProgressMsg> decode_shard_progress(std::string_view payload);

// ---------------------------------------------------------------------------
// Lossless shard partials.
// ---------------------------------------------------------------------------

std::string encode_rtl_partial(const rtlfi::CampaignResult& r);
std::optional<rtlfi::CampaignResult> decode_rtl_partial(
    std::string_view payload, std::string* error = nullptr);

std::string encode_sw_partial(const swfi::Result& r);
std::optional<swfi::Result> decode_sw_partial(std::string_view payload,
                                              std::string* error = nullptr);

}  // namespace gpufi::fabric
