#include "fabric/transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace gpufi::fabric {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

std::optional<std::uint16_t> parse_port(std::string_view s) {
  if (s.empty() || s.size() > 5) return std::nullopt;
  unsigned long v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<unsigned long>(c - '0');
  }
  if (v > 65535) return std::nullopt;
  return static_cast<std::uint16_t>(v);
}

int listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(unix)");
  ::unlink(path.c_str());  // a stale file from a dead process would EADDRINUSE
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd, backlog) < 0) {
    const int e = errno;
    ::close(fd);
    ::unlink(path.c_str());
    errno = e;
    throw_errno("listen(" + path + ")");
  }
  return fd;
}

int listen_tcp(const std::string& host, std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(tcp)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0" || host == "*") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 || !res) {
      ::close(fd);
      throw std::runtime_error("cannot resolve host: " + host);
    }
    addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(fd, backlog) < 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("listen(" + host + ":" + std::to_string(port) + ")");
  }
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    errno = ENAMETOOLONG;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    return -1;
  }
  return fd;
}

int connect_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 || !res) {
      errno = EHOSTUNREACH;
      return -1;
    }
    addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  // Shard frames are request/response sized, not a bulk stream: favor
  // latency over coalescing.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    return -1;
  }
  return fd;
}

}  // namespace

std::string Endpoint::describe() const {
  if (kind == Kind::Unix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

std::optional<Endpoint> parse_endpoint(std::string_view s) {
  if (s.empty()) return std::nullopt;
  Endpoint ep;
  if (s.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::Unix;
    ep.path = std::string(s.substr(5));
    if (ep.path.empty()) return std::nullopt;
    return ep;
  }
  std::string_view rest = s;
  if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
  const auto colon = rest.rfind(':');
  if (colon == std::string_view::npos) {
    if (rest.data() != s.data()) return std::nullopt;  // "tcp:" without port
    ep.kind = Endpoint::Kind::Unix;
    ep.path = std::string(rest);
    return ep;
  }
  const auto port = parse_port(rest.substr(colon + 1));
  if (!port || colon == 0) return std::nullopt;
  ep.kind = Endpoint::Kind::Tcp;
  ep.host = std::string(rest.substr(0, colon));
  ep.port = *port;
  return ep;
}

int listen_endpoint(const Endpoint& ep, int backlog) {
  return ep.kind == Endpoint::Kind::Unix ? listen_unix(ep.path, backlog)
                                         : listen_tcp(ep.host, ep.port,
                                                      backlog);
}

int connect_endpoint(const Endpoint& ep) {
  return ep.kind == Endpoint::Kind::Unix ? connect_unix(ep.path)
                                         : connect_tcp(ep.host, ep.port);
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    return 0;
  if (addr.sin_family != AF_INET) return 0;
  return ntohs(addr.sin_port);
}

}  // namespace gpufi::fabric
