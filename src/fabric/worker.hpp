#pragma once

// gpufi-fabric worker: one process (or in-test thread) that connects to a
// coordinator, registers with a version handshake, and executes the
// trial-range shards it is assigned — each shard a pure function of
// (spec, seed, range), so the coordinator may re-run one anywhere after a
// loss. The worker keeps its own serve::Caches: the golden context of a
// workload × acceleration geometry is built once per worker and reused by
// every shard (and every campaign) that shares the key, and syndrome
// databases load once per path — the per-worker tier of the fabric's
// tiered caching.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "fabric/protocol.hpp"
#include "fabric/transport.hpp"
#include "serve/cache.hpp"

namespace gpufi::fabric {

struct WorkerConfig {
  Endpoint coordinator;
  /// Display name in coordinator stats/metrics; empty = "worker-<pid>".
  std::string name;
  /// Liveness beacon period. Must be well under the coordinator's
  /// heartbeat timeout.
  std::uint64_t heartbeat_ms = 500;
  /// Version advertised in the Hello (tests override to provoke the
  /// mismatch rejection).
  std::uint32_t protocol_version = kFabricProtocolVersion;
  bool quiet = true;
  /// Fault-injection hook for the fabric's own tests: after completing
  /// this many shards the worker abruptly severs the connection (as a
  /// crashed process would) instead of sending more results. 0 = never.
  std::size_t fail_after_shards = 0;
};

class Worker {
 public:
  explicit Worker(WorkerConfig cfg);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Connects, performs the Hello handshake, and spawns the shard-executor
  /// and heartbeat threads. Throws std::runtime_error on connect failure
  /// or a coordinator rejection (e.g. protocol version mismatch — the
  /// coordinator's Error text is the exception message).
  void start();

  /// Blocks until the coordinator connection closes (coordinator shutdown
  /// or the fail_after_shards hook firing).
  void join();

  /// Severs the connection and joins the threads. Idempotent.
  void stop();

  bool connected() const { return connected_.load(); }
  std::size_t shards_done() const { return shards_done_.load(); }
  const WorkerConfig& config() const { return cfg_; }

 private:
  void run_loop();
  void heartbeat_loop();
  /// Executes one shard; returns the result payload (partial codec, or the
  /// public Result payload for final_payload shards).
  std::string execute(const ShardRequest& req);
  bool send(serve::FrameType type, std::string payload);

  WorkerConfig cfg_;
  serve::Caches caches_;
  int fd_ = -1;
  std::mutex write_mutex_;  ///< results, progress and heartbeats interleave
  std::thread loop_;
  std::thread heartbeat_;
  std::atomic<bool> running_{false};
  std::atomic<bool> connected_{false};
  std::atomic<std::size_t> shards_done_{0};
};

}  // namespace gpufi::fabric
