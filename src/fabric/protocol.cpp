#include "fabric/protocol.hpp"

#include <bit>
#include <charconv>
#include <cstring>
#include <utility>

namespace gpufi::fabric {

namespace {

// --- writers ---------------------------------------------------------------

void put_kv(std::string& out, std::string_view key, std::string_view value) {
  out += key;
  out += '=';
  out += value;
  out += '\n';
}

void put_kv(std::string& out, std::string_view key, std::uint64_t value) {
  put_kv(out, key, std::to_string(value));
}

/// Doubles cross the wire as IEEE-754 bit patterns: text formatting (even
/// max_digits10) is a round-trip risk the byte-identity contract cannot
/// afford, and both ends are version-checked peers of the same codec.
std::uint64_t double_bits(double v) { return std::bit_cast<std::uint64_t>(v); }
double bits_double(std::uint64_t b) { return std::bit_cast<double>(b); }

// --- readers ---------------------------------------------------------------

/// Line cursor over a payload. Every take_* advances; any malformed input
/// flips `ok` and makes the remaining takes no-ops, so decoders check once
/// at the end (or early where the control flow needs a count).
struct Cursor {
  std::string_view rest;
  bool ok = true;
  std::string error;

  void fail(std::string msg) {
    if (ok) {
      ok = false;
      error = std::move(msg);
    }
  }

  std::string_view take_line() {
    if (!ok) return {};
    const auto nl = rest.find('\n');
    if (nl == std::string_view::npos) {
      fail("truncated payload");
      return {};
    }
    const auto line = rest.substr(0, nl);
    rest.remove_prefix(nl + 1);
    return line;
  }

  /// "key=value" line with an exact key match; returns the value.
  std::string_view take_kv(std::string_view key) {
    const auto line = take_line();
    if (!ok) return {};
    if (line.size() < key.size() + 1 || line.substr(0, key.size()) != key ||
        line[key.size()] != '=') {
      fail("expected key '" + std::string(key) + "'");
      return {};
    }
    return line.substr(key.size() + 1);
  }

  std::uint64_t take_u64(std::string_view key) {
    return parse_u64(take_kv(key));
  }

  std::uint64_t parse_u64(std::string_view s) {
    if (!ok) return 0;
    std::uint64_t v = 0;
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{} || p != s.data() + s.size()) {
      fail("bad number: '" + std::string(s) + "'");
      return 0;
    }
    return v;
  }
};

/// Space-separated field scanner for the packed per-record lines.
struct Fields {
  std::string_view rest;
  Cursor* c;

  std::uint64_t next() {
    if (!c->ok) return 0;
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    const auto sp = rest.find(' ');
    const auto tok = rest.substr(0, sp);
    rest = sp == std::string_view::npos ? std::string_view{}
                                        : rest.substr(sp + 1);
    return c->parse_u64(tok);
  }

  std::int64_t next_i64() {
    if (!c->ok) return 0;
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    const bool neg = !rest.empty() && rest.front() == '-';
    if (neg) rest.remove_prefix(1);
    const auto v = static_cast<std::int64_t>(next());
    return neg ? -v : v;
  }

  void done() {
    if (!c->ok) return;
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    if (!rest.empty()) c->fail("trailing record fields");
  }
};

template <class Enum>
Enum take_enum(Cursor& c, std::uint64_t raw, std::uint64_t n_values,
               const char* what) {
  if (raw >= n_values) c.fail(std::string("bad ") + what);
  return static_cast<Enum>(raw);
}

/// Splits "header\n<marker>\n<raw tail>" and returns the tail; the header
/// lines before the marker stay in `c`.
std::string_view split_tail(std::string_view payload, std::string_view marker,
                            Cursor& c) {
  const std::string needle = "\n" + std::string(marker) + "\n";
  const auto at = payload.find(needle);
  if (at == std::string_view::npos) {
    c.fail("missing " + std::string(marker) + " marker");
    return {};
  }
  c.rest = payload.substr(0, at + 1);  // keep the trailing '\n' for take_line
  return payload.substr(at + needle.size());
}

constexpr std::string_view kSpecMarker = "--- spec ---";
constexpr std::string_view kPayloadMarker = "--- payload ---";
constexpr std::string_view kErrorMarker = "--- error ---";

constexpr std::uint64_t kNumOutcomes = 3;   // rtlfi::Outcome
constexpr std::uint64_t kNumStages = 6;     // rtl::PipeStage
constexpr std::uint64_t kNumRoles = 2;      // rtl::FieldRole
constexpr std::uint64_t kNumOpcodes = isa::kNumOpcodes;

}  // namespace

// ---------------------------------------------------------------------------
// Control messages.
// ---------------------------------------------------------------------------

std::string encode_hello(const Hello& h) {
  std::string out;
  put_kv(out, "version", h.version);
  put_kv(out, "name", h.name);
  put_kv(out, "pid", h.pid);
  return out;
}

std::optional<Hello> decode_hello(std::string_view payload) {
  Cursor c{payload};
  Hello h;
  h.version = static_cast<std::uint32_t>(c.take_u64("version"));
  h.name = std::string(c.take_kv("name"));
  h.pid = c.take_u64("pid");
  if (!c.ok || !c.rest.empty()) return std::nullopt;
  return h;
}

std::string encode_shard_request(const ShardRequest& r) {
  std::string out;
  put_kv(out, "job", r.job);
  put_kv(out, "shard", r.shard_index);
  put_kv(out, "n_shards", r.n_shards);
  put_kv(out, "offset", r.trial_offset);
  put_kv(out, "count", r.trial_count);
  put_kv(out, "final", r.final_payload ? 1 : 0);
  out += kSpecMarker;
  out += '\n';
  out += serve::encode_spec(r.spec);
  return out;
}

std::optional<ShardRequest> decode_shard_request(std::string_view payload,
                                                 std::string* error) {
  Cursor c{};
  const auto spec_bytes = split_tail(payload, kSpecMarker, c);
  ShardRequest r;
  r.job = c.take_u64("job");
  r.shard_index = static_cast<std::uint32_t>(c.take_u64("shard"));
  r.n_shards = static_cast<std::uint32_t>(c.take_u64("n_shards"));
  r.trial_offset = c.take_u64("offset");
  r.trial_count = c.take_u64("count");
  r.final_payload = c.take_u64("final") != 0;
  if (c.ok && !c.rest.empty()) c.fail("unexpected shard-request key");
  if (c.ok) {
    std::string spec_err;
    if (const auto spec = serve::decode_spec(spec_bytes, &spec_err))
      r.spec = *spec;
    else
      c.fail("bad spec: " + spec_err);
  }
  if (!c.ok) {
    if (error) *error = c.error;
    return std::nullopt;
  }
  return r;
}

std::string encode_shard_result(const ShardResultMsg& m) {
  std::string out;
  put_kv(out, "job", m.job);
  put_kv(out, "shard", m.shard_index);
  out += kPayloadMarker;
  out += '\n';
  out += m.payload;
  return out;
}

std::optional<ShardResultMsg> decode_shard_result(std::string_view payload) {
  Cursor c{};
  const auto tail = split_tail(payload, kPayloadMarker, c);
  ShardResultMsg m;
  m.job = c.take_u64("job");
  m.shard_index = static_cast<std::uint32_t>(c.take_u64("shard"));
  if (!c.ok || !c.rest.empty()) return std::nullopt;
  m.payload = std::string(tail);
  return m;
}

std::string encode_shard_error(const ShardErrorMsg& m) {
  std::string out;
  put_kv(out, "job", m.job);
  put_kv(out, "shard", m.shard_index);
  out += kErrorMarker;
  out += '\n';
  out += m.error;
  return out;
}

std::optional<ShardErrorMsg> decode_shard_error(std::string_view payload) {
  Cursor c{};
  const auto tail = split_tail(payload, kErrorMarker, c);
  ShardErrorMsg m;
  m.job = c.take_u64("job");
  m.shard_index = static_cast<std::uint32_t>(c.take_u64("shard"));
  if (!c.ok || !c.rest.empty()) return std::nullopt;
  m.error = std::string(tail);
  return m;
}

std::string encode_shard_progress(const ShardProgressMsg& m) {
  std::string out;
  put_kv(out, "job", m.job);
  put_kv(out, "shard", m.shard_index);
  put_kv(out, "done", m.done);
  put_kv(out, "total", m.total);
  return out;
}

std::optional<ShardProgressMsg> decode_shard_progress(
    std::string_view payload) {
  Cursor c{payload};
  ShardProgressMsg m;
  m.job = c.take_u64("job");
  m.shard_index = static_cast<std::uint32_t>(c.take_u64("shard"));
  m.done = c.take_u64("done");
  m.total = c.take_u64("total");
  if (!c.ok || !c.rest.empty()) return std::nullopt;
  return m;
}

// ---------------------------------------------------------------------------
// RTL partial.
// ---------------------------------------------------------------------------

std::string encode_rtl_partial(const rtlfi::CampaignResult& r) {
  std::string out;
  put_kv(out, "v", 1);
  put_kv(out, "injected", r.injected);
  put_kv(out, "masked", r.masked);
  put_kv(out, "sdc_single", r.sdc_single);
  put_kv(out, "sdc_multi", r.sdc_multi);
  put_kv(out, "due", r.due);
  put_kv(out, "golden_cycles", r.golden_cycles);
  put_kv(out, "converged_early", r.converged_early);
  put_kv(out, "records", r.records.size());
  for (const auto& rec : r.records) {
    out += "r=";
    out += std::to_string(static_cast<unsigned>(rec.fault.module));
    out += ' ';
    out += std::to_string(rec.fault.bit);
    out += ' ';
    out += std::to_string(rec.fault.cycle);
    out += ' ';
    out += std::to_string(static_cast<unsigned>(rec.fault.model));
    out += ' ';
    out += std::to_string(rec.fault.duration);
    out += ' ';
    out += std::to_string(rec.fault.period);
    out += ' ';
    out += std::to_string(static_cast<unsigned>(rec.role));
    out += ' ';
    out += std::to_string(static_cast<unsigned>(rec.outcome));
    out += ' ';
    out += std::to_string(static_cast<unsigned>(rec.due_reason_code));
    out += ' ';
    out += std::to_string(rec.corrupted_elements);
    out += ' ';
    out += std::to_string(rec.corrupted_threads);
    out += ' ';
    out += std::to_string(rec.site.live ? 1 : 0);
    out += ' ';
    out += std::to_string(rec.site.dyn_index);
    out += ' ';
    out += std::to_string(rec.site.pc);
    out += ' ';
    out += std::to_string(rec.site.cta);
    out += ' ';
    out += std::to_string(rec.site.warp);
    out += ' ';
    out += std::to_string(static_cast<unsigned>(rec.site.op));
    out += ' ';
    out += std::to_string(static_cast<unsigned>(rec.site.stage));
    out += ' ';
    out += std::to_string(rec.site.unit_busy ? 1 : 0);
    out += ' ';
    out += std::to_string(rec.diffs.size());
    out += '\n';
    put_kv(out, "f", rec.field);
    put_kv(out, "w", rec.due_reason);
    for (const auto& d : rec.diffs) {
      out += "d=";
      out += std::to_string(d.index);
      out += ' ';
      out += std::to_string(d.golden);
      out += ' ';
      out += std::to_string(d.faulty);
      out += ' ';
      out += std::to_string(double_bits(d.rel_error));
      out += ' ';
      out += std::to_string(d.bits_flipped);
      out += '\n';
    }
  }
  put_kv(out, "attrs", r.attribution.size());
  for (const auto& [key, counts] : r.attribution) {
    out += "a=";
    out += std::to_string(key.live ? 1 : 0);
    out += ' ';
    out += std::to_string(key.pc);
    out += ' ';
    out += std::to_string(static_cast<unsigned>(key.op));
    out += ' ';
    out += std::to_string(counts.hits);
    out += ' ';
    out += std::to_string(counts.masked);
    out += ' ';
    out += std::to_string(counts.sdc_single);
    out += ' ';
    out += std::to_string(counts.sdc_multi);
    out += ' ';
    out += std::to_string(counts.due);
    for (const auto n : counts.due_by_reason) {
      out += ' ';
      out += std::to_string(n);
    }
    out += '\n';
  }
  return out;
}

std::optional<rtlfi::CampaignResult> decode_rtl_partial(
    std::string_view payload, std::string* error) {
  Cursor c{payload};
  rtlfi::CampaignResult r;
  if (c.take_u64("v") != 1) c.fail("unknown rtl partial version");
  r.injected = c.take_u64("injected");
  r.masked = c.take_u64("masked");
  r.sdc_single = c.take_u64("sdc_single");
  r.sdc_multi = c.take_u64("sdc_multi");
  r.due = c.take_u64("due");
  r.golden_cycles = c.take_u64("golden_cycles");
  r.converged_early = c.take_u64("converged_early");
  const auto n_records = c.take_u64("records");
  for (std::uint64_t i = 0; c.ok && i < n_records; ++i) {
    rtlfi::InjectionRecord rec;
    Fields f{c.take_kv("r"), &c};
    rec.fault.module = take_enum<rtl::Module>(c, f.next(), rtl::kNumModules,
                                              "module");
    rec.fault.bit = static_cast<std::uint32_t>(f.next());
    rec.fault.cycle = f.next();
    rec.fault.model = take_enum<rtl::FaultModel>(c, f.next(),
                                                 rtl::kNumFaultModels,
                                                 "fault model");
    rec.fault.duration = f.next();
    rec.fault.period = f.next();
    rec.role = take_enum<rtl::FieldRole>(c, f.next(), kNumRoles, "role");
    rec.outcome = take_enum<rtlfi::Outcome>(c, f.next(), kNumOutcomes,
                                            "outcome");
    rec.due_reason_code = take_enum<vocab::DueReason>(
        c, f.next(), vocab::kNumDueReasons, "due reason");
    rec.corrupted_elements = static_cast<unsigned>(f.next());
    rec.corrupted_threads = static_cast<unsigned>(f.next());
    rec.site.live = f.next() != 0;
    rec.site.dyn_index = f.next();
    rec.site.pc = f.next();
    rec.site.cta = static_cast<std::uint32_t>(f.next());
    rec.site.warp = static_cast<std::uint32_t>(f.next());
    rec.site.op = take_enum<isa::Opcode>(c, f.next(), kNumOpcodes, "opcode");
    rec.site.stage = take_enum<rtl::PipeStage>(c, f.next(), kNumStages,
                                               "stage");
    rec.site.unit_busy = f.next() != 0;
    const auto n_diffs = f.next();
    f.done();
    rec.field = std::string(c.take_kv("f"));
    rec.due_reason = std::string(c.take_kv("w"));
    for (std::uint64_t j = 0; c.ok && j < n_diffs; ++j) {
      rtlfi::ElementDiff d;
      Fields df{c.take_kv("d"), &c};
      d.index = static_cast<std::uint32_t>(df.next());
      d.golden = static_cast<std::uint32_t>(df.next());
      d.faulty = static_cast<std::uint32_t>(df.next());
      d.rel_error = bits_double(df.next());
      d.bits_flipped = static_cast<unsigned>(df.next());
      df.done();
      rec.diffs.push_back(d);
    }
    r.records.push_back(std::move(rec));
  }
  const auto n_attrs = c.take_u64("attrs");
  for (std::uint64_t i = 0; c.ok && i < n_attrs; ++i) {
    Fields f{c.take_kv("a"), &c};
    attr::SiteKey key;
    key.live = f.next() != 0;
    key.pc = f.next();
    key.op = take_enum<isa::Opcode>(c, f.next(), kNumOpcodes, "opcode");
    attr::SiteCounts counts;
    counts.hits = f.next();
    counts.masked = f.next();
    counts.sdc_single = f.next();
    counts.sdc_multi = f.next();
    counts.due = f.next();
    for (auto& n : counts.due_by_reason) n = f.next();
    f.done();
    if (c.ok && !r.attribution.emplace(key, counts).second)
      c.fail("duplicate attribution site");
  }
  if (c.ok && !c.rest.empty()) c.fail("trailing rtl partial bytes");
  if (!c.ok) {
    if (error) *error = c.error;
    return std::nullopt;
  }
  return r;
}

// ---------------------------------------------------------------------------
// SW partial.
// ---------------------------------------------------------------------------

std::string encode_sw_partial(const swfi::Result& r) {
  std::string out;
  put_kv(out, "v", 1);
  put_kv(out, "injections", r.injections);
  put_kv(out, "masked", r.masked);
  put_kv(out, "sdc", r.sdc);
  put_kv(out, "due", r.due);
  put_kv(out, "candidates", r.candidate_instructions);
  out += "pc_counts=";
  out += std::to_string(r.pc_exec_counts.size());
  for (const auto n : r.pc_exec_counts) {
    out += ' ';
    out += std::to_string(n);
  }
  out += '\n';
  put_kv(out, "sites", r.sites.size());
  for (const auto& [key, counts] : r.sites) {
    out += "s=";
    out += std::to_string(key.first);
    out += ' ';
    out += std::to_string(static_cast<unsigned>(key.second));
    out += ' ';
    out += std::to_string(counts.hits);
    out += ' ';
    out += std::to_string(counts.masked);
    out += ' ';
    out += std::to_string(counts.sdc);
    out += ' ';
    out += std::to_string(counts.due);
    out += '\n';
  }
  return out;
}

std::optional<swfi::Result> decode_sw_partial(std::string_view payload,
                                              std::string* error) {
  Cursor c{payload};
  swfi::Result r;
  if (c.take_u64("v") != 1) c.fail("unknown sw partial version");
  r.injections = c.take_u64("injections");
  r.masked = c.take_u64("masked");
  r.sdc = c.take_u64("sdc");
  r.due = c.take_u64("due");
  r.candidate_instructions = c.take_u64("candidates");
  {
    Fields f{c.take_kv("pc_counts"), &c};
    const auto n = f.next();
    r.pc_exec_counts.reserve(n);
    for (std::uint64_t i = 0; c.ok && i < n; ++i)
      r.pc_exec_counts.push_back(f.next());
    f.done();
  }
  const auto n_sites = c.take_u64("sites");
  for (std::uint64_t i = 0; c.ok && i < n_sites; ++i) {
    Fields f{c.take_kv("s"), &c};
    const auto pc = static_cast<std::int32_t>(f.next_i64());
    const auto op = take_enum<isa::Opcode>(c, f.next(), kNumOpcodes, "opcode");
    swfi::SwSiteCounts counts;
    counts.hits = f.next();
    counts.masked = f.next();
    counts.sdc = f.next();
    counts.due = f.next();
    f.done();
    if (c.ok && !r.sites.emplace(std::make_pair(pc, op), counts).second)
      c.fail("duplicate sw site");
  }
  if (c.ok && !c.rest.empty()) c.fail("trailing sw partial bytes");
  if (!c.ok) {
    if (error) *error = c.error;
    return std::nullopt;
  }
  return r;
}

}  // namespace gpufi::fabric
