#include "fabric/coordinator.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gpufi::fabric {

namespace {

void set_recv_timeout(int fd, std::uint64_t ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

Coordinator::Coordinator(CoordinatorConfig cfg) : cfg_(std::move(cfg)) {}

Coordinator::~Coordinator() { stop(); }

void Coordinator::logf(const char* fmt, ...) {
  if (cfg_.quiet) return;
  va_list args;
  va_start(args, fmt);
  std::fprintf(stderr, "gpufi-fabric: ");
  std::vfprintf(stderr, fmt, args);
  std::fprintf(stderr, "\n");
  va_end(args);
}

void Coordinator::start() {
  listen_fd_ = listen_endpoint(cfg_.listen);
  port_ = local_port(listen_fd_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = true;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
  logf("listening on %s", cfg_.listen.describe().c_str());
}

void Coordinator::stop() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!running_ && listen_fd_ < 0) return;
    running_ = false;
    for (auto& w : workers_)
      if (w->alive) ::shutdown(w->fd, SHUT_RDWR);
    // Unblock every waiting run_job with a terminal error.
    for (auto& [id, job] : jobs_) {
      if (!job->done()) {
        job->failed = true;
        job->error = "coordinator stopped";
      }
    }
    cv_.notify_all();
  }
  if (listen_fd_ >= 0) {
    // Wake the accept loop; the fd value itself is still read by that
    // thread, so it is only reset after the join below.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (cfg_.listen.kind == Endpoint::Kind::Unix)
      ::unlink(cfg_.listen.path.c_str());
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  listen_fd_ = -1;
  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions.swap(sessions_);
  }
  for (auto& t : sessions)
    if (t.joinable()) t.join();
}

std::uint16_t Coordinator::port() const { return port_; }

CoordinatorStats Coordinator::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CoordinatorStats s = stats_;
  s.shards_pending = pending_.size();
  s.shards_inflight = 0;
  s.workers_alive = 0;
  for (const auto& w : workers_) {
    if (w->alive) ++s.workers_alive;
    if (w->inflight) ++s.shards_inflight;
  }
  return s;
}

bool Coordinator::wait_for_workers(std::size_t n, std::uint64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    std::size_t alive = 0;
    for (const auto& w : workers_)
      if (w->alive) ++alive;
    return alive >= n || !running_;
  });
}

// ---------------------------------------------------------------------------
// Accept / session threads.
// ---------------------------------------------------------------------------

void Coordinator::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!running_) return;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!running_) {
        ::close(fd);
        return;
      }
    }
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_.emplace_back([this, fd] { session(fd); });
  }
}

void Coordinator::session(int fd) {
  // The read timeout doubles as the liveness check: a worker that sends
  // nothing — not even a heartbeat — for the whole window is dead.
  set_recv_timeout(fd, cfg_.heartbeat_timeout_ms);

  serve::Frame frame;
  if (serve::read_frame(fd, frame) != serve::ReadStatus::Ok ||
      frame.type != serve::FrameType::Hello) {
    ::close(fd);
    return;
  }
  const auto hello = decode_hello(frame.payload);
  if (!hello) {
    ::close(fd);
    return;
  }
  if (hello->version != kFabricProtocolVersion) {
    // Satellite hardening: a mismatched worker binary gets a clear,
    // actionable rejection instead of a framing failure mid-campaign.
    std::string msg = "fabric protocol version mismatch: coordinator speaks v" +
                      std::to_string(kFabricProtocolVersion) + ", worker '" +
                      hello->name + "' speaks v" +
                      std::to_string(hello->version) +
                      " — rebuild or redeploy the worker binary";
    logf("rejecting %s: %s", hello->name.c_str(), msg.c_str());
    // Count BEFORE the reply: the rejected worker observes the error the
    // moment the frame lands, and by then the stat must already be there.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.workers_rejected;
    }
    obs::count("gpufi_fabric_workers_rejected_total");
    serve::write_frame(fd, {serve::FrameType::Error, std::move(msg)});
    ::close(fd);
    return;
  }
  if (!serve::write_frame(fd, {serve::FrameType::HelloAck, {}})) {
    ::close(fd);
    return;
  }

  WorkerConn* w = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto conn = std::make_unique<WorkerConn>();
    conn->fd = fd;
    conn->name = hello->name;
    conn->pid = hello->pid;
    conn->alive = true;
    w = conn.get();
    workers_.push_back(std::move(conn));
    ++stats_.workers_registered;
    cv_.notify_all();
  }
  obs::count("gpufi_fabric_workers_registered_total");
  logf("worker %s (pid %llu) registered", w->name.c_str(),
       static_cast<unsigned long long>(w->pid));

  for (;;) {
    if (serve::read_frame(fd, frame) != serve::ReadStatus::Ok) break;
    switch (frame.type) {
      case serve::FrameType::Heartbeat:
        break;  // any frame refreshes liveness via the read timeout
      case serve::FrameType::ShardResult:
        if (auto msg = decode_shard_result(frame.payload))
          handle_result(std::move(*msg), *w);
        break;
      case serve::FrameType::ShardError:
        if (const auto msg = decode_shard_error(frame.payload))
          handle_error(*msg, *w);
        break;
      case serve::FrameType::ShardProgress:
        if (const auto msg = decode_shard_progress(frame.payload))
          handle_progress(*msg);
        break;
      default:
        break;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    worker_died(*w);
  }
  ::close(fd);
}

void Coordinator::worker_died(WorkerConn& w) {
  if (!w.alive) return;
  w.alive = false;
  logf("worker %s died", w.name.c_str());
  if (w.inflight) {
    Shard shard = *w.inflight;
    w.inflight.reset();
    const auto it = jobs_.find(shard.job);
    if (it != jobs_.end() && !it->second->done()) {
      ++shard.attempts;
      if (shard.attempts > cfg_.max_shard_retries) {
        it->second->failed = true;
        it->second->error =
            "shard " + std::to_string(shard.index) + " lost " +
            std::to_string(shard.attempts) +
            " times to worker failures; giving up";
      } else {
        // Shards are pure functions of (spec, seed, range): rerunning one
        // anywhere yields the same bytes, so retry is always merge-safe.
        ++stats_.shards_retried;
        obs::count("gpufi_fabric_shards_retried_total");
        pending_.push_front(shard);
      }
    }
  }
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

void Coordinator::dispatch_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (running_) {
    // Assign pending shards to idle alive workers, FIFO.
    bool assigned = true;
    while (assigned && !pending_.empty()) {
      assigned = false;
      for (auto& wp : workers_) {
        WorkerConn& w = *wp;
        if (!w.alive || w.inflight || pending_.empty()) continue;
        Shard shard = pending_.front();
        pending_.pop_front();
        const auto it = jobs_.find(shard.job);
        if (it == jobs_.end()) continue;  // job cancelled after queueing
        ShardRequest req;
        req.job = shard.job;
        req.shard_index = shard.index;
        req.n_shards = shard.n_shards;
        req.trial_offset = shard.range.offset;
        req.trial_count = shard.range.count;
        req.final_payload = shard.final_payload;
        req.spec = it->second->spec;
        w.inflight = shard;
        w.dispatched_at = std::chrono::steady_clock::now();
        ++stats_.shards_dispatched;
        obs::count("gpufi_fabric_shards_dispatched_total");
        if (!serve::write_frame(
                w.fd, {serve::FrameType::ShardRequest,
                       encode_shard_request(req)})) {
          // The connection is gone; the session thread will also notice,
          // but requeue NOW so the shard never sits on a dead worker.
          ::shutdown(w.fd, SHUT_RDWR);
          worker_died(w);
          continue;
        }
        assigned = true;
      }
      if (!assigned) break;
    }
    // Shard wall-clock budget: a worker that blew it is severed, which
    // funnels into the ordinary death-and-requeue path in its session.
    if (cfg_.shard_timeout_ms != 0) {
      const auto now = std::chrono::steady_clock::now();
      for (auto& wp : workers_) {
        WorkerConn& w = *wp;
        if (!w.alive || !w.inflight) continue;
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - w.dispatched_at)
                .count();
        if (elapsed >= 0 &&
            static_cast<std::uint64_t>(elapsed) > cfg_.shard_timeout_ms) {
          logf("worker %s blew the shard budget; severing", w.name.c_str());
          ::shutdown(w.fd, SHUT_RDWR);
        }
      }
    }
    cv_.wait_for(lock, std::chrono::milliseconds(200));
  }
}

// ---------------------------------------------------------------------------
// Worker frame handlers (called from session threads).
// ---------------------------------------------------------------------------

void Coordinator::handle_result(ShardResultMsg msg, WorkerConn& w) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!w.inflight || w.inflight->job != msg.job ||
      w.inflight->index != msg.shard_index) {
    ++stats_.shards_duplicate;
    obs::count("gpufi_fabric_shards_duplicate_total");
    return;
  }
  const Shard shard = *w.inflight;
  w.inflight.reset();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    w.dispatched_at)
          .count();
  const auto it = jobs_.find(msg.job);
  if (it == jobs_.end() || it->second->partials[shard.index].has_value()) {
    ++stats_.shards_duplicate;
    obs::count("gpufi_fabric_shards_duplicate_total");
    cv_.notify_all();
    return;
  }
  auto job = it->second;
  job->partials[shard.index] = std::move(msg.payload);
  ++job->completed;
  job->shard_done[shard.index] =
      std::max(job->shard_done[shard.index], shard.range.count);
  ++stats_.shards_completed;
  obs::count("gpufi_fabric_shards_completed_total");
  obs::count(obs::label("gpufi_fabric_worker_shards_completed_total", "worker",
                        w.name));
  obs::observe("gpufi_fabric_shard_seconds", seconds);
  cv_.notify_all();
  if (!job->done()) report_progress(job, lock);
}

void Coordinator::handle_error(const ShardErrorMsg& msg, WorkerConn& w) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (w.inflight && w.inflight->job == msg.job &&
      w.inflight->index == msg.shard_index)
    w.inflight.reset();
  const auto it = jobs_.find(msg.job);
  if (it == jobs_.end() || it->second->done()) return;
  // Deterministic failure: the same shard would fail the same way on any
  // worker, so retrying would only burn the fleet.
  it->second->failed = true;
  it->second->error = msg.error;
  cv_.notify_all();
}

void Coordinator::handle_progress(const ShardProgressMsg& msg) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(msg.job);
  if (it == jobs_.end() || msg.shard_index >= it->second->n_shards) return;
  auto job = it->second;
  // High-water mark: a retried shard's rerun restarts at 0, but the job's
  // done count must never regress.
  job->shard_done[msg.shard_index] =
      std::max(job->shard_done[msg.shard_index], msg.done);
  if (job->n_shards == 1) job->total_trials = std::max(job->total_trials,
                                                       msg.total);
  report_progress(job, lock);
}

void Coordinator::report_progress(const std::shared_ptr<JobState>& job,
                                  std::unique_lock<std::mutex>& lock) {
  if (!job->progress) return;
  std::uint64_t done = 0;
  for (const auto d : job->shard_done) done += d;
  const std::uint64_t total = job->total_trials;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    job->started)
          .count();
  // The callback may write to a (possibly slow) client socket: never hold
  // the coordinator lock across it. The per-job progress mutex both
  // serializes concurrent reporters and enforces monotonicity.
  lock.unlock();
  {
    std::lock_guard<std::mutex> plock(job->progress_mutex);
    if (done >= job->last_done_reported) {
      job->last_done_reported = done;
      exec::Progress p;
      p.done = done;
      p.total = total;
      p.per_second = elapsed > 0 ? static_cast<double>(done) / elapsed : 0.0;
      p.eta_seconds = p.per_second > 0 && total > done
                          ? static_cast<double>(total - done) / p.per_second
                          : 0.0;
      job->progress(p);
    }
  }
  lock.lock();
}

// ---------------------------------------------------------------------------
// Job submission.
// ---------------------------------------------------------------------------

std::string Coordinator::run_job(const serve::CampaignSpec& spec,
                                 unsigned max_workers,
                                 const exec::ProgressFn& progress,
                                 const exec::CancelToken* cancel) {
  obs::Span span("fabric.run_job");
  span.set("kind", serve::campaign_kind_name(spec.kind));

  // Shard plan. Adaptive sw campaigns (spec.plan) are inherently
  // sequential — the Wilson planner sizes each round from the last — and
  // cnn campaigns use their own internal loop; both run as ONE shard whose
  // payload is the public serialization, forwarded verbatim.
  const bool planned_sw =
      spec.kind == serve::CampaignKind::Sw && !spec.plan.empty();
  const bool rtl_like = spec.kind == serve::CampaignKind::Rtl ||
                        spec.kind == serve::CampaignKind::Tmxm;
  const std::size_t n_trials = rtl_like ? spec.faults : spec.injections;
  const bool single =
      spec.kind == serve::CampaignKind::Cnn || planned_sw || n_trials == 0;
  std::vector<exec::TrialRange> ranges;
  if (single) {
    ranges.push_back({0, n_trials});
  } else {
    const std::size_t max_shards =
        static_cast<std::size_t>(std::max(1u, max_workers)) *
        std::max(1u, cfg_.shards_per_worker);
    ranges = exec::plan_shards(n_trials, max_shards);
  }

  std::shared_ptr<JobState> job;
  std::uint64_t id = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!running_) throw std::runtime_error("fabric coordinator not running");
    // A fleet of zero can never finish a shard; give registration a beat.
    const bool have_worker = cv_.wait_for(
        lock, std::chrono::milliseconds(cfg_.worker_wait_ms), [&] {
          if (!running_) return true;
          return std::any_of(workers_.begin(), workers_.end(),
                             [](const auto& w) { return w->alive; });
        });
    if (!running_) throw std::runtime_error("fabric coordinator not running");
    if (!have_worker)
      throw std::runtime_error(
          "no fabric workers registered — start `gpufi worker` processes "
          "pointing at " +
          cfg_.listen.describe());

    id = next_job_++;
    job = std::make_shared<JobState>();
    job->id = id;
    job->spec = spec;
    job->n_shards = ranges.size();
    job->partials.resize(ranges.size());
    job->shard_done.assign(ranges.size(), 0);
    job->total_trials = single ? 0 : n_trials;
    job->progress = progress;
    job->started = std::chrono::steady_clock::now();
    jobs_.emplace(id, job);
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      Shard shard;
      shard.job = id;
      shard.index = static_cast<std::uint32_t>(i);
      shard.n_shards = static_cast<std::uint32_t>(ranges.size());
      shard.range = ranges[i];
      shard.final_payload = single;
      pending_.push_back(shard);
    }
    cv_.notify_all();

    while (!job->done()) {
      cv_.wait_for(lock, std::chrono::milliseconds(100));
      if (cancel && cancel->stopped() && !job->done()) {
        job->cancelled = true;
        std::erase_if(pending_,
                      [&](const Shard& s) { return s.job == id; });
        jobs_.erase(id);
        throw std::runtime_error("campaign cancelled");
      }
    }
    jobs_.erase(id);
    if (job->failed) {
      ++stats_.jobs_failed;
      obs::count("gpufi_fabric_jobs_failed_total");
      throw std::runtime_error(job->error);
    }
  }
  // Merge outside the lock: decoding partials is CPU work no other
  // session/dispatch step should wait on.
  std::string payload = merge_job(*job);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.jobs_completed;
  }
  obs::count("gpufi_fabric_jobs_completed_total");
  return payload;
}

std::string Coordinator::merge_job(JobState& job) {
  const bool planned_sw =
      job.spec.kind == serve::CampaignKind::Sw && !job.spec.plan.empty();
  const bool rtl_like = job.spec.kind == serve::CampaignKind::Rtl ||
                        job.spec.kind == serve::CampaignKind::Tmxm;
  // Single-shard jobs (cnn, planned sw, empty campaigns) already carry the
  // public payload; forward it verbatim.
  if (job.spec.kind == serve::CampaignKind::Cnn || planned_sw ||
      (rtl_like ? job.spec.faults : job.spec.injections) == 0)
    return *job.partials[0];

  // The distributed image of run_trials' epilogue: decode every shard's
  // lossless partial and merge IN SHARD-INDEX (== chunk-index) ORDER, then
  // apply the same public serialization the offline path applies.
  if (rtl_like) {
    rtlfi::CampaignResult merged;
    for (std::size_t i = 0; i < job.n_shards; ++i) {
      std::string err;
      const auto part = decode_rtl_partial(*job.partials[i], &err);
      if (!part)
        throw std::runtime_error("corrupt shard " + std::to_string(i) +
                                 " partial: " + err);
      merged.merge(*part);
    }
    return serve::serialize_campaign_result(job.spec, merged);
  }
  swfi::Result merged;
  for (std::size_t i = 0; i < job.n_shards; ++i) {
    std::string err;
    const auto part = decode_sw_partial(*job.partials[i], &err);
    if (!part)
      throw std::runtime_error("corrupt shard " + std::to_string(i) +
                               " partial: " + err);
    merged.merge(*part);
  }
  return serve::serialize_sw_result(merged);
}

}  // namespace gpufi::fabric
