#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attr/attr.hpp"
#include "common/rng.hpp"
#include "exec/engine.hpp"
#include "isa/isa.hpp"
#include "rtl/liveness.hpp"
#include "rtl/sm.hpp"
#include "vocab/outcomes.hpp"

namespace gpufi::rtlfi {

/// Fault-effect classification (Avizienis taxonomy as used by the paper).
enum class Outcome : std::uint8_t {
  Masked,  ///< no effect on the observable output
  Sdc,     ///< silent data corruption: output mismatch, clean termination
  Due,     ///< detected unrecoverable error: trap or hang
};

/// Human-readable outcome name.
std::string_view outcome_name(Outcome o);

/// One corrupted output element of an SDC (part of the detailed report).
struct ElementDiff {
  std::uint32_t index = 0;      ///< word index within the output region
  std::uint32_t golden = 0;     ///< expected bits
  std::uint32_t faulty = 0;     ///< observed bits
  double rel_error = 0.0;       ///< |faulty-golden| / |golden| (value domain)
  unsigned bits_flipped = 0;    ///< popcount(golden ^ faulty)
};

/// Detailed report entry: everything the paper records per observed SDC
/// (fault location, golden/faulty values, #bits, #threads, spatial info).
struct InjectionRecord {
  rtl::FaultSpec fault;
  std::string field;            ///< name of the flip-flop field hit
  rtl::FieldRole role = rtl::FieldRole::Data;
  Outcome outcome = Outcome::Masked;
  std::string due_reason;       ///< trap reason / "watchdog expired"
  /// DUE cause as an enum (classified from due_reason at record time) so
  /// reports group by cause without string matching.
  vocab::DueReason due_reason_code = vocab::DueReason::None;
  /// The instruction live at fault.cycle, joined deterministically from the
  /// golden liveness timeline (identical across accel levels / job counts).
  rtl::FaultSiteContext site;
  unsigned corrupted_elements = 0;
  unsigned corrupted_threads = 0;  ///< distinct threads with a wrong output
  std::vector<ElementDiff> diffs;  ///< capped at kMaxDiffsKept entries
};

/// Limit on per-record element diffs (multi-element SDCs can corrupt the
/// whole output; the spatial classifier only needs the indices kept here).
constexpr std::size_t kMaxDiffsKept = 256;

/// A workload to characterize under fault injection.
struct Workload {
  isa::Program program;
  rtl::GridDims dims;
  /// Writes the inputs into device memory before every run.
  std::function<void(rtl::Sm&)> setup;
  /// Output region used for SDC classification.
  std::uint32_t out_base = 0;
  std::uint32_t out_words = 0;
  bool out_is_float = true;
  /// Spatial geometry of the output (t-MxM pattern analysis); 0 = linear.
  unsigned out_rows = 0, out_cols = 0;
  /// Output element index -> owning thread is (index % thread_modulo);
  /// 0 treats every element as a distinct thread.
  unsigned thread_modulo = 0;
  std::string name = "workload";
};

/// RTL hot-path acceleration level. All levels produce byte-identical
/// campaign results (counters, records, syndrome DB); `None` exists for A/B
/// verification and as the reference for the equivalence tests.
enum class Acceleration : std::uint8_t {
  None,        ///< every trial replays the workload from reset
  Checkpoint,  ///< trials fast-forward from the golden checkpoint ladder
  /// Checkpoint fast-forward plus golden-state-convergence early exit: a
  /// trial whose full machine state re-coincides with the golden run's is
  /// terminated immediately as Masked.
  CheckpointEarlyExit,
};

/// Human-readable acceleration-mode name ("none", "checkpoint", ...).
std::string_view acceleration_name(Acceleration a);

/// Campaign parameters: which module to bombard and with how many faults.
struct CampaignConfig {
  rtl::Module module = rtl::Module::Fp32Fu;
  std::size_t n_faults = 2000;
  std::uint64_t seed = 1;
  /// Fault model every trial injects (the fault-model axis). The (bit,
  /// cycle) location draws are identical across models, so campaigns that
  /// differ only here bombard exactly the same fault sites.
  rtl::FaultModel fault_model = rtl::FaultModel::Transient;
  /// Fault-window length for the non-transient models; 0 = permanent (the
  /// window never closes, so accelerated trials never early-exit).
  std::uint64_t fault_duration = 0;
  /// IntermittentBurst re-flip period in cycles.
  std::uint64_t burst_period = 8;
  /// Watchdog = golden_cycles * factor + slack (hang detection).
  std::uint64_t watchdog_factor = 4;
  std::uint64_t watchdog_slack = 4096;
  /// Keep detailed records for DUEs and multi-thread SDCs too.
  bool keep_all_records = false;
  /// Trial-loop parallelism: 0 resolves to ThreadPool::default_jobs()
  /// (GPUFI_JOBS or the hardware concurrency), 1 runs serial. The result is
  /// byte-identical for every value — trial i draws from
  /// Rng(rng_derive(seed, i)) and records are merged in trial order.
  unsigned jobs = 0;
  /// RTL fast-path level (results are identical across levels).
  Acceleration acceleration = Acceleration::CheckpointEarlyExit;
  /// Cycles between golden checkpoint-ladder rungs; 0 auto-sizes to
  /// max(1, golden_cycles / 24) — ~24 rungs bound the average fast-forward
  /// replay to ~2% of a full run while keeping capture cost negligible.
  std::uint64_t checkpoint_interval = 0;
  /// Cycles between faulty-vs-golden digest comparisons; 0 picks 16.
  std::uint64_t convergence_check_interval = 0;
  /// Optional telemetry callback (injections done, injections/sec, ETA).
  exec::ProgressFn progress;
  /// Fire `progress` every this many injections; 0 = automatic throttle.
  std::size_t progress_interval = 0;
  /// Optional cooperative stop flag (see exec::CancelToken): a stopped token
  /// aborts the trial loop early; the partial result must then be discarded
  /// by the caller (it is a valid prefix merge, not the full campaign).
  const exec::CancelToken* cancel = nullptr;
  /// gpufi-fabric sharding: run only the global trial indices
  /// [shard_offset, shard_offset + shard_count) of the n_faults-trial
  /// campaign (shard_count == 0 runs it all). Ranges must respect the
  /// exec::chunk_size(n_faults) alignment contract — exec::plan_shards
  /// produces conforming partitions. Merging shard results in offset order
  /// reproduces the whole-campaign result byte for byte.
  std::size_t shard_offset = 0;
  std::size_t shard_count = 0;
};

/// The reusable fault-free half of a campaign: golden cycle count and
/// reference output, plus (for accelerated modes) the checkpoint ladder and
/// digest timeline. Everything here is a pure function of the Workload and
/// the acceleration geometry (`acceleration` != None, `checkpoint_interval`)
/// — independent of seed, fault count, jobs and watchdog — so one context
/// can be computed once and shared read-only by any number of concurrent
/// campaigns over the same workload (the serve-mode golden cache does
/// exactly that).
struct GoldenContext {
  std::uint64_t golden_cycles = 0;
  std::vector<std::uint32_t> golden_out;
  /// Checkpoint ladder + digest timeline; null when prepared with
  /// Acceleration::None.
  std::shared_ptr<const rtl::GoldenTrace> trace;
  /// Per-cycle instruction liveness of the golden run, recorded during the
  /// plain (untraced) golden execution so it is identical for every
  /// acceleration level. Fault-site attribution joins against this.
  std::shared_ptr<const rtl::LivenessTimeline> liveness;
};

/// Runs the golden (and, for accelerated modes, traced-golden) executions of
/// `w` and returns the shareable context. Throws if the golden run fails or
/// the traced replay diverges from it.
GoldenContext prepare_golden(const Workload& w, const CampaignConfig& cfg);

/// General report of one campaign (the per-module/per-instruction AVF data
/// behind Fig. 4 and Fig. 7).
struct CampaignResult {
  std::size_t injected = 0;
  std::size_t masked = 0;
  std::size_t sdc_single = 0;  ///< SDCs corrupting exactly one thread
  std::size_t sdc_multi = 0;   ///< SDCs corrupting more than one thread
  std::size_t due = 0;
  std::uint64_t golden_cycles = 0;
  /// Of the masked trials, how many were cut short by golden-state
  /// convergence (telemetry only — excluded from equivalence comparisons,
  /// since the naive path never converges early).
  std::size_t converged_early = 0;

  /// Detailed records (always kept for SDCs).
  std::vector<InjectionRecord> records;

  /// Per-fault-site outcome tallies (every trial lands in exactly one
  /// site bucket, including the idle bucket for between-instruction
  /// faults). Feeds `gpufi report`.
  attr::SiteTable attribution;

  double avf_sdc() const {
    return injected == 0
               ? 0.0
               : static_cast<double>(sdc_single + sdc_multi) / injected;
  }
  double avf_due() const {
    return injected == 0 ? 0.0 : static_cast<double>(due) / injected;
  }
  double avf() const { return avf_sdc() + avf_due(); }
  /// Fraction of SDCs affecting more than one output element.
  double multi_fraction() const {
    const auto s = sdc_single + sdc_multi;
    return s == 0 ? 0.0 : static_cast<double>(sdc_multi) / s;
  }
  /// Mean corrupted elements per SDC.
  double mean_corrupted_elements() const;
  /// Mean distinct corrupted threads per SDC (the paper reports 1 for
  /// INT/FP32 FUs, ~8 for SFUs, ~28 for the scheduler, ~18 for pipeline).
  double mean_corrupted_threads() const;
  /// 95% margin of error on the total AVF estimate.
  double margin_of_error() const;

  /// Merges another campaign's counters and records (e.g. averaging the
  /// paper's four values per input range).
  void merge(const CampaignResult& other);
};

/// Runs one fault-injection campaign: a golden run sizes the fault window
/// and provides the reference output, then `n_faults` uniformly random
/// (flip-flop bit, cycle) transients are injected one per run.
CampaignResult run_campaign(const Workload& w, const CampaignConfig& cfg);

/// Same campaign, but fast-forwarding from an already-prepared golden
/// context (see prepare_golden). `golden` must have been prepared with a
/// compatible acceleration geometry: accelerated configs require
/// golden.trace. Byte-identical to the single-argument overload — sharing
/// the context across campaigns cannot change any result.
CampaignResult run_campaign(const Workload& w, const CampaignConfig& cfg,
                            const GoldenContext& golden);

/// Classifies a single faulty run against golden output (exposed for tests).
Outcome classify(rtl::RunStatus status,
                 const std::vector<std::uint32_t>& golden_out,
                 const std::vector<std::uint32_t>& faulty_out);

}  // namespace gpufi::rtlfi
