#pragma once

#include <cstdint>
#include <string_view>

#include "isa/isa.hpp"
#include "rtlfi/campaign.hpp"

namespace gpufi::rtlfi {

/// The paper's three operand magnitude ranges (Sec. V-A):
///   Small : both inputs in [6.8e-6, 7.3e-6]
///   Medium: [1.8, 59.4]
///   Large : [3.8e9, 12.5e9]
/// For integer instructions the ranges are adapted to the int32 domain
/// (S: [2,7], M: [2,59], L: [1.2e9, 2.1e9]); SFU inputs are drawn from
/// [0, pi/2] per the unit's operational constraints.
enum class InputRange : std::uint8_t { Small = 0, Medium = 1, Large = 2 };

constexpr std::size_t kNumRanges = 3;

/// Range name ("S"/"M"/"L").
std::string_view range_name(InputRange r);

/// Classifies a floating-point magnitude into the nearest range (the rule
/// the software injector uses: below Small's top -> S, above Large's
/// bottom -> L, else M).
InputRange classify_float_input(float magnitude);
/// Same for integer magnitudes.
InputRange classify_int_input(std::uint32_t magnitude);

/// Number of repetitions of the characterized instruction per thread in a
/// micro-benchmark (each result is stored separately so later executions
/// cannot overwrite an earlier corruption).
constexpr unsigned kMicrobenchReps = 4;

/// Builds the micro-benchmark Workload for one of the 12 characterized
/// instructions: 64 threads (2 warps), every thread executing the same
/// instruction on per-thread inputs drawn from `range` with `value_seed`
/// (the paper averages 4 seeds per range).
Workload make_microbenchmark(isa::Opcode op, InputRange range,
                             std::uint64_t value_seed);

/// Input tile flavours for the t-MxM mini-app (Sec. V-A): the tile with the
/// highest element sum (Max), the tile with the most zeros (Zero, padding
/// tiles at feature-map edges), and an unbiased tile (Random).
enum class TileKind : std::uint8_t { Max = 0, Zero = 1, Random = 2 };

std::string_view tile_name(TileKind k);

/// Builds the tiled matrix-multiplication mini-app: one 8x8 tile per CTA
/// (64 threads), shared-memory staging, barrier, K-loop of FFMAs — the
/// workload whose scheduler faults produce the spatial error patterns of
/// Fig. 8.
Workload make_tmxm(TileKind kind, std::uint64_t value_seed);

}  // namespace gpufi::rtlfi
