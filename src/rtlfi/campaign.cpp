#include "rtlfi/campaign.hpp"

#include <bit>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "common/statistics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rtl/layouts.hpp"
#include "rtl/state.hpp"

namespace gpufi::rtlfi {

std::string_view outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Masked: return vocab::kOutcomeMasked;
    case Outcome::Sdc: return vocab::kOutcomeSdc;
    case Outcome::Due: return vocab::kOutcomeDue;
  }
  return "?";
}

std::string_view acceleration_name(Acceleration a) {
  switch (a) {
    case Acceleration::None: return "none";
    case Acceleration::Checkpoint: return "checkpoint";
    case Acceleration::CheckpointEarlyExit: return "checkpoint+early_exit";
  }
  return "?";
}

double CampaignResult::mean_corrupted_elements() const {
  std::size_t n = 0, sum = 0;
  for (const auto& r : records) {
    if (r.outcome != Outcome::Sdc) continue;
    ++n;
    sum += r.corrupted_elements;
  }
  return n == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(n);
}

double CampaignResult::mean_corrupted_threads() const {
  std::size_t n = 0, sum = 0;
  for (const auto& r : records) {
    if (r.outcome != Outcome::Sdc) continue;
    ++n;
    sum += r.corrupted_threads;
  }
  return n == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(n);
}

double CampaignResult::margin_of_error() const {
  return stats::proportion_margin_of_error(avf(), injected);
}

void CampaignResult::merge(const CampaignResult& other) {
  injected += other.injected;
  masked += other.masked;
  sdc_single += other.sdc_single;
  sdc_multi += other.sdc_multi;
  due += other.due;
  converged_early += other.converged_early;
  golden_cycles = std::max(golden_cycles, other.golden_cycles);
  records.insert(records.end(), other.records.begin(), other.records.end());
  attr::merge_tables(attribution, other.attribution);
}

Outcome classify(rtl::RunStatus status,
                 const std::vector<std::uint32_t>& golden_out,
                 const std::vector<std::uint32_t>& faulty_out) {
  if (status != rtl::RunStatus::Ok) return Outcome::Due;
  return golden_out == faulty_out ? Outcome::Masked : Outcome::Sdc;
}

namespace {

double relative_error(std::uint32_t golden, std::uint32_t faulty,
                      bool is_float) {
  if (is_float) {
    const double g = std::bit_cast<float>(golden);
    const double f = std::bit_cast<float>(faulty);
    if (!std::isfinite(f) || !std::isfinite(g)) return 1e30;
    if (g == 0.0) return std::fabs(f) == 0.0 ? 0.0 : 1e30;
    return std::fabs((f - g) / g);
  }
  const double g = static_cast<std::int32_t>(golden);
  const double f = static_cast<std::int32_t>(faulty);
  if (g == 0.0) return f == 0.0 ? 0.0 : 1e30;
  return std::fabs((f - g) / g);
}

std::vector<std::uint32_t> read_out(const rtl::Sm& sm, std::uint32_t base,
                                    std::uint32_t words) {
  std::vector<std::uint32_t> v(words);
  for (std::uint32_t i = 0; i < words; ++i) v[i] = sm.read_word(base + i);
  return v;
}

/// `gpufi_rtl_outcomes_total{model=...,outcome=...}` — the per-FaultModel
/// outcome counter every trial bumps (through its chunk's shard, so the
/// totals are jobs-invariant).
std::string outcome_metric(const CampaignConfig& cfg, Outcome o) {
  return obs::label(obs::label("gpufi_rtl_outcomes_total", "model",
                               rtl::fault_model_name(cfg.fault_model)),
                    "outcome", outcome_name(o));
}

}  // namespace

namespace {

/// One fault-injection trial: draws the (bit, cycle) location from this
/// trial's private Rng, replays the workload with the fault armed, and
/// accumulates the classification into `shard`. With `trace` given, the
/// fault-free prefix is fast-forwarded from the golden checkpoint ladder
/// (and, with `early_exit`, the run stops the instant the machine state
/// re-converges with the golden timeline) — same outcome, fewer cycles.
void run_one_fault(rtl::Sm& sm, const Workload& w, const CampaignConfig& cfg,
                   const rtl::StateLayout& layout,
                   const std::vector<std::uint32_t>& golden_out,
                   std::uint64_t golden_cycles, std::uint64_t watchdog,
                   const rtl::GoldenTrace* trace,
                   const rtl::LivenessTimeline* liveness, bool early_exit,
                   std::uint64_t check_interval, Rng& rng,
                   CampaignResult& shard) {
  rtl::FaultSpec fault;
  fault.module = cfg.module;
  fault.bit = static_cast<std::uint32_t>(rng.below(layout.bits()));
  fault.cycle = rng.below(golden_cycles);
  // The temporal shape comes from the config, not the Rng: the transient
  // draw sequence above is the byte-compatibility contract with earlier
  // campaigns, and every model bombards the same (bit, cycle) sites.
  fault.model = cfg.fault_model;
  fault.duration = cfg.fault_duration;
  fault.period = cfg.burst_period;

  const bool obs_on = obs::enabled();

  // Join the fault site against the golden liveness timeline before the
  // run: the context is a pure function of (workload, cycle, module), so
  // it is identical for every acceleration level and job count.
  rtl::FaultSiteContext site;
  if (liveness)
    site = rtl::resolve_fault_site(*liveness, fault.cycle, cfg.module);
  if (obs_on)
    obs::count(site.live ? "gpufi_attr_resolved_total"
                         : "gpufi_attr_unresolved_total");
  auto& site_counts = shard.attribution[attr::site_key(site)];
  ++site_counts.hits;
  rtl::RunResult run;
  if (trace) {
    if (obs_on) obs::count("gpufi_rtl_checkpoint_restores_total");
    // Acceleration gating across models: floor() only returns rungs at
    // cycles <= fault.cycle, i.e. strictly before the fault window opens,
    // so the fast-forwarded prefix is fault-free for every model; the
    // convergence early-exit is gated inside the machine on the window
    // having closed (a permanent fault therefore never early-exits).
    const rtl::SmCheckpoint* from = trace->floor(fault.cycle);
    if (!from) throw std::logic_error("empty golden checkpoint ladder");
    run = sm.resume_with_fault(w.program, w.dims, fault, watchdog, *from,
                               early_exit ? trace : nullptr, check_interval);
  } else {
    // Pristine memory image per trial (the restore path starts every trial
    // from the golden image, so the naive path must too for byte-identity:
    // a faulty store must not leak into the next trial's initial memory).
    sm.clear_global();
    w.setup(sm);
    run = sm.run_with_fault(w.program, w.dims, fault, watchdog);
  }

  if (run.converged) {
    // Full-state convergence: the rest of the run is provably the golden
    // suffix, so the output would compare equal word for word.
    ++shard.injected;
    ++shard.masked;
    ++shard.converged_early;
    ++site_counts.masked;
    if (obs_on) {
      obs::count("gpufi_rtl_converged_early_total");
      obs::count(outcome_metric(cfg, Outcome::Masked));
    }
    return;
  }

  const auto faulty_out = read_out(sm, w.out_base, w.out_words);
  const Outcome outcome = classify(run.status, golden_out, faulty_out);
  if (obs_on) obs::count(outcome_metric(cfg, outcome));

  ++shard.injected;
  switch (outcome) {
    case Outcome::Masked:
      ++shard.masked;
      ++site_counts.masked;
      break;
    case Outcome::Due:
      ++shard.due;
      ++site_counts.due;
      break;
    case Outcome::Sdc:
      break;  // counted below once multiplicity is known
  }

  if (outcome == Outcome::Masked) return;

  InjectionRecord rec;
  rec.fault = fault;
  const auto& finfo = layout.field_at(fault.bit);
  rec.field = finfo.name;
  rec.role = finfo.role;
  rec.outcome = outcome;
  rec.site = site;
  if (outcome == Outcome::Due) {
    rec.due_reason = run.trap_reason;
    rec.due_reason_code = vocab::classify_due_reason(run.trap_reason);
    ++site_counts
          .due_by_reason[static_cast<std::size_t>(rec.due_reason_code)];
    if (cfg.keep_all_records) shard.records.push_back(std::move(rec));
    return;
  }
  std::vector<bool> thread_hit(w.thread_modulo ? w.thread_modulo
                                               : w.out_words);
  for (std::uint32_t e = 0; e < w.out_words; ++e) {
    if (faulty_out[e] == golden_out[e]) continue;
    ++rec.corrupted_elements;
    const std::uint32_t owner =
        w.thread_modulo ? e % w.thread_modulo : e;
    if (!thread_hit[owner]) {
      thread_hit[owner] = true;
      ++rec.corrupted_threads;
    }
    if (rec.diffs.size() < kMaxDiffsKept) {
      ElementDiff d;
      d.index = e;
      d.golden = golden_out[e];
      d.faulty = faulty_out[e];
      d.rel_error = relative_error(golden_out[e], faulty_out[e],
                                   w.out_is_float);
      d.bits_flipped = static_cast<unsigned>(
          std::popcount(golden_out[e] ^ faulty_out[e]));
      rec.diffs.push_back(d);
    }
  }
  if (rec.corrupted_threads > 1) {
    ++shard.sdc_multi;
    ++site_counts.sdc_multi;
  } else {
    ++shard.sdc_single;
    ++site_counts.sdc_single;
  }
  shard.records.push_back(std::move(rec));
}

}  // namespace

GoldenContext prepare_golden(const Workload& w, const CampaignConfig& cfg) {
  obs::Span span("rtlfi.prepare_golden");
  span.set("workload", w.name);
  span.set("accel", acceleration_name(cfg.acceleration));
  obs::count("gpufi_rtl_golden_builds_total");
  GoldenContext golden;

  // Golden run: reference output, fault-window size and the liveness
  // timeline attribution joins against. Recorded here — on the plain run
  // every acceleration level performs — so the timeline (and with it every
  // FaultSiteContext) is acceleration-invariant by construction.
  {
    rtl::Sm sm;
    w.setup(sm);
    auto liveness = std::make_shared<rtl::LivenessTimeline>();
    const auto golden_run = sm.run(w.program, w.dims, *liveness);
    if (golden_run.status != rtl::RunStatus::Ok)
      throw std::runtime_error("golden RTL run failed (" +
                               golden_run.trap_reason + ") for " + w.name);
    golden.golden_cycles = golden_run.cycles;
    golden.golden_out = read_out(sm, w.out_base, w.out_words);
    golden.liveness = std::move(liveness);
  }

  // Accelerated modes re-run the golden workload once more with tracing on,
  // building the checkpoint ladder and digest timeline every trial shares
  // read-only. The ladder is built once per context (not per worker, not per
  // campaign when a cache shares the context), so results stay jobs-count
  // and sharing invariant by construction.
  if (cfg.acceleration != Acceleration::None) {
    const std::uint64_t rung_interval =
        cfg.checkpoint_interval != 0
            ? cfg.checkpoint_interval
            : std::max<std::uint64_t>(1, golden.golden_cycles / 24);
    auto trace = std::make_shared<rtl::GoldenTrace>();
    rtl::Sm sm;
    w.setup(sm);
    const auto traced = sm.run_traced(w.program, w.dims, *trace,
                                      rung_interval);
    if (traced.status != rtl::RunStatus::Ok ||
        traced.cycles != golden.golden_cycles)
      throw std::runtime_error("traced golden run diverged from plain golden "
                               "run for " + w.name);
    golden.trace = std::move(trace);
  }
  return golden;
}

CampaignResult run_campaign(const Workload& w, const CampaignConfig& cfg,
                            const GoldenContext& golden) {
  obs::Span span("rtlfi.run_campaign");
  span.set("workload", w.name);
  span.set("module", rtl::module_name(cfg.module));
  span.set("model", rtl::fault_model_name(cfg.fault_model));
  span.set("faults", static_cast<std::uint64_t>(cfg.n_faults));
  const auto& layout = rtl::layouts().of(cfg.module);
  if (layout.bits() == 0) throw std::logic_error("empty module layout");
  if (cfg.acceleration != Acceleration::None && !golden.trace)
    throw std::logic_error("accelerated campaign needs a traced golden "
                           "context for " + w.name);

  const std::uint64_t watchdog =
      golden.golden_cycles * cfg.watchdog_factor + cfg.watchdog_slack;
  const bool early_exit = cfg.acceleration == Acceleration::CheckpointEarlyExit;
  const std::uint64_t check_interval = cfg.convergence_check_interval != 0
                                           ? cfg.convergence_check_interval
                                           : 16;
  const rtl::GoldenTrace* trace =
      cfg.acceleration != Acceleration::None ? golden.trace.get() : nullptr;

  exec::EngineConfig ec;
  ec.n_trials = cfg.shard_count == 0 ? cfg.n_faults : cfg.shard_count;
  ec.seed = cfg.seed;
  ec.jobs = cfg.jobs;
  ec.progress = cfg.progress;
  ec.progress_interval = cfg.progress_interval;
  ec.cancel = cfg.cancel;
  if (cfg.shard_count != 0) {
    ec.trial_offset = cfg.shard_offset;
    ec.trial_total = cfg.n_faults;
  }
  CampaignResult result = exec::run_trials<CampaignResult>(
      ec, [] { return std::make_unique<rtl::Sm>(); },
      [&](std::unique_ptr<rtl::Sm>& sm, std::size_t, Rng& rng,
          CampaignResult& shard) {
        run_one_fault(*sm, w, cfg, layout, golden.golden_out,
                      golden.golden_cycles, watchdog, trace,
                      golden.liveness.get(), early_exit, check_interval, rng,
                      shard);
      });
  result.golden_cycles = golden.golden_cycles;
  return result;
}

CampaignResult run_campaign(const Workload& w, const CampaignConfig& cfg) {
  return run_campaign(w, cfg, prepare_golden(w, cfg));
}

}  // namespace gpufi::rtlfi
