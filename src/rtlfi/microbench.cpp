#include "rtlfi/microbench.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace gpufi::rtlfi {

using namespace gpufi::isa;

std::string_view range_name(InputRange r) {
  switch (r) {
    case InputRange::Small: return "S";
    case InputRange::Medium: return "M";
    case InputRange::Large: return "L";
  }
  return "?";
}

std::string_view tile_name(TileKind k) {
  switch (k) {
    case TileKind::Max: return "Max";
    case TileKind::Zero: return "Zero";
    case TileKind::Random: return "Random";
  }
  return "?";
}

namespace {

constexpr double kFpS_lo = 6.8e-6, kFpS_hi = 7.3e-6;
constexpr double kFpM_lo = 1.8, kFpM_hi = 59.4;
constexpr double kFpL_lo = 3.8e9, kFpL_hi = 12.5e9;

float draw_fp(Rng& rng, InputRange r) {
  switch (r) {
    case InputRange::Small:
      return static_cast<float>(rng.uniform(kFpS_lo, kFpS_hi));
    case InputRange::Medium:
      return static_cast<float>(rng.uniform(kFpM_lo, kFpM_hi));
    case InputRange::Large:
      return static_cast<float>(rng.uniform(kFpL_lo, kFpL_hi));
  }
  return 0.0f;
}

std::uint32_t draw_int(Rng& rng, InputRange r) {
  switch (r) {
    case InputRange::Small:
      return static_cast<std::uint32_t>(rng.range(2, 7));
    case InputRange::Medium:
      return static_cast<std::uint32_t>(rng.range(2, 59));
    case InputRange::Large:
      return static_cast<std::uint32_t>(
          rng.range(1'200'000'000, 2'100'000'000));
  }
  return 0;
}

float draw_sfu(Rng& rng) {
  return static_cast<float>(rng.uniform(0.0, 1.5707963267948966));
}

// Named rng_derive stream tags: the microbenchmark and t-MxM input
// generators must stay decorrelated from each other and from the campaign
// fault streams even when handed the same value seed.
enum StreamTag : std::uint64_t {
  kStreamMicrobenchInputs = 1,
  kStreamTmxmInputs = 2,
};

constexpr unsigned kThreads = 64;  // 2 warps, as in the paper
// Memory map (word addresses).
constexpr std::uint32_t kInA = 0;
constexpr std::uint32_t kInB = kInA + kThreads;
constexpr std::uint32_t kInC = kInB + kThreads;
constexpr std::uint32_t kOut = kInC + kThreads;

}  // namespace

InputRange classify_float_input(float magnitude) {
  const double m = std::fabs(static_cast<double>(magnitude));
  if (m <= kFpS_hi) return InputRange::Small;
  if (m >= kFpL_lo) return InputRange::Large;
  return InputRange::Medium;
}

InputRange classify_int_input(std::uint32_t magnitude) {
  if (magnitude <= 7) return InputRange::Small;
  if (magnitude >= 1'200'000'000u) return InputRange::Large;
  return InputRange::Medium;
}

Workload make_microbenchmark(Opcode op, InputRange range,
                             std::uint64_t value_seed) {
  Workload w;
  w.name = std::string(mnemonic(op)) + "/" + std::string(range_name(range));
  w.dims = rtl::GridDims{1, 1, kThreads, 1};
  w.out_base = kOut;
  w.out_is_float = op_class(op) == OpClass::Fp32 ||
                   op_class(op) == OpClass::Special;

  const OpClass cls = op_class(op);
  const bool is_arith = cls == OpClass::Fp32 || cls == OpClass::Int32;
  const bool is_sfu = cls == OpClass::Special;
  const bool memory_values_float = is_arith ? w.out_is_float : true;

  // Buffer base addresses are kernel parameters: on the RTL model they
  // live in the scheduler's (faultable) parameter bank.
  KernelBuilder kb(w.name);
  kb.mov(0, S(SReg::TID_X));
  kb.iadd(5, R(0), S(SReg::PARAM0));
  kb.gld(1, R(5));
  kb.iadd(5, R(0), S(SReg::PARAM1));
  kb.gld(2, R(5));
  kb.iadd(5, R(0), S(SReg::PARAM2));
  kb.gld(3, R(5));
  kb.iadd(6, R(0), S(SReg::PARAM3));

  switch (op) {
    case Opcode::FADD:
    case Opcode::FMUL:
    case Opcode::IADD:
    case Opcode::IMUL:
      for (unsigned k = 0; k < kMicrobenchReps; ++k) {
        kb.emit(Instr{.op = op, .dst = 4, .a = R(1), .b = R(2)});
        kb.gst(R(6), R(4), static_cast<std::int32_t>(k * kThreads));
      }
      break;
    case Opcode::FFMA:
    case Opcode::IMAD:
      for (unsigned k = 0; k < kMicrobenchReps; ++k) {
        kb.emit(Instr{.op = op, .dst = 4, .a = R(1), .b = R(2), .c = R(3)});
        kb.gst(R(6), R(4), static_cast<std::int32_t>(k * kThreads));
      }
      break;
    case Opcode::FSIN:
    case Opcode::FEXP:
      for (unsigned k = 0; k < kMicrobenchReps; ++k) {
        kb.emit(Instr{.op = op, .dst = 4, .a = R(1)});
        kb.gst(R(6), R(4), static_cast<std::int32_t>(k * kThreads));
      }
      break;
    case Opcode::GLD:
    case Opcode::GST:
      // Load followed by store, repeated (Sec. V-A).
      for (unsigned k = 0; k < kMicrobenchReps; ++k) {
        kb.iadd(5, R(0), S(SReg::PARAM0));
        kb.gld(4, R(5));
        kb.gst(R(6), R(4), static_cast<std::int32_t>(k * kThreads));
      }
      break;
    case Opcode::BRA:
      // Set-register instructions guarded by a branch: a fault shows up as
      // a wrongly-assigned register or a failed branch condition.
      kb.movi(4, 0);
      for (unsigned k = 0; k < kMicrobenchReps; ++k) {
        kb.isetp(0, CmpOp::LT, R(1), R(2));
        kb.if_begin(0);
        kb.iadd(4, R(4), I(1));
        kb.else_begin();
        kb.iadd(4, R(4), I(100));
        kb.if_end();
        kb.gst(R(6), R(4), static_cast<std::int32_t>(k * kThreads));
      }
      break;
    case Opcode::ISETP:
      for (unsigned k = 0; k < kMicrobenchReps; ++k) {
        kb.isetp(0, CmpOp::GE, R(1), R(2));
        kb.sel(4, I(1), I(0), 0);
        kb.gst(R(6), R(4), static_cast<std::int32_t>(k * kThreads));
      }
      break;
    default:
      throw std::invalid_argument("make_microbenchmark: not characterized");
  }
  w.program = kb.build();
  w.program.params = {kInA, kInB, kInC, kOut, 0, 0, 0, 0};
  w.out_words = kMicrobenchReps * kThreads;
  w.thread_modulo = kThreads;

  const bool int_inputs =
      cls == OpClass::Int32 || op == Opcode::BRA || op == Opcode::ISETP;
  w.setup = [range, value_seed, is_sfu, int_inputs,
             memory_values_float](rtl::Sm& sm) {
    (void)memory_values_float;
    Rng rng(rng_derive(value_seed, kStreamMicrobenchInputs));
    for (unsigned t = 0; t < kThreads; ++t) {
      if (is_sfu) {
        sm.write_float(kInA + t, draw_sfu(rng));
        sm.write_float(kInB + t, draw_sfu(rng));
        sm.write_float(kInC + t, draw_sfu(rng));
      } else if (int_inputs) {
        sm.write_word(kInA + t, draw_int(rng, range));
        sm.write_word(kInB + t, draw_int(rng, range));
        sm.write_word(kInC + t, draw_int(rng, range));
      } else {
        sm.write_float(kInA + t, draw_fp(rng, range));
        sm.write_float(kInB + t, draw_fp(rng, range));
        sm.write_float(kInC + t, draw_fp(rng, range));
      }
    }
    sm.fill(kOut, kMicrobenchReps * kThreads, 0);
  };
  return w;
}

Workload make_tmxm(TileKind kind, std::uint64_t value_seed) {
  constexpr unsigned kTile = 8;
  constexpr std::uint32_t kA = 0;
  constexpr std::uint32_t kB = kA + kTile * kTile;
  constexpr std::uint32_t kC = kB + kTile * kTile;

  Workload w;
  w.name = std::string("t-MxM/") + std::string(tile_name(kind));
  w.dims = rtl::GridDims{1, 1, kTile, kTile};
  w.out_base = kC;
  w.out_words = kTile * kTile;
  w.out_is_float = true;
  w.out_rows = kTile;
  w.out_cols = kTile;

  KernelBuilder kb(w.name);
  kb.shared(2 * kTile * kTile);
  kb.mov(0, S(SReg::TID_X));                       // tx
  kb.mov(1, S(SReg::TID_Y));                       // ty
  kb.imad(2, R(1), S(SReg::NTID_X), R(0));         // idx = ty*8+tx
  // Stage the tile operands into shared memory.
  kb.iadd(3, R(2), S(SReg::PARAM0));
  kb.gld(4, R(3));
  kb.sts(R(2), R(4));                              // sA[idx]
  kb.iadd(3, R(2), S(SReg::PARAM1));
  kb.gld(4, R(3));
  kb.sts(R(2), R(4), kTile * kTile);               // sB[idx]
  kb.bar();
  // acc = 0; for k in 0..7: acc += sA[ty*8+k] * sB[k*8+tx]
  kb.movf(5, 0.0f);                                // acc
  kb.movi(6, 0);                                   // k
  kb.imul(7, R(1), S(SReg::NTID_X));               // ty*8
  kb.loop_begin();
  kb.isetp(0, CmpOp::LT, R(6), S(SReg::NTID_X));
  kb.loop_while(0);
  kb.iadd(8, R(7), R(6));                          // ty*8+k
  kb.lds(9, R(8));                                 // a
  kb.imad(10, R(6), S(SReg::NTID_X), R(0));        // k*8+tx
  kb.lds(11, R(10), kTile * kTile);                // b
  kb.ffma(5, R(9), R(11), R(5));
  kb.iadd(6, R(6), I(1));
  kb.loop_end();
  kb.iadd(12, R(2), S(SReg::PARAM2));
  kb.gst(R(12), R(5));
  w.program = kb.build();
  w.program.params = {kA, kB, kC, 0, 0, 0, 0, 0};
  w.thread_modulo = kTile * kTile;

  w.setup = [kind, value_seed](rtl::Sm& sm) {
    Rng rng(rng_derive(value_seed, kStreamTmxmInputs));
    auto draw = [&](bool& zeroed) -> float {
      zeroed = false;
      switch (kind) {
        case TileKind::Max:
          // Feature-map tile with the highest element sum: dense, large.
          return static_cast<float>(rng.uniform(0.8, 1.6));
        case TileKind::Zero:
          // Padding-edge tile: mostly zero operands.
          if (rng.chance(0.8)) {
            zeroed = true;
            return 0.0f;
          }
          return static_cast<float>(rng.uniform(-0.2, 0.2));
        case TileKind::Random:
          return static_cast<float>(rng.uniform(-1.0, 1.0));
      }
      return 0.0f;
    };
    bool z;
    for (unsigned i = 0; i < kTile * kTile; ++i)
      sm.write_float(kA + i, draw(z));
    for (unsigned i = 0; i < kTile * kTile; ++i)
      sm.write_float(kB + i, draw(z));
    sm.fill(kC, kTile * kTile, 0);
  };
  return w;
}

}  // namespace gpufi::rtlfi
