#include "swfi/swfi.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "common/statistics.hpp"
#include "emu/profiler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rtlfi/microbench.hpp"

namespace gpufi::swfi {

using isa::Opcode;

std::string_view fault_model_name(FaultModel m) {
  switch (m) {
    case FaultModel::SingleBitFlip: return "single bit-flip";
    case FaultModel::DoubleBitFlip: return "double bit-flip";
    case FaultModel::RelativeError: return "relative error";
    case FaultModel::WarpRelativeError: return "warp relative error";
    case FaultModel::StickyRelativeError: return "sticky relative error";
  }
  return "?";
}

bool ProfileHook::is_candidate(Opcode op) {
  return isa::is_injection_candidate(op);
}

namespace {

/// True when the instruction's destination holds an FP32 bit pattern (which
/// decides both how a relative error is applied and how inputs classify).
bool fp_destination(Opcode op, bool memory_is_float) {
  return isa::op_class(op) == isa::OpClass::Fp32 ||
         isa::op_class(op) == isa::OpClass::Special ||
         (op == Opcode::GLD && memory_is_float);
}

}  // namespace

rtlfi::InputRange classify_inputs(Opcode op, std::uint32_t a, std::uint32_t b,
                                  bool memory_is_float) {
  if (fp_destination(op, memory_is_float)) {
    const float fa = std::bit_cast<float>(a);
    const float fb = std::bit_cast<float>(b);
    return rtlfi::classify_float_input(
        std::max(std::fabs(fa), std::fabs(fb)));
  }
  const auto mag_of = [](std::uint32_t v) {
    const auto s = static_cast<std::int32_t>(v);
    return static_cast<std::uint32_t>(s < 0 ? -static_cast<std::int64_t>(s)
                                            : s);
  };
  return rtlfi::classify_int_input(std::max(mag_of(a), mag_of(b)));
}

void ProfileHook::on_retire(const emu::RetireInfo& info, std::uint32_t&) {
  if (is_candidate(info.instr->op)) ++candidates_;
}

void ProfileHook::on_pred_retire(const emu::RetireInfo& info, bool&) {
  if (is_candidate(info.instr->op)) ++candidates_;
}

InjectHook::InjectHook(FaultModel model, std::uint64_t target,
                       std::uint64_t seed, const syndrome::Database* db,
                       bool memory_is_float, rtl::FaultModel syndrome_model)
    : model_(model),
      target_(target),
      rng_(seed),
      db_(db),
      memory_is_float_(memory_is_float),
      syndrome_model_(syndrome_model) {}

bool InjectHook::take_shot(const emu::RetireInfo& info) {
  const Opcode op = info.instr->op;
  if (!ProfileHook::is_candidate(op)) return false;
  if (fired_) {
    // Sticky (stuck-at) model: a permanently broken flip-flop keeps
    // corrupting the same static instruction, so every later retirement of
    // the hit pc — any thread, including loop re-executions — fires again,
    // up to kStickyMaxHits.
    if (model_ == FaultModel::StickyRelativeError) {
      if (info.pc != hit_pc_ || hits_ >= kStickyMaxHits) return false;
      ++hits_;
      return true;
    }
    // Warp-level model: the emulator retires a warp instruction lane by
    // lane, so corrupting "the rest of the warp" means continuing to fire
    // while the same (CTA, warp, pc) instruction keeps retiring. Any other
    // candidate retirement from that warp disarms the fault, so a loop
    // re-executing the same PC is NOT corrupted again (transient
    // semantics), and at most one warp's worth of lanes is hit.
    if (model_ != FaultModel::WarpRelativeError || !armed_) return false;
    if (info.pc != hit_pc_ || info.thread.cta != hit_cta_ ||
        info.thread.warp != hit_warp_ || hits_ >= 32) {
      armed_ = false;
      return false;
    }
    ++hits_;
    return true;
  }
  if (restricted_ &&
      (op != r_op_ ||
       classify_inputs(op, info.a, info.b, memory_is_float_) != r_range_))
    return false;
  if (seen_++ != target_) return false;
  fired_ = true;
  hits_ = 1;
  hit_op_ = op;
  hit_pc_ = info.pc;
  hit_dyn_index_ = info.dyn_index;
  hit_cta_ = info.thread.cta;
  hit_warp_ = info.thread.warp;
  return true;
}

std::uint32_t InjectHook::corrupt_value(const emu::RetireInfo& info,
                                        std::uint32_t value) {
  const Opcode op = info.instr->op;
  switch (model_) {
    case FaultModel::SingleBitFlip:
      return value ^ (1u << rng_.below(32));
    case FaultModel::DoubleBitFlip: {
      const unsigned b1 = static_cast<unsigned>(rng_.below(32));
      unsigned b2 = static_cast<unsigned>(rng_.below(31));
      if (b2 >= b1) ++b2;
      return value ^ (1u << b1) ^ (1u << b2);
    }
    case FaultModel::RelativeError:
    case FaultModel::WarpRelativeError:
    case FaultModel::StickyRelativeError:
      break;
  }
  // RTL-syndrome relative error: the magnitude range is classified from the
  // instruction's actual inputs, exactly as the modified NVBitFI does.
  const bool fp_dest = fp_destination(op, memory_is_float_);
  const rtlfi::InputRange range =
      classify_inputs(op, info.a, info.b, memory_is_float_);
  double rel = 1.0;
  if (db_) {
    if (const auto s =
            db_->sample_relative_error(op, range, rng_, syndrome_model_))
      rel = *s;
  }
  applied_rel_ = rel;
  const double sign = rng_.chance(0.5) ? 1.0 : -1.0;
  if (fp_dest) {
    const double v = std::bit_cast<float>(value);
    return std::bit_cast<std::uint32_t>(
        static_cast<float>(v * (1.0 + sign * rel)));
  }
  const double v = static_cast<std::int32_t>(value);
  const double corrupted = v * (1.0 + sign * rel);
  // Wraparound semantics of the integer datapath.
  if (!std::isfinite(corrupted)) return value;
  return static_cast<std::uint32_t>(
      static_cast<std::int64_t>(std::llrint(
          std::clamp(corrupted, -9.2e18, 9.2e18))));
}

void InjectHook::on_retire(const emu::RetireInfo& info, std::uint32_t& value) {
  if (!take_shot(info)) return;
  value = corrupt_value(info, value);
}

void InjectHook::on_pred_retire(const emu::RetireInfo& info, bool& value) {
  if (!take_shot(info)) return;
  // A predicate's only corruption is inversion, for every fault model.
  value = !value;
}

bool InjectHook::done() const {
  if (!fired_) return false;
  switch (model_) {
    case FaultModel::SingleBitFlip:
    case FaultModel::DoubleBitFlip:
    case FaultModel::RelativeError:
      return true;  // one shot, already taken
    case FaultModel::WarpRelativeError:
      // Inert once the warp moved on (disarmed) or every lane was hit; until
      // then take_shot still needs to see retirements to disarm correctly.
      return !armed_ || hits_ >= 32;
    case FaultModel::StickyRelativeError:
      // A stuck flip-flop keeps re-firing on its pc until the hit cap.
      return hits_ >= kStickyMaxHits;
  }
  return false;
}

double Result::margin_of_error() const {
  return stats::proportion_margin_of_error(pvf(), injections);
}

void Result::merge(const Result& other) {
  injections += other.injections;
  masked += other.masked;
  sdc += other.sdc;
  due += other.due;
  candidate_instructions =
      std::max(candidate_instructions, other.candidate_instructions);
  for (const auto& [key, counts] : other.sites) {
    auto& sc = sites[key];
    sc.hits += counts.hits;
    sc.masked += counts.masked;
    sc.sdc += counts.sdc;
    sc.due += counts.due;
  }
  // Golden profile counts describe the same app; keep the longer vector.
  if (other.pc_exec_counts.size() > pc_exec_counts.size())
    pc_exec_counts = other.pc_exec_counts;
}

namespace detail {

void run_one_trial(const App& app, emu::Device& dev, InjectHook& hook,
                   const std::vector<std::uint32_t>& golden_out,
                   Result& shard) {
  dev.reset();
  const bool ok = app.run(dev, &hook);
  const bool obs_on = obs::enabled();
  if (obs_on)
    // Per-opcode shot accounting: which instruction the trial actually
    // corrupted ("none" = the draw landed past the dynamic stream,
    // e.g. a DUE killed the run before the target retired).
    obs::count(obs::label(
        "gpufi_sw_injections_total", "opcode",
        hook.fired() ? isa::mnemonic(hook.hit_opcode()) : "none"));
  ++shard.injections;
  auto& site = shard.sites[{hook.fired() ? hook.hit_pc() : -1,
                            hook.fired() ? hook.hit_opcode()
                                         : isa::Opcode::NOP}];
  ++site.hits;
  std::string_view outcome;
  if (!ok) {
    ++shard.due;
    ++site.due;
    outcome = vocab::kOutcomeDue;
  } else if (app.read_output(dev) == golden_out) {
    ++shard.masked;
    ++site.masked;
    outcome = vocab::kOutcomeMasked;
  } else {
    ++shard.sdc;
    ++site.sdc;
    outcome = vocab::kOutcomeSdc;
  }
  if (obs_on)
    obs::count(obs::label("gpufi_sw_outcomes_total", "outcome", outcome));
}

}  // namespace detail

Result run_sw_campaign(const App& app, const Config& cfg) {
  obs::Span span("swfi.run_sw_campaign");
  span.set("app", app.name);
  span.set("model", fault_model_name(cfg.model));
  span.set("injections", static_cast<std::uint64_t>(cfg.n_injections));

  // Golden pass: candidate profile, per-pc execution counts (residency
  // denominators for attribution) and reference output, in one run.
  struct GoldenHook : emu::InstrumentHook {
    ProfileHook profile;
    emu::Profiler profiler;
    void on_retire(const emu::RetireInfo& info, std::uint32_t& v) override {
      profile.on_retire(info, v);
    }
    void on_pred_retire(const emu::RetireInfo& info, bool& v) override {
      profile.on_pred_retire(info, v);
    }
    void on_count(const emu::RetireInfo& info) override {
      profiler.on_count(info);
    }
  } golden_hook;
  emu::Device golden(app.device_words);
  golden.set_interpreter(cfg.interpreter);
  {
    obs::Span golden_span("swfi.golden_profile");
    golden_span.set("app", app.name);
    if (!app.run(golden, &golden_hook))
      throw std::runtime_error("golden run failed for " + app.name);
  }
  const auto golden_out = app.read_output(golden);
  const std::uint64_t candidates = golden_hook.profile.candidates();
  if (candidates == 0)
    throw std::runtime_error("no injectable instructions in " + app.name);

  exec::EngineConfig ec;
  ec.n_trials = cfg.shard_count == 0 ? cfg.n_injections : cfg.shard_count;
  ec.seed = cfg.seed;
  ec.jobs = cfg.jobs;
  ec.progress = cfg.progress;
  ec.progress_interval = cfg.progress_interval;
  ec.cancel = cfg.cancel;
  if (cfg.shard_count != 0) {
    ec.trial_offset = cfg.shard_offset;
    ec.trial_total = cfg.n_injections;
  }
  Result result = exec::run_trials<Result>(
      ec,
      [&] {
        // One reused device per chunk (reset per trial) instead of a fresh
        // construction-and-zeroing for every injection.
        auto dev = std::make_unique<emu::Device>(app.device_words);
        dev->set_interpreter(cfg.interpreter);
        return dev;
      },
      [&](std::unique_ptr<emu::Device>& dev, std::size_t, Rng& rng,
          Result& shard) {
        const std::uint64_t target = rng.below(candidates);
        InjectHook hook(cfg.model, target, rng(), cfg.db,
                        app.memory_is_float, cfg.syndrome_model);
        detail::run_one_trial(app, *dev, hook, golden_out, shard);
      });
  result.candidate_instructions = candidates;
  result.pc_exec_counts = golden_hook.profiler.pc_counts();
  return result;
}

}  // namespace gpufi::swfi
