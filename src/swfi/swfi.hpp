#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "emu/device.hpp"
#include "exec/engine.hpp"
#include "rtlfi/microbench.hpp"
#include "syndrome/syndrome.hpp"
#include "vocab/outcomes.hpp"

namespace gpufi::swfi {

/// Software fault models. SingleBitFlip/DoubleBitFlip are the traditional
/// NVBitFI models; RelativeError injects the RTL-derived syndrome
/// distribution (the paper's contribution).
enum class FaultModel : std::uint8_t {
  SingleBitFlip,
  DoubleBitFlip,
  RelativeError,
  /// Extension (Sec. VI: "NVBitFI could inject in multiple threads"):
  /// corrupts the destination of the targeted dynamic instruction in EVERY
  /// thread of its warp, each with an independently sampled relative error
  /// — the software image of a scheduler-class whole-warp fault.
  WarpRelativeError,
  /// Stuck-at replay: after the first shot, re-corrupts EVERY subsequent
  /// retirement of the same static instruction (same pc, any thread) with a
  /// freshly sampled relative error from the stuck-at syndrome class — the
  /// software image of a permanently stuck datapath flip-flop feeding that
  /// instruction. Capped at kStickyMaxHits corruptions.
  StickyRelativeError,
};

std::string_view fault_model_name(FaultModel m);

/// An application under software fault injection: a self-contained runner
/// plus an output reader used for SDC classification.
struct App {
  std::string name;
  /// Runs the whole application (allocations, input generation, kernel
  /// launches) on a fresh device with `hook` attached to every launch.
  /// Returns false if any launch trapped or timed out (-> DUE).
  std::function<bool(emu::Device&, emu::InstrumentHook*)> run;
  /// Reads the output words used for golden/faulty comparison.
  std::function<std::vector<std::uint32_t>(const emu::Device&)> read_output;
  /// Device size for this app.
  std::size_t device_words = 1 << 22;
  /// Interpret GLD-loaded values as floats when applying relative errors.
  bool memory_is_float = true;
};

/// Syndrome magnitude class of a candidate retirement: FP-destination
/// instructions classify max(|a|, |b|) as a float magnitude, integer
/// destinations as a signed magnitude — the same rule InjectHook uses to
/// pick the syndrome class of a shot, reused by the campaign planner to
/// stratify the injection space over (opcode x input range).
rtlfi::InputRange classify_inputs(isa::Opcode op, std::uint32_t a,
                                  std::uint32_t b, bool memory_is_float);

/// Profile pass: counts the dynamic instructions eligible for injection
/// (RTL-characterized opcodes that produce a register or predicate value).
class ProfileHook : public emu::InstrumentHook {
 public:
  void on_retire(const emu::RetireInfo& info, std::uint32_t& value) override;
  void on_pred_retire(const emu::RetireInfo& info, bool& value) override;

  std::uint64_t candidates() const { return candidates_; }

  /// True if `op` is an injection candidate (value-producing characterized
  /// instruction; BRA and stores have no destination and are excluded).
  static bool is_candidate(isa::Opcode op);

 private:
  std::uint64_t candidates_ = 0;
};

/// Injection pass: corrupts the destination of the `target`-th candidate
/// dynamic instruction according to the fault model.
class InjectHook : public emu::InstrumentHook {
 public:
  InjectHook(FaultModel model, std::uint64_t target, std::uint64_t seed,
             const syndrome::Database* db, bool memory_is_float,
             rtl::FaultModel syndrome_model = rtl::FaultModel::Transient);

  /// Cap on sticky-model re-corruptions (bounds hot-loop blowup).
  static constexpr unsigned kStickyMaxHits = 4096;

  void on_retire(const emu::RetireInfo& info, std::uint32_t& value) override;
  void on_pred_retire(const emu::RetireInfo& info, bool& value) override;
  /// True once this injector can never fire again (one-shot models after the
  /// shot, continuation models after they disarm): the interpreter then runs
  /// the rest of the trial at uninstrumented speed. This is what makes a
  /// fault-induced hang (a corrupted loop counter spinning to the watchdog)
  /// cost unhooked-execution time instead of per-lane callback time.
  bool done() const override;

  /// Planner stratification: count (and target) only candidate retirements
  /// of `op` whose inputs classify into `range` — `target` then indexes the
  /// matching candidates only. Continuation firing (sticky/warp models) is
  /// unaffected; it images the same physical fault.
  void restrict_to(isa::Opcode op, rtlfi::InputRange range) {
    restricted_ = true;
    r_op_ = op;
    r_range_ = range;
  }

  bool fired() const { return fired_; }
  /// Number of corrupted thread-destinations (1, or up to 32 for the
  /// warp-level model).
  unsigned corrupted_threads() const { return hits_; }
  /// Opcode of the corrupted instruction (valid once fired).
  isa::Opcode hit_opcode() const { return hit_op_; }
  /// Static instruction index of the first corruption (valid once fired).
  std::int32_t hit_pc() const { return hit_pc_; }
  /// Per-thread dynamic-instruction index of the first corruption (the
  /// retirement counter value at the shot; valid once fired).
  std::uint64_t hit_dyn_index() const { return hit_dyn_index_; }
  /// Relative error applied (RelativeError model, FP destinations).
  double applied_rel_error() const { return applied_rel_; }

 private:
  bool take_shot(const emu::RetireInfo& info);
  std::uint32_t corrupt_value(const emu::RetireInfo& info,
                              std::uint32_t value);

  FaultModel model_;
  std::uint64_t target_;
  std::uint64_t seen_ = 0;
  Rng rng_;
  const syndrome::Database* db_;
  bool memory_is_float_;
  rtl::FaultModel syndrome_model_;
  bool fired_ = false;
  unsigned hits_ = 0;
  isa::Opcode hit_op_ = isa::Opcode::NOP;
  std::uint64_t hit_dyn_index_ = 0;
  double applied_rel_ = 0.0;
  // Warp-level continuation state: keep corrupting lanes of the same
  // warp-instruction until the warp moves on.
  bool armed_ = true;
  std::int32_t hit_pc_ = -1;
  unsigned hit_cta_ = 0, hit_warp_ = 0;
  // Optional stratum restriction (planner).
  bool restricted_ = false;
  isa::Opcode r_op_ = isa::Opcode::NOP;
  rtlfi::InputRange r_range_ = rtlfi::InputRange::Small;
};

/// Software fault-injection campaign parameters.
struct Config {
  FaultModel model = FaultModel::SingleBitFlip;
  const syndrome::Database* db = nullptr;  ///< required for RelativeError
  /// Which RTL fault-model syndrome class the relative-error models sample
  /// from (falls back to Transient inside the database when the class was
  /// never characterized). StickyRelativeError campaigns typically set
  /// StuckAt1 to replay the stuck-at syndromes they image.
  rtl::FaultModel syndrome_model = rtl::FaultModel::Transient;
  std::size_t n_injections = 500;
  std::uint64_t seed = 1;
  /// Interpreter used by every launch of the campaign (golden and trials).
  /// SoA is the fast default; Scalar is the bit-identical reference path the
  /// equivalence tests and benchmarks compare against.
  emu::Interpreter interpreter = emu::Interpreter::SoA;
  /// Injection-loop parallelism: 0 resolves to ThreadPool::default_jobs()
  /// (GPUFI_JOBS or the hardware concurrency), 1 runs serial. The Result is
  /// identical for every value — injection i draws its target and hook seed
  /// from Rng(rng_derive(seed, i)).
  unsigned jobs = 0;
  /// Optional telemetry callback (injections done, injections/sec, ETA).
  exec::ProgressFn progress;
  /// Fire `progress` every this many injections; 0 = automatic throttle.
  std::size_t progress_interval = 0;
  /// Optional cooperative stop flag: a stopped token aborts the injection
  /// loop early (partial results must be discarded by the caller).
  const exec::CancelToken* cancel = nullptr;
  /// gpufi-fabric sharding: run only the global injection indices
  /// [shard_offset, shard_offset + shard_count) of the n_injections-trial
  /// campaign (shard_count == 0 runs it all; ranges must respect the
  /// exec::chunk_size(n_injections) alignment contract). Each shard repeats
  /// the deterministic golden profile run, so merging shard Results in
  /// offset order reproduces the whole campaign byte for byte.
  std::size_t shard_offset = 0;
  std::size_t shard_count = 0;
};

/// Outcome tallies for one software fault site (a static instruction).
struct SwSiteCounts {
  std::uint64_t hits = 0;
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;
  std::uint64_t due = 0;
};

/// Site → counts for a software campaign, keyed by (static pc, opcode).
/// The pc -1 bucket collects trials whose target draw landed past the
/// dynamic stream (e.g. a DUE killed the run before the target retired).
using SwSiteTable =
    std::map<std::pair<std::int32_t, isa::Opcode>, SwSiteCounts>;

/// Campaign outcome: the Program Vulnerability Factor data of Fig. 10 /
/// Table III.
struct Result {
  std::size_t injections = 0;
  std::size_t masked = 0;
  std::size_t sdc = 0;
  std::size_t due = 0;
  std::uint64_t candidate_instructions = 0;

  /// Per-(static pc, opcode) outcome tallies: which instruction each
  /// injection corrupted and what came of it (software-side attribution).
  SwSiteTable sites;
  /// Golden per-static-instruction retirement counts (emu::Profiler),
  /// indexed by pc — the residency denominator for normalizing `sites`.
  std::vector<std::uint64_t> pc_exec_counts;

  /// SDC PVF: probability that a fault which reached an architecturally
  /// visible state corrupts the application output.
  double pvf() const {
    return injections == 0 ? 0.0
                           : static_cast<double>(sdc) /
                                 static_cast<double>(injections);
  }
  double due_rate() const {
    return injections == 0 ? 0.0
                           : static_cast<double>(due) /
                                 static_cast<double>(injections);
  }
  /// 95% margin of error on the PVF.
  double margin_of_error() const;

  /// Accumulates another (partial) campaign's counters; candidate counts
  /// from golden profiling are max-combined (they describe the same app).
  void merge(const Result& other);
};

/// Runs a software fault-injection campaign on one application: one golden
/// run (profile + reference output), then `n_injections` runs with exactly
/// one corrupted dynamic instruction each.
Result run_sw_campaign(const App& app, const Config& cfg);

namespace detail {

/// One injection trial, shared by run_sw_campaign and the planner: resets
/// the reused `dev`, runs the app with `hook` attached, classifies the
/// outcome against `golden_out`, and records counters, the site-table entry
/// and the per-trial obs counters into `shard`.
void run_one_trial(const App& app, emu::Device& dev, InjectHook& hook,
                   const std::vector<std::uint32_t>& golden_out,
                   Result& shard);

}  // namespace detail

}  // namespace gpufi::swfi
