#include "swfi/planner.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "emu/profiler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gpufi::swfi {

using isa::Opcode;

std::string_view stratum_stop_name(StratumStop s) {
  switch (s) {
    case StratumStop::Converged: return "converged";
    case StratumStop::Budget: return "budget";
  }
  return "?";
}

namespace {

/// Seed-derivation stream tag separating planner batches from the fixed
/// campaign's per-trial streams ("plan" in ASCII).
constexpr std::uint64_t kPlannerStream = 0x706c616e;

/// Golden-pass hook: candidate census per (opcode x input range) stratum,
/// plus the per-pc execution profile for attribution.
struct StratifiedGoldenHook : emu::InstrumentHook {
  bool memory_is_float = true;
  std::uint64_t candidates = 0;
  std::map<std::pair<Opcode, rtlfi::InputRange>, std::uint64_t> strata;
  emu::Profiler profiler;

  void on_retire(const emu::RetireInfo& info, std::uint32_t&) override {
    note(info);
  }
  void on_pred_retire(const emu::RetireInfo& info, bool&) override {
    note(info);
  }
  void on_count(const emu::RetireInfo& info) override {
    profiler.on_count(info);
  }

  void note(const emu::RetireInfo& info) {
    const Opcode op = info.instr->op;
    if (!isa::is_injection_candidate(op)) return;
    ++candidates;
    ++strata[{op, classify_inputs(op, info.a, info.b, memory_is_float)}];
  }
};

double half_width(std::uint64_t successes, std::uint64_t n) {
  const auto iv = stats::wilson_interval(successes, n);
  return (iv.hi - iv.lo) / 2.0;
}

const std::vector<double>& stratum_trial_buckets() {
  static const std::vector<double> kBuckets = {8,   16,  32,   64,  128,
                                               256, 512, 1024, 2048, 4096};
  return kBuckets;
}

}  // namespace

PlanResult run_planned_campaign(const App& app, const Config& cfg,
                                const Plan& plan) {
  if (!plan.adaptive()) {
    // Fixed-trial mode: the exact legacy path, wrapped. Byte-identity of
    // `result` with run_sw_campaign is pinned by tests/planner_test.cpp.
    PlanResult pr;
    pr.result = run_sw_campaign(app, cfg);
    pr.planned_trials = cfg.n_injections;
    pr.pvf = pr.result.pvf();
    pr.pvf_half_width = half_width(pr.result.sdc, pr.result.injections);
    return pr;
  }

  obs::Span span("swfi.run_planned_campaign");
  span.set("app", app.name);
  span.set("model", fault_model_name(cfg.model));
  span.set("budget", static_cast<std::uint64_t>(cfg.n_injections));

  // Golden pass: reference output plus the stratified candidate census.
  StratifiedGoldenHook golden_hook;
  golden_hook.memory_is_float = app.memory_is_float;
  emu::Device golden(app.device_words);
  golden.set_interpreter(cfg.interpreter);
  {
    obs::Span golden_span("swfi.golden_profile");
    golden_span.set("app", app.name);
    if (!app.run(golden, &golden_hook))
      throw std::runtime_error("golden run failed for " + app.name);
  }
  const auto golden_out = app.read_output(golden);
  const std::uint64_t candidates = golden_hook.candidates;
  if (candidates == 0)
    throw std::runtime_error("no injectable instructions in " + app.name);

  PlanResult pr;
  pr.adaptive = true;
  pr.result.candidate_instructions = candidates;
  pr.result.pc_exec_counts = golden_hook.profiler.pc_counts();

  // Proportional budgets: each stratum gets its candidate-weighted share of
  // cfg.n_injections, floored at min_trials (tiny strata still need enough
  // trials for the interval to mean anything) and capped at max_trials.
  for (const auto& [key, count] : golden_hook.strata) {
    StratumResult s;
    s.op = key.first;
    s.range = key.second;
    s.candidates = count;
    const auto share = static_cast<std::size_t>(std::llround(
        static_cast<double>(cfg.n_injections) * static_cast<double>(count) /
        static_cast<double>(candidates)));
    s.budget = std::max(plan.min_trials, share);
    if (plan.max_trials > 0)
      s.budget = std::min(s.budget, std::max<std::size_t>(plan.max_trials, 1));
    pr.strata.push_back(s);
    pr.planned_trials += s.budget;
  }

  const bool obs_on = obs::enabled();
  for (std::size_t si = 0; si < pr.strata.size(); ++si) {
    StratumResult& s = pr.strata[si];
    if (cfg.cancel && cfg.cancel->stopped()) break;
    std::size_t batch_index = 0;
    while (s.trials < s.budget) {
      // Doubling batch schedule (min_trials first): a pure function of the
      // plan and the trials so far, so the batch boundaries — and with them
      // every per-trial seed — are jobs-invariant.
      const std::size_t batch =
          std::min(s.budget - s.trials,
                   std::max<std::size_t>(plan.min_trials, s.trials));
      exec::EngineConfig ec;
      ec.n_trials = std::max<std::size_t>(batch, 1);
      ec.seed = rng_derive(cfg.seed, kPlannerStream, si, batch_index);
      ec.jobs = cfg.jobs;
      ec.progress = cfg.progress;
      ec.progress_interval = cfg.progress_interval;
      ec.cancel = cfg.cancel;
      const Result batch_result = exec::run_trials<Result>(
          ec,
          [&] {
            auto dev = std::make_unique<emu::Device>(app.device_words);
            dev->set_interpreter(cfg.interpreter);
            return dev;
          },
          [&](std::unique_ptr<emu::Device>& dev, std::size_t, Rng& rng,
              Result& shard) {
            const std::uint64_t target = rng.below(s.candidates);
            InjectHook hook(cfg.model, target, rng(), cfg.db,
                            app.memory_is_float, cfg.syndrome_model);
            hook.restrict_to(s.op, s.range);
            detail::run_one_trial(app, *dev, hook, golden_out, shard);
          });
      s.trials += batch_result.injections;
      s.masked += batch_result.masked;
      s.sdc += batch_result.sdc;
      s.due += batch_result.due;
      pr.result.merge(batch_result);
      ++batch_index;
      if (cfg.cancel && cfg.cancel->stopped()) break;
      s.sdc_half_width = half_width(s.sdc, s.trials);
      if (s.trials >= plan.min_trials &&
          s.sdc_half_width <= plan.target_err) {
        s.stop = StratumStop::Converged;
        break;
      }
    }
    if (s.trials > 0) s.sdc_half_width = half_width(s.sdc, s.trials);
    if (s.stop != StratumStop::Converged) s.stop = StratumStop::Budget;
    if (obs_on) {
      obs::count(obs::label("gpufi_swfi_planner_stratum_stops_total",
                            "reason", stratum_stop_name(s.stop)));
      if (s.stop == StratumStop::Converged)
        obs::count("gpufi_swfi_planner_early_stops_total");
      obs::Registry::global()
          .histogram("gpufi_swfi_planner_stratum_trials",
                     stratum_trial_buckets())
          .observe(static_cast<double>(s.trials));
    }
  }

  // Keep candidate/profile data authoritative from the golden pass (merge
  // max-combines candidate counts, which would otherwise be fine, but be
  // explicit about the source).
  pr.result.candidate_instructions = candidates;

  std::size_t run_trials_total = 0;
  double pvf = 0.0, var = 0.0;
  for (const StratumResult& s : pr.strata) {
    run_trials_total += s.trials;
    if (s.trials == 0) continue;
    const double w = static_cast<double>(s.candidates) /
                     static_cast<double>(candidates);
    const double p = static_cast<double>(s.sdc) /
                     static_cast<double>(s.trials);
    pvf += w * p;
    var += w * w * s.sdc_half_width * s.sdc_half_width;
  }
  pr.pvf = pvf;
  pr.pvf_half_width = std::sqrt(var);
  pr.trials_saved = pr.planned_trials > run_trials_total
                        ? pr.planned_trials - run_trials_total
                        : 0;
  if (obs_on) {
    obs::count("gpufi_swfi_planner_campaigns_total");
    obs::count("gpufi_swfi_planner_trials_saved_total", pr.trials_saved);
  }
  span.set("trials", static_cast<std::uint64_t>(run_trials_total));
  span.set("saved", static_cast<std::uint64_t>(pr.trials_saved));
  return pr;
}

}  // namespace gpufi::swfi
