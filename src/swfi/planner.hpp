#pragma once

// ZOFI-style statistical campaign planner (arXiv 1906.09390): a software
// campaign only needs as many trials as its confidence target requires.
//
// The planner stratifies the injection space over (opcode x syndrome input
// range) — the same axes the RTL syndrome database is keyed by — sizes each
// stratum's trial budget proportionally to its share of the dynamic
// candidate stream, runs trials in deterministic per-stratum batches through
// exec::run_trials, and stops a stratum as soon as the Wilson interval on
// its SDC proportion is tighter than the requested half-width. The overall
// PVF is then the stratified estimator sum(w_s * p_s) with w_s the stratum's
// candidate weight, which is unbiased regardless of how early any stratum
// stopped (the stop rule looks only at precision, never at the estimate).
//
// Determinism: batch seeds derive from (campaign seed, stratum index, batch
// index), batch sizes are a pure function of the plan and the trial counts
// so far, and every batch runs through exec::run_trials — so the full
// PlanResult is byte-identical for any --jobs value.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/statistics.hpp"
#include "swfi/swfi.hpp"

namespace gpufi::swfi {

/// Adaptive sampling plan. Parsed from the shared CLI/serve vocabulary
/// "target_err=X[,min_trials=N][,max_trials=N]" (vocab::parse_plan).
struct Plan {
  /// Wilson half-width goal for each stratum's SDC proportion; <= 0 keeps
  /// the planner in fixed-trial mode (byte-identical to run_sw_campaign).
  double target_err = 0.0;
  /// Per-stratum floor before the stop rule is consulted (and the size of
  /// the first batch).
  std::size_t min_trials = 32;
  /// Hard per-stratum cap; 0 = the stratum's proportional budget share.
  std::size_t max_trials = 0;

  bool adaptive() const { return target_err > 0.0; }

  bool operator==(const Plan&) const = default;
};

/// Why a stratum stopped drawing trials.
enum class StratumStop : std::uint8_t {
  Converged,  ///< Wilson half-width reached target_err
  Budget,     ///< trial budget exhausted before convergence
};

std::string_view stratum_stop_name(StratumStop s);

/// One stratum of the injection space: the candidate retirements of one
/// opcode whose inputs fall in one syndrome magnitude class.
struct StratumResult {
  isa::Opcode op = isa::Opcode::NOP;
  rtlfi::InputRange range = rtlfi::InputRange::Small;
  std::uint64_t candidates = 0;  ///< dynamic candidates (golden profile)
  std::size_t budget = 0;        ///< trials a fixed campaign would spend here
  std::size_t trials = 0;        ///< trials actually run
  std::uint64_t masked = 0, sdc = 0, due = 0;
  StratumStop stop = StratumStop::Budget;
  double sdc_half_width = 1.0;  ///< Wilson half-width at stop time
};

/// Outcome of a planned campaign.
struct PlanResult {
  /// Merged campaign counters and site table across every stratum batch
  /// (stratum-major, batch order) — same shape as a fixed campaign's Result.
  Result result;
  std::vector<StratumResult> strata;
  bool adaptive = false;
  std::size_t planned_trials = 0;  ///< total budget without early stopping
  std::size_t trials_saved = 0;    ///< planned_trials - trials actually run
  /// Stratified SDC PVF estimate sum(w_s * p_s) and its half-width
  /// sqrt(sum(w_s^2 * hw_s^2)). In fixed mode these fall back to the plain
  /// campaign proportion and its Wilson half-width.
  double pvf = 0.0;
  double pvf_half_width = 0.0;
};

/// Runs a software campaign under `plan`. Fixed mode (!plan.adaptive())
/// delegates to run_sw_campaign, so `result` is byte-identical to the legacy
/// path; adaptive mode stratifies, early-stops, and reports what it saved.
/// cfg.n_injections is the total trial budget either way.
PlanResult run_planned_campaign(const App& app, const Config& cfg,
                                const Plan& plan);

}  // namespace gpufi::swfi
