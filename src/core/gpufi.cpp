#include "core/gpufi.hpp"

#include <unistd.h>

#include <filesystem>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"

namespace gpufi::core {

using rtlfi::InputRange;
using rtlfi::TileKind;

namespace {

/// Modules characterized for a given instruction (the functional units are
/// idle for memory/control instructions; Sec. V-B).
std::vector<rtl::Module> modules_for(isa::Opcode op) {
  using isa::OpClass;
  using rtl::Module;
  std::vector<Module> mods{Module::Scheduler, Module::PipelineRegs};
  switch (isa::op_class(op)) {
    case OpClass::Fp32:
      mods.push_back(Module::Fp32Fu);
      break;
    case OpClass::Int32:
      mods.push_back(Module::IntFu);
      break;
    case OpClass::Special:
      mods.push_back(Module::Sfu);
      mods.push_back(Module::SfuCtl);
      break;
    default:
      break;
  }
  return mods;
}

constexpr isa::Opcode kCharacterized[12] = {
    isa::Opcode::FADD, isa::Opcode::FMUL, isa::Opcode::FFMA,
    isa::Opcode::IADD, isa::Opcode::IMUL, isa::Opcode::IMAD,
    isa::Opcode::FSIN, isa::Opcode::FEXP, isa::Opcode::GLD,
    isa::Opcode::GST,  isa::Opcode::BRA,  isa::Opcode::ISETP,
};

/// One entry of the flattened characterization grid. The grid is enumerated
/// up front so campaigns can run on any worker in any order while seeds and
/// database ingestion stay a pure function of the campaign index.
struct CampaignDesc {
  bool tmxm = false;
  isa::Opcode op = isa::Opcode::NOP;
  InputRange range = InputRange::Small;
  rtl::Module module = rtl::Module::Scheduler;
  TileKind kind = TileKind::Max;
  rtl::FaultModel model = rtl::FaultModel::Transient;
};

std::vector<CampaignDesc> characterization_grid(
    const std::vector<rtl::FaultModel>& models) {
  // Model-major: the transient block (micro grid + t-MxM) keeps exactly the
  // grid indices of the transient-only era, so its derived seeds — and the
  // transient slice of the database — are byte-identical. Extra models
  // append whole micro grids after it; t-MxM patterns are characterized for
  // Transient only (a permanent fault corrupts every tile, which carries no
  // pattern information).
  std::vector<CampaignDesc> grid;
  for (rtl::FaultModel model : models) {
    for (isa::Opcode op : kCharacterized)
      for (unsigned r = 0; r < rtlfi::kNumRanges; ++r)
        for (rtl::Module module : modules_for(op)) {
          CampaignDesc d;
          d.op = op;
          d.range = static_cast<InputRange>(r);
          d.module = module;
          d.model = model;
          grid.push_back(d);
        }
    if (model != rtl::FaultModel::Transient) continue;
    for (rtl::Module site :
         {rtl::Module::Scheduler, rtl::Module::PipelineRegs})
      for (TileKind kind :
           {TileKind::Max, TileKind::Zero, TileKind::Random}) {
        CampaignDesc d;
        d.tmxm = true;
        d.module = site;
        d.kind = kind;
        grid.push_back(d);
      }
  }
  return grid;
}

}  // namespace

syndrome::Database build_syndrome_database(
    const RtlCharacterizationConfig& cfg) {
  const std::vector<CampaignDesc> grid =
      characterization_grid(cfg.fault_models);
  obs::Span span("core.build_syndrome_database");
  span.set("campaigns", static_cast<std::uint64_t>(grid.size()));
  obs::count("gpufi_core_db_builds_total");

  // Characterize in parallel across the grid (the inner trial loops run
  // serial: one campaign is small, the grid is the wide axis). Each
  // campaign's seed is derived from its grid index, never from a running
  // counter, so completion order cannot change any result.
  std::vector<rtlfi::CampaignResult> results(grid.size());
  exec::run_indexed(grid.size(), cfg.jobs, cfg.progress, [&](std::size_t i) {
    const CampaignDesc& d = grid[i];
    if (d.tmxm) {
      const auto w = rtlfi::make_tmxm(d.kind, static_cast<unsigned>(d.kind) + 1);
      rtlfi::CampaignConfig cc;
      cc.module = d.module;
      cc.n_faults = cfg.tmxm_faults;
      cc.seed = rng_derive(cfg.seed, i, 0);
      cc.jobs = 1;
      cc.acceleration = cfg.acceleration;
      cc.cancel = cfg.cancel;
      results[i] = rtlfi::run_campaign(w, cc);
      return;
    }
    const auto r = static_cast<unsigned>(d.range);
    rtlfi::CampaignResult merged;
    for (std::size_t v = 0; v < cfg.value_seeds; ++v) {
      const auto w = rtlfi::make_microbenchmark(d.op, d.range, 100 * r + v);
      rtlfi::CampaignConfig cc;
      cc.module = d.module;
      cc.n_faults = cfg.faults_per_campaign / cfg.value_seeds;
      cc.seed = rng_derive(cfg.seed, i, v + 1);
      cc.jobs = 1;
      cc.acceleration = cfg.acceleration;
      cc.fault_model = d.model;  // permanent window (duration 0 default)
      cc.cancel = cfg.cancel;
      merged.merge(rtlfi::run_campaign(w, cc));
    }
    results[i] = std::move(merged);
  }, cfg.cancel, cfg.progress_interval);
  if (cfg.cancel && cfg.cancel->stopped())
    throw std::runtime_error("syndrome database build cancelled");

  // Ingest in grid order: the database contents (and serialized bytes) are
  // independent of how the campaigns were scheduled.
  syndrome::Database db;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const CampaignDesc& d = grid[i];
    if (d.tmxm)
      db.add_tmxm_campaign(d.module, 8, 8, results[i]);
    else
      db.add_campaign(syndrome::Key{d.module, d.op, d.range, d.model},
                      results[i]);
  }
  db.finalize();
  return db;
}

syndrome::Database ensure_syndrome_database(
    const std::string& path, const RtlCharacterizationConfig& cfg) {
  if (std::filesystem::exists(path)) {
    obs::count("gpufi_core_db_loads_total");
    return syndrome::Database::load_file(path);
  }
  syndrome::Database db = build_syndrome_database(cfg);
  const auto dir = std::filesystem::path(path).parent_path();
  if (!dir.empty()) std::filesystem::create_directories(dir);
  // Write-then-rename so a concurrent builder (e.g. two serve workers racing
  // on a cold cache) can never expose a torn half-written database file.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  db.save_file(tmp);
  std::filesystem::rename(tmp, path);
  return db;
}

Models ensure_models(const std::string& dir, unsigned lenet_steps,
                     unsigned yolo_steps) {
  std::filesystem::create_directories(dir);
  const auto lenet_path = dir + "/lenet.gfnn";
  const auto yolo_path = dir + "/yololite.gfnn";
  Models m;
  if (std::filesystem::exists(lenet_path) &&
      std::filesystem::exists(yolo_path)) {
    m.lenet = nn::Network::load_file(lenet_path);
    m.yololite = nn::Network::load_file(yolo_path);
    // Quality numbers are recomputed on a fresh holdout.
    Rng rng(777);
    unsigned ok = 0;
    for (unsigned i = 0; i < 300; ++i) {
      const auto s = nn::make_digit(rng);
      ok += nn::classify(nn::host_forward(m.lenet, s.image)) == s.label;
    }
    m.lenet_accuracy = ok / 300.0;
    return m;
  }
  Rng rng(42);
  m.lenet = nn::make_lenet(rng);
  m.lenet_accuracy = nn::train_lenet(m.lenet, rng, lenet_steps);
  m.yololite = nn::make_yololite(rng);
  m.yolo_f1 = nn::train_yololite(m.yololite, rng, yolo_steps);
  m.lenet.save_file(lenet_path);
  m.yololite.save_file(yolo_path);
  return m;
}

attr::Report run_report(const ReportConfig& cfg) {
  obs::Span span("core.run_report");
  span.set("op", isa::mnemonic(cfg.op));

  const rtlfi::Workload w =
      rtlfi::make_microbenchmark(cfg.op, cfg.range, cfg.seed);

  std::vector<rtl::Module> modules;
  if (cfg.module) {
    modules.push_back(*cfg.module);
  } else {
    for (std::size_t i = 0; i < rtl::kNumModules; ++i)
      modules.push_back(static_cast<rtl::Module>(i));
  }

  rtlfi::CampaignConfig cc;
  cc.n_faults = cfg.n_faults;
  cc.jobs = cfg.jobs;
  cc.acceleration = cfg.acceleration;
  cc.fault_model = cfg.fault_model;
  cc.fault_duration = cfg.fault_duration;
  cc.burst_period = cfg.burst_period;
  cc.progress = cfg.progress;
  cc.progress_interval = cfg.progress_interval;
  cc.cancel = cfg.cancel;

  // The golden context (output, checkpoint ladder, liveness timeline) is a
  // pure function of the workload and acceleration geometry — compute it
  // once and share it across every module campaign.
  const rtlfi::GoldenContext golden = rtlfi::prepare_golden(w, cc);

  std::vector<attr::CampaignSlice> slices;
  for (const rtl::Module m : modules) {
    cc.module = m;
    // Per-module fault seed, derived so a single-module report reproduces
    // exactly that module's slice of the all-module report.
    cc.seed = rng_derive(cfg.seed, static_cast<std::uint64_t>(m));
    const rtlfi::CampaignResult r = rtlfi::run_campaign(w, cc, golden);
    attr::CampaignSlice slice;
    slice.module = std::string(rtl::module_name(m));
    slice.sites = r.attribution;
    slice.injected = r.injected;
    slices.push_back(std::move(slice));
  }

  return attr::build_report(w.name, *golden.liveness, slices);
}

}  // namespace gpufi::core
