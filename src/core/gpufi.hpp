#pragma once

#include <optional>
#include <string>
#include <vector>

#include "attr/attr.hpp"
#include "exec/engine.hpp"
#include "nn/network.hpp"
#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"
#include "syndrome/syndrome.hpp"

namespace gpufi::core {

/// Scale parameters for the RTL characterization that populates the
/// syndrome database. The paper runs 144 campaigns of >12000 faults
/// (1.7M+ injections); the defaults here are sized for a single-core
/// machine and can be raised via `paper_scale()`.
struct RtlCharacterizationConfig {
  std::size_t faults_per_campaign = 1500;
  std::size_t value_seeds = 2;     ///< input values averaged per range
  std::size_t tmxm_faults = 2500;  ///< per (site, tile kind)
  std::uint64_t seed = 2021;
  /// Parallelism across the characterization campaigns (0 resolves to
  /// ThreadPool::default_jobs()). Every campaign's seed is derived from
  /// (seed, campaign index), so the database is identical for every value.
  unsigned jobs = 0;
  /// RTL hot-path acceleration (byte-identical results at every level).
  rtlfi::Acceleration acceleration = rtlfi::Acceleration::CheckpointEarlyExit;
  /// Fault models characterized, one full micro-benchmark grid per model
  /// (model-major; Transient must come first when present so the default
  /// grid's indices — and thus every derived seed and the database bytes —
  /// are unchanged from the transient-only era). Non-transient models use
  /// permanent windows (duration 0); t-MxM pattern campaigns run for
  /// Transient only.
  std::vector<rtl::FaultModel> fault_models = {rtl::FaultModel::Transient};
  /// Optional telemetry (campaigns finished, campaigns/sec, ETA).
  exec::ProgressFn progress;
  /// Fire `progress` every this many finished campaigns; 0 = automatic.
  std::size_t progress_interval = 0;
  /// Optional cooperative stop flag. A cancelled build throws (a partial
  /// characterization must never be mistaken for — or saved as — the real
  /// database).
  const exec::CancelToken* cancel = nullptr;

  /// The paper's published campaign scale (Sec. V-B).
  static RtlCharacterizationConfig paper_scale() {
    RtlCharacterizationConfig c;
    c.faults_per_campaign = 12000 / 4;  // x4 value seeds = 12k per campaign
    c.value_seeds = 4;
    c.tmxm_faults = 12000;
    return c;
  }
};

/// Runs the full RTL characterization: every (module, instruction, input
/// range) of Table I / Fig. 4 plus the t-MxM mini-app on scheduler and
/// pipeline, and returns the populated, power-law-fitted syndrome database
/// — the two-level framework's hand-off artifact.
syndrome::Database build_syndrome_database(
    const RtlCharacterizationConfig& cfg = {});

/// Loads the syndrome database from `path`, or builds it with `cfg` and
/// saves it there first. The expensive RTL characterization therefore runs
/// once per configuration.
syndrome::Database ensure_syndrome_database(
    const std::string& path, const RtlCharacterizationConfig& cfg = {});

/// Parameters of a cross-layer attribution report: a micro-benchmark
/// workload bombarded per module, with every outcome joined to the
/// instruction live at the fault site.
struct ReportConfig {
  isa::Opcode op = isa::Opcode::FFMA;
  /// Module to bombard; nullopt runs all six (one campaign slice each).
  std::optional<rtl::Module> module;
  rtlfi::InputRange range = rtlfi::InputRange::Medium;
  std::size_t n_faults = 500;
  /// Workload value seed; each module campaign derives its fault seed as
  /// rng_derive(seed, module index), so a single-module report is
  /// byte-identical to that module's slice of the all-module report.
  std::uint64_t seed = 2021;
  unsigned jobs = 0;
  rtlfi::Acceleration acceleration = rtlfi::Acceleration::CheckpointEarlyExit;
  rtl::FaultModel fault_model = rtl::FaultModel::Transient;
  std::uint64_t fault_duration = 0;
  std::uint64_t burst_period = 8;
  exec::ProgressFn progress;
  std::size_t progress_interval = 0;
  const exec::CancelToken* cancel = nullptr;
};

/// Runs the attribution report: one golden run (shared across modules —
/// the liveness timeline and checkpoint ladder are module-independent),
/// then one campaign per requested module, aggregated into per-(module ×
/// static instruction) and per-opcode vulnerability tables. Deterministic:
/// identical bytes for every acceleration level and job count.
attr::Report run_report(const ReportConfig& cfg);

/// Trained CNNs used by the paper's CNN experiments.
struct Models {
  nn::Network lenet;
  nn::Network yololite;
  double lenet_accuracy = 0.0;
  double yolo_f1 = 0.0;
};

/// Trains LeNet and YoloLite on the synthetic datasets (or loads cached
/// weights from `dir` if present) and reports holdout quality.
Models ensure_models(const std::string& dir, unsigned lenet_steps = 4000,
                     unsigned yolo_steps = 4000);

}  // namespace gpufi::core
