#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "emu/device.hpp"
#include "emu/profiler.hpp"
#include "isa/isa.hpp"

namespace gpufi::emu {
namespace {

using namespace gpufi::isa;

// Kernel: out[tid] = tid * 2 + 1, flat 1D launch.
Program affine_kernel(std::uint32_t out_base) {
  KernelBuilder kb("affine");
  kb.mov(0, S(SReg::TID_X));                       // R0 = tid.x
  kb.mov(1, S(SReg::NTID_X));                      // R1 = ntid.x
  kb.mov(2, S(SReg::CTAID_X));                     // R2 = ctaid.x
  kb.imad(3, R(2), R(1), R(0));                    // R3 = global tid
  kb.imad(4, R(3), I(2), I(1));                    // R4 = 2*tid + 1
  kb.iadd(5, R(3), I(static_cast<std::int32_t>(out_base)));
  kb.gst(R(5), R(4));
  return kb.build();
}

TEST(Device, AllocatorBumpsAndThrows) {
  Device dev(128);
  EXPECT_EQ(dev.alloc(100), 0u);
  EXPECT_EQ(dev.alloc(28), 100u);
  EXPECT_THROW(dev.alloc(1), std::bad_alloc);
  dev.reset_allocator();
  EXPECT_EQ(dev.alloc(1), 0u);
}

TEST(Device, HostMemoryAccess) {
  Device dev(64);
  dev.write_word(3, 0xDEAD);
  EXPECT_EQ(dev.read_word(3), 0xDEADu);
  dev.write_float(4, 2.5f);
  EXPECT_EQ(dev.read_float(4), 2.5f);
  std::vector<std::uint32_t> buf{1, 2, 3};
  dev.copy_in(10, buf.data(), 3);
  std::vector<std::uint32_t> out(3);
  dev.copy_out(10, out.data(), 3);
  EXPECT_EQ(out, buf);
  dev.fill(20, 5, 7);
  EXPECT_EQ(dev.read_word(24), 7u);
}

TEST(Device, SingleThreadKernel) {
  Device dev(256);
  const auto out = dev.alloc(8);
  const auto r = dev.launch(affine_kernel(out), {1, 1, 1, 1});
  EXPECT_EQ(r.status, LaunchStatus::Ok);
  EXPECT_EQ(dev.read_word(out), 1u);  // 2*0+1
}

TEST(Device, MultiWarpMultiCtaKernel) {
  Device dev(4096);
  const auto out = dev.alloc(256);
  // 4 CTAs x 64 threads = 256 threads (2 warps per CTA).
  const auto r = dev.launch(affine_kernel(out), {4, 1, 64, 1});
  EXPECT_EQ(r.status, LaunchStatus::Ok);
  for (unsigned t = 0; t < 256; ++t)
    ASSERT_EQ(dev.read_word(out + t), 2 * t + 1) << t;
}

TEST(Device, PartialWarpIsHandled) {
  Device dev(256);
  const auto out = dev.alloc(40);
  const auto r = dev.launch(affine_kernel(out), {1, 1, 40, 1});  // 1.25 warps
  EXPECT_EQ(r.status, LaunchStatus::Ok);
  for (unsigned t = 0; t < 40; ++t) ASSERT_EQ(dev.read_word(out + t), 2 * t + 1);
}

TEST(Device, FloatPipelineEndToEnd) {
  Device dev(256);
  const auto in = dev.alloc(32);
  const auto out = dev.alloc(32);
  for (unsigned i = 0; i < 32; ++i)
    dev.write_float(in + i, static_cast<float>(i) * 0.5f);
  KernelBuilder kb("saxpy1");
  kb.mov(0, S(SReg::TID_X));
  kb.iadd(1, R(0), I(static_cast<std::int32_t>(in)));
  kb.gld(2, R(1));                 // x
  kb.ffma(3, R(2), F(2.0f), F(1.0f));  // 2x + 1
  kb.iadd(4, R(0), I(static_cast<std::int32_t>(out)));
  kb.gst(R(4), R(3));
  const auto r = dev.launch(kb.build(), {1, 1, 32, 1});
  ASSERT_EQ(r.status, LaunchStatus::Ok);
  for (unsigned i = 0; i < 32; ++i)
    ASSERT_EQ(dev.read_float(out + i), static_cast<float>(i) + 1.0f);
}

TEST(Device, IfElseDivergence) {
  Device dev(256);
  const auto out = dev.alloc(32);
  // out[tid] = tid < 10 ? 111 : 222
  KernelBuilder kb("diverge");
  kb.mov(0, S(SReg::TID_X));
  kb.isetp(0, CmpOp::LT, R(0), I(10));
  kb.if_begin(0);
  kb.movi(1, 111);
  kb.else_begin();
  kb.movi(1, 222);
  kb.if_end();
  kb.iadd(2, R(0), I(static_cast<std::int32_t>(out)));
  kb.gst(R(2), R(1));
  const auto r = dev.launch(kb.build(), {1, 1, 32, 1});
  ASSERT_EQ(r.status, LaunchStatus::Ok);
  for (unsigned t = 0; t < 32; ++t)
    ASSERT_EQ(dev.read_word(out + t), t < 10 ? 111u : 222u) << t;
}

TEST(Device, NestedDivergence) {
  Device dev(256);
  const auto out = dev.alloc(32);
  // if (tid < 16) { if (tid < 8) v=1 else v=2 } else v=3
  KernelBuilder kb("nested");
  kb.mov(0, S(SReg::TID_X));
  kb.isetp(0, CmpOp::LT, R(0), I(16));
  kb.isetp(1, CmpOp::LT, R(0), I(8));
  kb.if_begin(0);
  kb.if_begin(1);
  kb.movi(1, 1);
  kb.else_begin();
  kb.movi(1, 2);
  kb.if_end();
  kb.else_begin();
  kb.movi(1, 3);
  kb.if_end();
  kb.iadd(2, R(0), I(static_cast<std::int32_t>(out)));
  kb.gst(R(2), R(1));
  const auto r = dev.launch(kb.build(), {1, 1, 32, 1});
  ASSERT_EQ(r.status, LaunchStatus::Ok);
  for (unsigned t = 0; t < 32; ++t) {
    const std::uint32_t want = t < 8 ? 1 : t < 16 ? 2 : 3;
    ASSERT_EQ(dev.read_word(out + t), want) << t;
  }
}

TEST(Device, DataDependentLoopTripCounts) {
  Device dev(256);
  const auto out = dev.alloc(32);
  // Each thread sums 1..tid: different trip counts force repeated
  // divergence at the loop exit.
  KernelBuilder kb("tricount");
  kb.mov(0, S(SReg::TID_X));  // limit
  kb.movi(1, 0);              // i
  kb.movi(2, 0);              // acc
  kb.loop_begin();
  kb.isetp(0, CmpOp::LT, R(1), R(0));
  kb.loop_while(0);
  kb.iadd(1, R(1), I(1));
  kb.iadd(2, R(2), R(1));
  kb.loop_end();
  kb.iadd(3, R(0), I(static_cast<std::int32_t>(out)));
  kb.gst(R(3), R(2));
  const auto r = dev.launch(kb.build(), {1, 1, 32, 1});
  ASSERT_EQ(r.status, LaunchStatus::Ok);
  for (unsigned t = 0; t < 32; ++t)
    ASSERT_EQ(dev.read_word(out + t), t * (t + 1) / 2) << t;
}

TEST(Device, SharedMemoryAndBarrierReduce) {
  Device dev(256);
  const auto out = dev.alloc(4);
  // Block of 64: each thread stores tid to shared, thread 0 sums after bar.
  KernelBuilder kb("reduce");
  kb.shared(64);
  kb.mov(0, S(SReg::TID_X));
  kb.sts(R(0), R(0));
  kb.bar();
  kb.isetp(0, CmpOp::EQ, R(0), I(0));
  kb.if_begin(0);
  kb.movi(1, 0);  // i
  kb.movi(2, 0);  // acc
  kb.loop_begin();
  kb.isetp(1, CmpOp::LT, R(1), I(64));
  kb.loop_while(1);
  kb.lds(3, R(1));
  kb.iadd(2, R(2), R(3));
  kb.iadd(1, R(1), I(1));
  kb.loop_end();
  kb.movi(4, static_cast<std::int32_t>(out));
  kb.gst(R(4), R(2));
  kb.if_end();
  const auto r = dev.launch(kb.build(), {1, 1, 64, 1});
  ASSERT_EQ(r.status, LaunchStatus::Ok);
  EXPECT_EQ(dev.read_word(out), 64u * 63 / 2);
}

TEST(Device, TwoDimensionalIndexing) {
  Device dev(1024);
  const auto out = dev.alloc(64);
  // 2x2 grid of 4x4 blocks: out[gy*8+gx] = gy*8+gx
  KernelBuilder kb("idx2d");
  kb.mov(0, S(SReg::TID_X));
  kb.mov(1, S(SReg::TID_Y));
  kb.mov(2, S(SReg::CTAID_X));
  kb.mov(3, S(SReg::CTAID_Y));
  kb.imad(4, R(2), I(4), R(0));  // gx
  kb.imad(5, R(3), I(4), R(1));  // gy
  kb.imad(6, R(5), I(8), R(4));  // linear
  kb.iadd(7, R(6), I(static_cast<std::int32_t>(out)));
  kb.gst(R(7), R(6));
  const auto r = dev.launch(kb.build(), {2, 2, 4, 4});
  ASSERT_EQ(r.status, LaunchStatus::Ok);
  for (unsigned i = 0; i < 64; ++i) ASSERT_EQ(dev.read_word(out + i), i);
}

TEST(Device, OutOfBoundsLoadTraps) {
  Device dev(64);
  KernelBuilder kb("oob");
  kb.movi(0, 1 << 20);
  kb.gld(1, R(0));
  const auto r = dev.launch(kb.build(), {1, 1, 1, 1});
  EXPECT_EQ(r.status, LaunchStatus::Trap);
  EXPECT_NE(r.trap_reason.find("out-of-bounds"), std::string::npos);
}

TEST(Device, SharedOutOfBoundsTraps) {
  Device dev(64);
  KernelBuilder kb("oobs");
  kb.shared(8);
  kb.movi(0, 9);
  kb.sts(R(0), R(0));
  const auto r = dev.launch(kb.build(), {1, 1, 1, 1});
  EXPECT_EQ(r.status, LaunchStatus::Trap);
}

TEST(Device, InvalidPcTraps) {
  Device dev(64);
  Program p;
  Instr bra{.op = Opcode::BRA, .target = 1000};
  p.code.push_back(bra);
  p.code.push_back(Instr{.op = Opcode::EXIT});
  const auto r = dev.launch(p, {1, 1, 1, 1});
  EXPECT_EQ(r.status, LaunchStatus::Trap);
  EXPECT_NE(r.trap_reason.find("invalid PC"), std::string::npos);
}

TEST(Device, InfiniteLoopTimesOut) {
  Device dev(64);
  Program p;
  Instr bra{.op = Opcode::BRA, .target = 0};
  p.code.push_back(bra);
  p.code.push_back(Instr{.op = Opcode::EXIT});
  LaunchConfig cfg;
  cfg.max_retired = 10000;
  const auto r = dev.launch(p, {1, 1, 32, 1}, cfg);
  EXPECT_EQ(r.status, LaunchStatus::Timeout);
}

TEST(Device, GuardedExitRetiresSubset) {
  Device dev(256);
  const auto out = dev.alloc(32);
  // Threads >= 16 exit early; the rest write.
  KernelBuilder kb("earlyexit");
  kb.mov(0, S(SReg::TID_X));
  kb.isetp(0, CmpOp::GE, R(0), I(16));
  kb.if_begin(0);
  kb.exit();
  kb.if_end();
  kb.iadd(1, R(0), I(static_cast<std::int32_t>(out)));
  kb.gst(R(1), I(5));
  const auto r = dev.launch(kb.build(), {1, 1, 32, 1});
  ASSERT_EQ(r.status, LaunchStatus::Ok);
  for (unsigned t = 0; t < 16; ++t) ASSERT_EQ(dev.read_word(out + t), 5u);
  for (unsigned t = 16; t < 32; ++t) ASSERT_EQ(dev.read_word(out + t), 0u);
}

TEST(Device, SelAndPredicatedMove) {
  Device dev(256);
  const auto out = dev.alloc(32);
  KernelBuilder kb("sel");
  kb.mov(0, S(SReg::TID_X));
  kb.isetp(2, CmpOp::LT, R(0), I(7));
  kb.sel(1, I(100), I(200), 2);
  kb.pred(2).iadd(1, R(1), I(1));  // +1 only where P2
  kb.iadd(3, R(0), I(static_cast<std::int32_t>(out)));
  kb.gst(R(3), R(1));
  const auto r = dev.launch(kb.build(), {1, 1, 32, 1});
  ASSERT_EQ(r.status, LaunchStatus::Ok);
  for (unsigned t = 0; t < 32; ++t)
    ASSERT_EQ(dev.read_word(out + t), t < 7 ? 101u : 200u);
}

// Hook that corrupts the destination of one specific dynamic instruction.
class FlipHook : public InstrumentHook {
 public:
  explicit FlipHook(std::uint64_t target) : target_(target) {}
  void on_retire(const RetireInfo& info, std::uint32_t& value) override {
    if (info.dyn_index == target_) {
      value ^= 1u << 30;
      ++hits_;
    }
  }
  int hits() const { return hits_; }

 private:
  std::uint64_t target_;
  int hits_ = 0;
};

TEST(Device, HookCanCorruptOneInstruction) {
  Device dev(256);
  const auto out = dev.alloc(8);
  Program p = affine_kernel(out);

  // Golden run.
  Device golden(256);
  golden.alloc(8);
  ASSERT_EQ(golden.launch(p, {1, 1, 8, 1}).status, LaunchStatus::Ok);

  // Target the second IMAD (R4 = 2*tid + 1), retired at dyn 32..39: its
  // corrupted result is stored directly, so exactly one output element
  // changes. (Corrupting an earlier MOV of %ctaid would be masked by
  // 32-bit wraparound in the address IMAD.)
  FlipHook hook(35);
  LaunchConfig cfg;
  cfg.hook = &hook;
  ASSERT_EQ(dev.launch(p, {1, 1, 8, 1}, cfg).status, LaunchStatus::Ok);
  EXPECT_EQ(hook.hits(), 1);
  int mismatches = 0;
  for (unsigned t = 0; t < 8; ++t)
    mismatches += dev.read_word(out + t) != golden.read_word(out + t);
  EXPECT_EQ(mismatches, 1);  // exactly one thread's output corrupted
}

TEST(Device, RetireCountMatchesProfilerTotal) {
  Device dev(256);
  const auto out = dev.alloc(64);
  Profiler prof;
  LaunchConfig cfg;
  cfg.hook = &prof;
  const auto r = dev.launch(affine_kernel(out), {1, 1, 64, 1}, cfg);
  ASSERT_EQ(r.status, LaunchStatus::Ok);
  EXPECT_EQ(prof.total(), r.retired);
  EXPECT_EQ(prof.count(isa::Opcode::GST), 64u);
  EXPECT_EQ(prof.count(isa::Opcode::IMAD), 128u);
}

TEST(Profiler, ClassFractionsSumToOne) {
  Device dev(256);
  const auto out = dev.alloc(64);
  Profiler prof;
  LaunchConfig cfg;
  cfg.hook = &prof;
  ASSERT_EQ(dev.launch(affine_kernel(out), {1, 1, 64, 1}, cfg).status,
            LaunchStatus::Ok);
  double sum = 0;
  for (auto cls :
       {isa::OpClass::Fp32, isa::OpClass::Int32, isa::OpClass::Special,
        isa::OpClass::Memory, isa::OpClass::Control, isa::OpClass::Other}) {
    sum += prof.class_fraction(cls);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Device, DeterministicAcrossRuns) {
  Program p;
  {
    KernelBuilder kb("det");
    kb.mov(0, S(SReg::TID_X));
    kb.i2f(1, R(0));
    kb.fsin(2, R(1));
    kb.fexp(3, R(2));
    kb.iadd(4, R(0), I(0));
    kb.gst(R(4), R(3));
    p = kb.build();
  }
  Device a(256), b(256);
  ASSERT_EQ(a.launch(p, {1, 1, 32, 1}).status, LaunchStatus::Ok);
  ASSERT_EQ(b.launch(p, {1, 1, 32, 1}).status, LaunchStatus::Ok);
  for (unsigned i = 0; i < 32; ++i)
    ASSERT_EQ(a.read_word(i), b.read_word(i));
}

}  // namespace
}  // namespace gpufi::emu
