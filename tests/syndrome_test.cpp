#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "core/gpufi.hpp"
#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"
#include "syndrome/syndrome.hpp"

namespace gpufi::syndrome {
namespace {

using isa::Opcode;
using rtl::Module;
using rtlfi::InputRange;

// ---------------------------------------------------------------- Dist

TEST(Dist, IgnoresInvalidSamples) {
  Dist d;
  d.add(0.0);
  d.add(-1.0);
  d.add(std::numeric_limits<double>::infinity());
  d.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(d.count(), 0u);
  d.add(0.5);
  EXPECT_EQ(d.count(), 1u);
}

TEST(Dist, MedianAndHistogram) {
  Dist d;
  for (double x : {0.1, 0.2, 0.3, 0.4, 0.5}) d.add(x);
  EXPECT_NEAR(d.median(), 0.3, 1e-12);
  EXPECT_EQ(d.histogram().count(), 5u);
}

TEST(Dist, FitsPowerLawAndSamplesViaEquationOne) {
  Rng rng(1);
  PowerLaw truth{2.3, 1e-3, 0, 0};
  Dist d;
  for (int i = 0; i < 5000; ++i) d.add(truth.sample(rng));
  ASSERT_TRUE(d.fit());
  EXPECT_NEAR(d.power_law()->alpha, 2.3, 0.25);
  for (int i = 0; i < 100; ++i)
    EXPECT_GE(d.sample(rng), d.power_law()->x_min);
}

TEST(Dist, FallsBackToEmpiricalWithoutFit) {
  Rng rng(2);
  Dist d;
  for (int i = 0; i < 4; ++i) d.add(0.25);
  EXPECT_FALSE(d.fit());  // too few samples
  const double s = d.sample(rng);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

TEST(Dist, SyndromesAreNotGaussian) {
  // The paper: Shapiro-Wilk rejects normality for every syndrome
  // distribution (p < 0.05).
  Rng rng(3);
  PowerLaw pl{2.0, 1e-4, 0, 0};
  Dist d;
  for (int i = 0; i < 1000; ++i) d.add(pl.sample(rng));
  EXPECT_LT(d.shapiro_p(), 0.05);
}

// ------------------------------------------------------- pattern classify

std::vector<std::uint32_t> idx(std::initializer_list<std::uint32_t> l) {
  return {l};
}

TEST(Pattern, Classification8x8) {
  EXPECT_EQ(classify_pattern(idx({5}), 8, 8), Pattern::Single);
  EXPECT_EQ(classify_pattern(idx({8, 9, 10, 11, 12, 13, 14, 15}), 8, 8),
            Pattern::Row);
  EXPECT_EQ(classify_pattern(idx({8, 10, 13}), 8, 8), Pattern::Row);
  EXPECT_EQ(classify_pattern(idx({2, 10, 18, 26}), 8, 8), Pattern::Col);
  EXPECT_EQ(classify_pattern(idx({16, 17, 18, 19, 20, 21, 22, 23, 3, 11, 27,
                                  35, 43, 51, 59}),
                             8, 8),
            Pattern::RowCol);
  EXPECT_EQ(classify_pattern(idx({9, 10, 17, 18, 25, 26}), 8, 8),
            Pattern::Block);
  EXPECT_EQ(classify_pattern(idx({0, 9, 27, 45, 63, 12, 33}), 8, 8),
            Pattern::Random);
  std::vector<std::uint32_t> all;
  for (std::uint32_t i = 0; i < 64; ++i) all.push_back(i);
  EXPECT_EQ(classify_pattern(all, 8, 8), Pattern::All);
  all.pop_back();  // 63 of 64 still counts as "all (or almost all)"
  EXPECT_EQ(classify_pattern(all, 8, 8), Pattern::All);
}

TEST(Pattern, NamesAreDistinct) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kNumPatterns; ++i)
    names.insert(pattern_name(static_cast<Pattern>(i)));
  EXPECT_EQ(names.size(), kNumPatterns);
}

// ------------------------------------------------------------- database

Database tiny_db() {
  Database db;
  // FADD/M characterization from a real (small) RTL campaign.
  const auto w = rtlfi::make_microbenchmark(Opcode::FADD, InputRange::Medium,
                                            1);
  rtlfi::CampaignConfig cfg;
  cfg.module = Module::Fp32Fu;
  cfg.n_faults = 600;
  cfg.seed = 4;
  db.add_campaign(Key{Module::Fp32Fu, Opcode::FADD, InputRange::Medium},
                  rtlfi::run_campaign(w, cfg));
  // t-MxM pattern stats.
  const auto tw = rtlfi::make_tmxm(rtlfi::TileKind::Random, 1);
  rtlfi::CampaignConfig tcfg;
  tcfg.module = Module::Scheduler;
  tcfg.n_faults = 700;
  tcfg.seed = 5;
  db.add_tmxm_campaign(Module::Scheduler, 8, 8,
                       rtlfi::run_campaign(tw, tcfg));
  tcfg.module = Module::PipelineRegs;
  db.add_tmxm_campaign(Module::PipelineRegs, 8, 8,
                       rtlfi::run_campaign(tw, tcfg));
  db.finalize();
  return db;
}

TEST(Database, IngestsCampaignsAndSamples) {
  Database db = tiny_db();
  const Dist* d =
      db.find(Key{Module::Fp32Fu, Opcode::FADD, InputRange::Medium});
  ASSERT_NE(d, nullptr);
  EXPECT_GT(d->count(), 0u);
  Rng rng(6);
  const auto s =
      db.sample_relative_error(Opcode::FADD, InputRange::Medium, rng);
  ASSERT_TRUE(s.has_value());
  EXPECT_GT(*s, 0.0);
  EXPECT_FALSE(
      db.sample_relative_error(Opcode::IMUL, InputRange::Medium, rng));
}

TEST(Database, TileCorruptionSampling) {
  Database db = tiny_db();
  Rng rng(7);
  bool saw_multi = false;
  for (int i = 0; i < 50; ++i) {
    const auto tc = db.sample_tile_corruption(8, 8, rng);
    ASSERT_FALSE(tc.elements.empty());
    for (const auto& e : tc.elements) {
      EXPECT_LT(e.row, 8u);
      EXPECT_LT(e.col, 8u);
      EXPECT_GT(e.rel_error, 0.0);
    }
    saw_multi |= tc.elements.size() > 1;
  }
  EXPECT_TRUE(saw_multi);
}

TEST(Database, UntrainedTileCorruptionFallsBack) {
  Database db;
  Rng rng(8);
  const auto tc = db.sample_tile_corruption(8, 8, rng);
  EXPECT_EQ(tc.elements.size(), 1u);
}

TEST(Database, SerializationRoundTrip) {
  Database db = tiny_db();
  std::stringstream ss;
  db.save(ss);
  Database loaded = Database::load(ss);
  const Key key{Module::Fp32Fu, Opcode::FADD, InputRange::Medium};
  ASSERT_NE(loaded.find(key), nullptr);
  EXPECT_EQ(loaded.find(key)->count(), db.find(key)->count());
  EXPECT_NEAR(loaded.find(key)->median(), db.find(key)->median(), 1e-9);
  EXPECT_EQ(loaded.tmxm(Module::Scheduler).total(),
            db.tmxm(Module::Scheduler).total());
}

TEST(Database, LoadRejectsGarbage) {
  std::stringstream ss("not-a-db 7");
  EXPECT_THROW(Database::load(ss), std::runtime_error);
}

TEST(Database, LoadRejectsWrongSchemaVersionWithSchemaMismatch) {
  // A well-formed header with a stale version must raise the dedicated
  // SchemaMismatch (the CLI maps it to exit code 2), not a generic error.
  std::stringstream ss("gpufi-syndrome-db 1\n0\n");
  try {
    Database::load(ss);
    FAIL() << "expected SchemaMismatch";
  } catch (const SchemaMismatch& e) {
    EXPECT_EQ(e.found(), 1);
    EXPECT_NE(std::string(e.what()).find("schema version 1"),
              std::string::npos);
  }
}

TEST(Database, SavedHeaderCarriesTheSchemaVersion) {
  Database db;
  std::stringstream ss;
  db.save(ss);
  std::string magic;
  int version = 0;
  ss >> magic >> version;
  EXPECT_EQ(magic, "gpufi-syndrome-db");
  EXPECT_EQ(version, Database::kSchemaVersion);
}

TEST(Database, KeysSeparateFaultModelsAndRoundTrip) {
  // The same (module, op, range) under two fault models must stay two
  // distinct syndrome classes, across save/load.
  Database db;
  const auto w =
      rtlfi::make_microbenchmark(Opcode::FADD, InputRange::Medium, 1);
  rtlfi::CampaignConfig cfg;
  cfg.module = Module::Fp32Fu;
  cfg.n_faults = 400;
  cfg.seed = 4;
  db.add_campaign(Key{Module::Fp32Fu, Opcode::FADD, InputRange::Medium},
                  rtlfi::run_campaign(w, cfg));
  cfg.fault_model = rtl::FaultModel::StuckAt1;
  db.add_campaign(Key{Module::Fp32Fu, Opcode::FADD, InputRange::Medium,
                      rtl::FaultModel::StuckAt1},
                  rtlfi::run_campaign(w, cfg));
  db.finalize();
  ASSERT_EQ(db.keys().size(), 2u);

  std::stringstream ss;
  db.save(ss);
  Database loaded = Database::load(ss);
  const Key transient{Module::Fp32Fu, Opcode::FADD, InputRange::Medium};
  const Key stuck{Module::Fp32Fu, Opcode::FADD, InputRange::Medium,
                  rtl::FaultModel::StuckAt1};
  ASSERT_NE(loaded.find(transient), nullptr);
  ASSERT_NE(loaded.find(stuck), nullptr);
  EXPECT_EQ(loaded.find(transient)->count(), db.find(transient)->count());
  EXPECT_EQ(loaded.find(stuck)->count(), db.find(stuck)->count());
}

TEST(Database, SamplingFallsBackToTransientForUncharacterizedModels) {
  Database db = tiny_db();  // transient-only characterization
  Rng rng(9);
  // The stuck-at-1 class was never built: sampling must fall back to the
  // transient pool rather than return nothing.
  const auto s = db.sample_relative_error(Opcode::FADD, InputRange::Medium,
                                          rng, rtl::FaultModel::StuckAt1);
  ASSERT_TRUE(s.has_value());
  EXPECT_GT(*s, 0.0);
  // An opcode with no characterization at all still yields nullopt.
  EXPECT_FALSE(db.sample_relative_error(Opcode::IMUL, InputRange::Medium,
                                        rng, rtl::FaultModel::StuckAt1));
}

TEST(Database, TmxmStatsSeparateSites) {
  Database db = tiny_db();
  EXPECT_GT(db.tmxm(Module::Scheduler).total(), 0u);
  // multi_fraction over all multi patterns sums to 1.
  const auto& s = db.tmxm(Module::Scheduler);
  double sum = 0;
  for (std::size_t p = 1; p < kNumPatterns; ++p)
    sum += s.multi_fraction(static_cast<Pattern>(p));
  std::size_t multi = 0;
  for (std::size_t p = 1; p < kNumPatterns; ++p) multi += s.counts[p];
  if (multi > 0) {
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace gpufi::syndrome
