#include <gtest/gtest.h>

#include <bit>

#include "apps/apps.hpp"
#include "swfi/swfi.hpp"

namespace gpufi::swfi {
namespace {

TEST(ProfileHook, CandidateSetMatchesPolicy) {
  // Value-producing characterized instructions only.
  EXPECT_TRUE(ProfileHook::is_candidate(isa::Opcode::FADD));
  EXPECT_TRUE(ProfileHook::is_candidate(isa::Opcode::GLD));
  EXPECT_TRUE(ProfileHook::is_candidate(isa::Opcode::ISETP));
  EXPECT_FALSE(ProfileHook::is_candidate(isa::Opcode::BRA));
  EXPECT_FALSE(ProfileHook::is_candidate(isa::Opcode::GST));
  EXPECT_FALSE(ProfileHook::is_candidate(isa::Opcode::MOV));
  EXPECT_FALSE(ProfileHook::is_candidate(isa::Opcode::SHL));
}

TEST(InjectHook, SingleBitFlipFlipsExactlyOneBit) {
  InjectHook h(FaultModel::SingleBitFlip, 0, 1, nullptr, true);
  emu::RetireInfo info;
  isa::Instr instr{.op = isa::Opcode::FADD};
  info.instr = &instr;
  std::uint32_t v = 0x12345678;
  h.on_retire(info, v);
  EXPECT_TRUE(h.fired());
  EXPECT_EQ(std::popcount(v ^ 0x12345678u), 1);
  // Only one shot per run.
  std::uint32_t w = 0;
  h.on_retire(info, w);
  EXPECT_EQ(w, 0u);
}

TEST(InjectHook, DoubleBitFlipFlipsTwoBits) {
  InjectHook h(FaultModel::DoubleBitFlip, 0, 7, nullptr, true);
  emu::RetireInfo info;
  isa::Instr instr{.op = isa::Opcode::IMUL};
  info.instr = &instr;
  std::uint32_t v = 0;
  h.on_retire(info, v);
  EXPECT_EQ(std::popcount(v), 2);
}

TEST(InjectHook, TargetsTheNthCandidate) {
  InjectHook h(FaultModel::SingleBitFlip, 2, 1, nullptr, true);
  emu::RetireInfo info;
  isa::Instr instr{.op = isa::Opcode::IADD};
  info.instr = &instr;
  std::uint32_t v = 0;
  h.on_retire(info, v);
  EXPECT_EQ(v, 0u);  // candidate 0 skipped
  h.on_retire(info, v);
  EXPECT_EQ(v, 0u);  // candidate 1 skipped
  h.on_retire(info, v);
  EXPECT_NE(v, 0u);  // candidate 2 corrupted
  EXPECT_EQ(h.hit_opcode(), isa::Opcode::IADD);
}

TEST(InjectHook, NonCandidatesDoNotConsumeTheBudget) {
  InjectHook h(FaultModel::SingleBitFlip, 0, 1, nullptr, true);
  emu::RetireInfo info;
  isa::Instr mov{.op = isa::Opcode::MOV};
  info.instr = &mov;
  std::uint32_t v = 5;
  h.on_retire(info, v);
  EXPECT_EQ(v, 5u);  // MOV untouched and not counted
  isa::Instr add{.op = isa::Opcode::FADD};
  info.instr = &add;
  h.on_retire(info, v);
  EXPECT_NE(v, 5u);
}

TEST(InjectHook, PredicateInjectionInverts) {
  InjectHook h(FaultModel::RelativeError, 0, 1, nullptr, true);
  emu::RetireInfo info;
  isa::Instr setp{.op = isa::Opcode::ISETP};
  info.instr = &setp;
  bool p = true;
  h.on_pred_retire(info, p);
  EXPECT_FALSE(p);
}

TEST(InjectHook, RelativeErrorScalesFloats) {
  // Without a database the hook applies a relative error of 1.0 (value
  // doubles or zeroes); verify the multiplicative structure.
  for (std::uint64_t seed = 1; seed < 10; ++seed) {
    InjectHook h(FaultModel::RelativeError, 0, seed, nullptr, true);
    emu::RetireInfo info;
    isa::Instr f{.op = isa::Opcode::FMUL};
    info.instr = &f;
    info.a = std::bit_cast<std::uint32_t>(2.0f);
    info.b = std::bit_cast<std::uint32_t>(3.0f);
    std::uint32_t v = std::bit_cast<std::uint32_t>(6.0f);
    h.on_retire(info, v);
    const float out = std::bit_cast<float>(v);
    EXPECT_TRUE(out == 12.0f || out == 0.0f) << out;
    EXPECT_NEAR(h.applied_rel_error(), 1.0, 1e-12);
  }
}

TEST(InjectHook, RelativeErrorOnIntegersRounds) {
  InjectHook h(FaultModel::RelativeError, 0, 3, nullptr, false);
  emu::RetireInfo info;
  isa::Instr f{.op = isa::Opcode::IADD};
  info.instr = &f;
  info.a = 50;
  info.b = 50;
  std::uint32_t v = 100;
  h.on_retire(info, v);
  const auto out = static_cast<std::int32_t>(v);
  EXPECT_TRUE(out == 200 || out == 0) << out;
}

TEST(Campaign, MxMPvfIsVeryHigh) {
  // Table III: MxM PVF = 1.0 (essentially every reached fault shows).
  auto h = apps::make_mxm(16);
  Config cfg;
  cfg.model = FaultModel::SingleBitFlip;
  cfg.n_injections = 120;
  cfg.seed = 11;
  const auto r = run_sw_campaign(h.app, cfg);
  EXPECT_EQ(r.injections, 120u);
  EXPECT_GT(r.pvf(), 0.6);
}

TEST(Campaign, DeterministicForSeed) {
  auto h = apps::make_quicksort(256);
  Config cfg;
  cfg.model = FaultModel::SingleBitFlip;
  cfg.n_injections = 60;
  cfg.seed = 12;
  const auto a = run_sw_campaign(h.app, cfg);
  const auto b = run_sw_campaign(h.app, cfg);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.due, b.due);
}

TEST(Campaign, CountsConsistent) {
  auto h = apps::make_lava(1, 32);
  Config cfg;
  cfg.model = FaultModel::DoubleBitFlip;
  cfg.n_injections = 80;
  cfg.seed = 13;
  const auto r = run_sw_campaign(h.app, cfg);
  EXPECT_EQ(r.masked + r.sdc + r.due, r.injections);
  EXPECT_GT(r.candidate_instructions, 0u);
}

TEST(Campaign, MarginOfErrorReported) {
  auto h = apps::make_lava(1, 32);
  Config cfg;
  cfg.n_injections = 100;
  const auto r = run_sw_campaign(h.app, cfg);
  EXPECT_GT(r.margin_of_error(), 0.0);
  EXPECT_LT(r.margin_of_error(), 0.15);
}

}  // namespace
}  // namespace gpufi::swfi

namespace gpufi::swfi {
namespace {

TEST(InjectHook, WarpModelCorruptsWholeWarpOnce) {
  InjectHook h(FaultModel::WarpRelativeError, 0, 1, nullptr, true);
  isa::Instr f{.op = isa::Opcode::FADD};
  // One warp instruction retiring 32 lanes.
  for (unsigned lane = 0; lane < 32; ++lane) {
    emu::RetireInfo info;
    info.instr = &f;
    info.pc = 7;
    info.thread = emu::ThreadId{0, 0, lane, lane};
    std::uint32_t v = std::bit_cast<std::uint32_t>(2.0f);
    h.on_retire(info, v);
    EXPECT_NE(std::bit_cast<float>(v), 2.0f) << lane;
  }
  EXPECT_EQ(h.corrupted_threads(), 32u);
  // A different instruction from the same warp disarms the fault...
  isa::Instr g{.op = isa::Opcode::IADD};
  emu::RetireInfo other;
  other.instr = &g;
  other.pc = 8;
  other.thread = emu::ThreadId{0, 0, 0, 0};
  std::uint32_t w = 5;
  h.on_retire(other, w);
  EXPECT_EQ(w, 5u);
  // ...so re-executing the original PC (a loop) is NOT corrupted again.
  emu::RetireInfo again;
  again.instr = &f;
  again.pc = 7;
  again.thread = emu::ThreadId{0, 0, 0, 0};
  std::uint32_t v2 = std::bit_cast<std::uint32_t>(2.0f);
  h.on_retire(again, v2);
  EXPECT_EQ(std::bit_cast<float>(v2), 2.0f);
  EXPECT_EQ(h.corrupted_threads(), 32u);
}

TEST(InjectHook, WarpModelStopsAtOtherWarp) {
  InjectHook h(FaultModel::WarpRelativeError, 0, 2, nullptr, true);
  isa::Instr f{.op = isa::Opcode::FMUL};
  emu::RetireInfo a;
  a.instr = &f;
  a.pc = 3;
  a.thread = emu::ThreadId{0, 0, 0, 0};
  std::uint32_t v = std::bit_cast<std::uint32_t>(1.0f);
  h.on_retire(a, v);
  EXPECT_NE(std::bit_cast<float>(v), 1.0f);
  emu::RetireInfo b = a;
  b.thread.warp = 1;  // same PC, different warp: untouched
  std::uint32_t u = std::bit_cast<std::uint32_t>(1.0f);
  h.on_retire(b, u);
  EXPECT_EQ(std::bit_cast<float>(u), 1.0f);
}

TEST(InjectHook, StickyModelRefiresOnSamePcOnly) {
  // A stuck-at flip-flop keeps corrupting the same static instruction:
  // every later retirement of the hit pc fires again — any thread, any
  // warp, including loop re-executions — while other pcs stay clean.
  InjectHook h(FaultModel::StickyRelativeError, 0, 1, nullptr, true);
  isa::Instr f{.op = isa::Opcode::FADD};
  emu::RetireInfo first;
  first.instr = &f;
  first.pc = 7;
  first.thread = emu::ThreadId{0, 0, 0, 0};
  std::uint32_t v = std::bit_cast<std::uint32_t>(2.0f);
  h.on_retire(first, v);
  EXPECT_TRUE(h.fired());
  EXPECT_NE(std::bit_cast<float>(v), 2.0f);

  // Same pc, a different warp: still corrupted.
  emu::RetireInfo other_warp = first;
  other_warp.thread = emu::ThreadId{0, 1, 0, 32};
  std::uint32_t w = std::bit_cast<std::uint32_t>(2.0f);
  h.on_retire(other_warp, w);
  EXPECT_NE(std::bit_cast<float>(w), 2.0f);

  // A different pc: untouched, and it does NOT disarm the fault.
  isa::Instr g{.op = isa::Opcode::IADD};
  emu::RetireInfo elsewhere;
  elsewhere.instr = &g;
  elsewhere.pc = 8;
  elsewhere.thread = emu::ThreadId{0, 0, 0, 0};
  std::uint32_t u = 5;
  h.on_retire(elsewhere, u);
  EXPECT_EQ(u, 5u);

  // Loop re-execution of the hit pc: corrupted again (unlike the warp
  // model, which has transient semantics).
  emu::RetireInfo again = first;
  std::uint32_t v2 = std::bit_cast<std::uint32_t>(2.0f);
  h.on_retire(again, v2);
  EXPECT_NE(std::bit_cast<float>(v2), 2.0f);
  EXPECT_EQ(h.corrupted_threads(), 3u);
}

TEST(InjectHook, StickyModelHitCapBoundsCorruption) {
  InjectHook h(FaultModel::StickyRelativeError, 0, 4, nullptr, true);
  isa::Instr f{.op = isa::Opcode::FMUL};
  emu::RetireInfo info;
  info.instr = &f;
  info.pc = 3;
  info.thread = emu::ThreadId{0, 0, 0, 0};
  for (unsigned i = 0; i < InjectHook::kStickyMaxHits + 50; ++i) {
    std::uint32_t v = std::bit_cast<std::uint32_t>(1.0f);
    h.on_retire(info, v);
  }
  EXPECT_EQ(h.corrupted_threads(), InjectHook::kStickyMaxHits);
}

TEST(Campaign, StickyModelIsDeterministicAcrossJobs) {
  auto h = apps::make_mxm(16);
  Config cfg;
  cfg.model = FaultModel::StickyRelativeError;
  cfg.n_injections = 60;
  cfg.seed = 31;
  cfg.jobs = 1;
  const auto a = run_sw_campaign(h.app, cfg);
  cfg.jobs = 4;
  const auto b = run_sw_campaign(h.app, cfg);
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.due, b.due);
}

TEST(Campaign, StickyModelPvfAtLeastSingleShot) {
  // Re-corrupting every re-execution of the hit pc can only widen the
  // blast radius relative to a one-shot relative error on the same sites.
  auto h = apps::make_mxm(16);
  Config single;
  single.model = FaultModel::RelativeError;
  single.n_injections = 80;
  single.seed = 33;
  const auto rs = run_sw_campaign(h.app, single);
  Config sticky = single;
  sticky.model = FaultModel::StickyRelativeError;
  const auto rt = run_sw_campaign(h.app, sticky);
  EXPECT_GE(rt.pvf() + 0.05, rs.pvf());
}

TEST(Campaign, WarpModelPvfAtLeastSingleThread) {
  auto h = apps::make_mxm(16);
  swfi::Config single;
  single.model = FaultModel::RelativeError;
  single.n_injections = 80;
  single.seed = 21;
  const auto rs = run_sw_campaign(h.app, single);
  swfi::Config warp = single;
  warp.model = FaultModel::WarpRelativeError;
  const auto rw = run_sw_campaign(h.app, warp);
  EXPECT_GE(rw.pvf() + 0.05, rs.pvf());
}

}  // namespace
}  // namespace gpufi::swfi
