#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "nn/gpu_infer.hpp"
#include "nn/network.hpp"

namespace gpufi::nn {
namespace {

TEST(Network, LeNetShapes) {
  Rng rng(1);
  const auto net = make_lenet(rng);
  ASSERT_EQ(net.convs.size(), 2u);
  ASSERT_EQ(net.fcs.size(), 3u);
  EXPECT_EQ(net.convs[0].out_h(), 12u);
  EXPECT_EQ(net.convs[1].out_h(), 4u);
  EXPECT_EQ(net.fcs[0].in_n, 256u);
  EXPECT_EQ(net.fcs[2].out_n, 10u);
  EXPECT_GT(net.total_params(), 40000u);
}

TEST(Network, YoloLiteShapes) {
  Rng rng(1);
  const auto net = make_yololite(rng);
  ASSERT_EQ(net.convs.size(), 3u);
  EXPECT_TRUE(net.fcs.empty());
  EXPECT_EQ(net.convs.back().out_c, kDetChannels);
  EXPECT_EQ(net.convs.back().out_h(), kDetGrid);
}

TEST(Network, HostForwardOutputSizes) {
  Rng rng(2);
  const auto lenet = make_lenet(rng);
  EXPECT_EQ(host_forward(lenet, Tensor(1, 28, 28)).size(), 10u);
  const auto yolo = make_yololite(rng);
  EXPECT_EQ(host_forward(yolo, Tensor(1, 32, 32)).size(),
            kDetChannels * kDetGrid * kDetGrid);
}

TEST(Network, GradientCheckPasses) {
  Rng rng(3);
  EXPECT_LT(gradient_check(rng), 2e-2);
}

TEST(Network, SerializationRoundTrip) {
  Rng rng(4);
  auto net = make_lenet(rng);
  const std::string path = "/tmp/gpufi_nn_test.gfnn";
  net.save_file(path);
  const auto loaded = Network::load_file(path);
  EXPECT_EQ(loaded.name, net.name);
  ASSERT_EQ(loaded.convs.size(), net.convs.size());
  EXPECT_EQ(loaded.convs[1].weights, net.convs[1].weights);
  EXPECT_EQ(loaded.fcs[0].bias, net.fcs[0].bias);
  std::remove(path.c_str());
}

TEST(Dataset, DigitsAreDeterministicAndLabelled) {
  Rng a(9), b(9);
  const auto s1 = make_digit(a), s2 = make_digit(b);
  EXPECT_EQ(s1.label, s2.label);
  EXPECT_EQ(s1.image.data, s2.image.data);
  EXPECT_LT(s1.label, 10u);
  double sum = 0;
  for (float v : s1.image.data) sum += v;
  EXPECT_GT(sum, 1.0);  // a glyph was drawn
}

TEST(Dataset, ScenesHaveObjectsInBounds) {
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    const auto s = make_scene(rng);
    ASSERT_GE(s.objects.size(), 1u);
    ASSERT_LE(s.objects.size(), 2u);
    for (const auto& o : s.objects) {
      EXPECT_LT(o.cls, kDetClasses);
      EXPECT_GT(o.bw, 0.1f);
      EXPECT_GE(o.cx - o.bw / 2, -0.05f);
      EXPECT_LE(o.cx + o.bw / 2, 1.05f);
    }
  }
}

TEST(Metrics, IouBasics) {
  Detection a{0, 0.5f, 0.5f, 0.2f, 0.2f, 1.0f};
  EXPECT_NEAR(iou(a, a), 1.0f, 1e-6);
  Detection b{0, 0.9f, 0.9f, 0.1f, 0.1f, 1.0f};
  EXPECT_NEAR(iou(a, b), 0.0f, 1e-6);
  Detection c{0, 0.55f, 0.5f, 0.2f, 0.2f, 1.0f};
  EXPECT_GT(iou(a, c), 0.4f);
}

TEST(Metrics, DetectionsMatchRules) {
  Detection a{0, 0.5f, 0.5f, 0.2f, 0.2f, 1.0f};
  Detection a2 = a;
  a2.cx = 0.52f;
  EXPECT_TRUE(detections_match({a}, {a2}));
  Detection wrong_cls = a;
  wrong_cls.cls = 1;
  EXPECT_FALSE(detections_match({a}, {wrong_cls}));
  EXPECT_FALSE(detections_match({a}, {}));
  EXPECT_FALSE(detections_match({}, {a}));
  EXPECT_TRUE(detections_match({}, {}));
}

TEST(Training, LeNetLearnsQuickly) {
  Rng rng(42);
  auto net = make_lenet(rng);
  const double acc = train_lenet(net, rng, 1200);
  EXPECT_GT(acc, 0.85);
}

TEST(Training, YoloLiteLearnsSomething) {
  Rng rng(42);
  auto net = make_yololite(rng);
  const double f1 = train_yololite(net, rng, 1500);
  EXPECT_GT(f1, 0.05);
}

TEST(GpuInference, MatchesHostForward) {
  Rng rng(5);
  auto net = make_lenet(rng);
  (void)train_lenet(net, rng, 200);  // non-degenerate weights
  GpuInference infer(net);
  EXPECT_EQ(infer.gemm_layers(), 5u);
  Rng ir(6);
  const auto img = make_digit(ir).image;
  emu::Device dev(infer.device_words());
  const auto out = infer.run(dev, img, {});
  ASSERT_TRUE(out.has_value());
  const auto host = host_forward(net, img);
  ASSERT_EQ(out->size(), host.size());
  for (std::size_t i = 0; i < host.size(); ++i)
    EXPECT_NEAR((*out)[i], host[i], 1e-4f);
}

TEST(GpuInference, LayerGeometry) {
  Rng rng(7);
  const auto net = make_lenet(rng);
  GpuInference infer(net);
  // conv1: M=6, N=576 (24x24 positions).
  EXPECT_EQ(infer.layer_dims(0), (std::pair<unsigned, unsigned>{6, 576}));
  // fc3: 10x1.
  EXPECT_EQ(infer.layer_dims(4), (std::pair<unsigned, unsigned>{10, 1}));
  const auto [tm, tn] = infer.layer_tiles(0);
  EXPECT_EQ(tm, 1u);
  EXPECT_EQ(tn, 72u);
}

TEST(GpuInference, TileFaultCorruptsOutput) {
  Rng rng(8);
  auto net = make_lenet(rng);
  (void)train_lenet(net, rng, 200);
  GpuInference infer(net);
  Rng ir(6);
  const auto img = make_digit(ir).image;
  emu::Device d1(infer.device_words()), d2(infer.device_words());
  const auto golden = infer.run(d1, img, {});
  TileFault tf;
  tf.layer = 0;
  tf.tile_row = 0;
  tf.tile_col = 3;
  tf.corruption.pattern = syndrome::Pattern::All;
  for (unsigned r = 0; r < 8; ++r)
    for (unsigned c = 0; c < 8; ++c)
      tf.corruption.elements.push_back({r, c, 5.0});
  InferOptions opts;
  opts.tile_fault = &tf;
  const auto faulty = infer.run(d2, img, opts);
  ASSERT_TRUE(golden && faulty);
  EXPECT_NE(*golden, *faulty);
}

TEST(CnnCampaign, BitFlipCountsConsistent) {
  Rng rng(9);
  auto net = make_lenet(rng);
  (void)train_lenet(net, rng, 300);
  const auto r = run_cnn_campaign(net, CnnTask::Classification,
                                  CnnFaultModel::SingleBitFlip, nullptr, 25,
                                  77);
  EXPECT_EQ(r.injections, 25u);
  EXPECT_EQ(r.masked + r.sdc + r.due, r.injections);
  EXPECT_LE(r.critical, r.sdc);
}

TEST(CnnCampaign, TileModelProducesCriticalsOnLeNet) {
  Rng rng(10);
  auto net = make_lenet(rng);
  (void)train_lenet(net, rng, 800);
  // Untrained DB falls back to single-element corruption; supply a crafted
  // whole-tile database instead via nullptr + explicit check elsewhere.
  const auto r = run_cnn_campaign(net, CnnTask::Classification,
                                  CnnFaultModel::TiledMxM, nullptr, 40, 78);
  EXPECT_EQ(r.injections, 40u);
  // Even single-element tile corruption must at least produce SDCs.
  EXPECT_GT(r.sdc + r.masked, 0u);
}

}  // namespace
}  // namespace gpufi::nn
