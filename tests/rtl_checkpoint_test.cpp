// Tests for the Sm checkpoint/restore fast path: digest determinism,
// snapshot -> mutate -> restore round-trips (including mid-beat and
// SFU-busy capture points), the golden checkpoint ladder, and the
// resume-equals-fresh-replay guarantee the campaign acceleration rests on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "rtl/layouts.hpp"
#include "rtl/sm.hpp"
#include "rtlfi/microbench.hpp"

namespace gpufi::rtl {
namespace {

using rtlfi::Workload;

Workload ffma_workload() {
  return rtlfi::make_microbenchmark(isa::Opcode::FFMA,
                                    rtlfi::InputRange::Medium, 7);
}

Workload sfu_workload() {
  return rtlfi::make_microbenchmark(isa::Opcode::FEXP,
                                    rtlfi::InputRange::Medium, 7);
}

/// Runs the workload once with digest tracking on; returns the final digest.
std::uint64_t run_and_digest(const Workload& w) {
  Sm sm;
  sm.enable_digest_tracking();
  w.setup(sm);
  EXPECT_EQ(sm.run(w.program, w.dims).status, RunStatus::Ok);
  return sm.state_digest();
}

// ------------------------------------------------------------ digest basics

TEST(StateDigest, DeterministicAcrossIndependentSms) {
  const auto w = ffma_workload();
  EXPECT_EQ(run_and_digest(w), run_and_digest(w));
}

TEST(StateDigest, DistinguishesDifferentInputs) {
  EXPECT_NE(run_and_digest(ffma_workload()),
            run_and_digest(rtlfi::make_microbenchmark(
                isa::Opcode::FFMA, rtlfi::InputRange::Medium, 8)));
}

TEST(StateDigest, EnablingTrackingMidwayMatchesAlwaysOn) {
  // The incremental digest maintained across a run must equal the digest
  // recomputed from the final at-rest state.
  const auto w = ffma_workload();
  Sm tracked;
  tracked.enable_digest_tracking();
  w.setup(tracked);
  ASSERT_EQ(tracked.run(w.program, w.dims).status, RunStatus::Ok);

  Sm late;
  w.setup(late);
  ASSERT_EQ(late.run(w.program, w.dims).status, RunStatus::Ok);
  late.enable_digest_tracking();  // recomputes from live state
  EXPECT_EQ(tracked.state_digest(), late.state_digest());
}

TEST(StateDigest, FlipChangesAndRevertsDigest) {
  Sm sm;
  sm.enable_digest_tracking();
  const auto before = sm.state_digest();
  auto& bank = const_cast<ModuleState&>(sm.module_state(Module::Scheduler));
  bank.flip(100);
  EXPECT_NE(sm.state_digest(), before);
  bank.flip(100);
  EXPECT_EQ(sm.state_digest(), before);
}

// ------------------------------------------------------- at-rest round-trip

TEST(SmCheckpointTest, AtRestRoundTripRestoresMemoryAndDigest) {
  const auto w = ffma_workload();
  Sm sm;
  w.setup(sm);
  ASSERT_EQ(sm.run(w.program, w.dims).status, RunStatus::Ok);

  const SmCheckpoint c = sm.checkpoint();
  const auto global_before = sm.global();
  const auto digest_before = sm.state_digest();
  ASSERT_EQ(c.digest, digest_before);

  // Scribble over memory and a flip-flop bank.
  sm.write_word(0, 0xdeadbeef);
  sm.write_word(500000, 42);  // untouched-high address: extends the prefix
  const_cast<ModuleState&>(sm.module_state(Module::PipelineRegs)).flip(3);
  EXPECT_NE(sm.state_digest(), digest_before);

  sm.restore(c);
  EXPECT_EQ(sm.state_digest(), digest_before);
  EXPECT_EQ(sm.global(), global_before);
  EXPECT_EQ(sm.read_word(500000), 0u);
}

// --------------------------------------------- mid-instruction round-trips

/// Captures restorable checkpoints on a dense cycle range of a traced run
/// and returns the trace (checkpoints include the quiescent ladder rungs).
GoldenTrace trace_with_captures(const Workload& w, std::uint64_t first,
                                std::uint64_t count) {
  std::vector<std::uint64_t> grab;
  for (std::uint64_t c = first; c < first + count; ++c) grab.push_back(c);
  GoldenTrace trace;
  Sm sm;
  w.setup(sm);
  EXPECT_EQ(sm.run_traced(w.program, w.dims, trace, 64, 0, grab).status,
            RunStatus::Ok);
  return trace;
}

/// Restores `c` into a fresh Sm and checks bit-exact state fidelity.
void expect_restores_exactly(const SmCheckpoint& c) {
  Sm sm;
  sm.enable_digest_tracking();
  sm.restore(c);
  EXPECT_EQ(sm.state_digest(), c.digest);
  for (std::size_t m = 0; m < kNumModules; ++m) {
    EXPECT_EQ(sm.module_state(static_cast<Module>(m)).bits(),
              c.modules[m].bits)
        << "module " << m;
  }
}

TEST(SmCheckpointTest, MidBeatCaptureRestoresExactly) {
  const auto w = ffma_workload();
  const auto trace = trace_with_captures(w, 200, 40);
  const auto& beat_f = layouts().scheduler.beat;
  bool found_mid_beat = false;
  for (const auto& c : trace.checkpoints) {
    if (c.quiescent) continue;
    if (c.modules[static_cast<std::size_t>(Module::Scheduler)].bits.get_field(
            beat_f.offset, beat_f.width) == 0)
      continue;
    found_mid_beat = true;
    expect_restores_exactly(c);
  }
  EXPECT_TRUE(found_mid_beat)
      << "no capture landed on a non-zero beat counter";
}

TEST(SmCheckpointTest, SfuBusyCaptureRestoresExactly) {
  // The SFU controller is only busy inside an FSIN/FEXP instruction, so
  // capture the whole run and pick the busy cycles out of the trace.
  const auto w = sfu_workload();
  Sm probe;
  w.setup(probe);
  const auto golden = probe.run(w.program, w.dims);
  ASSERT_EQ(golden.status, RunStatus::Ok);
  const auto trace = trace_with_captures(w, 1, golden.cycles);
  const auto& busy_f = layouts().sfu_ctl.busy;
  std::size_t found_busy = 0;
  for (const auto& c : trace.checkpoints) {
    if (c.quiescent) continue;
    if (c.modules[static_cast<std::size_t>(Module::SfuCtl)].bits.get_field(
            busy_f.offset, busy_f.width) == 0)
      continue;
    // Checking every busy capture would be slow for no extra coverage;
    // probe the first few (pipeline filling) and every 32nd after.
    if (found_busy < 4 || found_busy % 32 == 0) expect_restores_exactly(c);
    ++found_busy;
  }
  EXPECT_GT(found_busy, 0u) << "no capture landed on an SFU-busy cycle";
}

// ----------------------------------------------------- ladder and resuming

TEST(GoldenTraceTest, FloorReturnsNearestResumableRung) {
  const auto w = ffma_workload();
  GoldenTrace trace;
  Sm sm;
  w.setup(sm);
  ASSERT_EQ(sm.run_traced(w.program, w.dims, trace, 50).status,
            RunStatus::Ok);
  ASSERT_GE(trace.checkpoints.size(), 3u);
  ASSERT_EQ(trace.checkpoints.front().cycle, 0u);

  for (const std::uint64_t probe :
       {std::uint64_t{0}, std::uint64_t{1}, trace.result.cycles / 2,
        trace.result.cycles}) {
    const SmCheckpoint* f = trace.floor(probe);
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(f->quiescent);
    EXPECT_LE(f->cycle, probe);
    for (const auto& c : trace.checkpoints) {
      if (c.quiescent && c.cycle <= probe) EXPECT_LE(c.cycle, f->cycle);
    }
  }
}

TEST(GoldenTraceTest, TimelineCoversEveryQuiescentPointUpToTheEnd) {
  const auto w = ffma_workload();
  GoldenTrace trace;
  Sm sm;
  w.setup(sm);
  ASSERT_EQ(sm.run_traced(w.program, w.dims, trace, 50).status,
            RunStatus::Ok);
  EXPECT_FALSE(trace.digest_at.empty());
  // The final quiescent point (all warps done) is on the timeline, which
  // is what lets a converged trial claim the golden cycle count.
  EXPECT_TRUE(trace.digest_at.count(trace.result.cycles));
}

TEST(ResumeTest, ResumeFromEveryRungEqualsFreshRun) {
  // t-MxM: multi-instruction kernel with shared memory, branches, barriers.
  const auto w = rtlfi::make_tmxm(rtlfi::TileKind::Random, 3);
  GoldenTrace trace;
  Sm golden;
  w.setup(golden);
  ASSERT_EQ(golden.run_traced(w.program, w.dims, trace, 200).status,
            RunStatus::Ok);
  const auto golden_global = golden.global();

  // A fault scheduled far past the end never fires: the resumed run must
  // reproduce the golden suffix exactly from every rung.
  FaultSpec never;
  never.module = Module::Scheduler;
  never.bit = 0;
  never.cycle = std::uint64_t{1} << 40;

  ASSERT_GE(trace.checkpoints.size(), 2u);
  Sm sm;
  for (const auto& rung : trace.checkpoints) {
    if (!rung.quiescent) continue;
    const auto run = sm.resume_with_fault(w.program, w.dims, never,
                                          trace.result.cycles * 4 + 4096,
                                          rung);
    EXPECT_EQ(run.status, RunStatus::Ok);
    EXPECT_FALSE(run.converged);
    EXPECT_EQ(run.cycles, trace.result.cycles) << "rung @" << rung.cycle;
    EXPECT_EQ(sm.global(), golden_global) << "rung @" << rung.cycle;
  }
}

TEST(ResumeTest, RejectsNonResumableCheckpoint) {
  Sm sm;
  const SmCheckpoint c = sm.checkpoint();  // at-rest: not resumable
  const auto w = ffma_workload();
  EXPECT_THROW(sm.resume_with_fault(w.program, w.dims, FaultSpec{}, 1000, c),
               std::invalid_argument);
}

TEST(ResumeTest, ConvergedTrialReportsGoldenOutcome) {
  // A flip of a flip-flop that normal operation overwrites is masked; with
  // the golden timeline attached the run must detect re-convergence, stop
  // early, and report the golden cycle count.
  const auto w = ffma_workload();
  GoldenTrace trace;
  Sm golden;
  w.setup(golden);
  ASSERT_EQ(golden.run_traced(w.program, w.dims, trace, 50).status,
            RunStatus::Ok);

  // Draw (bit, cycle) like a campaign does; the FP32 AVF is a few percent,
  // so a converging (masked) trial turns up within a handful of draws.
  bool converged_once = false;
  Sm sm;
  Rng rng(12345);
  const auto bits = layouts().fp32_fu.layout.bits();
  for (unsigned attempt = 0; attempt < 100 && !converged_once; ++attempt) {
    FaultSpec f;
    f.module = Module::Fp32Fu;
    f.bit = static_cast<std::uint32_t>(rng.below(bits));
    f.cycle = rng.below(trace.result.cycles);
    const auto run = sm.resume_with_fault(w.program, w.dims, f,
                                          trace.result.cycles * 4 + 4096,
                                          *trace.floor(f.cycle), &trace, 4);
    if (!run.converged) continue;
    converged_once = true;
    EXPECT_EQ(run.status, RunStatus::Ok);
    EXPECT_EQ(run.cycles, trace.result.cycles);
  }
  EXPECT_TRUE(converged_once)
      << "no FP32 flip converged in 100 draws -- early exit never fires";
}

}  // namespace
}  // namespace gpufi::rtl
