// Parameterized invariant sweep over the full (module x instruction)
// campaign matrix: every RTL fault-injection campaign, whatever its
// target, must satisfy the structural invariants of the methodology
// (consistent accounting, valid detailed records, bounded thread counts,
// determinism of the golden run). This is the property-test counterpart of
// the paper's 144-campaign grid.
#include <gtest/gtest.h>

#include <tuple>

#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"
#include "syndrome/syndrome.hpp"

namespace gpufi::rtlfi {
namespace {

using isa::Opcode;
using rtl::Module;

using Case = std::tuple<Opcode, Module, InputRange>;

class CampaignMatrix : public ::testing::TestWithParam<Case> {};

TEST_P(CampaignMatrix, InvariantsHold) {
  const auto [op, module, range] = GetParam();
  const auto w = make_microbenchmark(op, range, 2);

  // Golden determinism.
  rtl::Sm sm;
  w.setup(sm);
  const auto g1 = sm.run(w.program, w.dims);
  ASSERT_EQ(g1.status, rtl::RunStatus::Ok) << g1.trap_reason;
  w.setup(sm);
  const auto g2 = sm.run(w.program, w.dims);
  EXPECT_EQ(g1.cycles, g2.cycles);

  CampaignConfig cfg;
  cfg.module = module;
  cfg.n_faults = 160;
  cfg.seed = 1234;
  const auto r = run_campaign(w, cfg);

  // Accounting.
  EXPECT_EQ(r.injected, cfg.n_faults);
  EXPECT_EQ(r.masked + r.sdc_single + r.sdc_multi + r.due, r.injected);
  EXPECT_EQ(r.golden_cycles, g1.cycles);

  // Every SDC record is well-formed and within the output geometry.
  std::size_t sdc_records = 0;
  for (const auto& rec : r.records) {
    if (rec.outcome != Outcome::Sdc) continue;
    ++sdc_records;
    EXPECT_EQ(rec.fault.module, module);
    EXPECT_LT(rec.fault.bit, rtl::layouts().of(module).bits());
    EXPECT_LT(rec.fault.cycle, r.golden_cycles);
    EXPECT_GE(rec.corrupted_elements, rec.corrupted_threads);
    EXPECT_GE(rec.corrupted_threads, 1u);
    EXPECT_LE(rec.corrupted_threads, 64u);  // 2 warps in the micro-benchmark
    for (const auto& d : rec.diffs) {
      EXPECT_LT(d.index, w.out_words);
      EXPECT_NE(d.golden, d.faulty);
      EXPECT_GE(d.rel_error, 0.0);
      EXPECT_GE(d.bits_flipped, 1u);
      EXPECT_LE(d.bits_flipped, 32u);
    }
  }
  EXPECT_EQ(sdc_records, r.sdc_single + r.sdc_multi);

  // Syndrome ingestion never throws and never fabricates samples.
  syndrome::Database db;
  db.add_campaign(syndrome::Key{module, op, range}, r);
  db.finalize();
  const auto* d = db.find(syndrome::Key{module, op, range});
  ASSERT_NE(d, nullptr);
  std::size_t diff_count = 0;
  for (const auto& rec : r.records)
    if (rec.outcome == Outcome::Sdc) diff_count += rec.diffs.size();
  EXPECT_LE(d->count(), diff_count);
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto [op, module, range] = info.param;
  std::string m(rtl::module_name(module));
  for (auto& c : m)
    if (c == ' ') c = '_';
  return std::string(isa::mnemonic(op)) + "_" + m + "_" +
         std::string(range_name(range));
}

// The module set per instruction mirrors the paper's grid: FUs only where
// the instruction exercises them, scheduler and pipeline everywhere.
std::vector<Case> build_cases() {
  std::vector<Case> cases;
  const Opcode ops[] = {Opcode::FADD, Opcode::FMUL, Opcode::FFMA,
                        Opcode::IADD, Opcode::IMUL, Opcode::IMAD,
                        Opcode::FSIN, Opcode::FEXP, Opcode::GLD,
                        Opcode::GST,  Opcode::BRA,  Opcode::ISETP};
  for (auto op : ops) {
    std::vector<Module> mods{Module::Scheduler, Module::PipelineRegs};
    switch (isa::op_class(op)) {
      case isa::OpClass::Fp32: mods.push_back(Module::Fp32Fu); break;
      case isa::OpClass::Int32: mods.push_back(Module::IntFu); break;
      case isa::OpClass::Special:
        mods.push_back(Module::Sfu);
        mods.push_back(Module::SfuCtl);
        break;
      default: break;
    }
    for (auto m : mods) {
      // One range per (op, module) keeps the sweep fast; Medium everywhere
      // plus Small/Large spot checks on one op per class.
      cases.emplace_back(op, m, InputRange::Medium);
      if (op == Opcode::FFMA || op == Opcode::IMAD)
        cases.emplace_back(op, m, InputRange::Small);
      if (op == Opcode::FMUL || op == Opcode::IMUL)
        cases.emplace_back(op, m, InputRange::Large);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, CampaignMatrix,
                         ::testing::ValuesIn(build_cases()), case_name);

}  // namespace
}  // namespace gpufi::rtlfi
