#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "emu/device.hpp"
#include "isa/isa.hpp"
#include "rtl/layouts.hpp"
#include "rtl/sm.hpp"

namespace gpufi::rtl {
namespace {

using namespace gpufi::isa;

// ------------------------------------------------------------ layout checks

TEST(Layouts, SchedulerSizeMatchesTableI) {
  EXPECT_EQ(layouts().scheduler.layout.bits(), 3358u);
}

TEST(Layouts, IntFuSizeMatchesTableI) {
  EXPECT_EQ(layouts().int_fu.layout.bits(), 1542u);
}

TEST(Layouts, ModuleSizesAreInPaperBallpark) {
  // The remaining modules land close to (within ~12% of) Table I; exact
  // values are asserted so any layout change is a conscious decision.
  const auto& l = layouts();
  EXPECT_NEAR(static_cast<double>(l.fp32_fu.layout.bits()), 4451.0,
              4451.0 * 0.12);
  EXPECT_NEAR(static_cast<double>(l.sfu.layout.bits()), 3231.0,
              3231.0 * 0.12);
  EXPECT_NEAR(static_cast<double>(l.sfu_ctl.layout.bits()), 190.0,
              190.0 * 0.12);
  EXPECT_NEAR(static_cast<double>(l.pipeline.layout.bits()), 10949.0,
              10949.0 * 0.12);
}

TEST(Layouts, Fp32LargerThanIntByAboutThreeTimes) {
  // The paper attributes the lower FP AVF to the ~3x larger FP unit.
  const double ratio =
      static_cast<double>(layouts().fp32_fu.layout.bits()) /
      static_cast<double>(layouts().int_fu.layout.bits());
  EXPECT_GT(ratio, 2.4);
  EXPECT_LT(ratio, 3.6);
}

TEST(Layouts, PipelineDataControlSplit) {
  // Sec. V-B: ~84% of pipeline registers store operands, ~16% control.
  const auto& p = layouts().pipeline.layout;
  const double data_share =
      static_cast<double>(p.data_bits()) / static_cast<double>(p.bits());
  EXPECT_GT(data_share, 0.80);
  EXPECT_LT(data_share, 0.95);
  EXPECT_GT(p.control_bits(), 500u);
}

TEST(Layouts, FieldLookupCoversEveryBit) {
  for (auto m : {Module::Fp32Fu, Module::IntFu, Module::Sfu, Module::SfuCtl,
                 Module::Scheduler, Module::PipelineRegs}) {
    const auto& l = layouts().of(m);
    std::size_t covered = 0;
    for (const auto& f : l.fields()) covered += f.width;
    EXPECT_EQ(covered, l.bits()) << module_name(m);
    // Spot-check the bit->field mapping at the boundaries.
    EXPECT_EQ(l.field_at(0).offset, 0u);
    const auto& last = l.field_at(l.bits() - 1);
    EXPECT_EQ(last.offset + last.width, l.bits());
  }
}

TEST(Layouts, FieldNamesAreUnique) {
  for (auto m : {Module::Fp32Fu, Module::IntFu, Module::Sfu, Module::SfuCtl,
                 Module::Scheduler, Module::PipelineRegs}) {
    const auto& l = layouts().of(m);
    std::set<std::string> names;
    for (const auto& f : l.fields()) names.insert(f.name);
    EXPECT_EQ(names.size(), l.fields().size()) << module_name(m);
  }
}

// ------------------------------------------------- golden-run functionality

/// Builds kernels used by both engines and asserts bit-identical global
/// memory afterwards — the cross-level agreement the methodology rests on.
void expect_cross_level_match(const Program& p, unsigned block,
                              unsigned grid, std::size_t words,
                              unsigned block_y = 1) {
  emu::Device dev(words);
  Sm sm(words);
  const emu::LaunchDims edims{grid, 1, block, block_y};
  const GridDims rdims{grid, 1, block, block_y};
  const auto er = dev.launch(p, edims);
  ASSERT_EQ(er.status, emu::LaunchStatus::Ok) << er.trap_reason;
  const auto rr = sm.run(p, rdims);
  ASSERT_EQ(rr.status, RunStatus::Ok) << rr.trap_reason;
  EXPECT_GT(rr.cycles, 0u);
  for (std::uint32_t a = 0; a < words; ++a)
    ASSERT_EQ(sm.read_word(a), dev.read_word(a)) << "addr " << a;
}

Program store_tid_kernel() {
  KernelBuilder kb("store_tid");
  kb.mov(0, S(SReg::TID_X));
  kb.gst(R(0), R(0));
  return kb.build();
}

TEST(SmGolden, StoreTidSingleWarp) {
  expect_cross_level_match(store_tid_kernel(), 32, 1, 64);
}

TEST(SmGolden, StoreTidTwoWarps) {
  expect_cross_level_match(store_tid_kernel(), 64, 1, 128);
}

TEST(SmGolden, PartialWarp) {
  expect_cross_level_match(store_tid_kernel(), 23, 1, 64);
}

TEST(SmGolden, FpPipeline) {
  KernelBuilder kb("fp");
  kb.mov(0, S(SReg::TID_X));
  kb.i2f(1, R(0));
  kb.fmul(2, R(1), F(0.37f));
  kb.fadd(3, R(2), F(-1.25f));
  kb.ffma(4, R(3), R(1), R(2));
  kb.gst(R(0), R(4));
  expect_cross_level_match(kb.build(), 64, 1, 128);
}

TEST(SmGolden, IntPipeline) {
  KernelBuilder kb("int");
  kb.mov(0, S(SReg::TID_X));
  kb.imul(1, R(0), I(2654435761));
  kb.imad(2, R(1), I(97), R(0));
  kb.iadd(3, R(2), I(-7));
  kb.gst(R(0), R(3));
  expect_cross_level_match(kb.build(), 64, 1, 128);
}

TEST(SmGolden, SfuPipeline) {
  KernelBuilder kb("sfu");
  kb.mov(0, S(SReg::TID_X));
  kb.i2f(1, R(0));
  kb.fmul(2, R(1), F(0.0490873852f));  // ~ pi/64: stays in [0, pi/2]
  kb.fsin(3, R(2));
  kb.fexp(4, R(2));
  kb.fadd(5, R(3), R(4));
  kb.gst(R(0), R(5));
  expect_cross_level_match(kb.build(), 64, 1, 128);
}

TEST(SmGolden, DivergentIfElse) {
  KernelBuilder kb("div");
  kb.mov(0, S(SReg::TID_X));
  kb.isetp(0, CmpOp::LT, R(0), I(20));
  kb.if_begin(0);
  kb.movi(1, 111);
  kb.else_begin();
  kb.movi(1, 222);
  kb.if_end();
  kb.gst(R(0), R(1));
  expect_cross_level_match(kb.build(), 64, 1, 128);
}

TEST(SmGolden, DataDependentLoop) {
  KernelBuilder kb("loop");
  kb.mov(0, S(SReg::TID_X));
  kb.and_(0, R(0), I(7));  // trip count = tid & 7
  kb.movi(1, 0);
  kb.movi(2, 0);
  kb.loop_begin();
  kb.isetp(0, CmpOp::LT, R(1), R(0));
  kb.loop_while(0);
  kb.iadd(1, R(1), I(1));
  kb.imad(2, R(2), I(3), R(1));
  kb.loop_end();
  kb.mov(3, S(SReg::TID_X));
  kb.gst(R(3), R(2));
  expect_cross_level_match(kb.build(), 64, 1, 128);
}

TEST(SmGolden, SharedMemoryBarrierReduce) {
  KernelBuilder kb("reduce");
  kb.shared(64);
  kb.mov(0, S(SReg::TID_X));
  kb.imul(1, R(0), R(0));
  kb.sts(R(0), R(1));
  kb.bar();
  kb.isetp(0, CmpOp::EQ, R(0), I(0));
  kb.if_begin(0);
  kb.movi(2, 0);
  kb.movi(3, 0);
  kb.loop_begin();
  kb.isetp(1, CmpOp::LT, R(2), I(64));
  kb.loop_while(1);
  kb.lds(4, R(2));
  kb.iadd(3, R(3), R(4));
  kb.iadd(2, R(2), I(1));
  kb.loop_end();
  kb.movi(5, 0);
  kb.gst(R(5), R(3));
  kb.if_end();
  expect_cross_level_match(kb.build(), 64, 1, 128);
}

TEST(SmGolden, TwoDimensionalBlocks) {
  KernelBuilder kb("2d");
  kb.mov(0, S(SReg::TID_X));
  kb.mov(1, S(SReg::TID_Y));
  kb.imad(2, R(1), S(SReg::NTID_X), R(0));
  kb.imad(3, R(2), I(5), I(3));
  kb.gst(R(2), R(3));
  expect_cross_level_match(kb.build(), 8, 1, 128, 8);
}

TEST(SmGolden, MultiCta) {
  KernelBuilder kb("grid");
  kb.mov(0, S(SReg::TID_X));
  kb.mov(1, S(SReg::CTAID_X));
  kb.imad(2, R(1), S(SReg::NTID_X), R(0));
  kb.gst(R(2), R(2));
  expect_cross_level_match(kb.build(), 32, 3, 128);
}

TEST(SmGolden, GuardedEarlyExit) {
  KernelBuilder kb("exit");
  kb.mov(0, S(SReg::TID_X));
  kb.isetp(0, CmpOp::GE, R(0), I(40));
  kb.if_begin(0);
  kb.exit();
  kb.if_end();
  kb.gst(R(0), I(9));
  expect_cross_level_match(kb.build(), 64, 1, 128);
}

TEST(SmGolden, SelAndConversions) {
  KernelBuilder kb("selconv");
  kb.mov(0, S(SReg::TID_X));
  kb.isetp(1, CmpOp::GT, R(0), I(10));
  kb.sel(1, I(77), I(33), 1);
  kb.i2f(2, R(0));
  kb.fmul(2, R(2), F(1.5f));
  kb.f2i(3, R(2));
  kb.iadd(4, R(1), R(3));
  kb.gst(R(0), R(4));
  expect_cross_level_match(kb.build(), 64, 1, 128);
}

TEST(SmGolden, DeterministicCycleCount) {
  Sm sm(128);
  const Program p = store_tid_kernel();
  const auto r1 = sm.run(p, GridDims{1, 1, 32, 1});
  const auto r2 = sm.run(p, GridDims{1, 1, 32, 1});
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.status, RunStatus::Ok);
}

TEST(SmGolden, WatchdogFiresOnInfiniteLoop) {
  Program p;
  Instr b{.op = Opcode::BRA, .target = 0};
  p.code.push_back(b);
  p.code.push_back(Instr{.op = Opcode::EXIT});
  Sm sm(64);
  const auto r = sm.run(p, GridDims{1, 1, 32, 1}, 5000);
  EXPECT_EQ(r.status, RunStatus::Watchdog);
}

TEST(SmGolden, OutOfBoundsStoreTraps) {
  KernelBuilder kb("oob");
  kb.movi(0, 1 << 24);
  kb.gst(R(0), I(1));
  Sm sm(64);
  const auto r = sm.run(kb.build(), GridDims{1, 1, 32, 1});
  EXPECT_EQ(r.status, RunStatus::Trap);
  EXPECT_NE(r.trap_reason.find("out-of-bounds"), std::string::npos);
}

// ------------------------------------------------------ fault injection

/// Runs the same program golden and with one fault; returns (status, number
/// of differing output words in [0, words)).
std::pair<RunStatus, int> inject_once(const Program& p, unsigned block,
                                      std::size_t words,
                                      const FaultSpec& fault) {
  Sm golden(words);
  const auto gr = golden.run(p, GridDims{1, 1, block, 1});
  EXPECT_EQ(gr.status, RunStatus::Ok);

  Sm faulty(words);
  const auto fr = faulty.run_with_fault(p, GridDims{1, 1, block, 1}, fault,
                                        gr.cycles * 4 + 2048);
  int diffs = 0;
  for (std::uint32_t a = 0; a < words; ++a)
    diffs += faulty.read_word(a) != golden.read_word(a);
  return {fr.status, diffs};
}

Program fp_chain_kernel() {
  KernelBuilder kb("fpchain");
  kb.mov(0, S(SReg::TID_X));
  kb.i2f(1, R(0));
  for (int i = 0; i < 6; ++i) kb.ffma(1, R(1), F(1.0001f), F(0.75f));
  kb.gst(R(0), R(1));
  return kb.build();
}

TEST(SmFault, FaultAfterCompletionIsMasked) {
  const Program p = fp_chain_kernel();
  Sm probe(128);
  const auto cycles = probe.run(p, GridDims{1, 1, 64, 1}).cycles;
  // Inject way past the end: no effect possible.
  const auto [status, diffs] = inject_once(
      p, 64, 128, FaultSpec{Module::Fp32Fu, 10, cycles + 100});
  EXPECT_EQ(status, RunStatus::Ok);
  EXPECT_EQ(diffs, 0);
}

TEST(SmFault, SweepFp32ProducesSdcsAndMasks) {
  const Program p = fp_chain_kernel();
  Sm probe(128);
  const auto cycles = probe.run(p, GridDims{1, 1, 64, 1}).cycles;

  Rng rng(404);
  int sdc = 0, masked = 0, due = 0;
  const auto bits = layouts().fp32_fu.layout.bits();
  for (int i = 0; i < 120; ++i) {
    FaultSpec f;
    f.module = Module::Fp32Fu;
    f.bit = static_cast<std::uint32_t>(rng.below(bits));
    f.cycle = rng.below(cycles);
    const auto [status, diffs] = inject_once(p, 64, 128, f);
    if (status != RunStatus::Ok)
      ++due;
    else if (diffs > 0)
      ++sdc;
    else
      ++masked;
  }
  // The FP datapath must produce silent corruptions and also mask faults;
  // FU data faults essentially never hang the machine.
  EXPECT_GT(sdc, 0);
  EXPECT_GT(masked, 0);
  EXPECT_LE(due, 3);
}

TEST(SmFault, Fp32FaultsCorruptSingleThread) {
  const Program p = fp_chain_kernel();
  Sm probe(128);
  const auto cycles = probe.run(p, GridDims{1, 1, 64, 1}).cycles;
  Rng rng(405);
  const auto bits = layouts().fp32_fu.layout.bits();
  int multi = 0, sdc = 0;
  for (int i = 0; i < 150; ++i) {
    FaultSpec f{Module::Fp32Fu,
                static_cast<std::uint32_t>(rng.below(bits)),
                rng.below(cycles)};
    const auto [status, diffs] = inject_once(p, 64, 128, f);
    if (status == RunStatus::Ok && diffs > 0) {
      ++sdc;
      if (diffs > 1) ++multi;
    }
  }
  ASSERT_GT(sdc, 0);
  // Per-lane datapath: the overwhelming majority of FU SDCs hit one thread.
  EXPECT_LE(static_cast<double>(multi) / sdc, 0.1);
}

TEST(SmFault, SchedulerMaskFlipCorruptsMultipleThreads) {
  // Flip a bit of warp 0's base active mask early: a thread is disabled or
  // a dead lane enabled, visible as one-or-more wrong outputs.
  const Program p = store_tid_kernel();
  const auto& sl = layouts().scheduler;
  // stack_mask[0][0] occupies the first 32 bits of the scheduler bank.
  FaultSpec f{Module::Scheduler, sl.warp[0].stack[0].mask.offset + 5, 6};
  const auto [status, diffs] = inject_once(p, 64, 128, f);
  // Disabling an active thread loses its store: an SDC, never a clean run.
  EXPECT_TRUE(status != RunStatus::Ok || diffs > 0);
}

TEST(SmFault, SchedulerPcFlipCausesDueOrSdc) {
  const Program p = fp_chain_kernel();
  const auto& sl = layouts().scheduler;
  int interesting = 0;
  for (unsigned bit = 0; bit < 10; ++bit) {
    FaultSpec f{Module::Scheduler, sl.warp[0].stack[0].pc.offset + bit, 40};
    const auto [status, diffs] = inject_once(p, 64, 128, f);
    interesting += status != RunStatus::Ok || diffs > 0;
  }
  EXPECT_GT(interesting, 0);
}

TEST(SmFault, PipelineControlFaultsCauseDues) {
  // Sweep the pipeline register bank; control-field faults must produce
  // some DUEs (scoreboard wedges, bad opcodes, bad warp ids).
  const Program p = fp_chain_kernel();
  Sm probe(128);
  const auto cycles = probe.run(p, GridDims{1, 1, 64, 1}).cycles;
  Rng rng(406);
  const auto& layout = layouts().pipeline.layout;
  int due = 0, sdc = 0, total = 250;
  for (int i = 0; i < total; ++i) {
    FaultSpec f{Module::PipelineRegs,
                static_cast<std::uint32_t>(rng.below(layout.bits())),
                rng.below(cycles)};
    const auto [status, diffs] = inject_once(p, 64, 128, f);
    if (status != RunStatus::Ok) ++due;
    else if (diffs > 0) ++sdc;
  }
  EXPECT_GT(due, 0);
  EXPECT_GT(sdc, 0);
}

TEST(SmFault, SfuControllerFaultCanCorruptOrHang) {
  KernelBuilder kb("sin");
  kb.mov(0, S(SReg::TID_X));
  kb.i2f(1, R(0));
  kb.fmul(1, R(1), F(0.04f));
  kb.fsin(2, R(1));
  kb.gst(R(0), R(2));
  const Program p = kb.build();
  Sm probe(128);
  const auto cycles = probe.run(p, GridDims{1, 1, 64, 1}).cycles;
  Rng rng(407);
  const auto bits = layouts().sfu_ctl.layout.bits();
  int effects = 0;
  for (int i = 0; i < 200; ++i) {
    FaultSpec f{Module::SfuCtl, static_cast<std::uint32_t>(rng.below(bits)),
                rng.below(cycles)};
    const auto [status, diffs] = inject_once(p, 64, 128, f);
    effects += status != RunStatus::Ok || diffs > 0;
  }
  EXPECT_GT(effects, 0);
}

// ------------------------------------------------------ fault models

TEST(SmFaultModel, NamesAndPermanence) {
  EXPECT_EQ(fault_model_name(FaultModel::Transient), "transient");
  EXPECT_EQ(fault_model_name(FaultModel::StuckAt0), "stuck-at-0");
  EXPECT_EQ(fault_model_name(FaultModel::StuckAt1), "stuck-at-1");
  EXPECT_EQ(fault_model_name(FaultModel::IntermittentBurst),
            "intermittent-burst");
  FaultSpec f;
  EXPECT_FALSE(f.permanent());  // transient is never permanent
  f.model = FaultModel::StuckAt1;
  EXPECT_TRUE(f.permanent());  // duration 0 = forever
  f.duration = 10;
  EXPECT_FALSE(f.permanent());
}

TEST(SmFaultModel, BurstWithUnitWindowMatchesTransient) {
  // An intermittent burst whose window is one cycle flips exactly once at
  // fault.cycle — it must be indistinguishable from the transient model,
  // status and output words alike, at every site.
  const Program p = fp_chain_kernel();
  Sm probe(128);
  const auto cycles = probe.run(p, GridDims{1, 1, 64, 1}).cycles;
  const auto bits = layouts().fp32_fu.layout.bits();
  Rng rng(606);
  for (int i = 0; i < 40; ++i) {
    FaultSpec f{Module::Fp32Fu, static_cast<std::uint32_t>(rng.below(bits)),
                rng.below(cycles)};
    const auto [ts, td] = inject_once(p, 64, 128, f);
    f.model = FaultModel::IntermittentBurst;
    f.duration = 1;
    f.period = 7;  // irrelevant within a one-cycle window
    const auto [bs, bd] = inject_once(p, 64, 128, f);
    EXPECT_EQ(ts, bs) << "bit " << f.bit << " cycle " << f.cycle;
    EXPECT_EQ(td, bd) << "bit " << f.bit << " cycle " << f.cycle;
  }
}

Program counting_loop_kernel() {
  KernelBuilder kb("loopy");
  kb.mov(0, S(SReg::TID_X));
  kb.movi(1, 0);
  kb.movi(2, 0);
  kb.loop_begin();
  kb.isetp(0, CmpOp::LT, R(1), I(8));
  kb.loop_while(0);
  kb.iadd(2, R(2), R(1));
  kb.iadd(1, R(1), I(1));
  kb.loop_end();
  kb.gst(R(0), R(2));
  return kb.build();
}

TEST(SmFaultModel, StuckAt1WedgesTheSchedulerWhereTransientCompletes) {
  // Scheduler bit 32 sits in the warp's branch/stack PC state. On a loop,
  // that state is rewritten every iteration, so a transient flip is flushed
  // and the kernel completes; a stuck-at-1 re-asserts on every clock edge,
  // the loop PC can never advance past it, and the run must hang into the
  // watchdog. This is the behavioural gap between the two fault models.
  const Program p = counting_loop_kernel();
  Sm probe(128);
  const auto cycles = probe.run(p, GridDims{1, 1, 64, 1}).cycles;

  FaultSpec f{Module::Scheduler, 32, 0};
  f.model = FaultModel::StuckAt1;
  Sm stuck(128);
  const auto sr = stuck.run_with_fault(p, GridDims{1, 1, 64, 1}, f,
                                       cycles * 4 + 2048);
  EXPECT_EQ(sr.status, RunStatus::Watchdog);

  f.model = FaultModel::Transient;
  Sm trans(128);
  const auto tr = trans.run_with_fault(p, GridDims{1, 1, 64, 1}, f,
                                       cycles * 4 + 2048);
  EXPECT_EQ(tr.status, RunStatus::Ok);
}

TEST(SmFaultModel, FaultyRunCycleCapBoundsHangingRuns) {
  // A faulty run launched with max_cycles=0 must not spin for 2^62 cycles
  // on a permanently wedged scheduler: the kFaultyRunCycleCap watchdog
  // converts the hang into a classifiable Watchdog/DUE.
  const Program p = fp_chain_kernel();
  FaultSpec f{Module::Scheduler, 468, 0};
  f.model = FaultModel::StuckAt1;
  Sm sm(128);
  const auto r = sm.run_with_fault(p, GridDims{1, 1, 64, 1}, f, 0);
  EXPECT_EQ(r.status, RunStatus::Watchdog);
  EXPECT_LE(r.cycles, kFaultyRunCycleCap + 1);
}

TEST(SmFault, FaultyRunLeavesNoPermanentState) {
  // After a faulty run, a fresh golden run on the same Sm must be clean
  // (the flip-flop banks are reset per run; only memory carries over).
  const Program p = store_tid_kernel();
  Sm sm(128);
  (void)sm.run_with_fault(p, GridDims{1, 1, 64, 1},
                          FaultSpec{Module::Scheduler, 3, 5}, 100000);
  sm.fill(0, 128, 0);
  const auto r = sm.run(p, GridDims{1, 1, 64, 1});
  ASSERT_EQ(r.status, RunStatus::Ok);
  for (unsigned t = 0; t < 64; ++t) ASSERT_EQ(sm.read_word(t), t);
}

}  // namespace
}  // namespace gpufi::rtl
