#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/bitvector.hpp"
#include "common/histogram.hpp"
#include "common/powerlaw.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"

namespace gpufi {
namespace {

// ---------------------------------------------------------------- BitVector

TEST(BitVector, StartsZeroed) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_EQ(bv.popcount(), 0u);
  for (std::size_t i = 0; i < bv.size(); ++i) EXPECT_FALSE(bv.get(i));
}

TEST(BitVector, SetGetFlip) {
  BitVector bv(100);
  bv.set(3, true);
  bv.set(64, true);
  bv.set(99, true);
  EXPECT_TRUE(bv.get(3));
  EXPECT_TRUE(bv.get(64));
  EXPECT_TRUE(bv.get(99));
  EXPECT_EQ(bv.popcount(), 3u);
  bv.flip(3);
  EXPECT_FALSE(bv.get(3));
  bv.flip(4);
  EXPECT_TRUE(bv.get(4));
  EXPECT_EQ(bv.popcount(), 3u);
}

TEST(BitVector, FieldRoundTripWithinWord) {
  BitVector bv(128);
  bv.set_field(5, 12, 0xABC);
  EXPECT_EQ(bv.get_field(5, 12), 0xABCu);
  EXPECT_EQ(bv.popcount(), 7u);  // 0xABC = 1010_1011_1100 has 7 set bits
}

TEST(BitVector, FieldRoundTripAcrossWordBoundary) {
  BitVector bv(192);
  bv.set_field(60, 24, 0xDEADBEu);
  EXPECT_EQ(bv.get_field(60, 24), 0xDEADBEu);
  bv.set_field(120, 64, 0x0123456789ABCDEFull);
  EXPECT_EQ(bv.get_field(120, 64), 0x0123456789ABCDEFull);
}

TEST(BitVector, FieldWriteDoesNotDisturbNeighbours) {
  BitVector bv(128);
  bv.set_field(0, 64, ~0ull);
  bv.set_field(64, 64, ~0ull);
  bv.set_field(30, 10, 0);
  EXPECT_EQ(bv.get_field(0, 30), (1ull << 30) - 1);
  EXPECT_EQ(bv.get_field(30, 10), 0u);
  EXPECT_EQ(bv.get_field(40, 24), (1ull << 24) - 1);
}

TEST(BitVector, FieldMasksExtraValueBits) {
  BitVector bv(64);
  bv.set_field(0, 4, 0xFFFF);  // only the low 4 bits should land
  EXPECT_EQ(bv.get_field(0, 4), 0xFu);
  EXPECT_EQ(bv.get_field(4, 8), 0u);
}

TEST(BitVector, RandomizedFieldRoundTrip) {
  Rng rng(7);
  BitVector bv(1024);
  for (int iter = 0; iter < 2000; ++iter) {
    const auto width = static_cast<std::size_t>(rng.range(1, 64));
    const auto offset = rng.below(1024 - width + 1);
    const std::uint64_t value = rng();
    bv.set_field(offset, width, value);
    const std::uint64_t mask =
        width == 64 ? ~0ull : (std::uint64_t{1} << width) - 1;
    EXPECT_EQ(bv.get_field(offset, width), value & mask);
  }
}

TEST(BitVector, Equality) {
  BitVector a(70), b(70);
  EXPECT_EQ(a, b);
  a.flip(69);
  EXPECT_FALSE(a == b);
  b.flip(69);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(4);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(9);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_LT(same, 2);
}

// --------------------------------------------------------------- statistics

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 5.0);
  EXPECT_NEAR(stats::stddev(xs), 2.138, 1e-3);
}

TEST(Stats, MedianAndQuantile) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(stats::median(xs), 3.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.25), 2.0);
}

TEST(Stats, NormalQuantileMatchesKnownValues) {
  EXPECT_NEAR(stats::normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(stats::normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(stats::normal_quantile(0.025), -1.959964, 1e-5);
}

TEST(Stats, NormalCdfInvertsQuantile) {
  for (double p : {0.01, 0.1, 0.33, 0.5, 0.77, 0.99}) {
    EXPECT_NEAR(stats::normal_cdf(stats::normal_quantile(p)), p, 1e-7);
  }
}

TEST(Stats, MarginOfErrorMatchesPaperScale) {
  // The paper: >12000 faults per campaign guarantees < 3% margin; 6000
  // software injections give 95% CI below 5%.
  EXPECT_LT(stats::proportion_margin_of_error(0.5, 12000), 0.03);
  EXPECT_LT(stats::proportion_margin_of_error(0.5, 6000), 0.05);
  EXPECT_GT(stats::proportion_margin_of_error(0.5, 100), 0.05);
}

TEST(Stats, RequiredSamplesRoundTrip) {
  const std::size_t n = stats::required_samples(0.01, 0.95);
  EXPECT_NEAR(static_cast<double>(n), 9604.0, 10.0);
  EXPECT_LE(stats::proportion_margin_of_error(0.5, n), 0.0101);
}

TEST(Stats, ShapiroWilkAcceptsGaussian) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) {
    // Box-Muller
    const double u1 = rng.uniform() + 1e-12, u2 = rng.uniform();
    xs.push_back(std::sqrt(-2 * std::log(u1)) *
                 std::cos(2 * M_PI * u2));
  }
  const auto r = stats::shapiro_wilk(xs);
  EXPECT_GT(r.w, 0.98);
  EXPECT_GT(r.p_value, 0.05);
}

TEST(Stats, ShapiroWilkRejectsPowerLaw) {
  // The paper's syndrome distributions are power laws: Shapiro-Wilk must
  // reject normality (p < 0.05).
  Rng rng(12);
  PowerLaw pl{2.5, 1e-3, 0, 0};
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(pl.sample(rng));
  const auto r = stats::shapiro_wilk(xs);
  EXPECT_LT(r.p_value, 0.05);
}

TEST(Stats, ShapiroWilkDegenerateInputs) {
  const std::vector<double> constant{1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(stats::shapiro_wilk(constant).p_value, 1.0);
  const std::vector<double> tiny{1.0, 2.0};
  EXPECT_DOUBLE_EQ(stats::shapiro_wilk(tiny).p_value, 1.0);
}

TEST(Stats, PearsonCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(stats::pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs{10, 8, 6, 4, 2};
  EXPECT_NEAR(stats::pearson(xs, zs), -1.0, 1e-12);
}

// ----------------------------------------------------------------- powerlaw

TEST(PowerLaw, SampleRespectsLowerBound) {
  Rng rng(21);
  PowerLaw pl{2.2, 0.01, 0, 0};
  for (int i = 0; i < 1000; ++i) EXPECT_GE(pl.sample(rng), pl.x_min);
}

TEST(PowerLaw, CdfMonotonic) {
  PowerLaw pl{2.5, 1.0, 0, 0};
  EXPECT_DOUBLE_EQ(pl.cdf(0.5), 0.0);
  double prev = -1;
  for (double x = 1.0; x < 100; x *= 1.5) {
    const double c = pl.cdf(x);
    EXPECT_GT(c, prev);
    prev = c;
  }
  EXPECT_LT(prev, 1.0);
}

TEST(PowerLaw, FitRecoversKnownExponent) {
  Rng rng(22);
  PowerLaw truth{2.5, 1e-4, 0, 0};
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(truth.sample(rng));
  const PowerLaw fit = fit_power_law(xs);
  EXPECT_NEAR(fit.alpha, truth.alpha, 0.1);
  EXPECT_LT(fit.ks, 0.05);
}

TEST(PowerLaw, AlphaMleFormula) {
  // For samples all equal to e * x_min, alpha = 1 + n / n = 2.
  std::vector<double> xs(100, std::exp(1.0));
  EXPECT_NEAR(power_law_alpha(xs, 1.0), 2.0, 1e-12);
}

TEST(PowerLaw, FitRejectsTooFewSamples) {
  std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW(fit_power_law(xs), std::invalid_argument);
}

TEST(PowerLaw, SamplerMatchesCdfStatistically) {
  Rng rng(23);
  PowerLaw pl{3.0, 0.5, 0, 0};
  int below_median = 0;
  const double median = pl.x_min * std::pow(2.0, 1.0 / (pl.alpha - 1));
  for (int i = 0; i < 20000; ++i) below_median += pl.sample(rng) < median;
  EXPECT_NEAR(below_median / 20000.0, 0.5, 0.02);
}

// ---------------------------------------------------------------- histogram

TEST(LogHistogram, BucketsByDecade) {
  LogHistogram h(-2, 2, 1);
  h.add(0.05);   // decade [1e-2, 1e-1)
  h.add(0.5);    // [1e-1, 1)
  h.add(5.0);    // [1, 10)
  h.add(50.0);   // [10, 100)
  EXPECT_EQ(h.count(), 4u);
  for (std::size_t i = 0; i < h.buckets(); ++i)
    EXPECT_EQ(h.bucket_count(i), 1u);
}

TEST(LogHistogram, UnderOverflow) {
  LogHistogram h(-2, 2, 1);
  h.add(0.0);
  h.add(1e-9);
  h.add(1e9);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(LogHistogram, FractionsSumToOne) {
  LogHistogram h(-4, 4, 2);
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) h.add(std::exp(rng.uniform(-8.0, 8.0)));
  double sum = 0;
  for (std::size_t i = 0; i < h.buckets(); ++i) sum += h.bucket_fraction(i);
  sum += static_cast<double>(h.underflow() + h.overflow()) / h.count();
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(LogHistogram, PeakBucketFindsMode) {
  LogHistogram h(-3, 3, 1);
  for (int i = 0; i < 100; ++i) h.add(0.02);  // [1e-2,1e-1) -> bucket 1
  for (int i = 0; i < 5; ++i) h.add(100.0);
  EXPECT_EQ(h.peak_bucket(), 1u);
}

TEST(LogHistogram, EmpiricalSamplerStaysInRange) {
  LogHistogram h(-3, 3, 1);
  for (int i = 0; i < 50; ++i) h.add(0.5);
  Rng rng(33);
  for (int i = 0; i < 200; ++i) {
    const double s = h.sample(rng);
    EXPECT_GE(s, 0.1);
    EXPECT_LT(s, 1.0);
  }
}

TEST(LogHistogram, AsciiRenderingMentionsCounts) {
  LogHistogram h(-2, 2, 1);
  for (int i = 0; i < 7; ++i) h.add(0.5);
  const std::string art = h.to_ascii();
  EXPECT_NE(art.find('7'), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
}

// -------------------------------------------------------------------- table

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"module", "avf"});
  t.add_row({"fp32", "0.031"});
  t.add_row({"scheduler", "0.004"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("module"), std::string::npos);
  EXPECT_NE(s.find("scheduler"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(TextTable, RejectsMisshapenRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::pct(0.12345, 1), "12.3%");
  EXPECT_EQ(TextTable::num(3.14159, 3), "3.14");
}

}  // namespace
}  // namespace gpufi
