#include <gtest/gtest.h>

#include <bit>

#include "isa/isa.hpp"
#include "isa/semantics.hpp"

namespace gpufi::isa {
namespace {

TEST(Opcode, CharacterizedSetMatchesPaper) {
  // Exactly the 12 instructions of Sec. III.
  int n = 0;
  for (std::size_t i = 0; i < kNumOpcodes; ++i)
    n += is_characterized(static_cast<Opcode>(i));
  EXPECT_EQ(n, 12);
  EXPECT_TRUE(is_characterized(Opcode::FFMA));
  EXPECT_TRUE(is_characterized(Opcode::ISETP));
  EXPECT_FALSE(is_characterized(Opcode::MOV));
  EXPECT_FALSE(is_characterized(Opcode::BAR));
}

TEST(Opcode, Classes) {
  EXPECT_EQ(op_class(Opcode::FADD), OpClass::Fp32);
  EXPECT_EQ(op_class(Opcode::IMAD), OpClass::Int32);
  EXPECT_EQ(op_class(Opcode::FSIN), OpClass::Special);
  EXPECT_EQ(op_class(Opcode::GLD), OpClass::Memory);
  EXPECT_EQ(op_class(Opcode::BRA), OpClass::Control);
  EXPECT_EQ(op_class(Opcode::SHL), OpClass::Other);
}

TEST(Opcode, EveryOpcodeHasMnemonic) {
  for (std::size_t i = 0; i < kNumOpcodes; ++i) {
    EXPECT_NE(mnemonic(static_cast<Opcode>(i)), "???");
  }
}

TEST(Operand, Factories) {
  EXPECT_EQ(R(5).kind, OperandKind::Reg);
  EXPECT_EQ(R(5).value, 5u);
  EXPECT_EQ(I(-3).value, static_cast<std::uint32_t>(-3));
  EXPECT_EQ(F(1.0f).value, std::bit_cast<std::uint32_t>(1.0f));
  EXPECT_EQ(S(SReg::TID_X).kind, OperandKind::Special);
}

TEST(Instr, WriteTargets) {
  Instr add{.op = Opcode::FADD, .dst = 3};
  EXPECT_TRUE(add.writes_gpr());
  EXPECT_FALSE(add.writes_pred());
  Instr setp{.op = Opcode::ISETP};
  EXPECT_FALSE(setp.writes_gpr());
  EXPECT_TRUE(setp.writes_pred());
  Instr st{.op = Opcode::GST};
  EXPECT_FALSE(st.writes_gpr());
}

TEST(Instr, Disassembly) {
  Instr i{.op = Opcode::FFMA, .dst = 4, .a = R(1), .b = R(2), .c = R(4)};
  EXPECT_EQ(i.to_string(), "FFMA R4, R1, R2, R4");
  i.pred = 0;
  i.pred_neg = true;
  EXPECT_EQ(i.to_string(), "@!P0 FFMA R4, R1, R2, R4");
}

TEST(Instr, DisassemblyMemoryAndBranch) {
  Instr ld{.op = Opcode::GLD, .dst = 2, .a = R(1), .imm = 8};
  EXPECT_EQ(ld.to_string(), "GLD R2, [R1+8]");
  Instr bra{.op = Opcode::BRA, .target = 12, .reconv = 20};
  EXPECT_EQ(bra.to_string(), "BRA 12 (reconv 20)");
}

TEST(Builder, EmitsAndAppendsExit) {
  KernelBuilder kb("k");
  kb.movi(0, 1).iadd(1, R(0), I(2));
  const Program p = kb.build();
  ASSERT_EQ(p.code.size(), 3u);
  EXPECT_EQ(p.code[2].op, Opcode::EXIT);
  EXPECT_EQ(p.name, "k");
}

TEST(Builder, NoDoubleExit) {
  KernelBuilder kb("k");
  kb.nop().exit();
  const Program p = kb.build();
  EXPECT_EQ(p.code.size(), 2u);
}

TEST(Builder, PredGuardsNextInstructionOnly) {
  KernelBuilder kb("k");
  kb.pred(1).iadd(0, R(0), I(1)).iadd(0, R(0), I(1));
  const Program p = kb.build();
  EXPECT_EQ(p.code[0].pred, 1);
  EXPECT_EQ(p.code[1].pred, -1);
}

TEST(Builder, IfProducesGuardedBranchWithReconv) {
  KernelBuilder kb("k");
  kb.isetp(0, CmpOp::LT, R(0), I(10));
  kb.if_begin(0);
  kb.movi(1, 7);
  kb.if_end();
  const Program p = kb.build();
  const Instr& bra = p.code[1];
  ASSERT_EQ(bra.op, Opcode::BRA);
  EXPECT_EQ(bra.pred, 0);
  EXPECT_TRUE(bra.pred_neg);          // branch away when condition false
  EXPECT_EQ(bra.target, 3);           // past the body
  EXPECT_EQ(bra.reconv, 3);
}

TEST(Builder, IfElseTargetsAreConsistent) {
  KernelBuilder kb("k");
  kb.if_begin(0);
  kb.movi(1, 1);        // then
  kb.else_begin();
  kb.movi(1, 2);        // else
  kb.if_end();
  const Program p = kb.build();
  const Instr& if_bra = p.code[0];
  const Instr& skip_bra = p.code[2];
  EXPECT_EQ(if_bra.target, 3);   // start of else
  EXPECT_EQ(if_bra.reconv, 4);   // end
  EXPECT_EQ(skip_bra.target, 4);
  EXPECT_EQ(p.code[3].op, Opcode::MOV);
}

TEST(Builder, LoopShape) {
  KernelBuilder kb("k");
  kb.movi(0, 0);
  kb.loop_begin();
  kb.isetp(0, CmpOp::LT, R(0), I(4));
  kb.loop_while(0);
  kb.iadd(0, R(0), I(1));
  kb.loop_end();
  const Program p = kb.build();
  // 0: MOV, 1: ISETP, 2: BRA(exit), 3: IADD, 4: BRA(back), 5: EXIT
  EXPECT_EQ(p.code[2].op, Opcode::BRA);
  EXPECT_TRUE(p.code[2].pred_neg);
  EXPECT_EQ(p.code[2].target, 5);
  EXPECT_EQ(p.code[4].op, Opcode::BRA);
  EXPECT_EQ(p.code[4].target, 1);
}

TEST(Builder, ThrowsOnUnbalancedControlFlow) {
  KernelBuilder kb("k");
  kb.if_begin(0);
  EXPECT_THROW(kb.build(), std::logic_error);
  KernelBuilder kb2("k2");
  EXPECT_THROW(kb2.if_end(), std::logic_error);
  KernelBuilder kb3("k3");
  EXPECT_THROW(kb3.loop_end(), std::logic_error);
}

TEST(Builder, SharedMemoryDeclaration) {
  KernelBuilder kb("k");
  kb.shared(64).nop();
  EXPECT_EQ(kb.build().shared_words, 64u);
}

TEST(Semantics, IntegerOps) {
  EXPECT_EQ(alu_result(Opcode::IADD, 3, 4, 0, false), 7u);
  EXPECT_EQ(alu_result(Opcode::IMUL, 5, 6, 99, false), 30u);
  EXPECT_EQ(alu_result(Opcode::IMAD, 5, 6, 7, false), 37u);
  EXPECT_EQ(alu_result(Opcode::SHL, 1, 4, 0, false), 16u);
  EXPECT_EQ(alu_result(Opcode::SHR, 0x80000000u, 31, 0, false), 1u);
  EXPECT_EQ(alu_result(Opcode::IMIN, static_cast<std::uint32_t>(-5), 3, 0,
                       false),
            static_cast<std::uint32_t>(-5));
  EXPECT_EQ(alu_result(Opcode::IMAX, static_cast<std::uint32_t>(-5), 3, 0,
                       false),
            3u);
}

TEST(Semantics, FloatOpsViaFparith) {
  const auto b = [](float f) { return std::bit_cast<std::uint32_t>(f); };
  EXPECT_EQ(alu_result(Opcode::FADD, b(1.5f), b(2.25f), 0, false), b(3.75f));
  EXPECT_EQ(alu_result(Opcode::FMUL, b(3.0f), b(-2.0f), 0, false), b(-6.0f));
  EXPECT_EQ(alu_result(Opcode::FFMA, b(2.0f), b(3.0f), b(1.0f), false),
            b(7.0f));
}

TEST(Semantics, SelUsesPredicate) {
  EXPECT_EQ(alu_result(Opcode::SEL, 11, 22, 0, true), 11u);
  EXPECT_EQ(alu_result(Opcode::SEL, 11, 22, 0, false), 22u);
}

TEST(Semantics, IntCompare) {
  EXPECT_TRUE(cmp_eval_i(CmpOp::LT, static_cast<std::uint32_t>(-1), 0));
  EXPECT_FALSE(cmp_eval_i(CmpOp::GT, static_cast<std::uint32_t>(-1), 0));
  EXPECT_TRUE(cmp_eval_i(CmpOp::EQ, 7, 7));
  EXPECT_TRUE(cmp_eval_i(CmpOp::GE, 7, 7));
  EXPECT_TRUE(cmp_eval_i(CmpOp::NE, 7, 8));
  EXPECT_TRUE(cmp_eval_i(CmpOp::LE, 7, 8));
}

TEST(Semantics, FloatCompareUnordered) {
  const auto b = [](float f) { return std::bit_cast<std::uint32_t>(f); };
  const std::uint32_t nan = 0x7fc00000u;
  EXPECT_TRUE(cmp_eval_f(CmpOp::LT, b(1.0f), b(2.0f)));
  EXPECT_FALSE(cmp_eval_f(CmpOp::LT, nan, b(2.0f)));
  EXPECT_FALSE(cmp_eval_f(CmpOp::EQ, nan, nan));
  EXPECT_TRUE(cmp_eval_f(CmpOp::NE, nan, b(1.0f)));
  EXPECT_TRUE(cmp_eval_f(CmpOp::GE, b(2.0f), b(2.0f)));
}

TEST(Program, DisassemblyListsAllInstructions) {
  KernelBuilder kb("demo");
  kb.movi(0, 5).ffma(1, R(0), R(0), R(0));
  const Program p = kb.build();
  const std::string s = p.to_string();
  EXPECT_NE(s.find("demo:"), std::string::npos);
  EXPECT_NE(s.find("FFMA"), std::string::npos);
  EXPECT_NE(s.find("EXIT"), std::string::npos);
}

}  // namespace
}  // namespace gpufi::isa
