// A/B equivalence of the RTL campaign acceleration levels: for every opcode
// class and the t-MxM mini-app, `acceleration = none`, `checkpoint` and
// `checkpoint+early_exit` at jobs=1 and jobs=4 must produce byte-identical
// outcome counters, error records and serialized syndrome databases. This is
// the contract that lets the fast path replace the naive one wholesale.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"
#include "syndrome/syndrome.hpp"

namespace gpufi::rtlfi {
namespace {

struct Case {
  Workload workload;
  rtl::Module module;
  isa::Opcode op;  ///< key for the syndrome-DB comparison
  std::size_t n_faults;
};

std::vector<Case> cases() {
  auto micro = [](isa::Opcode op, rtl::Module m, std::size_t n) {
    return Case{make_microbenchmark(op, InputRange::Medium, 11), m, op, n};
  };
  std::vector<Case> cs;
  cs.push_back(micro(isa::Opcode::FFMA, rtl::Module::Fp32Fu, 80));
  cs.push_back(micro(isa::Opcode::IMUL, rtl::Module::IntFu, 80));
  cs.push_back(micro(isa::Opcode::FEXP, rtl::Module::Sfu, 60));
  cs.push_back(micro(isa::Opcode::FSIN, rtl::Module::SfuCtl, 60));
  cs.push_back(micro(isa::Opcode::GST, rtl::Module::PipelineRegs, 80));
  cs.push_back(micro(isa::Opcode::BRA, rtl::Module::Scheduler, 80));
  // t-MxM exercises shared memory, barriers and multi-instruction control.
  cs.push_back(Case{make_tmxm(TileKind::Random, 5), rtl::Module::Scheduler,
                    isa::Opcode::FFMA, 100});
  return cs;
}

CampaignResult run_mode(const Case& c, Acceleration accel, unsigned jobs) {
  CampaignConfig cfg;
  cfg.module = c.module;
  cfg.n_faults = c.n_faults;
  cfg.seed = 99;
  cfg.jobs = jobs;
  cfg.keep_all_records = true;
  cfg.acceleration = accel;
  return run_campaign(c.workload, cfg);
}

/// Serializes the campaign into the downstream artifact (the syndrome DB)
/// so the comparison covers exactly the bytes the two-level hand-off uses.
std::string db_bytes(const Case& c, const CampaignResult& r) {
  syndrome::Database db;
  db.add_campaign(syndrome::Key{c.module, c.op, InputRange::Medium}, r);
  std::ostringstream os;
  db.save(os);
  return os.str();
}

void expect_identical(const Case& c, const CampaignResult& base,
                      const CampaignResult& other, const std::string& what) {
  SCOPED_TRACE(c.workload.name + " vs " + what);
  EXPECT_EQ(base.injected, other.injected);
  EXPECT_EQ(base.masked, other.masked);
  EXPECT_EQ(base.sdc_single, other.sdc_single);
  EXPECT_EQ(base.sdc_multi, other.sdc_multi);
  EXPECT_EQ(base.due, other.due);
  EXPECT_EQ(base.golden_cycles, other.golden_cycles);
  // `converged_early` is deliberately excluded: it is the only field that
  // legitimately differs across acceleration levels.

  ASSERT_EQ(base.records.size(), other.records.size());
  for (std::size_t i = 0; i < base.records.size(); ++i) {
    const auto& a = base.records[i];
    const auto& b = other.records[i];
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(a.fault.bit, b.fault.bit);
    EXPECT_EQ(a.fault.cycle, b.fault.cycle);
    EXPECT_EQ(a.field, b.field);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.due_reason, b.due_reason);
    EXPECT_EQ(a.corrupted_elements, b.corrupted_elements);
    EXPECT_EQ(a.corrupted_threads, b.corrupted_threads);
    ASSERT_EQ(a.diffs.size(), b.diffs.size());
    for (std::size_t d = 0; d < a.diffs.size(); ++d) {
      EXPECT_EQ(a.diffs[d].index, b.diffs[d].index);
      EXPECT_EQ(a.diffs[d].golden, b.diffs[d].golden);
      EXPECT_EQ(a.diffs[d].faulty, b.diffs[d].faulty);
    }
  }
  EXPECT_EQ(db_bytes(c, base), db_bytes(c, other));
}

TEST(CampaignEquivalence, AccelerationAndJobsInvariant) {
  for (const auto& c : cases()) {
    const CampaignResult base = run_mode(c, Acceleration::None, 1);
    EXPECT_EQ(base.converged_early, 0u);
    expect_identical(c, base, run_mode(c, Acceleration::None, 4),
                     "none/jobs=4");
    expect_identical(c, base, run_mode(c, Acceleration::Checkpoint, 1),
                     "checkpoint/jobs=1");
    expect_identical(c, base, run_mode(c, Acceleration::Checkpoint, 4),
                     "checkpoint/jobs=4");
    expect_identical(c, base,
                     run_mode(c, Acceleration::CheckpointEarlyExit, 1),
                     "full/jobs=1");
    expect_identical(c, base,
                     run_mode(c, Acceleration::CheckpointEarlyExit, 4),
                     "full/jobs=4");
  }
}

TEST(CampaignEquivalence, EarlyExitActuallyFires) {
  // The equivalence above would hold vacuously if convergence never
  // triggered; assert the fast path is actually exercised.
  const auto cs = cases();
  const auto r = run_mode(cs.front(), Acceleration::CheckpointEarlyExit, 1);
  EXPECT_GT(r.converged_early, 0u);
  EXPECT_LE(r.converged_early, r.masked);
}

}  // namespace
}  // namespace gpufi::rtlfi
