// A/B equivalence of the RTL campaign acceleration levels: for every opcode
// class and the t-MxM mini-app, `acceleration = none`, `checkpoint` and
// `checkpoint+early_exit` at jobs=1 and jobs=4 must produce byte-identical
// outcome counters, error records and serialized syndrome databases. This is
// the contract that lets the fast path replace the naive one wholesale.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "attr/attr.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"
#include "syndrome/syndrome.hpp"

namespace gpufi::rtlfi {
namespace {

struct Case {
  Workload workload;
  rtl::Module module;
  isa::Opcode op;  ///< key for the syndrome-DB comparison
  std::size_t n_faults;
};

std::vector<Case> cases() {
  auto micro = [](isa::Opcode op, rtl::Module m, std::size_t n) {
    return Case{make_microbenchmark(op, InputRange::Medium, 11), m, op, n};
  };
  std::vector<Case> cs;
  cs.push_back(micro(isa::Opcode::FFMA, rtl::Module::Fp32Fu, 80));
  cs.push_back(micro(isa::Opcode::IMUL, rtl::Module::IntFu, 80));
  cs.push_back(micro(isa::Opcode::FEXP, rtl::Module::Sfu, 60));
  cs.push_back(micro(isa::Opcode::FSIN, rtl::Module::SfuCtl, 60));
  cs.push_back(micro(isa::Opcode::GST, rtl::Module::PipelineRegs, 80));
  cs.push_back(micro(isa::Opcode::BRA, rtl::Module::Scheduler, 80));
  // t-MxM exercises shared memory, barriers and multi-instruction control.
  cs.push_back(Case{make_tmxm(TileKind::Random, 5), rtl::Module::Scheduler,
                    isa::Opcode::FFMA, 100});
  return cs;
}

CampaignResult run_mode(const Case& c, Acceleration accel, unsigned jobs,
                        rtl::FaultModel model = rtl::FaultModel::Transient,
                        std::uint64_t duration = 0) {
  CampaignConfig cfg;
  cfg.module = c.module;
  cfg.n_faults = c.n_faults;
  cfg.seed = 99;
  cfg.jobs = jobs;
  cfg.keep_all_records = true;
  cfg.acceleration = accel;
  cfg.fault_model = model;
  cfg.fault_duration = duration;
  return run_campaign(c.workload, cfg);
}

/// Serializes the campaign into the downstream artifact (the syndrome DB)
/// so the comparison covers exactly the bytes the two-level hand-off uses.
std::string db_bytes(const Case& c, const CampaignResult& r,
                     rtl::FaultModel model = rtl::FaultModel::Transient) {
  syndrome::Database db;
  db.add_campaign(syndrome::Key{c.module, c.op, InputRange::Medium, model},
                  r);
  std::ostringstream os;
  db.save(os);
  return os.str();
}

void expect_identical(const Case& c, const CampaignResult& base,
                      const CampaignResult& other, const std::string& what,
                      rtl::FaultModel model = rtl::FaultModel::Transient) {
  SCOPED_TRACE(c.workload.name + " vs " + what);
  EXPECT_EQ(base.injected, other.injected);
  EXPECT_EQ(base.masked, other.masked);
  EXPECT_EQ(base.sdc_single, other.sdc_single);
  EXPECT_EQ(base.sdc_multi, other.sdc_multi);
  EXPECT_EQ(base.due, other.due);
  EXPECT_EQ(base.golden_cycles, other.golden_cycles);
  // `converged_early` is deliberately excluded: it is the only field that
  // legitimately differs across acceleration levels.

  ASSERT_EQ(base.records.size(), other.records.size());
  for (std::size_t i = 0; i < base.records.size(); ++i) {
    const auto& a = base.records[i];
    const auto& b = other.records[i];
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(a.fault.bit, b.fault.bit);
    EXPECT_EQ(a.fault.cycle, b.fault.cycle);
    EXPECT_EQ(a.field, b.field);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.due_reason, b.due_reason);
    EXPECT_EQ(a.due_reason_code, b.due_reason_code);
    // The fault-site context is resolved from the golden liveness timeline,
    // which only the plain golden run records — it must be bit-for-bit
    // invariant across acceleration levels and job counts.
    EXPECT_EQ(a.site.live, b.site.live);
    EXPECT_EQ(a.site.dyn_index, b.site.dyn_index);
    EXPECT_EQ(a.site.pc, b.site.pc);
    EXPECT_EQ(a.site.cta, b.site.cta);
    EXPECT_EQ(a.site.warp, b.site.warp);
    EXPECT_EQ(a.site.op, b.site.op);
    EXPECT_EQ(a.site.stage, b.site.stage);
    EXPECT_EQ(a.site.unit_busy, b.site.unit_busy);
    EXPECT_EQ(a.corrupted_elements, b.corrupted_elements);
    EXPECT_EQ(a.corrupted_threads, b.corrupted_threads);
    ASSERT_EQ(a.diffs.size(), b.diffs.size());
    for (std::size_t d = 0; d < a.diffs.size(); ++d) {
      EXPECT_EQ(a.diffs[d].index, b.diffs[d].index);
      EXPECT_EQ(a.diffs[d].golden, b.diffs[d].golden);
      EXPECT_EQ(a.diffs[d].faulty, b.diffs[d].faulty);
    }
  }
  EXPECT_EQ(db_bytes(c, base, model), db_bytes(c, other, model));
}

TEST(CampaignEquivalence, AccelerationAndJobsInvariant) {
  for (const auto& c : cases()) {
    const CampaignResult base = run_mode(c, Acceleration::None, 1);
    EXPECT_EQ(base.converged_early, 0u);
    expect_identical(c, base, run_mode(c, Acceleration::None, 4),
                     "none/jobs=4");
    expect_identical(c, base, run_mode(c, Acceleration::Checkpoint, 1),
                     "checkpoint/jobs=1");
    expect_identical(c, base, run_mode(c, Acceleration::Checkpoint, 4),
                     "checkpoint/jobs=4");
    expect_identical(c, base,
                     run_mode(c, Acceleration::CheckpointEarlyExit, 1),
                     "full/jobs=1");
    expect_identical(c, base,
                     run_mode(c, Acceleration::CheckpointEarlyExit, 4),
                     "full/jobs=4");
  }
}

TEST(CampaignEquivalence, EarlyExitActuallyFires) {
  // The equivalence above would hold vacuously if convergence never
  // triggered; assert the fast path is actually exercised.
  const auto cs = cases();
  const auto r = run_mode(cs.front(), Acceleration::CheckpointEarlyExit, 1);
  EXPECT_GT(r.converged_early, 0u);
  EXPECT_LE(r.converged_early, r.masked);
}

TEST(CampaignEquivalence, FaultModelsInvariantAcrossAccelAndJobs) {
  // The determinism contract extends to every fault model: counters,
  // records and the distilled database bytes must be byte-identical across
  // acceleration levels and job counts for stuck-at and burst campaigns
  // too. A smaller case subset keeps the watchdog-bound stuck-at runs
  // affordable.
  const auto all = cases();
  const Case model_cases[] = {all[0], all[5]};  // FFMA/fp32, BRA/sched
  const rtl::FaultModel models[] = {rtl::FaultModel::StuckAt0,
                                    rtl::FaultModel::StuckAt1,
                                    rtl::FaultModel::IntermittentBurst};
  for (const auto& c : model_cases) {
    for (const auto model : models) {
      SCOPED_TRACE(std::string(rtl::fault_model_name(model)));
      const CampaignResult base =
          run_mode(c, Acceleration::None, 1, model);
      expect_identical(c, base, run_mode(c, Acceleration::None, 4, model),
                       "none/jobs=4", model);
      expect_identical(c, base,
                       run_mode(c, Acceleration::Checkpoint, 4, model),
                       "checkpoint/jobs=4", model);
      expect_identical(
          c, base, run_mode(c, Acceleration::CheckpointEarlyExit, 1, model),
          "full/jobs=1", model);
      expect_identical(
          c, base, run_mode(c, Acceleration::CheckpointEarlyExit, 4, model),
          "full/jobs=4", model);
    }
  }
}

TEST(CampaignEquivalence, PermanentFaultsNeverEarlyExit) {
  // A permanent stuck-at never quiesces, so the golden-convergence check
  // must never fire — early exit is only sound once the fault window has
  // closed.
  const auto cs = cases();
  for (const auto model :
       {rtl::FaultModel::StuckAt0, rtl::FaultModel::StuckAt1}) {
    const auto r =
        run_mode(cs.front(), Acceleration::CheckpointEarlyExit, 1, model);
    EXPECT_EQ(r.converged_early, 0u);
  }
  // A *windowed* stuck-at (duration bounded) may converge after the window
  // closes; with a 1-cycle window it behaves nearly transiently and the
  // early exit must fire again.
  const auto windowed = run_mode(
      cs.front(), Acceleration::CheckpointEarlyExit, 1,
      rtl::FaultModel::StuckAt1, /*duration=*/1);
  EXPECT_GT(windowed.converged_early, 0u);
}

TEST(CampaignEquivalence, ObservabilityOnOffByteIdentity) {
  // The observability layer is a pure observer: campaign results and the
  // serialized syndrome-DB bytes must be byte-identical with metrics +
  // tracing fully on versus runtime-disabled, across fault models,
  // acceleration levels and job counts. This is the hard contract that lets
  // production runs keep telemetry on without re-validating determinism.
  const auto all = cases();
  const Case obs_cases[] = {all[0], all[6]};  // FFMA/fp32, t-MxM/sched
  const rtl::FaultModel models[] = {rtl::FaultModel::Transient,
                                    rtl::FaultModel::StuckAt1};
  for (const auto& c : obs_cases) {
    for (const auto model : models) {
      SCOPED_TRACE(c.workload.name + " / " +
                   std::string(rtl::fault_model_name(model)));
      // Baseline: observability runtime-disabled.
      obs::set_enabled(false);
      const CampaignResult base =
          run_mode(c, Acceleration::None, 1, model);
      // Instrumented: metrics on AND a live trace sink, across the
      // accel x jobs grid.
      obs::set_enabled(true);
      obs::Registry::global().reset();
      std::ostringstream trace;
      obs::set_trace_sink(obs::TraceSink::to_stream(trace));
      for (const auto accel :
           {Acceleration::None, Acceleration::CheckpointEarlyExit}) {
        for (const unsigned jobs : {1u, 4u}) {
          expect_identical(c, base, run_mode(c, accel, jobs, model),
                           "obs-on vs obs-off", model);
        }
      }
      obs::set_trace_sink(nullptr);
      // The instrumentation actually ran: trial counters advanced and the
      // trace captured span lines (guards against a vacuous pass where the
      // obs path was never exercised).
      EXPECT_GE(obs::Registry::global().counter_value(
                    "gpufi_exec_trials_total"),
                4 * c.n_faults);
      EXPECT_FALSE(trace.str().empty());
      EXPECT_NE(trace.str().find("\"name\":\"rtlfi.run_campaign\""),
                std::string::npos);
    }
  }
  obs::set_enabled(true);
  obs::Registry::global().reset();
}

TEST(CampaignEquivalence, AttributionTablesAndRenderedReportInvariant) {
  // The attribution join (fault cycle -> live instruction) and everything
  // downstream of it — the per-site tables and the fully rendered report,
  // text and JSON — must be byte-identical across the accel x jobs grid.
  // This is the contract `gpufi report` sells: the acceleration level and
  // thread count are pure speed knobs.
  const auto all = cases();
  const Case& c = all[0];  // FFMA on the FP32 FU

  const auto report_renderings = [&](Acceleration accel, unsigned jobs) {
    CampaignConfig cfg;
    cfg.module = c.module;
    cfg.n_faults = c.n_faults;
    cfg.seed = 99;
    cfg.jobs = jobs;
    cfg.acceleration = accel;
    const GoldenContext golden = prepare_golden(c.workload, cfg);
    const CampaignResult r = run_campaign(c.workload, cfg, golden);
    attr::CampaignSlice slice;
    slice.module = std::string(rtl::module_name(c.module));
    slice.sites = r.attribution;
    slice.injected = r.injected;
    const attr::Report report =
        attr::build_report(c.workload.name, *golden.liveness, {slice});
    return std::pair<std::string, std::string>(attr::render_text(report),
                                               attr::render_json(report));
  };

  const auto base = report_renderings(Acceleration::None, 1);
  EXPECT_NE(base.first.find("Per-(module x static instruction)"),
            std::string::npos);
  EXPECT_NE(base.second.find("\"instructions\":["), std::string::npos);
  for (const auto accel : {Acceleration::None, Acceleration::Checkpoint,
                           Acceleration::CheckpointEarlyExit}) {
    for (const unsigned jobs : {1u, 4u}) {
      SCOPED_TRACE("accel=" + std::to_string(static_cast<int>(accel)) +
                   " jobs=" + std::to_string(jobs));
      const auto other = report_renderings(accel, jobs);
      EXPECT_EQ(base.first, other.first);
      EXPECT_EQ(base.second, other.second);
    }
  }
}

TEST(CampaignEquivalence, FaultSitesResolveAgainstGoldenTimeline) {
  // Attribution is not vacuous: every trial lands in the table (hit counts
  // sum back to the injection count, outcomes partition the hits) and on a
  // busy single-warp workload the faults overwhelmingly resolve to live
  // instructions. Records, when kept, carry the same resolved context.
  const auto all = cases();
  for (const auto& c : {all[0], all[6]}) {  // FFMA/fp32 and t-MxM/sched
    SCOPED_TRACE(c.workload.name);
    const auto r = run_mode(c, Acceleration::CheckpointEarlyExit, 4);
    std::size_t hits = 0;
    std::size_t live_hits = 0;
    for (const auto& [key, counts] : r.attribution) {
      hits += counts.hits;
      if (key.live) live_hits += counts.hits;
      EXPECT_EQ(counts.hits,
                counts.masked + counts.sdc_single + counts.sdc_multi +
                    counts.due);
    }
    EXPECT_EQ(hits, r.injected);
    EXPECT_GT(live_hits, 0u);
    for (const auto& rec : r.records) {
      if (!rec.site.live) continue;
      EXPECT_NE(rec.site.stage, rtl::PipeStage::Idle);
      EXPECT_LT(rec.site.pc, c.workload.program.code.size());
    }
  }
}

TEST(StuckAtAcceptance, SchedulerStuckAt1ProducesHangsTransientDoesNot) {
  // The acceptance criterion of the fault-model axis: a stuck-at-1 campaign
  // on the warp-scheduler FF bank must produce at least one Hang/DUE
  // outcome class (watchdog-expired DUE) that the transient campaign on the
  // same module never shows — a permanently wedged scheduler cannot retire.
  // The t-MxM mini-app on the scheduler: its loops, barriers and per-warp
  // control state give a wedged scheduler FF (warp_state, stack_pc,
  // fetch_pc) something to hang. 200 deterministic draws at seed 99 hit at
  // least one such bit; determinism makes this stable, not flaky.
  const Case sched{make_tmxm(TileKind::Random, 5), rtl::Module::Scheduler,
                   isa::Opcode::FFMA, 200};
  const auto transient = run_mode(sched, Acceleration::Checkpoint, 4);
  const auto stuck1 =
      run_mode(sched, Acceleration::Checkpoint, 4, rtl::FaultModel::StuckAt1);

  const auto hangs = [](const CampaignResult& r) {
    std::size_t n = 0;
    for (const auto& rec : r.records)
      if (rec.outcome == Outcome::Due &&
          rec.due_reason.find("watchdog") != std::string::npos)
        ++n;
    return n;
  };
  EXPECT_EQ(hangs(transient), 0u);
  EXPECT_GT(hangs(stuck1), 0u);
  EXPECT_GT(stuck1.due, transient.due);
}

}  // namespace
}  // namespace gpufi::rtlfi
