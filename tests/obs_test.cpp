// Unit tests for the gpufi-obs subsystem: registry primitives, histogram
// bucket determinism, shard-merge associativity (the property that makes the
// chunk-ordered absorb deterministic for any --jobs value), the Prometheus
// text exposition, the runtime kill switch, and the JSONL trace sink.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gpufi::obs {
namespace {

/// Every test works on a private Registry (or resets the global one) so the
/// suite stays order-independent.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    set_enabled(true);
    set_trace_sink(nullptr);
  }
  void TearDown() override {
    Registry::global().reset();
    set_enabled(true);
    set_trace_sink(nullptr);
  }
};

TEST_F(ObsTest, CounterAndGaugeBasics) {
  Registry r;
  r.counter("gpufi_test_total").add();
  r.counter("gpufi_test_total").add(41);
  EXPECT_EQ(r.counter_value("gpufi_test_total"), 42u);
  EXPECT_EQ(r.counter_value("never_touched"), 0u);

  r.gauge("gpufi_test_depth").set(7);
  r.gauge("gpufi_test_depth").add(-3);
  EXPECT_EQ(r.gauge_value("gpufi_test_depth"), 4);
}

TEST_F(ObsTest, HistogramBucketAssignmentIsDeterministic) {
  // Bucket index is a pure function of the observed value and the fixed
  // bounds: a value exactly on a bound lands in that bound's bucket, and the
  // ladder's edges behave (below the first bound, above the last).
  Registry r;
  auto& h = r.histogram("gpufi_test_seconds");
  const auto& bounds = default_latency_buckets();
  ASSERT_FALSE(bounds.empty());

  h.observe(0.0);                      // under the first bound
  h.observe(bounds.front());           // exactly on the first bound
  h.observe(bounds.back());            // exactly on the last bound
  h.observe(bounds.back() * 2);        // overflow -> +Inf bucket
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), bounds.size() + 1);
  EXPECT_EQ(counts.front(), 2u);  // 0.0 and bounds.front()
  EXPECT_EQ(counts[bounds.size() - 1], 1u);
  EXPECT_EQ(counts.back(), 1u);  // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(),
                   bounds.front() + bounds.back() + bounds.back() * 2);

  // Re-observing the same values doubles every bucket — no hidden state.
  h.observe(0.0);
  h.observe(bounds.front());
  h.observe(bounds.back());
  h.observe(bounds.back() * 2);
  const auto twice = h.bucket_counts();
  for (std::size_t i = 0; i < counts.size(); ++i)
    EXPECT_EQ(twice[i], 2 * counts[i]) << "bucket " << i;
}

TEST_F(ObsTest, ShardMergeIsAssociative) {
  // (a + b) + c == a + (b + c) for counters, bucket counts and observation
  // counts — the exact property run_trials relies on when it absorbs shards
  // in chunk-index order regardless of which worker filled which chunk.
  const auto fill = [](Shard& s, std::uint64_t salt) {
    s.add("gpufi_trials_total", 3 + salt);
    s.add("gpufi_chunks_total");
    for (std::uint64_t i = 0; i < 4; ++i)
      s.observe("gpufi_trial_seconds", 1e-5 * static_cast<double>(i + salt));
  };
  Shard a1, b1, c1, a2, b2, c2;
  fill(a1, 1); fill(b1, 2); fill(c1, 3);
  fill(a2, 1); fill(b2, 2); fill(c2, 3);

  Shard left;   // (a + b) + c
  left.merge(a1); left.merge(b1); left.merge(c1);
  Shard bc;     // a + (b + c)
  bc.merge(b2); bc.merge(c2);
  Shard right;
  right.merge(a2); right.merge(bc);

  EXPECT_EQ(left.counters(), right.counters());
  ASSERT_EQ(left.histograms().size(), right.histograms().size());
  for (const auto& [name, hl] : left.histograms()) {
    const auto it = right.histograms().find(name);
    ASSERT_NE(it, right.histograms().end());
    EXPECT_EQ(hl.counts, it->second.counts);
    EXPECT_EQ(hl.count, it->second.count);
    EXPECT_DOUBLE_EQ(hl.sum, it->second.sum);
  }
}

TEST_F(ObsTest, AbsorbingShardsInChunkOrderMatchesDirectObservation) {
  // The registry after absorbing shards chunk-by-chunk equals the registry
  // after making every observation directly — same counters, same buckets,
  // same count, same (order-fixed) sum.
  Registry direct;
  Registry sharded;
  std::vector<Shard> shards(3);
  for (std::size_t c = 0; c < shards.size(); ++c) {
    for (std::uint64_t i = 0; i < 5; ++i) {
      const double v = 1e-4 * static_cast<double>(c * 5 + i);
      direct.counter("gpufi_trials_total").add();
      direct.histogram("gpufi_trial_seconds").observe(v);
      shards[c].add("gpufi_trials_total");
      shards[c].observe("gpufi_trial_seconds", v);
    }
  }
  for (const auto& s : shards) sharded.absorb(s);

  EXPECT_EQ(sharded.counter_value("gpufi_trials_total"),
            direct.counter_value("gpufi_trials_total"));
  auto& hd = direct.histogram("gpufi_trial_seconds");
  auto& hs = sharded.histogram("gpufi_trial_seconds");
  EXPECT_EQ(hs.bucket_counts(), hd.bucket_counts());
  EXPECT_EQ(hs.count(), hd.count());
  EXPECT_DOUBLE_EQ(hs.sum(), hd.sum());
  // And the full exposition — the scraped artifact — is byte-identical.
  EXPECT_EQ(sharded.render_prometheus(), direct.render_prometheus());
}

TEST_F(ObsTest, RenderPrometheusFormat) {
  Registry r;
  r.counter("gpufi_jobs_total").add(3);
  r.counter(label("gpufi_outcomes_total", "outcome", "SDC")).add(2);
  r.gauge("gpufi_queue_depth").set(5);
  r.histogram("gpufi_wait_seconds").observe(2e-6);
  const std::string text = r.render_prometheus();

  EXPECT_NE(text.find("# TYPE gpufi_jobs_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("gpufi_jobs_total 3\n"), std::string::npos);
  // The TYPE header names the family (text up to the label brace), the
  // sample line keeps its labels.
  EXPECT_NE(text.find("# TYPE gpufi_outcomes_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("gpufi_outcomes_total{outcome=\"SDC\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE gpufi_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("gpufi_queue_depth 5\n"), std::string::npos);
  // Histogram: cumulative le buckets ending in +Inf, then _sum and _count.
  EXPECT_NE(text.find("# TYPE gpufi_wait_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("gpufi_wait_seconds_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("gpufi_wait_seconds_count 1\n"), std::string::npos);
  // Cumulative: every le bucket count is <= the +Inf count, and the first
  // bucket at or above 2e-6 already holds the observation.
  EXPECT_NE(text.find("gpufi_wait_seconds_bucket{le=\"2e-06\"} 1\n"),
            std::string::npos);
}

TEST_F(ObsTest, LabelBuilder) {
  EXPECT_EQ(label("m_total", "k", "v"), "m_total{k=\"v\"}");
  EXPECT_EQ(label(label("m_total", "a", "1"), "b", "2"),
            "m_total{a=\"1\",b=\"2\"}");
}

TEST_F(ObsTest, DisabledHelpersAreNoOps) {
  set_enabled(false);
  count("gpufi_dead_total", 5);
  observe("gpufi_dead_seconds", 1.0);
  set_gauge("gpufi_dead_depth", 9);
  EXPECT_EQ(Registry::global().counter_value("gpufi_dead_total"), 0u);
  EXPECT_EQ(Registry::global().gauge_value("gpufi_dead_depth"), 0);
  set_enabled(true);
  count("gpufi_dead_total", 5);
  EXPECT_EQ(Registry::global().counter_value("gpufi_dead_total"), 5u);
}

TEST_F(ObsTest, ScopedShardRoutesHotPathHelpers) {
  Shard s;
  {
    ScopedShard scope(&s);
    EXPECT_EQ(ScopedShard::current(), &s);
    count("gpufi_routed_total", 2);
    observe("gpufi_routed_seconds", 1e-3);
  }
  EXPECT_EQ(ScopedShard::current(), nullptr);
  // The increments landed in the shard, not the global registry...
  EXPECT_EQ(Registry::global().counter_value("gpufi_routed_total"), 0u);
  EXPECT_EQ(s.counters().at("gpufi_routed_total"), 2u);
  // ...until the shard is absorbed.
  Registry::global().absorb(s);
  EXPECT_EQ(Registry::global().counter_value("gpufi_routed_total"), 2u);
  // Outside the scope the helpers hit the registry directly again.
  count("gpufi_routed_total");
  EXPECT_EQ(Registry::global().counter_value("gpufi_routed_total"), 3u);
}

TEST_F(ObsTest, SpansAreInertWithoutASink) {
  EXPECT_FALSE(tracing());
  Span span("test.phase");
  EXPECT_FALSE(span.active());
  span.set("k", "v");  // must not crash or allocate into a sink
  event("test.event");
}

TEST_F(ObsTest, TraceSinkWritesSpanAndEventLines) {
  std::ostringstream os;
  set_trace_sink(TraceSink::to_stream(os));
  ASSERT_TRUE(tracing());
  std::uint64_t outer_id = 0;
  {
    Span outer("test.outer");
    EXPECT_TRUE(outer.active());
    outer_id = outer.id();
    outer.set("workload", "mxm");
    outer.set("faults", std::uint64_t{42});
    event("test.tick", {{"phase", "warmup"}});
    {
      Span inner("test.inner");
      EXPECT_TRUE(inner.active());
      EXPECT_NE(inner.id(), outer_id);
    }
  }
  set_trace_sink(nullptr);
  EXPECT_FALSE(tracing());

  const std::string text = os.str();
  std::istringstream lines(text);
  std::string line;
  std::vector<std::string> all;
  while (std::getline(lines, line)) all.push_back(line);
  // Event first (instantaneous), then inner (closes first), then outer.
  ASSERT_EQ(all.size(), 3u);
  for (const auto& l : all) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
  EXPECT_NE(all[0].find("\"type\":\"event\""), std::string::npos);
  EXPECT_NE(all[0].find("\"name\":\"test.tick\""), std::string::npos);
  EXPECT_NE(all[0].find("\"phase\":\"warmup\""), std::string::npos);
  // The event is attributed to the enclosing span.
  EXPECT_NE(all[0].find("\"span\":" + std::to_string(outer_id)),
            std::string::npos);
  EXPECT_NE(all[1].find("\"name\":\"test.inner\""), std::string::npos);
  // Inner's parent is outer.
  EXPECT_NE(all[1].find("\"parent\":" + std::to_string(outer_id)),
            std::string::npos);
  EXPECT_NE(all[2].find("\"name\":\"test.outer\""), std::string::npos);
  EXPECT_NE(all[2].find("\"workload\":\"mxm\""), std::string::npos);
  EXPECT_NE(all[2].find("\"faults\":\"42\""), std::string::npos);
  EXPECT_NE(all[2].find("\"dur_us\":"), std::string::npos);
}

TEST_F(ObsTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("x\ny"), "x\\ny");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST_F(ObsTest, ConcurrentDirectCountsAreLossless) {
  // The direct path is atomic: concurrent adds never drop increments (the
  // TSan job runs this to certify the locking/atomic discipline).
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        count("gpufi_race_total");
        observe("gpufi_race_seconds", 1e-5);
      }
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(Registry::global().counter_value("gpufi_race_total"),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(Registry::global().histogram("gpufi_race_seconds").count(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST_F(ObsTest, ResetDropsEverything) {
  count("gpufi_gone_total", 4);
  set_gauge("gpufi_gone_depth", 2);
  Registry::global().reset();
  EXPECT_EQ(Registry::global().counter_value("gpufi_gone_total"), 0u);
  EXPECT_EQ(Registry::global().gauge_value("gpufi_gone_depth"), 0);
  EXPECT_EQ(Registry::global().render_prometheus(), "");
}

}  // namespace
}  // namespace gpufi::obs
