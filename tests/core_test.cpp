#include <gtest/gtest.h>

#include <filesystem>

#include "core/gpufi.hpp"
#include "emu/device.hpp"
#include "isa/isa.hpp"

namespace gpufi::core {
namespace {

namespace fs = std::filesystem;

/// Temp directory fixture.
class CoreFacade : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "gpufi_core_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

RtlCharacterizationConfig tiny_cfg() {
  RtlCharacterizationConfig cfg;
  cfg.faults_per_campaign = 40;  // smoke scale: coverage, not statistics
  cfg.value_seeds = 1;
  cfg.tmxm_faults = 80;
  return cfg;
}

TEST_F(CoreFacade, BuildDatabaseCoversTheFullGrid) {
  const auto db = build_syndrome_database(tiny_cfg());
  // Scheduler and pipeline are characterized for all 12 instructions and 3
  // ranges, the FUs only where exercised, the SFU controller for FSIN/FEXP:
  // FP 3*3*3 + INT 3*3*3 + SFU 2*3*4 + mem/ctl 4*3*2 = 102 keys (some may
  // hold zero samples at this scale, but the keys exist).
  EXPECT_EQ(db.keys().size(), 102u);
  EXPECT_GT(db.tmxm(rtl::Module::Scheduler).total() +
                db.tmxm(rtl::Module::PipelineRegs).total(),
            0u);
}

TEST_F(CoreFacade, BuildDatabaseMultiModelGridAppendsModelBlocks) {
  // Extra fault models append 102-key micro blocks after the transient
  // block (t-MxM campaigns are characterized transiently only), and the
  // transient block keeps its grid indices — hence its derived seeds, hence
  // its distributions — bit for bit.
  auto cfg = tiny_cfg();
  const auto transient_only = build_syndrome_database(cfg);
  cfg.fault_models = {rtl::FaultModel::Transient, rtl::FaultModel::StuckAt1};
  const auto both = build_syndrome_database(cfg);
  EXPECT_EQ(both.keys().size(), 204u);
  std::size_t stuck_keys = 0;
  for (const auto& k : both.keys())
    if (k.model == rtl::FaultModel::StuckAt1) ++stuck_keys;
  EXPECT_EQ(stuck_keys, 102u);
  const syndrome::Key probe{rtl::Module::Fp32Fu, isa::Opcode::FADD,
                            rtlfi::InputRange::Medium};
  ASSERT_NE(both.find(probe), nullptr);
  ASSERT_NE(transient_only.find(probe), nullptr);
  EXPECT_EQ(both.find(probe)->count(), transient_only.find(probe)->count());
  if (both.find(probe)->count() > 0)
    EXPECT_EQ(both.find(probe)->median(), transient_only.find(probe)->median());
}

TEST_F(CoreFacade, BuildDatabaseCancellationThrowsInsteadOfTruncating) {
  // A cancelled characterization must never masquerade as a complete
  // database: both a pre-stopped token and one tripped mid-grid via the
  // progress callback surface as an error, not a short DB.
  auto cfg = tiny_cfg();
  exec::CancelToken pre;
  pre.cancel();
  cfg.cancel = &pre;
  EXPECT_THROW(build_syndrome_database(cfg), std::runtime_error);

  exec::CancelToken mid;
  cfg.cancel = &mid;
  cfg.progress = [&](const exec::Progress& p) {
    if (p.done >= 3) mid.cancel();
  };
  EXPECT_THROW(build_syndrome_database(cfg), std::runtime_error);
}

TEST_F(CoreFacade, EnsureDatabaseCaches) {
  const auto path = (dir_ / "db.txt").string();
  const auto db1 = ensure_syndrome_database(path, tiny_cfg());
  ASSERT_TRUE(fs::exists(path));
  const auto t1 = fs::last_write_time(path);
  const auto db2 = ensure_syndrome_database(path, tiny_cfg());
  EXPECT_EQ(fs::last_write_time(path), t1);  // loaded, not rebuilt
  EXPECT_EQ(db1.keys().size(), db2.keys().size());
}

TEST_F(CoreFacade, EnsureModelsTrainsOnceAndReloads) {
  const auto models = ensure_models(dir_.string(), /*lenet_steps=*/300,
                                    /*yolo_steps=*/200);
  EXPECT_TRUE(fs::exists(dir_ / "lenet.gfnn"));
  EXPECT_TRUE(fs::exists(dir_ / "yololite.gfnn"));
  EXPECT_GT(models.lenet.total_params(), 0u);
  const auto reloaded = ensure_models(dir_.string());
  EXPECT_EQ(reloaded.lenet.total_params(), models.lenet.total_params());
  EXPECT_EQ(reloaded.yololite.convs.size(), models.yololite.convs.size());
  // Reload recomputes holdout accuracy on the cached weights.
  EXPECT_GE(reloaded.lenet_accuracy, 0.0);
}

TEST(EmuExtras, OobWrapModeWrapsInsteadOfTrapping) {
  using namespace isa;
  emu::Device dev(64);
  dev.write_word(4, 0xABCD);
  KernelBuilder kb("wrap");
  kb.movi(0, 64 + 4);  // one full wrap beyond word 4
  kb.gld(1, R(0));
  kb.movi(2, 0);
  kb.gst(R(2), R(1));
  const Program p = kb.build();
  emu::LaunchConfig cfg;
  cfg.oob_wraps = true;
  const auto r = dev.launch(p, emu::LaunchDims{1, 1, 1, 1}, cfg);
  ASSERT_EQ(r.status, emu::LaunchStatus::Ok);
  EXPECT_EQ(dev.read_word(0), 0xABCDu);
  // Without the flag the same program traps.
  emu::Device strict(64);
  strict.write_word(4, 0xABCD);
  EXPECT_EQ(strict.launch(p, emu::LaunchDims{1, 1, 1, 1}).status,
            emu::LaunchStatus::Trap);
}

TEST(EmuExtras, ParamOperandsResolve) {
  using namespace isa;
  emu::Device dev(64);
  KernelBuilder kb("params");
  kb.mov(0, S(SReg::PARAM2));
  kb.mov(1, S(SReg::PARAM7));
  kb.iadd(2, R(0), R(1));
  kb.movi(3, 0);
  kb.gst(R(3), R(2));
  Program p = kb.build();
  p.params = {0, 0, 40, 0, 0, 0, 0, 2};
  ASSERT_EQ(dev.launch(p, emu::LaunchDims{1, 1, 1, 1}).status,
            emu::LaunchStatus::Ok);
  EXPECT_EQ(dev.read_word(0), 42u);
}

TEST(IsaExtras, DisassemblyOfEveryFormat) {
  using namespace isa;
  Instr param_mov{.op = Opcode::MOV, .dst = 1,
                  .a = Operand::special(SReg::PARAM3)};
  EXPECT_NE(param_mov.to_string().find("param[3]"), std::string::npos);
  Instr lds{.op = Opcode::LDS, .dst = 2, .a = R(1), .imm = -4};
  EXPECT_NE(lds.to_string().find("[R1-4]"), std::string::npos);
  Instr sts{.op = Opcode::STS, .a = R(1), .b = R(2), .imm = 64};
  EXPECT_NE(sts.to_string().find("[R1+64]"), std::string::npos);
  Instr frcp{.op = Opcode::FRCP, .dst = 3, .a = R(4)};
  EXPECT_NE(frcp.to_string().find("FRCP"), std::string::npos);
  EXPECT_EQ(Instr{.op = Opcode::BAR}.to_string(), "BAR");
}

}  // namespace
}  // namespace gpufi::core
