// gpufi-fabric load test (ISSUE satellite): >= 1000 concurrent campaign
// submissions funneled through a fabric-enabled daemon against a 4-worker
// fleet. Every returned payload must equal the one offline reference
// byte for byte, no shard may be lost or double-counted, and every
// submission's progress stream must be monotonic. This is the contract
// under load: the coordinator queue cannot reorder, drop, or duplicate
// work no matter how many jobs contend for the fleet.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fabric/coordinator.hpp"
#include "fabric/transport.hpp"
#include "fabric/worker.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

using namespace gpufi;

namespace {

constexpr std::size_t kClientThreads = 16;
constexpr std::size_t kSubmitsPerThread = 64;  // 16 * 64 = 1024 submits
constexpr std::size_t kFleetSize = 4;

/// Small but genuinely sharded: 32 faults = 2 chunks of 16, so every job
/// exercises a real fan-out/merge instead of the single-shard passthrough.
serve::CampaignSpec load_spec() {
  serve::CampaignSpec spec;
  spec.kind = serve::CampaignKind::Rtl;
  spec.op = "FFMA";
  spec.module = "fp32";
  spec.range = "M";
  spec.faults = 32;
  spec.seed = 7;
  spec.jobs = 1;
  spec.accel = "full";
  spec.workers = kFleetSize;
  return spec;
}

}  // namespace

TEST(FabricLoad, ThousandSubmitsZeroLostOrDuplicatedShards) {
  serve::ServerConfig cfg;
  cfg.socket_path = "fabric_load.sock";
  cfg.workers = static_cast<unsigned>(kClientThreads);  // executor pool
  cfg.queue_capacity = kClientThreads * 2;
  cfg.fabric_listen = "unix:fabric_load_fab.sock";
  serve::Server server(cfg);
  server.start();

  std::vector<std::unique_ptr<fabric::Worker>> fleet;
  fabric::WorkerConfig wcfg;
  wcfg.coordinator = *fabric::parse_endpoint(cfg.fabric_listen);
  wcfg.heartbeat_ms = 100;
  for (std::size_t i = 0; i < kFleetSize; ++i) {
    wcfg.name = "load-w" + std::to_string(i);
    fleet.push_back(std::make_unique<fabric::Worker>(wcfg));
    fleet.back()->start();
  }
  ASSERT_TRUE(server.coordinator()->wait_for_workers(kFleetSize, 10'000));

  const auto spec = load_spec();
  const std::string reference = serve::run_spec_offline(spec);

  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> byte_mismatches{0};
  std::atomic<std::size_t> progress_regressions{0};
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (std::size_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&] {
      for (std::size_t i = 0; i < kSubmitsPerThread; ++i) {
        // Per-submit monotonicity: the client thread owns this counter, so
        // no lock is needed — frames of one session arrive in order.
        std::size_t last_done = 0;
        bool monotonic = true;
        const auto outcome = serve::submit_campaign(
            cfg.socket_path, spec, [&](const exec::Progress& p) {
              if (p.done < last_done) monotonic = false;
              last_done = p.done;
            });
        if (!outcome.ok) {
          ++failures;
          continue;
        }
        if (!monotonic) ++progress_regressions;
        if (outcome.result != reference)
          ++byte_mismatches;
        else
          ++ok;
      }
    });
  }
  for (auto& c : clients) c.join();

  const std::size_t total = kClientThreads * kSubmitsPerThread;
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(byte_mismatches.load(), 0u) << "a merged payload drifted";
  EXPECT_EQ(progress_regressions.load(), 0u) << "progress went backwards";
  EXPECT_EQ(ok.load(), total);

  // Shard accounting must balance exactly: with no worker deaths, every
  // dispatched shard completed once — none lost, none duplicated.
  const auto cs = server.coordinator()->stats();
  EXPECT_EQ(cs.jobs_completed, total);
  EXPECT_EQ(cs.jobs_failed, 0u);
  EXPECT_EQ(cs.shards_retried, 0u);
  EXPECT_EQ(cs.shards_duplicate, 0u);
  EXPECT_EQ(cs.shards_completed, cs.shards_dispatched);
  EXPECT_EQ(cs.shards_inflight, 0u);
  EXPECT_EQ(cs.shards_pending, 0u);
  // 32 faults = 2 chunks: every job fans out into exactly 2 shards.
  EXPECT_EQ(cs.shards_completed, total * 2);

  const auto ss = server.stats();
  EXPECT_EQ(ss.completed, total);
  EXPECT_EQ(ss.failed, 0u);

  for (auto& w : fleet) w->stop();
  server.shutdown(/*drain=*/true);
}
