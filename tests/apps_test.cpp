#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "emu/profiler.hpp"

namespace gpufi::apps {
namespace {

void expect_runs_and_validates(HpcApp h, double min_char_frac) {
  emu::Device dev(h.app.device_words);
  emu::Profiler prof;
  ASSERT_TRUE(h.app.run(dev, &prof)) << h.app.name;
  EXPECT_TRUE(h.validate(dev)) << h.app.name;
  EXPECT_FALSE(h.app.read_output(dev).empty());
  // The paper: the characterized opcodes cover most dynamic instructions.
  EXPECT_GT(prof.characterized_fraction(), min_char_frac) << h.app.name;
}

TEST(Apps, MxM) { expect_runs_and_validates(make_mxm(24), 0.6); }
TEST(Apps, Gaussian) { expect_runs_and_validates(make_gaussian(24), 0.6); }
TEST(Apps, Lud) { expect_runs_and_validates(make_lud(24), 0.6); }
TEST(Apps, Hotspot) { expect_runs_and_validates(make_hotspot(16, 4), 0.45); }
TEST(Apps, Lava) { expect_runs_and_validates(make_lava(2, 32), 0.8); }
TEST(Apps, Quicksort) {
  expect_runs_and_validates(make_quicksort(512), 0.8);
}

TEST(Apps, AllSixHaveDistinctNames) {
  const auto apps = all_hpc_apps();
  ASSERT_EQ(apps.size(), 6u);
  std::set<std::string> names;
  for (const auto& a : apps) names.insert(a.app.name);
  EXPECT_EQ(names.size(), 6u);
}

TEST(Apps, RunsAreDeterministic) {
  auto h = make_hotspot(16, 4);
  emu::Device d1(h.app.device_words), d2(h.app.device_words);
  ASSERT_TRUE(h.app.run(d1, nullptr));
  ASSERT_TRUE(h.app.run(d2, nullptr));
  EXPECT_EQ(h.app.read_output(d1), h.app.read_output(d2));
}

TEST(Apps, LavaUsesSpecialFunctionUnit) {
  auto h = make_lava(1, 32);
  emu::Device dev(h.app.device_words);
  emu::Profiler prof;
  ASSERT_TRUE(h.app.run(dev, &prof));
  EXPECT_GT(prof.count(isa::Opcode::FEXP), 0u);
}

TEST(Apps, QuicksortIsControlHeavy) {
  auto h = make_quicksort(512);
  emu::Device dev(h.app.device_words);
  emu::Profiler prof;
  ASSERT_TRUE(h.app.run(dev, &prof));
  EXPECT_GT(prof.class_fraction(isa::OpClass::Control), 0.2);
}

TEST(Apps, MxMIsFfmaDominatedAmongFp) {
  auto h = make_mxm(24);
  emu::Device dev(h.app.device_words);
  emu::Profiler prof;
  ASSERT_TRUE(h.app.run(dev, &prof));
  EXPECT_GT(prof.count(isa::Opcode::FFMA), 0u);
  EXPECT_GT(prof.count(isa::Opcode::FFMA), prof.count(isa::Opcode::FADD));
}

}  // namespace
}  // namespace gpufi::apps
