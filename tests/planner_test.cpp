// Campaign-planner contract: fixed mode is the legacy campaign verbatim,
// adaptive mode is deterministic (seed- and jobs-invariant), the Wilson stop
// rule is honored per stratum, and the shared --plan vocabulary parses
// strictly.
#include <gtest/gtest.h>

#include <cstdint>

#include "apps/apps.hpp"
#include "swfi/planner.hpp"
#include "vocab/vocab.hpp"

namespace gpufi::swfi {
namespace {

Config small_campaign(unsigned jobs = 1) {
  Config cfg;
  cfg.model = FaultModel::SingleBitFlip;
  cfg.n_injections = 120;
  cfg.seed = 11;
  cfg.jobs = jobs;
  return cfg;
}

void expect_same_result(const Result& a, const Result& b) {
  EXPECT_EQ(a.injections, b.injections);
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.due, b.due);
  EXPECT_EQ(a.candidate_instructions, b.candidate_instructions);
  EXPECT_EQ(a.pc_exec_counts, b.pc_exec_counts);
  ASSERT_EQ(a.sites.size(), b.sites.size());
  for (auto ia = a.sites.begin(), ib = b.sites.begin(); ia != a.sites.end();
       ++ia, ++ib) {
    EXPECT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second.hits, ib->second.hits);
    EXPECT_EQ(ia->second.masked, ib->second.masked);
    EXPECT_EQ(ia->second.sdc, ib->second.sdc);
    EXPECT_EQ(ia->second.due, ib->second.due);
  }
}

TEST(Planner, FixedModeEqualsLegacyCampaign) {
  const auto app = apps::make_mxm(8);
  const auto cfg = small_campaign();
  const auto legacy = run_sw_campaign(app.app, cfg);
  const auto pr = run_planned_campaign(app.app, cfg, Plan{});  // target_err=0
  EXPECT_FALSE(pr.adaptive);
  EXPECT_TRUE(pr.strata.empty());
  EXPECT_EQ(pr.planned_trials, cfg.n_injections);
  EXPECT_EQ(pr.trials_saved, 0u);
  EXPECT_DOUBLE_EQ(pr.pvf, legacy.pvf());
  expect_same_result(pr.result, legacy);
}

TEST(Planner, AdaptiveStratifiesAndStops) {
  const auto app = apps::make_mxm(8);
  const auto cfg = small_campaign();
  Plan plan;
  plan.target_err = 0.25;  // generous: most strata converge well early
  plan.min_trials = 8;
  const auto pr = run_planned_campaign(app.app, cfg, plan);
  EXPECT_TRUE(pr.adaptive);
  ASSERT_FALSE(pr.strata.empty());
  std::uint64_t cand_sum = 0;
  std::size_t trials_sum = 0, budget_sum = 0;
  for (const auto& s : pr.strata) {
    cand_sum += s.candidates;
    trials_sum += s.trials;
    budget_sum += s.budget;
    EXPECT_LE(s.trials, s.budget);
    EXPECT_EQ(s.trials, s.masked + s.sdc + s.due);
    if (s.stop == StratumStop::Converged) {
      EXPECT_GE(s.trials, plan.min_trials);
      EXPECT_LE(s.sdc_half_width, plan.target_err);
    }
  }
  EXPECT_EQ(cand_sum, pr.result.candidate_instructions);
  EXPECT_EQ(trials_sum, pr.result.injections);
  EXPECT_EQ(budget_sum, pr.planned_trials);
  EXPECT_EQ(pr.trials_saved, pr.planned_trials - trials_sum);
  EXPECT_GT(pr.trials_saved, 0u);  // the generous target must save trials
  EXPECT_GE(pr.pvf, 0.0);
  EXPECT_LE(pr.pvf, 1.0);
  EXPECT_GT(pr.pvf_half_width, 0.0);
}

TEST(Planner, AdaptiveIsJobsInvariant) {
  const auto app = apps::make_mxm(8);
  Plan plan;
  plan.target_err = 0.2;
  plan.min_trials = 8;
  const auto a = run_planned_campaign(app.app, small_campaign(1), plan);
  const auto b = run_planned_campaign(app.app, small_campaign(4), plan);
  expect_same_result(a.result, b.result);
  ASSERT_EQ(a.strata.size(), b.strata.size());
  for (std::size_t i = 0; i < a.strata.size(); ++i) {
    EXPECT_EQ(a.strata[i].op, b.strata[i].op);
    EXPECT_EQ(a.strata[i].range, b.strata[i].range);
    EXPECT_EQ(a.strata[i].trials, b.strata[i].trials);
    EXPECT_EQ(a.strata[i].sdc, b.strata[i].sdc);
    EXPECT_EQ(a.strata[i].stop, b.strata[i].stop);
  }
  EXPECT_DOUBLE_EQ(a.pvf, b.pvf);
  EXPECT_DOUBLE_EQ(a.pvf_half_width, b.pvf_half_width);
  EXPECT_EQ(a.trials_saved, b.trials_saved);
}

TEST(Planner, AdaptiveIsRerunDeterministic) {
  const auto app = apps::make_mxm(8);
  Plan plan;
  plan.target_err = 0.2;
  plan.min_trials = 8;
  const auto a = run_planned_campaign(app.app, small_campaign(), plan);
  const auto b = run_planned_campaign(app.app, small_campaign(), plan);
  expect_same_result(a.result, b.result);
  EXPECT_EQ(a.trials_saved, b.trials_saved);
}

TEST(Planner, MaxTrialsCapsStrata) {
  const auto app = apps::make_mxm(8);
  Plan plan;
  plan.target_err = 0.01;  // effectively unreachable at this budget
  plan.min_trials = 4;
  plan.max_trials = 6;
  const auto pr = run_planned_campaign(app.app, small_campaign(), plan);
  for (const auto& s : pr.strata) {
    EXPECT_LE(s.budget, plan.max_trials);
    EXPECT_LE(s.trials, plan.max_trials);
  }
}

TEST(PlanVocab, ParsesFullSpec) {
  const auto p = vocab::parse_plan("target_err=0.05,min_trials=16,max_trials=500");
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->target_err, 0.05);
  EXPECT_EQ(p->min_trials, 16u);
  EXPECT_EQ(p->max_trials, 500u);
  EXPECT_TRUE(p->adaptive());
}

TEST(PlanVocab, DefaultsApply) {
  const auto p = vocab::parse_plan("target_err=0.1");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->min_trials, Plan{}.min_trials);
  EXPECT_EQ(p->max_trials, 0u);
}

TEST(PlanVocab, RejectsMalformedSpecs) {
  std::string err;
  EXPECT_FALSE(vocab::parse_plan("", &err));
  EXPECT_FALSE(vocab::parse_plan("min_trials=8", &err));  // target_err missing
  EXPECT_FALSE(vocab::parse_plan("target_err=0", &err));
  EXPECT_FALSE(vocab::parse_plan("target_err=0.6", &err));
  EXPECT_FALSE(vocab::parse_plan("target_err=abc", &err));
  EXPECT_FALSE(vocab::parse_plan("target_err=0.1,target_err=0.2", &err));
  EXPECT_FALSE(vocab::parse_plan("target_err=0.1,min_trials=0", &err));
  EXPECT_FALSE(vocab::parse_plan("target_err=0.1,bogus=3", &err));
  EXPECT_FALSE(
      vocab::parse_plan("target_err=0.1,min_trials=50,max_trials=10", &err));
  EXPECT_FALSE(vocab::parse_plan("target_err", &err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace gpufi::swfi
