// The attribution layer: liveness-timeline mechanics, pipeline-stage
// derivation, the Wilson interval, report construction invariants, and the
// golden-file pin on the rendered report (text + JSON) — the bytes
// `gpufi report` promises are stable across acceleration levels and job
// counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "attr/attr.hpp"
#include "common/statistics.hpp"
#include "core/gpufi.hpp"
#include "rtl/layouts.hpp"
#include "rtl/liveness.hpp"

namespace gpufi {
namespace {

using attr::Report;
using rtl::LivenessTimeline;
using rtl::PipeStage;

// ---------------------------------------------------------------------------
// Liveness timeline.
// ---------------------------------------------------------------------------

TEST(LivenessTimeline, IntervalLookupAndResidency) {
  LivenessTimeline t;
  t.begin(0, 0, 0, /*pc=*/3, isa::Opcode::FFMA);
  t.close(5);
  t.begin(5, 0, 0, /*pc=*/4, isa::Opcode::GST);
  t.close(12);
  t.begin(14, 0, 1, /*pc=*/3, isa::Opcode::FFMA);  // gap at [12, 14)
  t.close(20);
  t.finalize(25);

  ASSERT_NE(t.at(0), nullptr);
  EXPECT_EQ(t.at(0)->pc, 3u);
  EXPECT_EQ(t.at(4)->pc, 3u);
  EXPECT_EQ(t.at(5)->pc, 4u);
  EXPECT_EQ(t.at(11)->pc, 4u);
  EXPECT_EQ(t.at(12), nullptr);  // the gap is idle
  EXPECT_EQ(t.at(13), nullptr);
  EXPECT_EQ(t.at(14)->warp, 1u);
  EXPECT_EQ(t.at(19)->dyn_index, 2u);
  EXPECT_EQ(t.at(20), nullptr);  // past the last interval
  EXPECT_EQ(t.at(1000), nullptr);

  EXPECT_EQ(t.total_cycles(), 25u);
  EXPECT_EQ(t.live_cycles_at_pc(3), 5u + 6u);  // both dynamic executions
  EXPECT_EQ(t.live_cycles_at_pc(4), 7u);
  EXPECT_EQ(t.live_cycles_at_pc(99), 0u);
}

TEST(LivenessTimeline, TrappedRunExtendsTheUnclosedInterval) {
  // A trapping instruction never reaches close(); finalize must still make
  // it attributable up to the end of the run.
  LivenessTimeline t;
  t.begin(0, 0, 0, 0, isa::Opcode::IADD);
  t.close(6);
  t.begin(6, 0, 0, 1, isa::Opcode::GLD);  // traps mid-flight
  t.finalize(10);
  ASSERT_NE(t.at(9), nullptr);
  EXPECT_EQ(t.at(9)->pc, 1u);
  EXPECT_EQ(t.at(10), nullptr);
}

TEST(LivenessTimeline, StageDerivation) {
  // A data instruction long enough to expose every phase: with len = 12 and
  // kBeats writeback ticks, the interpreter's micro-sequence maps offsets
  // 0 -> fetch, 1 -> guard, middle -> execute, the kBeats ticks before the
  // last -> writeback, len-1 -> retire.
  LivenessTimeline t;
  t.begin(100, 0, 0, 7, isa::Opcode::FFMA);
  t.close(112);
  // A control op: everything past the guard is the scheduler resolve tick.
  t.begin(112, 0, 0, 8, isa::Opcode::BRA);
  t.close(116);
  t.finalize(116);

  const auto stage = [&](std::uint64_t cycle) {
    return rtl::resolve_fault_site(t, cycle, rtl::Module::Fp32Fu).stage;
  };
  EXPECT_EQ(stage(100), PipeStage::Fetch);
  EXPECT_EQ(stage(101), PipeStage::Guard);
  EXPECT_EQ(stage(102), PipeStage::Execute);
  EXPECT_EQ(stage(106), PipeStage::Execute);
  for (std::uint64_t c = 111 - rtl::kBeats; c < 111; ++c)
    EXPECT_EQ(stage(c), PipeStage::Writeback) << "cycle " << c;
  EXPECT_EQ(stage(111), PipeStage::Retire);

  EXPECT_EQ(stage(112), PipeStage::Fetch);
  EXPECT_EQ(stage(113), PipeStage::Guard);
  EXPECT_EQ(stage(114), PipeStage::Execute);
  EXPECT_EQ(stage(115), PipeStage::Execute);
  EXPECT_EQ(stage(116), PipeStage::Idle);
}

TEST(LivenessTimeline, UnitOccupancyFollowsTheDatapath) {
  using isa::Opcode;
  using rtl::Module;
  using rtl::unit_occupied;
  // Every instruction traverses scheduler + pipeline registers.
  EXPECT_TRUE(unit_occupied(Module::Scheduler, Opcode::FFMA));
  EXPECT_TRUE(unit_occupied(Module::PipelineRegs, Opcode::GLD));
  // Functional units are busy only for their own class.
  EXPECT_TRUE(unit_occupied(Module::Fp32Fu, Opcode::FFMA));
  EXPECT_FALSE(unit_occupied(Module::Fp32Fu, Opcode::IADD));
  EXPECT_TRUE(unit_occupied(Module::IntFu, Opcode::IMAD));
  EXPECT_FALSE(unit_occupied(Module::IntFu, Opcode::FSIN));
  EXPECT_TRUE(unit_occupied(Module::Sfu, Opcode::FEXP));
  EXPECT_TRUE(unit_occupied(Module::SfuCtl, Opcode::FSIN));
  EXPECT_FALSE(unit_occupied(Module::Sfu, Opcode::FFMA));
}

// ---------------------------------------------------------------------------
// Wilson interval.
// ---------------------------------------------------------------------------

TEST(WilsonInterval, BracketsTheProportionAndNarrowsWithN) {
  const auto empty = stats::wilson_interval(0, 0);
  EXPECT_EQ(empty.lo, 0.0);
  EXPECT_EQ(empty.hi, 1.0);

  const auto small = stats::wilson_interval(5, 20);
  EXPECT_GT(small.lo, 0.0);
  EXPECT_LT(small.lo, 0.25);
  EXPECT_GT(small.hi, 0.25);
  EXPECT_LT(small.hi, 1.0);

  const auto large = stats::wilson_interval(500, 2000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
  EXPECT_LT(large.lo, 0.25);
  EXPECT_GT(large.hi, 0.25);

  // Degenerate proportions never escape [0, 1] (the classic Wald failure).
  const auto zero = stats::wilson_interval(0, 50);
  EXPECT_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const auto one = stats::wilson_interval(50, 50);
  EXPECT_GT(one.hi, 0.99);  // 1 up to rounding in the score computation
  EXPECT_LE(one.hi, 1.0);
  EXPECT_LT(one.lo, 1.0);
}

// ---------------------------------------------------------------------------
// Report construction.
// ---------------------------------------------------------------------------

core::ReportConfig report_config() {
  core::ReportConfig cfg;
  cfg.op = isa::Opcode::FFMA;
  cfg.module = rtl::Module::Fp32Fu;
  cfg.n_faults = 200;
  cfg.seed = 7;
  return cfg;
}

TEST(AttrReport, CountsAreConsistent) {
  const Report r = core::run_report(report_config());
  EXPECT_EQ(r.workload, "FFMA/M");
  EXPECT_GT(r.golden_cycles, 0u);
  EXPECT_EQ(r.injected, 200u);
  EXPECT_EQ(r.attributed + r.unattributed, r.injected);
  ASSERT_FALSE(r.rows.empty());
  std::uint64_t hits = 0;
  for (const auto& row : r.rows) {
    hits += row.hits;
    EXPECT_EQ(row.hits, row.masked + row.sdc + row.due);
    EXPECT_LE(row.sdc_lo, row.p_sdc);
    EXPECT_GE(row.sdc_hi, row.p_sdc);
    EXPECT_GE(row.residency, 0.0);
    EXPECT_LE(row.residency, 1.0);
  }
  EXPECT_EQ(hits, r.injected);
  // Rows are sorted by descending score, the report's headline ordering.
  for (std::size_t i = 1; i < r.rows.size(); ++i)
    EXPECT_GE(r.rows[i - 1].score, r.rows[i].score);
  // Opcode aggregates cover the same hits.
  std::uint64_t op_hits = 0;
  for (const auto& o : r.opcodes) op_hits += o.hits;
  EXPECT_EQ(op_hits, r.injected);
}

TEST(AttrReport, SingleModuleReportIsASliceOfTheAllModuleReport) {
  // The per-module seed derivation (rng_derive(seed, module)) makes the
  // fp32-only report reproduce exactly the FP32 rows of the all-module
  // report — the contract that lets a served single-module report compose
  // into the offline full report.
  const Report single = core::run_report(report_config());
  auto all_cfg = report_config();
  all_cfg.module.reset();
  const Report all = core::run_report(all_cfg);

  std::vector<attr::InstrRow> fp32_rows;
  for (const auto& row : all.rows)
    if (row.module == "FP32") fp32_rows.push_back(row);
  ASSERT_EQ(fp32_rows.size(), single.rows.size());
  // Same counts per (pc, op); the floating-point derivatives follow.
  auto sorted = [](std::vector<attr::InstrRow> rows) {
    std::sort(rows.begin(), rows.end(),
              [](const attr::InstrRow& a, const attr::InstrRow& b) {
                return std::tie(a.live, a.pc) < std::tie(b.live, b.pc);
              });
    return rows;
  };
  const auto a = sorted(fp32_rows);
  const auto b = sorted(single.rows);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pc, b[i].pc);
    EXPECT_EQ(a[i].op, b[i].op);
    EXPECT_EQ(a[i].hits, b[i].hits);
    EXPECT_EQ(a[i].masked, b[i].masked);
    EXPECT_EQ(a[i].sdc, b[i].sdc);
    EXPECT_EQ(a[i].due, b[i].due);
  }
}

// ---------------------------------------------------------------------------
// Golden-file pin on the rendered bytes.
// ---------------------------------------------------------------------------

std::string read_golden(const std::string& name) {
  const std::string path = std::string(GPUFI_TEST_GOLDEN_DIR) + "/" + name;
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << "missing golden file " << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

TEST(AttrReport, RenderedReportMatchesGoldenFiles) {
  // Regenerate with:
  //   gpufi report FFMA fp32 --faults 200 --seed 7 \
  //       --out tests/golden/report_ffma_fp32.txt
  //   gpufi report FFMA fp32 --faults 200 --seed 7 --json \
  //       --out tests/golden/report_ffma_fp32.json
  const Report r = core::run_report(report_config());
  EXPECT_EQ(attr::render_text(r), read_golden("report_ffma_fp32.txt"));
  EXPECT_EQ(attr::render_json(r), read_golden("report_ffma_fp32.json"));
}

}  // namespace
}  // namespace gpufi
