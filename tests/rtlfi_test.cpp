#include <gtest/gtest.h>

#include <cmath>

#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"

namespace gpufi::rtlfi {
namespace {

using isa::Opcode;
using rtl::Module;

CampaignResult quick(Opcode op, Module m, std::size_t n = 300,
                     InputRange r = InputRange::Medium) {
  const auto w = make_microbenchmark(op, r, 1);
  CampaignConfig cfg;
  cfg.module = m;
  cfg.n_faults = n;
  cfg.seed = 99;
  return run_campaign(w, cfg);
}

TEST(Microbench, AllTwelveBuildAndRunGolden) {
  for (Opcode op : {Opcode::FADD, Opcode::FMUL, Opcode::FFMA, Opcode::IADD,
                    Opcode::IMUL, Opcode::IMAD, Opcode::FSIN, Opcode::FEXP,
                    Opcode::GLD, Opcode::GST, Opcode::BRA, Opcode::ISETP}) {
    for (auto r : {InputRange::Small, InputRange::Medium, InputRange::Large}) {
      const auto w = make_microbenchmark(op, r, 7);
      rtl::Sm sm;
      w.setup(sm);
      const auto res = sm.run(w.program, w.dims);
      ASSERT_EQ(res.status, rtl::RunStatus::Ok)
          << w.name << ": " << res.trap_reason;
    }
  }
}

TEST(Microbench, RejectsNonCharacterizedOpcodes) {
  EXPECT_THROW(make_microbenchmark(Opcode::MOV, InputRange::Medium, 1),
               std::invalid_argument);
}

TEST(Microbench, OutputsAreNonTrivial) {
  const auto w = make_microbenchmark(Opcode::FFMA, InputRange::Medium, 3);
  rtl::Sm sm;
  w.setup(sm);
  ASSERT_EQ(sm.run(w.program, w.dims).status, rtl::RunStatus::Ok);
  unsigned nonzero = 0;
  for (unsigned i = 0; i < w.out_words; ++i)
    nonzero += sm.read_word(w.out_base + i) != 0;
  EXPECT_EQ(nonzero, w.out_words);  // every thread stored a real result
}

TEST(Microbench, RangeClassification) {
  EXPECT_EQ(classify_float_input(7.0e-6f), InputRange::Small);
  EXPECT_EQ(classify_float_input(10.0f), InputRange::Medium);
  EXPECT_EQ(classify_float_input(5.0e9f), InputRange::Large);
  EXPECT_EQ(classify_float_input(-10.0f), InputRange::Medium);
  EXPECT_EQ(classify_int_input(3), InputRange::Small);
  EXPECT_EQ(classify_int_input(500), InputRange::Medium);
  EXPECT_EQ(classify_int_input(2'000'000'000u), InputRange::Large);
}

TEST(Campaign, CountsAreConsistent) {
  const auto r = quick(Opcode::FADD, Module::Fp32Fu, 250);
  EXPECT_EQ(r.injected, 250u);
  EXPECT_EQ(r.masked + r.sdc_single + r.sdc_multi + r.due, r.injected);
  EXPECT_GT(r.golden_cycles, 0u);
}

TEST(Campaign, DeterministicForSameSeed) {
  const auto a = quick(Opcode::IADD, Module::IntFu, 200);
  const auto b = quick(Opcode::IADD, Module::IntFu, 200);
  EXPECT_EQ(a.sdc_single, b.sdc_single);
  EXPECT_EQ(a.sdc_multi, b.sdc_multi);
  EXPECT_EQ(a.due, b.due);
}

TEST(Campaign, FuFaultsOnlyMatterForMatchingClass) {
  // The paper does not characterize FUs for memory/control ops: the units
  // are idle. Our model reproduces that (INT is exercised by addressing,
  // so only the mismatched-FU cases are exactly zero).
  EXPECT_EQ(quick(Opcode::IADD, Module::Fp32Fu, 200).avf(), 0.0);
  EXPECT_EQ(quick(Opcode::FADD, Module::Sfu, 200).avf(), 0.0);
  EXPECT_EQ(quick(Opcode::GLD, Module::SfuCtl, 200).avf(), 0.0);
  EXPECT_GT(quick(Opcode::FADD, Module::Fp32Fu, 400).avf(), 0.0);
}

TEST(Campaign, FuSdcsDominateOverDues) {
  // Fig. 4: functional-unit corruptions are much more likely to produce
  // SDCs than DUEs.
  const auto r = quick(Opcode::FFMA, Module::Fp32Fu, 500);
  EXPECT_GT(r.avf_sdc(), 2.0 * r.avf_due());
}

TEST(Campaign, PipelineProducesDues) {
  const auto r = quick(Opcode::IMAD, Module::PipelineRegs, 500);
  EXPECT_GT(r.due, 0u);
  EXPECT_GT(r.sdc_single + r.sdc_multi, 0u);
}

TEST(Campaign, FuCorruptionsAreSingleThread) {
  const auto r = quick(Opcode::FMUL, Module::Fp32Fu, 600);
  ASSERT_GT(r.sdc_single + r.sdc_multi, 0u);
  EXPECT_LT(r.multi_fraction(), 0.15);
  EXPECT_NEAR(r.mean_corrupted_threads(), 1.0, 0.5);
}

TEST(Campaign, SchedulerCorruptionsHitMultipleThreads) {
  CampaignResult merged;
  for (auto op : {Opcode::FADD, Opcode::IADD})
    merged.merge(quick(op, Module::Scheduler, 600));
  ASSERT_GT(merged.sdc_single + merged.sdc_multi, 0u);
  EXPECT_GT(merged.multi_fraction(), 0.2);
  EXPECT_GT(merged.mean_corrupted_threads(), 2.0);
}

TEST(Campaign, DetailedRecordsDescribeSdcs) {
  const auto r = quick(Opcode::FADD, Module::Fp32Fu, 500);
  ASSERT_FALSE(r.records.empty());
  for (const auto& rec : r.records) {
    EXPECT_EQ(rec.outcome, Outcome::Sdc);
    EXPECT_GT(rec.corrupted_elements, 0u);
    EXPECT_FALSE(rec.field.empty());
    ASSERT_FALSE(rec.diffs.empty());
    for (const auto& d : rec.diffs) {
      EXPECT_NE(d.golden, d.faulty);
      EXPECT_GT(d.bits_flipped, 0u);
    }
  }
}

TEST(Campaign, MarginOfErrorShrinksWithSamples) {
  // Enough faults that even the smaller campaign observes some SDCs (a
  // zero-AVF sample has a degenerate zero margin).
  const auto small = quick(Opcode::FADD, Module::Fp32Fu, 250);
  const auto large = quick(Opcode::FADD, Module::Fp32Fu, 1000);
  ASSERT_GT(small.avf(), 0.0);
  EXPECT_GT(small.margin_of_error(), large.margin_of_error());
}

TEST(Campaign, MergeAccumulates) {
  auto a = quick(Opcode::FADD, Module::Fp32Fu, 150);
  const auto b = quick(Opcode::FADD, Module::Fp32Fu, 150);
  const auto sdc = a.sdc_single + b.sdc_single;
  a.merge(b);
  EXPECT_EQ(a.injected, 300u);
  EXPECT_EQ(a.sdc_single, sdc);
}

TEST(Tmxm, GoldenMatchesHostMatmul) {
  for (auto kind : {TileKind::Max, TileKind::Zero, TileKind::Random}) {
    const auto w = make_tmxm(kind, 3);
    rtl::Sm sm;
    w.setup(sm);
    // Snapshot inputs before the run.
    float a[64], b[64];
    for (unsigned i = 0; i < 64; ++i) {
      a[i] = sm.read_float(i);
      b[i] = sm.read_float(64 + i);
    }
    ASSERT_EQ(sm.run(w.program, w.dims).status, rtl::RunStatus::Ok);
    for (unsigned r = 0; r < 8; ++r)
      for (unsigned c = 0; c < 8; ++c) {
        float acc = 0;
        for (unsigned k = 0; k < 8; ++k)
          acc = std::fmaf(a[r * 8 + k], b[k * 8 + c], acc);
        ASSERT_FLOAT_EQ(sm.read_float(w.out_base + r * 8 + c), acc);
      }
  }
}

TEST(Tmxm, SchedulerFaultsProduceMultiElementSdcs) {
  const auto w = make_tmxm(TileKind::Random, 1);
  CampaignConfig cfg;
  cfg.module = rtl::Module::Scheduler;
  cfg.n_faults = 900;
  cfg.seed = 5;
  const auto r = run_campaign(w, cfg);
  ASSERT_GT(r.sdc_single + r.sdc_multi, 0u);
  // Fig. 7: a large share of scheduler SDCs corrupt multiple elements.
  EXPECT_GT(r.multi_fraction(), 0.25);
}

TEST(Tmxm, ZeroTileMasksMoreThanRandomTile) {
  // Sec. V-D: downstream multiplications by zero mask pipeline data faults;
  // the Z tile shows a lower SDC AVF than the R tile.
  CampaignConfig cfg;
  cfg.module = rtl::Module::PipelineRegs;
  cfg.n_faults = 1200;
  cfg.seed = 6;
  const auto z = run_campaign(make_tmxm(TileKind::Zero, 2), cfg);
  const auto r = run_campaign(make_tmxm(TileKind::Random, 2), cfg);
  EXPECT_LT(z.avf_sdc(), r.avf_sdc());
}

}  // namespace
}  // namespace gpufi::rtlfi
