// Tests for gpufi-fabric: the endpoint grammar, chunk-aligned shard
// planning, the lossless partial codecs, the version handshake, and
// coordinator/worker fleets pinning the distributed byte-identity
// contract — a fabric campaign's merged payload equals the offline
// single-process run for any worker count, over Unix or TCP transport,
// and even after a worker dies mid-campaign and its shard is retried.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/engine.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/protocol.hpp"
#include "fabric/transport.hpp"
#include "fabric/worker.hpp"
#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "swfi/swfi.hpp"
#include "vocab/vocab.hpp"

using namespace gpufi;
using namespace gpufi::fabric;

namespace {

/// A multi-shard RTL spec: 96 faults = 6 chunks of 16, so any worker count
/// in {1,2,4} exercises a genuine multi-way merge.
serve::CampaignSpec rtl_spec() {
  serve::CampaignSpec spec;
  spec.kind = serve::CampaignKind::Rtl;
  spec.op = "FFMA";
  spec.module = "fp32";
  spec.range = "M";
  spec.faults = 96;
  spec.seed = 7;
  spec.jobs = 1;
  spec.accel = "full";
  return spec;
}

serve::CampaignSpec sw_spec() {
  serve::CampaignSpec spec;
  spec.kind = serve::CampaignKind::Sw;
  spec.app = "mxm";
  spec.model = "bitflip";
  spec.injections = 48;  // 3 chunks of 16
  spec.seed = 11;
  spec.jobs = 1;
  return spec;
}

/// A coordinator listening on a unix socket in the test cwd plus `n`
/// in-process workers, started and registered before the constructor
/// returns. Teardown order (workers, then coordinator) is the destructor.
struct Fleet {
  explicit Fleet(const std::string& socket, std::size_t n,
                 CoordinatorConfig base = {}) {
    base.listen = *parse_endpoint("unix:" + socket);
    coord = std::make_unique<Coordinator>(base);
    coord->start();
    for (std::size_t i = 0; i < n; ++i) add_worker({});
    EXPECT_TRUE(coord->wait_for_workers(n, 10'000));
  }

  Worker& add_worker(WorkerConfig wcfg) {
    wcfg.coordinator = coord->config().listen;
    if (wcfg.name.empty())
      wcfg.name = "w" + std::to_string(workers.size());
    wcfg.heartbeat_ms = 50;
    workers.push_back(std::make_unique<Worker>(wcfg));
    workers.back()->start();
    return *workers.back();
  }

  ~Fleet() {
    for (auto& w : workers) w->stop();
    if (coord) coord->stop();
  }

  std::unique_ptr<Coordinator> coord;
  std::vector<std::unique_ptr<Worker>> workers;
};

}  // namespace

// --------------------------------------------------------------- transport

TEST(Transport, ParseEndpointGrammar) {
  auto e = parse_endpoint("unix:/tmp/fab.sock");
  ASSERT_TRUE(e);
  EXPECT_EQ(e->kind, Endpoint::Kind::Unix);
  EXPECT_EQ(e->path, "/tmp/fab.sock");
  EXPECT_EQ(e->describe(), "unix:/tmp/fab.sock");

  e = parse_endpoint("tcp:127.0.0.1:9000");
  ASSERT_TRUE(e);
  EXPECT_EQ(e->kind, Endpoint::Kind::Tcp);
  EXPECT_EQ(e->host, "127.0.0.1");
  EXPECT_EQ(e->port, 9000);
  EXPECT_EQ(e->describe(), "tcp:127.0.0.1:9000");

  e = parse_endpoint("localhost:80");  // tcp: shorthand
  ASSERT_TRUE(e);
  EXPECT_EQ(e->kind, Endpoint::Kind::Tcp);
  EXPECT_EQ(e->host, "localhost");
  EXPECT_EQ(e->port, 80);

  e = parse_endpoint("fab.sock");  // unix: shorthand (no colon)
  ASSERT_TRUE(e);
  EXPECT_EQ(e->kind, Endpoint::Kind::Unix);
  EXPECT_EQ(e->path, "fab.sock");

  EXPECT_FALSE(parse_endpoint(""));
  EXPECT_FALSE(parse_endpoint("tcp:host"));         // no port
  EXPECT_FALSE(parse_endpoint("host:notaport"));    // non-numeric port
  EXPECT_FALSE(parse_endpoint("host:70000"));       // out of range
  EXPECT_FALSE(parse_endpoint(":123"));             // empty host
}

// ---------------------------------------------------------- shard planning

TEST(PlanShards, PartitionsAreChunkAlignedAndCoverEverything) {
  for (const std::size_t n : {1, 16, 30, 96, 1000, 16384}) {
    for (const std::size_t max_shards : {1, 2, 4, 7, 64}) {
      const auto shards = exec::plan_shards(n, max_shards);
      ASSERT_FALSE(shards.empty());
      EXPECT_LE(shards.size(), max_shards);
      const std::size_t chunk = exec::chunk_size(n);
      std::size_t next = 0;
      for (const auto& s : shards) {
        EXPECT_EQ(s.offset, next) << "gap or overlap at " << s.offset;
        EXPECT_GT(s.count, 0u);
        EXPECT_EQ(s.offset % chunk, 0u) << "unaligned shard start";
        next = s.offset + s.count;
        if (&s != &shards.back()) {
          EXPECT_EQ(next % chunk, 0u) << "unaligned shard end";
        }
      }
      EXPECT_EQ(next, n) << "partition must cover [0, n)";
    }
  }
  EXPECT_TRUE(exec::plan_shards(0, 4).empty());
}

TEST(PlanShards, ShardedCampaignMergesToWholeCampaignBytes) {
  const auto spec = rtl_spec();
  const auto w = rtlfi::make_microbenchmark(isa::Opcode::FFMA,
                                            rtlfi::InputRange::Medium, 7);
  rtlfi::CampaignConfig cfg;
  cfg.module = rtl::Module::Fp32Fu;
  cfg.n_faults = 96;
  cfg.seed = 7;
  cfg.jobs = 1;
  const auto whole = rtlfi::run_campaign(w, cfg);

  for (const std::size_t n_shards : {2, 3, 6}) {
    rtlfi::CampaignResult merged;
    for (const auto& r : exec::plan_shards(96, n_shards)) {
      rtlfi::CampaignConfig shard = cfg;
      shard.shard_offset = r.offset;
      shard.shard_count = r.count;
      merged.merge(rtlfi::run_campaign(w, shard));
    }
    EXPECT_EQ(serve::serialize_campaign_result(spec, merged),
              serve::serialize_campaign_result(spec, whole))
        << n_shards << "-way shard merge drifted from the whole campaign";
  }
}

// ----------------------------------------------------------- wire messages

TEST(Protocol, ControlMessagesRoundTrip) {
  const Hello h{3, "rack7-gpu2", 4242};
  const auto hd = decode_hello(encode_hello(h));
  ASSERT_TRUE(hd);
  EXPECT_EQ(hd->version, 3u);
  EXPECT_EQ(hd->name, "rack7-gpu2");
  EXPECT_EQ(hd->pid, 4242u);

  ShardRequest req;
  req.job = 9;
  req.shard_index = 2;
  req.n_shards = 6;
  req.trial_offset = 32;
  req.trial_count = 16;
  req.final_payload = false;
  req.spec = rtl_spec();
  const auto rd = decode_shard_request(encode_shard_request(req));
  ASSERT_TRUE(rd);
  EXPECT_EQ(rd->job, 9u);
  EXPECT_EQ(rd->shard_index, 2u);
  EXPECT_EQ(rd->n_shards, 6u);
  EXPECT_EQ(rd->trial_offset, 32u);
  EXPECT_EQ(rd->trial_count, 16u);
  EXPECT_FALSE(rd->final_payload);
  EXPECT_EQ(serve::encode_spec(rd->spec), serve::encode_spec(req.spec));

  // Result/error payloads are raw bytes: embedded newlines and the marker
  // vocabulary itself must survive.
  const ShardResultMsg res{9, 2, "v=1\ninjected=16\n--- weird ---\n"};
  const auto resd = decode_shard_result(encode_shard_result(res));
  ASSERT_TRUE(resd);
  EXPECT_EQ(resd->job, 9u);
  EXPECT_EQ(resd->shard_index, 2u);
  EXPECT_EQ(resd->payload, res.payload);

  const ShardErrorMsg err{9, 2, "multi\nline\nerror"};
  const auto errd = decode_shard_error(encode_shard_error(err));
  ASSERT_TRUE(errd);
  EXPECT_EQ(errd->error, err.error);

  const ShardProgressMsg prog{9, 2, 12, 16};
  const auto progd = decode_shard_progress(encode_shard_progress(prog));
  ASSERT_TRUE(progd);
  EXPECT_EQ(progd->done, 12u);
  EXPECT_EQ(progd->total, 16u);
}

TEST(Protocol, RtlPartialRoundTripsBitForBit) {
  const auto w = rtlfi::make_microbenchmark(isa::Opcode::FFMA,
                                            rtlfi::InputRange::Medium, 7);
  rtlfi::CampaignConfig cfg;
  cfg.module = rtl::Module::Fp32Fu;
  cfg.n_faults = 32;
  cfg.seed = 7;
  cfg.jobs = 1;
  cfg.keep_all_records = true;  // exercise DUE/multi-SDC record paths too
  const auto r = rtlfi::run_campaign(w, cfg);
  ASSERT_GT(r.injected, 0u);

  std::string error;
  const auto back = decode_rtl_partial(encode_rtl_partial(r), &error);
  ASSERT_TRUE(back) << error;
  // Re-encoding the decoded result must reproduce the wire bytes exactly —
  // a lossless codec composed with itself is the identity.
  EXPECT_EQ(encode_rtl_partial(*back), encode_rtl_partial(r));
  EXPECT_EQ(back->injected, r.injected);
  EXPECT_EQ(back->masked, r.masked);
  EXPECT_EQ(back->due, r.due);
  EXPECT_EQ(back->golden_cycles, r.golden_cycles);
  ASSERT_EQ(back->records.size(), r.records.size());
  // And the public serialization — what the coordinator actually ships to
  // the client — cannot tell the decoded result from the original.
  const auto spec = rtl_spec();
  EXPECT_EQ(serve::serialize_campaign_result(spec, *back),
            serve::serialize_campaign_result(spec, r));
}

TEST(Protocol, SwPartialRoundTripsBitForBit) {
  const auto app = vocab::make_app("mxm");
  swfi::Config cfg;
  cfg.model = swfi::FaultModel::SingleBitFlip;
  cfg.n_injections = 48;
  cfg.seed = 11;
  cfg.jobs = 1;
  const auto r = swfi::run_sw_campaign(app.app, cfg);
  ASSERT_GT(r.injections, 0u);

  std::string error;
  const auto back = decode_sw_partial(encode_sw_partial(r), &error);
  ASSERT_TRUE(back) << error;
  EXPECT_EQ(encode_sw_partial(*back), encode_sw_partial(r));
  EXPECT_EQ(serve::serialize_sw_result(*back), serve::serialize_sw_result(r));
}

TEST(Protocol, PartialDecodersRejectGarbage) {
  std::string error;
  EXPECT_FALSE(decode_rtl_partial("", &error));
  EXPECT_FALSE(decode_rtl_partial("v=99\n", &error));
  EXPECT_FALSE(decode_sw_partial("not a partial", &error));
  EXPECT_FALSE(decode_shard_request("job=\n"));
  EXPECT_FALSE(decode_hello("version=x\n"));
}

TEST(Protocol, SpecWorkersFieldRoundTrips) {
  auto spec = rtl_spec();
  spec.workers = 4;
  const auto back = serve::decode_spec(serve::encode_spec(spec));
  ASSERT_TRUE(back);
  EXPECT_EQ(back->workers, 4u);
}

// ------------------------------------------------------- fleet byte-identity

TEST(Fabric, RtlByteIdenticalAcrossWorkerCounts) {
  const auto spec = rtl_spec();
  const std::string offline = serve::run_spec_offline(spec);
  for (const std::size_t n_workers : {1, 2, 4}) {
    Fleet fleet("fab_rtl_" + std::to_string(n_workers) + ".sock", n_workers);
    const std::string served = fleet.coord->run_job(
        spec, static_cast<unsigned>(n_workers), {}, nullptr);
    EXPECT_EQ(served, offline)
        << n_workers << "-worker fabric run drifted from offline";
    const auto s = fleet.coord->stats();
    EXPECT_EQ(s.jobs_completed, 1u);
    EXPECT_EQ(s.shards_retried, 0u);
    EXPECT_EQ(s.shards_duplicate, 0u);
  }
}

TEST(Fabric, SwAndTmxmCampaignsByteIdentical) {
  Fleet fleet("fab_mixed.sock", 2);
  const auto sw = sw_spec();
  EXPECT_EQ(fleet.coord->run_job(sw, 2, {}, nullptr),
            serve::run_spec_offline(sw));

  serve::CampaignSpec tmxm;
  tmxm.kind = serve::CampaignKind::Tmxm;
  tmxm.module = "sched";
  tmxm.tile = "random";
  tmxm.faults = 64;
  tmxm.seed = 3;
  tmxm.jobs = 1;
  tmxm.accel = "full";
  EXPECT_EQ(fleet.coord->run_job(tmxm, 2, {}, nullptr),
            serve::run_spec_offline(tmxm));
}

TEST(Fabric, PlannedSwCampaignRunsAsSingleShard) {
  // The adaptive planner's trial loop is sequential by construction, so the
  // fabric must NOT split it: one final_payload shard, bytes still equal.
  Fleet fleet("fab_planned.sock", 2);
  auto spec = sw_spec();
  spec.plan = "target_err=0.2,min_trials=8";
  EXPECT_EQ(fleet.coord->run_job(spec, 2, {}, nullptr),
            serve::run_spec_offline(spec));
  EXPECT_EQ(fleet.coord->stats().shards_dispatched, 1u);
}

TEST(Fabric, TcpTransportByteIdentical) {
  CoordinatorConfig ccfg;
  ccfg.listen = *parse_endpoint("tcp:127.0.0.1:0");  // ephemeral port
  ccfg.worker_wait_ms = 10'000;
  Coordinator coord(ccfg);
  coord.start();
  ASSERT_GT(coord.port(), 0u);

  WorkerConfig wcfg;
  wcfg.coordinator =
      *parse_endpoint("tcp:127.0.0.1:" + std::to_string(coord.port()));
  wcfg.heartbeat_ms = 50;
  Worker worker(wcfg);
  worker.start();
  ASSERT_TRUE(coord.wait_for_workers(1, 10'000));

  const auto spec = rtl_spec();
  EXPECT_EQ(coord.run_job(spec, 1, {}, nullptr),
            serve::run_spec_offline(spec));
  worker.stop();
  coord.stop();
}

TEST(Fabric, ProgressIsMonotonicAndBounded) {
  Fleet fleet("fab_progress.sock", 2);
  std::mutex mu;
  std::vector<std::size_t> dones;
  auto spec = rtl_spec();
  spec.progress_interval = 4;
  const std::string served =
      fleet.coord->run_job(spec, 2,
                           [&](const exec::Progress& p) {
                             std::lock_guard<std::mutex> lock(mu);
                             EXPECT_EQ(p.total, 96u);
                             EXPECT_LE(p.done, p.total);
                             dones.push_back(p.done);
                           },
                           nullptr);
  EXPECT_EQ(served, serve::run_spec_offline(rtl_spec()));
  ASSERT_FALSE(dones.empty()) << "no progress frames reached the client";
  for (std::size_t i = 1; i < dones.size(); ++i)
    EXPECT_LE(dones[i - 1], dones[i]) << "progress regressed at frame " << i;
}

// ------------------------------------------------------------ failure paths

TEST(Fabric, VersionMismatchIsRejectedWithClearError) {
  Fleet fleet("fab_version.sock", 1);
  WorkerConfig stale;
  stale.protocol_version = kFabricProtocolVersion + 41;
  stale.name = "stale";
  try {
    fleet.add_worker(stale);
    FAIL() << "a mismatched worker must be rejected at registration";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version"), std::string::npos) << what;
    // Both versions are named so the operator knows which side is stale.
    EXPECT_NE(what.find("v" + std::to_string(kFabricProtocolVersion)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find(std::to_string(kFabricProtocolVersion + 41)),
              std::string::npos)
        << what;
  }
  EXPECT_EQ(fleet.coord->stats().workers_rejected, 1u);
  EXPECT_EQ(fleet.coord->stats().workers_alive, 1u);
  // The healthy fleet is unaffected.
  const auto spec = rtl_spec();
  EXPECT_EQ(fleet.coord->run_job(spec, 1, {}, nullptr),
            serve::run_spec_offline(spec));
}

TEST(Fabric, WorkerDeathMidCampaignRetriesWithoutChangingBytes) {
  CoordinatorConfig ccfg;
  ccfg.heartbeat_timeout_ms = 2000;
  Fleet fleet("fab_death.sock", 0, ccfg);
  // Worker A crashes on receipt of its second shard — after returning real
  // results, so the coordinator holds a genuine partial merge when it dies.
  WorkerConfig crashy;
  crashy.name = "crashy";
  crashy.fail_after_shards = 1;
  fleet.add_worker(crashy);
  WorkerConfig steady;
  steady.name = "steady";
  fleet.add_worker(steady);
  ASSERT_TRUE(fleet.coord->wait_for_workers(2, 10'000));

  const auto spec = rtl_spec();
  const std::string served = fleet.coord->run_job(spec, 2, {}, nullptr);
  EXPECT_EQ(served, serve::run_spec_offline(spec))
      << "retried shard changed the merged bytes";
  const auto s = fleet.coord->stats();
  EXPECT_GE(s.shards_retried, 1u) << "the crash was never exercised";
  EXPECT_EQ(s.jobs_completed, 1u);
  EXPECT_EQ(s.workers_alive, 1u);
}

TEST(Fabric, NoWorkersFailsWithClearError) {
  CoordinatorConfig ccfg;
  ccfg.worker_wait_ms = 100;
  Fleet fleet("fab_empty.sock", 0, ccfg);
  try {
    fleet.coord->run_job(rtl_spec(), 2, {}, nullptr);
    FAIL() << "a workerless fabric must fail the job";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no fabric workers"),
              std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------- daemon integration

TEST(ServerFabric, SubmitFansOutAndMatchesOffline) {
  serve::ServerConfig cfg;
  cfg.socket_path = "serve_fabric.sock";
  cfg.workers = 2;
  cfg.fabric_listen = "unix:serve_fabric_fab.sock";
  serve::Server server(cfg);
  server.start();

  WorkerConfig wcfg;
  wcfg.coordinator = *parse_endpoint(cfg.fabric_listen);
  wcfg.heartbeat_ms = 50;
  Worker w1(wcfg), w2(wcfg);
  w1.start();
  w2.start();
  ASSERT_TRUE(server.coordinator() != nullptr);
  ASSERT_TRUE(server.coordinator()->wait_for_workers(2, 10'000));

  auto spec = rtl_spec();
  spec.workers = 2;
  const auto outcome = serve::submit_campaign(cfg.socket_path, spec);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  auto offline_spec = rtl_spec();  // workers is transport config, not
  EXPECT_EQ(outcome.result,        // result-affecting: compare without it
            serve::run_spec_offline(offline_spec));

  const auto stats = server.stats();
  EXPECT_EQ(stats.fabric_workers_registered, 2u);
  EXPECT_EQ(stats.fabric_workers_alive, 2u);
  EXPECT_GT(stats.fabric_shards_completed, 0u);
  EXPECT_EQ(stats.fabric_shards_inflight, 0u);

  std::string error;
  const auto text = serve::query_metrics(cfg.socket_path, &error);
  ASSERT_TRUE(text) << error;
  EXPECT_NE(text->find("gpufi_fabric_workers_alive"), std::string::npos);
  EXPECT_NE(text->find("gpufi_fabric_shards_inflight"), std::string::npos);

  // Stats survive their wire codec with the fabric fields intact.
  const auto decoded = serve::decode_stats(serve::encode_stats(stats));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->fabric_workers_alive, stats.fabric_workers_alive);
  EXPECT_EQ(decoded->fabric_shards_completed, stats.fabric_shards_completed);

  w1.stop();
  w2.stop();
  server.shutdown(/*drain=*/true);
}

TEST(ServerFabric, WorkersWithoutFabricIsRejected) {
  serve::ServerConfig cfg;
  cfg.socket_path = "serve_nofabric.sock";
  serve::Server server(cfg);
  server.start();
  auto spec = rtl_spec();
  spec.workers = 2;
  const auto outcome = serve::submit_campaign(cfg.socket_path, spec);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("no fabric"), std::string::npos)
      << outcome.error;
  server.shutdown(/*drain=*/false);
}
