// Unit tests for the shared parallel campaign engine: the thread pool, the
// derived-stream rng, and the bit-identical-across-jobs determinism contract
// of the RTL/software campaign runners and the syndrome-database builder.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "apps/apps.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/gpufi.hpp"
#include "exec/engine.hpp"
#include "rtlfi/campaign.hpp"
#include "rtlfi/microbench.hpp"
#include "swfi/swfi.hpp"
#include "syndrome/syndrome.hpp"

using namespace gpufi;

// ---------------------------------------------------------------- rng_derive

TEST(RngDerive, IsDeterministicAndStreamSensitive) {
  EXPECT_EQ(rng_derive(42, 7), rng_derive(42, 7));
  EXPECT_NE(rng_derive(42, 7), rng_derive(42, 8));
  EXPECT_NE(rng_derive(42, 7), rng_derive(43, 7));
  // Order of stream indices matters (a stream is a path, not a set).
  EXPECT_NE(rng_derive(42, 1, 2), rng_derive(42, 2, 1));
  // More indices = a different stream, not a prefix alias.
  EXPECT_NE(rng_derive(42, 1), rng_derive(42, 1, 0));
}

TEST(RngDerive, IsUsableAtCompileTime) {
  static_assert(rng_derive(1, 2, 3) != rng_derive(1, 2, 4));
  constexpr std::uint64_t s = splitmix64(0);
  static_assert(s != 0);
}

TEST(RngDerive, NearbySeedsGiveDecorrelatedStreams) {
  // Consecutive trial indices must not produce correlated generators: check
  // that the first outputs of 64 adjacent streams are all distinct.
  std::vector<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 64; ++i)
    firsts.push_back(Rng(rng_derive(123, i))());
  std::sort(firsts.begin(), firsts.end());
  EXPECT_EQ(std::adjacent_find(firsts.begin(), firsts.end()), firsts.end());
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (unsigned jobs : {1u, 2u, 4u}) {
    ThreadPool pool(jobs);
    std::vector<std::atomic<int>> hits(257);
    pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, IsReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int batch = 0; batch < 20; ++batch)
    pool.run(31, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 20u * 31u);
}

TEST(ThreadPool, HandlesEmptyAndTinyBatches) {
  ThreadPool pool(4);
  pool.run(0, [](std::size_t) { FAIL() << "task ran for n=0"; });
  std::atomic<int> n{0};
  pool.run(1, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPool, RethrowsFirstTaskException) {
  for (unsigned jobs : {1u, 4u}) {
    ThreadPool pool(jobs);
    EXPECT_THROW(
        pool.run(64,
                 [](std::size_t i) {
                   if (i == 13) throw std::runtime_error("boom");
                 }),
        std::runtime_error);
    // The pool survives a throwing batch.
    std::atomic<int> n{0};
    pool.run(8, [&](std::size_t) { ++n; });
    EXPECT_EQ(n.load(), 8);
  }
}

TEST(ThreadPool, SizeIsAtLeastOne) {
  EXPECT_GE(ThreadPool(1).size(), 1u);
  EXPECT_GE(ThreadPool(3).size(), 3u);
  EXPECT_GE(ThreadPool::default_jobs(), 1u);
}

// -------------------------------------------------------------- exec engine

namespace {

/// Toy result type: order-sensitive record list + commutative counter.
struct ToyResult {
  std::vector<std::uint64_t> draws;
  std::uint64_t sum = 0;
  void merge(const ToyResult& o) {
    sum += o.sum;
    draws.insert(draws.end(), o.draws.begin(), o.draws.end());
  }
};

ToyResult toy_campaign(std::size_t n, unsigned jobs) {
  exec::EngineConfig ec;
  ec.n_trials = n;
  ec.seed = 99;
  ec.jobs = jobs;
  return exec::run_trials<ToyResult>(
      ec, [] { return 0; },
      [](int&, std::size_t, Rng& rng, ToyResult& shard) {
        const std::uint64_t d = rng();
        shard.sum += d;
        shard.draws.push_back(d);
      });
}

}  // namespace

TEST(Engine, ChunkSizeDependsOnlyOnTrialCount) {
  EXPECT_GE(exec::chunk_size(1), 1u);
  EXPECT_EQ(exec::chunk_size(500), exec::chunk_size(500));
  EXPECT_LE(exec::chunk_size(1'000'000), 256u);
}

TEST(Engine, TrialsAreIdenticalAndOrderedForAnyJobs) {
  const ToyResult serial = toy_campaign(333, 1);
  ASSERT_EQ(serial.draws.size(), 333u);
  for (unsigned jobs : {2u, 4u, 7u}) {
    const ToyResult parallel = toy_campaign(333, jobs);
    EXPECT_EQ(serial.sum, parallel.sum);
    EXPECT_EQ(serial.draws, parallel.draws);  // trial-index order preserved
  }
}

TEST(Engine, ProgressReachesTotalExactlyOnceAtEnd) {
  exec::EngineConfig ec;
  ec.n_trials = 200;
  ec.seed = 1;
  ec.jobs = 4;
  std::atomic<std::size_t> final_reports{0};
  std::atomic<std::size_t> last_done{0};
  ec.progress = [&](const exec::Progress& p) {
    EXPECT_EQ(p.total, 200u);
    EXPECT_LE(p.done, p.total);
    last_done = p.done;
    if (p.done == p.total) ++final_reports;
  };
  exec::run_trials<ToyResult>(
      ec, [] { return 0; },
      [](int&, std::size_t, Rng&, ToyResult& shard) { ++shard.sum; });
  EXPECT_EQ(final_reports.load(), 1u);
  EXPECT_EQ(last_done.load(), 200u);
}

TEST(Engine, ProgressIntervalControlsCallbackCadence) {
  // --progress-interval N overrides the adaptive ~2% step: interval=1 fires
  // once per trial, interval=10 roughly every 10 trials. The exact set of
  // `done` values reported is deterministic per interval (the meter counts
  // completions; which worker crosses a step boundary is scheduling-
  // dependent, but every boundary is crossed exactly once at jobs=1).
  for (const std::size_t interval : {std::size_t{1}, std::size_t{10}}) {
    exec::EngineConfig ec;
    ec.n_trials = 100;
    ec.seed = 1;
    ec.jobs = 1;
    ec.progress_interval = interval;
    std::vector<std::size_t> reported;
    ec.progress = [&](const exec::Progress& p) {
      reported.push_back(p.done);
    };
    exec::run_trials<ToyResult>(
        ec, [] { return 0; },
        [](int&, std::size_t, Rng&, ToyResult& shard) { ++shard.sum; });
    ASSERT_FALSE(reported.empty());
    EXPECT_EQ(reported.back(), 100u);
    // Single-threaded, every interval boundary reports exactly once.
    std::vector<std::size_t> expected;
    for (std::size_t d = interval; d <= 100; d += interval)
      expected.push_back(d);
    if (expected.empty() || expected.back() != 100) expected.push_back(100);
    EXPECT_EQ(reported, expected) << "interval=" << interval;
  }
}

TEST(Engine, ProgressIntervalDoesNotAffectResults) {
  // The progress cadence is telemetry only: trial outcomes are identical
  // with any interval, at any job count.
  const ToyResult base = toy_campaign(123, 1);
  for (const std::size_t interval : {std::size_t{1}, std::size_t{7}}) {
    for (const unsigned jobs : {1u, 4u}) {
      exec::EngineConfig ec;
      ec.n_trials = 123;
      ec.seed = 99;
      ec.jobs = jobs;
      ec.progress_interval = interval;
      ec.progress = [](const exec::Progress&) {};
      const ToyResult r = exec::run_trials<ToyResult>(
          ec, [] { return 0; },
          [](int&, std::size_t, Rng& rng, ToyResult& shard) {
            const std::uint64_t d = rng();
            shard.sum += d;
            shard.draws.push_back(d);
          });
      EXPECT_EQ(r.sum, base.sum);
      EXPECT_EQ(r.draws, base.draws);
    }
  }
}

// ------------------------------------------------------------- edge cases

TEST(Engine, ZeroTrialsRunsNothing) {
  exec::EngineConfig ec;
  ec.n_trials = 0;
  ec.seed = 5;
  std::atomic<int> contexts{0};
  const ToyResult r = exec::run_trials<ToyResult>(
      ec,
      [&] {
        ++contexts;
        return 0;
      },
      [](int&, std::size_t, Rng&, ToyResult&) {
        FAIL() << "trial ran for n_trials=0";
      });
  EXPECT_EQ(r.sum, 0u);
  EXPECT_TRUE(r.draws.empty());
  EXPECT_EQ(contexts.load(), 0);
}

TEST(Engine, ResolveJobsClampsToBatchWidth) {
  EXPECT_EQ(exec::resolve_jobs(8, 3), 3u);   // never wider than the batch
  EXPECT_EQ(exec::resolve_jobs(2, 100), 2u);
  EXPECT_EQ(exec::resolve_jobs(5, 5), 5u);
  EXPECT_GE(exec::resolve_jobs(0, 1000), 1u);  // 0 = default, still >= 1
  EXPECT_EQ(exec::resolve_jobs(0, 1), 1u);
  EXPECT_EQ(exec::resolve_jobs(7, 0), 1u);  // empty batch: minimal pool
}

TEST(Engine, MoreJobsThanTrialsIsIdenticalToSerial) {
  const ToyResult serial = toy_campaign(3, 1);
  const ToyResult wide = toy_campaign(3, 64);  // 64 workers, 3 trials
  EXPECT_EQ(serial.sum, wide.sum);
  EXPECT_EQ(serial.draws, wide.draws);
  ASSERT_EQ(wide.draws.size(), 3u);
}

TEST(Engine, SingleJobRunsInlineOnTheCallingThread) {
  // jobs == 1 must not spin up a pool: every trial executes on the caller's
  // thread (the fast path campaigns rely on for nested parallelism).
  const auto caller = std::this_thread::get_id();
  exec::EngineConfig ec;
  ec.n_trials = 40;
  ec.seed = 9;
  ec.jobs = 1;
  exec::run_trials<ToyResult>(
      ec, [] { return 0; },
      [&](int&, std::size_t, Rng&, ToyResult& shard) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++shard.sum;
      });
}

// ------------------------------------------------------------- cancellation

TEST(CancelToken, StartsUnstoppedAndLatchesCancel) {
  exec::CancelToken t;
  EXPECT_FALSE(t.cancelled());
  EXPECT_FALSE(t.expired());
  EXPECT_FALSE(t.stopped());
  t.cancel();
  EXPECT_TRUE(t.cancelled());
  EXPECT_TRUE(t.stopped());
  EXPECT_FALSE(t.expired());  // cancel is not a deadline
}

TEST(CancelToken, DeadlineExpires) {
  exec::CancelToken t;
  t.set_deadline_after(std::chrono::hours(1));
  EXPECT_FALSE(t.expired());
  t.set_deadline(std::chrono::steady_clock::now() -
                 std::chrono::milliseconds(1));
  EXPECT_TRUE(t.expired());
  EXPECT_TRUE(t.stopped());
  EXPECT_FALSE(t.cancelled());
}

TEST(Engine, CancelledTokenSkipsRemainingTrials) {
  exec::CancelToken token;
  exec::EngineConfig ec;
  ec.n_trials = 10'000;
  ec.seed = 4;
  ec.jobs = 1;
  ec.cancel = &token;
  const ToyResult r = exec::run_trials<ToyResult>(
      ec, [] { return 0; },
      [&](int&, std::size_t i, Rng&, ToyResult& shard) {
        if (i == 9) token.cancel();  // stop after the 10th trial
        ++shard.sum;
      });
  EXPECT_TRUE(token.stopped());
  // Trials 0..9 ran; everything after the cancel was skipped.
  EXPECT_GE(r.sum, 10u);
  EXPECT_LT(r.sum, 10'000u);
}

TEST(Engine, PreCancelledTokenRunsNoTrials) {
  exec::CancelToken token;
  token.cancel();
  exec::EngineConfig ec;
  ec.n_trials = 100;
  ec.seed = 4;
  ec.jobs = 2;
  ec.cancel = &token;
  const ToyResult r = exec::run_trials<ToyResult>(
      ec, [] { return 0; },
      [](int&, std::size_t, Rng&, ToyResult&) {
        FAIL() << "trial ran under a pre-cancelled token";
      });
  EXPECT_EQ(r.sum, 0u);
}

TEST(Engine, CancelledPrefixIsByteIdenticalToUncancelledRun) {
  // The partial merge under cancellation is a prefix of the full run per
  // chunk — with jobs=1 and a cancel inside the first chunk, an exact prefix.
  const ToyResult full = toy_campaign(333, 1);
  exec::CancelToken token;
  exec::EngineConfig ec;
  ec.n_trials = 333;
  ec.seed = 99;
  ec.jobs = 1;
  ec.cancel = &token;
  const ToyResult part = exec::run_trials<ToyResult>(
      ec, [] { return 0; },
      [&](int&, std::size_t i, Rng& rng, ToyResult& shard) {
        const std::uint64_t d = rng();
        shard.sum += d;
        shard.draws.push_back(d);
        if (i == 4) token.cancel();
      });
  ASSERT_EQ(part.draws.size(), 5u);
  for (std::size_t i = 0; i < part.draws.size(); ++i)
    EXPECT_EQ(part.draws[i], full.draws[i]) << "trial " << i;
}

TEST(Engine, RtlCampaignHonoursCancelToken) {
  const auto w = rtlfi::make_microbenchmark(isa::Opcode::FADD,
                                            rtlfi::InputRange::Medium, 3);
  exec::CancelToken token;
  token.cancel();
  rtlfi::CampaignConfig cfg;
  cfg.module = rtl::Module::Fp32Fu;
  cfg.n_faults = 50;
  cfg.seed = 11;
  cfg.jobs = 1;
  cfg.cancel = &token;
  const auto r = rtlfi::run_campaign(w, cfg);
  EXPECT_EQ(r.injected, 0u);  // pre-cancelled: no trial ran
}

// ------------------------------------------------- campaign-level determinism

namespace {

rtlfi::CampaignResult small_rtl_campaign(unsigned jobs) {
  const auto w = rtlfi::make_microbenchmark(isa::Opcode::FADD,
                                            rtlfi::InputRange::Medium, 3);
  rtlfi::CampaignConfig cfg;
  cfg.module = rtl::Module::Fp32Fu;
  cfg.n_faults = 150;
  cfg.seed = 2024;
  cfg.keep_all_records = true;
  cfg.jobs = jobs;
  return rtlfi::run_campaign(w, cfg);
}

void expect_same_records(const rtlfi::CampaignResult& a,
                         const rtlfi::CampaignResult& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    EXPECT_EQ(ra.fault.bit, rb.fault.bit) << "record " << i;
    EXPECT_EQ(ra.fault.cycle, rb.fault.cycle) << "record " << i;
    EXPECT_EQ(ra.field, rb.field) << "record " << i;
    EXPECT_EQ(ra.outcome, rb.outcome) << "record " << i;
    EXPECT_EQ(ra.due_reason, rb.due_reason) << "record " << i;
    EXPECT_EQ(ra.corrupted_elements, rb.corrupted_elements) << "record " << i;
    EXPECT_EQ(ra.corrupted_threads, rb.corrupted_threads) << "record " << i;
    ASSERT_EQ(ra.diffs.size(), rb.diffs.size()) << "record " << i;
    for (std::size_t d = 0; d < ra.diffs.size(); ++d) {
      EXPECT_EQ(ra.diffs[d].index, rb.diffs[d].index);
      EXPECT_EQ(ra.diffs[d].golden, rb.diffs[d].golden);
      EXPECT_EQ(ra.diffs[d].faulty, rb.diffs[d].faulty);
      EXPECT_EQ(ra.diffs[d].bits_flipped, rb.diffs[d].bits_flipped);
    }
  }
}

}  // namespace

TEST(CampaignDeterminism, RtlCountersAndRecordsMatchAcrossJobs) {
  const auto serial = small_rtl_campaign(1);
  const auto parallel = small_rtl_campaign(4);
  EXPECT_EQ(serial.injected, parallel.injected);
  EXPECT_EQ(serial.masked, parallel.masked);
  EXPECT_EQ(serial.sdc_single, parallel.sdc_single);
  EXPECT_EQ(serial.sdc_multi, parallel.sdc_multi);
  EXPECT_EQ(serial.due, parallel.due);
  EXPECT_EQ(serial.golden_cycles, parallel.golden_cycles);
  EXPECT_GT(serial.injected, 0u);
  expect_same_records(serial, parallel);
}

TEST(CampaignDeterminism, DownstreamSyndromeDatabaseBytesMatch) {
  // The syndrome distributions ingest SDC records in order, so identical
  // serialized bytes prove the whole record stream is schedule-independent.
  const auto make_db = [](unsigned jobs) {
    syndrome::Database db;
    db.add_campaign(syndrome::Key{rtl::Module::Fp32Fu, isa::Opcode::FADD,
                                  rtlfi::InputRange::Medium},
                    small_rtl_campaign(jobs));
    db.finalize();
    std::ostringstream os;
    db.save(os);
    return os.str();
  };
  EXPECT_EQ(make_db(1), make_db(4));
}

TEST(CampaignDeterminism, SoftwareCampaignMatchesAcrossJobs) {
  const auto run = [](unsigned jobs) {
    auto h = apps::make_mxm(12);
    swfi::Config cfg;
    cfg.model = swfi::FaultModel::SingleBitFlip;
    cfg.n_injections = 60;
    cfg.seed = 31;
    cfg.jobs = jobs;
    return swfi::run_sw_campaign(h.app, cfg);
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  EXPECT_EQ(serial.injections, parallel.injections);
  EXPECT_EQ(serial.masked, parallel.masked);
  EXPECT_EQ(serial.sdc, parallel.sdc);
  EXPECT_EQ(serial.due, parallel.due);
  EXPECT_EQ(serial.candidate_instructions, parallel.candidate_instructions);
  EXPECT_GT(serial.injections, 0u);
}

TEST(CampaignDeterminism, DatabaseBuildMatchesAcrossJobs) {
  // Full builder at miniature scale: every (module, opcode, range) campaign
  // plus t-MxM, serialized byte-for-byte equal whatever the parallelism.
  const auto build = [](unsigned jobs) {
    core::RtlCharacterizationConfig cfg;
    cfg.faults_per_campaign = 8;
    cfg.value_seeds = 1;
    cfg.tmxm_faults = 16;
    cfg.jobs = jobs;
    std::ostringstream os;
    core::build_syndrome_database(cfg).save(os);
    return os.str();
  };
  EXPECT_EQ(build(1), build(3));
}

// ------------------------------------------------------------ merge algebra

namespace {

rtlfi::CampaignResult counters(std::size_t injected, std::size_t masked,
                               std::size_t s1, std::size_t sm,
                               std::size_t due) {
  rtlfi::CampaignResult r;
  r.injected = injected;
  r.masked = masked;
  r.sdc_single = s1;
  r.sdc_multi = sm;
  r.due = due;
  return r;
}

void expect_same_counters(const rtlfi::CampaignResult& a,
                          const rtlfi::CampaignResult& b) {
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.sdc_single, b.sdc_single);
  EXPECT_EQ(a.sdc_multi, b.sdc_multi);
  EXPECT_EQ(a.due, b.due);
  EXPECT_DOUBLE_EQ(a.avf(), b.avf());
  EXPECT_DOUBLE_EQ(a.margin_of_error(), b.margin_of_error());
}

}  // namespace

TEST(MergeAlgebra, CountersAreAssociativeAndCommutative) {
  const auto a = counters(100, 60, 25, 5, 10);
  const auto b = counters(50, 20, 20, 4, 6);
  const auto c = counters(75, 40, 15, 10, 10);

  // (a + b) + c
  rtlfi::CampaignResult ab = a;
  ab.merge(b);
  rtlfi::CampaignResult ab_c = ab;
  ab_c.merge(c);
  // a + (b + c)
  rtlfi::CampaignResult bc = b;
  bc.merge(c);
  rtlfi::CampaignResult a_bc = a;
  a_bc.merge(bc);
  expect_same_counters(ab_c, a_bc);

  // c + b + a (commuted)
  rtlfi::CampaignResult cba = c;
  cba.merge(b);
  cba.merge(a);
  expect_same_counters(ab_c, cba);
  EXPECT_GT(ab_c.margin_of_error(), 0.0);
}

TEST(MergeAlgebra, SwResultMergeAccumulates) {
  swfi::Result a;
  a.injections = 100;
  a.masked = 70;
  a.sdc = 20;
  a.due = 10;
  a.candidate_instructions = 5000;
  swfi::Result b;
  b.injections = 50;
  b.masked = 30;
  b.sdc = 15;
  b.due = 5;
  b.candidate_instructions = 5000;
  swfi::Result ab = a;
  ab.merge(b);
  swfi::Result ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.injections, 150u);
  EXPECT_EQ(ab.masked, 100u);
  EXPECT_EQ(ab.sdc, 35u);
  EXPECT_EQ(ab.due, 15u);
  EXPECT_EQ(ab.candidate_instructions, 5000u);
  EXPECT_EQ(ba.injections, ab.injections);
  EXPECT_DOUBLE_EQ(ba.pvf(), ab.pvf());
  EXPECT_DOUBLE_EQ(ba.margin_of_error(), ab.margin_of_error());
}
