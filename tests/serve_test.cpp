// Tests for gpufi-serve: wire protocol framing, the bounded priority queue,
// the single-flight shared caches, and loopback daemon sessions pinning the
// served-equals-offline byte-identity contract, golden-trace sharing across
// concurrent requests, admission control, deadlines, and SIGTERM-style drain.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "vocab/vocab.hpp"

using namespace gpufi;
using namespace gpufi::serve;

namespace {

/// Polls `pred` (5 ms period) until true or `timeout`; returns the verdict.
bool wait_until(const std::function<bool()>& pred,
                std::chrono::milliseconds timeout =
                    std::chrono::milliseconds(10'000)) {
  const auto end = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < end) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// A small, fast RTL campaign spec (the loopback workhorse).
CampaignSpec small_rtl_spec() {
  CampaignSpec spec;
  spec.kind = CampaignKind::Rtl;
  spec.op = "FFMA";
  spec.module = "fp32";
  spec.range = "M";
  spec.faults = 30;
  spec.seed = 7;
  spec.jobs = 1;
  spec.accel = "full";
  return spec;
}

/// Submits `spec` on a raw connection without reading the reply (lets tests
/// observe server state while the job is queued/running). Caller closes fd.
int submit_raw(const std::string& socket_path, const CampaignSpec& spec) {
  const int fd = connect_socket(socket_path);
  EXPECT_GE(fd, 0) << "connect(" << socket_path << ")";
  EXPECT_TRUE(write_frame(fd, {FrameType::Submit, encode_spec(spec)}));
  return fd;
}

/// Reads frames until the final Result/Error frame (skipping Progress).
Frame read_final(int fd) {
  for (;;) {
    Frame f;
    const ReadStatus st = read_frame(fd, f);
    EXPECT_EQ(st, ReadStatus::Ok) << "stream ended before a final frame";
    if (st != ReadStatus::Ok) return {FrameType::Error, "transport error"};
    if (f.type == FrameType::Progress) continue;
    return f;
  }
}

}  // namespace

// ----------------------------------------------------------------- framing

TEST(Protocol, FrameRoundTripsThroughEncodeDecode) {
  const Frame in{FrameType::Submit, "kind=rtl\nop=FFMA\n"};
  const std::string wire = encode_frame(in);
  EXPECT_EQ(wire.size(), kFrameHeaderSize + in.payload.size());
  Frame out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(wire, out, consumed), DecodeStatus::Ok);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(Protocol, EmptyPayloadFrameIsValid) {
  const std::string wire = encode_frame({FrameType::Status, ""});
  Frame out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(wire, out, consumed), DecodeStatus::Ok);
  EXPECT_EQ(out.type, FrameType::Status);
  EXPECT_TRUE(out.payload.empty());
}

TEST(Protocol, TruncatedFramesNeedMoreBytes) {
  const std::string wire = encode_frame({FrameType::Result, "payload body"});
  Frame out;
  std::size_t consumed = 0;
  // Every strict prefix — header fragments and partial payloads alike — must
  // ask for more bytes, never decode garbage.
  for (std::size_t len = 0; len < wire.size(); ++len)
    EXPECT_EQ(decode_frame(std::string_view(wire).substr(0, len), out,
                           consumed),
              DecodeStatus::NeedMore)
        << "prefix length " << len;
}

TEST(Protocol, OversizedDeclaredPayloadIsRejected) {
  // Declared length 100 with a 16-byte cap: protocol violation, not NeedMore.
  std::string wire = encode_frame({FrameType::Error, std::string(100, 'x')});
  Frame out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(wire, out, consumed, /*max_payload=*/16),
            DecodeStatus::TooLarge);
}

TEST(Protocol, EncodeRefusesOverlongPayload) {
  Frame f{FrameType::Result, std::string(kMaxFramePayload + 1, 'x')};
  EXPECT_THROW(encode_frame(f), std::length_error);
}

TEST(Protocol, UnknownFrameTypeByteIsRejected) {
  std::string wire = encode_frame({FrameType::Submit, "abc"});
  wire[4] = 0;  // type byte below the enum range
  Frame out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(wire, out, consumed), DecodeStatus::BadType);
  wire[4] = 42;  // above the enum range
  EXPECT_EQ(decode_frame(wire, out, consumed), DecodeStatus::BadType);
}

TEST(Protocol, SocketFramingRoundTripsAndSignalsEof) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const Frame sent{FrameType::Progress, "done=5\ntotal=10\n"};
  ASSERT_TRUE(write_frame(fds[0], sent));
  Frame got;
  ASSERT_EQ(read_frame(fds[1], got), ReadStatus::Ok);
  EXPECT_EQ(got.type, sent.type);
  EXPECT_EQ(got.payload, sent.payload);
  ::close(fds[0]);  // clean close -> Eof on the reader
  EXPECT_EQ(read_frame(fds[1], got), ReadStatus::Eof);
  ::close(fds[1]);
}

TEST(Protocol, WriteToHungUpPeerFailsInsteadOfKillingTheProcess) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);
  // MSG_NOSIGNAL: EPIPE as a return value, no SIGPIPE.
  EXPECT_FALSE(write_frame(fds[0], {FrameType::Result, "late result"}));
  ::close(fds[0]);
}

TEST(Protocol, ReadRejectsOversizedAndBadTypeFrames) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(write_frame(fds[0], {FrameType::Error, std::string(64, 'y')}));
  Frame got;
  EXPECT_EQ(read_frame(fds[1], got, /*max_payload=*/8), ReadStatus::TooLarge);
  ::close(fds[0]);
  ::close(fds[1]);

  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string wire = encode_frame({FrameType::Submit, "x"});
  wire[4] = 99;
  ASSERT_EQ(::send(fds[0], wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  EXPECT_EQ(read_frame(fds[1], got), ReadStatus::BadType);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ------------------------------------------------------------ spec payloads

TEST(Protocol, SpecRoundTripsEveryField) {
  CampaignSpec spec;
  spec.kind = CampaignKind::Sw;
  spec.op = "FADD";
  spec.module = "sched";
  spec.range = "L";
  spec.tile = "zero";
  spec.app = "hotspot";
  spec.model = "syndrome";
  spec.net = "yolo";
  spec.fault_model = "burst";
  spec.fault_duration = 64;
  spec.burst_period = 5;
  spec.faults = 123;
  spec.injections = 45;
  spec.seed = 999;
  spec.jobs = 3;
  spec.accel = "checkpoint";
  spec.db_path = "some/dir/syn.db";
  spec.models_dir = "some/dir";
  spec.priority = -2;
  spec.deadline_ms = 1500;
  spec.progress_interval = 25;
  spec.plan = "target_err=0.05,min_trials=16";
  spec.workers = 4;
  std::string error;
  const auto back = decode_spec(encode_spec(spec), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(*back, spec);
}

TEST(Protocol, SpecDecodeIsStrict) {
  std::string error;
  // Unknown key.
  EXPECT_FALSE(decode_spec("kind=rtl\nbogus=1\n", &error).has_value());
  EXPECT_NE(error.find("bogus"), std::string::npos);
  // Malformed number.
  EXPECT_FALSE(decode_spec("kind=rtl\nfaults=12x\n", &error).has_value());
  // Line without '='.
  EXPECT_FALSE(decode_spec("kind=rtl\nnonsense\n", &error).has_value());
  // Invalid vocabulary caught by validation.
  EXPECT_FALSE(decode_spec("kind=rtl\nop=NOSUCH\n", &error).has_value());
  EXPECT_FALSE(decode_spec("kind=sw\napp=doom\n", &error).has_value());
  EXPECT_FALSE(decode_spec("kind=cnn\nnet=alexnet\n", &error).has_value());
  EXPECT_FALSE(decode_spec("kind=rtl\naccel=warp9\n", &error).has_value());
  EXPECT_FALSE(decode_spec("kind=marsupial\n", &error).has_value());
  // Unknown fault-model token rejected for every kind.
  EXPECT_FALSE(decode_spec("kind=rtl\nfault_model=gamma\n", &error)
                   .has_value());
  EXPECT_NE(error.find("fault model"), std::string::npos);
  EXPECT_FALSE(decode_spec("kind=sw\nfault_model=stuckX\n", &error)
                   .has_value());
  // Plan vocabulary: parsed strictly, and only valid for kind=sw.
  EXPECT_FALSE(decode_spec("kind=sw\nplan=target_err=2\n", &error)
                   .has_value());
  EXPECT_FALSE(decode_spec("kind=sw\nplan=bogus\n", &error).has_value());
  EXPECT_FALSE(decode_spec("kind=rtl\nplan=target_err=0.1\n", &error)
                   .has_value());
  EXPECT_NE(error.find("kind=sw"), std::string::npos);
  EXPECT_TRUE(decode_spec("kind=sw\nplan=target_err=0.1\n", &error)
                  .has_value()) << error;
}

TEST(Vocab, ParseProgressIntervalIsStrict) {
  // The shared CLI/wire validator: positive decimal integers only. A zero
  // interval, any non-digit and overflow-range inputs are usage errors.
  EXPECT_EQ(vocab::parse_progress_interval("1"), std::size_t{1});
  EXPECT_EQ(vocab::parse_progress_interval("2500"), std::size_t{2500});
  EXPECT_FALSE(vocab::parse_progress_interval("0").has_value());
  EXPECT_FALSE(vocab::parse_progress_interval("").has_value());
  EXPECT_FALSE(vocab::parse_progress_interval("-5").has_value());
  EXPECT_FALSE(vocab::parse_progress_interval("12x").has_value());
  EXPECT_FALSE(vocab::parse_progress_interval("1e3").has_value());
  // 19 digits exceeds the accepted width.
  EXPECT_FALSE(
      vocab::parse_progress_interval("9999999999999999999").has_value());
}

TEST(Protocol, ProgressRoundTrips) {
  exec::Progress p;
  p.done = 7;
  p.total = 1000;
  p.per_second = 123.456789012345;
  p.eta_seconds = 8.0500000000000007;
  const auto back = decode_progress(encode_progress(p));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->done, p.done);
  EXPECT_EQ(back->total, p.total);
  EXPECT_DOUBLE_EQ(back->per_second, p.per_second);
  EXPECT_DOUBLE_EQ(back->eta_seconds, p.eta_seconds);
}

TEST(Protocol, StatsRoundTrip) {
  ServerStats s;
  s.accepted = 10;
  s.completed = 6;
  s.failed = 1;
  s.cancelled = 2;
  s.rejected = 3;
  s.active = 1;
  s.queued = 4;
  s.queue_capacity = 64;
  s.workers = 2;
  s.planner_early_stops = 7;
  s.db_cache = {5, 1};
  s.golden_cache = {9, 2};
  const auto back = decode_stats(encode_stats(s));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->accepted, s.accepted);
  EXPECT_EQ(back->completed, s.completed);
  EXPECT_EQ(back->failed, s.failed);
  EXPECT_EQ(back->cancelled, s.cancelled);
  EXPECT_EQ(back->rejected, s.rejected);
  EXPECT_EQ(back->active, s.active);
  EXPECT_EQ(back->queued, s.queued);
  EXPECT_EQ(back->queue_capacity, s.queue_capacity);
  EXPECT_EQ(back->workers, s.workers);
  EXPECT_EQ(back->planner_early_stops, s.planner_early_stops);
  EXPECT_EQ(back->db_cache.hits, s.db_cache.hits);
  EXPECT_EQ(back->golden_cache.misses, s.golden_cache.misses);
  EXPECT_FALSE(decode_stats("accepted=1\nnope=2\n").has_value());
}

// ----------------------------------------------------------------- queue

namespace {

Job make_job(std::uint64_t id, int priority = 0) {
  Job j;
  j.id = id;
  j.spec = small_rtl_spec();
  j.spec.priority = priority;
  j.cancel = std::make_shared<exec::CancelToken>();
  return j;
}

}  // namespace

TEST(JobQueue, PopsInPriorityThenArrivalOrder) {
  JobQueue q(8);
  ASSERT_TRUE(q.push(make_job(1, /*priority=*/5)));
  ASSERT_TRUE(q.push(make_job(2, /*priority=*/0)));
  ASSERT_TRUE(q.push(make_job(3, /*priority=*/5)));
  ASSERT_TRUE(q.push(make_job(4, /*priority=*/-1)));
  EXPECT_EQ(q.pop()->id, 4u);  // lowest priority value first
  EXPECT_EQ(q.pop()->id, 2u);
  EXPECT_EQ(q.pop()->id, 1u);  // FIFO within a priority class
  EXPECT_EQ(q.pop()->id, 3u);
}

TEST(JobQueue, RejectsWhenFullAndCountsRejections) {
  JobQueue q(2);
  EXPECT_TRUE(q.push(make_job(1)));
  EXPECT_TRUE(q.push(make_job(2)));
  EXPECT_FALSE(q.push(make_job(3)));  // bounded: reject, don't block
  EXPECT_FALSE(q.push(make_job(4)));
  EXPECT_EQ(q.rejected(), 2u);
  EXPECT_EQ(q.depth(), 2u);
  q.pop();
  EXPECT_TRUE(q.push(make_job(5)));  // slot freed -> admitted again
}

TEST(JobQueue, CloseDrainsQueuedJobsThenSignalsExit) {
  JobQueue q(8);
  ASSERT_TRUE(q.push(make_job(1)));
  ASSERT_TRUE(q.push(make_job(2)));
  q.close();
  EXPECT_FALSE(q.push(make_job(3)));  // no admissions after close
  EXPECT_TRUE(q.pop().has_value());   // ...but queued jobs still drain
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());  // empty + closed -> worker exits
}

TEST(JobQueue, DrainPendingEmptiesTheQueue) {
  JobQueue q(8);
  ASSERT_TRUE(q.push(make_job(1)));
  ASSERT_TRUE(q.push(make_job(2, 1)));
  const auto pending = q.drain_pending();
  EXPECT_EQ(pending.size(), 2u);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(JobQueue, PopBlocksUntilAJobArrives) {
  JobQueue q(4);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    const auto j = q.pop();
    got = j.has_value() && j->id == 77;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(q.push(make_job(77)));
  consumer.join();
  EXPECT_TRUE(got.load());
}

// ----------------------------------------------------------------- cache

TEST(SharedCache, ComputesOnceAndSharesAcrossRacingThreads) {
  SharedCache<int> cache;
  std::atomic<int> computes{0};
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const int>> results(6);
  for (std::size_t t = 0; t < results.size(); ++t)
    threads.emplace_back([&, t] {
      results[t] = cache.get_or_compute("k", [&] {
        ++computes;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return 42;
      });
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(computes.load(), 1);  // single flight
  for (const auto& r : results) {
    ASSERT_TRUE(r);
    EXPECT_EQ(*r, 42);
    EXPECT_EQ(r.get(), results[0].get());  // literally the same object
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 5u);
}

TEST(SharedCache, DistinctKeysComputeSeparately) {
  SharedCache<std::string> cache;
  const auto a = cache.get_or_compute("a", [] { return std::string("A"); });
  const auto b = cache.get_or_compute("b", [] { return std::string("B"); });
  EXPECT_EQ(*a, "A");
  EXPECT_EQ(*b, "B");
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(SharedCache, FailedComputeIsNotPoisoned) {
  SharedCache<int> cache;
  EXPECT_THROW(cache.get_or_compute(
                   "k", []() -> int { throw std::runtime_error("boom"); }),
               std::runtime_error);
  // The failure was erased: the next requester retries and succeeds.
  const auto r = cache.get_or_compute("k", [] { return 7; });
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(cache.size(), 1u);
}

// ------------------------------------------------------------- loopback

TEST(Serve, ServedResultIsByteIdenticalToOffline) {
  const auto spec = small_rtl_spec();
  const std::string offline = run_spec_offline(spec);
  ASSERT_FALSE(offline.empty());
  ASSERT_NE(offline.find("--- syndrome-db ---"), std::string::npos);

  ServerConfig cfg;
  cfg.socket_path = "serve_bytes.sock";
  cfg.workers = 1;
  Server server(cfg);
  server.start();
  const auto outcome = submit_campaign(cfg.socket_path, spec);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result, offline);  // THE determinism contract
  server.shutdown(/*drain=*/true);
}

TEST(Serve, ResultCarriesVersionedRecordsAndAttribution) {
  // The v2 result serialization: a record_version marker, one site= line
  // per record (the fault-site context), and the attribution table ahead
  // of the syndrome-db block — all inside the byte-identity contract.
  const auto spec = small_rtl_spec();
  const std::string offline = run_spec_offline(spec);
  EXPECT_NE(offline.find("record_version=2\n"), std::string::npos);
  EXPECT_NE(offline.find("attr_sites="), std::string::npos);
  EXPECT_NE(offline.find("attr="), std::string::npos);
  // The attribution lines precede the database block.
  EXPECT_LT(offline.find("attr_sites="), offline.find("--- syndrome-db ---"));
}

TEST(Serve, ServedReportIsByteIdenticalToOffline) {
  // The Report frame: a ReportRequest carrying an rtl spec answers with the
  // attribution-report JSON, byte-identical to the offline rendering of the
  // same spec (`gpufi report --json`).
  const auto spec = small_rtl_spec();
  const std::string offline = run_report_offline(spec);
  ASSERT_FALSE(offline.empty());
  EXPECT_NE(offline.find("\"instructions\":["), std::string::npos);

  ServerConfig cfg;
  cfg.socket_path = "serve_report.sock";
  cfg.workers = 1;
  Server server(cfg);
  server.start();
  std::string error;
  const auto served = query_report(cfg.socket_path, spec, {}, &error);
  ASSERT_TRUE(served.has_value()) << error;
  EXPECT_EQ(*served, offline);
  server.shutdown(/*drain=*/true);
}

TEST(Serve, ReportRequestRejectsNonRtlSpecs) {
  // Attribution joins RTL fault cycles to the golden liveness timeline;
  // software/CNN campaigns have no such timeline, so the server answers a
  // non-rtl ReportRequest with an Error frame instead of a Report.
  CampaignSpec spec;
  spec.kind = CampaignKind::Sw;
  spec.app = "mxm";
  spec.model = "bitflip";
  spec.injections = 5;

  ServerConfig cfg;
  cfg.socket_path = "serve_report_bad.sock";
  cfg.workers = 1;
  Server server(cfg);
  server.start();
  std::string error;
  const auto served = query_report(cfg.socket_path, spec, {}, &error);
  EXPECT_FALSE(served.has_value());
  EXPECT_NE(error.find("rtl"), std::string::npos);
  server.shutdown(/*drain=*/true);
}

TEST(Serve, ServedStuckAtCampaignMatchesOffline) {
  // The determinism contract holds along the fault-model axis too: a
  // stuck-at-1 campaign served over the socket must be byte-identical to
  // the offline run, and its serialized result carries the model token.
  auto spec = small_rtl_spec();
  spec.fault_model = "stuck1";
  spec.accel = "checkpoint";  // permanent faults never early-exit anyway
  const std::string offline = run_spec_offline(spec);
  ASSERT_FALSE(offline.empty());
  ASSERT_NE(offline.find("fault_model=stuck1"), std::string::npos);

  ServerConfig cfg;
  cfg.socket_path = "serve_stuck.sock";
  cfg.workers = 1;
  Server server(cfg);
  server.start();
  const auto outcome = submit_campaign(cfg.socket_path, spec);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result, offline);
  server.shutdown(/*drain=*/true);
}

TEST(Serve, ServedSwCampaignMatchesOffline) {
  CampaignSpec spec;
  spec.kind = CampaignKind::Sw;
  spec.app = "mxm";
  spec.model = "bitflip";
  spec.injections = 15;
  spec.seed = 4;
  spec.jobs = 1;
  const std::string offline = run_spec_offline(spec);

  ServerConfig cfg;
  cfg.socket_path = "serve_sw.sock";
  cfg.workers = 1;
  Server server(cfg);
  server.start();
  const auto outcome = submit_campaign(cfg.socket_path, spec);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result, offline);
  server.shutdown(true);
}

TEST(Serve, ServedPlannedSwCampaignMatchesOffline) {
  // A planned campaign through the daemon: the sw-planned payload is
  // byte-identical to the offline dispatch of the same spec, and the Stats
  // frame reports the early-stopped strata the run produced.
  obs::set_enabled(true);
  obs::Registry::global().reset();
  CampaignSpec spec;
  spec.kind = CampaignKind::Sw;
  spec.app = "mxm";
  spec.model = "bitflip";
  spec.injections = 120;
  spec.seed = 4;
  spec.jobs = 1;
  spec.plan = "target_err=0.25,min_trials=8";
  const std::string offline = run_spec_offline(spec);
  EXPECT_NE(offline.find("kind=sw-planned\n"), std::string::npos);
  EXPECT_NE(offline.find("adaptive=1\n"), std::string::npos);
  EXPECT_NE(offline.find("stratum="), std::string::npos);

  obs::Registry::global().reset();  // count only the served run below
  ServerConfig cfg;
  cfg.socket_path = "serve_sw_planned.sock";
  cfg.workers = 1;
  Server server(cfg);
  server.start();
  const auto outcome = submit_campaign(cfg.socket_path, spec);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result, offline);
  std::string error;
  const auto stats = query_stats(cfg.socket_path, &error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_GT(stats->planner_early_stops, 0u);
  server.shutdown(true);
  obs::Registry::global().reset();
  obs::set_enabled(false);
}

TEST(Serve, MetricsScrapeReportsCountersAndQueueState) {
  // A MetricsRequest frame answers with the Prometheus text exposition:
  // after one served campaign the job counters have advanced, the engine
  // trial counter matches the submitted fault count, and the queue gauges
  // show an idle daemon.
  obs::set_enabled(true);
  obs::Registry::global().reset();
  ServerConfig cfg;
  cfg.socket_path = "serve_metrics.sock";
  cfg.workers = 1;
  Server server(cfg);
  server.start();
  const auto spec = small_rtl_spec();
  const auto outcome = submit_campaign(cfg.socket_path, spec);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  // The completed counter is bumped by the worker after the Result frame is
  // written; give the worker a beat to retire the job.
  ASSERT_TRUE(wait_until([] {
    return obs::Registry::global().counter_value(
               "gpufi_serve_jobs_completed_total") >= 1;
  }));

  std::string error;
  const auto text = query_metrics(cfg.socket_path, &error);
  ASSERT_TRUE(text.has_value()) << error;
  EXPECT_NE(text->find("# TYPE"), std::string::npos);
  EXPECT_NE(text->find("gpufi_serve_jobs_accepted_total 1\n"),
            std::string::npos);
  EXPECT_NE(text->find("gpufi_serve_jobs_completed_total 1\n"),
            std::string::npos);
  // One trial per fault ran through the engine.
  EXPECT_NE(text->find("gpufi_exec_trials_total " +
                       std::to_string(spec.faults) + "\n"),
            std::string::npos);
  // Gauges show a drained, idle daemon.
  EXPECT_NE(text->find("gpufi_serve_queue_depth 0\n"), std::string::npos);
  EXPECT_NE(text->find("gpufi_serve_active_jobs 0\n"), std::string::npos);
  // The queue-wait histogram observed the one admitted job.
  EXPECT_NE(text->find("gpufi_serve_queue_wait_seconds_count 1\n"),
            std::string::npos);
  server.shutdown(true);
  obs::Registry::global().reset();
}

TEST(Serve, ConcurrentRequestsShareOneCachedGolden) {
  // Four identical campaigns in flight at once must trigger exactly one
  // prepare_golden (single-flight cache) and still each get the full,
  // byte-identical result.
  const auto spec = small_rtl_spec();
  const std::string offline = run_spec_offline(spec);

  ServerConfig cfg;
  cfg.socket_path = "serve_shared.sock";
  cfg.workers = 4;
  Server server(cfg);
  server.start();

  std::vector<std::thread> clients;
  std::vector<SubmitOutcome> outcomes(4);
  for (std::size_t i = 0; i < outcomes.size(); ++i)
    clients.emplace_back([&, i] {
      outcomes[i] = submit_campaign(cfg.socket_path, spec);
    });
  for (auto& c : clients) c.join();

  for (const auto& o : outcomes) {
    ASSERT_TRUE(o.ok) << o.error;
    EXPECT_EQ(o.result, offline);
  }
  // The worker increments `completed` just after sending the Result frame,
  // so a fast client can observe its bytes first — poll briefly.
  ASSERT_TRUE(wait_until([&] { return server.stats().completed == 4; }));
  const auto stats = server.stats();
  EXPECT_EQ(stats.golden_cache.misses, 1u);  // one compute...
  EXPECT_EQ(stats.golden_cache.hits, 3u);    // ...shared by the other three
  server.shutdown(true);
}

TEST(Serve, InvalidSpecGetsAnErrorFrame) {
  ServerConfig cfg;
  cfg.socket_path = "serve_invalid.sock";
  cfg.workers = 1;
  Server server(cfg);
  server.start();
  const int fd = connect_socket(cfg.socket_path);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(write_frame(fd, {FrameType::Submit, "kind=rtl\nop=NOSUCH\n"}));
  const Frame reply = read_final(fd);
  EXPECT_EQ(reply.type, FrameType::Error);
  EXPECT_NE(reply.payload.find("NOSUCH"), std::string::npos);
  ::close(fd);
  server.shutdown(true);
}

TEST(Serve, FullQueueRejectsWithBackpressure) {
  ServerConfig cfg;
  cfg.socket_path = "serve_reject.sock";
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  Server server(cfg);
  server.start();

  // A deliberately slow campaign occupies the single worker...
  auto slow = small_rtl_spec();
  slow.faults = 800;
  slow.accel = "none";
  const int running = submit_raw(cfg.socket_path, slow);
  ASSERT_TRUE(wait_until([&] { return server.stats().active == 1; }));
  // ...a second fills the only queue slot...
  const int queued = submit_raw(cfg.socket_path, small_rtl_spec());
  ASSERT_TRUE(wait_until([&] { return server.stats().queued == 1; }));
  // ...and the third bounces immediately with a queue-full Error.
  const int bounced = submit_raw(cfg.socket_path, small_rtl_spec());
  const Frame reply = read_final(bounced);
  EXPECT_EQ(reply.type, FrameType::Error);
  EXPECT_NE(reply.payload.find("queue full"), std::string::npos);
  EXPECT_GE(server.stats().rejected, 1u);
  ::close(bounced);

  // The admitted jobs still complete normally.
  EXPECT_EQ(read_final(running).type, FrameType::Result);
  EXPECT_EQ(read_final(queued).type, FrameType::Result);
  ::close(running);
  ::close(queued);
  server.shutdown(true);
}

TEST(Serve, ExpiredDeadlineCancelsTheCampaign) {
  ServerConfig cfg;
  cfg.socket_path = "serve_deadline.sock";
  cfg.workers = 1;
  Server server(cfg);
  server.start();
  auto spec = small_rtl_spec();
  spec.faults = 2000;
  spec.accel = "none";
  spec.deadline_ms = 1;  // expires long before 2000 unaccelerated trials
  const int fd = submit_raw(cfg.socket_path, spec);
  const Frame reply = read_final(fd);
  EXPECT_EQ(reply.type, FrameType::Error);
  EXPECT_NE(reply.payload.find("deadline"), std::string::npos);
  ::close(fd);
  ASSERT_TRUE(wait_until([&] { return server.stats().cancelled == 1; }));
  server.shutdown(true);
}

TEST(Serve, GracefulDrainFinishesAdmittedJobs) {
  // The SIGTERM path: shutdown(drain=true) must complete every admitted
  // campaign (and deliver its bytes) before tearing down.
  ServerConfig cfg;
  cfg.socket_path = "serve_drain.sock";
  cfg.workers = 1;
  Server server(cfg);
  server.start();
  const auto spec = small_rtl_spec();
  const int a = submit_raw(cfg.socket_path, spec);
  const int b = submit_raw(cfg.socket_path, spec);
  ASSERT_TRUE(wait_until([&] { return server.stats().accepted == 2; }));

  server.shutdown(/*drain=*/true);
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.stats().completed, 2u);
  EXPECT_EQ(server.stats().cancelled, 0u);
  // Both clients still receive their full results.
  EXPECT_EQ(read_final(a).type, FrameType::Result);
  EXPECT_EQ(read_final(b).type, FrameType::Result);
  ::close(a);
  ::close(b);
  // The socket file is gone: a later bind can reuse the path.
  EXPECT_LT(connect_socket(cfg.socket_path), 0);
}

TEST(Serve, ForcedShutdownCancelsActiveAndBouncesQueued) {
  ServerConfig cfg;
  cfg.socket_path = "serve_force.sock";
  cfg.workers = 1;
  Server server(cfg);
  server.start();
  auto slow = small_rtl_spec();
  slow.faults = 800;
  slow.accel = "none";
  const int running = submit_raw(cfg.socket_path, slow);
  ASSERT_TRUE(wait_until([&] { return server.stats().active == 1; }));
  const int queued = submit_raw(cfg.socket_path, small_rtl_spec());
  ASSERT_TRUE(wait_until([&] { return server.stats().queued == 1; }));

  server.shutdown(/*drain=*/false);
  // The queued job is bounced with an explicit shutdown Error.
  const Frame bounced = read_final(queued);
  EXPECT_EQ(bounced.type, FrameType::Error);
  EXPECT_NE(bounced.payload.find("shutting down"), std::string::npos);
  // The active job was cancelled cooperatively (no Result frame).
  const Frame aborted = read_final(running);
  EXPECT_EQ(aborted.type, FrameType::Error);
  ::close(running);
  ::close(queued);
  EXPECT_EQ(server.stats().completed, 0u);
  EXPECT_EQ(server.stats().cancelled, 2u);
}

TEST(Serve, StatusQueryReportsConfigurationAndCounters) {
  ServerConfig cfg;
  cfg.socket_path = "serve_status.sock";
  cfg.workers = 3;
  cfg.queue_capacity = 17;
  Server server(cfg);
  server.start();
  const auto outcome = submit_campaign(cfg.socket_path, small_rtl_spec());
  ASSERT_TRUE(outcome.ok) << outcome.error;
  ASSERT_TRUE(wait_until([&] { return server.stats().completed == 1; }));
  std::string error;
  const auto stats = query_stats(cfg.socket_path, &error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->workers, 3u);
  EXPECT_EQ(stats->queue_capacity, 17u);
  EXPECT_EQ(stats->accepted, 1u);
  EXPECT_EQ(stats->completed, 1u);
  server.shutdown(true);
  // After teardown the daemon is unreachable.
  EXPECT_FALSE(query_stats(cfg.socket_path, &error).has_value());
}

TEST(Serve, MalformedFirstFrameGetsAnErrorReply) {
  ServerConfig cfg;
  cfg.socket_path = "serve_garbage.sock";
  cfg.workers = 1;
  Server server(cfg);
  server.start();
  const int fd = connect_socket(cfg.socket_path);
  ASSERT_GE(fd, 0);
  // A Progress frame is not a valid request.
  ASSERT_TRUE(write_frame(fd, {FrameType::Progress, "done=1\ntotal=2\n"}));
  const Frame reply = read_final(fd);
  EXPECT_EQ(reply.type, FrameType::Error);
  ::close(fd);
  server.shutdown(true);
}
