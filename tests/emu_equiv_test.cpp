// Scalar-vs-SoA interpreter equivalence: the SoA warp interpreter must be
// bit-identical to the scalar reference — outputs, retire-callback order and
// values (so an InjectHook targets the same dynamic candidate on both),
// profiler counts, trap reasons and retired totals — across divergence,
// barriers, shared memory, guarded predication and every software fault
// model.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "apps/apps.hpp"
#include "emu/device.hpp"
#include "emu/profiler.hpp"
#include "isa/isa.hpp"
#include "swfi/swfi.hpp"

namespace gpufi::emu {
namespace {

using namespace gpufi::isa;

/// Records the full instrumentation stream: every value/predicate retirement
/// (in order, with operands and the post-hook value) plus per-opcode counts.
struct Recorder : InstrumentHook {
  struct Ev {
    bool is_pred;
    Opcode op;
    std::int32_t pc;
    unsigned cta, warp, lane, tid;
    std::uint64_t dyn;
    std::uint32_t a, b, c;
    std::uint32_t value;  ///< pred retires store 0/1

    bool operator==(const Ev&) const = default;
  };
  std::vector<Ev> evs;
  std::array<std::uint64_t, kNumOpcodes> counts{};

  void on_retire(const RetireInfo& i, std::uint32_t& v) override {
    evs.push_back({false, i.instr->op, i.pc, i.thread.cta, i.thread.warp,
                   i.thread.lane, i.thread.tid, i.dyn_index, i.a, i.b, i.c,
                   v});
  }
  void on_pred_retire(const RetireInfo& i, bool& v) override {
    evs.push_back({true, i.instr->op, i.pc, i.thread.cta, i.thread.warp,
                   i.thread.lane, i.thread.tid, i.dyn_index, i.a, i.b, i.c,
                   v ? 1u : 0u});
  }
  void on_count(const RetireInfo& i) override {
    ++counts[static_cast<std::size_t>(i.instr->op)];
  }
};

/// Runs `prog` under both interpreters and asserts byte-identity of the
/// launch outcome, the whole global memory, and the instrumentation stream.
void expect_equivalent(const Program& prog, const LaunchDims& dims,
                       std::size_t words = 4096,
                       std::uint64_t max_retired = 400'000'000) {
  Device scalar(words), soa(words);
  scalar.set_interpreter(Interpreter::Scalar);
  soa.set_interpreter(Interpreter::SoA);
  Recorder rs, rv;
  LaunchConfig cs, cv;
  cs.hook = &rs;
  cv.hook = &rv;
  cs.max_retired = cv.max_retired = max_retired;
  const auto a = scalar.launch(prog, dims, cs);
  const auto b = soa.launch(prog, dims, cv);
  ASSERT_EQ(a.status, b.status);
  EXPECT_EQ(a.trap_reason, b.trap_reason);
  EXPECT_EQ(a.retired, b.retired);
  EXPECT_EQ(rs.counts, rv.counts);
  ASSERT_EQ(rs.evs.size(), rv.evs.size());
  for (std::size_t i = 0; i < rs.evs.size(); ++i)
    ASSERT_EQ(rs.evs[i], rv.evs[i]) << "retire event " << i;
  for (std::uint32_t w = 0; w < words; ++w)
    ASSERT_EQ(scalar.read_word(w), soa.read_word(w)) << "word " << w;
}

Program affine_kernel(std::uint32_t out_base) {
  KernelBuilder kb("affine");
  kb.mov(0, S(SReg::TID_X));
  kb.mov(1, S(SReg::NTID_X));
  kb.mov(2, S(SReg::CTAID_X));
  kb.imad(3, R(2), R(1), R(0));
  kb.imad(4, R(3), I(2), I(1));
  kb.iadd(5, R(3), I(static_cast<std::int32_t>(out_base)));
  kb.gst(R(5), R(4));
  return kb.build();
}

TEST(Equiv, MultiWarpMultiCta) {
  expect_equivalent(affine_kernel(1024), {4, 1, 64, 1});
}

TEST(Equiv, PartialWarp) {
  expect_equivalent(affine_kernel(256), {1, 1, 40, 1});
}

TEST(Equiv, NestedDivergence) {
  KernelBuilder kb("nested");
  kb.mov(0, S(SReg::TID_X));
  kb.isetp(0, CmpOp::LT, R(0), I(16));
  kb.isetp(1, CmpOp::LT, R(0), I(8));
  kb.if_begin(0);
  kb.if_begin(1);
  kb.movi(1, 1);
  kb.else_begin();
  kb.movi(1, 2);
  kb.if_end();
  kb.else_begin();
  kb.movi(1, 3);
  kb.if_end();
  kb.iadd(2, R(0), I(64));
  kb.gst(R(2), R(1));
  expect_equivalent(kb.build(), {1, 1, 32, 1});
}

TEST(Equiv, DataDependentLoops) {
  KernelBuilder kb("trip");
  kb.mov(0, S(SReg::TID_X));
  kb.movi(1, 0);
  kb.movi(2, 0);
  kb.loop_begin();
  kb.isetp(0, CmpOp::LT, R(1), R(0));
  kb.loop_while(0);
  kb.iadd(1, R(1), I(1));
  kb.iadd(2, R(2), R(1));
  kb.loop_end();
  kb.iadd(3, R(0), I(64));
  kb.gst(R(3), R(2));
  expect_equivalent(kb.build(), {1, 1, 32, 1});
}

TEST(Equiv, SharedMemoryBarrierReduce) {
  KernelBuilder kb("reduce");
  kb.shared(64);
  kb.mov(0, S(SReg::TID_X));
  kb.sts(R(0), R(0));
  kb.bar();
  kb.isetp(0, CmpOp::EQ, R(0), I(0));
  kb.if_begin(0);
  kb.movi(1, 0);
  kb.movi(2, 0);
  kb.loop_begin();
  kb.isetp(1, CmpOp::LT, R(1), I(64));
  kb.loop_while(1);
  kb.lds(3, R(1));
  kb.iadd(2, R(2), R(3));
  kb.iadd(1, R(1), I(1));
  kb.loop_end();
  kb.movi(4, 100);
  kb.gst(R(4), R(2));
  kb.if_end();
  expect_equivalent(kb.build(), {1, 1, 64, 1});
}

TEST(Equiv, FloatSfuChain) {
  KernelBuilder kb("sfu");
  kb.mov(0, S(SReg::TID_X));
  kb.i2f(1, R(0));
  kb.fsin(2, R(1));
  kb.fexp(3, R(2));
  kb.fmul(4, R(3), F(1.5f));
  kb.ffma(5, R(4), F(2.0f), R(2));
  kb.frcp(6, R(5));
  kb.f2i(7, R(6));
  kb.iadd(8, R(0), I(0));
  kb.gst(R(8), R(5));
  expect_equivalent(kb.build(), {1, 1, 32, 1}, 256);
}

TEST(Equiv, SelAndGuardedPredication) {
  KernelBuilder kb("sel");
  kb.mov(0, S(SReg::TID_X));
  kb.isetp(2, CmpOp::LT, R(0), I(7));
  kb.sel(1, I(100), I(200), 2);
  kb.pred(2).iadd(1, R(1), I(1));
  kb.iadd(3, R(0), I(64));
  kb.gst(R(3), R(1));
  expect_equivalent(kb.build(), {1, 1, 32, 1}, 256);
}

TEST(Equiv, GuardedEarlyExit) {
  KernelBuilder kb("earlyexit");
  kb.mov(0, S(SReg::TID_X));
  kb.isetp(0, CmpOp::GE, R(0), I(16));
  kb.if_begin(0);
  kb.exit();
  kb.if_end();
  kb.iadd(1, R(0), I(64));
  kb.gst(R(1), I(5));
  expect_equivalent(kb.build(), {1, 1, 32, 1}, 256);
}

TEST(Equiv, TwoDimensionalIndexing) {
  KernelBuilder kb("idx2d");
  kb.mov(0, S(SReg::TID_X));
  kb.mov(1, S(SReg::TID_Y));
  kb.mov(2, S(SReg::CTAID_X));
  kb.mov(3, S(SReg::CTAID_Y));
  kb.imad(4, R(2), I(4), R(0));
  kb.imad(5, R(3), I(4), R(1));
  kb.imad(6, R(5), I(8), R(4));
  kb.iadd(7, R(6), I(128));
  kb.gst(R(7), R(6));
  expect_equivalent(kb.build(), {2, 2, 4, 4}, 1024);
}

TEST(Equiv, OutOfBoundsTrap) {
  KernelBuilder kb("oob");
  kb.mov(0, S(SReg::TID_X));
  kb.iadd(1, R(0), I(1 << 20));
  kb.gld(2, R(1));
  kb.gst(R(0), R(2));
  expect_equivalent(kb.build(), {1, 1, 32, 1}, 64);
}

TEST(Equiv, SharedOutOfBoundsTrap) {
  KernelBuilder kb("oobs");
  kb.shared(8);
  kb.mov(0, S(SReg::TID_X));
  kb.iadd(1, R(0), I(5));
  kb.sts(R(1), R(0));
  expect_equivalent(kb.build(), {1, 1, 32, 1}, 64);
}

TEST(Equiv, InvalidPcTrap) {
  Program p;
  p.code.push_back(Instr{.op = Opcode::BRA, .target = 1000});
  p.code.push_back(Instr{.op = Opcode::EXIT});
  expect_equivalent(p, {1, 1, 32, 1}, 64);
}

TEST(Equiv, WatchdogTimeout) {
  Program p;
  p.code.push_back(Instr{.op = Opcode::BRA, .target = 0});
  p.code.push_back(Instr{.op = Opcode::EXIT});
  expect_equivalent(p, {1, 1, 32, 1}, 64, 10000);
}

/// A value-rewriting hook must corrupt the same dynamic instruction and
/// propagate identically on both paths.
TEST(Equiv, HookCorruptionPropagatesIdentically) {
  struct FlipHook : InstrumentHook {
    std::uint64_t target;
    explicit FlipHook(std::uint64_t t) : target(t) {}
    void on_retire(const RetireInfo& info, std::uint32_t& value) override {
      if (info.dyn_index == target) value ^= 1u << 30;
    }
  };
  const Program p = affine_kernel(256);
  for (const std::uint64_t target : {0ull, 35ull, 100ull}) {
    Device scalar(1024), soa(1024);
    scalar.set_interpreter(Interpreter::Scalar);
    soa.set_interpreter(Interpreter::SoA);
    FlipHook hs(target), hv(target);
    LaunchConfig cs, cv;
    cs.hook = &hs;
    cv.hook = &hv;
    // A corrupted address register may legitimately trap — both paths must
    // then trap identically, with identical partial memory state.
    const auto a = scalar.launch(p, {2, 1, 40, 1}, cs);
    const auto b = soa.launch(p, {2, 1, 40, 1}, cv);
    ASSERT_EQ(a.status, b.status) << "target " << target;
    EXPECT_EQ(a.trap_reason, b.trap_reason) << "target " << target;
    EXPECT_EQ(a.retired, b.retired) << "target " << target;
    for (std::uint32_t w = 0; w < 1024; ++w)
      ASSERT_EQ(scalar.read_word(w), soa.read_word(w))
          << "target " << target << " word " << w;
  }
}

TEST(Equiv, ProfilerCountsIdentical) {
  Device scalar(4096), soa(4096);
  scalar.set_interpreter(Interpreter::Scalar);
  soa.set_interpreter(Interpreter::SoA);
  Profiler ps, pv;
  LaunchConfig cs, cv;
  cs.hook = &ps;
  cv.hook = &pv;
  const Program p = affine_kernel(1024);
  ASSERT_EQ(scalar.launch(p, {4, 1, 64, 1}, cs).status, LaunchStatus::Ok);
  ASSERT_EQ(soa.launch(p, {4, 1, 64, 1}, cv).status, LaunchStatus::Ok);
  EXPECT_EQ(ps.total(), pv.total());
  EXPECT_EQ(ps.candidate_total(), pv.candidate_total());
  for (std::size_t i = 0; i < kNumOpcodes; ++i)
    EXPECT_EQ(ps.count(static_cast<Opcode>(i)),
              pv.count(static_cast<Opcode>(i)));
  EXPECT_EQ(ps.pc_counts(), pv.pc_counts());
}

/// Device::reset must restore the freshly-constructed state byte for byte.
TEST(Equiv, ResetRestoresFreshState) {
  Device used(512), fresh(512);
  const auto out = used.alloc(64);
  ASSERT_EQ(used.launch(affine_kernel(out), {1, 1, 64, 1}).status,
            LaunchStatus::Ok);
  used.write_word(500, 0xDEAD);
  used.reset();
  for (std::uint32_t w = 0; w < 512; ++w)
    ASSERT_EQ(used.read_word(w), fresh.read_word(w)) << w;
  EXPECT_EQ(used.alloc(1), fresh.alloc(1));  // allocator rewound too
}

/// Full campaign Results must be identical under both interpreters for every
/// software fault model: same targets hit, same outcome of every trial.
TEST(Equiv, CampaignsIdenticalAcrossFaultModels) {
  using swfi::FaultModel;
  for (const auto model :
       {FaultModel::SingleBitFlip, FaultModel::DoubleBitFlip,
        FaultModel::RelativeError, FaultModel::WarpRelativeError,
        FaultModel::StickyRelativeError}) {
    const auto app = apps::make_mxm(8);
    swfi::Config cfg;
    cfg.model = model;
    cfg.n_injections = 24;
    cfg.seed = 7;
    cfg.jobs = 1;
    cfg.interpreter = Interpreter::Scalar;
    const auto a = swfi::run_sw_campaign(app.app, cfg);
    cfg.interpreter = Interpreter::SoA;
    const auto b = swfi::run_sw_campaign(app.app, cfg);
    const auto tag = std::string(swfi::fault_model_name(model));
    EXPECT_EQ(a.injections, b.injections) << tag;
    EXPECT_EQ(a.masked, b.masked) << tag;
    EXPECT_EQ(a.sdc, b.sdc) << tag;
    EXPECT_EQ(a.due, b.due) << tag;
    EXPECT_EQ(a.candidate_instructions, b.candidate_instructions) << tag;
    EXPECT_EQ(a.pc_exec_counts, b.pc_exec_counts) << tag;
    ASSERT_EQ(a.sites.size(), b.sites.size()) << tag;
    for (auto ia = a.sites.begin(), ib = b.sites.begin(); ia != a.sites.end();
         ++ia, ++ib) {
      EXPECT_EQ(ia->first, ib->first) << tag;
      EXPECT_EQ(ia->second.hits, ib->second.hits) << tag;
      EXPECT_EQ(ia->second.masked, ib->second.masked) << tag;
      EXPECT_EQ(ia->second.sdc, ib->second.sdc) << tag;
      EXPECT_EQ(ia->second.due, ib->second.due) << tag;
    }
  }
}

}  // namespace
}  // namespace gpufi::emu
