#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "fparith/fp32.hpp"
#include "fparith/sfu.hpp"

namespace gpufi::fparith {
namespace {

std::uint32_t bits_of(float f) { return std::bit_cast<std::uint32_t>(f); }
float float_of(std::uint32_t b) { return std::bit_cast<float>(b); }

bool both_nan(std::uint32_t a, std::uint32_t b) {
  return std::isnan(float_of(a)) && std::isnan(float_of(b));
}

// Random 32-bit patterns with a bias towards interesting exponents
// (subnormals, near-1 values, near-overflow) so edge cases get exercised.
std::uint32_t random_float_bits(Rng& rng) {
  const auto mode = rng.below(8);
  std::uint32_t sign = static_cast<std::uint32_t>(rng.below(2)) << 31;
  std::uint32_t frac = static_cast<std::uint32_t>(rng()) & 0x7fffffu;
  std::uint32_t exp;
  switch (mode) {
    case 0: exp = 0; break;                                     // subnormal/0
    case 1: exp = static_cast<std::uint32_t>(rng.range(1, 5)); break;
    case 2: exp = static_cast<std::uint32_t>(rng.range(120, 134)); break;
    case 3: exp = static_cast<std::uint32_t>(rng.range(250, 255)); break;
    default: exp = static_cast<std::uint32_t>(rng.below(256)); break;
  }
  return sign | (exp << 23) | frac;
}

// ----------------------------------------------------------- unpack / pack

TEST(Fp32Unpack, ClassifiesSpecials) {
  EXPECT_EQ(fp32_unpack(0x00000000u).cls, FpClass::Zero);
  EXPECT_EQ(fp32_unpack(0x80000000u).cls, FpClass::Zero);
  EXPECT_TRUE(fp32_unpack(0x80000000u).sign);
  EXPECT_EQ(fp32_unpack(0x7f800000u).cls, FpClass::Inf);
  EXPECT_EQ(fp32_unpack(0xff800000u).cls, FpClass::Inf);
  EXPECT_EQ(fp32_unpack(0x7fc00000u).cls, FpClass::NaN);
}

TEST(Fp32Unpack, NormalHasHiddenBit) {
  const Unpacked u = fp32_unpack(bits_of(1.0f));
  EXPECT_EQ(u.cls, FpClass::Norm);
  EXPECT_EQ(u.man, 0x800000u);
  EXPECT_EQ(u.exp, 0);
}

TEST(Fp32Unpack, SubnormalHasNoHiddenBit) {
  const Unpacked u = fp32_unpack(0x00000001u);  // min subnormal
  EXPECT_EQ(u.cls, FpClass::Norm);
  EXPECT_EQ(u.man, 1u);
  EXPECT_EQ(u.exp, -126);
}

TEST(Fp32RoundPack, ExactValues) {
  // 1.0 = 2^23 * 2^-23
  EXPECT_EQ(fp32_round_pack(false, -23, 1u << 23, false), bits_of(1.0f));
  EXPECT_EQ(fp32_round_pack(true, -23, 3u << 22, false), bits_of(-1.5f));
  EXPECT_EQ(fp32_round_pack(false, 0, 0, false), 0u);
}

TEST(Fp32RoundPack, RoundsToNearestEven) {
  // 2^24 + 1 is exactly between 2^24 and 2^24+2: rounds to even (2^24).
  EXPECT_EQ(float_of(fp32_round_pack(false, 0, (1u << 24) + 1, false)),
            16777216.0f);
  // With sticky set it must round up.
  EXPECT_EQ(float_of(fp32_round_pack(false, 0, (1u << 24) + 1, true)),
            16777218.0f);
}

TEST(Fp32RoundPack, OverflowGivesInfinity) {
  EXPECT_EQ(fp32_round_pack(false, 110, 1u << 23, false), 0x7f800000u);
  EXPECT_EQ(fp32_round_pack(true, 110, 1u << 23, false), 0xff800000u);
}

TEST(Fp32RoundPack, SubnormalResults) {
  // min subnormal = 2^-149
  EXPECT_EQ(fp32_round_pack(false, -149, 1, false), 0x00000001u);
  // half of min subnormal rounds to zero (ties-to-even)
  EXPECT_EQ(fp32_round_pack(false, -150, 1, false), 0u);
  // slightly more than half rounds up to min subnormal
  EXPECT_EQ(fp32_round_pack(false, -150, 1, true), 0x00000001u);
}

// ------------------------------------------------------ exhaustive-ish FMA

TEST(Fp32Add, MatchesHardwareOnRandomPatterns) {
  Rng rng(101);
  for (int i = 0; i < 200000; ++i) {
    const std::uint32_t a = random_float_bits(rng);
    const std::uint32_t b = random_float_bits(rng);
    const std::uint32_t got = fma_bits(a, b, 0, FpOp::Add);
    const std::uint32_t want = bits_of(float_of(a) + float_of(b));
    if (both_nan(got, want)) continue;
    ASSERT_EQ(got, want) << "a=" << std::hex << a << " b=" << b;
  }
}

TEST(Fp32Mul, MatchesHardwareOnRandomPatterns) {
  Rng rng(102);
  for (int i = 0; i < 200000; ++i) {
    const std::uint32_t a = random_float_bits(rng);
    const std::uint32_t b = random_float_bits(rng);
    const std::uint32_t got = fma_bits(a, b, 0, FpOp::Mul);
    const std::uint32_t want = bits_of(float_of(a) * float_of(b));
    if (both_nan(got, want)) continue;
    ASSERT_EQ(got, want) << "a=" << std::hex << a << " b=" << b;
  }
}

TEST(Fp32Fma, MatchesHardwareOnRandomPatterns) {
  Rng rng(103);
  for (int i = 0; i < 200000; ++i) {
    const std::uint32_t a = random_float_bits(rng);
    const std::uint32_t b = random_float_bits(rng);
    const std::uint32_t c = random_float_bits(rng);
    const std::uint32_t got = fma_bits(a, b, c, FpOp::Fma);
    const std::uint32_t want =
        bits_of(std::fmaf(float_of(a), float_of(b), float_of(c)));
    if (both_nan(got, want)) continue;
    ASSERT_EQ(got, want) << "a=" << std::hex << a << " b=" << b << " c=" << c;
  }
}

TEST(Fp32Fma, CatastrophicCancellation) {
  // fma(x, y, -x*y) extracts the exact rounding error of the product.
  const float x = 1.0f + 0x1p-12f, y = 1.0f + 0x1p-13f;
  const float prod = x * y;
  EXPECT_EQ(ffma(x, y, -prod), std::fmaf(x, y, -prod));
  EXPECT_NE(ffma(x, y, -prod), 0.0f);  // the residual is nonzero
}

TEST(Fp32Fma, SignedZeroRules) {
  EXPECT_EQ(bits_of(fadd(-0.0f, -0.0f)), bits_of(-0.0f));
  EXPECT_EQ(bits_of(fadd(-0.0f, 0.0f)), bits_of(0.0f));
  EXPECT_EQ(bits_of(fmul(-1.0f, 0.0f)), bits_of(-0.0f));
  EXPECT_EQ(bits_of(fmul(-0.0f, -2.0f)), bits_of(0.0f));
  EXPECT_EQ(bits_of(ffma(-1.0f, 0.0f, 0.0f)), bits_of(0.0f));
  EXPECT_EQ(bits_of(ffma(-1.0f, 0.0f, -0.0f)), bits_of(-0.0f));
  EXPECT_EQ(bits_of(ffma(1.0f, 1.0f, -1.0f)), bits_of(0.0f));
}

TEST(Fp32Fma, InfinityAndNanRules) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isnan(fmul(inf, 0.0f)));
  EXPECT_TRUE(std::isnan(fadd(inf, -inf)));
  EXPECT_EQ(fadd(inf, 1e30f), inf);
  EXPECT_TRUE(std::isnan(ffma(inf, 1.0f, -inf)));
  EXPECT_EQ(ffma(inf, 2.0f, -1e30f), inf);
  EXPECT_TRUE(std::isnan(fadd(std::nanf(""), 1.0f)));
}

TEST(Fp32Fma, OverflowAndUnderflow) {
  const float big = 3e38f;
  EXPECT_TRUE(std::isinf(fadd(big, big)));
  EXPECT_EQ(fmul(0x1p-100f, 0x1p-100f), 0.0f);  // deep underflow
  // Gradual underflow into subnormals.
  EXPECT_EQ(fmul(0x1p-100f, 0x1p-30f), 0x1p-130f);
}

TEST(Fp32Fma, StagePipelineAgreesWithOneShot) {
  Rng rng(104);
  for (int i = 0; i < 10000; ++i) {
    const std::uint32_t a = random_float_bits(rng);
    const std::uint32_t b = random_float_bits(rng);
    const std::uint32_t c = random_float_bits(rng);
    const FmaS1 s1 = fma_stage1(a, b, c, FpOp::Fma);
    const FmaS2 s2 = fma_stage2(s1);
    const FmaS3 s3 = fma_stage3(s2);
    ASSERT_EQ(fma_stage4(s3), fma_bits(a, b, c, FpOp::Fma));
  }
}

// -------------------------------------------------------------- integer MAD

TEST(IntMad, BasicIdentities) {
  EXPECT_EQ(imad_bits(3, 4, 5), 17u);
  EXPECT_EQ(imad_bits(0, 100, 7), 7u);
  EXPECT_EQ(imad_bits(1u << 31, 2, 0), 0u);  // wraparound
}

TEST(IntMad, MatchesHostWraparound) {
  Rng rng(105);
  for (int i = 0; i < 100000; ++i) {
    const auto a = static_cast<std::uint32_t>(rng());
    const auto b = static_cast<std::uint32_t>(rng());
    const auto c = static_cast<std::uint32_t>(rng());
    EXPECT_EQ(imad_bits(a, b, c), a * b + c);
  }
}

TEST(IntMad, StageAgreement) {
  Rng rng(106);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::uint32_t>(rng());
    const auto b = static_cast<std::uint32_t>(rng());
    const auto c = static_cast<std::uint32_t>(rng());
    EXPECT_EQ(imad_stage2(imad_stage1(a, b, c)), imad_bits(a, b, c));
  }
}

// ------------------------------------------------------------- conversions

TEST(Convert, I2fMatchesHost) {
  Rng rng(107);
  for (int i = 0; i < 100000; ++i) {
    const auto v = static_cast<std::int32_t>(rng());
    EXPECT_EQ(i2f_bits(static_cast<std::uint32_t>(v)),
              bits_of(static_cast<float>(v)))
        << v;
  }
  EXPECT_EQ(i2f_bits(0), 0u);
  EXPECT_EQ(float_of(i2f_bits(static_cast<std::uint32_t>(-1))), -1.0f);
  EXPECT_EQ(float_of(i2f_bits(0x80000000u)), -2147483648.0f);
}

TEST(Convert, F2iTruncatesAndSaturates) {
  EXPECT_EQ(f2i_bits(bits_of(3.99f)), 3u);
  EXPECT_EQ(f2i_bits(bits_of(-3.99f)), static_cast<std::uint32_t>(-3));
  EXPECT_EQ(f2i_bits(bits_of(0.0f)), 0u);
  EXPECT_EQ(f2i_bits(bits_of(1e20f)), 0x7fffffffu);
  EXPECT_EQ(f2i_bits(bits_of(-1e20f)), 0x80000000u);
  EXPECT_EQ(f2i_bits(0x7fc00000u), 0u);  // NaN -> 0
  EXPECT_EQ(f2i_bits(bits_of(2147483520.0f)), 2147483520u);
}

TEST(Convert, F2iRandomAgainstHostDouble) {
  Rng rng(108);
  for (int i = 0; i < 50000; ++i) {
    const std::uint32_t b = random_float_bits(rng);
    const float f = float_of(b);
    if (std::isnan(f)) continue;
    const double d = std::trunc(static_cast<double>(f));
    std::int64_t want;
    if (d > 2147483647.0) want = 2147483647;
    else if (d < -2147483648.0) want = -2147483648;
    else want = static_cast<std::int64_t>(d);
    EXPECT_EQ(static_cast<std::int32_t>(f2i_bits(b)), want) << f;
  }
}

// --------------------------------------------------------------------- SFU

TEST(Sfu, SinAccurateOnPrimaryRange) {
  // The paper constrains SFU inputs to [0, pi/2].
  for (int i = 0; i <= 1000; ++i) {
    const float x = static_cast<float>(i) * 1.5707963e-3f;
    EXPECT_NEAR(sfu_sin(x), std::sin(static_cast<double>(x)), 3e-7) << x;
  }
}

TEST(Sfu, SinQuadrantsAndSign) {
  for (double x = -6.2; x < 6.3; x += 0.037) {
    EXPECT_NEAR(sfu_sin(static_cast<float>(x)), std::sin(x), 5e-7) << x;
  }
}

TEST(Sfu, SinSpecials) {
  EXPECT_EQ(sfu_sin(0.0f), 0.0f);
  EXPECT_TRUE(std::isnan(sfu_sin(std::numeric_limits<float>::infinity())));
  EXPECT_TRUE(std::isnan(sfu_sin(std::nanf(""))));
  EXPECT_NEAR(sfu_sin(1.5707964f), 1.0f, 1e-6);
}

TEST(Sfu, ExpAccurateOnPrimaryRange) {
  for (int i = 0; i <= 1000; ++i) {
    const float x = static_cast<float>(i) * 1.5707963e-3f;
    const double want = std::exp(static_cast<double>(x));
    EXPECT_NEAR(sfu_exp(x) / want, 1.0, 4e-7) << x;
  }
}

TEST(Sfu, ExpWideRange) {
  for (double x = -80; x < 80; x += 0.61) {
    const auto xf = static_cast<float>(x);
    const double want = std::exp(static_cast<double>(xf));
    EXPECT_NEAR(sfu_exp(xf) / want, 1.0, 6e-7) << x;
  }
}

TEST(Sfu, ExpSpecials) {
  EXPECT_EQ(sfu_exp(0.0f), 1.0f);
  EXPECT_EQ(sfu_exp(std::numeric_limits<float>::infinity()),
            std::numeric_limits<float>::infinity());
  EXPECT_EQ(sfu_exp(-std::numeric_limits<float>::infinity()), 0.0f);
  EXPECT_TRUE(std::isnan(sfu_exp(std::nanf(""))));
  EXPECT_TRUE(std::isinf(sfu_exp(200.0f)));   // overflow
  EXPECT_EQ(sfu_exp(-200.0f), 0.0f);          // underflow
}

TEST(Sfu, StagePipelineAgreesWithOneShot) {
  Rng rng(109);
  for (int i = 0; i < 5000; ++i) {
    const float x = static_cast<float>(rng.uniform(-10.0, 10.0));
    const std::uint32_t b = bits_of(x);
    const SfuS2 s2 = sfu_stage2(b, SfuFunc::Sin);
    const std::uint32_t staged =
        sfu_stage6(sfu_stage5(sfu_stage4(sfu_stage3(s2))));
    ASSERT_EQ(staged, sfu_sin_bits(b));
  }
}

TEST(Sfu, CarrySavePairSumsToProduct) {
  Rng rng(110);
  for (int i = 0; i < 1000; ++i) {
    const float x = static_cast<float>(rng.uniform(0.0, 1.5707963));
    const SfuS3 s3 = sfu_stage3(sfu_stage2(bits_of(x), SfuFunc::Sin));
    const SfuS4 s4 = sfu_stage4(s3);
    const std::uint64_t c1 =
        static_cast<std::uint64_t>(s4.c1_neg ? -s3.c1 : s3.c1);
    ASSERT_EQ(s4.t1_s + s4.t1_c, c1 * s3.dx);
  }
}

TEST(Sfu, DeterministicAcrossCalls) {
  for (float x : {0.1f, 0.7f, 1.2f, 1.5f}) {
    EXPECT_EQ(sfu_sin_bits(bits_of(x)), sfu_sin_bits(bits_of(x)));
    EXPECT_EQ(sfu_exp_bits(bits_of(x)), sfu_exp_bits(bits_of(x)));
  }
}

}  // namespace
}  // namespace gpufi::fparith
